// The paper's Figure 6a scenario end to end: analyze an FP-heavy workload
// once, sweep thousands of latency configurations around its bottlenecks in
// milliseconds, shortlist the design points meeting a CPI target, and
// validate the methods' predictions against re-simulation.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/stacks"
)

func main() {
	r := experiments.NewRunner(30000)
	app, err := r.App("416.gamess")
	if err != nil {
		log.Fatal(err)
	}
	base := r.Cfg.Lat
	uops := float64(len(app.Trace.Records))

	// Step 1: identify the bottlenecks of the current design point.
	bots := app.Bottlenecks(&base, 3)
	fmt.Printf("416.gamess baseline CPI %.3f; top bottlenecks: %v\n", app.Trace.CPI(), bots)

	// Step 2: sweep every integer latency combination of the bottlenecks
	// (plus the memory knob) with the single analysis.
	space := dse.Space{}
	for _, e := range bots {
		var vals []float64
		for v := 1.0; v <= base[e]; v++ {
			vals = append(vals, v)
		}
		if len(vals) > 8 {
			vals = vals[:8]
		}
		space.Axes = append(space.Axes, dse.Axis{Event: e, Values: vals})
	}
	space.Axes = append(space.Axes, dse.Axis{Event: stacks.L2D, Values: []float64{6, 9, 12}})
	points := space.Enumerate(base)
	start := time.Now()
	rep := dse.ExploreRpStacks(app.Analysis, points)
	fmt.Printf("explored %d latency points in %v (one simulation total)\n",
		len(points), time.Since(start).Round(time.Millisecond))

	// Step 3: shortlist the points meeting the design goal.
	target := app.Trace.CPI() * 0.85
	meeting := dse.BestUnder(rep.Results, target*uops)
	fmt.Printf("%d points meet the target CPI %.3f\n", len(meeting), target)
	sort.Slice(meeting, func(i, j int) bool { return meeting[i].Cycles < meeting[j].Cycles })
	show := meeting
	if len(show) > 5 {
		show = show[:5]
	}
	for _, p := range show {
		fmt.Printf("  CPI %.3f with", p.Cycles/uops)
		for _, ax := range space.Axes {
			fmt.Printf(" %s=%.0f", ax.Event, p.Lat[ax.Event])
		}
		fmt.Println()
	}

	// Step 4: validate against the simulator and the weaker analyses.
	fmt.Println("\nvalidation on named scenarios (CPI):")
	fmt.Println("scenario            truth  RpStacks  CP1    FMT")
	for _, sc := range []struct {
		name string
		lat  stacks.Latencies
	}{
		{"bot0 halved", base.Scale(bots[0], 0.5)},
		{"bot0+bot1 halved", base.Scale(bots[0], 0.5).Scale(bots[1], 0.5)},
		{"bot0 quartered", base.Scale(bots[0], 0.25)},
	} {
		lat := sc.lat
		truth, err := r.Truth(app, &lat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %.3f  %.3f     %.3f  %.3f\n", sc.name,
			truth/uops, app.Analysis.Predict(&lat)/uops,
			app.CP1.Predict(&lat)/uops, app.FMT.Predict(&lat)/uops)
	}
}
