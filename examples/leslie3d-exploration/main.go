// The paper's Figure 6b scenario: on a workload whose bottlenecks overlap
// (memory misses over FP-multiply chains), pipeline-stall analysis (FMT)
// cannot even see some bottleneck events, so its predictions go flat while
// RpStacks tracks the simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/stacks"
)

func main() {
	r := experiments.NewRunner(30000)
	app, err := r.App("437.leslie3d")
	if err != nil {
		log.Fatal(err)
	}
	base := r.Cfg.Lat
	uops := float64(len(app.Trace.Records))

	fmt.Printf("437.leslie3d baseline CPI %.3f\n\n", app.Trace.CPI())
	fmt.Printf("RpStacks decomposition: %s\n", fmtStack(app, &base))
	fmtS := app.FMT.Stack()
	fmt.Printf("FMT decomposition:      %s\n\n", fmtS.Format(&base))

	// FMT folds FP-multiply latency into Base (it only sees miss events),
	// so optimizing FpMul leaves its prediction unchanged.
	scenarios := []struct {
		name string
		lat  stacks.Latencies
	}{
		{"FpMul 6->2", base.With(stacks.FpMul, 2)},
		{"FpAdd 6->2", base.With(stacks.FpAdd, 2)},
		{"FpMul+FpAdd 6->2", base.With(stacks.FpMul, 2).With(stacks.FpAdd, 2)},
		{"MemD halved too", base.With(stacks.FpMul, 2).With(stacks.FpAdd, 2).Scale(stacks.MemD, 0.5)},
	}
	fmt.Println("scenario             truth   RpStacks  CP1     FMT")
	for _, sc := range scenarios {
		lat := sc.lat
		truth, err := r.Truth(app, &lat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-19s  %.3f   %.3f     %.3f   %.3f\n", sc.name,
			truth/uops, app.Analysis.Predict(&lat)/uops,
			app.CP1.Predict(&lat)/uops, app.FMT.Predict(&lat)/uops)
	}
	fmt.Println("\nFMT's column barely moves on the FP scenarios: the overlapped")
	fmt.Println("fine-grained events are invisible to pipeline-stall accounting.")
}

func fmtStack(app *experiments.App, base *stacks.Latencies) string {
	rep := app.Analysis.Representative(base)
	return rep.Format(base)
}
