// Execution-parameter sensitivity (the paper's Figure 14, in miniature):
// sweep the segment length and cosine threshold, toggle uniqueness
// preservation, and watch accuracy and stack counts move. Uniqueness
// preservation is first-order for accuracy; the threshold is second-order.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stacks"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	prof, _ := workload.ByName("437.leslie3d")
	gen := workload.NewGenerator(prof, 42)
	stream := gen.Take(80000)
	cut := 60000
	for !stream[cut].SoM {
		cut++
	}
	cfg := config.Baseline()

	runSim := func(l stacks.Latencies) float64 {
		c := cfg.Clone()
		c.Lat = l
		sim, err := cpu.New(c)
		if err != nil {
			log.Fatal(err)
		}
		sim.WarmCode(gen.CodeLines())
		sim.WarmData(gen.DataLines())
		sim.WarmUp(stream[:cut])
		tr, err := sim.Run(stream[cut:])
		if err != nil {
			log.Fatal(err)
		}
		return float64(tr.Cycles)
	}

	// Baseline trace + the ground truths of three optimization scenarios.
	sim, err := cpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.WarmCode(gen.CodeLines())
	sim.WarmData(gen.DataLines())
	sim.WarmUp(stream[:cut])
	tr, err := sim.Run(stream[cut:])
	if err != nil {
		log.Fatal(err)
	}
	scenarios := []stacks.Latencies{
		cfg.Lat.Scale(stacks.MemD, 0.15),
		cfg.Lat.Scale(stacks.FpMul, 0.15),
		cfg.Lat.Scale(stacks.MemD, 0.15).Scale(stacks.FpMul, 0.15),
	}
	truths := make([]float64, len(scenarios))
	for i, l := range scenarios {
		truths[i] = runSim(l)
	}

	fmt.Println("unique  segment  cosine  avg-err%  max-err%  stacks  time")
	for _, uniq := range []bool{true, false} {
		for _, seg := range []int{500, 2000, 5000, 10000} {
			for _, cos := range []float64{0.5, 0.7, 0.9} {
				opts := core.DefaultOptions()
				opts.SegmentLength = seg
				opts.CosineThreshold = cos
				opts.PreserveUnique = uniq
				start := time.Now()
				a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, opts)
				if err != nil {
					log.Fatal(err)
				}
				var errs []float64
				for i := range scenarios {
					errs = append(errs, stats.AbsPctErr(a.Predict(&scenarios[i]), truths[i]))
				}
				fmt.Printf("%-6v  %-7d  %-6.1f  %-8.2f  %-8.2f  %-6d  %v\n",
					uniq, seg, cos, stats.Mean(errs), stats.Max(errs),
					a.NumStacks(), time.Since(start).Round(time.Millisecond))
			}
		}
	}
}
