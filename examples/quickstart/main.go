// Quickstart: the full RpStacks pipeline on one workload in ~40 lines of
// API use — simulate once, analyze once, then predict any latency design
// point for free and validate one of them against re-simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stacks"
	"repro/internal/workload"
)

func main() {
	// 1. A deterministic SPEC-like workload and the Table II baseline core.
	prof, ok := workload.ByName("416.gamess")
	if !ok {
		log.Fatal("unknown workload")
	}
	gen := workload.NewGenerator(prof, 42)
	warm := gen.Take(60000) // functional cache/predictor warmup
	uops := gen.Take(30000)
	for !uops[0].SoM {
		warm = append(warm, uops[0])
		uops = uops[1:]
	}
	cfg := config.Baseline()

	// 2. One timing simulation produces the dynamic trace.
	sim, err := cpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.WarmCode(gen.CodeLines())
	sim.WarmData(gen.DataLines())
	sim.WarmUp(warm)
	tr, err := sim.Run(uops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d µops in %d cycles (CPI %.3f)\n",
		tr.MicroOps(), tr.Cycles, tr.CPI())

	// 3. One RpStacks analysis extracts the representative stall-event
	//    stacks of the distinctive execution paths.
	analysis, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kept %d representative stacks across %d segments\n",
		analysis.NumStacks(), len(analysis.Segments))
	rep := analysis.Representative(&cfg.Lat)
	fmt.Printf("baseline decomposition: %s\n\n", rep.Format(&cfg.Lat))

	// 4. Predict any latency configuration without another simulation.
	for _, mod := range []struct {
		name string
		lat  stacks.Latencies
	}{
		{"L1D 4->2", cfg.Lat.With(stacks.L1D, 2)},
		{"FpAdd 6->3", cfg.Lat.With(stacks.FpAdd, 3)},
		{"both", cfg.Lat.With(stacks.L1D, 2).With(stacks.FpAdd, 3)},
	} {
		lat := mod.lat
		cpi := analysis.PredictCPI(&lat)
		fmt.Printf("predicted CPI with %-11s %.3f\n", mod.name+":", cpi)
	}

	// 5. Validate the last prediction against a real re-simulation.
	opt := cfg.Clone()
	opt.Lat = cfg.Lat.With(stacks.L1D, 2).With(stacks.FpAdd, 3)
	sim2, err := cpu.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	sim2.WarmCode(gen.CodeLines())
	sim2.WarmData(gen.DataLines())
	sim2.WarmUp(warm)
	tr2, err := sim2.Run(uops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-simulated CPI with both:  %.3f (prediction error %.2f%%)\n",
		tr2.CPI(), 100*abs(analysis.PredictCPI(&opt.Lat)-tr2.CPI())/tr2.CPI())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
