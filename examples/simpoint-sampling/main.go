// SimPoint-style sampling (the paper's sampling optimization, Section
// III-C): cut a phase-structured workload into intervals, cluster their
// basic-block vectors, analyze only the representative intervals, and
// combine the per-representative RpStacks with cluster weights. The
// weighted prediction tracks the full-trace result at a fraction of the
// analysis cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/simpoint"
	"repro/internal/stacks"
	"repro/internal/workload"
)

func main() {
	// 401.bzip2's profile alternates compression phases, so its intervals
	// cluster meaningfully.
	prof, _ := workload.ByName("401.bzip2")
	gen := workload.NewGenerator(prof, 7)
	uops := gen.Take(120000)
	cfg := config.Baseline()

	// Full-trace reference.
	sim, err := cpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.WarmCode(gen.CodeLines())
	sim.WarmData(gen.DataLines())
	tr, err := sim.Run(uops)
	if err != nil {
		log.Fatal(err)
	}
	full, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// SimPoint pipeline: BBVs -> k-means -> weighted representatives.
	const intervalLen = 10000
	ivs, err := simpoint.CollectBBVs(uops, gen.BlockOf, gen.NumBlocks(), intervalLen)
	if err != nil {
		log.Fatal(err)
	}
	picks, err := simpoint.Choose(ivs, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d intervals clustered into %d representatives:\n", len(ivs), len(picks))

	// Analyze each representative interval on the already-simulated trace
	// and combine predictions with the cluster weights.
	type repA struct {
		a *core.Analysis
		w float64
		n int
	}
	var reps []repA
	for _, p := range picks {
		iv := ivs[p.Interval]
		lo := iv.Lo
		for lo < len(tr.Records) && !tr.Records[lo].SoM {
			lo++
		}
		a, err := core.AnalyzeRange(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions(), lo, iv.Hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  interval %3d  weight %.2f\n", p.Interval, p.Weight)
		reps = append(reps, repA{a: a, w: p.Weight, n: iv.Hi - lo})
	}

	predict := func(l *stacks.Latencies) float64 {
		var cpi float64
		for _, r := range reps {
			cpi += r.w * r.a.Predict(l) / float64(r.n)
		}
		return cpi
	}

	fmt.Printf("\n%-22s %-10s %-10s\n", "configuration", "full", "simpoint")
	for _, sc := range []struct {
		name string
		lat  stacks.Latencies
	}{
		{"baseline", cfg.Lat},
		{"L1D=2", cfg.Lat.With(stacks.L1D, 2)},
		{"MemD=66", cfg.Lat.With(stacks.MemD, 66)},
		{"L2D=6, MemD=66", cfg.Lat.With(stacks.L2D, 6).With(stacks.MemD, 66)},
	} {
		lat := sc.lat
		fmt.Printf("%-22s %-10.3f %-10.3f\n", sc.name, full.PredictCPI(&lat), predict(&lat))
	}
	fmt.Printf("\nanalysis cost: %d µops instead of %d (%.0f%% of the work)\n",
		len(picks)*intervalLen, len(uops),
		100*float64(len(picks)*intervalLen)/float64(len(uops)))
}
