package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/stacks"
	"repro/internal/store"
)

// fleet_test.go — the tentpole differential proofs: a multi-worker fleet
// sweep is bit-identical to the single-process sweep, worker death mid-chunk
// recovers by stealing, and coordinator death mid-sweep resumes from the
// published chunk blobs. All deterministic: crash injection is a hook, not a
// timeout.

const (
	testMicroOps = 1500
	testWorkload = "416.gamess"
)

// testAxes spans 4x3 = 12 design points; ChunkSize 3 gives 4 chunks.
var testAxes = []string{"L1D=1,2,3,4", "FpMul=2,4,6"}

var testEngines = []string{"graph", "rpstacks", "sim"}

type fleetEnv struct {
	err    error
	runner *experiments.Runner
	app    *experiments.App
	points []stacks.Latencies
	golden map[string]*dse.Report
}

var (
	fleetEnvOnce sync.Once
	fleetEnvVal  *fleetEnv
)

// testFleetEnv builds (once) the single-process golden reports of the test
// sweep under every engine, with fingerprints, and cross-checks the exported
// SweepFingerprint* helpers against what the sweeps themselves computed.
func testFleetEnv(t *testing.T) *fleetEnv {
	t.Helper()
	fleetEnvOnce.Do(func() {
		e := &fleetEnv{golden: make(map[string]*dse.Report)}
		fleetEnvVal = e
		r := experiments.NewRunner(testMicroOps)
		app, err := r.App(testWorkload)
		if err != nil {
			e.err = err
			return
		}
		e.runner, e.app = r, app
		space, err := parseAxes(testAxes)
		if err != nil {
			e.err = err
			return
		}
		e.points = space.Enumerate(r.Cfg.Lat)
		opts := dse.ExploreOptions{NeedFingerprint: true}
		for _, eng := range testEngines {
			var rep *dse.Report
			var fp []byte
			switch eng {
			case "graph":
				rep, err = dse.ExploreGraphOpts(app.Graph, e.points, opts)
				if err == nil {
					fp, err = dse.SweepFingerprintGraph(app.Graph, e.points)
				}
			case "rpstacks":
				rep, err = dse.ExploreRpStacksOpts(app.Analysis, e.points, opts)
				if err == nil {
					fp, err = dse.SweepFingerprintRpStacks(app.Analysis, e.points)
				}
			case "sim":
				rep, err = dse.ExploreSimOpts(r.Cfg, app.UOps, e.points, opts)
				if err == nil {
					fp, err = dse.SweepFingerprintSim(r.Cfg, app.UOps, e.points)
				}
			}
			if err != nil {
				e.err = err
				return
			}
			if !bytes.Equal(rep.Fingerprint, fp) {
				e.err = fmt.Errorf("%s: exported fingerprint disagrees with the sweep's own", eng)
				return
			}
			e.golden[eng] = rep
		}
	})
	if fleetEnvVal.err != nil {
		t.Fatalf("building fleet test env: %v", fleetEnvVal.err)
	}
	return fleetEnvVal
}

func testSweep(env *fleetEnv, engine string) Sweep {
	return Sweep{
		Spec: SweepSpec{
			Workload: testWorkload,
			Seed:     42,
			MicroOps: testMicroOps,
			Engine:   engine,
			Axes:     append([]string(nil), testAxes...),
		},
		Points:      env.points,
		Fingerprint: env.golden[engine].Fingerprint,
		ChunkSize:   3,
	}
}

// sameSweepResults asserts the fleet report reproduced the golden sweep
// bit-for-bit: method, point order, latencies and cycle counts.
func sameSweepResults(t *testing.T, got, golden *dse.Report) {
	t.Helper()
	if got.Method != golden.Method {
		t.Fatalf("Method = %q, want %q", got.Method, golden.Method)
	}
	if !bytes.Equal(got.Fingerprint, golden.Fingerprint) {
		t.Fatalf("Fingerprint = %x, want %x", got.Fingerprint, golden.Fingerprint)
	}
	if len(got.Results) != len(golden.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(golden.Results))
	}
	for i := range golden.Results {
		if got.Results[i].Lat != golden.Results[i].Lat {
			t.Fatalf("point %d: Lat diverged", i)
		}
		if got.Results[i].Cycles != golden.Results[i].Cycles {
			t.Fatalf("point %d: Cycles = %v, want %v (not bit-identical)", i,
				got.Results[i].Cycles, golden.Results[i].Cycles)
		}
	}
}

func startWorker(t *testing.T, ctx context.Context, wg *sync.WaitGroup, w *Worker) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("worker %s: %v", w.ID(), err)
		}
	}()
}

// TestFleetDifferential is the core proof: two workers plus a coordinator
// produce, for every engine, the byte-identical Report of the single-process
// sweep, and the chunk blobs are gone once the report is assembled.
func TestFleetDifferential(t *testing.T) {
	env := testFleetEnv(t)
	for _, engine := range testEngines {
		t.Run(engine, func(t *testing.T) {
			shared, err := store.OpenShared(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			coord := NewCoordinator(CoordinatorConfig{
				Shared:   shared,
				LeaseTTL: 10 * time.Second,
				WaitHint: 2 * time.Millisecond,
			})
			srv := httptest.NewServer(coord)
			defer srv.Close()

			wctx, stopWorkers := context.WithCancel(context.Background())
			defer stopWorkers()
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
					CoordinatorURL: srv.URL,
					Shared:         shared,
					Concurrency:    2,
					ID:             fmt.Sprintf("w%d", i),
					PollInterval:   2 * time.Millisecond,
				}))
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			sw := testSweep(env, engine)
			rep, err := coord.Run(ctx, sw)
			stopWorkers()
			wg.Wait()
			if err != nil {
				t.Fatalf("fleet sweep: %v", err)
			}
			sameSweepResults(t, rep, env.golden[engine])
			if rep.Resumed != 0 {
				t.Errorf("Resumed = %d on a fresh sweep, want 0", rep.Resumed)
			}
			if len(rep.Workers) == 0 {
				t.Errorf("Report.Workers is empty: no per-worker attribution")
			}
			id := sweepID(sw)
			for i := 0; i < 4; i++ {
				if _, ok := shared.Get(chunkKey(id, i)); ok {
					t.Errorf("chunk %d blob survived assembly", i)
				}
			}
			if got := coord.metrics.completed.With("first").Value(); got != 4 {
				t.Errorf("completed{first} = %v, want 4", got)
			}
		})
	}
}

func sweepID(sw Sweep) string { return fmt.Sprintf("%x", sw.Fingerprint) }

// TestFleetWorkerCrashRecovery kills a worker deterministically at the worst
// moment — chunk evaluated, nothing published, lease still held — with a
// lease TTL so long it never expires. Recovery must come from work-stealing:
// the second worker drains the pending chunks, then steals the dead worker's
// chunk, and the report still matches the golden sweep.
func TestFleetWorkerCrashRecovery(t *testing.T) {
	env := testFleetEnv(t)
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: time.Hour, // expiry cannot save us; stealing must
		WaitHint: 2 * time.Millisecond,
	})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	type runRes struct {
		rep *dse.Report
		err error
	}
	resCh := make(chan runRes, 1)
	go func() {
		rep, err := coord.Run(ctx, testSweep(env, "graph"))
		resCh <- runRes{rep, err}
	}()

	crashErr := errors.New("injected worker crash")
	crasher := NewWorker(WorkerConfig{
		CoordinatorURL: srv.URL,
		Shared:         shared,
		Concurrency:    1,
		ID:             "crasher",
		PollInterval:   2 * time.Millisecond,
		onEvaluated:    func(string, int) error { return crashErr },
	})
	if err := crasher.Run(context.Background()); !errors.Is(err, crashErr) {
		t.Fatalf("crasher.Run = %v, want injected crash", err)
	}

	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
		CoordinatorURL: srv.URL,
		Shared:         shared,
		Concurrency:    2,
		ID:             "rescuer",
		PollInterval:   2 * time.Millisecond,
	}))

	res := <-resCh
	stopWorkers()
	wg.Wait()
	if res.err != nil {
		t.Fatalf("fleet sweep: %v", res.err)
	}
	sameSweepResults(t, res.rep, env.golden["graph"])
	if got := coord.metrics.stolen.Value(); got < 1 {
		t.Errorf("stolen = %v, want >= 1: recovery must have gone through the steal path", got)
	}
	if got := coord.metrics.expired.Value(); got != 0 {
		t.Errorf("expired = %v, want 0: the TTL was an hour", got)
	}
}

// TestFleetCoordinatorCrashResume kills the coordinator after exactly two
// chunks were published, restarts a fresh coordinator over the same shared
// root, and requires it to restore those chunks (Report.Resumed) and finish
// with golden-identical results.
func TestFleetCoordinatorCrashResume(t *testing.T) {
	env := testFleetEnv(t)
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep(env, "graph")
	id := sweepID(sw)

	// Phase 1: a single worker publishes chunks 0 and 1, then dies on its
	// third evaluation; the coordinator is cancelled — "crashed" — mid-sweep.
	coord1 := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: time.Hour,
		WaitHint: 2 * time.Millisecond,
	})
	srv1 := httptest.NewServer(coord1)
	ctx1, crashCoord := context.WithCancel(context.Background())
	resCh := make(chan error, 1)
	go func() {
		_, err := coord1.Run(ctx1, sw)
		resCh <- err
	}()
	crashErr := errors.New("injected worker crash")
	var evals atomic.Int32
	crasher := NewWorker(WorkerConfig{
		CoordinatorURL: srv1.URL,
		Shared:         shared,
		Concurrency:    1,
		ID:             "phase1",
		PollInterval:   2 * time.Millisecond,
		onEvaluated: func(string, int) error {
			if evals.Add(1) >= 3 {
				return crashErr
			}
			return nil
		},
	})
	if err := crasher.Run(context.Background()); !errors.Is(err, crashErr) {
		t.Fatalf("phase-1 worker: %v, want injected crash", err)
	}
	crashCoord()
	if err := <-resCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed coordinator Run = %v, want context.Canceled", err)
	}
	srv1.Close()

	published := 0
	for i := 0; i < 4; i++ {
		if _, ok := shared.Get(chunkKey(id, i)); ok {
			published++
		}
	}
	if published != 2 {
		t.Fatalf("%d chunk blobs survive the crash, want exactly 2", published)
	}

	// Phase 2: a fresh coordinator over the same root resumes from the two
	// published chunks; a healthy worker finishes the rest.
	coord2 := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: 10 * time.Second,
		WaitHint: 2 * time.Millisecond,
	})
	srv2 := httptest.NewServer(coord2)
	defer srv2.Close()
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
		CoordinatorURL: srv2.URL,
		Shared:         shared,
		Concurrency:    2,
		ID:             "phase2",
		PollInterval:   2 * time.Millisecond,
	}))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	rep, err := coord2.Run(ctx2, sw)
	stopWorkers()
	wg.Wait()
	if err != nil {
		t.Fatalf("resumed fleet sweep: %v", err)
	}
	sameSweepResults(t, rep, env.golden["graph"])
	if rep.Resumed != 6 {
		t.Errorf("Resumed = %d points, want 6 (two chunks of three)", rep.Resumed)
	}
	if got := coord2.metrics.completed.With("first").Value(); got != 2 {
		t.Errorf("completed{first} = %v on resume, want 2", got)
	}
}

// TestFleetAttachedRun proves two concurrent Runs of the identical sweep
// share one execution: both get golden-identical reports and the chunk work
// is done once.
func TestFleetAttachedRun(t *testing.T) {
	env := testFleetEnv(t)
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: 10 * time.Second,
		WaitHint: 2 * time.Millisecond,
	})
	srv := httptest.NewServer(coord)
	defer srv.Close()
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
		CoordinatorURL: srv.URL,
		Shared:         shared,
		Concurrency:    2,
		ID:             "solo",
		PollInterval:   2 * time.Millisecond,
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var reps [2]*dse.Report
	var errs [2]error
	var runs sync.WaitGroup
	for i := 0; i < 2; i++ {
		runs.Add(1)
		go func(i int) {
			defer runs.Done()
			reps[i], errs[i] = coord.Run(ctx, testSweep(env, "rpstacks"))
		}(i)
	}
	runs.Wait()
	stopWorkers()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		sameSweepResults(t, reps[i], env.golden["rpstacks"])
	}
	if got := coord.metrics.completed.With("first").Value(); got != 4 {
		t.Errorf("completed{first} = %v, want 4: attached runs must share one execution", got)
	}
}
