package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// trace_test.go — the distributed-tracing proofs: tracing a fleet sweep
// changes no result byte, the merged timeline covers the sweep's wall clock
// with per-worker tracks correctly parented across processes, lease-wait is
// observed on the injectable clock, and fragments published before a
// coordinator crash still merge after resume.

// TestFleetTracingDifferential runs the same sweep traced and untraced and
// requires both reports bit-identical to the single-process golden — tracing
// is observability, never behavior. Runs under -race in CI like the rest of
// the package.
func TestFleetTracingDifferential(t *testing.T) {
	env := testFleetEnv(t)
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		t.Run(name, func(t *testing.T) {
			shared, err := store.OpenShared(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			coord := NewCoordinator(CoordinatorConfig{
				Shared:   shared,
				LeaseTTL: 10 * time.Second,
				WaitHint: 2 * time.Millisecond,
			})
			srv := httptest.NewServer(coord)
			defer srv.Close()
			wctx, stopWorkers := context.WithCancel(context.Background())
			defer stopWorkers()
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
					CoordinatorURL: srv.URL,
					Shared:         shared,
					Concurrency:    2,
					ID:             fmt.Sprintf("tw%d", i),
					PollInterval:   2 * time.Millisecond,
				}))
			}
			sw := testSweep(env, "rpstacks")
			if traced {
				sw.Tracer = obs.NewTracer(4096)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			rep, err := coord.Run(ctx, sw)
			stopWorkers()
			wg.Wait()
			if err != nil {
				t.Fatalf("fleet sweep: %v", err)
			}
			sameSweepResults(t, rep, env.golden["rpstacks"])
			id := sweepID(sw)
			frags := coord.TraceFragments(id)
			if traced && len(frags) == 0 {
				t.Error("traced sweep retained no fragments")
			}
			if !traced && len(frags) != 0 {
				t.Errorf("untraced sweep retained %d fragments, want none", len(frags))
			}
			for i := 0; i < 4; i++ {
				if _, ok := shared.Get(fragKey(id, i)); ok {
					t.Errorf("fragment blob %d survived assembly", i)
				}
			}
		})
	}
}

// coverage returns the union of all span intervals in the timeline — how
// much of the merged timebase is covered by at least one span.
func coverage(tl *obs.Timeline) time.Duration {
	type iv struct{ lo, hi time.Duration }
	var ivs []iv
	for _, r := range tl.Flatten() {
		ivs = append(ivs, iv{r.Start, r.Start + r.Dur})
	}
	if len(ivs) == 0 {
		return 0
	}
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var total time.Duration
	end := ivs[0].lo
	for _, v := range ivs {
		if v.hi <= end {
			continue
		}
		if v.lo > end {
			total += v.hi - v.lo
		} else {
			total += v.hi - end
		}
		end = v.hi
	}
	return total
}

// TestFleetMergedTimelineCoverage is the acceptance bar across processes: a
// two-worker traced sweep merges into a timeline with one track per worker,
// worker spans parented under the coordinator's chunk spans, covering at
// least 95% of the assembled Report.Wall. A barrier in onEvaluated forces
// both workers to evaluate at least one chunk, so two worker tracks are
// deterministic, not racy.
func TestFleetMergedTimelineCoverage(t *testing.T) {
	env := testFleetEnv(t)
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: 30 * time.Second,
		WaitHint: 2 * time.Millisecond,
	})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	// Rendezvous: each worker blocks after its first evaluation until the
	// other has evaluated too — both end up owning at least one chunk.
	var barrier sync.WaitGroup
	barrier.Add(2)
	mkHook := func() func(string, int) error {
		var once sync.Once
		return func(string, int) error {
			once.Do(func() { barrier.Done(); barrier.Wait() })
			return nil
		}
	}
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
			CoordinatorURL: srv.URL,
			Shared:         shared,
			Concurrency:    2,
			ID:             fmt.Sprintf("mw%d", i),
			PollInterval:   2 * time.Millisecond,
			onEvaluated:    mkHook(),
		}))
	}

	sw := testSweep(env, "graph")
	sw.Tracer = obs.NewTracer(4096)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := coord.Run(ctx, sw)
	stopWorkers()
	wg.Wait()
	if err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	sameSweepResults(t, rep, env.golden["graph"])

	local := sw.Tracer.Snapshot()
	frags := coord.TraceFragments(sweepID(sw))
	tl := obs.MergeTimeline("coord", local, frags)
	if len(tl.Tracks) != 3 {
		for _, tr := range tl.Tracks {
			t.Logf("track %q: %d records", tr.Name, len(tr.Records))
		}
		t.Fatalf("merged %d tracks, want coord + 2 workers", len(tl.Tracks))
	}

	// Every worker evaluate span must parent under a coordinator chunk span:
	// the cross-process context propagated through the lease grant.
	chunkIDs := make(map[uint64]bool)
	for _, r := range tl.Tracks[0].Records {
		if r.Cat == obs.CatFleet && r.Name == obs.NameChunk {
			chunkIDs[r.ID] = true
		}
	}
	if len(chunkIDs) != 4 {
		t.Errorf("coordinator track has %d chunk spans, want 4", len(chunkIDs))
	}
	for _, trk := range tl.Tracks[1:] {
		evals := 0
		for _, r := range trk.Records {
			if r.Cat == obs.CatFleet && r.Name == obs.NameEvaluate {
				evals++
				if !chunkIDs[r.Parent] {
					t.Errorf("track %q: evaluate span %#x parented at %#x, not a coordinator chunk span",
						trk.Name, r.ID, r.Parent)
				}
			}
		}
		if evals == 0 {
			t.Errorf("track %q has no evaluate spans", trk.Name)
		}
	}

	// The acceptance bar: merged spans cover >= 95% of the report's wall.
	if cov := coverage(tl); float64(cov) < 0.95*float64(rep.Wall) {
		t.Errorf("merged timeline covers %v of %v wall (%.1f%%), want >= 95%%",
			cov, rep.Wall, 100*float64(cov)/float64(rep.Wall))
	}
}

// TestFleetLeaseWaitHistogram drives the lease protocol on the injected clock
// and checks the published-but-unleased wait lands in the histogram: once per
// first grant with the time since registration, again after an expiry makes a
// chunk grantable anew — and never for a steal.
func TestFleetLeaseWaitHistogram(t *testing.T) {
	e := newProtoEnv(t, 10*time.Second, 8, 2) // 4 chunks
	e.clock.Advance(3 * time.Second)
	if g := e.mustLease("w1"); g.Stolen {
		t.Fatalf("first grant stolen: %+v", g)
	}
	if got := e.coord.metrics.leaseWait.Count(); got != 1 {
		t.Fatalf("leaseWait count after first grant = %d, want 1", got)
	}
	// Three more first-grants drain the pending chunks...
	for i := 0; i < 3; i++ {
		e.mustLease("w1")
	}
	if got := e.coord.metrics.leaseWait.Count(); got != 4 {
		t.Fatalf("leaseWait count after draining = %d, want 4", got)
	}
	// ...so the next lease from another worker is a steal: no wait observed —
	// the chunk never went back to pending.
	if g := e.mustLease("w2"); !g.Stolen {
		t.Fatalf("expected a stolen lease, got %+v", g)
	}
	if got := e.coord.metrics.leaseWait.Count(); got != 4 {
		t.Errorf("leaseWait count after steal = %d, want still 4", got)
	}

	// Expire every lease: chunks revert to pending at expiry time, and the
	// next grant observes a fresh (zero) wait — a fifth observation.
	e.clock.Advance(11 * time.Second)
	if g := e.mustLease("w3"); g.Stolen {
		t.Fatalf("expected a fresh re-grant after expiry, got %+v", g)
	}
	if got := e.coord.metrics.leaseWait.Count(); got != 5 {
		t.Errorf("leaseWait count after expiry re-grant = %d, want 5", got)
	}
}

// TestFleetFragmentAfterCoordinatorResume crashes the coordinator after a
// worker published two chunks (and their trace fragments), then kills the
// worker too. The resumed coordinator restores the chunks from blobs, a
// healthy worker finishes the rest, and the dead worker's fragments — still
// sitting in the store — must merge into the final timeline.
func TestFleetFragmentAfterCoordinatorResume(t *testing.T) {
	env := testFleetEnv(t)
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep(env, "graph")
	sw.Tracer = obs.NewTracer(4096)
	id := sweepID(sw)

	coord1 := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: time.Hour,
		WaitHint: 2 * time.Millisecond,
	})
	srv1 := httptest.NewServer(coord1)
	ctx1, crashCoord := context.WithCancel(context.Background())
	resCh := make(chan error, 1)
	go func() {
		_, err := coord1.Run(ctx1, sw)
		resCh <- err
	}()
	crashErr := errors.New("injected worker crash")
	var evals atomic.Int32
	crasher := NewWorker(WorkerConfig{
		CoordinatorURL: srv1.URL,
		Shared:         shared,
		Concurrency:    1,
		ID:             "victim",
		PollInterval:   2 * time.Millisecond,
		onEvaluated: func(string, int) error {
			if evals.Add(1) >= 3 {
				return crashErr
			}
			return nil
		},
	})
	if err := crasher.Run(context.Background()); !errors.Is(err, crashErr) {
		t.Fatalf("phase-1 worker: %v, want injected crash", err)
	}
	crashCoord()
	if err := <-resCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed coordinator Run = %v, want context.Canceled", err)
	}
	srv1.Close()

	fragsSurviving := 0
	for i := 0; i < 4; i++ {
		if _, ok := shared.Get(fragKey(id, i)); ok {
			fragsSurviving++
		}
	}
	if fragsSurviving != 2 {
		t.Fatalf("%d fragment blobs survive the crash, want exactly 2", fragsSurviving)
	}

	// Phase 2: fresh coordinator, fresh tracer (a new epoch — the dead
	// worker's syncs reference the old one), healthy worker.
	sw2 := testSweep(env, "graph")
	sw2.Tracer = obs.NewTracer(4096)
	coord2 := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: 10 * time.Second,
		WaitHint: 2 * time.Millisecond,
	})
	srv2 := httptest.NewServer(coord2)
	defer srv2.Close()
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
		CoordinatorURL: srv2.URL,
		Shared:         shared,
		Concurrency:    2,
		ID:             "rescuer",
		PollInterval:   2 * time.Millisecond,
	}))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	rep, err := coord2.Run(ctx2, sw2)
	stopWorkers()
	wg.Wait()
	if err != nil {
		t.Fatalf("resumed fleet sweep: %v", err)
	}
	sameSweepResults(t, rep, env.golden["graph"])
	if rep.Resumed != 6 {
		t.Errorf("Resumed = %d points, want 6", rep.Resumed)
	}

	frags := coord2.TraceFragments(id)
	byProcess := make(map[string]int)
	for _, f := range frags {
		byProcess[f.Process]++
	}
	if byProcess["victim"] != 2 {
		t.Errorf("resumed sweep merged %d fragments from the dead worker, want its 2 published ones (got %v)",
			byProcess["victim"], byProcess)
	}
	if byProcess["rescuer"] != 2 {
		t.Errorf("rescuer fragments = %d, want 2 (got %v)", byProcess["rescuer"], byProcess)
	}
	// The dead worker's stale-epoch fragments still merge into the timeline:
	// MergeTimeline normalizes its track by the freshest sync it has, and the
	// global re-base keeps every timestamp non-negative.
	tl := obs.MergeTimeline("coord", sw2.Tracer.Snapshot(), frags)
	if len(tl.Tracks) != 3 {
		t.Fatalf("merged %d tracks, want coord + victim + rescuer", len(tl.Tracks))
	}
	for _, r := range tl.Flatten() {
		if r.Start < 0 {
			t.Errorf("span %q starts at %v after resume merge; want non-negative", r.Name, r.Start)
		}
	}
}
