package fleet

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/prom"
	"repro/internal/stacks"
	"repro/internal/store"
)

// WorkerConfig parameterizes NewWorker.
type WorkerConfig struct {
	// CoordinatorURL is the base URL the /fleet/v1/ protocol lives under,
	// e.g. "http://127.0.0.1:9090". Required.
	CoordinatorURL string
	// Shared is the blob root chunk results are published into — the same
	// directory the coordinator opened. Required.
	Shared *store.Shared
	// Concurrency is dse.ExploreOptions.Parallelism for each chunk
	// evaluation (default GOMAXPROCS). Results are identical at any value.
	Concurrency int
	// ID names this worker to the coordinator (default "<hostname>-<pid>").
	ID string
	// Client issues the protocol requests (default: a dedicated client with
	// a 30s timeout).
	Client *http.Client
	// PollInterval is the idle re-poll delay when the coordinator has no
	// grantable chunk or is unreachable (default 200ms).
	PollInterval time.Duration
	// Logger receives lease-lifecycle logs. Nil discards.
	Logger *slog.Logger
	// Tracer, when non-nil, records lease/evaluate/publish spans on the
	// caller's tracer. When nil the worker builds its own: span IDs
	// namespaced by the worker ID (obs.WithProcessID) and every completed
	// span captured for the trace fragments it publishes beside chunk
	// results. A caller-owned tracer disables fragment publication — the
	// caller owns the records' destination.
	Tracer *obs.Tracer

	// onEvaluated, when non-nil, runs after a chunk is evaluated and before
	// its blob is published; a non-nil error aborts Run right there. Test
	// hook: deterministic worker-crash injection at the worst moment — work
	// done, nothing published, lease still held.
	onEvaluated func(sweepID string, chunk int) error
}

// Worker pulls chunk leases from a Coordinator, evaluates them through the
// deterministic sweep engines, and publishes result blobs into the shared
// store root. Construct with NewWorker; Run once.
type Worker struct {
	url    string
	shared *store.Shared
	conc   int
	id     string
	client *http.Client
	poll   time.Duration
	logger *slog.Logger
	tracer *obs.Tracer
	// collector captures every completed span of the worker-owned tracer so
	// handleLease can publish them as trace fragments; nil when the tracer is
	// caller-owned.
	collector *spanCollector
	reg       *prom.Registry
	wm        *workerMetrics

	onEvaluated func(string, int) error

	start    time.Time
	draining atomic.Bool
	// sweeps caches rebuilt engines per sweep id; touched only by the Run
	// goroutine.
	sweeps map[string]*workerSweep
	// runners caches workload rebuilds per (seed, µops) recipe, so the
	// many single-round sweeps of one guided search (each a distinct
	// fingerprint) re-simulate the workload once, not once per round.
	// Touched only by the Run goroutine.
	runners map[string]*experiments.Runner
}

// workerSweep is one sweep's rebuilt, fingerprint-verified engine state.
type workerSweep struct {
	info   sweepInfo
	points []stacks.Latencies
	fp     []byte
	run    func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error)
	// batch is the lane width chunks evaluate at. It starts as the spec's;
	// when that is 0 (autotune) the first chunk's resolved width is cached
	// here so later chunks skip the autotune probe.
	batch int
}

// NewWorker builds a Worker. Missing CoordinatorURL or Shared is a wiring
// bug and panics.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.CoordinatorURL == "" {
		panic("fleet: WorkerConfig.CoordinatorURL is required")
	}
	if cfg.Shared == nil {
		panic("fleet: WorkerConfig.Shared is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	w := &Worker{
		url:         cfg.CoordinatorURL,
		shared:      cfg.Shared,
		conc:        cfg.Concurrency,
		id:          cfg.ID,
		client:      cfg.Client,
		poll:        cfg.PollInterval,
		logger:      cfg.Logger,
		tracer:      cfg.Tracer,
		reg:         prom.NewRegistry(),
		onEvaluated: cfg.onEvaluated,
		start:       time.Now(),
		sweeps:      make(map[string]*workerSweep),
		runners:     make(map[string]*experiments.Runner),
	}
	if w.tracer == nil {
		w.collector = &spanCollector{}
		w.tracer = obs.NewTracer(obs.DefaultCapacity,
			obs.WithProcessID(w.id),
			obs.WithOnEnd(w.collector.observe))
	}
	w.wm = newWorkerMetrics(w.reg)
	registerProcessStart(w.reg, w.start)
	return w
}

// Tracer exposes the worker's tracer — rpworker's -trace-out snapshots it.
func (w *Worker) Tracer() *obs.Tracer { return w.tracer }

// spanCollector accumulates completed span records between fragment
// publications. It sits on the tracer's OnEnd hook, so unlike the tracer
// ring it never drops a record — handleLease drains it once per chunk, which
// bounds it at one chunk's span count.
type spanCollector struct {
	mu   sync.Mutex
	recs []obs.Record
}

func (c *spanCollector) observe(r obs.Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

func (c *spanCollector) drain() []obs.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.recs
	c.recs = nil
	return out
}

// workerMetrics are the worker process's own rpstacks_worker_* families,
// served on its health listener at /metrics — the per-process view the
// coordinator's federated rpstacks_fleet_worker_* summaries approximate.
type workerMetrics struct {
	chunks  *prom.Counter
	points  *prom.Counter
	eval    *prom.Counter
	publish *prom.Counter
}

func newWorkerMetrics(reg *prom.Registry) *workerMetrics {
	return &workerMetrics{
		chunks: reg.Counter("rpstacks_worker_chunks_total",
			"Chunks this worker evaluated and published."),
		points: reg.Counter("rpstacks_worker_points_total",
			"Design points this worker evaluated."),
		eval: reg.Counter("rpstacks_worker_evaluate_seconds_total",
			"Wall-clock this worker spent evaluating chunks."),
		publish: reg.Counter("rpstacks_worker_publish_seconds_total",
			"Wall-clock this worker spent publishing result blobs."),
	}
}

// registerProcessStart exports the Unix start time of this process — the
// standard restart-detection gauge, on both the worker's and rpserved's
// registries.
func registerProcessStart(reg *prom.Registry, start time.Time) {
	reg.Gauge("rpstacks_process_start_time_seconds",
		"Unix time this process started.").Set(float64(start.UnixNano()) / 1e9)
}

// ID reports the worker's identity as the coordinator sees it.
func (w *Worker) ID() string { return w.id }

// Drain stops the worker taking new leases; Run finishes the chunk in hand
// (if any) and returns nil. /readyz answers 503 from the moment Drain is
// called, matching rpserved's drain semantics.
func (w *Worker) Drain() { w.draining.Store(true) }

// Run is the lease-pull loop: lease, rebuild+verify the sweep's engine
// (cached per sweep), evaluate, publish, complete, repeat. It returns nil
// after Drain, ctx.Err() on cancellation, and a non-nil error only for hard
// faults — a sweep whose rebuilt fingerprint disagrees with the
// coordinator's, or an engine failure — where continuing could publish
// wrong results. Coordinator unavailability is soft: the worker backs off
// and retries forever.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if w.draining.Load() {
			return nil
		}
		var grant leaseResponse
		// Bracket the lease round-trip on the worker tracer's clock: paired
		// with the coordinator clock stamped into the grant, (t0, t1, coord)
		// is one NTP-style obs.ClockSync — the coordinator produced its stamp
		// somewhere inside [t0, t1], so the midpoint bounds the skew by half
		// the round-trip. The freshest sync rides in this chunk's fragment
		// and normalizes this worker's track in the merged timeline.
		t0 := w.tracer.Now()
		status, err := w.postJSON(ctx, "/fleet/v1/lease", leaseRequest{Worker: w.id}, &grant)
		t1 := w.tracer.Now()
		if err != nil || status != http.StatusOK {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logger.Warn("fleet: lease request failed", slog.Any("err", err), slog.Int("status", status))
			if !sleepCtx(ctx, w.poll) {
				return ctx.Err()
			}
			continue
		}
		if grant.Status != "lease" {
			d := time.Duration(grant.WaitMillis) * time.Millisecond
			if d <= 0 {
				d = w.poll
			}
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
			continue
		}
		var csync obs.ClockSync
		hasSync := false
		if grant.CoordClockNanos != 0 {
			csync = obs.ClockSync{T0: t0, T1: t1, Coord: time.Duration(grant.CoordClockNanos)}
			hasSync = true
		}
		if err := w.handleLease(ctx, grant, csync, hasSync); err != nil {
			return err
		}
	}
}

// handleLease evaluates and publishes one granted chunk. Soft faults (sweep
// vanished, publish raced, coordinator restarting) log and return nil; hard
// faults return the error and kill Run. The grant's trace context parents
// every span recorded here under the coordinator's chunk span; csync is the
// lease round-trip's clock correspondence, shipped in the chunk's fragment.
func (w *Worker) handleLease(ctx context.Context, grant leaseResponse, csync obs.ClockSync, hasSync bool) error {
	sp := w.tracer.StartChild(grant.TraceParent, obs.CatFleet, obs.NameLease)
	sp.SetDetail(shortID(grant.SweepID))
	sp.SetArg("chunk", int64(grant.Chunk))
	sp.End()

	// Renew the lease at TTL/3 for as long as the chunk is in flight — and
	// start renewing *before* fetching the sweep, because the first lease of
	// a sweep pays the one-time workload rebuild, which can easily outlast a
	// short TTL. A 410 means the lease already expired — the chunk may be
	// re-leased, but this worker finishes anyway: its blob is byte-identical
	// to any rival's, and completion is first-writer-wins.
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	if ttl := time.Duration(grant.TTLMillis) * time.Millisecond; ttl > 0 {
		hbDone.Add(1)
		go func() {
			defer hbDone.Done()
			t := time.NewTicker(ttl / 3)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-ctx.Done():
					return
				case <-t.C:
					var resp heartbeatResponse
					status, err := w.postJSON(ctx, "/fleet/v1/heartbeat", heartbeatRequest{Worker: w.id, Lease: grant.Lease}, &resp)
					if err == nil && status == http.StatusGone {
						w.logger.Warn("fleet: lease expired under us; finishing anyway",
							slog.Uint64("lease", grant.Lease), slog.Int("chunk", grant.Chunk))
						return
					}
				}
			}
		}()
	}
	defer func() {
		close(hbStop)
		hbDone.Wait()
	}()

	ws, err := w.getSweep(ctx, grant.SweepID)
	if err != nil {
		if _, gone := err.(errSweepGone); gone {
			// The sweep finished or was cancelled between grant and fetch.
			w.logger.Info("fleet: leased sweep vanished", slog.String("sweep", shortID(grant.SweepID)))
			sleepCtx(ctx, w.poll)
			return nil
		}
		return err
	}
	if grant.Lo < 0 || grant.Hi > len(ws.points) || grant.Lo >= grant.Hi {
		return fmt.Errorf("fleet: lease range [%d,%d) outside sweep of %d points", grant.Lo, grant.Hi, len(ws.points))
	}

	pts := ws.points[grant.Lo:grant.Hi]
	esp := w.tracer.StartChild(grant.TraceParent, obs.CatFleet, obs.NameEvaluate)
	esp.SetDetail(fmt.Sprintf("%s chunk %d", shortID(grant.SweepID), grant.Chunk))
	esp.SetArg(obs.ArgPoints, int64(len(pts)))
	evalStart := time.Now()
	rep, err := ws.run(pts, dse.ExploreOptions{
		Parallelism: w.conc,
		BatchSize:   ws.batch,
		Context:     ctx,
		Tracer:      w.tracer,
		TraceParent: esp.ID(),
	})
	evalDur := time.Since(evalStart)
	esp.End()
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("fleet: evaluating chunk %d of sweep %s: %w", grant.Chunk, shortID(grant.SweepID), err)
	}
	if ws.batch == 0 && rep.Batch > 0 {
		ws.batch = rep.Batch
	}
	if w.onEvaluated != nil {
		if err := w.onEvaluated(grant.SweepID, grant.Chunk); err != nil {
			return err
		}
	}

	idxs := make([]int, len(pts))
	cycles := make([]float64, len(pts))
	for k := range pts {
		idxs[k] = grant.Lo + k
		cycles[k] = rep.Results[k].Cycles
	}
	blob, err := dse.EncodeChunk(ws.fp, idxs, cycles)
	if err != nil {
		return fmt.Errorf("fleet: encoding chunk %d: %w", grant.Chunk, err)
	}
	psp := w.tracer.StartChild(grant.TraceParent, obs.CatFleet, obs.NamePublish)
	psp.SetDetail(fmt.Sprintf("%s chunk %d", shortID(grant.SweepID), grant.Chunk))
	pubStart := time.Now()
	dup, perr := w.shared.Put(chunkKey(grant.SweepID, grant.Chunk), blob)
	pubDur := time.Since(pubStart)
	psp.End()
	if perr != nil {
		// The blob never landed; say nothing, let the lease expire and the
		// chunk re-lease. A persistently broken shared root keeps failing
		// loudly in the log without corrupting anything.
		w.logger.Warn("fleet: publishing chunk failed", slog.Int("chunk", grant.Chunk), slog.Any("err", perr))
		sleepCtx(ctx, w.poll)
		return nil
	}
	w.wm.chunks.Inc()
	w.wm.points.Add(float64(len(pts)))
	w.wm.eval.Add(evalDur.Seconds())
	w.wm.publish.Add(pubDur.Seconds())

	// Publish this chunk's trace fragment beside its result blob — before
	// the completion call, so even a worker killed right after complete (or
	// a coordinator that crashes and resumes) finds the fragment in the
	// store. Only when the coordinator traces this sweep (TraceParent set)
	// and the worker owns its tracer; failure costs the timeline a track,
	// never the sweep a result.
	if grant.TraceParent != 0 && w.collector != nil {
		frag := &obs.Fragment{Process: w.id, Records: w.collector.drain(), Sync: csync, HasSync: hasSync}
		if fraw, ferr := obs.EncodeFragment(ws.fp, frag); ferr != nil {
			w.logger.Warn("fleet: encoding trace fragment failed", slog.Int("chunk", grant.Chunk), slog.Any("err", ferr))
		} else if _, ferr := w.shared.Put(fragKey(grant.SweepID, grant.Chunk), fraw); ferr != nil {
			w.logger.Warn("fleet: publishing trace fragment failed", slog.Int("chunk", grant.Chunk), slog.Any("err", ferr))
		}
	} else if w.collector != nil {
		w.collector.drain() // untraced sweep: discard, keep the collector bounded
	}

	var cresp completeResponse
	status, err := w.postJSON(ctx, "/fleet/v1/complete", completeRequest{
		Worker:         w.id,
		Lease:          grant.Lease,
		SweepID:        grant.SweepID,
		Chunk:          grant.Chunk,
		Points:         len(pts),
		EvalSeconds:    evalDur.Seconds(),
		PublishSeconds: pubDur.Seconds(),
	}, &cresp)
	switch {
	case err != nil:
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The blob is published; a restarted coordinator restores it even if
		// this completion call was lost.
		w.logger.Warn("fleet: completion call failed", slog.Int("chunk", grant.Chunk), slog.Any("err", err))
	case status != http.StatusOK:
		w.logger.Warn("fleet: completion rejected",
			slog.Int("chunk", grant.Chunk), slog.Int("status", status))
	default:
		w.logger.Info("fleet: chunk completed",
			slog.String("sweep", shortID(grant.SweepID)),
			slog.Int("chunk", grant.Chunk),
			slog.Int("points", len(pts)),
			slog.Bool("stolen", grant.Stolen),
			slog.Bool("dup_blob", dup),
			slog.String("result", cresp.Status))
	}
	return nil
}

// errSweepGone marks a sweep the coordinator no longer knows — a soft fault.
type errSweepGone struct{ id string }

func (e errSweepGone) Error() string { return fmt.Sprintf("fleet: sweep %s gone", shortID(e.id)) }

// getSweep returns the cached engine state of the sweep, rebuilding and
// fingerprint-verifying it on first sight.
func (w *Worker) getSweep(ctx context.Context, id string) (*workerSweep, error) {
	if ws, ok := w.sweeps[id]; ok {
		return ws, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/fleet/v1/sweep?id="+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, errSweepGone{id}
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxProtocolBody))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errSweepGone{id}
	}
	if rerr != nil {
		return nil, errSweepGone{id}
	}
	var info sweepInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("fleet: decoding sweep info: %w", err)
	}
	ws, err := w.buildSweep(info)
	if err != nil {
		return nil, err
	}
	w.sweeps[id] = ws
	w.logger.Info("fleet: sweep engine ready",
		slog.String("sweep", shortID(id)),
		slog.String("engine", info.Spec.Engine),
		slog.String("workload", info.Spec.Workload),
		slog.Int("points", len(ws.points)))
	return ws, nil
}

// runner returns the cached workload runner for the spec's (seed, µops)
// recipe, creating it on first use. The runner memoizes rebuilt apps per
// workload, so consecutive sweeps over the same recipe — notably the
// round-per-fingerprint stream of a guided search — share one rebuild.
func (w *Worker) runner(spec SweepSpec) *experiments.Runner {
	key := fmt.Sprintf("%d|%d", spec.Seed, spec.MicroOps)
	if r, ok := w.runners[key]; ok {
		return r
	}
	r := experiments.NewRunner(spec.MicroOps)
	r.Seed = spec.Seed
	w.runners[key] = r
	return r
}

// buildSweep deterministically rebuilds the sweep's engine inputs from its
// spec and proves identity: the recomputed fingerprint must equal the
// coordinator's sweep id, or the worker refuses the sweep outright — the
// fingerprint covers the analysis/graph/config bytes and every point value,
// so equality means the worker will produce bit-identical results.
func (w *Worker) buildSweep(info sweepInfo) (*workerSweep, error) {
	spec := info.Spec
	if _, err := methodName(spec.Engine); err != nil {
		return nil, err
	}
	r := w.runner(spec)
	app, err := r.App(spec.Workload)
	if err != nil {
		return nil, fmt.Errorf("fleet: rebuilding sweep %s: %w", shortID(info.ID), err)
	}
	// An explicit sweep (a guided search's probe round) ships its point
	// list because the points are not the axes' enumeration; the
	// fingerprint check below binds every shipped value all the same.
	points := info.PointList
	if len(points) == 0 {
		space, err := parseAxes(spec.Axes)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep %s axes: %w", shortID(info.ID), err)
		}
		points = space.Enumerate(r.Cfg.Lat)
	}
	if len(points) != info.Points {
		return nil, fmt.Errorf("fleet: sweep %s: rebuilt %d points, coordinator has %d",
			shortID(info.ID), len(points), info.Points)
	}
	var fp []byte
	switch spec.Engine {
	case "graph":
		fp, err = dse.SweepFingerprintGraph(app.Graph, points)
	case "rpstacks":
		fp, err = dse.SweepFingerprintRpStacks(app.Analysis, points)
	case "sim":
		fp, err = dse.SweepFingerprintSim(r.Cfg, app.UOps, points)
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: fingerprinting sweep %s: %w", shortID(info.ID), err)
	}
	if hex.EncodeToString(fp) != info.ID {
		return nil, fmt.Errorf("fleet: rebuilt fingerprint %s disagrees with coordinator sweep %s — refusing to evaluate",
			shortID(hex.EncodeToString(fp)), shortID(info.ID))
	}
	ws := &workerSweep{info: info, points: points, fp: fp, batch: spec.BatchSize}
	switch spec.Engine {
	case "graph":
		ws.run = func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error) {
			return dse.ExploreGraphOpts(app.Graph, pts, opts)
		}
	case "rpstacks":
		ws.run = func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error) {
			return dse.ExploreRpStacksOpts(app.Analysis, pts, opts)
		}
	case "sim":
		ws.run = func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error) {
			return dse.ExploreSimOpts(r.Cfg, app.UOps, pts, opts)
		}
	}
	return ws, nil
}

// postJSON posts req to the coordinator path and decodes the response into
// out when the status is 2xx/410 (protocol answers); returns the HTTP
// status. Transport failures return err.
func (w *Worker) postJSON(ctx context.Context, path string, reqBody, out any) (int, error) {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxProtocolBody))
	_ = resp.Body.Close()
	if rerr != nil {
		return resp.StatusCode, rerr
	}
	if out != nil && len(body) > 0 {
		_ = json.Unmarshal(body, out)
	}
	return resp.StatusCode, nil
}

// Handler serves the worker's liveness and metrics endpoints, mirroring
// rpserved's semantics: GET /healthz is always 200 and reports ok or
// draining; GET /readyz flips to 503 the moment the worker drains, so a
// local balancer or smoke harness can watch the transition; GET /metrics is
// the worker's own rpstacks_worker_* registry in Prometheus exposition
// format.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		status := "ok"
		if w.draining.Load() {
			status = "draining"
		}
		fleetJSON(rw, http.StatusOK, map[string]any{
			"status":         status,
			"worker":         w.id,
			"uptime_seconds": time.Since(w.start).Seconds(),
		})
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, _ *http.Request) {
		if w.draining.Load() {
			fleetJSON(rw, http.StatusServiceUnavailable, map[string]string{"status": "draining", "worker": w.id})
			return
		}
		fleetJSON(rw, http.StatusOK, map[string]string{"status": "ready", "worker": w.id})
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.reg.WriteText(rw)
	})
	return mux
}

// sleepCtx sleeps d or until ctx cancels; reports whether the sleep ran its
// course.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
