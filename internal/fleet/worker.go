package fleet

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/stacks"
	"repro/internal/store"
)

// WorkerConfig parameterizes NewWorker.
type WorkerConfig struct {
	// CoordinatorURL is the base URL the /fleet/v1/ protocol lives under,
	// e.g. "http://127.0.0.1:9090". Required.
	CoordinatorURL string
	// Shared is the blob root chunk results are published into — the same
	// directory the coordinator opened. Required.
	Shared *store.Shared
	// Concurrency is dse.ExploreOptions.Parallelism for each chunk
	// evaluation (default GOMAXPROCS). Results are identical at any value.
	Concurrency int
	// ID names this worker to the coordinator (default "<hostname>-<pid>").
	ID string
	// Client issues the protocol requests (default: a dedicated client with
	// a 30s timeout).
	Client *http.Client
	// PollInterval is the idle re-poll delay when the coordinator has no
	// grantable chunk or is unreachable (default 200ms).
	PollInterval time.Duration
	// Logger receives lease-lifecycle logs. Nil discards.
	Logger *slog.Logger
	// Tracer, when non-nil, records lease/evaluate/publish spans.
	Tracer *obs.Tracer

	// onEvaluated, when non-nil, runs after a chunk is evaluated and before
	// its blob is published; a non-nil error aborts Run right there. Test
	// hook: deterministic worker-crash injection at the worst moment — work
	// done, nothing published, lease still held.
	onEvaluated func(sweepID string, chunk int) error
}

// Worker pulls chunk leases from a Coordinator, evaluates them through the
// deterministic sweep engines, and publishes result blobs into the shared
// store root. Construct with NewWorker; Run once.
type Worker struct {
	url    string
	shared *store.Shared
	conc   int
	id     string
	client *http.Client
	poll   time.Duration
	logger *slog.Logger
	tracer *obs.Tracer

	onEvaluated func(string, int) error

	draining atomic.Bool
	// sweeps caches rebuilt engines per sweep id; touched only by the Run
	// goroutine.
	sweeps map[string]*workerSweep
	// runners caches workload rebuilds per (seed, µops) recipe, so the
	// many single-round sweeps of one guided search (each a distinct
	// fingerprint) re-simulate the workload once, not once per round.
	// Touched only by the Run goroutine.
	runners map[string]*experiments.Runner
}

// workerSweep is one sweep's rebuilt, fingerprint-verified engine state.
type workerSweep struct {
	info   sweepInfo
	points []stacks.Latencies
	fp     []byte
	run    func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error)
	// batch is the lane width chunks evaluate at. It starts as the spec's;
	// when that is 0 (autotune) the first chunk's resolved width is cached
	// here so later chunks skip the autotune probe.
	batch int
}

// NewWorker builds a Worker. Missing CoordinatorURL or Shared is a wiring
// bug and panics.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.CoordinatorURL == "" {
		panic("fleet: WorkerConfig.CoordinatorURL is required")
	}
	if cfg.Shared == nil {
		panic("fleet: WorkerConfig.Shared is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Worker{
		url:         cfg.CoordinatorURL,
		shared:      cfg.Shared,
		conc:        cfg.Concurrency,
		id:          cfg.ID,
		client:      cfg.Client,
		poll:        cfg.PollInterval,
		logger:      cfg.Logger,
		tracer:      cfg.Tracer,
		onEvaluated: cfg.onEvaluated,
		sweeps:      make(map[string]*workerSweep),
		runners:     make(map[string]*experiments.Runner),
	}
}

// ID reports the worker's identity as the coordinator sees it.
func (w *Worker) ID() string { return w.id }

// Drain stops the worker taking new leases; Run finishes the chunk in hand
// (if any) and returns nil. /readyz answers 503 from the moment Drain is
// called, matching rpserved's drain semantics.
func (w *Worker) Drain() { w.draining.Store(true) }

// Run is the lease-pull loop: lease, rebuild+verify the sweep's engine
// (cached per sweep), evaluate, publish, complete, repeat. It returns nil
// after Drain, ctx.Err() on cancellation, and a non-nil error only for hard
// faults — a sweep whose rebuilt fingerprint disagrees with the
// coordinator's, or an engine failure — where continuing could publish
// wrong results. Coordinator unavailability is soft: the worker backs off
// and retries forever.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if w.draining.Load() {
			return nil
		}
		var grant leaseResponse
		status, err := w.postJSON(ctx, "/fleet/v1/lease", leaseRequest{Worker: w.id}, &grant)
		if err != nil || status != http.StatusOK {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logger.Warn("fleet: lease request failed", slog.Any("err", err), slog.Int("status", status))
			if !sleepCtx(ctx, w.poll) {
				return ctx.Err()
			}
			continue
		}
		if grant.Status != "lease" {
			d := time.Duration(grant.WaitMillis) * time.Millisecond
			if d <= 0 {
				d = w.poll
			}
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
			continue
		}
		if err := w.handleLease(ctx, grant); err != nil {
			return err
		}
	}
}

// handleLease evaluates and publishes one granted chunk. Soft faults (sweep
// vanished, publish raced, coordinator restarting) log and return nil; hard
// faults return the error and kill Run.
func (w *Worker) handleLease(ctx context.Context, grant leaseResponse) error {
	sp := w.tracer.StartChild(0, obs.CatFleet, obs.NameLease)
	sp.SetDetail(shortID(grant.SweepID))
	sp.SetArg("chunk", int64(grant.Chunk))
	sp.End()

	// Renew the lease at TTL/3 for as long as the chunk is in flight — and
	// start renewing *before* fetching the sweep, because the first lease of
	// a sweep pays the one-time workload rebuild, which can easily outlast a
	// short TTL. A 410 means the lease already expired — the chunk may be
	// re-leased, but this worker finishes anyway: its blob is byte-identical
	// to any rival's, and completion is first-writer-wins.
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	if ttl := time.Duration(grant.TTLMillis) * time.Millisecond; ttl > 0 {
		hbDone.Add(1)
		go func() {
			defer hbDone.Done()
			t := time.NewTicker(ttl / 3)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-ctx.Done():
					return
				case <-t.C:
					var resp heartbeatResponse
					status, err := w.postJSON(ctx, "/fleet/v1/heartbeat", heartbeatRequest{Worker: w.id, Lease: grant.Lease}, &resp)
					if err == nil && status == http.StatusGone {
						w.logger.Warn("fleet: lease expired under us; finishing anyway",
							slog.Uint64("lease", grant.Lease), slog.Int("chunk", grant.Chunk))
						return
					}
				}
			}
		}()
	}
	defer func() {
		close(hbStop)
		hbDone.Wait()
	}()

	ws, err := w.getSweep(ctx, grant.SweepID)
	if err != nil {
		if _, gone := err.(errSweepGone); gone {
			// The sweep finished or was cancelled between grant and fetch.
			w.logger.Info("fleet: leased sweep vanished", slog.String("sweep", shortID(grant.SweepID)))
			sleepCtx(ctx, w.poll)
			return nil
		}
		return err
	}
	if grant.Lo < 0 || grant.Hi > len(ws.points) || grant.Lo >= grant.Hi {
		return fmt.Errorf("fleet: lease range [%d,%d) outside sweep of %d points", grant.Lo, grant.Hi, len(ws.points))
	}

	pts := ws.points[grant.Lo:grant.Hi]
	esp := w.tracer.StartChild(0, obs.CatFleet, obs.NameEvaluate)
	esp.SetDetail(fmt.Sprintf("%s chunk %d", shortID(grant.SweepID), grant.Chunk))
	esp.SetArg(obs.ArgPoints, int64(len(pts)))
	rep, err := ws.run(pts, dse.ExploreOptions{
		Parallelism: w.conc,
		BatchSize:   ws.batch,
		Context:     ctx,
	})
	esp.End()
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("fleet: evaluating chunk %d of sweep %s: %w", grant.Chunk, shortID(grant.SweepID), err)
	}
	if ws.batch == 0 && rep.Batch > 0 {
		ws.batch = rep.Batch
	}
	if w.onEvaluated != nil {
		if err := w.onEvaluated(grant.SweepID, grant.Chunk); err != nil {
			return err
		}
	}

	idxs := make([]int, len(pts))
	cycles := make([]float64, len(pts))
	for k := range pts {
		idxs[k] = grant.Lo + k
		cycles[k] = rep.Results[k].Cycles
	}
	blob, err := dse.EncodeChunk(ws.fp, idxs, cycles)
	if err != nil {
		return fmt.Errorf("fleet: encoding chunk %d: %w", grant.Chunk, err)
	}
	psp := w.tracer.StartChild(0, obs.CatFleet, obs.NamePublish)
	psp.SetDetail(fmt.Sprintf("%s chunk %d", shortID(grant.SweepID), grant.Chunk))
	dup, perr := w.shared.Put(chunkKey(grant.SweepID, grant.Chunk), blob)
	psp.End()
	if perr != nil {
		// The blob never landed; say nothing, let the lease expire and the
		// chunk re-lease. A persistently broken shared root keeps failing
		// loudly in the log without corrupting anything.
		w.logger.Warn("fleet: publishing chunk failed", slog.Int("chunk", grant.Chunk), slog.Any("err", perr))
		sleepCtx(ctx, w.poll)
		return nil
	}

	var cresp completeResponse
	status, err := w.postJSON(ctx, "/fleet/v1/complete", completeRequest{
		Worker:  w.id,
		Lease:   grant.Lease,
		SweepID: grant.SweepID,
		Chunk:   grant.Chunk,
	}, &cresp)
	switch {
	case err != nil:
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The blob is published; a restarted coordinator restores it even if
		// this completion call was lost.
		w.logger.Warn("fleet: completion call failed", slog.Int("chunk", grant.Chunk), slog.Any("err", err))
	case status != http.StatusOK:
		w.logger.Warn("fleet: completion rejected",
			slog.Int("chunk", grant.Chunk), slog.Int("status", status))
	default:
		w.logger.Info("fleet: chunk completed",
			slog.String("sweep", shortID(grant.SweepID)),
			slog.Int("chunk", grant.Chunk),
			slog.Int("points", len(pts)),
			slog.Bool("stolen", grant.Stolen),
			slog.Bool("dup_blob", dup),
			slog.String("result", cresp.Status))
	}
	return nil
}

// errSweepGone marks a sweep the coordinator no longer knows — a soft fault.
type errSweepGone struct{ id string }

func (e errSweepGone) Error() string { return fmt.Sprintf("fleet: sweep %s gone", shortID(e.id)) }

// getSweep returns the cached engine state of the sweep, rebuilding and
// fingerprint-verifying it on first sight.
func (w *Worker) getSweep(ctx context.Context, id string) (*workerSweep, error) {
	if ws, ok := w.sweeps[id]; ok {
		return ws, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/fleet/v1/sweep?id="+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, errSweepGone{id}
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxProtocolBody))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errSweepGone{id}
	}
	if rerr != nil {
		return nil, errSweepGone{id}
	}
	var info sweepInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("fleet: decoding sweep info: %w", err)
	}
	ws, err := w.buildSweep(info)
	if err != nil {
		return nil, err
	}
	w.sweeps[id] = ws
	w.logger.Info("fleet: sweep engine ready",
		slog.String("sweep", shortID(id)),
		slog.String("engine", info.Spec.Engine),
		slog.String("workload", info.Spec.Workload),
		slog.Int("points", len(ws.points)))
	return ws, nil
}

// runner returns the cached workload runner for the spec's (seed, µops)
// recipe, creating it on first use. The runner memoizes rebuilt apps per
// workload, so consecutive sweeps over the same recipe — notably the
// round-per-fingerprint stream of a guided search — share one rebuild.
func (w *Worker) runner(spec SweepSpec) *experiments.Runner {
	key := fmt.Sprintf("%d|%d", spec.Seed, spec.MicroOps)
	if r, ok := w.runners[key]; ok {
		return r
	}
	r := experiments.NewRunner(spec.MicroOps)
	r.Seed = spec.Seed
	w.runners[key] = r
	return r
}

// buildSweep deterministically rebuilds the sweep's engine inputs from its
// spec and proves identity: the recomputed fingerprint must equal the
// coordinator's sweep id, or the worker refuses the sweep outright — the
// fingerprint covers the analysis/graph/config bytes and every point value,
// so equality means the worker will produce bit-identical results.
func (w *Worker) buildSweep(info sweepInfo) (*workerSweep, error) {
	spec := info.Spec
	if _, err := methodName(spec.Engine); err != nil {
		return nil, err
	}
	r := w.runner(spec)
	app, err := r.App(spec.Workload)
	if err != nil {
		return nil, fmt.Errorf("fleet: rebuilding sweep %s: %w", shortID(info.ID), err)
	}
	// An explicit sweep (a guided search's probe round) ships its point
	// list because the points are not the axes' enumeration; the
	// fingerprint check below binds every shipped value all the same.
	points := info.PointList
	if len(points) == 0 {
		space, err := parseAxes(spec.Axes)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep %s axes: %w", shortID(info.ID), err)
		}
		points = space.Enumerate(r.Cfg.Lat)
	}
	if len(points) != info.Points {
		return nil, fmt.Errorf("fleet: sweep %s: rebuilt %d points, coordinator has %d",
			shortID(info.ID), len(points), info.Points)
	}
	var fp []byte
	switch spec.Engine {
	case "graph":
		fp, err = dse.SweepFingerprintGraph(app.Graph, points)
	case "rpstacks":
		fp, err = dse.SweepFingerprintRpStacks(app.Analysis, points)
	case "sim":
		fp, err = dse.SweepFingerprintSim(r.Cfg, app.UOps, points)
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: fingerprinting sweep %s: %w", shortID(info.ID), err)
	}
	if hex.EncodeToString(fp) != info.ID {
		return nil, fmt.Errorf("fleet: rebuilt fingerprint %s disagrees with coordinator sweep %s — refusing to evaluate",
			shortID(hex.EncodeToString(fp)), shortID(info.ID))
	}
	ws := &workerSweep{info: info, points: points, fp: fp, batch: spec.BatchSize}
	switch spec.Engine {
	case "graph":
		ws.run = func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error) {
			return dse.ExploreGraphOpts(app.Graph, pts, opts)
		}
	case "rpstacks":
		ws.run = func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error) {
			return dse.ExploreRpStacksOpts(app.Analysis, pts, opts)
		}
	case "sim":
		ws.run = func(pts []stacks.Latencies, opts dse.ExploreOptions) (*dse.Report, error) {
			return dse.ExploreSimOpts(r.Cfg, app.UOps, pts, opts)
		}
	}
	return ws, nil
}

// postJSON posts req to the coordinator path and decodes the response into
// out when the status is 2xx/410 (protocol answers); returns the HTTP
// status. Transport failures return err.
func (w *Worker) postJSON(ctx context.Context, path string, reqBody, out any) (int, error) {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxProtocolBody))
	_ = resp.Body.Close()
	if rerr != nil {
		return resp.StatusCode, rerr
	}
	if out != nil && len(body) > 0 {
		_ = json.Unmarshal(body, out)
	}
	return resp.StatusCode, nil
}

// Handler serves the worker's liveness endpoints, mirroring rpserved's
// semantics: GET /healthz is always 200 and reports ok or draining; GET
// /readyz flips to 503 the moment the worker drains, so a local balancer or
// smoke harness can watch the transition.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		status := "ok"
		if w.draining.Load() {
			status = "draining"
		}
		fleetJSON(rw, http.StatusOK, map[string]string{"status": status, "worker": w.id})
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, _ *http.Request) {
		if w.draining.Load() {
			fleetJSON(rw, http.StatusServiceUnavailable, map[string]string{"status": "draining", "worker": w.id})
			return
		}
		fleetJSON(rw, http.StatusOK, map[string]string{"status": "ready", "worker": w.id})
	})
	return mux
}

// sleepCtx sleeps d or until ctx cancels; reports whether the sleep ran its
// course.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
