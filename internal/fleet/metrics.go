package fleet

import (
	"repro/internal/obs/prom"
)

// metrics.go — the coordinator's rpstacks_fleet_* families, registered on
// the caller's registry (rpserved's, so one /metrics scrape covers the
// fleet) or a private one. Counters the lease path owns are updated in
// place; worker liveness and active-sweep counts are pulled at scrape time
// from the coordinator's own state, the registry's no-double-accounting
// convention.

// assemblyBuckets resolve report assembly, which is dominated by reading
// the chunk blobs back: sub-millisecond for small sweeps, seconds when a
// million-point report streams from disk.
var assemblyBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}

// completionResults are the completed-chunks counter labels, in render
// order: "first" is the accepted completion, "duplicate" the idempotent
// re-completion of an already-done chunk (work-stealing's second finisher).
var completionResults = []string{"first", "duplicate"}

type coordMetrics struct {
	leased    *prom.Counter
	completed *prom.CounterVec
	expired   *prom.Counter
	stolen    *prom.Counter
	assembly  *prom.Histogram
}

func newCoordMetrics(reg *prom.Registry, c *Coordinator) *coordMetrics {
	m := &coordMetrics{
		leased: reg.Counter("rpstacks_fleet_chunks_leased_total",
			"Chunk leases granted to workers, steals included."),
		completed: reg.CounterVec("rpstacks_fleet_chunks_completed_total",
			"Chunk completions by result.", "result"),
		expired: reg.Counter("rpstacks_fleet_leases_expired_total",
			"Leases that missed their heartbeat TTL and were revoked."),
		stolen: reg.Counter("rpstacks_fleet_chunks_stolen_total",
			"Straggler chunks re-leased to a second worker while still held."),
		assembly: reg.Histogram("rpstacks_fleet_assembly_duration_seconds",
			"Wall-clock of assembling a finished sweep's Report from its chunk blobs.",
			assemblyBuckets),
	}
	for _, r := range completionResults {
		m.completed.With(r)
	}
	reg.Collect("rpstacks_fleet_workers_live",
		"Workers seen by the coordinator within two lease TTLs.", "gauge",
		func(emit func(string, float64)) { emit("", float64(c.liveWorkers())) })
	reg.Collect("rpstacks_fleet_sweeps_active",
		"Sweeps currently registered on the coordinator.", "gauge",
		func(emit func(string, float64)) { emit("", float64(c.activeSweeps())) })
	return m
}
