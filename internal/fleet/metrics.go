package fleet

import (
	"fmt"

	"repro/internal/obs/prom"
)

// metrics.go — the coordinator's rpstacks_fleet_* families, registered on
// the caller's registry (rpserved's, so one /metrics scrape covers the
// fleet) or a private one. Counters the lease path owns are updated in
// place; worker liveness and active-sweep counts are pulled at scrape time
// from the coordinator's own state, the registry's no-double-accounting
// convention.

// assemblyBuckets resolve report assembly, which is dominated by reading
// the chunk blobs back: sub-millisecond for small sweeps, seconds when a
// million-point report streams from disk.
var assemblyBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}

// completionResults are the completed-chunks counter labels, in render
// order: "first" is the accepted completion, "duplicate" the idempotent
// re-completion of an already-done chunk (work-stealing's second finisher).
var completionResults = []string{"first", "duplicate"}

// leaseWaitBuckets resolve how long a chunk sits published-but-unleased —
// the fleet's queue depth expressed as time. Sub-millisecond when workers
// outnumber chunks, whole lease TTLs when a worker died and its chunk waits
// for expiry before re-granting.
var leaseWaitBuckets = []float64{0.001, 0.01, 0.1, 1, 5, 30, 120}

type coordMetrics struct {
	leased    *prom.Counter
	completed *prom.CounterVec
	expired   *prom.Counter
	stolen    *prom.Counter
	assembly  *prom.Histogram
	leaseWait *prom.Histogram

	// fragDropped counts trace fragments discarded at assembly — damaged,
	// truncated or foreign blobs. A dropped fragment degrades the merged
	// timeline and nothing else, which is exactly why it needs a counter:
	// nothing louder will ever signal it.
	fragDropped *prom.Counter

	// Federated per-worker families, fed from the summaries workers attach to
	// their completion calls: one scrape of the coordinator describes the
	// whole fleet's throughput without reaching any worker's own /metrics.
	workerChunks  *prom.CounterVec
	workerPoints  *prom.CounterVec
	workerEval    *prom.CounterVec
	workerPublish *prom.CounterVec
}

func newCoordMetrics(reg *prom.Registry, c *Coordinator) *coordMetrics {
	m := &coordMetrics{
		leased: reg.Counter("rpstacks_fleet_chunks_leased_total",
			"Chunk leases granted to workers, steals included."),
		completed: reg.CounterVec("rpstacks_fleet_chunks_completed_total",
			"Chunk completions by result.", "result"),
		expired: reg.Counter("rpstacks_fleet_leases_expired_total",
			"Leases that missed their heartbeat TTL and were revoked."),
		stolen: reg.Counter("rpstacks_fleet_chunks_stolen_total",
			"Straggler chunks re-leased to a second worker while still held."),
		assembly: reg.Histogram("rpstacks_fleet_assembly_duration_seconds",
			"Wall-clock of assembling a finished sweep's Report from its chunk blobs.",
			assemblyBuckets),
		leaseWait: reg.Histogram("rpstacks_fleet_lease_wait_seconds",
			"Time a chunk spent published-but-unleased before its first grant (re-grants after expiry included).",
			leaseWaitBuckets),
		fragDropped: reg.Counter("rpstacks_fleet_trace_fragments_dropped_total",
			"Trace fragments discarded at assembly: damaged, truncated or foreign blobs."),
		workerChunks: reg.CounterVec("rpstacks_fleet_worker_chunks_total",
			"Chunk completions reported per worker, duplicates included.", "worker"),
		workerPoints: reg.CounterVec("rpstacks_fleet_worker_points_total",
			"Design points evaluated per worker, as self-reported on completion.", "worker"),
		workerEval: reg.CounterVec("rpstacks_fleet_worker_evaluate_seconds_total",
			"Evaluate wall-clock per worker, as self-reported on completion.", "worker"),
		workerPublish: reg.CounterVec("rpstacks_fleet_worker_publish_seconds_total",
			"Publish wall-clock per worker, as self-reported on completion.", "worker"),
	}
	for _, r := range completionResults {
		m.completed.With(r)
	}
	reg.Collect("rpstacks_fleet_workers_live",
		"Workers seen by the coordinator within two lease TTLs.", "gauge",
		func(emit func(string, float64)) { emit("", float64(c.liveWorkers())) })
	reg.Collect("rpstacks_fleet_worker_live",
		"Per-worker liveness: 1 while the worker was seen within two lease TTLs.", "gauge",
		func(emit func(string, float64)) {
			for _, name := range c.liveWorkerNames() {
				emit(fmt.Sprintf("{worker=%q}", name), 1)
			}
		})
	reg.Collect("rpstacks_fleet_sweeps_active",
		"Sweeps currently registered on the coordinator.", "gauge",
		func(emit func(string, float64)) { emit("", float64(c.activeSweeps())) })
	return m
}
