// Package fleet distributes one design-space sweep across processes: a
// coordinator splits the point list into the same fingerprint-bound chunks
// the checkpoint layer uses, leases them to worker processes over a small
// HTTP protocol (lease TTL + heartbeat renewal, expiry → re-lease,
// work-stealing of straggler chunks), and assembles the final dse.Report
// from the chunk result blobs workers publish into a shared store root —
// exactly the way checkpoint resume rebuilds a Report from chunk files.
//
// The protocol is deliberately identity-first. A worker normally receives
// no points over the wire: it receives a SweepSpec — workload name, seed,
// µop count, engine, axes — deterministically rebuilds the engine inputs
// from it, and recomputes the sweep fingerprint. The one exception is an
// explicit sweep (a guided search's probe round), whose point list is not
// the axes' enumeration and so rides along in the sweep info; the
// fingerprint covers every point value either way. Only if that fingerprint equals
// the coordinator's sweep id does the worker evaluate anything; a mismatch
// means the two processes would disagree on the sweep's inputs, and the
// worker refuses outright rather than publish plausible-but-foreign
// results. Chunk blobs carry the fingerprint too (dse.EncodeChunk), so the
// coordinator verifies every completion the same way checkpoint restore
// verifies chunk files.
//
// Completion is first-writer-wins and idempotent: stolen chunks may be
// completed by two workers, whose deterministic engines publish identical
// bytes (store.Shared deduplicates the write), and the coordinator counts
// only the first completion. Losing the coordinator mid-sweep loses no
// finished work — a restarted coordinator re-registers the sweep, scans the
// shared root for published chunks, and resumes with Report.Resumed set.
package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/dse"
	"repro/internal/obs"
	"repro/internal/stacks"
)

// SweepSpec is the deterministic recipe of a sweep's engine inputs: enough
// for a worker process to rebuild the trace, analysis or graph bit-for-bit
// and enumerate the identical design-point list. It is the fleet analogue of
// a serve.JobSpec restricted to what regenerates — uploaded traces have no
// recipe and stay on the coordinator.
type SweepSpec struct {
	// Workload names a built-in synthetic workload (workload.ByName).
	Workload string `json:"workload"`
	// Seed feeds the deterministic workload generator.
	Seed int64 `json:"seed"`
	// MicroOps is the measured µop count; warmup is 3x, snapped to a
	// macro-op boundary, the shared convention of serve and experiments.
	MicroOps int `json:"micro_ops"`
	// Engine is the sweep engine: "rpstacks", "graph" or "sim".
	Engine string `json:"engine"`
	// Axes is the design space in the textual -axis form ("L1D=1,2,3,4"),
	// order-preserving because point enumeration is row-major over the axes.
	Axes []string `json:"axes"`
	// BatchSize is dse.ExploreOptions.BatchSize for the chunk evaluations
	// (0: each worker autotunes; results are identical at every width).
	BatchSize int `json:"batch_size,omitempty"`
}

// FormatAxes renders axes in the textual form SweepSpec carries, inverse to
// dse.ParseAxisSpec. Values use strconv 'g' formatting, which round-trips
// float64 exactly — the fingerprint hashes the parsed values, so formatting
// must not perturb them.
func FormatAxes(axes []dse.Axis) []string {
	out := make([]string, len(axes))
	for i, ax := range axes {
		var b strings.Builder
		b.WriteString(ax.Event.String())
		b.WriteByte('=')
		for j, v := range ax.Values {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		out[i] = b.String()
	}
	return out
}

// parseAxes parses the textual axes back into a validated Space.
func parseAxes(axes []string) (dse.Space, error) {
	sp := dse.Space{Axes: make([]dse.Axis, len(axes))}
	for i, s := range axes {
		ax, err := dse.ParseAxisSpec(s)
		if err != nil {
			return dse.Space{}, err
		}
		sp.Axes[i] = ax
	}
	if err := sp.Validate(); err != nil {
		return dse.Space{}, err
	}
	return sp, nil
}

// methodName maps a SweepSpec engine to the dse Report method string the
// fingerprint is salted with.
func methodName(engine string) (string, error) {
	switch engine {
	case "rpstacks", "graph":
		return engine, nil
	case "sim":
		return "simulator", nil
	}
	return "", fmt.Errorf("fleet: unknown engine %q", engine)
}

// chunkKey addresses one chunk's result blob in the shared store root. The
// sweep id is the hex fingerprint, so a blob can never be attributed to the
// wrong sweep even before its embedded fingerprint is checked.
func chunkKey(sweepID string, chunk int) string {
	return fmt.Sprintf("fleet|%s|chunk-%06d", sweepID, chunk)
}

// fragKey addresses one chunk's trace-fragment blob (obs.EncodeFragment)
// beside its result blob. Shared-store keys are hashed to paths and not
// enumerable, so the key must be derivable from (sweep, chunk) alone — the
// coordinator's assembly walks the chunk indices to find every fragment. A
// stolen chunk may be published twice by different workers; last writer wins,
// which loses at most one redundant fragment, never result data.
func fragKey(sweepID string, chunk int) string {
	return fmt.Sprintf("fleet|%s|frag-%06d", sweepID, chunk)
}

// Sweep is one distributed exploration the coordinator runs.
type Sweep struct {
	// Spec is the recipe workers rebuild the engine inputs from.
	Spec SweepSpec
	// Points is the enumerated design-point list (row-major over Spec.Axes
	// on the baseline latencies — what the workers will re-derive).
	Points []stacks.Latencies
	// Fingerprint is the sweep identity hash from the matching
	// dse.SweepFingerprint* helper; its hex form is the sweep id.
	Fingerprint []byte
	// ChunkSize is the points-per-lease granularity (0: ~32 chunks).
	ChunkSize int
	// Explicit marks a sweep whose Points are not Spec.Axes' row-major
	// enumeration — a guided search's probe round. The coordinator then
	// ships the point list to workers inside the sweep info instead of
	// having them re-derive it; identity safety is unchanged because the
	// fingerprint hashes every point value. Explicit sweeps are capped at
	// maxExplicitPoints so the info stays within the protocol body limit.
	Explicit bool
	// Setup is the coordinator's one-time engine preparation cost, recorded
	// into Report.Setup like dse.ExploreOptions.Setup.
	Setup time.Duration
	// Tracer, when non-nil, records the assemble span (and resume spans on
	// restart) of this sweep; TraceParent nests them under a caller span.
	Tracer      *obs.Tracer
	TraceParent uint64
}

// --- wire types of the /fleet/v1/ protocol -------------------------------

// sweepInfo answers GET /fleet/v1/sweep?id=: everything a worker needs to
// rebuild and verify one sweep.
type sweepInfo struct {
	ID        string    `json:"id"` // hex sweep fingerprint
	Spec      SweepSpec `json:"spec"`
	Points    int       `json:"points"`
	ChunkSize int       `json:"chunk_size"`
	Chunks    int       `json:"chunks"`
	// PointList is the explicit design-point list of an Explicit sweep
	// (a guided search's probe round); empty for enumerable sweeps, whose
	// workers re-derive the points from Spec.Axes.
	PointList []stacks.Latencies `json:"point_list,omitempty"`
}

// leaseRequest asks for work; Worker identifies the process for liveness
// and steal bookkeeping.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseResponse grants a chunk lease ("lease"), asks the worker to retry
// shortly because every chunk is in flight ("wait"), or reports no active
// sweep at all ("idle").
type leaseResponse struct {
	Status     string `json:"status"`
	SweepID    string `json:"sweep_id,omitempty"`
	Lease      uint64 `json:"lease,omitempty"`
	Chunk      int    `json:"chunk,omitempty"`
	Lo         int    `json:"lo,omitempty"`
	Hi         int    `json:"hi,omitempty"`
	TTLMillis  int64  `json:"ttl_ms,omitempty"`
	WaitMillis int64  `json:"wait_ms,omitempty"`
	// Stolen marks a lease granted on a chunk another worker still holds —
	// straggler insurance; whichever completion arrives first wins.
	Stolen bool `json:"stolen,omitempty"`

	// TraceID and TraceParent propagate the sweep's trace context: TraceID is
	// the sweep id doubling as the trace identity, TraceParent the
	// coordinator's span ID for this chunk — the parent every worker-side
	// lease/evaluate/publish span nests under, so the merged timeline keeps
	// cross-process causality. Zero TraceParent means the coordinator is not
	// tracing this sweep and the worker publishes no fragment.
	TraceID     string `json:"trace_id,omitempty"`
	TraceParent uint64 `json:"trace_parent,omitempty"`
	// CoordClockNanos is the coordinator tracer's clock at grant time, in
	// nanoseconds. The worker brackets the lease round-trip with its own
	// tracer clock (T0, T1) and pairs them with this stamp into an
	// obs.ClockSync — the skew model the merge normalizes worker tracks with.
	// Zero means no coordinator clock was available (tracing off).
	CoordClockNanos int64 `json:"coord_clock_ns,omitempty"`
}

// heartbeatRequest renews a lease; expired or unknown leases answer 410.
type heartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

type heartbeatResponse struct {
	Status    string `json:"status"`
	TTLMillis int64  `json:"ttl_ms,omitempty"`
}

// completeRequest reports that the chunk's result blob is published in the
// shared root under chunkKey(SweepID, Chunk). The coordinator reads and
// verifies the blob before accepting; completion is valid even when the
// reporting lease has expired — the blob's content, not the lease, is the
// proof of work.
type completeRequest struct {
	Worker  string `json:"worker"`
	Lease   uint64 `json:"lease,omitempty"`
	SweepID string `json:"sweep_id"`
	Chunk   int    `json:"chunk"`

	// Per-chunk work summary, federated into the coordinator's
	// rpstacks_fleet_worker_* families so one scrape of the coordinator
	// describes every worker's throughput without scraping each worker.
	// Self-reported and advisory: it feeds metrics only, never results.
	Points         int     `json:"points,omitempty"`
	EvalSeconds    float64 `json:"eval_seconds,omitempty"`
	PublishSeconds float64 `json:"publish_seconds,omitempty"`
}

type completeResponse struct {
	Status string `json:"status"` // "ok" (first) or "duplicate"
}
