package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/stacks"
	"repro/internal/store"
)

// explicit_test.go — the explicit-sweep protocol path that carries a guided
// search's probe rounds: the coordinator ships a point list that is NOT the
// axes' enumeration, workers evaluate it after the fingerprint check binds
// every shipped value, and results stay bit-identical to a local sweep.

// explicitPoints picks a scattered, enumeration-order-breaking subset of the
// test grid: last point first, then every third point.
func explicitPoints(env *fleetEnv) []stacks.Latencies {
	pts := []stacks.Latencies{env.points[len(env.points)-1]}
	for i := 0; i < len(env.points)-1; i += 3 {
		pts = append(pts, env.points[i])
	}
	return pts
}

// TestFleetExplicitSweep runs a probe-round-shaped sweep — explicit points,
// one round per fingerprint — for every engine and matches the local golden
// evaluation of the same points.
func TestFleetExplicitSweep(t *testing.T) {
	env := testFleetEnv(t)
	for _, engine := range testEngines {
		t.Run(engine, func(t *testing.T) {
			shared, err := store.OpenShared(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			coord := NewCoordinator(CoordinatorConfig{
				Shared:   shared,
				LeaseTTL: 10 * time.Second,
				WaitHint: 2 * time.Millisecond,
			})
			srv := httptest.NewServer(coord)
			defer srv.Close()

			wctx, stopWorkers := context.WithCancel(context.Background())
			defer stopWorkers()
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				startWorker(t, wctx, &wg, NewWorker(WorkerConfig{
					CoordinatorURL: srv.URL,
					Shared:         shared,
					Concurrency:    2,
					ID:             fmt.Sprintf("w%d", i),
					PollInterval:   2 * time.Millisecond,
				}))
			}

			pts := explicitPoints(env)
			sw := testSweep(env, engine)
			sw.Points = pts
			sw.ChunkSize = 2
			sw.Explicit = true
			switch engine {
			case "graph":
				sw.Fingerprint, err = dse.SweepFingerprintGraph(env.app.Graph, pts)
			case "rpstacks":
				sw.Fingerprint, err = dse.SweepFingerprintRpStacks(env.app.Analysis, pts)
			case "sim":
				sw.Fingerprint, err = dse.SweepFingerprintSim(env.runner.Cfg, env.app.UOps, pts)
			}
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			rep, err := coord.Run(ctx, sw)
			stopWorkers()
			wg.Wait()
			if err != nil {
				t.Fatalf("explicit fleet sweep: %v", err)
			}
			if len(rep.Results) != len(pts) {
				t.Fatalf("got %d results, want %d", len(rep.Results), len(pts))
			}
			// The golden report is in enumeration order; look each explicit
			// point's cycles up by latencies.
			want := make(map[stacks.Latencies]float64, len(env.points))
			for _, r := range env.golden[engine].Results {
				want[r.Lat] = r.Cycles
			}
			for i, r := range rep.Results {
				if r.Lat != pts[i] {
					t.Fatalf("result %d: point order diverged", i)
				}
				if r.Cycles != want[r.Lat] {
					t.Fatalf("result %d: Cycles = %v, want %v (not bit-identical)", i, r.Cycles, want[r.Lat])
				}
			}
		})
	}
}

// TestFleetExplicitSweepCapped rejects oversized explicit point lists before
// registration — they would overflow the protocol body a worker reads.
func TestFleetExplicitSweepCapped(t *testing.T) {
	env := testFleetEnv(t)
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorConfig{Shared: shared, LeaseTTL: time.Second})
	sw := testSweep(env, "graph")
	sw.Explicit = true
	sw.Points = make([]stacks.Latencies, maxExplicitPoints+1)
	for i := range sw.Points {
		sw.Points[i] = env.points[0]
	}
	_, err = coord.Run(context.Background(), sw)
	if err == nil || !strings.Contains(err.Error(), "explicit sweep") {
		t.Fatalf("oversized explicit sweep: %v, want the cap error", err)
	}
}
