package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/store"
)

// worker_test.go — the worker's liveness endpoints mirror rpserved's:
// /healthz always answers 200 and names the state; /readyz flips to 503 the
// moment the worker starts draining.

func testWorkerOnly(t *testing.T) *Worker {
	t.Helper()
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewWorker(WorkerConfig{
		CoordinatorURL: "http://127.0.0.1:0", // never dialed in these tests
		Shared:         shared,
		ID:             "probe",
	})
}

func probe(t *testing.T, h http.Handler, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: non-JSON body %q", path, rec.Body.String())
	}
	return rec.Code, body
}

func TestWorkerHealthTransitions(t *testing.T) {
	w := testWorkerOnly(t)
	h := w.Handler()

	if code, body := probe(t, h, "/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("/healthz = %d %v, want 200 ok", code, body)
	}
	if code, body := probe(t, h, "/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Errorf("/readyz = %d %v, want 200 ready", code, body)
	}

	w.Drain()

	if code, body := probe(t, h, "/healthz"); code != http.StatusOK || body["status"] != "draining" {
		t.Errorf("drained /healthz = %d %v, want 200 draining", code, body)
	}
	if code, body := probe(t, h, "/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("drained /readyz = %d %v, want 503 draining", code, body)
	}
	if _, body := probe(t, h, "/healthz"); body["worker"] != "probe" {
		t.Errorf("healthz worker = %q, want probe", body["worker"])
	}
	if _, body := probe(t, h, "/healthz"); body["uptime_seconds"] == nil {
		t.Error("healthz missing uptime_seconds")
	}
}

// TestWorkerDrainStopsRun: a drained worker's Run returns nil without ever
// needing a reachable coordinator.
func TestWorkerDrainStopsRun(t *testing.T) {
	w := testWorkerOnly(t)
	w.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("drained Run = %v, want nil", err)
	}
}
