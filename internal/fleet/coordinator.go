package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/dse"
	"repro/internal/obs"
	"repro/internal/obs/prom"
	"repro/internal/store"
)

// CoordinatorConfig parameterizes NewCoordinator.
type CoordinatorConfig struct {
	// Shared is the blob root workers publish chunk results into; required
	// and necessarily the same directory the workers open.
	Shared *store.Shared
	// LeaseTTL is how long a granted lease lives without a heartbeat before
	// its chunk is re-leased (default 10s). Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// WaitHint is the retry delay handed to workers when no chunk is
	// grantable (default 200ms).
	WaitHint time.Duration
	// Now is the lease clock, injectable for deterministic expiry tests
	// (default time.Now). It orders grants and expiries only; span and
	// histogram durations use the real clock.
	Now func() time.Time
	// Logger receives lease-lifecycle logs. Nil discards.
	Logger *slog.Logger
	// Registry receives the rpstacks_fleet_* metric families — rpserved
	// passes its own so one scrape covers the fleet. Nil uses a private
	// registry (the metrics still drive tests via their handles).
	Registry *prom.Registry
	// OnChunkEvent observes lease-lifecycle transitions: kind is "lease",
	// "steal" or "expire". It is called with the coordinator's lock held and
	// must not call back into the Coordinator; rpserved routes these into
	// the job journal's live stream. Nil disables.
	OnChunkEvent func(sweepID string, chunk int, worker, kind string)
}

// Coordinator owns the lease state machine of every active sweep and the
// /fleet/v1/ HTTP protocol workers speak. One Coordinator serves any number
// of concurrent sweeps; Run registers one and blocks until its Report is
// assembled. Create with NewCoordinator, mount as an http.Handler.
type Coordinator struct {
	shared       *store.Shared
	ttl          time.Duration
	waitHint     time.Duration
	now          func() time.Time
	logger       *slog.Logger
	metrics      *coordMetrics
	mux          *http.ServeMux
	onChunkEvent func(sweepID string, chunk int, worker, kind string)

	mu       sync.Mutex
	sweeps   map[string]*sweepState
	order    []string // registration order: FIFO fairness across sweeps
	leases   map[uint64]*lease
	leaseSeq uint64
	workers  map[string]time.Time // worker id -> last seen

	// frags retains the decoded trace fragments of recently finished sweeps
	// (FIFO-bounded at fragRetain), so the serving layer can build the merged
	// timeline after Run returns. fragOrder is the eviction order.
	frags     map[string][]*obs.Fragment
	fragOrder []string
}

// fragRetain bounds how many finished sweeps' fragment sets the coordinator
// keeps for merged-timeline queries — same spirit as the tracer ring: recent
// history, never growth.
const fragRetain = 8

// sweepState is one registered sweep's mutable ledger; all fields are
// guarded by Coordinator.mu except done/report/err, which are written once
// before done closes.
type sweepState struct {
	id     string
	sw     Sweep
	info   sweepInfo
	chunks []chunkState
	// remaining counts chunks not yet done; the sweep finishes at zero.
	remaining int
	// resumed counts points restored from blobs a previous coordinator's
	// workers published — the crash-recovery path.
	resumed int
	start   time.Time
	// refs counts Run callers attached to this sweep; the state unregisters
	// when the last one leaves.
	refs int

	workerPoints map[string]int
	workerBusy   map[string]time.Duration

	// sweepSpan brackets the sweep's whole fleet lifetime — registration to
	// assembled report — on the sweep's tracer; chunkSpans[i] brackets chunk
	// i from its first grant to its accepted completion. Chunk spans are the
	// cross-process trace parents: their IDs ride in lease responses, and
	// worker-side spans nest under them in the merged timeline.
	sweepSpan  obs.Span
	chunkSpans []obs.Span
	// pendingSince[i] is when chunk i last became grantable — registration,
	// or the expiry of its last lease. The gap to the next grant is the
	// lease-wait histogram's observation, on the injectable lease clock.
	pendingSince []time.Time

	done   chan struct{}
	report *dse.Report
	err    error
}

type chunkState struct {
	lo, hi int
	done   bool
	leases []*lease // zero or more concurrent holders (stealing)
}

type lease struct {
	id      uint64
	worker  string
	sweepID string
	chunk   int
	granted time.Time
	expires time.Time
}

// NewCoordinator builds a Coordinator. A nil Shared is a wiring bug and
// panics.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Shared == nil {
		panic("fleet: CoordinatorConfig.Shared is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.WaitHint <= 0 {
		cfg.WaitHint = 200 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Registry == nil {
		cfg.Registry = prom.NewRegistry()
	}
	c := &Coordinator{
		shared:       cfg.Shared,
		ttl:          cfg.LeaseTTL,
		waitHint:     cfg.WaitHint,
		now:          cfg.Now,
		logger:       cfg.Logger,
		onChunkEvent: cfg.OnChunkEvent,
		sweeps:       make(map[string]*sweepState),
		leases:       make(map[uint64]*lease),
		workers:      make(map[string]time.Time),
		frags:        make(map[string][]*obs.Fragment),
	}
	c.metrics = newCoordMetrics(cfg.Registry, c)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /fleet/v1/sweep", c.handleSweep)
	c.mux.HandleFunc("POST /fleet/v1/lease", c.handleLease)
	c.mux.HandleFunc("POST /fleet/v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /fleet/v1/complete", c.handleComplete)
	return c
}

// ServeHTTP exposes the /fleet/v1/ protocol. The mux matches full paths, so
// the Coordinator mounts directly under "/fleet/" on a parent mux or serves
// standalone.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Run registers the sweep and blocks until every chunk is completed and the
// Report is assembled from the published blobs, or ctx cancels. Restart
// resume is implicit: chunks whose result blobs already sit in the shared
// root (published for a previous coordinator that died mid-sweep) are
// restored, not re-leased, and counted in Report.Resumed. A second Run of an
// identical sweep (same fingerprint) attaches to the first rather than
// duplicating work; each caller gets its own Report copy.
func (c *Coordinator) Run(ctx context.Context, sw Sweep) (*dse.Report, error) {
	if len(sw.Points) == 0 {
		return nil, fmt.Errorf("fleet: sweep has no design points")
	}
	if len(sw.Fingerprint) != sha256.Size {
		return nil, fmt.Errorf("fleet: sweep fingerprint must be %d bytes, got %d", sha256.Size, len(sw.Fingerprint))
	}
	if _, err := methodName(sw.Spec.Engine); err != nil {
		return nil, err
	}
	if sw.Explicit && len(sw.Points) > maxExplicitPoints {
		return nil, fmt.Errorf("fleet: explicit sweep has %d points, limit %d (probe rounds are expected to stay small)",
			len(sw.Points), maxExplicitPoints)
	}
	id := hex.EncodeToString(sw.Fingerprint)

	c.mu.Lock()
	if st, ok := c.sweeps[id]; ok {
		st.refs++
		c.mu.Unlock()
		return c.await(ctx, st)
	}
	c.mu.Unlock()

	st := c.buildState(id, sw)

	c.mu.Lock()
	if other, ok := c.sweeps[id]; ok {
		// Lost a registration race to a concurrent identical Run.
		other.refs++
		c.mu.Unlock()
		return c.await(ctx, other)
	}
	c.sweeps[id] = st
	c.order = append(c.order, id)
	finished := st.remaining == 0
	if finished {
		c.finishLocked(st) // every chunk restored from blobs: no worker needed
	}
	c.mu.Unlock()
	c.logger.Info("fleet: sweep registered",
		slog.String("sweep", shortID(id)),
		slog.Int("points", len(sw.Points)),
		slog.Int("chunks", len(st.chunks)),
		slog.Int("resumed_points", st.resumed))
	return c.await(ctx, st)
}

// buildState lays out the sweep's chunks and restores any already-published
// result blobs — the coordinator-restart path. No lock is needed: the state
// is private until registered.
func (c *Coordinator) buildState(id string, sw Sweep) *sweepState {
	n := len(sw.Points)
	csize := sw.ChunkSize
	if csize <= 0 {
		// ~32 chunks regardless of sweep size: enough lease granularity for
		// stealing and crash recovery, few enough that protocol round-trips
		// stay negligible. Deterministic in n, so a restarted coordinator
		// reproduces the same chunk ranges and its restore scan lines up.
		csize = (n + 31) / 32
	}
	st := &sweepState{
		id:           id,
		sw:           sw,
		start:        c.now(),
		refs:         1,
		done:         make(chan struct{}),
		workerPoints: make(map[string]int),
		workerBusy:   make(map[string]time.Duration),
	}
	for lo := 0; lo < n; lo += csize {
		hi := lo + csize
		if hi > n {
			hi = n
		}
		st.chunks = append(st.chunks, chunkState{lo: lo, hi: hi})
	}
	st.remaining = len(st.chunks)
	st.info = sweepInfo{ID: id, Spec: sw.Spec, Points: n, ChunkSize: csize, Chunks: len(st.chunks)}
	if sw.Explicit {
		st.info.PointList = sw.Points
	}
	// The sweep span brackets the whole fleet lifetime of this sweep —
	// registration through assembled report — so a merged timeline's
	// coordinator track covers every moment any worker was active on it.
	st.sweepSpan = sw.Tracer.StartChild(sw.TraceParent, obs.CatFleet, obs.NameSweep)
	st.sweepSpan.SetDetail(shortID(id))
	st.sweepSpan.SetArg(obs.ArgPoints, int64(n))
	st.chunkSpans = make([]obs.Span, len(st.chunks))
	st.pendingSince = make([]time.Time, len(st.chunks))
	for i := range st.pendingSince {
		st.pendingSince[i] = st.start
	}
	for i := range st.chunks {
		ch := &st.chunks[i]
		raw, ok := c.shared.Get(chunkKey(id, i))
		if !ok {
			continue
		}
		idxs, _, err := dse.DecodeChunk(sw.Fingerprint, raw)
		if err != nil || verifyChunkRange(idxs, ch.lo, ch.hi) != nil {
			// Structurally impossible for blobs this sweep's workers wrote
			// (the key embeds the fingerprint): treat as damage, re-evaluate.
			c.shared.Delete(chunkKey(id, i))
			continue
		}
		ch.done = true
		st.remaining--
		st.resumed += ch.hi - ch.lo
		sp := sw.Tracer.StartChild(st.sweepSpan.ID(), obs.CatDSE, obs.NameResume)
		sp.SetArg(obs.ArgPoints, int64(ch.hi-ch.lo))
		sp.End()
	}
	return st
}

// await blocks one Run caller on the sweep's completion.
func (c *Coordinator) await(ctx context.Context, st *sweepState) (*dse.Report, error) {
	select {
	case <-ctx.Done():
		c.release(st)
		return nil, ctx.Err()
	case <-st.done:
		rep, err := st.report, st.err
		c.release(st)
		if err != nil {
			return nil, err
		}
		// Each waiter gets its own Results slice: callers (rpexplore's
		// ranking, serve's rankResults) may sort or mutate in place.
		out := *rep
		out.Results = append([]dse.Result(nil), rep.Results...)
		return &out, nil
	}
}

// release detaches one Run caller; the last one out unregisters the sweep
// and revokes its outstanding leases. An abandoned (cancelled) sweep keeps
// its published blobs — they are the resume state of a future rerun.
func (c *Coordinator) release(st *sweepState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st.refs--
	if st.refs > 0 {
		return
	}
	delete(c.sweeps, st.id)
	for i, id := range c.order {
		if id == st.id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for id, l := range c.leases {
		if l.sweepID == st.id {
			delete(c.leases, id)
		}
	}
}

// finishLocked assembles the sweep's Report from the published chunk blobs
// — the same restore discipline as checkpoint resume: every blob is re-read,
// checksum- and fingerprint-verified, and scattered by point index — then
// publishes it and closes done. On success the blobs are deleted: the report
// now owns the results. Trace fragments workers published beside the chunks
// are collected the same way — decoded, verified, retained for the merged
// timeline; damaged ones counted and dropped, never fatal. Called with mu
// held.
func (c *Coordinator) finishLocked(st *sweepState) {
	sw := st.sw
	parent := st.sweepSpan.ID()
	if parent == 0 {
		parent = sw.TraceParent
	}
	sp := sw.Tracer.StartChild(parent, obs.CatFleet, obs.NameAssemble)
	sp.SetDetail(shortID(st.id))
	sp.SetArg("chunks", int64(len(st.chunks)))
	start := time.Now()
	results := make([]dse.Result, len(sw.Points))
	var err error
	for i := range st.chunks {
		ch := &st.chunks[i]
		raw, ok := c.shared.Get(chunkKey(st.id, i))
		if !ok {
			err = fmt.Errorf("fleet: chunk %d blob vanished before assembly", i)
			break
		}
		idxs, cycles, derr := dse.DecodeChunk(sw.Fingerprint, raw)
		if derr == nil {
			derr = verifyChunkRange(idxs, ch.lo, ch.hi)
		}
		if derr != nil {
			err = fmt.Errorf("fleet: chunk %d blob invalid at assembly: %w", i, derr)
			break
		}
		for k, idx := range idxs {
			results[idx] = dse.Result{Lat: sw.Points[idx], Cycles: cycles[k]}
		}
	}
	sp.End()
	st.sweepSpan.End()
	c.metrics.assembly.Observe(time.Since(start).Seconds())

	if err != nil {
		st.err = err
		close(st.done)
		return
	}
	c.collectFragmentsLocked(st)
	method, _ := methodName(sw.Spec.Engine)
	rep := &dse.Report{
		Method:      method,
		Results:     results,
		Setup:       sw.Setup,
		Resumed:     st.resumed,
		Fingerprint: append([]byte(nil), sw.Fingerprint...),
		Batch:       sw.Spec.BatchSize,
	}
	wall := c.now().Sub(st.start)
	if wall < 0 {
		wall = 0
	}
	rep.Wall = wall
	if n := len(results); n > 0 {
		rep.PerPoint = wall / time.Duration(n)
	}
	names := make([]string, 0, len(st.workerPoints))
	for name := range st.workerPoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		rep.Workers = append(rep.Workers, dse.WorkerTiming{
			Worker: i,
			Points: st.workerPoints[name],
			Busy:   st.workerBusy[name],
		})
	}
	st.report = rep
	for i := range st.chunks {
		c.shared.Delete(chunkKey(st.id, i))
	}
	close(st.done)
}

// collectFragmentsLocked gathers the trace fragments workers published
// beside the sweep's chunk blobs: one deterministic key per chunk (the
// shared root's hashed keys cannot be enumerated), decoded and
// fingerprint-verified like everything else in the protocol. A damaged or
// foreign blob increments the dropped counter and is discarded — a fragment
// is observability, never correctness. Survivors are retained (FIFO-bounded)
// for merged-timeline queries; the store copies are deleted either way, the
// sweep is over. Called with mu held.
func (c *Coordinator) collectFragmentsLocked(st *sweepState) {
	var frags []*obs.Fragment
	for i := range st.chunks {
		key := fragKey(st.id, i)
		raw, ok := c.shared.Get(key)
		if !ok {
			continue
		}
		frag, err := obs.DecodeFragment(st.sw.Fingerprint, raw)
		if err != nil {
			c.metrics.fragDropped.Inc()
			c.logger.Warn("fleet: trace fragment dropped",
				slog.String("sweep", shortID(st.id)),
				slog.Int("chunk", i),
				slog.Any("err", err))
		} else {
			frags = append(frags, frag)
		}
		c.shared.Delete(key)
	}
	if frags == nil {
		return
	}
	if _, seen := c.frags[st.id]; !seen {
		c.fragOrder = append(c.fragOrder, st.id)
		for len(c.fragOrder) > fragRetain {
			delete(c.frags, c.fragOrder[0])
			c.fragOrder = c.fragOrder[1:]
		}
	}
	c.frags[st.id] = frags
}

// TraceFragments returns the trace fragments retained from a recently
// finished sweep (nil if none, unknown, or evicted). The serving layer
// merges them with its own records into the fleet timeline.
func (c *Coordinator) TraceFragments(sweepID string) []*obs.Fragment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*obs.Fragment(nil), c.frags[sweepID]...)
}

// verifyChunkRange checks a decoded blob covers exactly [lo, hi) in order —
// the shape every worker publishes, and the only shape assembly accepts.
func verifyChunkRange(idxs []int, lo, hi int) error {
	if len(idxs) != hi-lo {
		return fmt.Errorf("fleet: chunk has %d entries, want %d", len(idxs), hi-lo)
	}
	for k, idx := range idxs {
		if idx != lo+k {
			return fmt.Errorf("fleet: chunk entry %d has index %d, want %d", k, idx, lo+k)
		}
	}
	return nil
}

// --- lease state machine -------------------------------------------------

// expireLocked lazily revokes leases whose TTL passed — run at the top of
// every protocol call, so expiry needs no timer goroutine and is fully
// deterministic under an injected clock. A chunk whose last lease expires
// reverts to pending and will be granted again. Worker last-seen entries
// are pruned once thoroughly stale. Called with mu held.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		c.metrics.expired.Inc()
		if st := c.sweeps[l.sweepID]; st != nil {
			ch := &st.chunks[l.chunk]
			for i, cl := range ch.leases {
				if cl.id == l.id {
					ch.leases = append(ch.leases[:i], ch.leases[i+1:]...)
					break
				}
			}
			if len(ch.leases) == 0 && !ch.done {
				// The chunk is grantable again; its lease wait restarts here.
				st.pendingSince[l.chunk] = now
			}
		}
		c.logger.Warn("fleet: lease expired",
			slog.Uint64("lease", l.id),
			slog.String("worker", l.worker),
			slog.String("sweep", shortID(l.sweepID)),
			slog.Int("chunk", l.chunk))
		if c.onChunkEvent != nil {
			c.onChunkEvent(l.sweepID, l.chunk, l.worker, "expire")
		}
	}
	for wk, seen := range c.workers {
		if now.Sub(seen) > 10*c.ttl {
			delete(c.workers, wk)
		}
	}
}

// grantLocked picks the chunk to lease to worker: the first pending chunk
// in sweep-registration order, else — so idle capacity always shortens the
// straggler tail — a steal of the in-flight chunk whose newest lease is
// oldest, never one the worker already holds. Called with mu held.
func (c *Coordinator) grantLocked(worker string, now time.Time) leaseResponse {
	active := false
	for _, id := range c.order {
		st := c.sweeps[id]
		if st == nil || st.remaining == 0 {
			continue
		}
		active = true
		for ci := range st.chunks {
			ch := &st.chunks[ci]
			if ch.done || len(ch.leases) > 0 {
				continue
			}
			return c.grantChunkLocked(st, ci, worker, now, false)
		}
	}
	var bestSt *sweepState
	bestCi := -1
	var bestNewest time.Time
	for _, id := range c.order {
		st := c.sweeps[id]
		if st == nil || st.remaining == 0 {
			continue
		}
		for ci := range st.chunks {
			ch := &st.chunks[ci]
			if ch.done || len(ch.leases) == 0 {
				continue
			}
			held := false
			var newest time.Time
			for _, l := range ch.leases {
				if l.worker == worker {
					held = true
					break
				}
				if l.granted.After(newest) {
					newest = l.granted
				}
			}
			if held {
				continue
			}
			if bestCi < 0 || newest.Before(bestNewest) {
				bestSt, bestCi, bestNewest = st, ci, newest
			}
		}
	}
	if bestCi >= 0 {
		c.metrics.stolen.Inc()
		c.logger.Info("fleet: straggler chunk stolen",
			slog.String("sweep", shortID(bestSt.id)),
			slog.Int("chunk", bestCi),
			slog.String("worker", worker))
		return c.grantChunkLocked(bestSt, bestCi, worker, now, true)
	}
	status := "idle"
	if active {
		status = "wait"
	}
	return leaseResponse{Status: status, WaitMillis: c.waitHint.Milliseconds()}
}

func (c *Coordinator) grantChunkLocked(st *sweepState, ci int, worker string, now time.Time, stolen bool) leaseResponse {
	ch := &st.chunks[ci]
	c.leaseSeq++
	l := &lease{
		id:      c.leaseSeq,
		worker:  worker,
		sweepID: st.id,
		chunk:   ci,
		granted: now,
		expires: now.Add(c.ttl),
	}
	if !stolen {
		// This grant ends the chunk's published-but-unleased wait: from
		// registration (or its last lease's expiry) to now, on the lease
		// clock. Steals don't count — the chunk was in flight the whole time.
		if wait := now.Sub(st.pendingSince[ci]); wait >= 0 {
			c.metrics.leaseWait.Observe(wait.Seconds())
		}
	}
	if st.chunkSpans[ci].ID() == 0 {
		// First grant opens the coordinator-side chunk span — the trace
		// parent every worker span of this chunk nests under. It stays open
		// across re-leases and steals until the accepted completion.
		sp := st.sw.Tracer.StartChild(st.sweepSpan.ID(), obs.CatFleet, obs.NameChunk)
		sp.SetDetail(fmt.Sprintf("chunk %d", ci))
		sp.SetArg(obs.ArgPoints, int64(ch.hi-ch.lo))
		st.chunkSpans[ci] = sp
	}
	ch.leases = append(ch.leases, l)
	c.leases[l.id] = l
	c.metrics.leased.Inc()
	if c.onChunkEvent != nil {
		kind := "lease"
		if stolen {
			kind = "steal"
		}
		c.onChunkEvent(st.id, ci, worker, kind)
	}
	return leaseResponse{
		Status:          "lease",
		SweepID:         st.id,
		Lease:           l.id,
		Chunk:           ci,
		Lo:              ch.lo,
		Hi:              ch.hi,
		TTLMillis:       c.ttl.Milliseconds(),
		Stolen:          stolen,
		TraceID:         st.id,
		TraceParent:     st.chunkSpans[ci].ID(),
		CoordClockNanos: st.sw.Tracer.Now().Nanoseconds(),
	}
}

// liveWorkers counts workers seen within two lease TTLs — the liveness
// gauge's definition of "live".
func (c *Coordinator) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	n := 0
	for _, seen := range c.workers {
		if now.Sub(seen) <= 2*c.ttl {
			n++
		}
	}
	return n
}

// liveWorkerNames lists the live workers sorted by id — the per-worker
// liveness gauge's label set.
func (c *Coordinator) liveWorkerNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var names []string
	for wk, seen := range c.workers {
		if now.Sub(seen) <= 2*c.ttl {
			names = append(names, wk)
		}
	}
	sort.Strings(names)
	return names
}

func (c *Coordinator) activeSweeps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sweeps)
}

// Status is one coordinator snapshot for aggregate debug endpoints: live
// workers (seen within two lease TTLs, sorted by id), active sweeps, and
// outstanding leases.
type Status struct {
	Workers      []string `json:"workers"`
	ActiveSweeps int      `json:"active_sweeps"`
	Leases       int      `json:"leases"`
}

// Status snapshots the coordinator for rpserved's GET /debug/status.
func (c *Coordinator) Status() Status {
	workers := c.liveWorkerNames()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Workers:      workers,
		ActiveSweeps: len(c.sweeps),
		Leases:       len(c.leases),
	}
}

// --- HTTP handlers -------------------------------------------------------

// maxProtocolBody bounds a protocol request body; every message is a small
// JSON object.
const maxProtocolBody = 1 << 20

// maxExplicitPoints caps an Explicit sweep's point list so the JSON sweep
// info a worker fetches stays comfortably under maxProtocolBody.
const maxExplicitPoints = 2048

func fleetJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func fleetErr(w http.ResponseWriter, status int, format string, args ...any) {
	fleetJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProtocolBody))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		fleetErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	c.mu.Lock()
	st, ok := c.sweeps[id]
	var info sweepInfo
	if ok {
		info = st.info
	}
	c.mu.Unlock()
	if !ok {
		fleetErr(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	fleetJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		fleetErr(w, http.StatusBadRequest, "lease request wants a worker id")
		return
	}
	c.mu.Lock()
	now := c.now()
	c.expireLocked(now)
	c.workers[req.Worker] = now
	resp := c.grantLocked(req.Worker, now)
	c.mu.Unlock()
	fleetJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	now := c.now()
	c.expireLocked(now)
	if req.Worker != "" {
		c.workers[req.Worker] = now
	}
	l, ok := c.leases[req.Lease]
	if ok {
		l.expires = now.Add(c.ttl)
	}
	c.mu.Unlock()
	if !ok {
		// Gone, not NotFound: the lease existed and its TTL passed (or its
		// chunk completed). The worker's chunk may already be re-leased; it
		// should finish and complete anyway — completion is content-verified
		// and first-writer-wins, so late work is never wrong, just possibly
		// redundant.
		fleetJSON(w, http.StatusGone, heartbeatResponse{Status: "expired"})
		return
	}
	fleetJSON(w, http.StatusOK, heartbeatResponse{Status: "ok", TTLMillis: c.ttl.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	if req.Worker != "" {
		c.workers[req.Worker] = now
	}
	st, ok := c.sweeps[req.SweepID]
	if !ok {
		fleetErr(w, http.StatusNotFound, "unknown sweep %q", req.SweepID)
		return
	}
	if req.Chunk < 0 || req.Chunk >= len(st.chunks) {
		fleetErr(w, http.StatusBadRequest, "sweep %s has no chunk %d", shortID(st.id), req.Chunk)
		return
	}
	ch := &st.chunks[req.Chunk]
	// Federate the worker's self-reported summary whether or not this
	// completion wins: a duplicate finisher of a stolen chunk did real work,
	// and the per-worker families describe throughput, not attribution.
	if req.Worker != "" {
		c.metrics.workerChunks.With(req.Worker).Inc()
		c.metrics.workerPoints.With(req.Worker).Add(float64(req.Points))
		c.metrics.workerEval.With(req.Worker).Add(req.EvalSeconds)
		c.metrics.workerPublish.With(req.Worker).Add(req.PublishSeconds)
	}
	if ch.done {
		// First-writer-wins: a second completion of a stolen (or re-leased)
		// chunk is an idempotent acknowledgment, never an error.
		delete(c.leases, req.Lease)
		c.metrics.completed.With("duplicate").Inc()
		fleetJSON(w, http.StatusOK, completeResponse{Status: "duplicate"})
		return
	}
	// Completion is a content-addressed pointer: verify the blob the same
	// way assembly will. A missing or invalid blob leaves the chunk as-is.
	key := chunkKey(st.id, req.Chunk)
	raw, blobOK := c.shared.Get(key)
	if !blobOK {
		fleetErr(w, http.StatusConflict, "chunk %d blob not published", req.Chunk)
		return
	}
	idxs, _, err := dse.DecodeChunk(st.sw.Fingerprint, raw)
	if err == nil {
		err = verifyChunkRange(idxs, ch.lo, ch.hi)
	}
	if err != nil {
		c.shared.Delete(key)
		fleetErr(w, http.StatusConflict, "chunk %d blob rejected: %v", req.Chunk, err)
		return
	}
	// Accept — even from an expired or unknown lease: the blob verified, and
	// determinism makes late work byte-identical to what a live lease would
	// have published.
	if l, lok := c.leases[req.Lease]; lok && l.sweepID == st.id && l.chunk == req.Chunk {
		st.workerBusy[l.worker] += now.Sub(l.granted)
	}
	if req.Worker != "" {
		st.workerPoints[req.Worker] += ch.hi - ch.lo
	}
	ch.done = true
	st.chunkSpans[req.Chunk].End()
	for _, l := range ch.leases {
		delete(c.leases, l.id)
	}
	ch.leases = nil
	st.remaining--
	c.metrics.completed.With("first").Inc()
	if st.remaining == 0 {
		c.finishLocked(st)
	}
	fleetJSON(w, http.StatusOK, completeResponse{Status: "ok"})
}

// shortID abbreviates a sweep id (hex fingerprint) for logs and spans.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
