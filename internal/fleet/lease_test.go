package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/stacks"
	"repro/internal/store"
)

// lease_test.go — the lease state machine driven at the protocol level with
// an injected clock and hand-made chunk blobs: no engines, no waiting on
// real TTLs. Every expiry in here is a clock.Advance, never a sleep.

// fakeClock is a mutex-guarded manual clock for CoordinatorConfig.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// protoEnv is a coordinator under a fake clock with one registered synthetic
// sweep: engine tag "graph" but entirely fake inputs — the protocol layer
// never evaluates anything, it only verifies blobs against the fingerprint.
type protoEnv struct {
	t      *testing.T
	clock  *fakeClock
	coord  *Coordinator
	shared *store.Shared
	srv    *httptest.Server
	sw     Sweep
	id     string
	resCh  chan protoRes
	cancel context.CancelFunc
}

type protoRes struct {
	rep *dse.Report
	err error
}

// newProtoEnv registers an n-point sweep (ChunkSize csize) named after the
// test and waits until it is leasable.
func newProtoEnv(t *testing.T, ttl time.Duration, n, csize int) *protoEnv {
	t.Helper()
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	coord := NewCoordinator(CoordinatorConfig{
		Shared:   shared,
		LeaseTTL: ttl,
		WaitHint: time.Millisecond,
		Now:      clock.Now,
	})
	fp := sha256.Sum256([]byte("proto-sweep-" + t.Name()))
	sw := Sweep{
		Spec: SweepSpec{
			Workload: "synthetic",
			Engine:   "graph",
			Axes:     []string{"L1D=1"},
		},
		Points:      make([]stacks.Latencies, n),
		Fingerprint: fp[:],
		ChunkSize:   csize,
	}
	env := &protoEnv{
		t:      t,
		clock:  clock,
		coord:  coord,
		shared: shared,
		srv:    httptest.NewServer(coord),
		sw:     sw,
		id:     fmt.Sprintf("%x", fp[:]),
		resCh:  make(chan protoRes, 1),
	}
	ctx, cancel := context.WithCancel(context.Background())
	env.cancel = cancel
	go func() {
		rep, err := coord.Run(ctx, sw)
		env.resCh <- protoRes{rep, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for coord.activeSweeps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never registered")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		cancel()
		env.srv.Close()
	})
	return env
}

func (e *protoEnv) post(path string, req, out any) int {
	e.t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := http.Post(e.srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func (e *protoEnv) lease(worker string) leaseResponse {
	e.t.Helper()
	var resp leaseResponse
	if st := e.post("/fleet/v1/lease", leaseRequest{Worker: worker}, &resp); st != http.StatusOK {
		e.t.Fatalf("lease: HTTP %d", st)
	}
	return resp
}

func (e *protoEnv) mustLease(worker string) leaseResponse {
	e.t.Helper()
	resp := e.lease(worker)
	if resp.Status != "lease" {
		e.t.Fatalf("lease for %s: status %q, want a grant", worker, resp.Status)
	}
	return resp
}

func (e *protoEnv) heartbeat(worker string, lease uint64) (int, heartbeatResponse) {
	e.t.Helper()
	var resp heartbeatResponse
	st := e.post("/fleet/v1/heartbeat", heartbeatRequest{Worker: worker, Lease: lease}, &resp)
	return st, resp
}

func (e *protoEnv) complete(worker string, lease uint64, chunk int) (int, completeResponse) {
	e.t.Helper()
	var resp completeResponse
	st := e.post("/fleet/v1/complete", completeRequest{
		Worker: worker, Lease: lease, SweepID: e.id, Chunk: chunk,
	}, &resp)
	return st, resp
}

// publish writes the synthetic chunk blob for [lo, hi): cycles = 100 + idx,
// so assembled results are checkable.
func (e *protoEnv) publish(lo, hi, chunk int) {
	e.t.Helper()
	idxs := make([]int, hi-lo)
	cycles := make([]float64, hi-lo)
	for k := range idxs {
		idxs[k] = lo + k
		cycles[k] = float64(100 + lo + k)
	}
	blob, err := dse.EncodeChunk(e.sw.Fingerprint, idxs, cycles)
	if err != nil {
		e.t.Fatal(err)
	}
	if _, err := e.shared.Put(chunkKey(e.id, chunk), blob); err != nil {
		e.t.Fatal(err)
	}
}

// finish waits for the background Run and checks the assembled cycles.
func (e *protoEnv) finish() *dse.Report {
	e.t.Helper()
	select {
	case res := <-e.resCh:
		if res.err != nil {
			e.t.Fatalf("sweep run: %v", res.err)
		}
		for i, r := range res.rep.Results {
			if r.Cycles != float64(100+i) {
				e.t.Fatalf("point %d: cycles %v, want %v", i, r.Cycles, float64(100+i))
			}
		}
		return res.rep
	case <-time.After(10 * time.Second):
		e.t.Fatal("sweep never finished")
		return nil
	}
}

// TestLeaseHeartbeatAfterExpiry: a heartbeat arriving after the TTL passed
// answers 410 Gone, the lease is revoked, and the chunk is immediately
// re-leasable as a fresh (non-stolen) grant.
func TestLeaseHeartbeatAfterExpiry(t *testing.T) {
	e := newProtoEnv(t, 10*time.Second, 4, 2) // 2 chunks
	g := e.mustLease("w1")
	if g.Chunk != 0 || g.Stolen {
		t.Fatalf("first grant: chunk %d stolen=%v, want fresh chunk 0", g.Chunk, g.Stolen)
	}
	e.clock.Advance(11 * time.Second)
	if st, resp := e.heartbeat("w1", g.Lease); st != http.StatusGone || resp.Status != "expired" {
		t.Fatalf("heartbeat after expiry: HTTP %d %q, want 410 expired", st, resp.Status)
	}
	if got := e.coord.metrics.expired.Value(); got != 1 {
		t.Errorf("expired = %v, want 1", got)
	}
	g2 := e.mustLease("w2")
	if g2.Chunk != 0 || g2.Stolen {
		t.Errorf("post-expiry grant: chunk %d stolen=%v, want pending chunk 0 again", g2.Chunk, g2.Stolen)
	}
	if got := e.coord.metrics.stolen.Value(); got != 0 {
		t.Errorf("stolen = %v, want 0: expiry reverts the chunk to pending, no steal", got)
	}
}

// TestLeaseRenewal: heartbeats inside the TTL keep a lease alive arbitrarily
// far past its original expiry; another worker is routed around the held
// chunk the whole time.
func TestLeaseRenewal(t *testing.T) {
	e := newProtoEnv(t, 10*time.Second, 4, 2)
	g := e.mustLease("w1")
	for i := 0; i < 5; i++ { // 30s of renewals against a 10s TTL
		e.clock.Advance(6 * time.Second)
		if st, resp := e.heartbeat("w1", g.Lease); st != http.StatusOK || resp.Status != "ok" {
			t.Fatalf("renewal %d: HTTP %d %q", i, st, resp.Status)
		}
	}
	if got := e.coord.metrics.expired.Value(); got != 0 {
		t.Errorf("expired = %v after in-TTL renewals, want 0", got)
	}
	if g2 := e.mustLease("w2"); g2.Chunk != 1 {
		t.Errorf("other worker got chunk %d, want 1: chunk 0 is alive and held", g2.Chunk)
	}
}

// TestStolenChunkDoubleCompletion: a stale chunk is stolen by a second
// worker; both publish the (identical) blob and both complete. The first
// completion wins, the second is an idempotent duplicate, and the blob is
// written exactly once.
func TestStolenChunkDoubleCompletion(t *testing.T) {
	e := newProtoEnv(t, time.Hour, 8, 2) // 4 chunks; expiry never interferes
	slow := e.mustLease("w1")            // chunk 0, held throughout

	// w2 drains chunks 1 and 2, keeps 3 in flight so the sweep stays active.
	for want := 1; want <= 2; want++ {
		g := e.mustLease("w2")
		if g.Chunk != want {
			t.Fatalf("w2 got chunk %d, want %d", g.Chunk, want)
		}
		e.publish(g.Lo, g.Hi, g.Chunk)
		if st, resp := e.complete("w2", g.Lease, g.Chunk); st != http.StatusOK || resp.Status != "ok" {
			t.Fatalf("chunk %d completion: HTTP %d %q", g.Chunk, st, resp.Status)
		}
	}
	held := e.mustLease("w2") // chunk 3, deliberately left incomplete for now
	if held.Chunk != 3 {
		t.Fatalf("w2 got chunk %d, want 3", held.Chunk)
	}

	// No pending chunks remain, so w2's next ask steals w1's chunk 0.
	stolen := e.mustLease("w2")
	if stolen.Chunk != 0 || !stolen.Stolen {
		t.Fatalf("grant = chunk %d stolen=%v, want stolen chunk 0", stolen.Chunk, stolen.Stolen)
	}
	if got := e.coord.metrics.stolen.Value(); got != 1 {
		t.Errorf("stolen = %v, want 1", got)
	}

	// Both workers publish byte-identical blobs; the second Put must be a
	// dedup, not a rewrite.
	e.publish(stolen.Lo, stolen.Hi, 0)
	e.publish(slow.Lo, slow.Hi, 0)
	if st := e.shared.Stats(); st.Duplicates != 1 {
		t.Errorf("shared duplicates = %d, want 1", st.Duplicates)
	}
	if st, resp := e.complete("w2", stolen.Lease, 0); st != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("stolen completion: HTTP %d %q", st, resp.Status)
	}
	if st, resp := e.complete("w1", slow.Lease, 0); st != http.StatusOK || resp.Status != "duplicate" {
		t.Fatalf("late completion: HTTP %d %q, want 200 duplicate", st, resp.Status)
	}
	if got := e.coord.metrics.completed.With("duplicate").Value(); got != 1 {
		t.Errorf("completed{duplicate} = %v, want 1", got)
	}

	e.publish(held.Lo, held.Hi, 3)
	if st, resp := e.complete("w2", held.Lease, 3); st != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("final completion: HTTP %d %q", st, resp.Status)
	}
	e.finish()
	if got := e.coord.metrics.completed.With("first").Value(); got != 4 {
		t.Errorf("completed{first} = %v, want 4", got)
	}
}

// TestCompleteAfterExpiry: a completion whose lease expired is still
// accepted — the verified blob, not the lease, is the proof of work — and
// the work is never redone.
func TestCompleteAfterExpiry(t *testing.T) {
	e := newProtoEnv(t, 10*time.Second, 4, 2)
	g := e.mustLease("w1")
	e.clock.Advance(11 * time.Second)
	e.publish(g.Lo, g.Hi, g.Chunk)
	if st, resp := e.complete("w1", g.Lease, g.Chunk); st != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("post-expiry completion: HTTP %d %q, want 200 ok", st, resp.Status)
	}
	if got := e.coord.metrics.expired.Value(); got != 1 {
		t.Errorf("expired = %v, want 1", got)
	}
	// The expired-then-completed chunk must not be granted again.
	g2 := e.mustLease("w2")
	if g2.Chunk != 1 {
		t.Fatalf("w2 got chunk %d, want 1: chunk 0 is done", g2.Chunk)
	}
	e.publish(g2.Lo, g2.Hi, g2.Chunk)
	if st, resp := e.complete("w2", g2.Lease, g2.Chunk); st != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("final completion: HTTP %d %q", st, resp.Status)
	}
	e.finish()
}

// TestCompleteWithoutBlob: completing a chunk whose blob was never published
// is a 409 and leaves the chunk completable later.
func TestCompleteWithoutBlob(t *testing.T) {
	e := newProtoEnv(t, time.Hour, 2, 2) // single chunk
	g := e.mustLease("w1")
	if st, _ := e.complete("w1", g.Lease, g.Chunk); st != http.StatusConflict {
		t.Fatalf("blobless completion: HTTP %d, want 409", st)
	}
	e.publish(g.Lo, g.Hi, g.Chunk)
	if st, resp := e.complete("w1", g.Lease, g.Chunk); st != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("retried completion: HTTP %d %q", st, resp.Status)
	}
	e.finish()
}
