package dse_test

import (
	"context"
	"testing"

	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/dse"
	"repro/internal/stacks"
	"repro/internal/trace"
	"repro/internal/workload"
)

// search_oracle_test.go — the audit-verification contract, tested from
// outside the package the way real callers (rpexplore, rpserved) wire it:
// every optimum a search returns is re-derived through an internal/audit
// oracle, and for engine/oracle pairs that are exact by construction —
// graph search vs the graph oracle, lossless rpstacks vs the graph oracle,
// simulation search vs the simulator itself — the recorded worst-case
// verification error must be exactly zero, not merely small.

func oracleSubstrate(t *testing.T, n int) (*config.Config, *depgraph.Graph, *trace.Trace, []stacks.Latencies) {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName("437.leslie3d")
	if !ok {
		t.Fatal("unknown workload")
	}
	uops := workload.Stream(prof, 23, n)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	return cfg, g, tr, nil
}

func oracleSpace() *dse.Space {
	return &dse.Space{Axes: []dse.Axis{
		{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
		{Event: stacks.FpAdd, Values: []float64{2, 4, 6}},
	}}
}

// verified asserts a search result carries a passing, exactly-zero oracle
// verification over a non-empty answer.
func verified(t *testing.T, label string, res *dse.SearchResult) {
	t.Helper()
	if !res.Verified {
		t.Fatalf("%s: result not verified", label)
	}
	if res.VerifyMaxErrPct != 0 {
		t.Fatalf("%s: exact engine/oracle pair scored %g%% verification error, want exactly 0", label, res.VerifyMaxErrPct)
	}
	if res.Best == nil && len(res.Frontier) == 0 {
		t.Fatalf("%s: nothing verified — empty answer", label)
	}
}

// TestSearchGraphOracleVerification checks the graph engine against the
// graph oracle: the same longest-path computation, so zero error exactly,
// and the verified cycle copy on each point must equal the prediction.
func TestSearchGraphOracleVerification(t *testing.T) {
	const n = 2500
	cfg, g, _, _ := oracleSubstrate(t, n)
	oracle := &audit.GraphOracle{Graph: g}
	opts := dse.SearchOptions{
		MicroOps: n,
		Verify: func(l stacks.Latencies) (float64, error) {
			c, _, err := oracle.Truth(context.Background(), l)
			return c, err
		},
	}
	probe, err := dse.SearchGraph(g, cfg.Lat, oracleSpace(), &dse.SearchSpec{Mode: dse.SearchHalving}, dse.SearchOptions{MicroOps: n})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []*dse.SearchSpec{
		{Mode: dse.SearchHalving},
		{Mode: dse.SearchPareto},
		{Mode: dse.SearchTarget, TargetCPI: (probe.FastestCycles + 1) / n},
	} {
		res, err := dse.SearchGraph(g, cfg.Lat, oracleSpace(), spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Mode == dse.SearchTarget && !res.Feasible {
			t.Fatalf("%s: budget infeasible; pick a different TargetCPI", spec)
		}
		verified(t, spec.String(), res)
		for _, p := range append(res.Frontier, deref(res.Best)...) {
			if p.VerifyCycles != p.Cycles {
				t.Fatalf("%s: verified cycles %g != predicted %g", spec, p.VerifyCycles, p.Cycles)
			}
		}
	}
}

func deref(p *dse.SearchPoint) []dse.SearchPoint {
	if p == nil {
		return nil
	}
	return []dse.SearchPoint{*p}
}

// TestSearchLosslessRpStacksOracleVerification checks the documented
// -lossless contract: an rpstacks analysis built with merging disabled, no
// stack cap and a whole-trace segment predicts exactly the graph longest
// path, so a search over it verified by the graph oracle must score 0.
// Lossless path sets grow exponentially with trace length, so the
// substrate stays tiny, matching the CI audit-smoke recipe.
func TestSearchLosslessRpStacksOracleVerification(t *testing.T) {
	const n = 60
	cfg := config.Baseline()
	prof, _ := workload.ByName("456.hmmer")
	uops := workload.Stream(prof, 23, n)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.DisableMerge = true
	opts.MaxStacks = 0
	opts.SegmentLength = len(tr.Records)
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &audit.GraphOracle{Graph: g}
	res, err := dse.SearchRpStacks(a, cfg.Lat, oracleSpace(), &dse.SearchSpec{Mode: dse.SearchPareto}, dse.SearchOptions{
		MicroOps: n,
		Verify: func(l stacks.Latencies) (float64, error) {
			c, _, err := oracle.Truth(context.Background(), l)
			return c, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	verified(t, "lossless rpstacks vs graph oracle", res)
}

// TestSearchSimOracleVerification checks the simulation engine against the
// simulation oracle — the self-audit every served search job gets: the
// oracle re-runs the same simulator, so the error is zero by construction
// and anything else means the oracle saw different inputs.
func TestSearchSimOracleVerification(t *testing.T) {
	const n = 400
	cfg := config.Baseline()
	prof, _ := workload.ByName("429.mcf")
	uops := workload.Stream(prof, 23, n)
	oracle := &audit.SimOracle{Cfg: cfg, UOps: uops}
	res, err := dse.SearchSim(cfg, uops, &dse.Space{Axes: []dse.Axis{
		{Event: stacks.L1D, Values: []float64{1, 3}},
		{Event: stacks.MemD, Values: []float64{66, 133}},
	}}, &dse.SearchSpec{Mode: dse.SearchHalving}, dse.SearchOptions{
		MicroOps: n,
		Verify: func(l stacks.Latencies) (float64, error) {
			c, _, err := oracle.Truth(context.Background(), l)
			return c, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	verified(t, "sim self-audit", res)
}
