package dse

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// prepareWorkload simulates a seeded random workload once and builds both
// prediction engines plus a randomized design-point list around the baseline.
func prepareWorkload(t *testing.T, name string, seed int64, n, points int) (*config.Config, *depgraph.Graph, *core.Analysis, []stacks.Latencies) {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	uops := workload.Stream(prof, seed, n)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]stacks.Latencies, points)
	for i := range pts {
		l := cfg.Lat
		for e := stacks.Event(1); e < stacks.NumEvents; e++ {
			l = l.Scale(e, 0.25+rng.Float64()*1.5)
		}
		pts[i] = l
	}
	return cfg, g, a, pts
}

// sameResults asserts two sweeps produced identical Results slices: same
// order, same points, bit-identical cycle counts.
func sameResults(t *testing.T, label string, serial, parallel []Result) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: result counts differ: %d vs %d", label, len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Lat != parallel[i].Lat {
			t.Fatalf("%s: point %d latency assignment differs", label, i)
		}
		if serial[i].Cycles != parallel[i].Cycles {
			t.Fatalf("%s: point %d cycles differ: %g vs %g",
				label, i, serial[i].Cycles, parallel[i].Cycles)
		}
	}
}

// TestParallelSweepsMatchSerial is the differential cross-engine harness: on
// seeded random workloads, the sharded sweeps of all three engines must
// return exactly the serial sweeps' Results — order and values — for every
// parallelism/chunk shape, including chunk sizes of one and larger than the
// point list.
func TestParallelSweepsMatchSerial(t *testing.T) {
	shapes := []ExploreOptions{
		{Parallelism: 2},
		{Parallelism: 3, ChunkSize: 1},
		{Parallelism: 4, ChunkSize: 5},
		{Parallelism: 8, ChunkSize: 1000},
		{Parallelism: 16},
	}
	for _, wl := range []struct {
		name string
		seed int64
	}{
		{"416.gamess", 7},
		{"429.mcf", 11},
	} {
		cfg, g, a, pts := prepareWorkload(t, wl.name, wl.seed, 4000, 24)

		grSerial, _ := ExploreGraphOpts(g, pts, ExploreOptions{})
		rpSerial, _ := ExploreRpStacksOpts(a, pts, ExploreOptions{})
		for _, opts := range shapes {
			gr, _ := ExploreGraphOpts(g, pts, opts)
			sameResults(t, wl.name+"/graph", grSerial.Results, gr.Results)
			rp, _ := ExploreRpStacksOpts(a, pts, opts)
			sameResults(t, wl.name+"/rpstacks", rpSerial.Results, rp.Results)
		}

		// The simulator engine re-runs the full timing model per point;
		// keep its differential slice small.
		prof, _ := workload.ByName(wl.name)
		simUOps := workload.Stream(prof, wl.seed, 1200)
		simPts := pts[:4]
		simSerial, err := ExploreSimOpts(cfg, simUOps, simPts, ExploreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		simPar, err := ExploreSimOpts(cfg, simUOps, simPts, ExploreOptions{Parallelism: 3, ChunkSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, wl.name+"/sim", simSerial.Results, simPar.Results)
	}
}

// TestLosslessParallelMatchesGraph checks the paper's lossless-reduction
// property under a sharded sweep: with merging disabled, the RpStacks sweep
// agrees point-for-point with graph reconstruction — now with both engines
// running Parallelism > 1.
func TestLosslessParallelMatchesGraph(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("456.hmmer")
	// Path counts grow exponentially without merging, so the exactness
	// check uses a small window (as in core's serial lossless test).
	uops := workload.Stream(prof, 3, 60)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.DisableMerge = true
	opts.MaxStacks = 0
	opts.SegmentLength = len(tr.Records)
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	pts := make([]stacks.Latencies, 40)
	for i := range pts {
		l := cfg.Lat
		for e := stacks.Event(1); e < stacks.NumEvents; e++ {
			l = l.Scale(e, 0.25+rng.Float64()*1.5)
		}
		pts[i] = l
	}
	par := ExploreOptions{Parallelism: 4, ChunkSize: 3}
	rp, _ := ExploreRpStacksOpts(a, pts, par)
	gr, _ := ExploreGraphOpts(g, pts, par)
	for i := range pts {
		if int64(rp.Results[i].Cycles+0.5) != int64(gr.Results[i].Cycles) {
			t.Fatalf("point %d: lossless RpStacks %.1f != graph longest path %.0f",
				i, rp.Results[i].Cycles, gr.Results[i].Cycles)
		}
	}
}

// TestEnginesRecordSetup is the regression test for the Report.Setup fix:
// the constructors populate Setup from ExploreOptions, and Total/Crossover
// consume it without hand-patching.
func TestEnginesRecordSetup(t *testing.T) {
	_, g, a, pts := prepareWorkload(t, "456.hmmer", 9, 1500, 6)

	const setup = 250 * time.Millisecond
	gr, _ := ExploreGraphOpts(g, pts, ExploreOptions{Setup: setup})
	rp, _ := ExploreRpStacksOpts(a, pts, ExploreOptions{Setup: setup, Parallelism: 2})
	for _, rep := range []*Report{gr, rp} {
		if rep.Setup != setup {
			t.Fatalf("%s: Setup = %v, want %v", rep.Method, rep.Setup, setup)
		}
		if got := rep.Total(10); got != setup+10*rep.PerPoint {
			t.Fatalf("%s: Total(10) = %v, want setup + 10*per-point", rep.Method, got)
		}
	}
	// A zero-setup engine with the same per-point cost is immediately
	// cheaper; one carrying the setup needs points to amortize it.
	cheap := &Report{PerPoint: rp.PerPoint}
	if n := Crossover(rp, cheap, 1_000_000); n != -1 {
		t.Fatalf("engine with setup beat its zero-setup twin at %d points", n)
	}
	slowSim := &Report{PerPoint: setup / 100}
	n := Crossover(rp, slowSim, 1_000_000)
	if n < 1 {
		t.Fatalf("crossover against a slow simulator never happened (n = %d)", n)
	}
	if rp.Total(n) >= slowSim.Total(n) || (n > 1 && rp.Total(n-1) < slowSim.Total(n-1)) {
		t.Fatalf("crossover %d inconsistent with Total", n)
	}
}

// TestSweepReportShape checks the new Report bookkeeping: Wall covers the
// loop, per-worker points sum to the sweep size, and the worker count
// respects both Parallelism and the point count.
func TestSweepReportShape(t *testing.T) {
	_, g, _, pts := prepareWorkload(t, "470.lbm", 13, 1500, 10)

	rep, _ := ExploreGraphOpts(g, pts, ExploreOptions{Parallelism: 4, ChunkSize: 2})
	if len(rep.Workers) != 4 {
		t.Fatalf("worker timings: %d entries, want 4", len(rep.Workers))
	}
	total := 0
	for _, wt := range rep.Workers {
		total += wt.Points
	}
	if total != len(pts) {
		t.Fatalf("workers processed %d points, want %d", total, len(pts))
	}
	if rep.Wall <= 0 || rep.PerPoint <= 0 {
		t.Fatalf("loop timing not recorded: wall %v per-point %v", rep.Wall, rep.PerPoint)
	}
	// More workers than points: the pool must clamp.
	small, _ := ExploreGraphOpts(g, pts[:3], ExploreOptions{Parallelism: 64})
	if len(small.Workers) > 3 {
		t.Fatalf("worker pool not clamped to point count: %d workers", len(small.Workers))
	}
	// Empty point list: no loop, no workers needed beyond the placeholder.
	empty, _ := ExploreGraphOpts(g, nil, ExploreOptions{Parallelism: 4})
	if len(empty.Results) != 0 || empty.PerPoint != 0 {
		t.Fatalf("empty sweep produced results or per-point cost")
	}
}
