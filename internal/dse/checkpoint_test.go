package dse

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/workload"
)

// cancelAfter is a context.Context whose Err flips to Canceled after a
// fixed number of Err calls. The sweep checks the context once per chunk,
// so this injects a crash at a deterministic chunk boundary — after the
// first n chunks have been evaluated and their checkpoint files published.
type cancelAfter struct {
	mu        sync.Mutex
	remaining int
}

func (c *cancelAfter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func (c *cancelAfter) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *cancelAfter) Done() <-chan struct{}       { return nil }
func (c *cancelAfter) Value(any) any               { return nil }

// chunkFiles lists the published chunk files in a checkpoint directory.
func chunkFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		if strings.HasPrefix(de.Name(), chunkPrefix) {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

// TestCheckpointCrashResumeDifferential is the crash-safety acceptance
// test: a checkpointed sweep is killed after a fixed number of chunks, then
// resumed over the same directory, and the stitched result must equal an
// uninterrupted serial sweep point for point — for every engine, with the
// resumed sweep running in parallel so chunk publication is exercised
// concurrently (this test is part of the -race CI run).
func TestCheckpointCrashResumeDifferential(t *testing.T) {
	cfg, g, a, pts := prepareWorkload(t, "429.mcf", 7, 2500, 60)
	uops := smallStream(t, "429.mcf", 7, 2500)

	engines := []struct {
		name string
		run  func(opts ExploreOptions) (*Report, error)
	}{
		{"rpstacks", func(opts ExploreOptions) (*Report, error) { return ExploreRpStacksOpts(a, pts, opts) }},
		{"graph", func(opts ExploreOptions) (*Report, error) { return ExploreGraphOpts(g, pts, opts) }},
		{"sim", func(opts ExploreOptions) (*Report, error) { return ExploreSimOpts(cfg, uops, pts, opts) }},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			uninterrupted, err := eng.run(ExploreOptions{})
			if err != nil {
				t.Fatal(err)
			}

			const crashChunks = 4
			dir := t.TempDir()
			ck := &Checkpoint{Dir: dir}
			// Crashed run: serial, chunked, cancelled after 4 chunks of 5.
			_, err = eng.run(ExploreOptions{
				Parallelism: 1,
				ChunkSize:   5,
				Context:     &cancelAfter{remaining: crashChunks},
				Checkpoint:  ck,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("crashed run returned %v, want context.Canceled", err)
			}
			if got := len(chunkFiles(t, dir)); got != crashChunks {
				t.Fatalf("crash left %d chunk files, want %d", got, crashChunks)
			}

			// Resumed run: parallel, over the same directory.
			resumed, err := eng.run(ExploreOptions{Parallelism: 4, ChunkSize: 3, Checkpoint: ck})
			if err != nil {
				t.Fatal(err)
			}
			if want := crashChunks * 5; resumed.Resumed != want {
				t.Fatalf("resume restored %d points, want %d", resumed.Resumed, want)
			}
			sameResults(t, eng.name+" resumed vs uninterrupted", uninterrupted.Results, resumed.Results)

			// A third run over the now-complete checkpoint evaluates nothing.
			full, err := eng.run(ExploreOptions{Checkpoint: ck})
			if err != nil {
				t.Fatal(err)
			}
			if full.Resumed != len(pts) {
				t.Fatalf("complete checkpoint restored %d of %d points", full.Resumed, len(pts))
			}
			sameResults(t, eng.name+" fully resumed", uninterrupted.Results, full.Results)
		})
	}
}

// TestCheckpointRejectsForeignSweep writes a checkpoint with one sweep and
// resumes with different design points: the fingerprint must make that a
// hard error, never a silent mix of two sweeps' results.
func TestCheckpointRejectsForeignSweep(t *testing.T) {
	_, _, a, pts := prepareWorkload(t, "429.mcf", 3, 2000, 20)
	dir := t.TempDir()
	ck := &Checkpoint{Dir: dir}
	if _, err := ExploreRpStacksOpts(a, pts, ExploreOptions{Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}

	// Same engine and analysis, one point dropped: a different sweep.
	if _, err := ExploreRpStacksOpts(a, pts[:len(pts)-1], ExploreOptions{Checkpoint: ck}); err == nil {
		t.Fatal("checkpoint from a different point list was accepted")
	} else if !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Same points, different engine: also a different sweep.
	_, g, _, _ := prepareWorkload(t, "429.mcf", 3, 2000, 1)
	if _, err := ExploreGraphOpts(g, pts, ExploreOptions{Checkpoint: ck}); err == nil {
		t.Fatal("checkpoint from a different engine was accepted")
	}
}

// TestCheckpointCorruptChunkIsReevaluated damages one published chunk
// in every way the store must survive — bit flip, truncation, garbage —
// and checks resume silently re-evaluates that chunk's points and still
// matches the uninterrupted sweep.
func TestCheckpointCorruptChunkIsReevaluated(t *testing.T) {
	_, _, a, pts := prepareWorkload(t, "429.mcf", 5, 2000, 30)
	uninterrupted := ExploreRpStacks(a, pts)

	for _, damage := range []struct {
		name string
		hit  func(raw []byte) []byte
	}{
		{"bitflip", func(raw []byte) []byte { raw[len(raw)/2] ^= 1; return raw }},
		{"truncate", func(raw []byte) []byte { return raw[:len(raw)-7] }},
		{"garbage", func(raw []byte) []byte { return []byte("not a chunk") }},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			ck := &Checkpoint{Dir: dir}
			if _, err := ExploreRpStacksOpts(a, pts, ExploreOptions{ChunkSize: 5, Checkpoint: ck}); err != nil {
				t.Fatal(err)
			}
			files := chunkFiles(t, dir)
			if len(files) == 0 {
				t.Fatal("no chunks published")
			}
			victim := files[len(files)/2]
			raw, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(victim, damage.hit(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			resumed, err := ExploreRpStacksOpts(a, pts, ExploreOptions{ChunkSize: 5, Checkpoint: ck})
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Resumed >= len(pts) {
				t.Fatalf("resume restored %d points despite a corrupt chunk", resumed.Resumed)
			}
			sameResults(t, "after corruption", uninterrupted.Results, resumed.Results)
			if _, err := os.Stat(victim); !os.IsNotExist(err) {
				// The corrupt file must be gone (its name may be reused by the
				// re-evaluated chunk; then it decodes cleanly).
				if raw2, rerr := os.ReadFile(victim); rerr == nil {
					if _, _, derr := decodeChunk(raw2); derr != nil {
						t.Fatal("corrupt chunk file left in place")
					}
				}
			}
		})
	}
}

// smallStream regenerates the µop stream prepareWorkload simulated, for the
// sim engine.
func smallStream(t *testing.T, name string, seed int64, n int) []isa.MicroOp {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	return workload.Stream(prof, seed, n)
}

// TestCheckpointRemoveOnSuccess: with RemoveOnSuccess set, a sweep that
// finishes deletes its chunk files (and the directory, when it created it
// exclusively), while a crashed sweep keeps them — and a resume over the
// kept files still completes, cleans up, and matches the uninterrupted run.
func TestCheckpointRemoveOnSuccess(t *testing.T) {
	_, g, _, pts := prepareWorkload(t, "429.mcf", 7, 2500, 60)
	uninterrupted := ExploreGraph(g, pts)

	dir := filepath.Join(t.TempDir(), "ck")
	ck := &Checkpoint{Dir: dir, RemoveOnSuccess: true}

	// Crashed run: the chunk files must survive — they are the resume state.
	_, err := ExploreGraphOpts(g, pts, ExploreOptions{
		Parallelism: 1,
		ChunkSize:   5,
		Context:     &cancelAfter{remaining: 3},
		Checkpoint:  ck,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed run returned %v, want context.Canceled", err)
	}
	if got := len(chunkFiles(t, dir)); got != 3 {
		t.Fatalf("crash kept %d chunk files, want 3: RemoveOnSuccess must not fire on error", got)
	}

	// Successful resume: results match, then the checkpoint evaporates.
	resumed, err := ExploreGraphOpts(g, pts, ExploreOptions{ChunkSize: 5, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 15 {
		t.Fatalf("resume restored %d points, want 15", resumed.Resumed)
	}
	sameResults(t, "resumed vs uninterrupted", uninterrupted.Results, resumed.Results)
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("checkpoint directory survived a successful sweep: %v", err)
	}

	// A directory holding foreign files loses only the chunk files.
	dir2 := filepath.Join(t.TempDir(), "ck2")
	if err := os.MkdirAll(dir2, 0o755); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir2, "NOTES.txt")
	if err := os.WriteFile(keep, []byte("not a chunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ExploreGraphOpts(g, pts, ExploreOptions{
		ChunkSize:  5,
		Checkpoint: &Checkpoint{Dir: dir2, RemoveOnSuccess: true},
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(chunkFiles(t, dir2)); got != 0 {
		t.Fatalf("%d chunk files survive in a shared directory", got)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("foreign file was deleted: %v", err)
	}
}
