// Package dse drives latency-domain design space exploration with the three
// competing engines the paper times against each other (Section V-C): full
// re-simulation per design point, Fields-style dependence-graph
// reconstruction per point, and RpStacks (one analysis, constant-time
// prediction per point).
package dse

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/stacks"
)

// Axis is one latency-domain dimension: the candidate cycle costs of one
// event kind.
type Axis struct {
	Event  stacks.Event
	Values []float64
}

// Space is a full-factorial latency design space around a baseline.
type Space struct {
	Axes []Axis
}

// Size returns the number of design points.
func (s *Space) Size() int {
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	return n
}

// Point materializes design point idx (row-major over the axes) on top of
// the base latency assignment.
func (s *Space) Point(base stacks.Latencies, idx int) stacks.Latencies {
	l := base
	for _, a := range s.Axes {
		n := len(a.Values)
		l[a.Event] = a.Values[idx%n]
		idx /= n
	}
	return l
}

// Enumerate materializes every design point.
func (s *Space) Enumerate(base stacks.Latencies) []stacks.Latencies {
	out := make([]stacks.Latencies, s.Size())
	for i := range out {
		out[i] = s.Point(base, i)
	}
	return out
}

// Validate checks the space is well-formed.
func (s *Space) Validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("dse: empty design space")
	}
	for _, a := range s.Axes {
		if !a.Event.Optimizable() {
			return fmt.Errorf("dse: event %s is not a latency-domain knob", a.Event)
		}
		if len(a.Values) == 0 {
			return fmt.Errorf("dse: axis %s has no values", a.Event)
		}
		for _, v := range a.Values {
			if v < 0 {
				return fmt.Errorf("dse: axis %s has negative latency %g", a.Event, v)
			}
		}
	}
	return nil
}

// Result is the predicted (or measured) cycle count of one design point.
type Result struct {
	Lat    stacks.Latencies
	Cycles float64
}

// Report carries the results of one exploration plus its wall-clock cost
// split into one-time setup and the per-point loop.
type Report struct {
	Method   string
	Results  []Result
	Setup    time.Duration
	PerPoint time.Duration
}

// Total returns the wall-clock cost of exploring n points with this
// method's measured timings.
func (r *Report) Total(n int) time.Duration {
	return r.Setup + time.Duration(n)*r.PerPoint
}

// ExploreSim measures every design point by re-running the timing
// simulator: the ground truth, and the cost yardstick of Figure 13.
func ExploreSim(cfg *config.Config, uops []isa.MicroOp, points []stacks.Latencies) (*Report, error) {
	rep := &Report{Method: "simulator", Results: make([]Result, 0, len(points))}
	start := time.Now()
	for _, l := range points {
		c := cfg.Clone()
		c.Lat = l
		s, err := cpu.New(c)
		if err != nil {
			return nil, err
		}
		tr, err := s.Run(uops)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, Result{Lat: l, Cycles: float64(tr.Cycles)})
	}
	if len(points) > 0 {
		rep.PerPoint = time.Since(start) / time.Duration(len(points))
	}
	return rep, nil
}

// ExploreGraph predicts every design point by re-evaluating the longest
// path of a prebuilt baseline dependence graph (the Fields-style
// reconstruction comparator): cheaper than simulation, still linear in
// trace length per point.
func ExploreGraph(g *depgraph.Graph, points []stacks.Latencies) *Report {
	rep := &Report{Method: "graph", Results: make([]Result, 0, len(points))}
	start := time.Now()
	for _, l := range points {
		l := l
		rep.Results = append(rep.Results, Result{Lat: l, Cycles: float64(g.LongestPath(&l))})
	}
	if len(points) > 0 {
		rep.PerPoint = time.Since(start) / time.Duration(len(points))
	}
	return rep
}

// ExploreRpStacks predicts every design point from a prebuilt RpStacks
// analysis: per point the cost is proportional to the (small) number of
// representative stacks, independent of trace length.
func ExploreRpStacks(a *core.Analysis, points []stacks.Latencies) *Report {
	rep := &Report{Method: "rpstacks", Results: make([]Result, 0, len(points))}
	start := time.Now()
	for _, l := range points {
		l := l
		rep.Results = append(rep.Results, Result{Lat: l, Cycles: a.Predict(&l)})
	}
	if len(points) > 0 {
		rep.PerPoint = time.Since(start) / time.Duration(len(points))
	}
	return rep
}

// Crossover returns the design-point count beyond which method a (with
// setup cost) beats method b, or -1 if it never does within limit.
func Crossover(a, b *Report, limit int) int {
	for n := 1; n <= limit; n++ {
		if a.Total(n) < b.Total(n) {
			return n
		}
	}
	return -1
}

// BestUnder returns the results meeting a target cycle budget, the design
// points "meeting the design goal" of the paper's Figure 6 scenario.
func BestUnder(results []Result, cycleBudget float64) []Result {
	var out []Result
	for _, r := range results {
		if r.Cycles <= cycleBudget {
			out = append(out, r)
		}
	}
	return out
}
