// Package dse drives latency-domain design space exploration with the three
// competing engines the paper times against each other (Section V-C): full
// re-simulation per design point, Fields-style dependence-graph
// reconstruction per point, and RpStacks (one analysis, constant-time
// prediction per point).
package dse

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/stacks"
)

// Axis is one latency-domain dimension: the candidate cycle costs of one
// event kind.
type Axis struct {
	Event  stacks.Event
	Values []float64
}

// Space is a full-factorial latency design space around a baseline.
type Space struct {
	Axes []Axis
}

// Size returns the number of design points, saturating at math.MaxInt when
// the product overflows (SizeSaturating distinguishes the two; SizeWithin
// enforces a cap). It can therefore never wrap negative on huge axis lists.
func (s *Space) Size() int {
	n, _ := s.SizeSaturating()
	return n
}

// Point materializes design point idx (row-major over the axes) on top of
// the base latency assignment.
func (s *Space) Point(base stacks.Latencies, idx int) stacks.Latencies {
	l := base
	for _, a := range s.Axes {
		n := len(a.Values)
		l[a.Event] = a.Values[idx%n]
		idx /= n
	}
	return l
}

// Enumerate materializes every design point. It panics on a space whose
// size overflows int — such a space cannot be materialized at all; callers
// facing user-supplied axes should gate on SizeWithin (or use a search
// mode, which never materializes the grid).
func (s *Space) Enumerate(base stacks.Latencies) []stacks.Latencies {
	n, exact := s.SizeSaturating()
	if !exact {
		panic("dse: design space too large to materialize; use a search mode")
	}
	out := make([]stacks.Latencies, n)
	for i := range out {
		out[i] = s.Point(base, i)
	}
	return out
}

// Validate checks the space is well-formed: at least one axis, every axis a
// latency-domain knob with at least one non-negative value, and no event
// named by two axes (a duplicate would silently shadow the earlier axis in
// Point's row-major walk).
func (s *Space) Validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("dse: empty design space")
	}
	var seen [stacks.NumEvents]bool
	for _, a := range s.Axes {
		if !a.Event.Optimizable() {
			return fmt.Errorf("dse: event %s is not a latency-domain knob", a.Event)
		}
		if seen[a.Event] {
			return fmt.Errorf("dse: duplicate axis for event %s", a.Event)
		}
		seen[a.Event] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("dse: axis %s has no values", a.Event)
		}
		for _, v := range a.Values {
			if v < 0 {
				return fmt.Errorf("dse: axis %s has negative latency %g", a.Event, v)
			}
		}
	}
	return nil
}

// Result is the predicted (or measured) cycle count of one design point.
type Result struct {
	Lat    stacks.Latencies
	Cycles float64
}

// WorkerTiming is one sweep worker's share of the per-point loop.
type WorkerTiming struct {
	Worker int
	Points int
	Busy   time.Duration
}

// Report carries the results of one exploration plus its wall-clock cost
// split into one-time setup and the per-point loop.
type Report struct {
	Method  string
	Results []Result
	// Setup is the one-time cost of preparing the engine (simulate, analyze,
	// build the graph), recorded by the Explore* constructors from
	// ExploreOptions.Setup. It is what Total and Crossover amortize.
	Setup time.Duration
	// PerPoint is the effective per-design-point cost: sweep wall-clock
	// divided by the point count. Under a parallel sweep it already reflects
	// the worker speedup, so Total, Crossover and the Figure 2b/13 series
	// stay meaningful.
	PerPoint time.Duration
	// Wall is the aggregate wall-clock of the whole per-point loop.
	Wall time.Duration
	// Workers holds per-worker busy time and point counts (one entry per
	// worker that ran; a serial sweep has exactly one).
	Workers []WorkerTiming
	// Resumed is the number of design points restored from a checkpoint
	// instead of being evaluated (zero without ExploreOptions.Checkpoint).
	// PerPoint still divides the loop wall-clock by the full point count, so
	// a heavily resumed sweep reports an optimistic per-point cost.
	Resumed int
	// Fingerprint is the sweep's identity hash — SHA-256 over the engine,
	// its prepared inputs and the full point list, the same binding the
	// checkpoint layer uses. Set on every checkpointed sweep and on sweeps
	// run with ExploreOptions.NeedFingerprint; nil otherwise. It seeds the
	// audit sampler, which is why the audited point set is stable across
	// resumes: the hash covers the sweep's inputs, not its schedule.
	Fingerprint []byte
	// Batch is the lane width the sweep actually evaluated with: how many
	// design points each pass over the engine's model covered. 1 means the
	// scalar per-point path (always, for the sim engine); widths above 1
	// record the resolved ExploreOptions.BatchSize, autotuned when that was
	// zero. Purely informational — results are identical at every width.
	Batch int
}

// Total returns the wall-clock cost of exploring n points with this
// method's measured timings.
func (r *Report) Total(n int) time.Duration {
	return r.Setup + time.Duration(n)*r.PerPoint
}

// finish stamps the loop timing fields of a completed sweep.
func (r *Report) finish(wall time.Duration, workers []WorkerTiming) {
	r.Wall = wall
	r.Workers = workers
	if n := len(r.Results); n > 0 {
		r.PerPoint = wall / time.Duration(n)
	}
}

// runPoints is the engines' shared sweep driver. Without a checkpoint it
// runs the plain chunked sweep. With one, it fingerprints the sweep (method
// + the engine input streamed by salt + the point list), restores persisted
// chunks, evaluates only the pending points, and publishes each completed
// chunk atomically — crash-safe at chunk granularity. ev carries the
// engine's per-worker evaluation closures — scalar per-point or K-wide
// batched; batching changes how a chunk's points are walked, never which
// points land in which chunk, so checkpoint files and fingerprints are
// identical across widths. salt may be nil for engines whose output is
// determined by the point list alone.
func runPoints(rep *Report, points []stacks.Latencies, opts ExploreOptions, salt func(io.Writer) error, ev engineEval) error {
	// The sweep root wraps everything below — checkpoint restore included —
	// so an exported trace accounts for (at least) the whole Report.Wall.
	// Chunk spans attach under it via TraceParent; all of this is inert when
	// opts.Tracer is nil.
	root := opts.Tracer.StartChild(opts.TraceParent, obs.CatDSE, obs.NameSweep)
	root.SetDetail(rep.Method)
	root.SetArg(obs.ArgPoints, int64(len(points)))
	defer root.End()
	opts.TraceParent = root.ID()

	results := rep.Results
	batched := ev.batched()
	if batched && opts.ChunkSize == 0 {
		// Align auto-sized chunks to the lane width: a chunk is the unit one
		// worker claims, so an auto chunk narrower than the batch would
		// silently cap every model pass below the resolved width. Explicit
		// chunk sizes are respected — cancellation granularity is the
		// caller's call.
		w := opts.workerCount(len(points))
		c := opts.chunkSize(len(points), w)
		if rem := c % ev.width; rem != 0 {
			c += ev.width - rem
		}
		opts.ChunkSize = c
	}
	// Per-worker batch scratches: the output lanes of one model pass, and
	// (for the checkpoint path, whose chunks list scattered indices) a
	// gather buffer of latency columns. O(workers·width), allocated once.
	var outBufs [][]float64
	var latBufs [][]stacks.Latencies
	if batched {
		nw := opts.workerCount(len(points))
		outBufs = make([][]float64, nw)
		for i := range outBufs {
			outBufs[i] = make([]float64, ev.width)
		}
		if opts.Checkpoint != nil {
			latBufs = make([][]stacks.Latencies, nw)
			for i := range latBufs {
				latBufs[i] = make([]stacks.Latencies, ev.width)
			}
		}
	}
	// evalRange evaluates the contiguous design points [lo, hi). The batched
	// form slices the point list directly — no gather copy on the hot
	// (uncheckpointed) path.
	evalRange := func(worker, lo, hi int) error {
		if !batched {
			for i := lo; i < hi; i++ {
				c, err := ev.point(worker, i)
				if err != nil {
					return err
				}
				results[i] = Result{Lat: points[i], Cycles: c}
			}
			return nil
		}
		out := outBufs[worker]
		for i := lo; i < hi; i += ev.width {
			j := i + ev.width
			if j > hi {
				j = hi // ragged final batch of the chunk
			}
			if err := ev.batch(worker, points[i:j], out[:j-i]); err != nil {
				return err
			}
			for t, c := range out[:j-i] {
				results[i+t] = Result{Lat: points[i+t], Cycles: c}
			}
		}
		return nil
	}
	// evalIndices evaluates the scattered point indices idxs — the resume
	// path walks pending-index space, so a batch gathers its latency columns
	// first and scatters its results after.
	evalIndices := func(worker int, idxs []int) error {
		if !batched {
			for _, i := range idxs {
				c, err := ev.point(worker, i)
				if err != nil {
					return err
				}
				results[i] = Result{Lat: points[i], Cycles: c}
			}
			return nil
		}
		out, lat := outBufs[worker], latBufs[worker]
		for o := 0; o < len(idxs); o += ev.width {
			e := o + ev.width
			if e > len(idxs) {
				e = len(idxs)
			}
			group := idxs[o:e]
			for t, i := range group {
				lat[t] = points[i]
			}
			if err := ev.batch(worker, lat[:len(group)], out[:len(group)]); err != nil {
				return err
			}
			for t, i := range group {
				results[i] = Result{Lat: points[i], Cycles: out[t]}
			}
		}
		return nil
	}

	if opts.Checkpoint == nil {
		if opts.NeedFingerprint {
			fp, err := sweepFingerprint(rep.Method, salt, points)
			if err != nil {
				return err
			}
			rep.Fingerprint = fp[:]
		}
		wall, workers, err := sweep(len(points), opts, evalRange)
		if err != nil {
			return err
		}
		rep.finish(wall, workers)
		return nil
	}

	dir := opts.Checkpoint.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dse: creating checkpoint dir: %w", err)
	}
	fp, err := sweepFingerprint(rep.Method, salt, points)
	if err != nil {
		return err
	}
	rep.Fingerprint = fp[:]
	done := make([]bool, len(points))
	restored, err := loadChunks(dir, fp, results, done, opts.Tracer, opts.TraceParent)
	if err != nil {
		return err
	}
	rep.Resumed = restored
	pending := make([]int, 0, len(points)-restored)
	for i, d := range done {
		if d {
			results[i].Lat = points[i]
		} else {
			pending = append(pending, i)
		}
	}
	// The sweep walks pending-index space; chunk files are disjoint across
	// resumes because a restored point never becomes pending again.
	wall, workers, err := sweep(len(pending), opts, func(worker, lo, hi int) error {
		if lo == hi {
			return nil // fully resumed sweep: nothing to evaluate or publish
		}
		if err := evalIndices(worker, pending[lo:hi]); err != nil {
			return err
		}
		return saveChunk(dir, fp, pending[lo:hi], results)
	})
	if err != nil {
		return err
	}
	rep.finish(wall, workers)
	if opts.Checkpoint.RemoveOnSuccess {
		// The Report is complete; the chunk files have nothing left to
		// protect. Errors above keep them for the next resume.
		removeChunks(dir)
	}
	return nil
}

// ExploreSim measures every design point by re-running the timing
// simulator: the ground truth, and the cost yardstick of Figure 13.
// It is the serial form of ExploreSimOpts.
func ExploreSim(cfg *config.Config, uops []isa.MicroOp, points []stacks.Latencies) (*Report, error) {
	return ExploreSimOpts(cfg, uops, points, ExploreOptions{})
}

// ExploreSimOpts measures every design point by re-running the timing
// simulator, sharding the point list over opts.Parallelism workers. Each
// worker clones the configuration per point, so the sweep is race-free and
// its Results are identical to the serial sweep's.
func ExploreSimOpts(cfg *config.Config, uops []isa.MicroOp, points []stacks.Latencies, opts ExploreOptions) (*Report, error) {
	rep := &Report{Method: "simulator", Results: make([]Result, len(points)), Setup: opts.Setup}
	salt := simSalt(cfg, uops)
	rep.Batch = 1 // re-simulation has no batched form
	err := runPoints(rep, points, opts, salt, engineEval{point: func(_, i int) (float64, error) {
		c := cfg.Clone()
		c.Lat = points[i]
		s, err := cpu.New(c)
		if err != nil {
			return 0, err
		}
		tr, err := s.Run(uops)
		if err != nil {
			return 0, err
		}
		return float64(tr.Cycles), nil
	}})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// ExploreGraph predicts every design point by re-evaluating the longest
// path of a prebuilt baseline dependence graph (the Fields-style
// reconstruction comparator): cheaper than simulation, still linear in
// trace length per point. It is the serial form of ExploreGraphOpts; with
// no Context the sweep cannot fail, so no error is returned.
func ExploreGraph(g *depgraph.Graph, points []stacks.Latencies) *Report {
	rep, _ := ExploreGraphOpts(g, points, ExploreOptions{})
	return rep
}

// maxGraphBatchInt64s bounds the per-worker distance buffer of a batched
// graph sweep (nodes × lanes int64s) when the lane width is autotuned: on
// very large graphs the autotuner narrows the batch rather than allocating
// hundreds of megabytes per worker. An explicit ExploreOptions.BatchSize
// overrides the cap — the caller asked for that memory.
const maxGraphBatchInt64s = 1 << 22 // 32 MiB of lanes per worker

// ExploreGraphOpts predicts every design point from a prebuilt dependence
// graph, sharding the point list over opts.Parallelism workers. By default
// each worker holds one reusable depgraph.BatchEvaluator and evaluates
// ExploreOptions.BatchSize design points per pass over the graph (width
// autotuned when zero; BatchSize 1 falls back to the scalar
// depgraph.Evaluator) — the whole sweep costs O(workers) buffers either
// way, and the graph itself is only read. Results are written by point
// index and are bit-identical to the serial scalar sweep's at every worker
// count and batch width. The only possible error is opts.Context's
// cancellation error, checked between chunks.
func ExploreGraphOpts(g *depgraph.Graph, points []stacks.Latencies, opts ExploreOptions) (*Report, error) {
	rep := &Report{Method: "graph", Results: make([]Result, len(points)), Setup: opts.Setup}
	nw := opts.workerCount(len(points))
	maxWidth := 0
	if nodes := g.NumNodes(); nodes > 0 {
		if maxWidth = maxGraphBatchInt64s / nodes; maxWidth < 1 {
			maxWidth = 1 // graph too large to batch within budget: autotune stays scalar
		}
	}
	width := pickBatchWidth(opts.BatchSize, len(points), maxWidth, func(w int) time.Duration {
		be := g.NewBatchEvaluator(w)
		sink := make([]int64, w)
		start := time.Now()
		be.LongestPaths(points[:w], sink)
		return time.Since(start)
	})
	rep.Batch = width
	var ev engineEval
	if width <= 1 {
		evals := make([]*depgraph.Evaluator, nw)
		for i := range evals {
			evals[i] = g.NewEvaluator()
		}
		ev = engineEval{point: func(worker, i int) (float64, error) {
			return float64(evals[worker].LongestPath(&points[i])), nil
		}}
	} else {
		bes := make([]*depgraph.BatchEvaluator, nw)
		sinks := make([][]int64, nw)
		for i := range bes {
			bes[i] = g.NewBatchEvaluator(width)
			sinks[i] = make([]int64, width)
		}
		ev = engineEval{width: width, batch: func(worker int, lats []stacks.Latencies, out []float64) error {
			sink := sinks[worker][:len(lats)]
			bes[worker].LongestPaths(lats, sink)
			for t, v := range sink {
				out[t] = float64(v)
			}
			return nil
		}}
	}
	err := runPoints(rep, points, opts, g.WriteFingerprint, ev)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// ExploreRpStacks predicts every design point from a prebuilt RpStacks
// analysis: per point the cost is proportional to the (small) number of
// representative stacks, independent of trace length. It is the serial form
// of ExploreRpStacksOpts; with no Context the sweep cannot fail, so no
// error is returned.
func ExploreRpStacks(a *core.Analysis, points []stacks.Latencies) *Report {
	rep, _ := ExploreRpStacksOpts(a, points, ExploreOptions{})
	return rep
}

// ExploreRpStacksOpts predicts every design point from a prebuilt RpStacks
// analysis, sharding the point list over opts.Parallelism workers. By
// default each worker holds one reusable core.BatchPredictor and re-weights
// the representative stacks for ExploreOptions.BatchSize design points per
// pass (width autotuned when zero; BatchSize 1 falls back to scalar
// Analysis.Predict). The analysis is read-only, so workers share it without
// synchronization; Results are written by point index and are bit-identical
// to the serial scalar sweep's at every worker count and batch width. The
// only possible error is opts.Context's cancellation error, checked between
// chunks.
func ExploreRpStacksOpts(a *core.Analysis, points []stacks.Latencies, opts ExploreOptions) (*Report, error) {
	rep := &Report{Method: "rpstacks", Results: make([]Result, len(points)), Setup: opts.Setup}
	salt := func(w io.Writer) error { return core.WriteAnalysis(w, a) }
	width := pickBatchWidth(opts.BatchSize, len(points), 0, func(w int) time.Duration {
		bp := a.NewBatchPredictor(w)
		sink := make([]float64, w)
		start := time.Now()
		bp.Predict(points[:w], sink)
		return time.Since(start)
	})
	rep.Batch = width
	var ev engineEval
	if width <= 1 {
		ev = engineEval{point: func(_, i int) (float64, error) {
			return a.Predict(&points[i]), nil
		}}
	} else {
		nw := opts.workerCount(len(points))
		bps := make([]*core.BatchPredictor, nw)
		for i := range bps {
			bps[i] = a.NewBatchPredictor(width)
		}
		ev = engineEval{width: width, batch: func(worker int, lats []stacks.Latencies, out []float64) error {
			bps[worker].Predict(lats, out)
			return nil
		}}
	}
	err := runPoints(rep, points, opts, salt, ev)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Crossover returns the design-point count beyond which method a (with
// setup cost) beats method b, or -1 if it never does within limit.
func Crossover(a, b *Report, limit int) int {
	for n := 1; n <= limit; n++ {
		if a.Total(n) < b.Total(n) {
			return n
		}
	}
	return -1
}

// BestUnder returns the results meeting a target cycle budget, the design
// points "meeting the design goal" of the paper's Figure 6 scenario.
func BestUnder(results []Result, cycleBudget float64) []Result {
	var out []Result
	for _, r := range results {
		if r.Cycles <= cycleBudget {
			out = append(out, r)
		}
	}
	return out
}
