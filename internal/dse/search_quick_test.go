package dse

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stacks"
)

// search_quick_test.go — randomized structural properties of the guided
// searches, checked over synthetic monotone cycle surfaces probed through
// SearchOptions.RoundEval (no engine in the loop, so testing/quick can run
// hundreds of spaces): probes never leave the declared axis ranges, probe
// counts obey the O(rounds · surviving boxes) bound instead of the grid
// size, Pareto archives are mutually non-dominated with valid witnesses,
// and every mode still equals the exhaustive answer.

// quickEvents is the axis pool random spaces draw from.
var quickEvents = []stacks.Event{stacks.L1D, stacks.L2D, stacks.MemD, stacks.FpAdd, stacks.FpMul, stacks.IntAlu}

// randomSurface builds a random materializable space (1–3 axes, 1–5 distinct
// values each, declared in shuffled order), a strictly monotone synthetic
// cycle surface over it, and a thread-safe RoundEval that records every
// probed latency assignment.
func randomSurface(rng *rand.Rand) (space *Space, base stacks.Latencies, eval func(context.Context, []stacks.Latencies) ([]float64, error), probed *[]stacks.Latencies, mu *sync.Mutex) {
	events := append([]stacks.Event(nil), quickEvents...)
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
	nAxes := 1 + rng.Intn(3)
	space = &Space{}
	for a := 0; a < nAxes; a++ {
		k := 1 + rng.Intn(5)
		vals := make([]float64, k)
		v := rng.Intn(4)
		for i := 0; i < k; i++ {
			vals[i] = float64(v)
			v += 1 + rng.Intn(3)
		}
		rng.Shuffle(k, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		space.Axes = append(space.Axes, Axis{Event: events[a], Values: vals})
	}
	for e := range base {
		base[e] = float64(rng.Intn(4))
	}
	// cycles = bias + Σ_e coeff_e · lat_e with coeff ≥ 0 (and > 0 on axes
	// half the time, so plateaus appear) is monotone non-decreasing in every
	// event — the same structural property the real engines have.
	var coeff stacks.Latencies
	for e := range coeff {
		if rng.Intn(2) == 0 {
			coeff[e] = float64(1 + rng.Intn(5))
		}
	}
	bias := float64(rng.Intn(100))
	probed = &[]stacks.Latencies{}
	mu = &sync.Mutex{}
	eval = func(_ context.Context, pts []stacks.Latencies) ([]float64, error) {
		mu.Lock()
		*probed = append(*probed, pts...)
		mu.Unlock()
		out := make([]float64, len(pts))
		for i, l := range pts {
			c := bias
			for e := range l {
				c += coeff[e] * l[e]
			}
			out[i] = c
		}
		return out, nil
	}
	return space, base, eval, probed, mu
}

// axisSets indexes each axis's allowed values for membership checks.
func axisSets(space *Space) map[stacks.Event]map[float64]bool {
	sets := make(map[stacks.Event]map[float64]bool, len(space.Axes))
	for _, ax := range space.Axes {
		m := make(map[float64]bool, len(ax.Values))
		for _, v := range ax.Values {
			m[v] = true
		}
		sets[ax.Event] = m
	}
	return sets
}

// TestSearchQuickProperties drives all three modes over random synthetic
// surfaces and checks, per run: (1) every probe stays inside the declared
// axis values and leaves off-axis events at the baseline; (2) the probe
// count is bounded by 2 · rounds · peak surviving boxes — the lazy-search
// complexity contract — and by the grid size; (3) a Pareto archive is
// mutually non-dominated and each witness's (cycles, cost) is genuine;
// (4) the answer equals the exhaustive scan's.
func TestSearchQuickProperties(t *testing.T) {
	check := func(seed int64, modePick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		space, base, eval, probed, mu := randomSurface(rng)
		plan, err := NewSearchPlan(space, &SearchSpec{Mode: SearchHalving})
		if err != nil {
			t.Fatal(err)
		}
		pts, err := plan.Enumerate(base)
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := eval(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		*probed = (*probed)[:0] // the reference scan above is not a probe
		mu.Unlock()
		const microOps = 1000
		var spec *SearchSpec
		switch modePick % 3 {
		case 0:
			spec = &SearchSpec{Mode: SearchHalving}
		case 1:
			spec = &SearchSpec{Mode: SearchPareto, Cost: []CostWeight{{Event: space.Axes[0].Event, Weight: 1 + rng.Float64()}}}
		default:
			budget := cycles[rng.Intn(len(cycles))] + 0.5
			spec = &SearchSpec{Mode: SearchTarget, TargetCPI: budget / microOps}
		}
		opts := SearchOptions{MicroOps: microOps, RoundEval: eval}
		if rng.Intn(2) == 0 {
			opts.Parallelism = 2
			opts.ChunkSize = 1
		}
		res, err := SearchWith(base, space, spec, opts)
		if err != nil {
			t.Fatal(err)
		}

		sets := axisSets(space)
		mu.Lock()
		for _, l := range *probed {
			for e := stacks.Event(0); e < stacks.NumEvents; e++ {
				if set, onAxis := sets[e]; onAxis {
					if !set[l[e]] {
						t.Fatalf("seed %d: probe assigned %s=%g, outside the declared axis values", seed, e, l[e])
					}
				} else if l[e] != base[e] {
					t.Fatalf("seed %d: probe moved off-axis event %s from %g to %g", seed, e, base[e], l[e])
				}
			}
		}
		nProbed := len(*probed)
		mu.Unlock()
		if nProbed != res.Probes {
			t.Fatalf("seed %d: RoundEval saw %d probes, result reports %d", seed, nProbed, res.Probes)
		}
		if bound := 2 * res.Rounds * res.PeakBoxes; res.Probes > bound {
			t.Fatalf("seed %d: %d probes exceed the 2·rounds·boxes bound %d", seed, res.Probes, bound)
		}
		if uint64(res.Probes) > res.GridPoints {
			t.Fatalf("seed %d: %d probes exceed the %d-point grid", seed, res.Probes, res.GridPoints)
		}

		if spec.Mode == SearchPareto {
			costPlan, err := NewSearchPlan(space, spec)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range res.Frontier {
				probe, err := eval(context.Background(), []stacks.Latencies{p.Lat})
				if err != nil {
					t.Fatal(err)
				}
				if probe[0] != p.Cycles || costPlan.Cost(p.Lat) != p.Cost {
					t.Fatalf("seed %d: frontier witness %d misreports (cycles, cost)", seed, i)
				}
				for j, q := range res.Frontier {
					if i != j && q.Cycles <= p.Cycles && q.Cost <= p.Cost {
						t.Fatalf("seed %d: frontier point %d dominated by %d", seed, i, j)
					}
				}
			}
		}

		refPlan, err := NewSearchPlan(space, spec)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refPlan.Exhaustive(cycles, microOps)
		if err != nil {
			t.Fatal(err)
		}
		if err := EqualAnswers(res, ref); err != nil {
			t.Fatalf("seed %d spec %q: search != exhaustive: %v", seed, spec, err)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchSublinearProbes pins the whole point of lazy search on a grid
// far too large to enjoy materializing: on a 6-axis × 8-value space
// (262 144 points) with a strictly monotone surface, halving converges in
// logarithmically many rounds with a probe count hundreds of times smaller
// than the grid, and target mode's iso-surface walk stays well under half
// the grid.
func TestSearchSublinearProbes(t *testing.T) {
	space := &Space{}
	events := []stacks.Event{stacks.L1D, stacks.L2D, stacks.MemD, stacks.FpAdd, stacks.FpMul, stacks.IntAlu}
	for _, e := range events {
		vals := make([]float64, 8)
		for i := range vals {
			vals[i] = float64(1 + 2*i)
		}
		space.Axes = append(space.Axes, Axis{Event: e, Values: vals})
	}
	var base stacks.Latencies
	eval := func(_ context.Context, pts []stacks.Latencies) ([]float64, error) {
		out := make([]float64, len(pts))
		for i, l := range pts {
			c := 50.0
			for k, e := range events {
				c += float64(k+1) * l[e]
			}
			out[i] = c
		}
		return out, nil
	}
	const microOps = 1000
	halve, err := SearchWith(base, space, &SearchSpec{Mode: SearchHalving}, SearchOptions{MicroOps: microOps, RoundEval: eval})
	if err != nil {
		t.Fatal(err)
	}
	if !halve.Converged {
		t.Fatal("halving did not converge")
	}
	if halve.GridPoints != 262144 {
		t.Fatalf("grid is %d points, want 262144", halve.GridPoints)
	}
	if halve.Probes > int(halve.GridPoints/100) {
		t.Fatalf("halving probed %d of %d points; lazy search is supposed to be sublinear", halve.Probes, halve.GridPoints)
	}
	// A mid-range cycle budget forces the expensive shape: boxes straddling
	// the feasibility iso-surface keep splitting until the cost bound prunes
	// them against the incumbent.
	minC, maxC := 50.0, 50.0
	for k := range events {
		minC += float64(k+1) * 1
		maxC += float64(k+1) * 15
	}
	budget := math.Floor((minC+maxC)/2) + 0.5
	target, err := SearchWith(base, space, &SearchSpec{Mode: SearchTarget, TargetCPI: budget / microOps}, SearchOptions{MicroOps: microOps, RoundEval: eval})
	if err != nil {
		t.Fatal(err)
	}
	if !target.Converged || !target.Feasible || target.Best == nil {
		t.Fatal("target search failed to converge on a feasible point")
	}
	if target.Best.Cycles > budget {
		t.Fatalf("target returned %g cycles over the %g budget", target.Best.Cycles, budget)
	}
	if target.Probes > int(target.GridPoints/2) {
		t.Fatalf("target probed %d of %d points", target.Probes, target.GridPoints)
	}
}
