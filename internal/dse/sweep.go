package dse

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ExploreOptions configures how a sweep engine walks the design-point list.
// The zero value is a serial sweep, identical to the engines' historical
// behaviour.
type ExploreOptions struct {
	// Parallelism is the number of sweep workers. Zero or one runs the
	// per-point loop serially. Results are written into a pre-sized slice by
	// design-point index, so output ordering is deterministic and identical
	// to the serial sweep regardless of the worker count.
	Parallelism int
	// ChunkSize is the number of consecutive design points one work unit
	// claims. Zero picks a size that gives every worker several chunks (for
	// load balance) while keeping claim traffic negligible.
	ChunkSize int
	// Setup is the one-time engine preparation cost — simulate, analyze,
	// build the graph — which the engine records in Report.Setup so that
	// Report.Total and Crossover need no hand-patching by callers.
	Setup time.Duration
	// Context, when non-nil, cancels the sweep between work units: every
	// worker (including the serial one) checks it before claiming its next
	// chunk and the sweep returns the context's error. Cancellation
	// granularity is therefore one chunk — callers wanting prompt
	// cancellation of slow per-point engines should pick a small ChunkSize.
	// A nil Context never cancels and keeps the serial fast path free of
	// per-chunk checks.
	Context context.Context
	// Checkpoint, when non-nil, makes the sweep crash-safe: every completed
	// chunk of design points is atomically persisted under Checkpoint.Dir,
	// and a sweep started over a directory holding chunks restores them —
	// skipping their points entirely — before evaluating the rest. The
	// resumed sweep's Results are identical to an uninterrupted run's; a
	// directory written by a different sweep (engine, inputs or point list)
	// is rejected with an error rather than mixed in. Nil keeps the engines'
	// historical zero-IO behavior.
	Checkpoint *Checkpoint
	// Tracer, when non-nil, records the sweep into span records: one sweep
	// root per exploration, one chunk span per claimed work unit (TID = the
	// worker index, Arg = the chunk's point count), one resume span per
	// restored checkpoint chunk. A nil Tracer adds nothing to the hot loop —
	// not even an allocation, which TestTracingDisabledChunkEvalAllocFree
	// pins down.
	Tracer *obs.Tracer
	// TraceParent is the span ID the sweep root attaches under, letting a
	// caller (the rpserved job runner) nest the whole sweep inside its own
	// trace. Zero roots the sweep at top level.
	TraceParent uint64
	// NeedFingerprint asks the sweep to compute and publish its identity
	// hash in Report.Fingerprint even without a checkpoint, so a shadow
	// auditor (internal/audit) can derive its deterministic point sample.
	// Checkpointed sweeps compute the fingerprint anyway and always
	// publish it.
	NeedFingerprint bool
	// BatchSize is the number of design points a batch-capable engine
	// (graph, rpstacks) evaluates per pass over its model — the lane count
	// of depgraph.BatchEvaluator / core.BatchPredictor. 1 forces the scalar
	// per-point path; 0, the default, picks a width by a small autotune over
	// candidate lane widths (see pickBatchWidth). Batching is an execution
	// detail, not an input: results, sweep fingerprints and checkpoint
	// chunks are bit-identical across every BatchSize, so a checkpoint
	// written at one width resumes cleanly at any other. The sim engine has
	// no batched form and ignores this field.
	BatchSize int
}

// workerCount returns the number of workers a sweep over n points will use.
func (o *ExploreOptions) workerCount(n int) int {
	w := o.Parallelism
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1 // n == 0 still needs one slot for per-worker state
	}
	return w
}

// chunkSize returns the points-per-claim granularity for a sweep over n
// points with w workers.
func (o *ExploreOptions) chunkSize(n, w int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	// Aim for ~8 chunks per worker so stragglers rebalance, with a floor of
	// one point.
	c := n / (w * 8)
	if c < 1 {
		c = 1
	}
	return c
}

// sweep partitions [0, n) into chunks of consecutive indices and runs eval
// over them on the configured worker count. eval(worker, lo, hi) must write
// its outputs by index; chunk-to-worker assignment is dynamic (atomic claim),
// which is safe precisely because output slots are disjoint. It returns the
// loop wall-clock, the per-worker timings, and the first error any worker
// hit — an eval failure or the configured Context's cancellation error —
// with the remaining chunks abandoned once an error is recorded.
func sweep(n int, opts ExploreOptions, eval func(worker, lo, hi int) error) (time.Duration, []WorkerTiming, error) {
	ctx := opts.Context
	workers := opts.workerCount(n)
	chunk := opts.chunkSize(n, workers)
	if tr := opts.Tracer; tr != nil {
		inner, parent := eval, opts.TraceParent
		eval = func(worker, lo, hi int) error {
			if hi == lo { // fully-resumed sweep: nothing evaluated, no span
				return inner(worker, lo, hi)
			}
			sp := tr.StartChild(parent, obs.CatDSE, obs.NameChunk)
			sp.SetTID(worker)
			sp.SetArg(obs.ArgPoints, int64(hi-lo))
			err := inner(worker, lo, hi)
			sp.End()
			return err
		}
	}
	start := time.Now()
	if workers == 1 {
		if ctx == nil {
			err := eval(0, 0, n)
			wall := time.Since(start)
			return wall, []WorkerTiming{{Worker: 0, Points: n, Busy: wall}}, err
		}
		// Cancellable serial sweep: walk the same chunks a one-worker pool
		// would, checking the context between them.
		t := WorkerTiming{Worker: 0}
		var err error
		for lo := 0; lo < n; lo += chunk {
			if err = ctx.Err(); err != nil {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err = eval(0, lo, hi); err != nil {
				break
			}
			t.Points += hi - lo
		}
		wall := time.Since(start)
		t.Busy = wall
		return wall, []WorkerTiming{t}, err
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		failed.Store(true)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	timings := make([]WorkerTiming, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			t := &timings[worker]
			t.Worker = worker
			busyStart := time.Now()
			for !failed.Load() {
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						fail(err)
						break
					}
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := eval(worker, lo, hi); err != nil {
					fail(err)
					break
				}
				t.Points += hi - lo
			}
			t.Busy = time.Since(busyStart)
		}(w)
	}
	wg.Wait()
	return time.Since(start), timings, firstErr
}
