package dse

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWorkerCountEdges pins the sweep sizing rules on the boundary shapes
// the queueing service relies on: empty point lists, more workers than
// points, and non-positive parallelism all degrade to sane pool sizes.
func TestWorkerCountEdges(t *testing.T) {
	cases := []struct {
		name        string
		parallelism int
		n           int
		want        int
	}{
		{"zero value is serial", 0, 100, 1},
		{"negative is serial", -3, 100, 1},
		{"one is serial", 1, 100, 1},
		{"clamped to point count", 8, 3, 3},
		{"empty sweep keeps one slot", 8, 0, 1},
		{"empty serial sweep keeps one slot", 0, 0, 1},
		{"exact fit", 4, 4, 4},
	}
	for _, c := range cases {
		o := ExploreOptions{Parallelism: c.parallelism}
		if got := o.workerCount(c.n); got != c.want {
			t.Errorf("%s: workerCount(%d) with Parallelism %d = %d, want %d",
				c.name, c.n, c.parallelism, got, c.want)
		}
	}
}

// TestChunkSizeEdges pins the claim-granularity rules: explicit sizes win
// even when larger than the sweep, and the automatic size keeps a floor of
// one point.
func TestChunkSizeEdges(t *testing.T) {
	cases := []struct {
		name  string
		chunk int
		n, w  int
		want  int
	}{
		{"explicit size wins", 7, 100, 4, 7},
		{"explicit larger than sweep kept", 1000, 10, 2, 1000},
		{"auto ~8 chunks per worker", 0, 640, 4, 20},
		{"auto floor of one", 0, 10, 4, 1},
		{"auto on empty sweep", 0, 0, 1, 1},
		{"auto serial", 0, 80, 1, 10},
	}
	for _, c := range cases {
		o := ExploreOptions{ChunkSize: c.chunk}
		if got := o.chunkSize(c.n, c.w); got != c.want {
			t.Errorf("%s: chunkSize(%d, %d) with ChunkSize %d = %d, want %d",
				c.name, c.n, c.w, c.chunk, got, c.want)
		}
	}
}

// TestSweepCancelledMidRun cancels a long sweep shortly after it starts and
// requires a prompt return carrying the context's error: the full sweep
// would run for minutes, so returning within seconds proves workers abandon
// the point list at the next chunk boundary rather than draining it.
func TestSweepCancelledMidRun(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 1 << 20 // at 100µs per chunk the full sweep is ~100s/worker
		opts := ExploreOptions{Parallelism: parallelism, ChunkSize: 1, Context: ctx}
		eval := func(_, _, _ int) error {
			time.Sleep(100 * time.Microsecond)
			return nil
		}
		time.AfterFunc(20*time.Millisecond, cancel)
		start := time.Now()
		_, timings, err := sweep(n, opts, eval)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: sweep returned %v, want context.Canceled", parallelism, err)
		}
		if elapsed > 10*time.Second {
			t.Fatalf("parallelism %d: cancelled sweep took %v to return", parallelism, elapsed)
		}
		done := 0
		for _, wt := range timings {
			done += wt.Points
		}
		if done >= n {
			t.Fatalf("parallelism %d: sweep completed all %d points despite cancellation", parallelism, n)
		}
	}
}

// TestExplorePropagatesContextError checks the engine wrappers surface a
// pre-cancelled context as an error instead of a silent full sweep.
func TestExplorePropagatesContextError(t *testing.T) {
	cfg, g, a, pts := prepareWorkload(t, "456.hmmer", 21, 800, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{1, 2} {
		opts := ExploreOptions{Parallelism: parallelism, ChunkSize: 1, Context: ctx}
		if _, err := ExploreGraphOpts(g, pts, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("graph (parallelism %d): err = %v, want context.Canceled", parallelism, err)
		}
		if _, err := ExploreRpStacksOpts(a, pts, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("rpstacks (parallelism %d): err = %v, want context.Canceled", parallelism, err)
		}
		if _, err := ExploreSimOpts(cfg, nil, pts, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("sim (parallelism %d): err = %v, want context.Canceled", parallelism, err)
		}
	}
	// An uncancelled context leaves the sweep untouched: same results as the
	// serial reference.
	live := ExploreOptions{Parallelism: 2, Context: context.Background()}
	withCtx, err := ExploreGraphOpts(g, pts, live)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := ExploreGraphOpts(g, pts, ExploreOptions{})
	sameResults(t, "ctx-vs-serial", ref.Results, withCtx.Results)
}
