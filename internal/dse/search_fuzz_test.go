package dse

import (
	"reflect"
	"strings"
	"testing"
)

// search_fuzz_test.go — robustness of the search-spec decoder shared by the
// rpexplore -search flag and the service's "search" job-request field. The
// fuzz invariant: whatever ParseSearchSpec accepts must already be
// normalized and validated, and must round-trip exactly through its own
// canonical String rendering.

func FuzzParseSearchSpec(f *testing.F) {
	for _, seed := range []string{
		"halving",
		"pareto",
		"target;cpi=0.55",
		"pareto;rounds=12",
		"target;cpi=0.55;cost=L1D:2,FpAdd:1.5",
		"halving;cost=MemD:0.25",
		"halving;rounds=3;cost=L1D:1,L2D:2,MemD:4",
		"target;cpi=1e-3",
		"",
		";",
		"halving;cpi=1",
		"target",
		"target;cpi=-1",
		"target;cpi=NaN",
		"halving;cost=L1D:0",
		"halving;cost=L1D:1,L1D:2",
		"halving;cost=Base:1",
		"halving;cost=NoSuchEvent:1",
		"halving;rounds=-4",
		"halving;bogus=1",
		"halving;cost=L1D",
		"halving;cost=L1D:2;cost=L2D:3",
		"halving;rounds=999999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSearchSpec(s)
		if err != nil {
			if spec != nil {
				t.Fatalf("%q: error %v returned alongside a spec", s, err)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%q: accepted spec fails its own validation: %v", s, err)
		}
		back, err := ParseSearchSpec(spec.String())
		if err != nil {
			t.Fatalf("%q: canonical form %q does not re-parse: %v", s, spec.String(), err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("%q: round-trip through %q changed the spec: %+v vs %+v", s, spec.String(), spec, back)
		}
	})
}

// TestParseSearchSpecRejects pins the decoder's error surface: each entry
// must be rejected with a message containing the fragment.
func TestParseSearchSpecRejects(t *testing.T) {
	cases := []struct{ in, frag string }{
		{"", "unknown search mode"},
		{"gradient", "unknown search mode"},
		{"halving;cpi=0.5", "only meaningful"},
		{"target;cpi=-1", "non-negative"},
		{"target;cpi=Inf", "non-negative"},
		{"halving;rounds=-2", "bad rounds"},
		{"halving;rounds=x", "bad rounds"},
		{"halving;oops=1", "unknown key"},
		{"halving;oops", "key=value"},
		{"halving;cost=L1D", "Event:weight"},
		{"halving;cost=Bogus:1", "unknown event"},
		{"halving;cost=L1D:zero", "bad weight"},
		{"halving;cost=L1D:0", "positive"},
		{"halving;cost=L1D:-3", "positive"},
		{"halving;cost=L1D:1,L1D:2", "duplicate cost weight"},
		{"halving;cost=L1D:1;cost=L2D:2", "duplicate cost key"},
		{"halving;cost=Base:1", "not a latency-domain knob"},
	}
	for _, c := range cases {
		if _, err := ParseSearchSpec(c.in); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseSearchSpec(%q) = %v, want error containing %q", c.in, err, c.frag)
		}
	}
}

// TestParseSearchSpecAccepts pins the decoded structure of representative
// valid forms, including whitespace tolerance and cost normalization.
func TestParseSearchSpecAccepts(t *testing.T) {
	spec, err := ParseSearchSpec(" target ; cpi = 0.55 ; rounds = 7 ; cost = FpAdd : 1.5 , L1D : 2 ")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != SearchTarget || spec.TargetCPI != 0.55 || spec.MaxRounds != 7 {
		t.Fatalf("decoded %+v", spec)
	}
	if len(spec.Cost) != 2 || spec.Cost[0].Event.String() != "L1D" || spec.Cost[1].Event.String() != "FpAdd" {
		t.Fatalf("cost weights not normalized by event order: %+v", spec.Cost)
	}
	if got := spec.String(); got != "target;cpi=0.55;rounds=7;cost=L1D:2,FpAdd:1.5" {
		t.Fatalf("canonical form %q", got)
	}
}
