package dse

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stacks"
)

// searchspec.go — the guided-search request. A SearchSpec names which search
// mode walks a Space and carries the mode's knobs. It travels in two forms
// that share one decoder: cmd/rpexplore's -search flag and the exploration
// service's "search" job-request field both use the compact textual form
// ParseSearchSpec accepts, so the CLI and the service cannot drift apart.

// Search mode names. All three probe design points lazily and — on spaces
// with per-axis monotone cycle counts, which every latency-domain engine in
// this repo has — return exactly the answer an exhaustive sweep would.
const (
	// SearchHalving successively halves the surviving axis ranges toward
	// the argmin-cycles design point (ties broken toward the cheapest, then
	// the lowest canonical index).
	SearchHalving = "halving"
	// SearchPareto walks out the exact Pareto frontier of (cycles, cost).
	SearchPareto = "pareto"
	// SearchTarget seeks the cheapest design point whose cycle count meets
	// a CPI budget ("reach CPI X cheapest").
	SearchTarget = "target"
)

// CostWeight scales one axis's contribution to the hardware cost model.
type CostWeight struct {
	Event  stacks.Event
	Weight float64
}

// SearchSpec selects and parameterizes a guided search over a Space.
type SearchSpec struct {
	// Mode is one of SearchHalving, SearchPareto, SearchTarget.
	Mode string
	// TargetCPI is the cycles-per-µop budget of SearchTarget: the search
	// returns the cheapest point predicted at or under it. Zero (and only
	// zero) for the other modes.
	TargetCPI float64
	// MaxRounds caps the probe rounds; zero runs until the search has
	// provably converged on the exact answer. A capped search that stops
	// early reports Converged == false on its result.
	MaxRounds int
	// Cost overrides per-axis cost-model weights (default 1 per axis),
	// sorted by event and with no duplicates. The cost of a design point is
	// the weighted sum over axes of (axis max latency − point latency):
	// zero for the all-slowest corner, growing as latencies are bought
	// down, mirroring the paper's Table II intuition that faster structures
	// cost more hardware.
	Cost []CostWeight
}

// ParseSearchSpec decodes the compact textual search form shared by
// cmd/rpexplore's -search flag and the service's "search" job field:
//
//	mode[;key=value]...
//
// e.g. "halving", "pareto;rounds=40", "target;cpi=0.55;cost=L1D:2,FpAdd:1.5".
// Keys: cpi (target-mode CPI budget), rounds (max probe rounds), cost
// (Event:weight list). The decoded spec is normalized (cost weights sorted
// by event) and validated; ParseSearchSpec(spec.String()) round-trips.
func ParseSearchSpec(s string) (*SearchSpec, error) {
	fields := strings.Split(s, ";")
	spec := &SearchSpec{Mode: strings.TrimSpace(fields[0])}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("dse: search spec %q: want key=value, got %q", s, f)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "cpi":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("dse: search spec %q: bad cpi %q", s, val)
			}
			spec.TargetCPI = x
		case "rounds":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dse: search spec %q: bad rounds %q", s, val)
			}
			spec.MaxRounds = n
		case "cost":
			if spec.Cost != nil {
				return nil, fmt.Errorf("dse: search spec %q: duplicate cost key", s)
			}
			for _, entry := range strings.Split(val, ",") {
				name, w, ok := strings.Cut(entry, ":")
				if !ok {
					return nil, fmt.Errorf("dse: search spec %q: cost entry %q: want Event:weight", s, entry)
				}
				ev, err := stacks.ParseEvent(strings.TrimSpace(name))
				if err != nil {
					return nil, fmt.Errorf("dse: search spec %q: %w", s, err)
				}
				x, err := strconv.ParseFloat(strings.TrimSpace(w), 64)
				if err != nil {
					return nil, fmt.Errorf("dse: search spec %q: bad weight %q", s, w)
				}
				spec.Cost = append(spec.Cost, CostWeight{Event: ev, Weight: x})
			}
		default:
			return nil, fmt.Errorf("dse: search spec %q: unknown key %q", s, key)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// String renders the spec back into the canonical compact form
// ParseSearchSpec accepts (defaults omitted).
func (s *SearchSpec) String() string {
	var b strings.Builder
	b.WriteString(s.Mode)
	if s.TargetCPI != 0 {
		fmt.Fprintf(&b, ";cpi=%g", s.TargetCPI)
	}
	if s.MaxRounds != 0 {
		fmt.Fprintf(&b, ";rounds=%d", s.MaxRounds)
	}
	if len(s.Cost) > 0 {
		b.WriteString(";cost=")
		for i, c := range s.Cost {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%g", c.Event, c.Weight)
		}
	}
	return b.String()
}

// Validate normalizes the spec (cost weights sorted by event) and checks it
// is internally consistent. Whether the cost events name real axes is
// NewSearchPlan's job — it needs the Space.
func (s *SearchSpec) Validate() error {
	switch s.Mode {
	case SearchHalving, SearchPareto, SearchTarget:
	default:
		return fmt.Errorf("dse: unknown search mode %q (want %s, %s or %s)", s.Mode, SearchHalving, SearchPareto, SearchTarget)
	}
	if math.IsNaN(s.TargetCPI) || math.IsInf(s.TargetCPI, 0) || s.TargetCPI < 0 {
		return fmt.Errorf("dse: search cpi %g is not a finite non-negative budget", s.TargetCPI)
	}
	if s.TargetCPI > 0 && s.Mode != SearchTarget {
		return fmt.Errorf("dse: search cpi is only meaningful for mode %s", SearchTarget)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("dse: search rounds %d is negative", s.MaxRounds)
	}
	sort.SliceStable(s.Cost, func(i, j int) bool { return s.Cost[i].Event < s.Cost[j].Event })
	for i, c := range s.Cost {
		if !c.Event.Optimizable() {
			return fmt.Errorf("dse: cost weight for %s: not a latency-domain knob", c.Event)
		}
		if i > 0 && s.Cost[i-1].Event == c.Event {
			return fmt.Errorf("dse: duplicate cost weight for %s", c.Event)
		}
		if math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) || c.Weight <= 0 {
			return fmt.Errorf("dse: cost weight for %s must be finite and positive, got %g", c.Event, c.Weight)
		}
	}
	return nil
}
