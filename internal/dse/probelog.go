package dse

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/stacks"
)

// probelog.go — crash-safe search resume. A probe-logged search persists
// every completed probe round as one chunk file in the checkpoint layer's
// exact on-disk format (magic, version, fingerprint, (index, cycles) pairs,
// SHA-256 trailer; atomic temp+sync+rename publication), keyed by canonical
// design-point index instead of sweep position. A killed search loses at
// most the round in flight: because the search driver is deterministic in
// the probed cycle values, a restarted run replays its decision sequence,
// satisfies already-logged rounds from the restored cache without touching
// the engine, and re-evaluates only from the lost round on — returning a
// result identical to an uninterrupted run's.
//
// A corrupt chunk is deleted and its probes re-evaluated; a healthy chunk
// carrying a different search fingerprint (engine inputs, space, spec or
// baseline changed) is a hard error, mirroring the sweep checkpoint.

// probePrefix names probe-log chunk files; distinct from the sweep
// checkpoint's "chunk-" so the two layers can never ingest each other's
// files by accident.
const probePrefix = "probe-"

// searchFingerprint binds a probe log to everything that determines which
// probes a search makes and what they return: the engine and its prepared
// input (streamed by salt), the canonical search plan (axes, sorted values,
// cost model, full spec) and the baseline latencies off-axis events keep.
func searchFingerprint(method string, salt func(io.Writer) error, plan *SearchPlan, base stacks.Latencies) ([]byte, error) {
	h := sha256.New()
	fmt.Fprintf(h, "search|%s|%s|", method, plan.spec.String())
	if salt != nil {
		if err := salt(h); err != nil {
			return nil, fmt.Errorf("dse: fingerprinting engine input: %w", err)
		}
	}
	var b [8]byte
	for _, a := range plan.axes {
		fmt.Fprintf(h, "|%d:%d:", a.event, len(a.vals))
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(a.weight))
		h.Write(b[:])
		for _, v := range a.vals {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	h.Write([]byte("|base|"))
	for _, v := range base {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum(nil), nil
}

// saveProbeChunk atomically publishes one completed probe round. Rounds
// probe disjoint index sets (a cached probe is never re-evaluated), so the
// first index names the file uniquely across rounds and resumes.
func saveProbeChunk(dir string, fp []byte, idxs []uint64, cycles []float64) error {
	ints := make([]int, len(idxs))
	for k, idx := range idxs {
		ints[k] = int(idx) // NewSearchPlan bounds indices well under MaxInt
	}
	raw := encodeChunk([sha256.Size]byte(fp), ints, cycles)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("dse: creating probe-log temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("dse: writing probe-log chunk: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%012d", probePrefix, idxs[0]))
	if err := os.Rename(tmpName, final); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("dse: publishing probe-log chunk: %w", err)
	}
	return nil
}

// loadProbeLog restores every readable probe chunk in dir (created if
// absent) into cache and returns the restored probe count. Corrupt or
// structurally impossible chunks are deleted (their probes re-evaluated); a
// healthy chunk of a different search is a hard error. Each restored chunk
// is recorded as one resume span under parent; tr may be nil.
func loadProbeLog(dir string, fp []byte, grid uint64, cache map[uint64]float64, tr *obs.Tracer, parent uint64) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("dse: creating probe-log dir: %w", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("dse: reading probe-log dir: %w", err)
	}
	restored := 0
	for _, de := range des {
		if !strings.HasPrefix(de.Name(), probePrefix) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			_ = os.Remove(path)
			continue
		}
		gotFP, entries, err := decodeChunk(raw)
		if err != nil {
			_ = os.Remove(path)
			continue
		}
		if gotFP != [sha256.Size]byte(fp) {
			return 0, fmt.Errorf("dse: probe log %s belongs to a different search (engine inputs, space, spec or baseline changed)", path)
		}
		healthy := true
		for _, e := range entries {
			if e.idx < 0 || uint64(e.idx) >= grid {
				healthy = false
				break
			}
			if _, dup := cache[uint64(e.idx)]; dup {
				healthy = false
				break
			}
		}
		if !healthy {
			// Out-of-range or duplicated indices are impossible for files
			// this search wrote; treat the file as damage and re-probe.
			_ = os.Remove(path)
			continue
		}
		for _, e := range entries {
			cache[uint64(e.idx)] = e.cycles
			restored++
		}
		sp := tr.StartChild(parent, obs.CatDSE, obs.NameResume)
		sp.SetArg(obs.ArgPoints, int64(len(entries)))
		sp.End()
	}
	return restored, nil
}

// removeProbeLog best-effort deletes every probe chunk in dir, then the
// directory if that left it empty — the Checkpoint.RemoveOnSuccess cleanup
// of a completed search.
func removeProbeLog(dir string) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), probePrefix) {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
	_ = os.Remove(dir) // fails (and is kept) when anything else lives there
}
