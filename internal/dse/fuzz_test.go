package dse

import (
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// fuzzSub is the shared substrate of FuzzBatchEval: one tiny simulated
// workload, its dependence graph and RpStacks analysis, built once — the
// fuzzer varies the batch geometry and the design points, not the model.
var fuzzSub struct {
	once sync.Once
	g    *depgraph.Graph
	a    *core.Analysis
	base stacks.Latencies
	err  error
}

func fuzzSubstrate() (*depgraph.Graph, *core.Analysis, stacks.Latencies, error) {
	fuzzSub.once.Do(func() {
		cfg := config.Baseline()
		prof, ok := workload.ByName("429.mcf")
		if !ok {
			panic("unknown workload 429.mcf")
		}
		uops := workload.Stream(prof, 17, 400)
		s, err := cpu.New(cfg)
		if err != nil {
			fuzzSub.err = err
			return
		}
		tr, err := s.Run(uops)
		if err != nil {
			fuzzSub.err = err
			return
		}
		if fuzzSub.g, err = depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records)); err != nil {
			fuzzSub.err = err
			return
		}
		if fuzzSub.a, err = core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions()); err != nil {
			fuzzSub.err = err
			return
		}
		fuzzSub.base = cfg.Lat
	})
	return fuzzSub.g, fuzzSub.a, fuzzSub.base, fuzzSub.err
}

// FuzzBatchEval fuzzes the batch-vs-scalar equivalence over arbitrary batch
// geometry and latency bytes: the lane width, the point count (so every
// ragged and oversized combination appears) and the raw latency scales all
// come from the fuzzer, and both K-wide evaluators must reproduce their
// scalar counterparts exactly — int64-identical longest paths,
// float64-identical predictions — on every point.
func FuzzBatchEval(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{})
	f.Add(uint8(8), uint8(3), []byte{0x10, 0x80, 0xff, 0x03})
	f.Add(uint8(3), uint8(17), []byte("\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09ragged batches"))

	f.Fuzz(func(t *testing.T, kb, nb uint8, latBytes []byte) {
		g, a, base, err := fuzzSubstrate()
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + int(kb)%32
		npts := 1 + int(nb)%24
		pts := make([]stacks.Latencies, npts)
		bi := 0
		nextByte := func() byte {
			if len(latBytes) == 0 {
				return 0
			}
			b := latBytes[bi%len(latBytes)]
			bi++
			return b
		}
		for i := range pts {
			l := base
			for e := stacks.Event(1); e < stacks.NumEvents; e++ {
				// Scales in [0.25, 2.8): enough spread to move longest paths
				// and segment winners around without leaving the domain.
				l = l.Scale(e, 0.25+float64(nextByte())/100)
			}
			pts[i] = l
		}

		ev := g.NewEvaluator()
		be := g.NewBatchEvaluator(k)
		bp := a.NewBatchPredictor(k)
		paths := make([]int64, k)
		cycles := make([]float64, k)
		for lo := 0; lo < npts; lo += k {
			hi := lo + k
			if hi > npts {
				hi = npts
			}
			be.LongestPaths(pts[lo:hi], paths[:hi-lo])
			bp.Predict(pts[lo:hi], cycles[:hi-lo])
			for i := lo; i < hi; i++ {
				if want := ev.LongestPath(&pts[i]); paths[i-lo] != want {
					t.Fatalf("k=%d npts=%d point %d: batch longest path %d != scalar %d",
						k, npts, i, paths[i-lo], want)
				}
				if want := a.Predict(&pts[i]); cycles[i-lo] != want {
					t.Fatalf("k=%d npts=%d point %d: batch prediction %v != scalar %v",
						k, npts, i, cycles[i-lo], want)
				}
			}
		}
	})
}
