package dse

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/stacks"
)

// fleet.go — the exported face of the checkpoint identity and chunk
// machinery, for internal/fleet. A distributed sweep reuses the exact
// fingerprint salts and chunk encoding the crash-safe checkpoint uses, so a
// worker process can prove it rebuilt the coordinator's engine inputs
// bit-identically (fingerprint equality) and a chunk result blob published
// into a shared store is byte-compatible with a checkpoint chunk file.

// simSalt streams the simulator engine's identity: its output is determined
// by the structural config and the µop stream (per-point latencies come from
// the point list the fingerprint already covers).
func simSalt(cfg *config.Config, uops []isa.MicroOp) func(io.Writer) error {
	return func(w io.Writer) error {
		cj, err := json.Marshal(cfg)
		if err != nil {
			return err
		}
		if _, err := w.Write(cj); err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%v", uops)
		return err
	}
}

// SweepFingerprintGraph returns the identity hash ExploreGraphOpts computes
// for a checkpointed sweep of the graph engine over points: SHA-256 over the
// method name, the graph's fingerprint stream and the full point list.
func SweepFingerprintGraph(g *depgraph.Graph, points []stacks.Latencies) ([]byte, error) {
	fp, err := sweepFingerprint("graph", g.WriteFingerprint, points)
	if err != nil {
		return nil, err
	}
	return fp[:], nil
}

// SweepFingerprintRpStacks returns the identity hash ExploreRpStacksOpts
// computes for a checkpointed sweep of the RpStacks engine over points.
func SweepFingerprintRpStacks(a *core.Analysis, points []stacks.Latencies) ([]byte, error) {
	fp, err := sweepFingerprint("rpstacks", func(w io.Writer) error { return core.WriteAnalysis(w, a) }, points)
	if err != nil {
		return nil, err
	}
	return fp[:], nil
}

// SweepFingerprintSim returns the identity hash ExploreSimOpts computes for
// a checkpointed sweep of the re-simulation engine over points.
func SweepFingerprintSim(cfg *config.Config, uops []isa.MicroOp, points []stacks.Latencies) ([]byte, error) {
	fp, err := sweepFingerprint("simulator", simSalt(cfg, uops), points)
	if err != nil {
		return nil, err
	}
	return fp[:], nil
}

// EncodeChunk renders one completed chunk of sweep results in the checkpoint
// chunk format — magic, version, fingerprint, count, (index, cycles) pairs,
// trailing SHA-256 — binding the results to the sweep identity fingerprint.
// idxs and cycles are aligned (cycles[k] belongs to point idxs[k]) and must
// be non-empty; fingerprint must be a full SHA-256 as the SweepFingerprint*
// helpers return.
func EncodeChunk(fingerprint []byte, idxs []int, cycles []float64) ([]byte, error) {
	if len(fingerprint) != sha256.Size {
		return nil, fmt.Errorf("dse: chunk fingerprint must be %d bytes, got %d", sha256.Size, len(fingerprint))
	}
	if len(idxs) == 0 || len(idxs) != len(cycles) {
		return nil, fmt.Errorf("dse: chunk wants aligned non-empty indices and cycles, got %d and %d", len(idxs), len(cycles))
	}
	return encodeChunk([sha256.Size]byte(fingerprint), idxs, cycles), nil
}

// DecodeChunk parses a chunk blob and verifies it belongs to the sweep named
// by fingerprint. A damaged blob (truncation, checksum mismatch) and a
// healthy blob of a different sweep are both errors — the fleet layer never
// resumes across them, it re-evaluates the chunk instead.
func DecodeChunk(fingerprint, raw []byte) (idxs []int, cycles []float64, err error) {
	if len(fingerprint) != sha256.Size {
		return nil, nil, fmt.Errorf("dse: chunk fingerprint must be %d bytes, got %d", sha256.Size, len(fingerprint))
	}
	fp, entries, err := decodeChunk(raw)
	if err != nil {
		return nil, nil, err
	}
	if fp != [sha256.Size]byte(fingerprint) {
		return nil, nil, fmt.Errorf("dse: chunk belongs to a different sweep")
	}
	idxs = make([]int, len(entries))
	cycles = make([]float64, len(entries))
	for k, e := range entries {
		idxs[k] = e.idx
		cycles[k] = e.cycles
	}
	return idxs, cycles, nil
}
