package dse

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClock ticks one millisecond per reading, making span timestamps (and
// therefore the Chrome export) byte-stable.
func fakeClock() func() time.Duration {
	var n int64
	return func() time.Duration {
		n++
		return time.Duration(n) * time.Millisecond
	}
}

// TestChromeTraceGolden pins the exporter's byte output for a deterministic
// two-chunk sweep: serial chunked path (one worker, chunk size 2, 4 points)
// under an injected clock, so span IDs, nesting and timestamps never move.
func TestChromeTraceGolden(t *testing.T) {
	_, _, a, pts := prepareWorkload(t, "429.mcf", 11, 400, 4)
	tr := obs.NewTracer(64, obs.WithClock(fakeClock()))
	_, err := ExploreRpStacksOpts(a, pts, ExploreOptions{
		Context:   context.Background(),
		ChunkSize: 2,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace drifted from golden (run with -update if intended):\n%s", buf.String())
	}
}

// TestTraceCoversSweepWall is the acceptance check for the exporter wiring:
// a parallel checkpointed sweep's trace must account for at least 95% of
// Report.Wall. The sweep root wraps the whole per-point loop (checkpoint
// restore included), so its duration can only exceed Wall; the chunk spans
// beneath it must jointly cover every evaluated point and the resume spans
// every restored one.
func TestTraceCoversSweepWall(t *testing.T) {
	_, g, _, pts := prepareWorkload(t, "429.mcf", 7, 600, 40)
	dir := t.TempDir()

	// First pass: evaluate half the points, then abandon the rest, leaving
	// published chunks behind for the traced run to restore.
	half := pts[:20]
	rep1 := &Report{Method: "graph", Results: make([]Result, len(half))}
	ev := g.NewEvaluator()
	err := runPoints(rep1, half, ExploreOptions{Checkpoint: &Checkpoint{Dir: dir}, ChunkSize: 5},
		g.WriteFingerprint, engineEval{point: func(_, i int) (float64, error) { return float64(ev.LongestPath(&half[i])), nil }})
	if err != nil {
		t.Fatal(err)
	}
	// The full point list has a different fingerprint than the half sweep,
	// so re-fingerprint trickery is not what we test here: resume the same
	// half-list sweep, then run the full list fresh with parallel workers.
	tr := obs.NewTracer(4096)
	rep2 := &Report{Method: "graph", Results: make([]Result, len(half))}
	err = runPoints(rep2, half, ExploreOptions{Checkpoint: &Checkpoint{Dir: dir}, ChunkSize: 5, Parallelism: 4, Tracer: tr},
		g.WriteFingerprint, engineEval{point: func(_, i int) (float64, error) { return float64(ev.LongestPath(&half[i])), nil }})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != len(half) {
		t.Fatalf("resumed %d of %d points; test wants a fully restorable checkpoint", rep2.Resumed, len(half))
	}

	tr2 := obs.NewTracer(4096)
	rep3, err := ExploreGraphOpts(g, pts, ExploreOptions{Parallelism: 4, ChunkSize: 4, Checkpoint: &Checkpoint{Dir: filepath.Join(dir, "full")}, Tracer: tr2})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		recs    []obs.Record
		wall    time.Duration
		points  int
		resumed int
	}{
		{"resumed sweep", tr.Snapshot(), rep2.Wall, len(half), rep2.Resumed},
		{"fresh parallel sweep", tr2.Snapshot(), rep3.Wall, len(pts), 0},
	} {
		var root *obs.Record
		evaluated, restored := int64(0), int64(0)
		for i := range tc.recs {
			switch tc.recs[i].Name {
			case obs.NameSweep:
				root = &tc.recs[i]
			case obs.NameChunk:
				evaluated += tc.recs[i].Arg
			case obs.NameResume:
				restored += tc.recs[i].Arg
			}
		}
		if root == nil {
			t.Fatalf("%s: no sweep root span recorded", tc.name)
		}
		if tc.wall > 0 && float64(root.Dur) < 0.95*float64(tc.wall) {
			t.Errorf("%s: sweep span %v covers <95%% of Report.Wall %v", tc.name, root.Dur, tc.wall)
		}
		if int(evaluated) != tc.points-tc.resumed {
			t.Errorf("%s: chunk spans cover %d points, want %d", tc.name, evaluated, tc.points-tc.resumed)
		}
		if int(restored) != tc.resumed {
			t.Errorf("%s: resume spans cover %d points, want %d", tc.name, restored, tc.resumed)
		}
	}
}

// TestTracingDisabledChunkEvalAllocFree proves the acceptance criterion that
// a nil Tracer adds zero allocations to the chunk-evaluate hot loop: the
// exact span cycle sweep() wraps around eval, surrounding a real depgraph
// longest-path evaluation.
func TestTracingDisabledChunkEvalAllocFree(t *testing.T) {
	_, g, _, pts := prepareWorkload(t, "429.mcf", 3, 300, 1)
	ev := g.NewEvaluator()
	var tr *obs.Tracer
	if n := testing.AllocsPerRun(100, func() {
		sp := tr.StartChild(0, obs.CatDSE, obs.NameChunk)
		sp.SetTID(0)
		sp.SetArg(obs.ArgPoints, 1)
		_ = ev.LongestPath(&pts[0])
		sp.End()
	}); n != 0 {
		t.Errorf("disabled tracer adds %.1f allocs/run to the chunk-evaluate path, want 0", n)
	}
}

// TestFoldedExportFromSweep sanity-checks the second exporter over a real
// sweep: one root path, one chunk path, totals equal to the root duration.
func TestFoldedExportFromSweep(t *testing.T) {
	_, _, a, pts := prepareWorkload(t, "429.mcf", 5, 300, 6)
	tr := obs.NewTracer(64, obs.WithClock(fakeClock()))
	if _, err := ExploreRpStacksOpts(a, pts, ExploreOptions{Context: context.Background(), ChunkSize: 3, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteFolded(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Tick sequence: root start=1, chunks span 2..5, root end=6 → root dur
	// 5ms minus 2ms of children = 3ms self.
	want := "dse:sweep 3000\ndse:sweep;dse:chunk 2000\n"
	if got := buf.String(); got != want {
		t.Errorf("folded export:\n%s\nwant:\n%s", got, want)
	}
}
