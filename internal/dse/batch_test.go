package dse

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestBatchedSweepsMatchScalar is the sweep-level batch-vs-scalar
// differential: for both batch-capable engines, every explicit lane width —
// one, odd widths forcing ragged final batches inside chunks, the autotuner
// candidates, a width wider than the point list — crossed with serial,
// parallel and tiny-chunk shapes must reproduce the forced-scalar sweep's
// Results bit for bit. Run under -race it also proves per-worker batch
// scratches do not race.
func TestBatchedSweepsMatchScalar(t *testing.T) {
	_, g, a, pts := prepareWorkload(t, "429.mcf", 11, 4000, 30)

	grScalar, _ := ExploreGraphOpts(g, pts, ExploreOptions{BatchSize: 1})
	rpScalar, _ := ExploreRpStacksOpts(a, pts, ExploreOptions{BatchSize: 1})
	if grScalar.Batch != 1 || rpScalar.Batch != 1 {
		t.Fatalf("BatchSize 1 resolved to widths %d/%d, want 1/1", grScalar.Batch, rpScalar.Batch)
	}

	shapes := []ExploreOptions{
		{},
		{Parallelism: 4, ChunkSize: 5},
		{Parallelism: 3, ChunkSize: 1},
		{Parallelism: 8},
	}
	for _, k := range []int{1, 2, 3, 7, 8, 64, len(pts)} {
		wantWidth := k
		if wantWidth > len(pts) {
			wantWidth = len(pts) // explicit widths clamp to the point count
		}
		for si, shape := range shapes {
			shape.BatchSize = k
			gr, err := ExploreGraphOpts(g, pts, shape)
			if err != nil {
				t.Fatal(err)
			}
			if gr.Batch != wantWidth {
				t.Fatalf("graph k=%d shape %d: Report.Batch = %d, want %d", k, si, gr.Batch, wantWidth)
			}
			sameResults(t, "graph batched", grScalar.Results, gr.Results)
			rp, err := ExploreRpStacksOpts(a, pts, shape)
			if err != nil {
				t.Fatal(err)
			}
			if rp.Batch != wantWidth {
				t.Fatalf("rpstacks k=%d shape %d: Report.Batch = %d, want %d", k, si, rp.Batch, wantWidth)
			}
			sameResults(t, "rpstacks batched", rpScalar.Results, rp.Results)
		}
	}

	// The default (autotuned) width on a sweep below the probe threshold is
	// the fixed default, and its results still match.
	grAuto, _ := ExploreGraphOpts(g, pts, ExploreOptions{})
	if grAuto.Batch != defaultBatchWidth {
		t.Fatalf("autotuned small sweep resolved width %d, want default %d", grAuto.Batch, defaultBatchWidth)
	}
	sameResults(t, "graph autotuned", grScalar.Results, grAuto.Results)
}

// TestPickBatchWidth covers the autotuner's resolution rules directly:
// explicit widths clamp to the point count and bypass both the probe and the
// memory cap; small sweeps take the (capped) default without probing; large
// sweeps probe only candidates within the point count and the cap and keep
// the best per-point time.
func TestPickBatchWidth(t *testing.T) {
	noProbe := func(int) time.Duration { t.Fatal("probe called"); return 0 }
	if w := pickBatchWidth(5, 100, 0, noProbe); w != 5 {
		t.Errorf("explicit width: got %d, want 5", w)
	}
	if w := pickBatchWidth(64, 10, 0, noProbe); w != 10 {
		t.Errorf("explicit width beyond point count: got %d, want 10", w)
	}
	if w := pickBatchWidth(64, 10, 2, noProbe); w != 10 {
		t.Errorf("explicit width must ignore the memory cap: got %d, want 10", w)
	}
	if w := pickBatchWidth(0, 0, 0, noProbe); w != 1 {
		t.Errorf("empty sweep: got %d, want 1", w)
	}
	if w := pickBatchWidth(0, 100, 0, noProbe); w != defaultBatchWidth {
		t.Errorf("small sweep default: got %d, want %d", w, defaultBatchWidth)
	}
	if w := pickBatchWidth(0, 100, 2, noProbe); w != 2 {
		t.Errorf("small sweep capped default: got %d, want 2", w)
	}
	if w := pickBatchWidth(0, 1000, 0, nil); w != defaultBatchWidth {
		t.Errorf("nil probe default: got %d, want %d", w, defaultBatchWidth)
	}

	// Probing: per-point time minimized at width 16 (total time grows slower
	// than the width up to 16, then jumps).
	var probed []int
	cost := map[int]time.Duration{4: 40, 8: 56, 16: 64, 32: 1280}
	probe := func(w int) time.Duration {
		probed = append(probed, w)
		return cost[w]
	}
	if w := pickBatchWidth(0, 1000, 0, probe); w != 16 {
		t.Errorf("probed sweep: got %d, want 16", w)
	}
	// Two reps per candidate, all four candidates fit.
	if len(probed) != 8 {
		t.Errorf("probe called %d times, want 8 (2 reps x 4 candidates)", len(probed))
	}
	// The cap stops candidate enumeration.
	probed = nil
	if w := pickBatchWidth(0, 1000, 8, probe); w != 8 {
		t.Errorf("capped probe: got %d, want 8 (best per-point among {4, 8})", w)
	}
	for _, w := range probed {
		if w > 8 {
			t.Errorf("probed width %d beyond cap 8", w)
		}
	}
	// So does the point count.
	probed = nil
	if w := pickBatchWidth(0, 300, 0, func(w int) time.Duration {
		probed = append(probed, w)
		return time.Duration(w) // flat per-point cost: first candidate wins
	}); w != 4 {
		t.Errorf("flat probe: got %d, want 4", w)
	}
}

// TestBatchSizeFingerprintInvariant pins the "execution detail" contract:
// the sweep fingerprint — the identity the checkpoint store and the shadow
// auditor key on — is computed from the engine and its inputs, never from
// the lane width.
func TestBatchSizeFingerprintInvariant(t *testing.T) {
	_, g, a, pts := prepareWorkload(t, "416.gamess", 7, 3000, 12)
	for _, eng := range []struct {
		name string
		run  func(opts ExploreOptions) (*Report, error)
	}{
		{"graph", func(opts ExploreOptions) (*Report, error) { return ExploreGraphOpts(g, pts, opts) }},
		{"rpstacks", func(opts ExploreOptions) (*Report, error) { return ExploreRpStacksOpts(a, pts, opts) }},
	} {
		var want []byte
		for _, k := range []int{1, 0, 5, len(pts)} {
			rep, err := eng.run(ExploreOptions{BatchSize: k, NeedFingerprint: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Fingerprint) == 0 {
				t.Fatalf("%s k=%d: no fingerprint published", eng.name, k)
			}
			if want == nil {
				want = rep.Fingerprint
			} else if !bytes.Equal(rep.Fingerprint, want) {
				t.Fatalf("%s: fingerprint changed with BatchSize %d", eng.name, k)
			}
		}
	}
}

// TestBatchedCheckpointCrashResume is the satellite crash differential: a
// batched checkpointed sweep killed mid-run and resumed at a different lane
// width (and worker count) must stitch together the exact Results of an
// uninterrupted forced-scalar sweep, under the same fingerprint. The resume
// leg exercises the scattered-index gather path that only checkpointed
// batched sweeps take.
func TestBatchedCheckpointCrashResume(t *testing.T) {
	_, g, a, pts := prepareWorkload(t, "429.mcf", 5, 2500, 60)
	for _, eng := range []struct {
		name string
		run  func(opts ExploreOptions) (*Report, error)
	}{
		{"graph", func(opts ExploreOptions) (*Report, error) { return ExploreGraphOpts(g, pts, opts) }},
		{"rpstacks", func(opts ExploreOptions) (*Report, error) { return ExploreRpStacksOpts(a, pts, opts) }},
	} {
		t.Run(eng.name, func(t *testing.T) {
			scalar, err := eng.run(ExploreOptions{BatchSize: 1, NeedFingerprint: true})
			if err != nil {
				t.Fatal(err)
			}

			const crashChunks = 4
			dir := t.TempDir()
			ck := &Checkpoint{Dir: dir}
			// Crashed leg: serial, batched wider than the chunk, cancelled
			// after 4 chunks of 5 — each chunk evaluates as one ragged batch.
			_, err = eng.run(ExploreOptions{
				Parallelism: 1,
				ChunkSize:   5,
				BatchSize:   8,
				Context:     &cancelAfter{remaining: crashChunks},
				Checkpoint:  ck,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("crashed run returned %v, want context.Canceled", err)
			}
			if got := len(chunkFiles(t, dir)); got != crashChunks {
				t.Fatalf("crash left %d chunk files, want %d", got, crashChunks)
			}

			// Resumed leg: parallel, a different width — checkpoints written
			// at one width must restore at any other.
			resumed, err := eng.run(ExploreOptions{Parallelism: 4, ChunkSize: 3, BatchSize: 3, Checkpoint: ck})
			if err != nil {
				t.Fatal(err)
			}
			if want := crashChunks * 5; resumed.Resumed != want {
				t.Fatalf("resume restored %d points, want %d", resumed.Resumed, want)
			}
			if !bytes.Equal(resumed.Fingerprint, scalar.Fingerprint) {
				t.Fatal("batched checkpointed sweep fingerprints differently than the scalar sweep")
			}
			sameResults(t, eng.name+" batched resume vs scalar uninterrupted", scalar.Results, resumed.Results)

			// Autotuned width over the now-complete checkpoint restores all.
			full, err := eng.run(ExploreOptions{Checkpoint: ck})
			if err != nil {
				t.Fatal(err)
			}
			if full.Resumed != len(pts) {
				t.Fatalf("complete checkpoint restored %d of %d points", full.Resumed, len(pts))
			}
			sameResults(t, eng.name+" fully resumed", scalar.Results, full.Results)
		})
	}
}

// TestSimIgnoresBatchSize checks the scalar-only engine contract: the sim
// engine reports Batch 1 whatever the option says and still returns the same
// measurements.
func TestSimIgnoresBatchSize(t *testing.T) {
	cfg, _, _, pts := prepareWorkload(t, "456.hmmer", 3, 800, 3)
	uops := smallStream(t, "456.hmmer", 3, 800)
	plain, err := ExploreSimOpts(cfg, uops, pts, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := ExploreSimOpts(cfg, uops, pts, ExploreOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Batch != 1 || batched.Batch != 1 {
		t.Fatalf("sim reported batch widths %d/%d, want 1/1", plain.Batch, batched.Batch)
	}
	sameResults(t, "sim with BatchSize set", plain.Results, batched.Results)
}
