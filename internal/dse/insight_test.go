package dse

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/stacks"
	"repro/internal/workload"
)

func TestExploreInsight(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("444.namd")
	uops := workload.Stream(prof, 3, 2500)
	sp := Space{Axes: []Axis{
		{Event: stacks.FpMul, Values: []float64{2, 4, 6}},
		{Event: stacks.FpAdd, Values: []float64{2, 4, 6}},
	}}
	rep, err := ExploreInsight(cfg, uops, sp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 5 {
		t.Fatalf("took %d steps, want 5", len(rep.Steps))
	}
	if rep.Best.Cycles > rep.Steps[0].Cycles {
		t.Fatal("greedy descent ended worse than the baseline")
	}
	// Error paths.
	if _, err := ExploreInsight(cfg, uops, sp, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := ExploreInsight(cfg, uops, Space{}, 3); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestExploreStructures(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("456.hmmer")
	uops := workload.Stream(prof, 3, 3000)
	sp := Space{Axes: []Axis{
		{Event: stacks.L1D, Values: []float64{2, 4}},
		{Event: stacks.IntMul, Values: []float64{2, 4}},
	}}
	variants := []StructurePoint{
		{Name: "baseline"},
		{Name: "rob32", Mutate: func(s *config.Structure) { s.ROBSize = 32 }},
	}
	analyze := func(c *config.Config, u []isa.MicroOp) (interface {
		Predict(*stacks.Latencies) float64
	}, error) {
		s, err := cpu.New(c)
		if err != nil {
			return nil, err
		}
		tr, err := s.Run(u)
		if err != nil {
			return nil, err
		}
		return core.Analyze(tr, &c.Structure, &c.Lat, core.DefaultOptions())
	}
	out, err := ExploreStructures(cfg, uops, variants, sp, analyze)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d structure results", len(out))
	}
	for _, o := range out {
		if o.LatPoints != 4 || o.BestCPI <= 0 {
			t.Fatalf("%s: broken result %+v", o.Name, o)
		}
	}
	// A 32-entry ROB cannot beat the 128-entry baseline.
	if out[1].BestCPI < out[0].BestCPI {
		t.Fatalf("rob32 best CPI %.3f beats baseline %.3f", out[1].BestCPI, out[0].BestCPI)
	}
}
