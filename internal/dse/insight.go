package dse

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/stacks"
)

// InsightStep is one move of the insight-driven exploration: the design
// point simulated and its outcome.
type InsightStep struct {
	Lat    stacks.Latencies
	Cycles float64
}

// InsightReport is the outcome of a greedy, simulation-per-step exploration
// — the paper's "insight-driven approach" of Figure 6c: an architect reads
// the previous result, picks the most promising single-axis move, and
// launches the next simulation. It covers far fewer points per unit time
// than RpStacks and can stop at a local optimum.
type InsightReport struct {
	Steps    []InsightStep
	Best     InsightStep
	PerPoint time.Duration
}

// ExploreInsight runs budget simulations of greedy axis-aligned descent
// over the space, starting from the baseline assignment. Each step tries
// the next untested neighbor that the current CPI stack suggests (largest
// remaining axis value first) and keeps it when it improves.
func ExploreInsight(cfg *config.Config, uops []isa.MicroOp, sp Space, budget int) (*InsightReport, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dse: insight exploration needs a positive budget")
	}
	simulate := func(l stacks.Latencies) (float64, error) {
		c := cfg.Clone()
		c.Lat = l
		s, err := cpu.New(c)
		if err != nil {
			return 0, err
		}
		tr, err := s.Run(uops)
		if err != nil {
			return 0, err
		}
		return float64(tr.Cycles), nil
	}

	rep := &InsightReport{}
	start := time.Now()
	cur := cfg.Lat
	curCycles, err := simulate(cur)
	if err != nil {
		return nil, err
	}
	rep.Steps = append(rep.Steps, InsightStep{Lat: cur, Cycles: curCycles})
	rep.Best = rep.Steps[0]

	// Greedy: walk the axes round-robin, trying the next lower value of
	// each event; keep improvements, abandon regressions.
	idx := make([]int, len(sp.Axes))
	for i, ax := range sp.Axes {
		idx[i] = len(ax.Values) // one past the smallest tried
	}
	axis := 0
	for len(rep.Steps) < budget {
		tried := false
		for probe := 0; probe < len(sp.Axes); probe++ {
			a := (axis + probe) % len(sp.Axes)
			if idx[a] == 0 {
				continue
			}
			idx[a]--
			cand := cur
			cand[sp.Axes[a].Event] = sp.Axes[a].Values[idx[a]]
			cycles, err := simulate(cand)
			if err != nil {
				return nil, err
			}
			rep.Steps = append(rep.Steps, InsightStep{Lat: cand, Cycles: cycles})
			if cycles < curCycles {
				cur, curCycles = cand, cycles
			}
			if cycles < rep.Best.Cycles {
				rep.Best = InsightStep{Lat: cand, Cycles: cycles}
			}
			axis = (a + 1) % len(sp.Axes)
			tried = true
			break
		}
		if !tried {
			break // all axis values exhausted
		}
	}
	if len(rep.Steps) > 0 {
		rep.PerPoint = time.Since(start) / time.Duration(len(rep.Steps))
	}
	return rep, nil
}

// StructurePoint pairs a structure variant with its exploration outcome:
// the paper's full workflow explores structures by simulation and, within
// each structure, covers the whole latency space with one RpStacks analysis
// (Figure 6c).
type StructurePoint struct {
	Name      string
	Mutate    func(*config.Structure)
	BestCPI   float64
	BestLat   stacks.Latencies
	LatPoints int
}

// ExploreStructures runs the two-level exploration: for each structure
// variant, simulate + analyze once, sweep the latency space with RpStacks,
// and report the variant's best point.
func ExploreStructures(base *config.Config, uops []isa.MicroOp, variants []StructurePoint, sp Space,
	analyze func(cfg *config.Config, uops []isa.MicroOp) (interface {
		Predict(*stacks.Latencies) float64
	}, error)) ([]StructurePoint, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	out := make([]StructurePoint, len(variants))
	for i, v := range variants {
		cfg := base.Clone()
		if v.Mutate != nil {
			v.Mutate(&cfg.Structure)
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("dse: structure %q: %w", v.Name, err)
		}
		an, err := analyze(cfg, uops)
		if err != nil {
			return nil, err
		}
		points := sp.Enumerate(cfg.Lat)
		best := -1.0
		var bestLat stacks.Latencies
		for _, l := range points {
			l := l
			if c := an.Predict(&l); best < 0 || c < best {
				best, bestLat = c, l
			}
		}
		out[i] = StructurePoint{
			Name:      v.Name,
			BestCPI:   best / float64(len(uops)),
			BestLat:   bestLat,
			LatPoints: len(points),
		}
	}
	return out, nil
}
