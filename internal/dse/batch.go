package dse

import (
	"time"

	"repro/internal/stacks"
)

// batch.go — K-wide design-point evaluation. The batch-capable engines
// (graph, rpstacks) evaluate K design points per pass over their model
// instead of re-walking it per point; this file holds the engine-neutral
// pieces: the per-worker evaluation closure bundle the sweep driver runs,
// and the lane-width autotuner behind ExploreOptions.BatchSize == 0.

// engineEval bundles one engine's per-worker evaluation closures for
// runPoints. Scalar-only engines (sim) set point; batch-capable engines set
// batch and width instead. Exactly one of the two modes is active: batch
// is used whenever it is non-nil and width > 1.
type engineEval struct {
	// point evaluates design point i on the worker's scratch.
	point func(worker, i int) (float64, error)
	// batch evaluates len(lats) ≤ width design points in one model pass on
	// the worker's scratch, writing cycle counts into out in lats order.
	batch func(worker int, lats []stacks.Latencies, out []float64) error
	// width is the lane capacity of the worker scratches behind batch.
	width int
}

// batched reports whether the engine runs the K-wide path.
func (ev *engineEval) batched() bool { return ev.batch != nil && ev.width > 1 }

// batchWidthCandidates are the lane widths the autotuner times when
// ExploreOptions.BatchSize is zero. They bracket the widths that win on
// current hardware: too narrow re-pays graph traffic, too wide spills the
// per-node lane rows out of registers and the distance buffer out of cache.
var batchWidthCandidates = [...]int{4, 8, 16, 32}

// defaultBatchWidth is the lane width used when a sweep is too small to
// amortize probing (or probing is impossible, e.g. zero points). Sixteen
// int64 lanes are two cache lines per node row — wide enough to amortize
// graph traffic, small enough that the distance buffer of a segment-sized
// graph stays cache-resident.
const defaultBatchWidth = 16

// autotuneMinPoints is the sweep size below which probing every candidate
// width would cost a noticeable share of the sweep itself; smaller sweeps
// take defaultBatchWidth directly.
const autotuneMinPoints = 256

// pickBatchWidth resolves ExploreOptions.BatchSize for a batch-capable
// engine sweeping n points. A caller-requested width (requested > 0) is
// honored, clamped only to the point count — an explicit width overrides
// the autotuner's cache heuristics. requested == 0 autotunes: probe(w)
// evaluates one w-sized batch of real design points through a throwaway
// evaluator and returns its wall time; the width with the lowest per-point
// time wins, capped at maxWidth (the engine's memory ceiling; 0 means
// uncapped). Probing re-evaluates a prefix of the actual point list and
// discards the output, so it cannot change results — batching is an
// execution detail.
func pickBatchWidth(requested, n, maxWidth int, probe func(width int) time.Duration) int {
	clamp := func(w int) int {
		if w > n {
			w = n
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	if requested > 0 {
		return clamp(requested)
	}
	def := defaultBatchWidth
	if maxWidth > 0 && def > maxWidth {
		def = maxWidth
	}
	if n < autotuneMinPoints || probe == nil {
		return clamp(def)
	}
	bestW := 0
	var bestPer float64
	for _, w := range batchWidthCandidates {
		if w > n || (maxWidth > 0 && w > maxWidth) {
			break
		}
		// Two reps, keep the faster: the first touches cold buffers.
		d := probe(w)
		if d2 := probe(w); d2 < d {
			d = d2
		}
		per := float64(d) / float64(w)
		if bestW == 0 || per < bestPer {
			bestW, bestPer = w, per
		}
	}
	if bestW == 0 {
		return clamp(def)
	}
	return bestW
}
