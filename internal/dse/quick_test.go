package dse

import (
	"testing"
	"testing/quick"

	"repro/internal/stacks"
	"repro/internal/workload"
)

// quickPoint maps arbitrary fuzz words onto a valid latency design point
// around base: every optimizable event scaled into [0.25x, 1.75x].
func quickPoint(base stacks.Latencies, words [4]uint64) stacks.Latencies {
	l := base
	for e := stacks.Event(1); e < stacks.NumEvents; e++ {
		w := words[int(e)%len(words)] >> (uint(e) % 32)
		l = l.Scale(e, 0.25+float64(w%151)/100)
	}
	return l
}

// quickAxis picks the latency axis to raise and by how much.
func quickAxis(axis uint8, bump uint8) (stacks.Event, float64) {
	e := stacks.Event(1 + int(axis)%(int(stacks.NumEvents)-1))
	return e, float64(1 + bump%64)
}

// TestSweepMonotonicityGraphAndRpStacks is the sweep monotonicity property:
// raising any single latency axis never decreases the predicted cycle count.
// For the graph engine this holds because edge weights are non-negative
// event counts; for RpStacks because every representative stack is a
// non-negative linear function of the latencies and prediction takes maxima
// and sums of them. testing/quick drives the axis choice, the bump size and
// the surrounding design point.
func TestSweepMonotonicityGraphAndRpStacks(t *testing.T) {
	cfg, g, a, _ := prepareWorkload(t, "437.leslie3d", 21, 3000, 1)
	base := cfg.Lat

	check := func(name string, predict func(*stacks.Latencies) float64) {
		prop := func(words [4]uint64, axis, bump uint8) bool {
			lo := quickPoint(base, words)
			e, delta := quickAxis(axis, bump)
			hi := lo.With(e, lo[e]+delta)
			return predict(&hi) >= predict(&lo)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("graph", func(l *stacks.Latencies) float64 {
		rep, _ := ExploreGraphOpts(g, []stacks.Latencies{*l}, ExploreOptions{})
		return rep.Results[0].Cycles
	})
	check("rpstacks", func(l *stacks.Latencies) float64 {
		rep, _ := ExploreRpStacksOpts(a, []stacks.Latencies{*l}, ExploreOptions{Parallelism: 2})
		return rep.Results[0].Cycles
	})
}

// TestSweepMonotonicityBatched extends the monotonicity property to the
// batched sweep path: the lo/hi pair is evaluated as one two-point batch (and
// again split across parallel workers), so the property holds through the
// K-wide evaluators' lane arithmetic, not just the scalar path the test above
// exercises when widths collapse to one.
func TestSweepMonotonicityBatched(t *testing.T) {
	cfg, g, a, _ := prepareWorkload(t, "437.leslie3d", 23, 3000, 1)
	base := cfg.Lat

	check := func(name string, sweep func(pts []stacks.Latencies) []Result) {
		prop := func(words [4]uint64, axis, bump uint8) bool {
			lo := quickPoint(base, words)
			e, delta := quickAxis(axis, bump)
			hi := lo.With(e, lo[e]+delta)
			res := sweep([]stacks.Latencies{lo, hi})
			return res[1].Cycles >= res[0].Cycles
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("graph", func(pts []stacks.Latencies) []Result {
		rep, _ := ExploreGraphOpts(g, pts, ExploreOptions{BatchSize: 2})
		return rep.Results
	})
	check("rpstacks", func(pts []stacks.Latencies) []Result {
		rep, _ := ExploreRpStacksOpts(a, pts, ExploreOptions{BatchSize: 2, Parallelism: 2, ChunkSize: 1})
		return rep.Results
	})
}

// TestSweepMonotonicitySim applies the same property to the ground-truth
// engine: re-simulating with one latency axis raised never finishes earlier.
// Simulation is the expensive engine, so the property runs on a short stream
// with few samples.
func TestSweepMonotonicitySim(t *testing.T) {
	if testing.Short() {
		t.Skip("per-point re-simulation is slow")
	}
	cfg, _, _, _ := prepareWorkload(t, "437.leslie3d", 21, 1, 1)
	prof, _ := workload.ByName("437.leslie3d")
	uops := workload.Stream(prof, 21, 900)
	base := cfg.Lat

	prop := func(words [4]uint64, axis, bump uint8) bool {
		lo := quickPoint(base, words)
		e, delta := quickAxis(axis, bump)
		hi := lo.With(e, lo[e]+delta)
		rep, err := ExploreSimOpts(cfg, uops, []stacks.Latencies{lo, hi}, ExploreOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Results[1].Cycles >= rep.Results[0].Cycles
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Errorf("simulator: %v", err)
	}
}
