package dse

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/stacks"
)

// checkpoint.go — crash-safe sweep resume. A checkpointed sweep persists
// every completed chunk of design points as its own file, published
// atomically (write-temp, sync, rename), so a killed sweep loses at most
// the chunk in flight. A later run over the same directory restores the
// persisted points, evaluates only the remainder, and returns Results
// provably identical to an uninterrupted run: points are stored by index,
// the engine's inputs are bound into every chunk by a fingerprint, and a
// chunk that fails its checksum is discarded (its points re-evaluated),
// never trusted.
//
// Only (index, cycles) pairs are persisted — the latency assignment of a
// point is recomputed from the point list, which the fingerprint covers.

// Checkpoint configures crash-safe persistence for one sweep.
type Checkpoint struct {
	// Dir is the checkpoint directory, created if absent. One directory
	// serves one logical sweep; reusing it for a different engine, point
	// list or engine input is detected via fingerprint and rejected.
	Dir string
	// RemoveOnSuccess deletes the chunk files once the sweep has completed
	// and its Report is final, so a finished run does not leave its whole
	// result set behind on disk. A failed or cancelled sweep always keeps
	// its chunks — they are exactly what the next run resumes from. Off by
	// default: callers that re-read a completed checkpoint (tests, tooling)
	// keep the historical keep-everything behavior.
	RemoveOnSuccess bool
}

const (
	chunkMagic   = "RPCKP"
	chunkVersion = 1
	chunkPrefix  = "chunk-"
	// maxChunkEntries bounds the per-chunk point count a decoder accepts.
	maxChunkEntries = 1 << 24
)

// sweepFingerprint binds a checkpoint to everything that determines a
// sweep's output: the engine, the engine's prepared input (streamed by
// salt), and the full design-point list.
func sweepFingerprint(method string, salt func(io.Writer) error, points []stacks.Latencies) ([sha256.Size]byte, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|", method, len(points))
	if salt != nil {
		if err := salt(h); err != nil {
			return [sha256.Size]byte{}, fmt.Errorf("dse: fingerprinting engine input: %w", err)
		}
	}
	var b [8]byte
	for i := range points {
		for _, v := range points[i] {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp, nil
}

// encodeChunk renders one completed chunk: magic, version, fingerprint,
// count, (index, cycles) pairs, trailing SHA-256 of everything before it.
// idxs and cycles are aligned: cycles[k] is the result of point idxs[k].
func encodeChunk(fp [sha256.Size]byte, idxs []int, cycles []float64) []byte {
	var scratch [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, len(chunkMagic)+2+sha256.Size+len(idxs)*12+sha256.Size)
	buf = append(buf, chunkMagic...)
	buf = append(buf, scratch[:binary.PutUvarint(scratch[:], chunkVersion)]...)
	buf = append(buf, fp[:]...)
	buf = append(buf, scratch[:binary.PutUvarint(scratch[:], uint64(len(idxs)))]...)
	var b [8]byte
	for k, i := range idxs {
		buf = append(buf, scratch[:binary.PutUvarint(scratch[:], uint64(i))]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(cycles[k]))
		buf = append(buf, b[:]...)
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// chunkEntry is one decoded (point index, cycles) pair.
type chunkEntry struct {
	idx    int
	cycles float64
}

// decodeChunk parses one chunk file. It returns the embedded fingerprint
// separately from the entries so the caller can distinguish "corrupt file"
// (errCorruptChunk: discard and re-evaluate) from "healthy file of a
// different sweep" (a caller-level hard error).
func decodeChunk(raw []byte) (fp [sha256.Size]byte, entries []chunkEntry, err error) {
	if len(raw) < len(chunkMagic)+1+2*sha256.Size {
		return fp, nil, errCorruptChunk
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sha256.Sum256(body) != [sha256.Size]byte(sum) {
		return fp, nil, errCorruptChunk
	}
	if string(body[:len(chunkMagic)]) != chunkMagic {
		return fp, nil, errCorruptChunk
	}
	rest := body[len(chunkMagic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 || ver != chunkVersion {
		return fp, nil, errCorruptChunk
	}
	rest = rest[n:]
	if len(rest) < sha256.Size {
		return fp, nil, errCorruptChunk
	}
	copy(fp[:], rest[:sha256.Size])
	rest = rest[sha256.Size:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > maxChunkEntries {
		return fp, nil, errCorruptChunk
	}
	rest = rest[n:]
	capHint := count
	if capHint > 1<<12 {
		capHint = 1 << 12
	}
	entries = make([]chunkEntry, 0, capHint)
	for k := uint64(0); k < count; k++ {
		idx, n := binary.Uvarint(rest)
		if n <= 0 {
			return fp, nil, errCorruptChunk
		}
		rest = rest[n:]
		if len(rest) < 8 {
			return fp, nil, errCorruptChunk
		}
		c := math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
		rest = rest[8:]
		entries = append(entries, chunkEntry{idx: int(idx), cycles: c})
	}
	if len(rest) != 0 {
		return fp, nil, errCorruptChunk
	}
	return fp, entries, nil
}

var errCorruptChunk = fmt.Errorf("dse: corrupt checkpoint chunk")

// loadChunks restores every readable chunk in dir into results/done and
// returns the restored point count. Corrupt chunks are deleted (their
// points re-evaluated); a healthy chunk carrying a different fingerprint is
// a hard error, because silently mixing two sweeps' results is the one
// failure resume must never have. Each restored chunk is recorded as one
// resume span under parent (Arg = its point count), which is how the
// progress meter learns how much of the sweep arrived from disk; tr may be
// nil.
func loadChunks(dir string, fp [sha256.Size]byte, results []Result, done []bool, tr *obs.Tracer, parent uint64) (int, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("dse: reading checkpoint dir: %w", err)
	}
	restored := 0
	for _, de := range des {
		if !strings.HasPrefix(de.Name(), chunkPrefix) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			_ = os.Remove(path)
			continue
		}
		gotFP, entries, err := decodeChunk(raw)
		if err != nil {
			_ = os.Remove(path)
			continue
		}
		if gotFP != fp {
			return 0, fmt.Errorf("dse: checkpoint %s belongs to a different sweep (method, inputs or design points changed)", path)
		}
		healthy := true
		for _, e := range entries {
			if e.idx < 0 || e.idx >= len(results) || done[e.idx] {
				healthy = false
				break
			}
		}
		if !healthy {
			// Indices out of range or overlapping a chunk already loaded:
			// structurally impossible for files this sweep wrote, so treat
			// the file as damage and re-evaluate its points.
			_ = os.Remove(path)
			continue
		}
		for _, e := range entries {
			done[e.idx] = true
			results[e.idx].Cycles = e.cycles
			restored++
		}
		sp := tr.StartChild(parent, obs.CatDSE, obs.NameResume)
		sp.SetArg(obs.ArgPoints, int64(len(entries)))
		sp.End()
	}
	return restored, nil
}

// saveChunk atomically publishes one completed chunk. The file is named by
// the chunk's first point index, which is unique across resumes: a point
// lands in at most one published chunk, and chunks that failed to decode
// were deleted before their points became pending again.
func saveChunk(dir string, fp [sha256.Size]byte, idxs []int, results []Result) error {
	cycles := make([]float64, len(idxs))
	for k, i := range idxs {
		cycles[k] = results[i].Cycles
	}
	raw := encodeChunk(fp, idxs, cycles)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("dse: creating checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("dse: writing checkpoint chunk: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%09d", chunkPrefix, idxs[0]))
	if err := os.Rename(tmpName, final); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("dse: publishing checkpoint chunk: %w", err)
	}
	return nil
}

// removeChunks best-effort deletes every chunk file in dir, then the
// directory itself if that left it empty. Called only after a sweep has
// completed and its Report is final (Checkpoint.RemoveOnSuccess), so losing
// the files can no longer lose results; errors are ignored because a
// leftover file merely re-creates the pre-cleanup behavior.
func removeChunks(dir string) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), chunkPrefix) {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
	_ = os.Remove(dir) // fails (and is kept) when anything else lives there
}
