package dse

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stacks"
)

// axes_overflow_test.go — regression tests at the size-computation overflow
// boundary. Before the saturating rewrite, a request with 8 axes of 256
// values each (2^64 points) wrapped the int product to 0 and an adversarial
// axis list could slip a non-materializable space under MaxGridPoints-style
// caps; the space could then reach Enumerate and fail arbitrarily. All size
// paths now saturate and the materializing entry points refuse overflowed
// spaces outright.

// wrapSpace builds axes whose exact point count is 2^bits — comfortably
// past MaxInt, and with 2^64 an exact multiple of it so the old wrap-around
// produced the worst possible answer: zero.
func wrapSpace(axes, per int) *Space {
	s := &Space{}
	for i := 0; i < axes; i++ {
		vals := make([]float64, per)
		for j := range vals {
			vals[j] = float64(j)
		}
		s.Axes = append(s.Axes, Axis{Event: stacks.Event(i + 1), Values: vals})
	}
	return s
}

func TestSizeSaturatesInsteadOfWrapping(t *testing.T) {
	cases := []struct{ axes, per int }{
		{8, 256}, // 2^64: wraps to exactly 0 in naive int arithmetic
		{7, 512}, // 2^63: wraps negative
		{4, 65536},
	}
	for _, c := range cases {
		s := wrapSpace(c.axes, c.per)
		n, exact := s.SizeSaturating()
		if exact || n != math.MaxInt {
			t.Errorf("%d axes × %d values: SizeSaturating = (%d, %v), want (MaxInt, false)", c.axes, c.per, n, exact)
		}
		if got := s.Size(); got != math.MaxInt {
			t.Errorf("%d axes × %d values: Size = %d, want saturation at MaxInt", c.axes, c.per, got)
		}
		if _, ok := s.SizeWithin(math.MaxInt); ok {
			t.Errorf("%d axes × %d values: SizeWithin(MaxInt) accepted an overflowed space", c.axes, c.per)
		}
		if _, ok := s.SizeWithin(1 << 20); ok {
			t.Errorf("%d axes × %d values: overflowed space slipped under a small cap", c.axes, c.per)
		}
	}
}

func TestSizeWithinExactBoundary(t *testing.T) {
	s := wrapSpace(3, 4) // exactly 64 points
	if n, ok := s.SizeWithin(64); !ok || n != 64 {
		t.Fatalf("SizeWithin(limit == size) = (%d, %v), want (64, true)", n, ok)
	}
	if _, ok := s.SizeWithin(63); ok {
		t.Fatal("SizeWithin(limit == size-1) accepted the space")
	}
	if n, exact := s.SizeSaturating(); !exact || n != 64 {
		t.Fatalf("SizeSaturating = (%d, %v), want (64, true)", n, exact)
	}
}

func TestEnumerateRefusesOverflowedSpace(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Enumerate materialized a 2^64-point space")
		}
		if !strings.Contains(r.(string), "search mode") {
			t.Fatalf("panic %q does not point at the search modes", r)
		}
	}()
	wrapSpace(8, 256).Enumerate(stacks.Latencies{})
}
