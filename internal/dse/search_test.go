package dse

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// search_test.go — the exhaustive-equivalence differential layer: on every
// space small enough to materialize, each search mode must return exactly
// the exhaustive sweep's answer (argmin for halving/target, the true Pareto
// set for the walk), bit-identical across scalar, batched, parallel and
// crash-resumed executions. The reference is computed by the straightforward
// full scan (SearchPlan.Exhaustive over an Explore sweep) the search layer
// exists to avoid.

// searchSubstrate simulates a seeded workload once and builds every engine
// input a search can probe through.
func searchSubstrate(t *testing.T, name string, seed int64, n int) (*config.Config, []isa.MicroOp, *depgraph.Graph, *core.Analysis) {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	uops := workload.Stream(prof, seed, n)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cfg, uops, g, a
}

// searchSpaces are the materializable spaces the differential layer scans:
// one axis, two axes, three axes — with deliberately unsorted declared
// values to exercise canonicalization.
func searchSpaces() []*Space {
	return []*Space{
		{Axes: []Axis{{Event: stacks.L1D, Values: []float64{4, 2, 1, 3}}}},
		{Axes: []Axis{
			{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
			{Event: stacks.FpAdd, Values: []float64{6, 2, 4}},
		}},
		{Axes: []Axis{
			{Event: stacks.L1D, Values: []float64{2, 1}},
			{Event: stacks.FpMul, Values: []float64{2, 6}},
			{Event: stacks.MemD, Values: []float64{66, 133, 100}},
		}},
	}
}

// targetSpecs derives target-mode specs whose budgets sit at
// rounding-insensitive spots of the exhaustive cycle distribution: below the
// minimum (infeasible), between the two fastest distinct values, mid-range,
// and above the maximum (everything feasible).
func targetSpecs(cycles []float64, microOps int) []*SearchSpec {
	uniq := append([]float64(nil), cycles...)
	sortFloat64s(uniq)
	w := uniq[:0]
	for i, c := range uniq {
		if i == 0 || c != uniq[i-1] {
			w = append(w, c)
		}
	}
	uniq = w
	budgets := []float64{uniq[0] - 1, uniq[len(uniq)-1] + 1}
	if len(uniq) > 1 {
		budgets = append(budgets, (uniq[0]+uniq[1])/2)
		mid := len(uniq) / 2
		budgets = append(budgets, (uniq[mid-1]+uniq[mid])/2)
	}
	specs := make([]*SearchSpec, 0, len(budgets))
	for _, b := range budgets {
		if cpi := b / float64(microOps); cpi > 0 {
			specs = append(specs, &SearchSpec{Mode: SearchTarget, TargetCPI: cpi})
		}
	}
	return specs
}

func sortFloat64s(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// sameSearch asserts two searches of the same space/spec/engine agree on
// everything deterministic — answer, probe schedule shape, grid — ignoring
// only timings, lane width and the live/resumed probe split.
func sameSearch(t *testing.T, label string, a, b *SearchResult) {
	t.Helper()
	if err := EqualAnswers(a, b); err != nil {
		t.Fatalf("%s: answers differ: %v", label, err)
	}
	if a.Rounds != b.Rounds || a.PeakBoxes != b.PeakBoxes {
		t.Fatalf("%s: probe schedule differs: rounds %d/%d, peak boxes %d/%d",
			label, a.Rounds, b.Rounds, a.PeakBoxes, b.PeakBoxes)
	}
	if a.Probes+a.ResumedProbes != b.Probes+b.ResumedProbes {
		t.Fatalf("%s: total probes differ: %d+%d vs %d+%d",
			label, a.Probes, a.ResumedProbes, b.Probes, b.ResumedProbes)
	}
	if a.Best != nil && a.Best.Lat != b.Best.Lat {
		t.Fatalf("%s: best witness latencies differ", label)
	}
	for i := range a.Frontier {
		if a.Frontier[i].Lat != b.Frontier[i].Lat || a.Frontier[i].Index != b.Frontier[i].Index {
			t.Fatalf("%s: frontier witness %d differs", label, i)
		}
	}
}

// TestSearchExhaustiveEquivalence proves the co-headline for the two model
// engines: every mode, on every materializable test space, returns exactly
// the exhaustive answer — under scalar, batched, parallel and
// batched+parallel execution, which must also be bit-identical to each
// other (the -race run of this test covers the parallel shards).
func TestSearchExhaustiveEquivalence(t *testing.T) {
	const microOps = 2500
	cfg, _, g, a := searchSubstrate(t, "437.leslie3d", 11, microOps)
	engines := []struct {
		name   string
		search func(*Space, *SearchSpec, SearchOptions) (*SearchResult, error)
		sweep  func([]stacks.Latencies) []float64
	}{
		{
			name: "graph",
			search: func(sp *Space, spec *SearchSpec, o SearchOptions) (*SearchResult, error) {
				return SearchGraph(g, cfg.Lat, sp, spec, o)
			},
			sweep: func(pts []stacks.Latencies) []float64 {
				rep, err := ExploreGraphOpts(g, pts, ExploreOptions{})
				if err != nil {
					t.Fatal(err)
				}
				out := make([]float64, len(rep.Results))
				for i, r := range rep.Results {
					out[i] = r.Cycles
				}
				return out
			},
		},
		{
			name: "rpstacks",
			search: func(sp *Space, spec *SearchSpec, o SearchOptions) (*SearchResult, error) {
				return SearchRpStacks(a, cfg.Lat, sp, spec, o)
			},
			sweep: func(pts []stacks.Latencies) []float64 {
				rep, err := ExploreRpStacksOpts(a, pts, ExploreOptions{})
				if err != nil {
					t.Fatal(err)
				}
				out := make([]float64, len(rep.Results))
				for i, r := range rep.Results {
					out[i] = r.Cycles
				}
				return out
			},
		},
	}
	shapes := []SearchOptions{
		{},                                         // serial scalar rounds (default width stays batched)
		{ExploreOptions: ExploreOptions{BatchSize: 1}},                   // forced scalar
		{ExploreOptions: ExploreOptions{BatchSize: 4}},                   // narrow lanes
		{ExploreOptions: ExploreOptions{Parallelism: 4, ChunkSize: 1}},   // parallel
		{ExploreOptions: ExploreOptions{Parallelism: 3, BatchSize: 8}},   // parallel + batched
	}
	for _, eng := range engines {
		for si, space := range searchSpaces() {
			basePlan, err := NewSearchPlan(space, &SearchSpec{Mode: SearchHalving})
			if err != nil {
				t.Fatal(err)
			}
			pts, err := basePlan.Enumerate(cfg.Lat)
			if err != nil {
				t.Fatal(err)
			}
			cycles := eng.sweep(pts)
			specs := []*SearchSpec{
				{Mode: SearchHalving},
				{Mode: SearchHalving, Cost: []CostWeight{{Event: stacks.L1D, Weight: 2.5}}},
				{Mode: SearchPareto},
			}
			specs = append(specs, targetSpecs(cycles, microOps)...)
			for _, spec := range specs {
				plan, err := NewSearchPlan(space, spec)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := plan.Exhaustive(cycles, microOps)
				if err != nil {
					t.Fatal(err)
				}
				var first *SearchResult
				for sh, opts := range shapes {
					opts.MicroOps = microOps
					res, err := eng.search(space, spec, opts)
					if err != nil {
						t.Fatalf("%s space %d spec %q shape %d: %v", eng.name, si, spec, sh, err)
					}
					if err := EqualAnswers(res, ref); err != nil {
						t.Fatalf("%s space %d spec %q shape %d: search != exhaustive: %v", eng.name, si, spec, sh, err)
					}
					if res.Probes > len(cycles) {
						t.Fatalf("%s space %d spec %q: %d probes exceed the %d-point grid", eng.name, si, spec, res.Probes, len(cycles))
					}
					if first == nil {
						first = res
					} else {
						sameSearch(t, eng.name, res, first)
					}
				}
			}
		}
	}
}

// TestSearchSimEquivalence runs the same differential against the
// re-simulation engine on a tiny stream: every probe is ground truth, so
// the search answer must match the exhaustive simulated sweep exactly.
func TestSearchSimEquivalence(t *testing.T) {
	const microOps = 400
	cfg, uops, _, _ := searchSubstrate(t, "429.mcf", 17, microOps)
	space := &Space{Axes: []Axis{
		{Event: stacks.L1D, Values: []float64{1, 3}},
		{Event: stacks.FpAdd, Values: []float64{2, 6}},
		{Event: stacks.MemD, Values: []float64{66, 133, 100}},
	}}
	basePlan, err := NewSearchPlan(space, &SearchSpec{Mode: SearchHalving})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := basePlan.Enumerate(cfg.Lat)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExploreSimOpts(cfg, uops, pts, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := make([]float64, len(rep.Results))
	for i, r := range rep.Results {
		cycles[i] = r.Cycles
	}
	specs := []*SearchSpec{{Mode: SearchHalving}, {Mode: SearchPareto}}
	specs = append(specs, targetSpecs(cycles, microOps)...)
	for _, spec := range specs {
		plan, err := NewSearchPlan(space, spec)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := plan.Exhaustive(cycles, microOps)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []SearchOptions{{MicroOps: microOps}, {MicroOps: microOps, ExploreOptions: ExploreOptions{Parallelism: 2, ChunkSize: 1}}} {
			res, err := SearchSim(cfg, uops, space, spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := EqualAnswers(res, ref); err != nil {
				t.Fatalf("sim spec %q: search != exhaustive: %v", spec, err)
			}
		}
	}
}

// TestSearchCrashResume kills a probe-logged search mid-round via the
// deterministic fault context, then proves the resumed run restores the
// logged rounds (no re-probing) and returns exactly the uninterrupted run's
// answer — and that a third run over the completed log is fully cached.
func TestSearchCrashResume(t *testing.T) {
	const microOps = 2500
	cfg, _, g, _ := searchSubstrate(t, "437.leslie3d", 11, microOps)
	space := searchSpaces()[2]
	basePlan, err := NewSearchPlan(space, &SearchSpec{Mode: SearchHalving})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := basePlan.Enumerate(cfg.Lat)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExploreGraphOpts(g, pts, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := make([]float64, len(rep.Results))
	for i, r := range rep.Results {
		cycles[i] = r.Cycles
	}
	ts := targetSpecs(cycles, microOps)
	specs := []*SearchSpec{
		{Mode: SearchHalving},
		{Mode: SearchPareto},
		ts[len(ts)-1], // mid-range budget: the search must straddle the iso-surface
	}
	for _, spec := range specs {
		uninterrupted, err := SearchGraph(g, cfg.Lat, space, spec, SearchOptions{MicroOps: microOps})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		crashOpts := SearchOptions{MicroOps: microOps, ExploreOptions: ExploreOptions{
			Checkpoint: &Checkpoint{Dir: dir},
			Context:    &cancelAfter{remaining: 4},
			ChunkSize:  1,
		}}
		if _, err := SearchGraph(g, cfg.Lat, space, spec, crashOpts); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: interrupted search returned %v, want context.Canceled", spec, err)
		}
		if len(probeFiles(t, dir)) == 0 {
			t.Fatalf("%s: crashed search left no probe-log chunks", spec)
		}
		resumed, err := SearchGraph(g, cfg.Lat, space, spec, SearchOptions{MicroOps: microOps, ExploreOptions: ExploreOptions{
			Checkpoint: &Checkpoint{Dir: dir},
			ChunkSize:  1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resumed.ResumedProbes == 0 {
			t.Fatalf("%s: resumed search restored nothing from the probe log", spec)
		}
		sameSearch(t, spec.String(), resumed, uninterrupted)
		if resumed.Probes+resumed.ResumedProbes != uninterrupted.Probes {
			t.Fatalf("%s: resumed %d+%d probes != uninterrupted %d", spec, resumed.Probes, resumed.ResumedProbes, uninterrupted.Probes)
		}
		third, err := SearchGraph(g, cfg.Lat, space, spec, SearchOptions{MicroOps: microOps, ExploreOptions: ExploreOptions{
			Checkpoint: &Checkpoint{Dir: dir},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if third.Probes != 0 || third.ResumedProbes != uninterrupted.Probes {
			t.Fatalf("%s: completed log replay probed %d live, restored %d (want 0, %d)",
				spec, third.Probes, third.ResumedProbes, uninterrupted.Probes)
		}
		sameSearch(t, spec.String()+" full replay", third, uninterrupted)
	}
}

// probeFiles lists the published probe-log chunks in dir.
func probeFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		if strings.HasPrefix(de.Name(), probePrefix) {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

// TestSearchProbeLogCorruptionAndForeign pins the probe log's two failure
// contracts: a corrupt chunk is silently re-probed; a healthy log written by
// a different search (changed axis values) is a hard error, never mixed in.
func TestSearchProbeLogCorruptionAndForeign(t *testing.T) {
	const microOps = 2500
	cfg, _, g, _ := searchSubstrate(t, "437.leslie3d", 11, microOps)
	space := searchSpaces()[1]
	spec := &SearchSpec{Mode: SearchHalving}
	dir := t.TempDir()
	opts := SearchOptions{MicroOps: microOps, ExploreOptions: ExploreOptions{Checkpoint: &Checkpoint{Dir: dir}}}
	clean, err := SearchGraph(g, cfg.Lat, space, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	files := probeFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no probe-log chunks written")
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := SearchGraph(g, cfg.Lat, space, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Probes == 0 {
		t.Fatal("corrupt chunk was not re-probed")
	}
	sameSearch(t, "corrupt chunk recovery", recovered, clean)

	foreign := &Space{Axes: []Axis{
		{Event: stacks.L1D, Values: []float64{1, 2, 3, 4}},
		{Event: stacks.FpAdd, Values: []float64{6, 2, 5}}, // 5 instead of 4
	}}
	if _, err := SearchGraph(g, cfg.Lat, foreign, spec, opts); err == nil || !strings.Contains(err.Error(), "different search") {
		t.Fatalf("foreign probe log accepted: %v", err)
	}
}

// TestSearchProbeLogRemoveOnSuccess checks a completed search cleans its
// probe log when asked, and that a crashed one keeps it.
func TestSearchProbeLogRemoveOnSuccess(t *testing.T) {
	const microOps = 2500
	cfg, _, g, _ := searchSubstrate(t, "437.leslie3d", 11, microOps)
	space := searchSpaces()[0]
	dir := filepath.Join(t.TempDir(), "probes")
	_, err := SearchGraph(g, cfg.Lat, space, &SearchSpec{Mode: SearchHalving}, SearchOptions{
		MicroOps:       microOps,
		ExploreOptions: ExploreOptions{Checkpoint: &Checkpoint{Dir: dir, RemoveOnSuccess: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("probe-log dir survived RemoveOnSuccess: %v", err)
	}
}

// TestSearchMaxRounds checks the round cap stops the search early and marks
// it unconverged rather than pretending exactness.
func TestSearchMaxRounds(t *testing.T) {
	const microOps = 2500
	cfg, _, g, _ := searchSubstrate(t, "437.leslie3d", 11, microOps)
	space := searchSpaces()[2]
	full, err := SearchGraph(g, cfg.Lat, space, &SearchSpec{Mode: SearchPareto}, SearchOptions{MicroOps: microOps})
	if err != nil {
		t.Fatal(err)
	}
	if full.Rounds < 2 {
		t.Skipf("space converges in %d round(s); cap has nothing to cut", full.Rounds)
	}
	capped, err := SearchGraph(g, cfg.Lat, space, &SearchSpec{Mode: SearchPareto, MaxRounds: 1}, SearchOptions{MicroOps: microOps})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Converged {
		t.Fatal("round-capped search claims convergence")
	}
	if capped.Rounds != 1 {
		t.Fatalf("capped search ran %d rounds, want 1", capped.Rounds)
	}
}
