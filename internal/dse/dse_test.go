package dse

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/stacks"
	"repro/internal/workload"
)

func space2x3() Space {
	return Space{Axes: []Axis{
		{Event: stacks.L1D, Values: []float64{2, 4}},
		{Event: stacks.FpAdd, Values: []float64{2, 4, 6}},
	}}
}

func TestSpaceEnumeration(t *testing.T) {
	sp := space2x3()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 6 {
		t.Fatalf("Size = %d", sp.Size())
	}
	base := config.Baseline().Lat
	pts := sp.Enumerate(base)
	seen := map[[2]float64]bool{}
	for _, p := range pts {
		seen[[2]float64{p[stacks.L1D], p[stacks.FpAdd]}] = true
		// Untouched events keep their baseline values.
		if p[stacks.MemD] != base[stacks.MemD] {
			t.Fatal("enumeration leaked into other events")
		}
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d distinct points, want 6", len(seen))
	}
}

func TestSpaceValidate(t *testing.T) {
	bad := []Space{
		{},
		{Axes: []Axis{{Event: stacks.Base, Values: []float64{1}}}},
		{Axes: []Axis{{Event: stacks.L1D, Values: nil}}},
		{Axes: []Axis{{Event: stacks.L1D, Values: []float64{-2}}}},
	}
	for i, sp := range bad {
		if sp.Validate() == nil {
			t.Errorf("case %d: invalid space accepted", i)
		}
	}
}

func TestExplorersAgreeWithTheirEngines(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("444.namd")
	uops := workload.Stream(prof, 3, 4000)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sp := space2x3()
	pts := sp.Enumerate(cfg.Lat)

	rp := ExploreRpStacks(a, pts)
	gr := ExploreGraph(g, pts)
	if len(rp.Results) != len(pts) || len(gr.Results) != len(pts) {
		t.Fatal("result counts wrong")
	}
	for i, p := range pts {
		p := p
		if rp.Results[i].Cycles != a.Predict(&p) {
			t.Fatalf("point %d: explorer disagrees with Analysis.Predict", i)
		}
		if gr.Results[i].Cycles != float64(g.LongestPath(&p)) {
			t.Fatalf("point %d: explorer disagrees with LongestPath", i)
		}
	}

	sim, err := ExploreSim(cfg, uops[:1500], pts[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Results) != 2 || sim.Results[0].Cycles <= 0 {
		t.Fatal("simulation exploration broken")
	}
}

func TestCrossoverAndTotals(t *testing.T) {
	sim := &Report{PerPoint: 100 * time.Millisecond}
	rp := &Report{Setup: time.Second, PerPoint: time.Millisecond}
	if got := rp.Total(10); got != time.Second+10*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
	// Crossover: setup / (simPP - rpPP) = 1000ms/99ms -> 11 points.
	if n := Crossover(rp, sim, 1000); n != 11 {
		t.Fatalf("crossover = %d, want 11", n)
	}
	never := &Report{Setup: time.Hour, PerPoint: time.Second}
	if n := Crossover(never, sim, 100); n != -1 {
		t.Fatalf("impossible crossover = %d, want -1", n)
	}
}

func TestBestUnder(t *testing.T) {
	rs := []Result{{Cycles: 10}, {Cycles: 20}, {Cycles: 30}}
	if got := BestUnder(rs, 20); len(got) != 2 {
		t.Fatalf("BestUnder kept %d", len(got))
	}
	if got := BestUnder(rs, 5); got != nil {
		t.Fatal("no point meets the budget")
	}
}
