package dse

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/stacks"
)

// search.go — guided exploration over non-materialized design spaces. The
// sweep engines walk every point of a Space; the search layer instead probes
// points lazily and answers three question shapes in O(probes), not O(grid):
//
//   - halving: which design point is fastest (cheapest among ties)?
//   - target: which design point meets a CPI budget at the lowest cost?
//   - pareto: what is the exact Pareto frontier of (cycles, cost)?
//
// Exactness rests on a structural property every latency-domain engine in
// this repo has (and the testing/quick monotonicity properties pin down):
// predicted cycles are monotone non-decreasing in each latency axis. The
// search works in axis-range boxes whose two extreme corners bound every
// interior point's cycles from both sides (and, because the cost model is
// separable and strictly decreasing per axis, bound its cost for free,
// without probing). A box is pruned when its bounds prove it cannot beat the
// incumbent, squeezed when both corners agree (the whole box is a cycles
// plateau), and bisected along its widest axis otherwise — successive
// halving of the surviving axis ranges. On any space small enough to
// materialize, each mode returns exactly the exhaustive sweep's answer; the
// differential tests prove it bit-for-bit across scalar, batched, parallel
// and crash-resumed executions.
//
// Probes are evaluated in rounds through the same batched evaluators the
// sweeps use, so results are bit-identical at every worker count and lane
// width, a round can be served by the sweep fleet (SearchOptions.RoundEval),
// and completed rounds persist into a probe log (SearchOptions.Checkpoint)
// that a restarted search resumes from: the driver is deterministic, so the
// replayed prefix re-derives the same decisions from cached probes without
// touching the engine.

// maxSearchIndexBits bounds the canonical grid size a search accepts, so a
// design-point index always fits uint64 with headroom for arithmetic.
const maxSearchIndexBits = 62

// maxSearchEnumerate bounds SearchPlan.Enumerate: materializing more points
// than this is exactly what the search layer exists to avoid.
const maxSearchEnumerate = 1 << 22

// searchDefaultBatch is the lane width search rounds use when
// SearchOptions.BatchSize is zero. Rounds are small (a few corners per
// active box), so the sweeps' timing-probe autotune has nothing to measure;
// a fixed modest width keeps batched evaluators on their fast path without
// over-allocating lanes that mostly idle.
const searchDefaultBatch = 8

// planAxis is one canonical search axis: the Space axis with its candidate
// values sorted ascending and its cost weight resolved.
type planAxis struct {
	event  stacks.Event
	vals   []float64 // strictly increasing
	weight float64
}

// SearchPlan is a Space compiled for guided search: axes in declared order
// with values sorted ascending (the canonical order monotonicity is stated
// in), row-major strides assigning every design point a canonical index, and
// the resolved cost model. The canonical index is the search's tie-break of
// last resort, making every answer fully deterministic.
type SearchPlan struct {
	spec    *SearchSpec
	axes    []planAxis
	strides []uint64
	size    uint64
}

// NewSearchPlan compiles space for the guided search spec names. Beyond
// Space.Validate it requires: no duplicate values within an axis (the
// canonical order must be strict for range bisection to converge), a grid
// size that fits a canonical index, and cost weights naming real axes.
func NewSearchPlan(space *Space, spec *SearchSpec) (*SearchPlan, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	weights := make(map[stacks.Event]float64, len(spec.Cost))
	for _, c := range spec.Cost {
		weights[c.Event] = c.Weight
	}
	p := &SearchPlan{
		spec:    spec,
		axes:    make([]planAxis, len(space.Axes)),
		strides: make([]uint64, len(space.Axes)),
		size:    1,
	}
	for i, a := range space.Axes {
		vals := append([]float64(nil), a.Values...)
		sort.Float64s(vals)
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				return nil, fmt.Errorf("dse: search axis %s has duplicate value %g", a.Event, vals[k])
			}
		}
		w := 1.0
		if ww, ok := weights[a.Event]; ok {
			w = ww
			delete(weights, a.Event)
		}
		p.axes[i] = planAxis{event: a.Event, vals: vals, weight: w}
		p.strides[i] = p.size
		if p.size > (uint64(1)<<maxSearchIndexBits)/uint64(len(vals)) {
			return nil, fmt.Errorf("dse: design space exceeds 2^%d points; cannot index", maxSearchIndexBits)
		}
		p.size *= uint64(len(vals))
	}
	for ev := range weights {
		return nil, fmt.Errorf("dse: cost weight for %s does not match any axis", ev)
	}
	return p, nil
}

// GridPoints returns the full design-point count the search avoids
// materializing.
func (p *SearchPlan) GridPoints() uint64 { return p.size }

// indexOf returns the canonical index of per-axis value coordinates.
func (p *SearchPlan) indexOf(coords []int) uint64 {
	var idx uint64
	for i, c := range coords {
		idx += uint64(c) * p.strides[i]
	}
	return idx
}

// coordsOf decomposes a canonical index into per-axis value coordinates.
func (p *SearchPlan) coordsOf(idx uint64, coords []int) []int {
	coords = coords[:0]
	for _, a := range p.axes {
		n := uint64(len(a.vals))
		coords = append(coords, int(idx%n))
		idx /= n
	}
	return coords
}

// PointAt materializes the design point with canonical index idx on top of
// the base latency assignment.
func (p *SearchPlan) PointAt(base stacks.Latencies, idx uint64) stacks.Latencies {
	l := base
	for _, a := range p.axes {
		n := uint64(len(a.vals))
		l[a.event] = a.vals[idx%n]
		idx /= n
	}
	return l
}

// Cost evaluates the plan's cost model on a latency assignment: the
// weighted sum over axes of (axis maximum − point latency), zero at the
// all-slowest corner and growing as latencies are bought down. The
// summation order is the axis order, so equal inputs cost bit-equal values
// everywhere the plan is consulted.
func (p *SearchPlan) Cost(l stacks.Latencies) float64 {
	var cost float64
	for _, a := range p.axes {
		cost += a.weight * (a.vals[len(a.vals)-1] - l[a.event])
	}
	return cost
}

// costAt is Cost on per-axis coordinates, same summation order and
// arithmetic as Cost so the two agree bit-for-bit on grid points.
func (p *SearchPlan) costAt(coords []int) float64 {
	var cost float64
	for i, a := range p.axes {
		cost += a.weight * (a.vals[len(a.vals)-1] - a.vals[coords[i]])
	}
	return cost
}

// Enumerate materializes every design point in canonical-index order — the
// order Exhaustive folds results in. It refuses grids past a materialization
// bound; spaces beyond it are what the search modes are for.
func (p *SearchPlan) Enumerate(base stacks.Latencies) ([]stacks.Latencies, error) {
	if p.size > maxSearchEnumerate {
		return nil, fmt.Errorf("dse: %d design points exceed the materialization bound %d", p.size, maxSearchEnumerate)
	}
	out := make([]stacks.Latencies, p.size)
	for i := range out {
		out[i] = p.PointAt(base, uint64(i))
	}
	return out, nil
}

// SearchPoint is one design point a search returns: the optimum, a target
// hit, or one frontier member, with its predicted cycles and model cost.
// When the search verified it against an oracle, VerifyCycles holds the
// oracle's ground truth and VerifyErrPct the CPI error in percent.
type SearchPoint struct {
	Index        uint64           `json:"index"`
	Lat          stacks.Latencies `json:"lat"`
	Cycles       float64          `json:"cycles"`
	Cost         float64          `json:"cost"`
	VerifyCycles float64          `json:"verify_cycles,omitempty"`
	VerifyErrPct float64          `json:"verify_err_pct,omitempty"`
}

// SearchResult is the outcome of one guided search.
type SearchResult struct {
	// Mode and Method name the search mode and probing engine.
	Mode   string `json:"mode"`
	Method string `json:"method"`
	// GridPoints is the full factorial size the search did not materialize.
	GridPoints uint64 `json:"grid_points"`
	// Probes counts design points actually evaluated this run;
	// ResumedProbes counts points restored from the probe log instead.
	Probes        int `json:"probes"`
	ResumedProbes int `json:"resumed_probes,omitempty"`
	// Rounds is the number of probe rounds the driver ran; PeakBoxes the
	// largest number of simultaneously surviving axis-range boxes. Probes
	// is bounded by 2·Rounds·PeakBoxes — the grid size never enters.
	Rounds    int `json:"rounds"`
	PeakBoxes int `json:"peak_boxes"`
	// Converged is false only when SearchSpec.MaxRounds stopped the search
	// before it proved exactness; the result is then best-effort.
	Converged bool `json:"converged"`
	// Feasible reports whether a target search found any point meeting the
	// budget (true for other modes).
	Feasible bool `json:"feasible"`
	// FastestCycles is the predicted cycle count of the all-fastest corner
	// (canonical index 0), probed in round 1 by every mode: the floor of
	// what the space can reach.
	FastestCycles float64 `json:"fastest_cycles"`
	// Best is the single answer of halving and target searches (nil for an
	// infeasible target). Frontier is the pareto answer, sorted by cycles
	// ascending.
	Best     *SearchPoint  `json:"best,omitempty"`
	Frontier []SearchPoint `json:"frontier,omitempty"`
	// Verified reports that every returned point was re-derived through
	// SearchOptions.Verify; VerifyMaxErrPct is the worst CPI error seen.
	Verified       bool    `json:"verified,omitempty"`
	VerifyMaxErrPct float64 `json:"verify_max_err_pct,omitempty"`
	// Setup, Wall and Batch mirror Report: one-time engine preparation,
	// search wall-clock, and the resolved probe lane width.
	Setup time.Duration `json:"setup_ns"`
	Wall  time.Duration `json:"wall_ns"`
	Batch int           `json:"batch"`
	// Fingerprint is the search identity hash binding engine inputs, space
	// and spec; set on probe-logged searches (and with NeedFingerprint).
	Fingerprint []byte `json:"fingerprint,omitempty"`
}

// SearchOptions configures how a search probes its engine. The embedded
// ExploreOptions keep their sweep meaning per probe round: rounds are
// sharded over Parallelism workers in BatchSize lanes, cancelled between
// chunks by Context, and traced under TraceParent. Checkpoint persists the
// probe log (one file per completed round) that a restarted identical
// search resumes from.
type SearchOptions struct {
	ExploreOptions
	// MicroOps is the probed trace's µop count, required by target mode to
	// turn SearchSpec.TargetCPI into a cycle budget.
	MicroOps int
	// Verify, when non-nil, re-derives every returned point's cycle count
	// through an accuracy oracle (internal/audit's SimOracle or
	// GraphOracle) after the search converges, recording per-point and
	// worst-case CPI error on the result. A verification failure fails the
	// search.
	Verify func(stacks.Latencies) (float64, error)
	// RoundEval, when non-nil, replaces the engine's in-process round
	// evaluation: it receives one round's probe list and must return the
	// engine-identical cycle count per point. The service uses it to serve
	// search rounds through the sweep fleet's chunk leasing; tests use it
	// to search synthetic monotone surfaces.
	RoundEval func(ctx context.Context, points []stacks.Latencies) ([]float64, error)
}

// paretoInsert offers a probed point to a mutually non-dominated archive:
// the point is dropped when a member weakly dominates it (an equal pair
// keeps its first, deterministic witness), and members the point dominates
// are evicted. Because members are mutually non-dominated, a dominated
// offer evicts nobody, which makes the in-place filtering safe.
func paretoInsert(archive []SearchPoint, p SearchPoint) []SearchPoint {
	keep := archive[:0]
	for _, a := range archive {
		if a.Cycles <= p.Cycles && a.Cost <= p.Cost {
			return archive // weakly dominated: the pair is already represented
		}
		if !(p.Cycles <= a.Cycles && p.Cost <= a.Cost) {
			keep = append(keep, a)
		}
	}
	return append(keep, p)
}

// incumbent is the best scalar answer seen so far under a lexicographic
// order, with the canonical index as the deterministic tie-break of last
// resort.
type incumbent struct {
	ok   bool
	a, b float64 // mode's primary and secondary keys
	idx  uint64
}

func (in *incumbent) offer(a, b float64, idx uint64) {
	if !in.ok || a < in.a || (a == in.a && (b < in.b || (b == in.b && idx < in.idx))) {
		in.ok, in.a, in.b, in.idx = true, a, b, idx
	}
}

// box is one surviving region of the search: per-axis inclusive coordinate
// ranges in the canonical (sorted-values) space.
type box struct {
	lo, hi []int
}

// searcher carries one running search.
type searcher struct {
	plan   *SearchPlan
	base   stacks.Latencies
	opts   *SearchOptions
	res    *SearchResult
	budget float64 // target mode cycle budget
	cache  map[uint64]float64
	eval   func(parent uint64, pts []stacks.Latencies, out []float64) error
	logDir string
	fp     []byte
	parent uint64 // search root span
	coords []int  // scratch
}

// probeRound evaluates every not-yet-cached index in want (sorted, deduped)
// through the engine, caches the results, and appends one probe-log chunk.
func (s *searcher) probeRound(want []uint64) error {
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	pending := want[:0]
	var last uint64
	for k, idx := range want {
		if k > 0 && idx == last {
			continue
		}
		last = idx
		if _, ok := s.cache[idx]; !ok {
			pending = append(pending, idx)
		}
	}
	if len(pending) == 0 {
		return nil // fully replayed round: the probe log already had it
	}
	pts := make([]stacks.Latencies, len(pending))
	for k, idx := range pending {
		pts[k] = s.plan.PointAt(s.base, idx)
	}
	out := make([]float64, len(pending))
	sp := s.opts.Tracer.StartChild(s.parent, obs.CatDSE, obs.NameRound)
	sp.SetArg(obs.ArgPoints, int64(len(pending)))
	var err error
	if s.opts.RoundEval != nil {
		var got []float64
		got, err = s.opts.RoundEval(s.opts.Context, pts)
		if err == nil && len(got) != len(pts) {
			err = fmt.Errorf("dse: search round evaluator returned %d cycles for %d points", len(got), len(pts))
		}
		if err == nil {
			copy(out, got)
		}
	} else {
		err = s.eval(sp.ID(), pts, out)
	}
	sp.End()
	if err != nil {
		return err
	}
	for k, idx := range pending {
		s.cache[idx] = out[k]
	}
	s.res.Probes += len(pending)
	if s.logDir != "" {
		if err := saveProbeChunk(s.logDir, s.fp, pending, out); err != nil {
			return err
		}
	}
	return nil
}

// cornerIdx returns the canonical indices of a box's two extreme corners.
func (s *searcher) cornerIdx(b box) (lo, hi uint64) {
	return s.plan.indexOf(b.lo), s.plan.indexOf(b.hi)
}

// split bisects b along its widest axis into two child boxes.
func split(b box, next *[]box) {
	axis, width := 0, 0
	for i := range b.lo {
		if w := b.hi[i] - b.lo[i]; w > width {
			axis, width = i, w
		}
	}
	mid := b.lo[axis] + (b.hi[axis]-b.lo[axis])/2
	left := box{lo: append([]int(nil), b.lo...), hi: append([]int(nil), b.hi...)}
	right := box{lo: append([]int(nil), b.lo...), hi: append([]int(nil), b.hi...)}
	left.hi[axis] = mid
	right.lo[axis] = mid + 1
	*next = append(*next, left, right)
}

// run drives the round loop: probe every active box's corners, then prune,
// squeeze or bisect each box under the mode's rule. Decisions depend only
// on probed cycle values, which the engines produce bit-identically at
// every worker count and lane width — so the probe set, the probe log and
// the answer are deterministic across executions and resumes.
func (s *searcher) run() error {
	full := box{lo: make([]int, len(s.plan.axes)), hi: make([]int, len(s.plan.axes))}
	for i, a := range s.plan.axes {
		full.hi[i] = len(a.vals) - 1
	}
	var best incumbent        // halving: (cycles, cost); target: (cost, cycles)
	var archive []SearchPoint // pareto: mutually non-dominated (cycles, cost) witnesses
	mode := s.plan.spec.Mode

	point := func(idx uint64, cycles, cost float64) SearchPoint {
		return SearchPoint{Index: idx, Lat: s.plan.PointAt(s.base, idx), Cycles: cycles, Cost: cost}
	}
	// covered reports whether an archive member weakly dominates the whole
	// box given its cycles floor and (free) cost floor — every interior
	// pair is then already represented and the box can be pruned.
	covered := func(cLo, costLB float64) bool {
		for _, a := range archive {
			if a.Cycles <= cLo && a.Cost <= costLB {
				return true
			}
		}
		return false
	}

	active := []box{full}
	for len(active) > 0 {
		if s.plan.spec.MaxRounds > 0 && s.res.Rounds >= s.plan.spec.MaxRounds {
			s.res.Converged = false
			break
		}
		s.res.Rounds++
		if len(active) > s.res.PeakBoxes {
			s.res.PeakBoxes = len(active)
		}
		want := make([]uint64, 0, 2*len(active))
		for _, b := range active {
			lo, hi := s.cornerIdx(b)
			want = append(want, lo, hi)
		}
		if err := s.probeRound(want); err != nil {
			return err
		}
		var next []box
		for _, b := range active {
			loI, hiI := s.cornerIdx(b)
			cLo, cHi := s.cache[loI], s.cache[hiI]
			costLo, costHi := s.plan.costAt(b.lo), s.plan.costAt(b.hi)
			switch mode {
			case SearchHalving:
				// Minimize (cycles, cost, index). Monotonicity bounds every
				// interior point's cycles by [cLo, cHi] and its cost is
				// strictly above costHi, so after offering both corners a
				// box that cannot beat the incumbent is pruned exactly.
				best.offer(cLo, costLo, loI)
				best.offer(cHi, costHi, hiI)
				if cLo == cHi {
					break // cycles plateau: its cheapest point is the hi corner, offered
				}
				if cLo > best.a || (cLo == best.a && costHi >= best.b) {
					break
				}
				split(b, &next)
			case SearchTarget:
				// Minimize (cost, cycles, index) subject to cycles ≤ budget.
				if cLo > s.budget {
					break // the box's fastest corner misses the budget: all infeasible
				}
				if cHi <= s.budget {
					// Whole box feasible; its unique cheapest point is the
					// hi corner.
					best.offer(costHi, cHi, hiI)
					best.offer(costLo, cLo, loI)
					break
				}
				best.offer(costLo, cLo, loI)
				if best.ok && costHi >= best.a {
					// Feasible interior points cost strictly more than the
					// (infeasible) hi corner, so none can beat the incumbent.
					break
				}
				split(b, &next)
			case SearchPareto:
				archive = paretoInsert(archive, point(loI, cLo, costLo))
				archive = paretoInsert(archive, point(hiI, cHi, costHi))
				if cLo == cHi {
					break // plateau: (cLo, costHi) weakly dominates the box, and is archived
				}
				if covered(cLo, costHi) {
					break
				}
				split(b, &next)
			}
		}
		active = next
	}

	switch mode {
	case SearchHalving:
		p := point(best.idx, best.a, best.b)
		s.res.Best = &p
	case SearchTarget:
		if best.ok {
			p := point(best.idx, best.b, best.a)
			s.res.Best = &p
		} else {
			s.res.Feasible = false
		}
	case SearchPareto:
		sort.Slice(archive, func(i, j int) bool { return archive[i].Cycles < archive[j].Cycles })
		s.res.Frontier = archive
	}
	s.res.FastestCycles = s.cache[0]
	return nil
}

// verify re-derives every returned point through opts.Verify, recording
// per-point and worst-case CPI error.
func (s *searcher) verify() error {
	if s.opts.Verify == nil {
		return nil
	}
	check := func(p *SearchPoint) error {
		sp := s.opts.Tracer.StartChild(s.parent, obs.CatDSE, obs.NameTruth)
		truth, err := s.opts.Verify(p.Lat)
		sp.End()
		if err != nil {
			return fmt.Errorf("dse: verifying search point %d: %w", p.Index, err)
		}
		p.VerifyCycles = truth
		switch {
		case truth != 0:
			p.VerifyErrPct = math.Abs(p.Cycles-truth) / truth * 100
		case p.Cycles != 0:
			p.VerifyErrPct = 100
		}
		if p.VerifyErrPct > s.res.VerifyMaxErrPct {
			s.res.VerifyMaxErrPct = p.VerifyErrPct
		}
		return nil
	}
	if s.res.Best != nil {
		if err := check(s.res.Best); err != nil {
			return err
		}
	}
	for i := range s.res.Frontier {
		if err := check(&s.res.Frontier[i]); err != nil {
			return err
		}
	}
	s.res.Verified = true
	return nil
}

// runSearch is the engine-independent search driver. salt streams the
// engine's identity into the search fingerprint; eval evaluates one round
// in-process (nil only when opts.RoundEval serves every round).
func runSearch(method string, salt func(io.Writer) error, base stacks.Latencies, space *Space, spec *SearchSpec, opts SearchOptions, batch int, eval func(parent uint64, pts []stacks.Latencies, out []float64) error) (*SearchResult, error) {
	plan, err := NewSearchPlan(space, spec)
	if err != nil {
		return nil, err
	}
	if eval == nil && opts.RoundEval == nil {
		return nil, fmt.Errorf("dse: search has no round evaluator")
	}
	s := &searcher{
		plan:  plan,
		base:  base,
		opts:  &opts,
		cache: make(map[uint64]float64),
		eval:  eval,
		res: &SearchResult{
			Mode:       spec.Mode,
			Method:     method,
			GridPoints: plan.GridPoints(),
			Converged:  true,
			Feasible:   true,
			Setup:      opts.Setup,
			Batch:      batch,
		},
	}
	if spec.Mode == SearchTarget {
		if opts.MicroOps <= 0 {
			return nil, fmt.Errorf("dse: target search needs SearchOptions.MicroOps to turn CPI %g into cycles", spec.TargetCPI)
		}
		if spec.TargetCPI <= 0 {
			return nil, fmt.Errorf("dse: target search needs a positive cpi budget")
		}
		s.budget = spec.TargetCPI * float64(opts.MicroOps)
	}
	root := opts.Tracer.StartChild(opts.TraceParent, obs.CatDSE, obs.NameSearch)
	root.SetDetail(method + "/" + spec.Mode)
	defer root.End()
	s.parent = root.ID()

	if opts.Checkpoint != nil || opts.NeedFingerprint {
		fp, err := searchFingerprint(method, salt, plan, base)
		if err != nil {
			return nil, err
		}
		s.fp = fp
		s.res.Fingerprint = fp
	}
	if opts.Checkpoint != nil {
		s.logDir = opts.Checkpoint.Dir
		restored, err := loadProbeLog(s.logDir, s.fp, plan.GridPoints(), s.cache, opts.Tracer, s.parent)
		if err != nil {
			return nil, err
		}
		s.res.ResumedProbes = restored
	}

	start := time.Now()
	if err := s.run(); err != nil {
		return nil, err
	}
	if err := s.verify(); err != nil {
		return nil, err
	}
	s.res.Wall = time.Since(start)
	root.SetArg(obs.ArgPoints, int64(s.res.Probes))
	if opts.Checkpoint != nil && opts.Checkpoint.RemoveOnSuccess {
		removeProbeLog(s.logDir)
	}
	return s.res, nil
}

// SearchWith runs a guided search whose every round is evaluated by
// opts.RoundEval — no in-process engine at all. It is the substrate of the
// property tests (searching synthetic monotone surfaces) and of callers
// that fully delegate probing.
func SearchWith(base stacks.Latencies, space *Space, spec *SearchSpec, opts SearchOptions) (*SearchResult, error) {
	if opts.RoundEval == nil {
		return nil, fmt.Errorf("dse: SearchWith needs SearchOptions.RoundEval")
	}
	return runSearch("custom", nil, base, space, spec, opts, 1, nil)
}

// SearchGraph runs a guided search probing design points through a prebuilt
// dependence graph, with the same per-worker scalar/batched evaluators and
// bit-identity guarantees as ExploreGraphOpts.
func SearchGraph(g *depgraph.Graph, base stacks.Latencies, space *Space, spec *SearchSpec, opts SearchOptions) (*SearchResult, error) {
	nw := opts.workerCount(math.MaxInt)
	width := opts.BatchSize
	if width <= 0 {
		width = searchDefaultBatch
		if nodes := g.NumNodes(); nodes > 0 && width > maxGraphBatchInt64s/nodes {
			if width = maxGraphBatchInt64s / nodes; width < 1 {
				width = 1
			}
		}
	}
	if width <= 1 {
		evals := make([]*depgraph.Evaluator, nw)
		for i := range evals {
			evals[i] = g.NewEvaluator()
		}
		return runSearch("graph", g.WriteFingerprint, base, space, spec, opts, 1,
			scalarRoundEval(opts, func(worker int, pt *stacks.Latencies) (float64, error) {
				return float64(evals[worker].LongestPath(pt)), nil
			}))
	}
	bes := make([]*depgraph.BatchEvaluator, nw)
	sinks := make([][]int64, nw)
	for i := range bes {
		bes[i] = g.NewBatchEvaluator(width)
		sinks[i] = make([]int64, width)
	}
	return runSearch("graph", g.WriteFingerprint, base, space, spec, opts, width,
		batchRoundEval(opts, width, func(worker int, lats []stacks.Latencies, out []float64) error {
			sink := sinks[worker][:len(lats)]
			bes[worker].LongestPaths(lats, sink)
			for t, v := range sink {
				out[t] = float64(v)
			}
			return nil
		}))
}

// SearchRpStacks runs a guided search probing design points through a
// prebuilt RpStacks analysis.
func SearchRpStacks(a *core.Analysis, base stacks.Latencies, space *Space, spec *SearchSpec, opts SearchOptions) (*SearchResult, error) {
	salt := func(w io.Writer) error { return core.WriteAnalysis(w, a) }
	width := opts.BatchSize
	if width <= 0 {
		width = searchDefaultBatch
	}
	if width <= 1 {
		return runSearch("rpstacks", salt, base, space, spec, opts, 1,
			scalarRoundEval(opts, func(_ int, pt *stacks.Latencies) (float64, error) {
				return a.Predict(pt), nil
			}))
	}
	nw := opts.workerCount(math.MaxInt)
	bps := make([]*core.BatchPredictor, nw)
	for i := range bps {
		bps[i] = a.NewBatchPredictor(width)
	}
	return runSearch("rpstacks", salt, base, space, spec, opts, width,
		batchRoundEval(opts, width, func(worker int, lats []stacks.Latencies, out []float64) error {
			bps[worker].Predict(lats, out)
			return nil
		}))
}

// SearchSim runs a guided search measuring design points by re-running the
// timing simulator — ground truth per probe, at ground-truth cost.
func SearchSim(cfg *config.Config, uops []isa.MicroOp, space *Space, spec *SearchSpec, opts SearchOptions) (*SearchResult, error) {
	return runSearch("simulator", simSalt(cfg, uops), cfg.Lat, space, spec, opts, 1,
		scalarRoundEval(opts, func(_ int, pt *stacks.Latencies) (float64, error) {
			c := cfg.Clone()
			c.Lat = *pt
			s, err := cpu.New(c)
			if err != nil {
				return 0, err
			}
			tr, err := s.Run(uops)
			if err != nil {
				return 0, err
			}
			return float64(tr.Cycles), nil
		}))
}

// roundSweep shards one round's probe list over the configured workers
// through the same chunked sweep the Explore engines use, so a round
// inherits their parallel scheduling, chunk spans and chunk-granular
// cancellation.
func roundSweep(opts SearchOptions, parent uint64, n int, eval func(worker, lo, hi int) error) error {
	eo := opts.ExploreOptions
	eo.Checkpoint = nil // the probe log persists rounds, not chunks
	eo.TraceParent = parent
	_, _, err := sweep(n, eo, eval)
	return err
}

// scalarRoundEval adapts a per-worker scalar point evaluator into the
// search's round evaluator.
func scalarRoundEval(opts SearchOptions, point func(worker int, pt *stacks.Latencies) (float64, error)) func(parent uint64, pts []stacks.Latencies, out []float64) error {
	return func(parent uint64, pts []stacks.Latencies, out []float64) error {
		return roundSweep(opts, parent, len(pts), func(worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				c, err := point(worker, &pts[i])
				if err != nil {
					return err
				}
				out[i] = c
			}
			return nil
		})
	}
}

// batchRoundEval adapts a per-worker K-wide batch evaluator into the
// search's round evaluator, walking each claimed chunk in width-sized lanes
// exactly as the batched sweeps do.
func batchRoundEval(opts SearchOptions, width int, batch func(worker int, lats []stacks.Latencies, out []float64) error) func(parent uint64, pts []stacks.Latencies, out []float64) error {
	return func(parent uint64, pts []stacks.Latencies, out []float64) error {
		return roundSweep(opts, parent, len(pts), func(worker, lo, hi int) error {
			for i := lo; i < hi; i += width {
				j := i + width
				if j > hi {
					j = hi
				}
				if err := batch(worker, pts[i:j], out[i:j]); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// Exhaustive folds plan-ordered cycle counts (cycles[i] is the prediction
// of canonical index i, e.g. an Explore sweep over plan.Enumerate's points)
// into the answer the search mode must return. It is the reference of the
// exhaustive-equivalence differential layer and of rpexplore's
// -search-selfcheck, computed by the straightforward full scan the search
// exists to avoid.
func (p *SearchPlan) Exhaustive(cycles []float64, microOps int) (*SearchResult, error) {
	if uint64(len(cycles)) != p.size {
		return nil, fmt.Errorf("dse: exhaustive reference wants %d cycle counts, got %d", p.size, len(cycles))
	}
	res := &SearchResult{
		Mode:       p.spec.Mode,
		Method:     "exhaustive",
		GridPoints: p.size,
		Probes:     len(cycles),
		Rounds:     1,
		Converged:  true,
		Feasible:   true,
	}
	if len(cycles) > 0 {
		res.FastestCycles = cycles[0]
	}
	var budget float64
	if p.spec.Mode == SearchTarget {
		if microOps <= 0 {
			return nil, fmt.Errorf("dse: target reference needs the µop count")
		}
		budget = p.spec.TargetCPI * float64(microOps)
	}
	var best incumbent
	var frontier []SearchPoint
	coords := make([]int, 0, len(p.axes))
	for i, c := range cycles {
		idx := uint64(i)
		coords = p.coordsOf(idx, coords)
		cost := p.costAt(coords)
		switch p.spec.Mode {
		case SearchHalving:
			best.offer(c, cost, idx)
		case SearchTarget:
			if c <= budget {
				best.offer(cost, c, idx)
			}
		case SearchPareto:
			frontier = paretoInsert(frontier, SearchPoint{Index: idx, Cycles: c, Cost: cost})
		}
	}
	switch p.spec.Mode {
	case SearchHalving:
		res.Best = &SearchPoint{Index: best.idx, Cycles: best.a, Cost: best.b}
	case SearchTarget:
		if best.ok {
			res.Best = &SearchPoint{Index: best.idx, Cycles: best.b, Cost: best.a}
		} else {
			res.Feasible = false
		}
	case SearchPareto:
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].Cycles < frontier[j].Cycles })
		res.Frontier = frontier
	}
	return res, nil
}

// EqualAnswers reports whether two search results agree on the answer —
// the fields a correct search must reproduce exactly: convergence,
// feasibility, the fastest-corner floor, the optimum point (bit-equal
// cycles, cost and canonical index) or the full frontier pair list. Probe
// counts, timings and witnesses of frontier pairs (which may legitimately
// differ between a lazy search and a full scan when several points share a
// pair) are not compared.
func EqualAnswers(got, want *SearchResult) error {
	if got.Mode != want.Mode {
		return fmt.Errorf("mode %q != %q", got.Mode, want.Mode)
	}
	if !got.Converged || !want.Converged {
		return fmt.Errorf("unconverged result (got %v, want %v)", got.Converged, want.Converged)
	}
	if got.GridPoints != want.GridPoints {
		return fmt.Errorf("grid %d != %d", got.GridPoints, want.GridPoints)
	}
	if got.FastestCycles != want.FastestCycles {
		return fmt.Errorf("fastest corner %g != %g", got.FastestCycles, want.FastestCycles)
	}
	if got.Feasible != want.Feasible {
		return fmt.Errorf("feasible %v != %v", got.Feasible, want.Feasible)
	}
	if (got.Best == nil) != (want.Best == nil) {
		return fmt.Errorf("best presence %v != %v", got.Best != nil, want.Best != nil)
	}
	if got.Best != nil {
		g, w := got.Best, want.Best
		if g.Index != w.Index || g.Cycles != w.Cycles || g.Cost != w.Cost {
			return fmt.Errorf("best (idx %d, cycles %g, cost %g) != (idx %d, cycles %g, cost %g)",
				g.Index, g.Cycles, g.Cost, w.Index, w.Cycles, w.Cost)
		}
	}
	if len(got.Frontier) != len(want.Frontier) {
		return fmt.Errorf("frontier size %d != %d", len(got.Frontier), len(want.Frontier))
	}
	for i := range got.Frontier {
		g, w := got.Frontier[i], want.Frontier[i]
		if g.Cycles != w.Cycles || g.Cost != w.Cost {
			return fmt.Errorf("frontier[%d] (cycles %g, cost %g) != (cycles %g, cost %g)", i, g.Cycles, g.Cost, w.Cycles, w.Cost)
		}
	}
	return nil
}
