package dse

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/stacks"
)

// ParseAxisSpec parses the textual axis form shared by cmd/rpexplore's
// repeated -axis flag and the exploration service's JSON job requests:
// "Event=v1,v2,...", e.g. "L1D=1,2,3,4". Values must be finite and
// non-negative; well-formedness across axes (duplicates, optimizability) is
// Space.Validate's job.
func ParseAxisSpec(s string) (Axis, error) {
	name, list, ok := strings.Cut(s, "=")
	if !ok {
		return Axis{}, fmt.Errorf("dse: axis %q: want Event=v1,v2,...", s)
	}
	ev, err := stacks.ParseEvent(strings.TrimSpace(name))
	if err != nil {
		return Axis{}, fmt.Errorf("dse: axis %q: %w", s, err)
	}
	var vals []float64
	for _, field := range strings.Split(list, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return Axis{}, fmt.Errorf("dse: axis %q: bad latency %q", s, field)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return Axis{}, fmt.Errorf("dse: axis %q: latency %g is not a finite non-negative cycle count", s, x)
		}
		vals = append(vals, x)
	}
	return Axis{Event: ev, Values: vals}, nil
}

// SizeWithin returns the design-point count if it does not exceed limit.
// Unlike Size it cannot overflow on adversarial axis lists: the product is
// abandoned as soon as it would pass limit, returning ok == false.
func (s *Space) SizeWithin(limit int) (int, bool) {
	n := 1
	for _, a := range s.Axes {
		if len(a.Values) == 0 {
			continue // Validate rejects this; keep the product well-defined
		}
		if n > limit/len(a.Values) {
			return 0, false
		}
		n *= len(a.Values)
	}
	return n, true
}
