package dse

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/stacks"
)

// ParseAxisSpec parses the textual axis form shared by cmd/rpexplore's
// repeated -axis flag and the exploration service's JSON job requests:
// "Event=v1,v2,...", e.g. "L1D=1,2,3,4". Values must be finite and
// non-negative; well-formedness across axes (duplicates, optimizability) is
// Space.Validate's job.
func ParseAxisSpec(s string) (Axis, error) {
	name, list, ok := strings.Cut(s, "=")
	if !ok {
		return Axis{}, fmt.Errorf("dse: axis %q: want Event=v1,v2,...", s)
	}
	ev, err := stacks.ParseEvent(strings.TrimSpace(name))
	if err != nil {
		return Axis{}, fmt.Errorf("dse: axis %q: %w", s, err)
	}
	var vals []float64
	for _, field := range strings.Split(list, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return Axis{}, fmt.Errorf("dse: axis %q: bad latency %q", s, field)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return Axis{}, fmt.Errorf("dse: axis %q: latency %g is not a finite non-negative cycle count", s, x)
		}
		vals = append(vals, x)
	}
	return Axis{Event: ev, Values: vals}, nil
}

// satMul multiplies two non-negative counts, reporting exact == false and
// saturating at math.MaxInt instead of wrapping when the product overflows.
// Every size computation below goes through it so an adversarial axis list
// can never wrap the point count negative (or, worse, back under a cap).
func satMul(a, b int) (int, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a > math.MaxInt/b {
		return math.MaxInt, false
	}
	return a * b, true
}

// SizeWithin returns the design-point count if it does not exceed limit.
// Unlike Size it reports overflow instead of saturating: the product is
// computed with saturating arithmetic, so a huge axis list can neither wrap
// the count nor slip back under the cap — it returns ok == false.
func (s *Space) SizeWithin(limit int) (int, bool) {
	n, exact := s.SizeSaturating()
	if !exact || n > limit {
		return 0, false
	}
	return n, true
}

// SizeSaturating returns the design-point count with saturating arithmetic:
// exact == true means n is the true product, exact == false means the true
// product overflows int and n is math.MaxInt. It is the overflow-safe form
// of Size for callers that must reason about non-materializable spaces (the
// search layer reports it as the grid size an exhaustive sweep would cost).
func (s *Space) SizeSaturating() (n int, exact bool) {
	n, exact = 1, true
	for _, a := range s.Axes {
		if len(a.Values) == 0 {
			continue // Validate rejects this; keep the product well-defined
		}
		var ok bool
		if n, ok = satMul(n, len(a.Values)); !ok {
			exact = false
		}
	}
	return n, exact
}
