package audit

import (
	"context"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/dse"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// losslessFixture simulates a tiny workload window and builds the lossless
// analysis substrate: no merging, no path cap, one whole-trace segment. Path
// counts grow exponentially without merging, so exactness checks stay on a
// small window (as in core's and dse's lossless tests).
func losslessFixture(t *testing.T) (*config.Config, *depgraph.Graph, *core.Analysis, []stacks.Latencies) {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName("456.hmmer")
	if !ok {
		t.Fatal("unknown workload 456.hmmer")
	}
	uops := workload.Stream(prof, 3, 60)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.DisableMerge = true
	opts.MaxStacks = 0
	opts.SegmentLength = len(tr.Records)
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	// Integer latency grid: integer axes keep both the graph evaluator's
	// per-edge int64 truncation and the stack dot product exact, so the
	// lossless reduction is bitwise.
	var pts []stacks.Latencies
	for _, l1d := range []float64{1, 2, 3, 4} {
		for _, fpAdd := range []float64{2, 4, 6} {
			l := cfg.Lat
			l[stacks.L1D] = l1d
			l[stacks.FpAdd] = fpAdd
			pts = append(pts, l)
		}
	}
	return cfg, g, a, pts
}

func TestSampleDeterministic(t *testing.T) {
	fp := []byte("sweep-fingerprint")
	a := Sample(fp, 42, 100, 0.1, 0)
	b := Sample(fp, 42, 100, 0.1, 0)
	if len(a) != 10 {
		t.Fatalf("sample size %d, want ceil(0.1*100) = 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same fingerprint and seed sampled different sets: %v vs %v", a, b)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("sample not sorted ascending: %v", a)
		}
	}
	seen := false
	for i, v := range Sample(fp, 43, 100, 0.1, 0) {
		if v != a[i] {
			seen = true
		}
	}
	if !seen {
		t.Error("seed 43 selected the same set as seed 42")
	}
	if c := Sample([]byte("other"), 42, 100, 0.1, 0); len(c) == len(a) {
		diff := false
		for i := range c {
			if c[i] != a[i] {
				diff = true
			}
		}
		if !diff {
			t.Error("different fingerprints selected the same set")
		}
	}
}

func TestSampleBounds(t *testing.T) {
	if got := Sample([]byte("fp"), 0, 0, 1, 0); got != nil {
		t.Errorf("empty sweep sampled %v", got)
	}
	if got := Sample([]byte("fp"), 0, 10, 0, 0); got != nil {
		t.Errorf("fraction 0 sampled %v", got)
	}
	full := Sample([]byte("fp"), 0, 10, 1, 0)
	if len(full) != 10 {
		t.Fatalf("fraction 1 sampled %d of 10", len(full))
	}
	for i, v := range full {
		if v != i {
			t.Fatalf("fraction 1 must select every index in order, got %v", full)
		}
	}
	if got := Sample([]byte("fp"), 0, 100, 1, 7); len(got) != 7 {
		t.Errorf("maxPoints 7 kept %d points", len(got))
	}
	// ceil: 3% of 10 points still audits one.
	if got := Sample([]byte("fp"), 0, 10, 0.03, 0); len(got) != 1 {
		t.Errorf("fraction 0.03 of 10 sampled %d, want 1", len(got))
	}
}

// TestLosslessAuditZeroError is the test-side of the CI audit smoke: a
// lossless RpStacks sweep audited against the graph oracle at integer
// latencies reports exactly zero maximum CPI error — and auditing leaves the
// sweep's results bit-identical to an unaudited run.
func TestLosslessAuditZeroError(t *testing.T) {
	_, g, a, pts := losslessFixture(t)

	plain, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	audited, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{Parallelism: 2, NeedFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Fingerprint) != 0 {
		t.Error("fingerprint published without NeedFingerprint")
	}
	if len(audited.Fingerprint) == 0 {
		t.Fatal("NeedFingerprint sweep carries no fingerprint")
	}

	rep, err := Run(audited, &GraphOracle{Graph: g}, RpStacksDecompose(a), Options{
		Fraction:    1,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audited != len(pts) || rep.Skipped != 0 {
		t.Fatalf("audited %d skipped %d, want %d and 0", rep.Audited, rep.Skipped, len(pts))
	}
	if rep.MaxErrorPct != 0 {
		t.Errorf("lossless max error %g%%, want exactly 0", rep.MaxErrorPct)
	}
	if rep.Status != "ok" || rep.Drifted != 0 {
		t.Errorf("status %q drifted %d, want ok and 0", rep.Status, rep.Drifted)
	}

	// The audit only reads the sweep: point-for-point identical results.
	for i := range plain.Results {
		if plain.Results[i].Lat != audited.Results[i].Lat ||
			plain.Results[i].Cycles != audited.Results[i].Cycles {
			t.Fatalf("point %d differs between audited and unaudited sweeps", i)
		}
	}
}

// TestSampleStableAcrossResume pins the resume-stability claim: the
// fingerprint — and therefore the audited point set — is identical for a
// fresh sweep, a checkpointed sweep, and a sweep resumed from that
// checkpoint.
func TestSampleStableAcrossResume(t *testing.T) {
	_, _, a, pts := losslessFixture(t)
	dir := t.TempDir()

	fresh, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{NeedFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{
		Parallelism: 2, ChunkSize: 3, Checkpoint: &dse.Checkpoint{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{
		Parallelism: 2, ChunkSize: 3, Checkpoint: &dse.Checkpoint{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != len(pts) {
		t.Fatalf("second checkpointed run resumed %d of %d points", resumed.Resumed, len(pts))
	}
	if string(fresh.Fingerprint) != string(first.Fingerprint) ||
		string(first.Fingerprint) != string(resumed.Fingerprint) {
		t.Fatal("fingerprint differs across fresh, checkpointed and resumed sweeps")
	}
	sa := Sample(first.Fingerprint, 9, len(pts), 0.5, 0)
	sb := Sample(resumed.Fingerprint, 9, len(pts), 0.5, 0)
	if len(sa) != len(sb) {
		t.Fatalf("sample sizes differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("resume changed the audited set: %v vs %v", sa, sb)
		}
	}
}

// TestDegradedPredictorTripsDrift corrupts the predictor — every
// instruction-side memory count dropped from every representative stack (the
// dominant class in this window; the tiny fixture has no data-cache events on
// its critical path) — and checks the audit notices: drift trips, the report
// flips to "drift", and the divergence breakdown names the responsible class.
func TestDegradedPredictorTripsDrift(t *testing.T) {
	_, g, a, pts := losslessFixture(t)

	bad := &core.Analysis{
		Segments: make([]core.Segment, len(a.Segments)),
		Baseline: a.Baseline,
		MicroOps: a.MicroOps,
		Opts:     a.Opts,
	}
	for i, seg := range a.Segments {
		cp := seg
		cp.Stacks = make([]stacks.Stack, len(seg.Stacks))
		copy(cp.Stacks, seg.Stacks)
		for j := range cp.Stacks {
			for _, e := range []stacks.Event{stacks.L1I, stacks.L2I, stacks.MemI, stacks.ITLB} {
				cp.Stacks[j].Counts[e] = 0
			}
		}
		bad.Segments[i] = cp
	}

	rep0, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{NeedFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	sane, err := Run(rep0, &GraphOracle{Graph: g}, RpStacksDecompose(a), Options{Fraction: 1, DriftPct: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if sane.MaxErrorPct != 0 {
		t.Fatalf("healthy lossless predictor has error %g%%", sane.MaxErrorPct)
	}

	sweep, err := dse.ExploreRpStacksOpts(bad, pts, dse.ExploreOptions{NeedFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	drifts := 0
	rep, err := Run(sweep, &GraphOracle{Graph: g}, RpStacksDecompose(bad), Options{
		Fraction: 1,
		DriftPct: 0.01,
		OnPoint:  func(p PointAudit) { drifts++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted == 0 || rep.Status != "drift" {
		t.Fatalf("degraded predictor not flagged: drifted %d status %q", rep.Drifted, rep.Status)
	}
	if drifts != rep.Audited {
		t.Errorf("OnPoint saw %d points, audited %d", drifts, rep.Audited)
	}
	if len(rep.Worst) == 0 || rep.Worst[0].WorstClass != ICache.String() {
		t.Fatalf("worst point blames %q, want icache", rep.Worst[0].WorstClass)
	}
	var worst ClassStats
	for _, cs := range rep.Classes {
		if cs.MaxPct > worst.MaxPct {
			worst = cs
		}
	}
	if worst.Class != ICache.String() {
		t.Errorf("largest class divergence is %q, want icache", worst.Class)
	}
}

// TestCanceledContextSkips checks the budget semantics of cancellation: a
// canceled context audits nothing and reports every sampled point as
// skipped, without an error.
func TestCanceledContextSkips(t *testing.T) {
	_, g, a, pts := losslessFixture(t)
	sweep, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{NeedFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(sweep, &GraphOracle{Graph: g}, nil, Options{
		Fraction: 1, Parallelism: 2, Context: ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audited != 0 || rep.Skipped != len(pts) {
		t.Errorf("canceled audit: audited %d skipped %d, want 0 and %d", rep.Audited, rep.Skipped, len(pts))
	}
	if rep.Status != "ok" || rep.Drifted != 0 {
		t.Errorf("canceled audit status %q drifted %d", rep.Status, rep.Drifted)
	}
}

// TestBudgetSkips checks the time-budget path: a budget that is already
// spent when the workers start skips every point.
func TestBudgetSkips(t *testing.T) {
	_, g, a, pts := losslessFixture(t)
	sweep, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{NeedFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sweep, &slowOracle{inner: &GraphOracle{Graph: g}, delay: 5 * time.Millisecond},
		nil, Options{Fraction: 1, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Errorf("nanosecond budget skipped nothing (audited %d)", rep.Audited)
	}
	if rep.Audited+rep.Skipped != rep.Sampled {
		t.Errorf("audited %d + skipped %d != sampled %d", rep.Audited, rep.Skipped, rep.Sampled)
	}
}

// slowOracle delays each truth run, so time budgets expire mid-audit.
type slowOracle struct {
	inner Oracle
	delay time.Duration
}

func (o *slowOracle) Truth(ctx context.Context, l stacks.Latencies) (float64, stacks.Stack, error) {
	time.Sleep(o.delay)
	return o.inner.Truth(ctx, l)
}

func TestRunPreconditions(t *testing.T) {
	_, g, a, pts := losslessFixture(t)
	rep, err := Run(&dse.Report{}, &GraphOracle{Graph: g}, nil, Options{})
	if rep != nil || err != nil {
		t.Errorf("fraction 0 returned (%v, %v), want (nil, nil)", rep, err)
	}
	plain, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plain, &GraphOracle{Graph: g}, nil, Options{Fraction: 1}); err == nil {
		t.Error("sweep without fingerprint accepted")
	}
	withFP, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{NeedFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(withFP, nil, nil, Options{Fraction: 1}); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestClassTaxonomy(t *testing.T) {
	want := map[stacks.Event]Class{
		stacks.L1I: ICache, stacks.ITLB: ICache,
		stacks.L1D: DCache, stacks.DTLB: DCache,
		stacks.Branch: Branch,
		stacks.Base:   Resource, stacks.FpDiv: Resource, stacks.Store: Resource,
	}
	for e, c := range want {
		if got := ClassOf(e); got != c {
			t.Errorf("ClassOf(%s) = %s, want %s", e, got, c)
		}
	}
	names := ClassNames()
	if len(names) != int(NumClasses) || names[0] != "icache" || names[3] != "resource" {
		t.Errorf("ClassNames() = %v", names)
	}
}
