// Package audit implements shadow-sampling accuracy auditing for the sweep
// engines: during (strictly: immediately after) a graph- or RpStacks-engine
// sweep it deterministically samples a handful of design points, re-derives
// their ground truth under a bounded concurrency/time budget, and scores the
// sweep's predictions — per-point CPI error plus a per-event-class
// stall-stack divergence breakdown that says *which* penalty class the
// prediction got wrong.
//
// The paper's headline claim is accuracy against re-simulation; this package
// turns that offline evaluation into a runtime signal. Sampling is seeded
// from the sweep fingerprint (dse.Report.Fingerprint), so the audited point
// set is reproducible across processes and stable across checkpoint resumes:
// the fingerprint covers the engine, its prepared inputs and the point list,
// not the execution schedule.
//
// Two oracles are provided. SimOracle re-runs the internal/cpu ground-truth
// simulator — the paper's accuracy definition, with a genuine (small) model
// residual for the graph and RpStacks engines. GraphOracle re-evaluates the
// dependence-graph model instead: a model-exact reference against which a
// lossless analysis (core.Options.DisableMerge) must score exactly zero
// error, which is what the CI audit smoke asserts.
package audit

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/dse"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/stacks"
)

// Class buckets the stall-event taxonomy into the four penalty families the
// divergence breakdown reports on.
type Class int

const (
	// ICache covers instruction-side memory penalties: L1I, L2I, MemI, ITLB.
	ICache Class = iota
	// DCache covers data-side memory penalties: L1D, L2D, MemD, DTLB.
	DCache
	// Branch covers misprediction redirect and refill penalties.
	Branch
	// Resource covers everything else: base pipeline advance, address
	// generation, the store buffer and the execution units.
	Resource

	NumClasses
)

var classNames = [NumClasses]string{
	ICache:   "icache",
	DCache:   "dcache",
	Branch:   "branch",
	Resource: "resource",
}

func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ClassNames returns the class labels in render order, for metric rows.
func ClassNames() []string {
	out := make([]string, NumClasses)
	for i := range classNames {
		out[i] = classNames[i]
	}
	return out
}

// ClassOf maps a stall event to its penalty class.
func ClassOf(e stacks.Event) Class {
	switch e {
	case stacks.L1I, stacks.L2I, stacks.MemI, stacks.ITLB:
		return ICache
	case stacks.L1D, stacks.L2D, stacks.MemD, stacks.DTLB:
		return DCache
	case stacks.Branch:
		return Branch
	default:
		return Resource
	}
}

// classPenalties folds a stack's per-event penalty decomposition into the
// four classes.
func classPenalties(st *stacks.Stack, l *stacks.Latencies) [NumClasses]float64 {
	pen := st.Penalties(l)
	var out [NumClasses]float64
	for e := stacks.Event(0); e < stacks.NumEvents; e++ {
		out[ClassOf(e)] += pen[e]
	}
	return out
}

// Oracle produces the ground truth of one design point: the reference cycle
// count and a stall-event decomposition comparable to the engines'
// prediction stacks. Truth may be called concurrently from audit workers.
type Oracle interface {
	Truth(ctx context.Context, l stacks.Latencies) (cycles float64, st stacks.Stack, err error)
}

// SimOracle is the paper's ground truth: re-run the cycle-accurate
// internal/cpu simulator at the design point. When the warm inputs are set,
// the re-simulation replays the same functional warmup as the engines'
// baseline trace; with them nil it measures the stream cold, matching the
// recipe of dse.ExploreSim. The decomposition is the critical-path stack of
// the re-simulated trace's dependence graph — model-attributed, but over the
// *measured* execution.
type SimOracle struct {
	Cfg                  *config.Config
	CodeLines, DataLines []uint64
	Warm                 []isa.MicroOp
	UOps                 []isa.MicroOp
}

func (o *SimOracle) Truth(ctx context.Context, l stacks.Latencies) (float64, stacks.Stack, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, stacks.Stack{}, err
		}
	}
	cfg := o.Cfg.Clone()
	cfg.Lat = l
	sim, err := cpu.New(cfg)
	if err != nil {
		return 0, stacks.Stack{}, err
	}
	sim.WarmCode(o.CodeLines)
	sim.WarmData(o.DataLines)
	sim.WarmUp(o.Warm)
	tr, err := sim.Run(o.UOps)
	if err != nil {
		return 0, stacks.Stack{}, fmt.Errorf("audit: re-simulating ground truth: %w", err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		return 0, stacks.Stack{}, fmt.Errorf("audit: decomposing ground truth: %w", err)
	}
	_, st := g.CriticalPath(&l)
	return float64(tr.Cycles), st, nil
}

// GraphOracle re-evaluates a prebuilt dependence graph instead of the
// simulator: a model-exact reference that isolates the RpStacks reduction
// from the graph model's own residual. A lossless analysis must match it
// bit-for-bit at integer latencies. Each Truth call allocates a fresh
// evaluator, so the oracle is safely shared across audit workers.
type GraphOracle struct {
	Graph *depgraph.Graph
}

func (o *GraphOracle) Truth(ctx context.Context, l stacks.Latencies) (float64, stacks.Stack, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, stacks.Stack{}, err
		}
	}
	cycles, st := o.Graph.CriticalPath(&l)
	return float64(cycles), st, nil
}

// RpStacksDecompose adapts an analysis into the predicted-stack hook Run
// wants: the whole-trace representative stack at the design point.
func RpStacksDecompose(a *core.Analysis) func(*stacks.Latencies) stacks.Stack {
	return func(l *stacks.Latencies) stacks.Stack { return a.Representative(l) }
}

// GraphDecompose adapts a dependence graph into the predicted-stack hook:
// the critical-path stack at the design point (a fresh evaluator per call,
// so the hook is safely shared across audit workers).
func GraphDecompose(g *depgraph.Graph) func(*stacks.Latencies) stacks.Stack {
	return func(l *stacks.Latencies) stacks.Stack {
		_, st := g.CriticalPath(l)
		return st
	}
}

// DefaultDriftPct is the per-point CPI error threshold (percent) above which
// a point counts as drift when Options.DriftPct is zero. The paper reports
// worst-case RpStacks errors of a few percent; sustained errors beyond this
// mean the predictor no longer represents the machine.
const DefaultDriftPct = 5.0

// defaultWorstK bounds how many worst points a report retains.
const defaultWorstK = 3

// Options configures one audit run. The zero value audits nothing
// (Fraction 0).
type Options struct {
	// Fraction is the share of the sweep's design points to audit,
	// in (0, 1]; K = ceil(Fraction · points). Zero or negative disables
	// the audit (Run returns nil, nil).
	Fraction float64
	// Seed is mixed into the fingerprint-derived sampling stream, so two
	// audits of the same sweep can choose disjoint-ish samples on purpose.
	Seed uint64
	// MaxPoints caps the sampled point count after Fraction is applied
	// (0: no cap). It bounds work up front; points it cuts are not counted
	// as skipped.
	MaxPoints int
	// Budget is the wall-clock budget for ground-truth runs. Once it is
	// spent, remaining sampled points are counted in Report.Skipped instead
	// of being evaluated (0: no time budget).
	Budget time.Duration
	// Parallelism is the number of concurrent oracle runs (<=1: serial).
	Parallelism int
	// DriftPct is the per-point CPI error percentage above which the point
	// counts as drift (0: DefaultDriftPct).
	DriftPct float64
	// WorstK bounds the worst points kept in the report (0: 3).
	WorstK int
	// Logger receives a warning per drifting point (nil: discard).
	Logger *slog.Logger
	// JobID tags drift warnings with the owning job (optional).
	JobID string
	// Context cancels the audit between points: remaining sampled points
	// are counted as skipped and Run returns the partial report without an
	// error, mirroring the budget semantics.
	Context context.Context
	// Tracer, when non-nil, records one audit root span plus one child per
	// ground-truth run (TID = audit worker).
	Tracer *obs.Tracer
	// TraceParent is the span the audit root attaches under.
	TraceParent uint64
	// OnPoint, when non-nil, receives every audited point as it completes —
	// the service feeds /metrics from it. It is called from audit workers
	// and must be goroutine-safe.
	OnPoint func(PointAudit)
}

// Sample deterministically selects the audited point indices: a shuffle of
// [0, n) seeded by SHA-256(fingerprint ‖ seed), truncated to
// ceil(fraction·n), capped at maxPoints, and returned sorted. The same
// (fingerprint, seed) pair always selects the same set — across processes
// and across checkpoint resumes, because the fingerprint covers the sweep's
// inputs, not its schedule.
func Sample(fingerprint []byte, seed uint64, n int, fraction float64, maxPoints int) []int {
	if n <= 0 || fraction <= 0 {
		return nil
	}
	k := int(math.Ceil(fraction * float64(n)))
	if k > n {
		k = n
	}
	if maxPoints > 0 && k > maxPoints {
		k = maxPoints
	}
	h := sha256.New()
	h.Write(fingerprint)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	sum := h.Sum(nil)
	rng := rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(sum[:8]))))
	idx := rng.Perm(n)[:k]
	sort.Ints(idx)
	return idx
}

// PointAudit is the scored outcome of one audited design point.
type PointAudit struct {
	// Index is the design-point index in the sweep's point list.
	Index int `json:"index"`
	// Latencies is the full latency assignment of the point.
	Latencies [stacks.NumEvents]float64 `json:"latencies"`
	// Predicted and Truth are the engine's and the oracle's cycle counts.
	Predicted float64 `json:"predicted_cycles"`
	Truth     float64 `json:"truth_cycles"`
	// ErrorPct is 100·|Predicted−Truth|/Truth.
	ErrorPct float64 `json:"error_pct"`
	// Divergence is the per-class stall-stack disagreement,
	// 100·|predicted class penalty − truth class penalty|/Truth, present
	// when the engine supplied a decomposition hook.
	Divergence map[string]float64 `json:"divergence_pct,omitempty"`
	// WorstClass names the class with the largest divergence.
	WorstClass string `json:"worst_class,omitempty"`
	// Drift marks the point as exceeding the drift threshold.
	Drift bool `json:"drift,omitempty"`
}

// Config renders the point's latency assignment as event=value pairs, the
// form carried by the worst-point metric exemplar.
func (p *PointAudit) Config() string {
	parts := make([]string, 0, stacks.NumEvents)
	for e := stacks.Event(0); e < stacks.NumEvents; e++ {
		parts = append(parts, fmt.Sprintf("%s=%g", e, p.Latencies[e]))
	}
	return strings.Join(parts, " ")
}

// ClassStats aggregates one penalty class across the audited points.
type ClassStats struct {
	Class string `json:"class"`
	// DivergenceCycles is the summed |predicted − truth| class penalty.
	DivergenceCycles float64 `json:"divergence_cycles"`
	// MeanPct and MaxPct are the per-point divergence percentages of the
	// class, averaged and maximized over the audited points.
	MeanPct float64 `json:"mean_pct"`
	MaxPct  float64 `json:"max_pct"`
}

// Report is the structured outcome of one audit run: the JSON persisted
// through internal/store, served by rpserved's /debug/audit and summarized
// by rpexplore.
type Report struct {
	Method      string  `json:"method"`
	Fingerprint string  `json:"fingerprint"`
	Seed        uint64  `json:"seed"`
	Fraction    float64 `json:"fraction"`
	DriftPct    float64 `json:"drift_threshold_pct"`
	GridPoints  int     `json:"grid_points"`
	// Sampled is the deterministic sample size; Audited of those were
	// ground-truthed, Skipped were abandoned to the time budget or
	// cancellation.
	Sampled int   `json:"sampled"`
	Audited int   `json:"audited"`
	Skipped int   `json:"skipped_budget"`
	Indices []int `json:"indices"`
	// Drifted counts audited points whose error exceeded the threshold.
	Drifted int `json:"drifted"`
	// MaxErrorPct, GeomeanErrorPct and MeanErrorPct summarize the per-point
	// CPI errors. The geomean is exp(mean(log1p(err)))−1, which tolerates
	// exact-zero points.
	MaxErrorPct     float64      `json:"max_error_pct"`
	GeomeanErrorPct float64      `json:"geomean_error_pct"`
	MeanErrorPct    float64      `json:"mean_error_pct"`
	Classes         []ClassStats `json:"classes,omitempty"`
	Worst           []PointAudit `json:"worst,omitempty"`
	// Status is "ok", or "drift" once any audited point exceeded the
	// threshold — the value the owning job's audit status flips to.
	Status string  `json:"status"`
	WallMS float64 `json:"wall_ms"`
}

// Summary renders the one-line form rpexplore prints.
func (r *Report) Summary() string {
	s := fmt.Sprintf("audit: %d/%d points audited (method %s, seed %d), max error %.4f%%, geomean %.4f%%",
		r.Audited, r.GridPoints, r.Method, r.Seed, r.MaxErrorPct, r.GeomeanErrorPct)
	if r.Skipped > 0 {
		s += fmt.Sprintf(", %d skipped by budget", r.Skipped)
	}
	if r.Drifted > 0 {
		s += fmt.Sprintf(", DRIFT on %d points (threshold %.2f%%)", r.Drifted, r.DriftPct)
	}
	return s
}

// Run audits a finished sweep: it samples the report's design points from
// the sweep fingerprint, re-derives each sampled point's ground truth
// through the oracle under the configured budget, and scores the sweep's
// predictions. decompose, when non-nil, supplies the engine's predicted
// stall-stack at a point for the per-class divergence breakdown. The sweep
// report is only read — an audited sweep's Results are bit-identical to an
// unaudited one's.
//
// Run returns (nil, nil) when opts.Fraction is zero or negative. It errors
// when the sweep carries no fingerprint (run it with
// ExploreOptions.NeedFingerprint or a Checkpoint) or when the oracle fails;
// budget exhaustion and context cancellation are not errors — remaining
// points are reported as Skipped.
func Run(sweep *dse.Report, oracle Oracle, decompose func(*stacks.Latencies) stacks.Stack, opts Options) (*Report, error) {
	if opts.Fraction <= 0 {
		return nil, nil
	}
	if len(sweep.Fingerprint) == 0 {
		return nil, fmt.Errorf("audit: sweep has no fingerprint; run it with dse.ExploreOptions.NeedFingerprint")
	}
	if oracle == nil {
		return nil, fmt.Errorf("audit: nil oracle")
	}
	driftPct := opts.DriftPct
	if driftPct <= 0 {
		driftPct = DefaultDriftPct
	}
	worstK := opts.WorstK
	if worstK <= 0 {
		worstK = defaultWorstK
	}

	indices := Sample(sweep.Fingerprint, opts.Seed, len(sweep.Results), opts.Fraction, opts.MaxPoints)
	rep := &Report{
		Method:      sweep.Method,
		Fingerprint: fmt.Sprintf("%x", sweep.Fingerprint),
		Seed:        opts.Seed,
		Fraction:    opts.Fraction,
		DriftPct:    driftPct,
		GridPoints:  len(sweep.Results),
		Sampled:     len(indices),
		Indices:     indices,
		Status:      "ok",
	}

	root := opts.Tracer.StartChild(opts.TraceParent, obs.CatAudit, obs.NameAudit)
	root.SetDetail(sweep.Method)
	root.SetArg(obs.ArgPoints, int64(len(indices)))
	defer root.End()

	start := time.Now()
	var deadline time.Time
	if opts.Budget > 0 {
		deadline = start.Add(opts.Budget)
	}

	type scored struct {
		point PointAudit
		div   [NumClasses]float64 // divergence in cycles, for class totals
	}
	var (
		mu      sync.Mutex
		points  []scored
		skipped int
		runErr  error
	)
	next := make(chan int)
	go func() {
		defer close(next)
		for _, i := range indices {
			next <- i
		}
	}()

	overBudget := func() bool {
		if opts.Context != nil && opts.Context.Err() != nil {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(indices) && len(indices) > 0 {
		workers = len(indices)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				failed := runErr != nil
				mu.Unlock()
				if failed || overBudget() {
					mu.Lock()
					skipped++
					mu.Unlock()
					continue
				}
				lat := sweep.Results[i].Lat
				sp := opts.Tracer.StartChild(root.ID(), obs.CatAudit, obs.NameTruth)
				sp.SetTID(worker)
				truth, truthStack, err := oracle.Truth(opts.Context, lat)
				sp.End()
				if err != nil {
					mu.Lock()
					if opts.Context != nil && opts.Context.Err() != nil {
						skipped++ // cancellation mid-oracle: budget semantics
					} else if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					continue
				}
				p := score(i, lat, sweep.Results[i].Cycles, truth, truthStack, decompose, driftPct)
				var div [NumClasses]float64
				if decompose != nil && truth > 0 {
					for c := Class(0); c < NumClasses; c++ {
						div[c] = p.Divergence[c.String()] / 100 * truth
					}
				}
				if p.Drift && opts.Logger != nil {
					attrs := []any{
						slog.Int("point", i),
						slog.Float64("error_pct", p.ErrorPct),
						slog.Float64("threshold_pct", driftPct),
						slog.String("config", p.Config()),
						slog.String("worst_class", p.WorstClass),
					}
					if opts.JobID != "" {
						attrs = append(attrs, slog.String("job_id", opts.JobID))
					}
					opts.Logger.Warn("audit drift: prediction error above threshold", attrs...)
				}
				if opts.OnPoint != nil {
					opts.OnPoint(p)
				}
				mu.Lock()
				points = append(points, scored{point: p, div: div})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	rep.Audited = len(points)
	rep.Skipped = skipped
	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)

	// Aggregate deterministically: point order is the sampled index order,
	// regardless of worker interleaving.
	sort.Slice(points, func(a, b int) bool { return points[a].point.Index < points[b].point.Index })
	var classTotals [NumClasses]float64
	var classMax [NumClasses]float64
	var classSumPct [NumClasses]float64
	var sumPct, sumLog float64
	for _, s := range points {
		p := s.point
		if p.ErrorPct > rep.MaxErrorPct {
			rep.MaxErrorPct = p.ErrorPct
		}
		sumPct += p.ErrorPct
		sumLog += math.Log1p(p.ErrorPct)
		if p.Drift {
			rep.Drifted++
		}
		for c := Class(0); c < NumClasses; c++ {
			classTotals[c] += s.div[c]
			pct := p.Divergence[c.String()]
			classSumPct[c] += pct
			if pct > classMax[c] {
				classMax[c] = pct
			}
		}
	}
	if n := float64(len(points)); n > 0 {
		rep.MeanErrorPct = sumPct / n
		rep.GeomeanErrorPct = math.Expm1(sumLog / n)
		if decompose != nil {
			rep.Classes = make([]ClassStats, NumClasses)
			for c := Class(0); c < NumClasses; c++ {
				rep.Classes[c] = ClassStats{
					Class:            c.String(),
					DivergenceCycles: classTotals[c],
					MeanPct:          classSumPct[c] / n,
					MaxPct:           classMax[c],
				}
			}
		}
	}
	worst := make([]PointAudit, len(points))
	for i, s := range points {
		worst[i] = s.point
	}
	sort.SliceStable(worst, func(a, b int) bool { return worst[a].ErrorPct > worst[b].ErrorPct })
	if len(worst) > worstK {
		worst = worst[:worstK]
	}
	rep.Worst = worst
	if rep.Drifted > 0 {
		rep.Status = "drift"
	}
	return rep, nil
}

// score computes one audited point's error and divergence breakdown.
func score(idx int, lat stacks.Latencies, predicted, truth float64, truthStack stacks.Stack,
	decompose func(*stacks.Latencies) stacks.Stack, driftPct float64) PointAudit {
	p := PointAudit{
		Index:     idx,
		Latencies: lat,
		Predicted: predicted,
		Truth:     truth,
	}
	if truth > 0 {
		p.ErrorPct = 100 * math.Abs(predicted-truth) / truth
	} else if predicted != truth {
		p.ErrorPct = math.Inf(1)
	}
	p.Drift = p.ErrorPct > driftPct
	if decompose != nil && truth > 0 {
		predStack := decompose(&lat)
		predPen := classPenalties(&predStack, &lat)
		truthPen := classPenalties(&truthStack, &lat)
		p.Divergence = make(map[string]float64, NumClasses)
		worst, worstV := Resource, -1.0
		for c := Class(0); c < NumClasses; c++ {
			pct := 100 * math.Abs(predPen[c]-truthPen[c]) / truth
			p.Divergence[c.String()] = pct
			if pct > worstV {
				worst, worstV = c, pct
			}
		}
		p.WorstClass = worst.String()
	}
	return p
}
