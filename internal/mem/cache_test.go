package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheLRUEviction(t *testing.T) {
	// One set, two ways: classic LRU sequence.
	c := NewCache(1, 2, 64)
	a, b, d := uint64(0), uint64(64), uint64(128)
	for _, addr := range []uint64{a, b} {
		if c.Lookup(addr) {
			t.Fatal("cold lookup must miss")
		}
		c.Insert(addr)
	}
	if !c.Lookup(a) {
		t.Fatal("a must hit")
	}
	// b is now LRU; inserting d must evict b.
	ev, ok := c.Insert(d)
	if !ok || ev != c.Line(b) {
		t.Fatalf("evicted %d, want line of b (%d)", ev, c.Line(b))
	}
	if c.Contains(b) {
		t.Fatal("b must be gone")
	}
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("a and d must remain")
	}
}

func TestCacheSetMapping(t *testing.T) {
	c := NewCache(4, 1, 64)
	// Addresses 0 and 4*64 map to the same set; 64 maps elsewhere.
	c.Insert(0)
	c.Insert(64)
	if _, evicted := c.Insert(4 * 64); !evicted {
		t.Fatal("same-set insert into a full 1-way set must evict")
	}
	if !c.Contains(64) {
		t.Fatal("other set must be untouched")
	}
}

func TestCacheSameLineInsertPromotes(t *testing.T) {
	c := NewCache(1, 2, 64)
	c.Insert(0)
	c.Insert(64)
	// Re-inserting 0 promotes it; inserting 128 must then evict 64.
	if _, ok := c.Insert(0); ok {
		t.Fatal("re-insert must not evict")
	}
	ev, ok := c.Insert(128)
	if !ok || ev != c.Line(64) {
		t.Fatalf("evicted %d, want line of 64", ev)
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewCache(2, 2, 64)
	c.Lookup(0)
	c.Insert(0)
	c.Lookup(0)
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 || c.Contains(0) {
		t.Fatal("reset must clear everything")
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 1, 64) },
		func() { NewCache(1, 0, 64) },
		func() { NewCache(1, 1, 48) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry must panic")
				}
			}()
			f()
		}()
	}
}

// TestCacheWorkingSetProperty checks the defining property of LRU: a
// working set no larger than one set's ways, repeatedly accessed, always
// hits after the first pass.
func TestCacheWorkingSetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		ways := 1 + rng.Intn(4)
		c := NewCache(1, ways, 64)
		ws := make([]uint64, ways)
		for i := range ws {
			ws[i] = uint64(i * 64)
		}
		for _, a := range ws {
			c.Lookup(a)
			c.Insert(a)
		}
		for pass := 0; pass < 3; pass++ {
			for _, a := range ws {
				if !c.Lookup(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2, 4096)
	if tlb.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !tlb.Access(100) {
		t.Fatal("same page must hit")
	}
	tlb.Access(4096) // second page
	tlb.Access(8192) // third page evicts page 0 (LRU)
	if tlb.Access(0) {
		t.Fatal("evicted page must miss")
	}
	if tlb.Hits != 1 || tlb.Misses != 4 {
		t.Fatalf("hits/misses = %d/%d", tlb.Hits, tlb.Misses)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(HierarchyGeometry{
		LineSize: 64,
		L1ISets:  2, L1IWays: 1,
		L1DSets: 2, L1DWays: 1,
		L2Sets: 16, L2Ways: 2,
		ITLBEntries: 4, DTLBEntries: 4, PageSize: 4096,
	})
	if lvl := h.AccessD(0); lvl != LvlMem {
		t.Fatalf("cold access served by %s, want Mem", lvl)
	}
	if lvl := h.AccessD(0); lvl != LvlL1 {
		t.Fatalf("second access served by %s, want L1", lvl)
	}
	// Evict line 0 from the 1-way L1 set, keeping it in L2.
	h.AccessD(2 * 64)
	if lvl := h.AccessD(0); lvl != LvlL2 {
		t.Fatalf("L1-evicted line served by %s, want L2", lvl)
	}
	if h.DServed[LvlL1] != 1 || h.DServed[LvlL2] != 1 || h.DServed[LvlMem] != 2 {
		t.Fatalf("DServed = %v", h.DServed)
	}
}

func TestHierarchySplitL1SharedL2(t *testing.T) {
	h := NewHierarchy(HierarchyGeometry{
		LineSize: 64,
		L1ISets:  2, L1IWays: 1,
		L1DSets: 2, L1DWays: 1,
		L2Sets: 16, L2Ways: 2,
		ITLBEntries: 4, DTLBEntries: 4, PageSize: 4096,
	})
	h.AccessI(0) // fills L2 through the I side
	if lvl := h.AccessD(0); lvl != LvlL2 {
		t.Fatalf("data access after instruction fill served by %s, want shared L2", lvl)
	}
}

func TestLevelString(t *testing.T) {
	if LvlL1.String() != "L1" || LvlMem.String() != "Mem" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("out-of-range level must render")
	}
}
