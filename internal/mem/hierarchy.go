package mem

// Hierarchy is the two-level hierarchy of the target machine: split L1
// instruction/data caches over a shared, inclusive-on-fill L2, backed by
// main memory. Evictions from L1 are clean drops (presence-only model); L2
// evictions do not back-invalidate the L1s, since the model only needs
// serving-level outcomes, not coherence.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ITLBs, DTLBs *TLB

	// Serving-level counters, indexed by Level, split by access side.
	IServed [NumLevels]uint64
	DServed [NumLevels]uint64
}

// HierarchyGeometry collects the structure-domain cache parameters.
type HierarchyGeometry struct {
	LineSize                 int
	L1ISets, L1IWays         int
	L1DSets, L1DWays         int
	L2Sets, L2Ways           int
	ITLBEntries, DTLBEntries int
	PageSize                 int
}

// NewHierarchy builds the hierarchy for the given geometry.
func NewHierarchy(g HierarchyGeometry) *Hierarchy {
	return &Hierarchy{
		L1I:   NewCache(g.L1ISets, g.L1IWays, g.LineSize),
		L1D:   NewCache(g.L1DSets, g.L1DWays, g.LineSize),
		L2:    NewCache(g.L2Sets, g.L2Ways, g.LineSize),
		ITLBs: NewTLB(g.ITLBEntries, g.PageSize),
		DTLBs: NewTLB(g.DTLBEntries, g.PageSize),
	}
}

// AccessI performs an instruction fetch access and returns the serving
// level, filling the caches along the way.
func (h *Hierarchy) AccessI(addr uint64) Level {
	lvl := h.access(h.L1I, addr)
	h.IServed[lvl]++
	return lvl
}

// AccessD performs a data access (load or store, write-allocate) and
// returns the serving level, filling the caches along the way.
func (h *Hierarchy) AccessD(addr uint64) Level {
	lvl := h.access(h.L1D, addr)
	h.DServed[lvl]++
	return lvl
}

func (h *Hierarchy) access(l1 *Cache, addr uint64) Level {
	if l1.Lookup(addr) {
		return LvlL1
	}
	if h.L2.Lookup(addr) {
		l1.Insert(addr)
		return LvlL2
	}
	h.L2.Insert(addr)
	l1.Insert(addr)
	return LvlMem
}

// TranslateI accesses the instruction TLB and reports a hit.
func (h *Hierarchy) TranslateI(addr uint64) bool { return h.ITLBs.Access(addr) }

// TranslateD accesses the data TLB and reports a hit.
func (h *Hierarchy) TranslateD(addr uint64) bool { return h.DTLBs.Access(addr) }

// Reset clears all contents and counters.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLBs.Reset()
	h.DTLBs.Reset()
	h.IServed = [NumLevels]uint64{}
	h.DServed = [NumLevels]uint64{}
}
