// Package mem implements the memory-system substrate of the target
// microarchitecture: set-associative LRU caches, a two-level hierarchy with
// a shared L2, and TLBs. The package is purely functional with respect to
// time — it decides which level serves an access and maintains contents;
// cycle accounting belongs to the timing simulator, which attaches the
// latency-domain cost of the serving level.
package mem

import "fmt"

// Level identifies the hierarchy level that served an access.
type Level uint8

const (
	LvlL1 Level = iota
	LvlL2
	LvlMem

	NumLevels // not a valid level
)

var levelNames = [NumLevels]string{LvlL1: "L1", LvlL2: "L2", LvlMem: "Mem"}

// String returns the level's short name.
func (l Level) String() string {
	if l < NumLevels {
		return levelNames[l]
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Cache is a set-associative cache with true-LRU replacement over line
// addresses. It stores no data, only presence.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	// lines[set] holds up to ways line addresses ordered most- to
	// least-recently used.
	lines [][]uint64

	Hits, Misses uint64
}

// NewCache builds a cache with the given geometry. lineSize must be a power
// of two; sets and ways must be positive.
func NewCache(sets, ways, lineSize int) *Cache {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("mem: invalid cache geometry sets=%d ways=%d", sets, ways))
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("mem: line size %d is not a power of two", lineSize))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	c := &Cache{sets: sets, ways: ways, lineShift: shift}
	c.lines = make([][]uint64, sets)
	for i := range c.lines {
		c.lines[i] = make([]uint64, 0, ways)
	}
	return c
}

// Line returns the line address (address with the offset bits cleared).
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) set(line uint64) int { return int(line % uint64(c.sets)) }

// Lookup probes the cache for the line holding addr, promoting it to
// most-recently-used on a hit.
func (c *Cache) Lookup(addr uint64) bool {
	line := c.Line(addr)
	set := c.lines[c.set(line)]
	for i, l := range set {
		if l == line {
			// Promote to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert fills the line holding addr, evicting the LRU line of its set when
// the set is full. It reports the evicted line address and whether an
// eviction happened. Inserting a line that is already present only promotes
// it.
func (c *Cache) Insert(addr uint64) (evicted uint64, ok bool) {
	line := c.Line(addr)
	idx := c.set(line)
	set := c.lines[idx]
	for i, l := range set {
		if l == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return 0, false
		}
	}
	if len(set) < c.ways {
		set = append(set, 0)
		copy(set[1:], set[:len(set)-1])
		set[0] = line
		c.lines[idx] = set
		return 0, false
	}
	evicted = set[len(set)-1]
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	return evicted, true
}

// Contains probes without touching LRU state or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := c.Line(addr)
	for _, l := range c.lines[c.set(line)] {
		if l == line {
			return true
		}
	}
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = c.lines[i][:0]
	}
	c.Hits, c.Misses = 0, 0
}

// TLB is a fully-associative LRU translation buffer over page numbers.
type TLB struct {
	entries   int
	pageShift uint
	pages     []uint64 // MRU first

	Hits, Misses uint64
}

// NewTLB builds a TLB with the given entry count and page size (a power of
// two).
func NewTLB(entries, pageSize int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("mem: invalid TLB size %d", entries))
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d is not a power of two", pageSize))
	}
	shift := uint(0)
	for 1<<shift != pageSize {
		shift++
	}
	return &TLB{entries: entries, pageShift: shift, pages: make([]uint64, 0, entries)}
}

// Access translates addr, filling the TLB on a miss, and reports whether the
// translation hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	for i, p := range t.pages {
		if p == page {
			copy(t.pages[1:i+1], t.pages[:i])
			t.pages[0] = page
			t.Hits++
			return true
		}
	}
	t.Misses++
	if len(t.pages) < t.entries {
		t.pages = append(t.pages, 0)
	}
	copy(t.pages[1:], t.pages[:len(t.pages)-1])
	t.pages[0] = page
	return false
}

// Reset clears contents and counters.
func (t *TLB) Reset() {
	t.pages = t.pages[:0]
	t.Hits, t.Misses = 0, 0
}
