package baseline_test

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/experiments"
	"repro/internal/stacks"
	"repro/internal/trace"
	"repro/internal/workload"
)

func simTrace(t *testing.T, cfg *config.Config, n int, app string) *trace.Trace {
	t.Helper()
	prof, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown workload %s", app)
	}
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(workload.Stream(prof, 6, n))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCP1MatchesGraphAtBaseline: the CP1 stack is exactly the baseline
// critical path, so its baseline prediction equals the graph longest path.
func TestCP1MatchesGraphAtBaseline(t *testing.T) {
	cfg := config.Baseline()
	tr := simTrace(t, cfg, 5000, "450.soplex")
	cp, err := baseline.NewCP1(tr, &cfg.Structure, &cfg.Lat)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(g.LongestPath(&cfg.Lat))
	if got := cp.Predict(&cfg.Lat); math.Abs(got-want) > 0.5 {
		t.Fatalf("CP1 baseline prediction %.1f != graph %f", got, want)
	}
	if cp.PredictCPI(&cfg.Lat) <= 0 {
		t.Fatal("CPI must be positive")
	}
}

// TestFMTDecomposesTotal: the FMT stack is a decomposition of the measured
// cycles, and its baseline prediction reproduces them.
func TestFMTDecomposesTotal(t *testing.T) {
	cfg := config.Baseline()
	for _, app := range []string{"429.mcf", "416.gamess", "458.sjeng"} {
		tr := simTrace(t, cfg, 5000, app)
		f := baseline.NewFMT(tr, &cfg.Lat)
		if got := f.Predict(&cfg.Lat); math.Abs(got-float64(tr.Cycles)) > 1 {
			t.Errorf("%s: FMT baseline prediction %.1f != measured %d", app, got, tr.Cycles)
		}
		st := f.Stack()
		if got := st.Total(&cfg.Lat); math.Abs(got-float64(tr.Cycles)) > 1 {
			t.Errorf("%s: FMT stack total %.1f != measured %d", app, got, tr.Cycles)
		}
		if f.Base < 0 {
			t.Errorf("%s: negative base component", app)
		}
	}
}

// TestFMTBlindToFineGrainEvents: FU latencies are invisible to
// pipeline-stall accounting, so changing them does not move the FMT
// prediction (the paper's Figure 6b failure mode).
func TestFMTBlindToFineGrainEvents(t *testing.T) {
	cfg := config.Baseline()
	tr := simTrace(t, cfg, 5000, "437.leslie3d")
	f := baseline.NewFMT(tr, &cfg.Lat)
	base := f.Predict(&cfg.Lat)
	for _, e := range []stacks.Event{stacks.FpMul, stacks.FpAdd, stacks.L1D, stacks.IntAlu} {
		l := cfg.Lat.With(e, 1)
		if got := f.Predict(&l); got != base {
			t.Errorf("FMT moved by %.1f cycles on a %s change it cannot see", got-base, e)
		}
	}
	// But it does react to the events it charges.
	l := cfg.Lat.Scale(stacks.MemD, 0.5)
	if got := f.Predict(&l); got >= base {
		t.Error("FMT must react to long-miss latency changes")
	}
}

// TestOverlapMislabel reproduces Figure 3 at unit level: under the crafted
// overlap workload, FMT charges the whole loss to the miss events and none
// to the concurrent FP chain.
func TestOverlapMislabel(t *testing.T) {
	cfg := config.Baseline()
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(experiments.CraftedOverlap(200))
	if err != nil {
		t.Fatal(err)
	}
	f := baseline.NewFMT(tr, &cfg.Lat)
	if f.Comp[stacks.FpDiv] != 0 {
		t.Fatalf("FMT charged %.0f cycles to FpDiv; stall accounting cannot see overlapped FU work", f.Comp[stacks.FpDiv])
	}
	if f.Comp[stacks.MemD] == 0 {
		t.Fatal("FMT must charge the memory misses")
	}
}

// TestCriticalPathSwitch reproduces Figure 4 at unit level: halving the
// memory latency flips the crafted workload onto its FP chain, and CP1's
// ex-critical-path prediction undershoots the truth.
func TestCriticalPathSwitch(t *testing.T) {
	cfg := config.Baseline()
	uops := experiments.CraftedOverlap(200)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := baseline.NewCP1(tr, &cfg.Structure, &cfg.Lat)
	if err != nil {
		t.Fatal(err)
	}
	opt := cfg.Clone()
	opt.Lat = cfg.Lat.Scale(stacks.MemD, 0.5)
	s2, err := cpu.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := s2.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(tr2.Cycles)
	pred := cp.Predict(&opt.Lat)
	if pred >= truth {
		t.Fatalf("CP1 should undershoot after the switch: pred %.0f vs truth %.0f", pred, truth)
	}
	if (truth-pred)/truth < 0.1 {
		t.Fatalf("CP1 error %.1f%% too small to demonstrate the switch", 100*(truth-pred)/truth)
	}
}
