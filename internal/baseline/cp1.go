// Package baseline implements the two simulation-result analysis methods the
// paper compares RpStacks against: single-critical-path analysis (CP1) and
// the Frontend Miss Table pipeline-stall analysis (FMT, Eyerman et al.).
// Both predict performance from one baseline simulation, and both carry the
// characteristic blind spots the paper demonstrates — CP1 cannot see
// near-critical secondary paths, FMT cannot see overlapped or fine-grained
// stall events.
package baseline

import (
	"repro/internal/config"
	"repro/internal/depgraph"
	"repro/internal/stacks"
	"repro/internal/trace"
)

// CP1 is the single-critical-path predictor: the longest path of the
// baseline dependence graph, translated into a stall-event stack, re-weighted
// for any candidate latency assignment. When a latency change makes a
// formerly secondary path critical, CP1 keeps following the ex-critical path
// and mispredicts (paper Figure 4b).
type CP1 struct {
	// Stack is the event decomposition of the baseline critical path.
	Stack stacks.Stack
	// MicroOps is the analyzed µop count, for CPI conversions.
	MicroOps int
}

// NewCP1 extracts the baseline critical path of the whole trace.
func NewCP1(tr *trace.Trace, st *config.Structure, baseline *stacks.Latencies) (*CP1, error) {
	g, err := depgraph.Build(tr, st, 0, len(tr.Records))
	if err != nil {
		return nil, err
	}
	_, stack := g.CriticalPath(baseline)
	return &CP1{Stack: stack, MicroOps: len(tr.Records)}, nil
}

// Predict returns the predicted cycle count under a latency assignment: the
// ex-critical path's stack re-weighted.
func (c *CP1) Predict(l *stacks.Latencies) float64 { return c.Stack.Total(l) }

// PredictCPI returns predicted cycles per µop.
func (c *CP1) PredictCPI(l *stacks.Latencies) float64 {
	if c.MicroOps == 0 {
		return 0
	}
	return c.Predict(l) / float64(c.MicroOps)
}
