package baseline

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stacks"
	"repro/internal/trace"
)

// FMT is the Frontend-Miss-Table pipeline-stall analysis (Eyerman et al.,
// the paper's [8]), reimplemented as trace post-processing: lost cycles are
// charged to the miss event observed when the loss occurred.
//
// It shares the original's accounting rules and therefore its blind spots:
//
//   - overlapping long data misses are charged only once, to the first miss
//     of the cluster (Figure 3b's mislabeling);
//   - fine-grained stalls — L1D hit latency, functional-unit latencies, data
//     dependencies — are invisible and melt into the Base component, so a
//     design change to those latencies leaves the prediction unchanged
//     (Figure 6b's failure mode).
type FMT struct {
	// Base is the residual cycle count not explained by any charged event.
	Base float64
	// Comp holds measured penalty cycles per event kind.
	Comp [stacks.NumEvents]float64
	// BaseLat anchors proportional re-scaling of components.
	BaseLat stacks.Latencies
	// MicroOps is the analyzed µop count; Cycles the measured total.
	MicroOps int
	Cycles   float64
}

// NewFMT runs the accounting over a dynamic trace.
func NewFMT(tr *trace.Trace, baseline *stacks.Latencies) *FMT {
	f := &FMT{BaseLat: *baseline, MicroOps: len(tr.Records), Cycles: float64(tr.Cycles)}
	recs := tr.Records

	// Front-end misses: each instruction-side miss and ITLB miss charges
	// its full access latency — the FMT charges the drained-pipeline gap,
	// which equals the miss latency in steady state.
	for i := range recs {
		r := &recs[i]
		if r.NewFetchLine {
			if r.ITLBMiss {
				f.Comp[stacks.ITLB] += baseline[stacks.ITLB]
			}
			switch r.FetchLevel {
			case mem.LvlL2:
				f.Comp[stacks.L2I] += baseline[stacks.L2I]
			case mem.LvlMem:
				f.Comp[stacks.MemI] += baseline[stacks.MemI]
			}
		}
		// Branch misprediction: redirect-to-dispatch gap of the next µop.
		if r.Mispredicted && i+1 < len(recs) {
			pen := float64(recs[i+1].T[trace.SDispatch] - r.T[trace.SComplete])
			if pen > 0 {
				f.Comp[stacks.Branch] += pen
			}
		}
	}

	// Long data misses: charge the full serving latency of the first miss
	// of each overlapping cluster; misses issued while an earlier charged
	// miss is outstanding are hidden behind it and charge nothing. DTLB
	// misses charge their penalty alongside.
	var coveredUntil int64 = -1
	for i := range recs {
		r := &recs[i]
		if r.Class != isa.Load || (r.DataLevel != mem.LvlL2 && r.DataLevel != mem.LvlMem) {
			continue
		}
		if r.T[trace.SIssue] < coveredUntil {
			continue // hidden under the previous charged miss
		}
		switch r.DataLevel {
		case mem.LvlL2:
			f.Comp[stacks.L2D] += baseline[stacks.L2D]
		case mem.LvlMem:
			f.Comp[stacks.MemD] += baseline[stacks.MemD]
		}
		if r.DTLBMiss {
			f.Comp[stacks.DTLB] += baseline[stacks.DTLB]
		}
		coveredUntil = r.T[trace.SComplete]
	}

	var charged float64
	for _, c := range f.Comp {
		charged += c
	}
	f.Base = f.Cycles - charged
	if f.Base < 0 {
		// Accounting over-charged (heavy overlap); clamp so the stack stays
		// a decomposition of the measured total.
		scale := f.Cycles / charged
		for e := range f.Comp {
			f.Comp[e] *= scale
		}
		f.Base = 0
	}
	return f
}

// Predict returns the predicted cycle count under a latency assignment: each
// charged component scales proportionally with its event's latency; the Base
// component — which hides every fine-grained stall — does not move.
func (f *FMT) Predict(l *stacks.Latencies) float64 {
	total := f.Base
	for e := range f.Comp {
		if f.Comp[e] == 0 {
			continue
		}
		ratio := 1.0
		if f.BaseLat[e] != 0 {
			ratio = l[e] / f.BaseLat[e]
		}
		total += f.Comp[e] * ratio
	}
	return total
}

// PredictCPI returns predicted cycles per µop.
func (f *FMT) PredictCPI(l *stacks.Latencies) float64 {
	if f.MicroOps == 0 {
		return 0
	}
	return f.Predict(l) / float64(f.MicroOps)
}

// Stack renders the FMT decomposition as a stall-event stack at the baseline
// (counts normalized so Total(baseline) reproduces the measured cycles).
func (f *FMT) Stack() stacks.Stack {
	var s stacks.Stack
	s.Counts[stacks.Base] = f.Base
	for e := range f.Comp {
		if f.Comp[e] != 0 && f.BaseLat[e] != 0 {
			s.Counts[e] = f.Comp[e] / f.BaseLat[e]
		}
	}
	return s
}
