// Package simpoint implements SimPoint-style workload sampling (the paper's
// [1], used by RpStacks' sampling optimization, Section III-C): execution is
// cut into fixed-length intervals, each summarized by its basic-block vector
// (BBV), the vectors are clustered with k-means after a random projection,
// and one representative interval per cluster — weighted by cluster
// population — stands in for the whole run.
package simpoint

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/isa"
)

// Interval is one fixed-length slice of the dynamic µop stream with its
// basic-block vector (normalized execution frequencies).
type Interval struct {
	Lo, Hi int // µop index range [Lo, Hi)
	Vec    []float64
}

// CollectBBVs cuts the µop stream into intervals of intervalLen µops
// (the last, shorter interval is dropped if under half length) and builds
// each interval's normalized basic-block vector. blockOf maps a µop PC to
// its static basic-block index in [0, nBlocks).
func CollectBBVs(uops []isa.MicroOp, blockOf func(pc uint64) int, nBlocks, intervalLen int) ([]Interval, error) {
	if intervalLen <= 0 {
		return nil, fmt.Errorf("simpoint: interval length must be positive, got %d", intervalLen)
	}
	if nBlocks <= 0 {
		return nil, fmt.Errorf("simpoint: need a positive block count, got %d", nBlocks)
	}
	var out []Interval
	for lo := 0; lo < len(uops); lo += intervalLen {
		hi := lo + intervalLen
		if hi > len(uops) {
			if len(uops)-lo < intervalLen/2 {
				break
			}
			hi = len(uops)
		}
		vec := make([]float64, nBlocks)
		for i := lo; i < hi; i++ {
			b := blockOf(uops[i].PC)
			if b < 0 || b >= nBlocks {
				return nil, fmt.Errorf("simpoint: µop %d maps to block %d outside [0, %d)", i, b, nBlocks)
			}
			vec[b]++
		}
		n := float64(hi - lo)
		for j := range vec {
			vec[j] /= n
		}
		out = append(out, Interval{Lo: lo, Hi: hi, Vec: vec})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("simpoint: stream of %d µops yields no full interval of %d", len(uops), intervalLen)
	}
	return out, nil
}

// Project reduces vectors to dim dimensions with a deterministic random
// ±1 projection, as the SimPoint tool does before clustering.
func Project(vecs [][]float64, dim int, seed int64) [][]float64 {
	if len(vecs) == 0 || dim <= 0 {
		return nil
	}
	in := len(vecs[0])
	rng := rand.New(rand.NewSource(seed))
	proj := make([][]float64, in)
	for i := range proj {
		proj[i] = make([]float64, dim)
		for j := range proj[i] {
			if rng.Intn(2) == 0 {
				proj[i][j] = 1
			} else {
				proj[i][j] = -1
			}
		}
	}
	out := make([][]float64, len(vecs))
	for v, vec := range vecs {
		o := make([]float64, dim)
		for i, x := range vec {
			if x == 0 {
				continue
			}
			row := proj[i]
			for j := range o {
				o[j] += x * row[j]
			}
		}
		out[v] = o
	}
	return out
}

// KMeans clusters the vectors into k groups with Lloyd's algorithm and
// deterministic k-means++ style seeding. It returns the cluster assignment
// per vector.
func KMeans(vecs [][]float64, k int, seed int64, maxIter int) ([]int, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("simpoint: no vectors to cluster")
	}
	if k <= 0 {
		return nil, fmt.Errorf("simpoint: cluster count must be positive, got %d", k)
	}
	if k > len(vecs) {
		k = len(vecs)
	}
	rng := rand.New(rand.NewSource(seed))

	dist2 := func(a, b []float64) float64 {
		var d float64
		for i := range a {
			x := a[i] - b[i]
			d += x * x
		}
		return d
	}

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), vecs[rng.Intn(len(vecs))]...))
	d2 := make([]float64, len(vecs))
	for len(centers) < k {
		var sum float64
		for i, v := range vecs {
			best := math.Inf(1)
			for _, c := range centers {
				if d := dist2(v, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum == 0 {
			// All remaining vectors coincide with a center.
			centers = append(centers, append([]float64(nil), vecs[rng.Intn(len(vecs))]...))
			continue
		}
		x := rng.Float64() * sum
		idx := 0
		for i, d := range d2 {
			if x < d {
				idx = i
				break
			}
			x -= d
		}
		centers = append(centers, append([]float64(nil), vecs[idx]...))
	}

	assign := make([]int, len(vecs))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := dist2(v, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, len(centers))
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				centers[c][j] += x
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster on a random vector.
				copy(centers[c], vecs[rng.Intn(len(vecs))])
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
	}
	return assign, nil
}

// Pick is one selected representative interval and its weight (the fraction
// of intervals its cluster covers).
type Pick struct {
	Interval int // index into the CollectBBVs result
	Weight   float64
}

// Choose runs the full SimPoint pipeline over the intervals: projection,
// k-means, and per-cluster selection of the interval closest to its cluster
// centroid. Weights sum to one.
func Choose(intervals []Interval, k int, seed int64) ([]Pick, error) {
	vecs := make([][]float64, len(intervals))
	for i := range intervals {
		vecs[i] = intervals[i].Vec
	}
	const projDim = 16
	proj := Project(vecs, projDim, seed)
	assign, err := KMeans(proj, k, seed+1, 50)
	if err != nil {
		return nil, err
	}
	nClusters := 0
	for _, a := range assign {
		if a+1 > nClusters {
			nClusters = a + 1
		}
	}
	// Cluster centroids in projected space.
	centers := make([][]float64, nClusters)
	counts := make([]int, nClusters)
	for i := range centers {
		centers[i] = make([]float64, projDim)
	}
	for i, a := range assign {
		counts[a]++
		for j, x := range proj[i] {
			centers[a][j] += x
		}
	}
	for c := range centers {
		if counts[c] > 0 {
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
	}
	var picks []Pick
	for c := range centers {
		if counts[c] == 0 {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for i, a := range assign {
			if a != c {
				continue
			}
			var d float64
			for j := range proj[i] {
				x := proj[i][j] - centers[c][j]
				d += x * x
			}
			if d < bestD {
				best, bestD = i, d
			}
		}
		picks = append(picks, Pick{Interval: best, Weight: float64(counts[c]) / float64(len(intervals))})
	}
	return picks, nil
}
