package simpoint

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestCollectBBVs(t *testing.T) {
	p, _ := workload.ByName("401.bzip2")
	gen := workload.NewGenerator(p, 5)
	uops := gen.Take(50000)
	ivs, err := CollectBBVs(uops, gen.BlockOf, gen.NumBlocks(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 10 {
		t.Fatalf("expected 10 intervals, got %d", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Hi-iv.Lo != 5000 {
			t.Fatalf("interval %d spans %d", i, iv.Hi-iv.Lo)
		}
		var sum float64
		for _, x := range iv.Vec {
			if x < 0 {
				t.Fatalf("negative frequency in interval %d", i)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("interval %d vector sums to %g", i, sum)
		}
	}
}

func TestCollectBBVsErrors(t *testing.T) {
	p, _ := workload.ByName("456.hmmer")
	gen := workload.NewGenerator(p, 5)
	uops := gen.Take(100)
	if _, err := CollectBBVs(uops, gen.BlockOf, gen.NumBlocks(), 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := CollectBBVs(uops, gen.BlockOf, 0, 50); err == nil {
		t.Fatal("zero block count accepted")
	}
	if _, err := CollectBBVs(uops, gen.BlockOf, gen.NumBlocks(), 1000); err == nil {
		t.Fatal("stream shorter than one interval accepted")
	}
	bad := func(uint64) int { return -1 }
	if _, err := CollectBBVs(uops, bad, 4, 50); err == nil {
		t.Fatal("out-of-range block mapping accepted")
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	// Two tight, far-apart groups.
	var vecs [][]float64
	for i := 0; i < 10; i++ {
		vecs = append(vecs, []float64{1 + 0.01*float64(i), 0})
	}
	for i := 0; i < 10; i++ {
		vecs = append(vecs, []float64{0, 5 + 0.01*float64(i)})
	}
	assign, err := KMeans(vecs, 2, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if assign[i] != assign[0] {
			t.Fatal("group one split")
		}
	}
	for i := 11; i < 20; i++ {
		if assign[i] != assign[10] {
			t.Fatal("group two split")
		}
	}
	if assign[0] == assign[10] {
		t.Fatal("groups not separated")
	}
}

func TestKMeansDeterministicAndBounded(t *testing.T) {
	vecs := [][]float64{{1}, {2}, {3}, {100}}
	a, err := KMeans(vecs, 2, 7, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := KMeans(vecs, 2, 7, 30)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("k-means not deterministic")
		}
	}
	// k larger than the vector count must clamp, not fail.
	if _, err := KMeans(vecs, 10, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := KMeans(nil, 2, 1, 10); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMeans(vecs, 0, 1, 10); err == nil {
		t.Fatal("zero clusters accepted")
	}
}

func TestProjectShapeAndDeterminism(t *testing.T) {
	vecs := [][]float64{{1, 0, 2}, {0, 1, 0}}
	a := Project(vecs, 4, 3)
	b := Project(vecs, 4, 3)
	if len(a) != 2 || len(a[0]) != 4 {
		t.Fatalf("projection shape %dx%d", len(a), len(a[0]))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("projection not deterministic")
			}
		}
	}
	if Project(nil, 4, 3) != nil {
		t.Fatal("empty projection must be nil")
	}
}

func TestChooseWeightsSumToOne(t *testing.T) {
	p, _ := workload.ByName("401.bzip2")
	gen := workload.NewGenerator(p, 9)
	uops := gen.Take(80000)
	ivs, err := CollectBBVs(uops, gen.BlockOf, gen.NumBlocks(), 8000)
	if err != nil {
		t.Fatal(err)
	}
	picks, err := Choose(ivs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) == 0 || len(picks) > 3 {
		t.Fatalf("got %d picks", len(picks))
	}
	var sum float64
	for _, p := range picks {
		if p.Interval < 0 || p.Interval >= len(ivs) {
			t.Fatalf("pick %d out of range", p.Interval)
		}
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", sum)
	}
}

// TestChooseFindsPhases: bzip2's two program phases should land in
// different clusters.
func TestChooseFindsPhases(t *testing.T) {
	p, _ := workload.ByName("401.bzip2")
	gen := workload.NewGenerator(p, 9)
	uops := gen.Take(200000)
	ivs, err := CollectBBVs(uops, gen.BlockOf, gen.NumBlocks(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	picks, err := Choose(ivs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) < 2 {
		t.Fatalf("phased workload clustered into %d group(s)", len(picks))
	}
}
