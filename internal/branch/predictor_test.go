package branch

import (
	"math/rand"
	"testing"
)

func rate(p Predictor, seq []bool, pc uint64) float64 {
	correct := 0
	for _, taken := range seq {
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(len(seq))
}

func TestBimodalLearnsBias(t *testing.T) {
	p, err := New("bimodal", 10)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]bool, 1000)
	for i := range seq {
		seq[i] = i%10 != 0 // 90% taken
	}
	if r := rate(p, seq, 0x400); r < 0.85 {
		t.Fatalf("bimodal accuracy %.2f on a 90%%-biased branch", r)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// A strict alternation defeats a 2-bit bimodal (~50%) but is perfectly
	// correlated with global history.
	seq := make([]bool, 2000)
	for i := range seq {
		seq[i] = i%2 == 0
	}
	bi, _ := New("bimodal", 10)
	gs, _ := New("gshare", 10)
	rb := rate(bi, seq, 0x400)
	rg := rate(gs, seq[1000:], 0x400) // score after warmup
	if rg < 0.95 {
		t.Fatalf("gshare accuracy %.2f on an alternating branch", rg)
	}
	if rg <= rb {
		t.Fatalf("gshare (%.2f) must beat bimodal (%.2f) on patterns", rg, rb)
	}
}

func TestTournamentTracksBestComponent(t *testing.T) {
	seq := make([]bool, 3000)
	for i := range seq {
		seq[i] = i%2 == 0
	}
	tp, _ := New("tournament", 10)
	if r := rate(tp, seq[1500:], 0x400); r < 0.9 {
		t.Fatalf("tournament accuracy %.2f on a pattern branch", r)
	}
}

func TestAlwaysTaken(t *testing.T) {
	p, _ := New("taken", 4)
	if !p.Predict(0) || p.Name() != "taken" {
		t.Fatal("taken predictor misbehaves")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("oracle", 10); err == nil {
		t.Fatal("unknown predictor accepted")
	}
	if _, err := New("gshare", 0); err == nil {
		t.Fatal("zero-bit table accepted")
	}
	if _, err := New("gshare", 30); err == nil {
		t.Fatal("oversized table accepted")
	}
}

func TestPredictorsAreDeterministic(t *testing.T) {
	mk := func() Predictor { p, _ := New("tournament", 8); return p }
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		pc := uint64(rng.Intn(64)) * 16
		taken := rng.Intn(3) > 0
		if a.Predict(pc) != b.Predict(pc) {
			t.Fatalf("divergence at step %d", i)
		}
		a.Update(pc, taken)
		b.Update(pc, taken)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(16)
	if _, ok := b.Lookup(0x400); ok {
		t.Fatal("cold BTB must miss")
	}
	b.Update(0x400, 0x500)
	if tgt, ok := b.Lookup(0x400); !ok || tgt != 0x500 {
		t.Fatalf("lookup = %#x,%v", tgt, ok)
	}
	// A conflicting pc overwrites the direct-mapped entry.
	conflict := uint64(0x400 + 16*4)
	b.Update(conflict, 0x900)
	if _, ok := b.Lookup(0x400); ok {
		t.Fatal("overwritten entry must miss")
	}
	if b.Hits == 0 || b.Misses == 0 {
		t.Fatal("counters must move")
	}
}

func TestBTBRoundsUpAndPanics(t *testing.T) {
	b := NewBTB(3) // rounds to 4
	b.Update(4, 8)
	if tgt, ok := b.Lookup(4); !ok || tgt != 8 {
		t.Fatal("rounded BTB must work")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid size must panic")
		}
	}()
	NewBTB(0)
}
