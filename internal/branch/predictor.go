// Package branch implements the branch-direction predictors and the branch
// target buffer of the target machine. The predictor is a structure-domain
// choice (paper Section IV-D): changing it requires regenerating the
// dependence graph and its RpStacks, while the misprediction *penalty* stays
// a latency-domain knob.
package branch

import "fmt"

// Predictor predicts conditional branch directions and learns from
// resolutions. Implementations are deterministic.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
	// Name identifies the predictor design.
	Name() string
}

// New builds the named predictor with a table of 2^bits entries. Supported
// names: "bimodal", "gshare", "tournament" and "taken".
func New(name string, bits int) (Predictor, error) {
	if bits <= 0 || bits > 24 {
		return nil, fmt.Errorf("branch: table size 2^%d out of range", bits)
	}
	switch name {
	case "bimodal":
		return newBimodal(bits), nil
	case "gshare":
		return newGshare(bits), nil
	case "tournament":
		return newTournament(bits), nil
	case "taken":
		return alwaysTaken{}, nil
	default:
		return nil, fmt.Errorf("branch: unknown predictor %q", name)
	}
}

// counter is a 2-bit saturating counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type alwaysTaken struct{}

func (alwaysTaken) Predict(uint64) bool { return true }
func (alwaysTaken) Update(uint64, bool) {}
func (alwaysTaken) Name() string        { return "taken" }

// bimodal is a PC-indexed table of 2-bit counters.
type bimodal struct {
	mask  uint64
	table []counter
}

func newBimodal(bits int) *bimodal {
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &bimodal{mask: uint64(n - 1), table: t}
}

func (b *bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

func (b *bimodal) Predict(pc uint64) bool { return b.table[b.idx(pc)].taken() }

func (b *bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].train(taken)
}

func (b *bimodal) Name() string { return "bimodal" }

// gshare XORs a global history register into the table index, capturing
// correlated branch behaviour.
type gshare struct {
	mask    uint64
	history uint64
	table   []counter
}

func newGshare(bits int) *gshare {
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &gshare{mask: uint64(n - 1), table: t}
}

func (g *gshare) idx(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

func (g *gshare) Predict(pc uint64) bool { return g.table[g.idx(pc)].taken() }

func (g *gshare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].train(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= g.mask
}

func (g *gshare) Name() string { return "gshare" }

// tournament selects per-branch between a bimodal and a gshare component
// with a table of choice counters (taken = use gshare).
type tournament struct {
	mask   uint64
	choice []counter
	bi     *bimodal
	gs     *gshare
}

func newTournament(bits int) *tournament {
	n := 1 << bits
	ch := make([]counter, n)
	for i := range ch {
		ch[i] = 2
	}
	return &tournament{mask: uint64(n - 1), choice: ch, bi: newBimodal(bits), gs: newGshare(bits)}
}

func (t *tournament) Predict(pc uint64) bool {
	if t.choice[(pc>>2)&t.mask].taken() {
		return t.gs.Predict(pc)
	}
	return t.bi.Predict(pc)
}

func (t *tournament) Update(pc uint64, taken bool) {
	bp := t.bi.Predict(pc)
	gp := t.gs.Predict(pc)
	i := (pc >> 2) & t.mask
	// Train the chooser toward the component that was right when they
	// disagree.
	if bp != gp {
		t.choice[i] = t.choice[i].train(gp == taken)
	}
	t.bi.Update(pc, taken)
	t.gs.Update(pc, taken)
}

func (t *tournament) Name() string { return "tournament" }

// BTB is a direct-mapped branch target buffer. A taken branch whose target
// is absent or stale redirects the front end just like a mispredicted
// direction.
type BTB struct {
	mask    uint64
	tags    []uint64
	targets []uint64
	valid   []bool

	Hits, Misses uint64
}

// NewBTB builds a BTB with the given number of entries (rounded up to a
// power of two).
func NewBTB(entries int) *BTB {
	if entries <= 0 {
		panic(fmt.Sprintf("branch: invalid BTB size %d", entries))
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	return &BTB{
		mask:    uint64(n - 1),
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		valid:   make([]bool, n),
	}
}

func (b *BTB) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Lookup returns the stored target for pc, if any.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	i := b.idx(pc)
	if b.valid[i] && b.tags[i] == pc {
		b.Hits++
		return b.targets[i], true
	}
	b.Misses++
	return 0, false
}

// Update stores the resolved target for pc.
func (b *BTB) Update(pc, target uint64) {
	i := b.idx(pc)
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}
