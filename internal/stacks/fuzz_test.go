package stacks_test

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/stacks"
)

// fuzzStacks decodes a byte string into two stall-event stacks and a latency
// assignment: three float64 streams, folded into sane non-negative finite
// ranges so the fuzzer explores the metric rather than IEEE corner cases the
// domain never produces (counts and latencies are finite and non-negative by
// construction).
func fuzzStacks(data []byte) (a, b stacks.Stack, l stacks.Latencies) {
	fold := func(i int, scale float64) float64 {
		var u uint64
		off := i * 8
		if off+8 <= len(data) {
			u = binary.LittleEndian.Uint64(data[off : off+8])
		}
		v := math.Abs(math.Float64frombits(u))
		if math.IsInf(v, 0) || math.IsNaN(v) {
			v = float64(u % 1000)
		}
		v = math.Mod(v, scale)
		if v < 1e-9 {
			v = 0 // flush denormal-range folds: products of real counts and latencies never underflow
		}
		return v
	}
	n := int(stacks.NumEvents)
	for e := 0; e < n; e++ {
		a.Counts[e] = fold(e, 1e6)
		b.Counts[e] = fold(n+e, 1e6)
		l[e] = fold(2*n+e, 300)
	}
	return a, b, l
}

// FuzzSimilarity checks the metric axioms of the paper's modified cosine
// similarity (Figure 9) on arbitrary stack pairs: the result is within
// [0, 1], exactly symmetric, 1 on self-comparison, and 1 between any stack
// and a positive scaling of itself (the normalization property the merge
// threshold relies on).
func FuzzSimilarity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	seed := make([]byte, int(stacks.NumEvents)*3*8)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, l := fuzzStacks(data)
		s := stacks.Similarity(&a, &b, &l)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("similarity %g outside [0, 1]", s)
		}
		if r := stacks.Similarity(&b, &a, &l); r != s {
			t.Fatalf("asymmetric: sim(a,b)=%g sim(b,a)=%g", s, r)
		}
		if self := stacks.Similarity(&a, &a, &l); math.Abs(self-1) > 1e-9 {
			t.Fatalf("self-similarity %g, want 1", self)
		}
		// Per-dimension max-normalization makes the metric scale-invariant.
		scaled := a.Scaled(3)
		if s := stacks.Similarity(&a, &scaled, &l); math.Abs(s-1) > 1e-9 {
			t.Fatalf("similarity to own scaling %g, want 1", s)
		}
	})
}
