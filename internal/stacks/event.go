// Package stacks defines the stall-event taxonomy and the stall-event stack,
// the central data structure of RpStacks.
//
// A stall-event stack records, for one execution path through the dependence
// graph, how many times the latency of each event kind is paid along the
// path. Because the stack stores event *counts* rather than cycles, the total
// length of the path under any latency configuration is a simple dot product
// (Stack.Total), which is what makes single-simulation design space
// exploration possible: the stack is collected once under the baseline
// configuration and re-weighted for free for every candidate configuration.
package stacks

import "fmt"

// Event identifies one kind of performance-critical stall event. Every edge
// of the dependence graph is attributed to exactly one event kind; the
// latency domain of the design space assigns a cycle cost to each kind.
type Event uint8

// The event taxonomy. Base counts raw pipeline-advance cycles (its latency is
// fixed at one cycle and is not part of the design space); all other events
// are latency-domain knobs. Instruction- and data-side cache events are
// attributed to the hierarchy level that served the access, matching the CPI
// stack components shown in the paper's Figures 5, 6 and 12.
const (
	Base Event = iota // un-optimizable pipeline advances (1 cycle per count)

	L1I  // instruction fetch served by the L1 instruction cache
	L2I  // instruction fetch served by the L2 cache
	MemI // instruction fetch served by main memory
	ITLB // instruction TLB miss penalty

	L1D  // load served by the L1 data cache
	L2D  // load served by the L2 cache
	MemD // load served by main memory
	DTLB // data TLB miss penalty

	Agu   // address generation for loads and stores (the LD unit of Table II)
	Store // store buffer write

	Branch // branch misprediction redirect and front-end refill

	IntAlu // simple integer ALU operation
	IntMul // integer multiply
	IntDiv // integer divide
	FpAdd  // floating-point add/subtract
	FpMul  // floating-point multiply
	FpDiv  // floating-point divide

	NumEvents // number of event kinds; not a valid Event
)

var eventNames = [NumEvents]string{
	Base:   "Base",
	L1I:    "L1I",
	L2I:    "L2I",
	MemI:   "MemI",
	ITLB:   "ITLB",
	L1D:    "L1D",
	L2D:    "L2D",
	MemD:   "MemD",
	DTLB:   "DTLB",
	Agu:    "Agu",
	Store:  "Store",
	Branch: "Branch",
	IntAlu: "IntAlu",
	IntMul: "IntMul",
	IntDiv: "IntDiv",
	FpAdd:  "FpAdd",
	FpMul:  "FpMul",
	FpDiv:  "FpDiv",
}

// String returns the canonical short name of the event kind.
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Valid reports whether e names a real event kind.
func (e Event) Valid() bool { return e < NumEvents }

// Events returns all event kinds in taxonomy order. The returned slice is
// freshly allocated and may be modified by the caller.
func Events() []Event {
	evs := make([]Event, NumEvents)
	for i := range evs {
		evs[i] = Event(i)
	}
	return evs
}

// ParseEvent resolves a canonical event name (as produced by Event.String)
// back to the event kind.
func ParseEvent(name string) (Event, error) {
	for i, n := range eventNames {
		if n == name {
			return Event(i), nil
		}
	}
	return NumEvents, fmt.Errorf("stacks: unknown event %q", name)
}

// Optimizable reports whether the event kind is a latency-domain knob the
// design space exploration may adjust. Base is the only fixed kind.
func (e Event) Optimizable() bool { return e.Valid() && e != Base }
