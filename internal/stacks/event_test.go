package stacks

import "testing"

func TestEventNamesRoundTrip(t *testing.T) {
	for _, e := range Events() {
		got, err := ParseEvent(e.String())
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", e.String(), err)
		}
		if got != e {
			t.Fatalf("round trip %s -> %s", e, got)
		}
	}
}

func TestParseEventUnknown(t *testing.T) {
	if _, err := ParseEvent("NoSuchEvent"); err == nil {
		t.Fatal("unknown event must error")
	}
}

func TestEventValidity(t *testing.T) {
	if NumEvents.Valid() {
		t.Fatal("NumEvents is not a valid event")
	}
	if !Base.Valid() || !FpDiv.Valid() {
		t.Fatal("real events must be valid")
	}
	if Base.Optimizable() {
		t.Fatal("Base is not a latency knob")
	}
	if !MemD.Optimizable() {
		t.Fatal("MemD is a latency knob")
	}
	if Event(200).String() == "" {
		t.Fatal("out-of-range events still render")
	}
}

func TestEventCountFitsSupportMask(t *testing.T) {
	if NumEvents >= 64 {
		t.Fatalf("NumEvents = %d breaks the uint64 support mask", NumEvents)
	}
}
