package stacks

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Latencies assigns a cycle cost to every event kind. It is the latency
// domain of the design space: a design point is one Latencies value for a
// fixed structure. Base must always be 1.
type Latencies [NumEvents]float64

// Lat returns the cycle cost of the event kind.
func (l *Latencies) Lat(e Event) float64 { return l[e] }

// Validate checks that the latency assignment is self-consistent: Base is
// exactly one cycle and every kind is positive except the TLB penalties and
// Store, which may be zero.
func (l *Latencies) Validate() error {
	if l[Base] != 1 {
		return fmt.Errorf("stacks: Base latency must be 1, got %g", l[Base])
	}
	for e := Event(0); e < NumEvents; e++ {
		if l[e] < 0 {
			return fmt.Errorf("stacks: %s latency is negative (%g)", e, l[e])
		}
		switch e {
		case ITLB, DTLB, Store:
		default:
			if l[e] == 0 {
				return fmt.Errorf("stacks: %s latency must be positive", e)
			}
		}
	}
	return nil
}

// With returns a copy of l with the latency of e replaced.
func (l Latencies) With(e Event, cycles float64) Latencies {
	l[e] = cycles
	return l
}

// Scale returns a copy of l with the latency of e multiplied by factor and
// rounded up to a whole cycle (hardware latencies are integral), but never
// below one cycle.
func (l Latencies) Scale(e Event, factor float64) Latencies {
	v := math.Ceil(l[e] * factor)
	if v < 1 {
		v = 1
	}
	l[e] = v
	return l
}

// Stack is a stall-event stack: per event kind, the number of times the
// event's latency is paid along one execution path. For Base the count is
// the raw number of un-optimizable cycles.
type Stack struct {
	Counts [NumEvents]float64
}

// Add accumulates n occurrences of event e.
func (s *Stack) Add(e Event, n float64) { s.Counts[e] += n }

// AddStack accumulates every component of o into s.
func (s *Stack) AddStack(o *Stack) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
}

// Total returns the length in cycles of the path under the given latency
// assignment: the dot product of event counts and event latencies.
func (s *Stack) Total(l *Latencies) float64 {
	var t float64
	for i := range s.Counts {
		t += s.Counts[i] * l[i]
	}
	return t
}

// Penalties returns the per-event cycle decomposition of the path under the
// given latency assignment (the bars of a stall-event stack plot).
func (s *Stack) Penalties(l *Latencies) [NumEvents]float64 {
	var p [NumEvents]float64
	for i := range s.Counts {
		p[i] = s.Counts[i] * l[i]
	}
	return p
}

// Support returns a bitmask with bit e set when the stack has a nonzero
// count for event e. NumEvents must stay below 64 for this representation.
func (s *Stack) Support() uint64 {
	var m uint64
	for i := range s.Counts {
		if s.Counts[i] != 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Dominates reports whether every component of s is at least the matching
// component of o. When s dominates o, path o can never be longer than path s
// under any non-negative latency assignment, so o may be discarded without
// loss of prediction accuracy.
func (s *Stack) Dominates(o *Stack) bool {
	for i := range s.Counts {
		if s.Counts[i] < o.Counts[i] {
			return false
		}
	}
	return true
}

// Scaled returns a copy of s with every count multiplied by w. It is used to
// combine SimPoint representative stacks with their cluster weights.
func (s *Stack) Scaled(w float64) Stack {
	var out Stack
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] * w
	}
	return out
}

// IsZero reports whether the stack holds no events at all.
func (s *Stack) IsZero() bool {
	for i := range s.Counts {
		if s.Counts[i] != 0 {
			return false
		}
	}
	return true
}

// Similarity computes the paper's modified cosine similarity (Figure 9)
// between the penalty vectors of two stacks under the given latency
// assignment. Each dimension is first normalized by the larger of the two
// magnitudes, so that a dimension where the paths agree contributes fully
// regardless of its absolute size; the result is the cosine of the angle
// between the normalized vectors, in [0, 1]. Two zero vectors are defined to
// be identical (similarity 1).
func Similarity(a, b *Stack, l *Latencies) float64 {
	var dot, na, nb float64
	for i := range a.Counts {
		pa := a.Counts[i] * l[i]
		pb := b.Counts[i] * l[i]
		m := pa
		if pb > m {
			m = pb
		}
		if m == 0 {
			continue // both zero: the dimension carries no information
		}
		pa /= m
		pb /= m
		dot += pa * pb
		na += pa * pa
		nb += pb * pb
	}
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	sim := dot / (math.Sqrt(na) * math.Sqrt(nb))
	// Guard against floating-point drift outside [0, 1].
	if sim > 1 {
		sim = 1
	}
	if sim < 0 {
		sim = 0
	}
	return sim
}

// Format renders the nonzero components of the stack under the given latency
// assignment, largest first, as a compact single-line summary.
func (s *Stack) Format(l *Latencies) string {
	type comp struct {
		e Event
		c float64
	}
	var comps []comp
	for i := range s.Counts {
		if c := s.Counts[i] * l[i]; c != 0 {
			comps = append(comps, comp{Event(i), c})
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].c > comps[j].c })
	var b strings.Builder
	fmt.Fprintf(&b, "total=%.0f [", s.Total(l))
	for i, c := range comps {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.0f", c.e, c.c)
	}
	b.WriteString("]")
	return b.String()
}
