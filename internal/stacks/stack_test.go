package stacks

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func baseLat() Latencies {
	var l Latencies
	l[Base] = 1
	l[L1I], l[L2I], l[MemI], l[ITLB] = 2, 12, 133, 20
	l[L1D], l[L2D], l[MemD], l[DTLB] = 4, 12, 133, 20
	l[Agu], l[Store], l[Branch] = 2, 1, 8
	l[IntAlu], l[IntMul], l[IntDiv] = 1, 4, 32
	l[FpAdd], l[FpMul], l[FpDiv] = 6, 6, 24
	return l
}

func randStack(rng *rand.Rand) Stack {
	var s Stack
	for e := 0; e < int(NumEvents); e++ {
		if rng.Intn(2) == 0 {
			s.Counts[e] = float64(rng.Intn(50))
		}
	}
	return s
}

func TestTotalIsDotProduct(t *testing.T) {
	l := baseLat()
	var s Stack
	s.Add(L1D, 3)
	s.Add(FpMul, 2)
	s.Add(Base, 10)
	want := 3*4 + 2*6 + 10*1.0
	if got := s.Total(&l); got != want {
		t.Fatalf("Total = %g, want %g", got, want)
	}
	p := s.Penalties(&l)
	if p[L1D] != 12 || p[FpMul] != 12 || p[Base] != 10 {
		t.Fatalf("Penalties = %v", p)
	}
}

func TestAddStackAndScaled(t *testing.T) {
	var a, b Stack
	a.Add(L1D, 2)
	b.Add(L1D, 3)
	b.Add(FpAdd, 1)
	a.AddStack(&b)
	if a.Counts[L1D] != 5 || a.Counts[FpAdd] != 1 {
		t.Fatalf("AddStack got %v", a.Counts)
	}
	h := a.Scaled(0.5)
	if h.Counts[L1D] != 2.5 || a.Counts[L1D] != 5 {
		t.Fatalf("Scaled mutated receiver or miscomputed: %v %v", h.Counts, a.Counts)
	}
}

func TestSupportAndIsZero(t *testing.T) {
	var s Stack
	if !s.IsZero() || s.Support() != 0 {
		t.Fatal("zero stack misreported")
	}
	s.Add(FpDiv, 1)
	if s.IsZero() {
		t.Fatal("nonzero stack reported zero")
	}
	if s.Support() != 1<<uint(FpDiv) {
		t.Fatalf("Support = %b", s.Support())
	}
}

func TestDominates(t *testing.T) {
	var a, b Stack
	a.Add(L1D, 3)
	a.Add(Base, 5)
	b.Add(L1D, 2)
	if !a.Dominates(&b) {
		t.Fatal("componentwise-greater stack must dominate")
	}
	if b.Dominates(&a) {
		t.Fatal("smaller stack cannot dominate")
	}
	b.Add(FpAdd, 1)
	if a.Dominates(&b) {
		t.Fatal("stack missing a component cannot dominate")
	}
	if !a.Dominates(&a) {
		t.Fatal("a stack dominates itself")
	}
}

// TestDominationImpliesNeverLonger is the soundness property behind the
// lossless reduction: if a dominates b, then under every non-negative
// latency assignment a's total is at least b's.
func TestDominationImpliesNeverLonger(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := randStack(rng)
		b := randStack(rng)
		if !a.Dominates(&b) {
			return true
		}
		var l Latencies
		for e := range l {
			l[e] = float64(rng.Intn(100))
		}
		return a.Total(&l) >= b.Total(&l)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSimilarityFigure9 replays the shape of the paper's Figure 9 example:
// per-dimension max-normalization makes similarity insensitive to uniform
// scaling of a shared dimension, and a path with a unique component is far
// from a path without it.
func TestSimilarityFigure9(t *testing.T) {
	l := baseLat()
	var a, b, c Stack
	a.Add(L1D, 30)
	a.Add(FpAdd, 10)
	b.Add(L1D, 28)
	b.Add(FpAdd, 9)
	c.Add(FpDiv, 10)
	if s := Similarity(&a, &b, &l); s < 0.95 {
		t.Fatalf("near-identical paths similarity %g, want >= 0.95", s)
	}
	if s := Similarity(&a, &c, &l); s != 0 {
		t.Fatalf("disjoint-support paths similarity %g, want 0", s)
	}
}

func TestSimilarityProperties(t *testing.T) {
	l := baseLat()
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a := randStack(rng)
		b := randStack(rng)
		s1 := Similarity(&a, &b, &l)
		s2 := Similarity(&b, &a, &l)
		if math.Abs(s1-s2) > 1e-12 {
			return false // symmetric
		}
		if s1 < 0 || s1 > 1 {
			return false // bounded
		}
		self := Similarity(&a, &a, &l)
		return math.Abs(self-1) < 1e-12 // reflexive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityZeroVectors(t *testing.T) {
	l := baseLat()
	var z, a Stack
	a.Add(L1D, 1)
	if s := Similarity(&z, &z, &l); s != 1 {
		t.Fatalf("two empty paths similarity %g, want 1", s)
	}
	if s := Similarity(&z, &a, &l); s != 0 {
		t.Fatalf("empty vs nonempty similarity %g, want 0", s)
	}
}

func TestLatenciesValidate(t *testing.T) {
	l := baseLat()
	if err := l.Validate(); err != nil {
		t.Fatalf("baseline latencies invalid: %v", err)
	}
	bad := l
	bad[Base] = 2
	if bad.Validate() == nil {
		t.Fatal("Base != 1 must fail")
	}
	bad = l
	bad[FpMul] = 0
	if bad.Validate() == nil {
		t.Fatal("zero FU latency must fail")
	}
	bad = l
	bad[L1D] = -1
	if bad.Validate() == nil {
		t.Fatal("negative latency must fail")
	}
	ok := l
	ok[DTLB] = 0
	if err := ok.Validate(); err != nil {
		t.Fatalf("zero TLB penalty should be legal: %v", err)
	}
}

func TestLatenciesWithAndScale(t *testing.T) {
	l := baseLat()
	m := l.With(L1D, 2)
	if l[L1D] != 4 || m[L1D] != 2 {
		t.Fatal("With must copy")
	}
	s := l.Scale(FpDiv, 0.1) // 24 * 0.1 = 2.4 -> ceil 3
	if s[FpDiv] != 3 {
		t.Fatalf("Scale rounded to %g, want 3", s[FpDiv])
	}
	s = l.Scale(IntAlu, 0.01) // floors at one cycle
	if s[IntAlu] != 1 {
		t.Fatalf("Scale floor = %g, want 1", s[IntAlu])
	}
}

func TestFormatMentionsLargestComponent(t *testing.T) {
	l := baseLat()
	var s Stack
	s.Add(MemD, 10)
	s.Add(Base, 1)
	got := s.Format(&l)
	if want := "MemD=1330"; !strings.Contains(got, want) {
		t.Fatalf("Format %q missing %q", got, want)
	}
}
