package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Binary trace format: a magic header, the record count and cycle total,
// then one varint-packed record per µop. Written by cmd/rptrace, readable by
// any tool in the repository.
const (
	magic   = "RPTRC"
	version = 1
)

// Write serializes the trace.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(version); err != nil {
		return err
	}
	if err := putU(uint64(len(t.Records))); err != nil {
		return err
	}
	if err := putI(t.Cycles); err != nil {
		return err
	}
	if err := putU(t.Mispredicts); err != nil {
		return err
	}
	for i := range t.Records {
		r := &t.Records[i]
		flags := uint64(0)
		setBit := func(bit uint, on bool) {
			if on {
				flags |= 1 << bit
			}
		}
		setBit(0, r.SoM)
		setBit(1, r.EoM)
		setBit(2, r.NewFetchLine)
		setBit(3, r.ITLBMiss)
		setBit(4, r.DTLBMiss)
		setBit(5, r.Mispredicted)
		flags |= uint64(r.Class) << 8
		flags |= uint64(r.FetchLevel) << 16
		flags |= uint64(r.DataLevel) << 20
		for _, u := range [...]uint64{r.Seq, r.MacroSeq, flags, r.PC, r.Addr} {
			if err := putU(u); err != nil {
				return err
			}
		}
		for _, v := range [...]int64{r.SrcDep1, r.SrcDep2, r.AddrDep, r.ShareWith, r.IQFreeBy, r.RegFreeBy, r.MSHRFreeBy, r.FUFreeBy} {
			if err := putI(v); err != nil {
				return err
			}
		}
		for _, ts := range r.T {
			if err := putI(ts); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getI := func() (int64, error) { return binary.ReadVarint(br) }

	ver, err := getU()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	n, err := getU()
	if err != nil {
		return nil, err
	}
	const maxRecords = 1 << 31
	if n > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", n)
	}
	// The count is untrusted until that many records actually parse, so the
	// slice grows as records arrive instead of trusting n with one huge
	// upfront allocation.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t := &Trace{Records: make([]Record, 0, capHint)}
	if t.Cycles, err = getI(); err != nil {
		return nil, err
	}
	if t.Mispredicts, err = getU(); err != nil {
		return nil, err
	}
	for i := 0; i < int(n); i++ {
		t.Records = append(t.Records, Record{})
		rec := &t.Records[i]
		var vals [5]uint64
		for j := range vals {
			if vals[j], err = getU(); err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
		}
		rec.Seq, rec.MacroSeq, rec.PC, rec.Addr = vals[0], vals[1], vals[3], vals[4]
		flags := vals[2]
		rec.SoM = flags&(1<<0) != 0
		rec.EoM = flags&(1<<1) != 0
		rec.NewFetchLine = flags&(1<<2) != 0
		rec.ITLBMiss = flags&(1<<3) != 0
		rec.DTLBMiss = flags&(1<<4) != 0
		rec.Mispredicted = flags&(1<<5) != 0
		rec.Class = isa.OpClass(flags >> 8 & 0xff)
		rec.FetchLevel = mem.Level(flags >> 16 & 0xf)
		rec.DataLevel = mem.Level(flags >> 20 & 0xf)
		for _, p := range [...]*int64{&rec.SrcDep1, &rec.SrcDep2, &rec.AddrDep,
			&rec.ShareWith, &rec.IQFreeBy, &rec.RegFreeBy, &rec.MSHRFreeBy, &rec.FUFreeBy} {
			if *p, err = getI(); err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
		}
		for j := range rec.T {
			if rec.T[j], err = getI(); err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
		}
	}
	return t, nil
}
