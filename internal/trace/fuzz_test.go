package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// fuzzSeedTrace builds a small hand-made trace exercising every encoded
// field class: flags, op classes, hierarchy levels, dependency references
// and timestamps.
func fuzzSeedTrace() *trace.Trace {
	t := &trace.Trace{Cycles: 57, Mispredicts: 1}
	r0 := trace.Record{
		Seq: 0, MacroSeq: 0, SoM: true, EoM: false,
		Class: isa.Load, PC: 0x400000, Addr: 0x7fff0010,
		NewFetchLine: true, FetchLevel: mem.LvlL2, ITLBMiss: true,
		DataLevel: mem.LvlMem, DTLBMiss: true,
	}
	r1 := trace.Record{
		Seq: 1, MacroSeq: 0, SoM: false, EoM: true,
		Class: isa.FpDiv, PC: 0x400004, Mispredicted: true,
		FetchLevel: mem.LvlL1,
	}
	for i := range r0.T {
		r0.T[i] = int64(i)
		r1.T[i] = int64(10 + i)
	}
	r0.SrcDep1, r0.SrcDep2, r0.AddrDep = trace.None, trace.None, trace.None
	r0.ShareWith, r0.IQFreeBy, r0.RegFreeBy = trace.None, trace.None, trace.None
	r0.MSHRFreeBy, r0.FUFreeBy = trace.None, trace.None
	r1 = r0
	r1.Seq, r1.Class, r1.SoM, r1.EoM = 1, isa.FpDiv, false, true
	r1.SrcDep1 = 0
	t.Records = append(t.Records, r0, r1)
	return t
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the binary trace decoder.
// Malformed input may only produce an error — never a panic or an oversized
// allocation — and any input that decodes must survive an encode/decode
// round trip bit-identically.
func FuzzTraceRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := trace.Write(&seed, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var empty bytes.Buffer
	if err := trace.Write(&empty, &trace.Trace{}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("RPTRC"))                  // header only
	f.Add([]byte("XXTRC\x01\x00\x00\x00")) // bad magic
	// Claims 2^30 records but carries none: must error, not allocate.
	f.Add(append([]byte("RPTRC\x01"), 0x80, 0x80, 0x80, 0x80, 0x04))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatalf("re-encoding a decoded trace failed: %v", err)
		}
		tr2, err := trace.Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding a written trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("encode/decode round trip changed the trace")
		}
	})
}
