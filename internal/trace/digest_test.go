package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestDigestMatchesEncoding pins the digest to the canonical encoding: it
// must equal the SHA-256 of exactly the bytes Write emits.
func TestDigestMatchesEncoding(t *testing.T) {
	tr := &Trace{Records: []Record{validRecord(0), validRecord(1), validRecord(2)}, Cycles: 12}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got, want := Digest(tr), hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("Digest = %s, want sha256(Write bytes) = %s", got, want)
	}
}

// TestDigestSensitivity checks the content-address property: equal traces
// digest equally, and any observable change — a record field, the cycle
// total, the record count — changes the digest.
func TestDigestSensitivity(t *testing.T) {
	mk := func() *Trace {
		return &Trace{Records: []Record{validRecord(0), validRecord(1)}, Cycles: 8, Mispredicts: 1}
	}
	base := Digest(mk())
	if base != Digest(mk()) {
		t.Fatal("equal traces produced different digests")
	}
	if len(base) != 64 {
		t.Fatalf("digest %q is not 64 hex chars", base)
	}

	mutations := map[string]func(*Trace){
		"cycles":      func(tr *Trace) { tr.Cycles++ },
		"mispredicts": func(tr *Trace) { tr.Mispredicts++ },
		"record-addr": func(tr *Trace) { tr.Records[1].Addr ^= 0x40 },
		"record-dep":  func(tr *Trace) { tr.Records[1].SrcDep1 = 0 },
		"timestamp":   func(tr *Trace) { tr.Records[0].T[SCommit]++ },
		"truncated":   func(tr *Trace) { tr.Records = tr.Records[:1] },
	}
	for name, mutate := range mutations {
		tr := mk()
		mutate(tr)
		if Digest(tr) == base {
			t.Errorf("%s: mutation did not change the digest", name)
		}
	}
}
