package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func validRecord(seq uint64) Record {
	r := Record{
		Seq: seq, MacroSeq: seq, SoM: true, EoM: true,
		Class: isa.IntAlu, PC: 0x400000 + seq*16,
		SrcDep1: None, SrcDep2: None, AddrDep: None,
		ShareWith: None, IQFreeBy: None, RegFreeBy: None,
		MSHRFreeBy: None, FUFreeBy: None,
	}
	for s := Stage(0); s < NumStages; s++ {
		r.T[s] = int64(seq + uint64(s))
	}
	return r
}

func TestRecordValidate(t *testing.T) {
	r := validRecord(3)
	if err := r.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := r
	bad.T[SCommit] = bad.T[SFetch] - 1
	if bad.Validate() == nil {
		t.Fatal("non-monotone timestamps accepted")
	}
	bad = r
	bad.SrcDep1 = 3 // self-reference
	if bad.Validate() == nil {
		t.Fatal("self dependency accepted")
	}
	bad = r
	bad.FUFreeBy = 9 // forward reference
	if bad.Validate() == nil {
		t.Fatal("forward dependency accepted")
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Records: []Record{validRecord(0), validRecord(1)}, Cycles: 8}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	tr.Records[1].Seq = 5
	if tr.Validate() == nil {
		t.Fatal("bad sequence numbering accepted")
	}
	tr.Records[1] = validRecord(1)
	tr.Records[1].T[SCommit] = tr.Records[0].T[SCommit] - 1
	if tr.Validate() == nil {
		t.Fatal("out-of-order commit accepted")
	}
}

func TestTraceCounts(t *testing.T) {
	r0 := validRecord(0)
	r0.EoM = false
	r1 := validRecord(1)
	r1.SoM = false
	tr := &Trace{Records: []Record{r0, r1}, Cycles: 10}
	if tr.MicroOps() != 2 || tr.MacroOps() != 1 {
		t.Fatalf("µ/macro = %d/%d", tr.MicroOps(), tr.MacroOps())
	}
	if tr.CPI() != 5 {
		t.Fatalf("CPI = %g", tr.CPI())
	}
}

func randRecord(rng *rand.Rand, seq uint64) Record {
	r := validRecord(seq)
	r.Class = isa.OpClass(rng.Intn(int(isa.NumOpClasses)))
	r.PC = rng.Uint64() >> 8
	r.Addr = rng.Uint64() >> 8
	r.SoM = rng.Intn(2) == 0
	r.EoM = rng.Intn(2) == 0
	r.NewFetchLine = rng.Intn(2) == 0
	r.ITLBMiss = rng.Intn(8) == 0
	r.DTLBMiss = rng.Intn(8) == 0
	r.Mispredicted = rng.Intn(8) == 0
	r.FetchLevel = mem.Level(rng.Intn(3))
	r.DataLevel = mem.Level(rng.Intn(3))
	if seq > 0 {
		pick := func() int64 {
			if rng.Intn(2) == 0 {
				return None
			}
			return int64(rng.Intn(int(seq)))
		}
		r.SrcDep1, r.SrcDep2, r.AddrDep = pick(), pick(), pick()
		r.ShareWith, r.IQFreeBy, r.RegFreeBy = pick(), pick(), pick()
		r.MSHRFreeBy, r.FUFreeBy = pick(), pick()
	}
	base := int64(seq)
	for s := Stage(0); s < NumStages; s++ {
		base += int64(rng.Intn(20))
		r.T[s] = base
	}
	return r
}

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := &Trace{Cycles: 123456, Mispredicts: 42}
	for i := 0; i < 500; i++ {
		tr.Records = append(tr.Records, randRecord(rng, uint64(i)))
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != tr.Cycles || got.Mispredicts != tr.Mispredicts {
		t.Fatal("header fields lost")
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count %d != %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTRC....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated payload.
	var buf bytes.Buffer
	tr := &Trace{Records: []Record{validRecord(0)}}
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestStageString(t *testing.T) {
	if SFetch.String() != "fetch" || SCommit.String() != "commit" {
		t.Fatal("stage names wrong")
	}
	if Stage(99).String() == "" {
		t.Fatal("out-of-range stage must render")
	}
}
