// Package trace defines the dynamic trace the timing simulator emits and the
// dependence-graph builder consumes: per-µop macro-op boundaries, data
// dependencies, pipeline timings and penalty-event outcomes (paper Section
// IV-B). Outcomes (which level served an access, whether a branch
// mispredicted, which µop freed a contended resource) are recorded instead of
// cycle costs so the graph can be re-weighted under any latency
// configuration.
package trace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Stage indexes the timestamp vector of a record.
type Stage uint8

const (
	SFetch    Stage = iota // fetch issued for the µop's line
	SRename                // renamed, ROB entry allocated
	SDispatch              // issue-queue entry allocated
	SReady                 // all operands ready
	SIssue                 // selected for execution
	SComplete              // execution finished, result available
	SCommit                // retired

	NumStages // not a valid stage
)

var stageNames = [NumStages]string{
	SFetch: "fetch", SRename: "rename", SDispatch: "dispatch", SReady: "ready",
	SIssue: "issue", SComplete: "complete", SCommit: "commit",
}

// String returns the stage name.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// None marks an absent µop reference in dependency fields.
const None int64 = -1

// Record is the dynamic trace entry of one committed µop.
type Record struct {
	Seq      uint64
	MacroSeq uint64
	SoM, EoM bool
	Class    isa.OpClass
	PC, Addr uint64

	// Producer µop sequence numbers (None when absent): register sources
	// consumed at execute, and the producer of the address base for memory
	// ops (consumed at address generation).
	SrcDep1, SrcDep2 int64
	AddrDep          int64

	// Front-end outcomes. NewFetchLine marks the µop that initiated its
	// instruction-cache line access; followers on the same line inherit the
	// line for free.
	NewFetchLine bool
	FetchLevel   mem.Level
	ITLBMiss     bool

	// Data-side outcomes (loads and stores).
	DataLevel mem.Level
	DTLBMiss  bool
	// ShareWith names an earlier load whose in-flight line fill served this
	// load (MSHR merge); None when the access went to the hierarchy itself.
	ShareWith int64

	// Mispredicted marks a branch µop that redirected the front end.
	Mispredicted bool

	// Resource-provider edges: the µop whose issue freed the issue-queue
	// entry this µop waited for, the µop whose commit released the physical
	// register this µop allocated, and the load whose completing line fill
	// freed the MSHR this load waited for. None when the resource was free.
	IQFreeBy   int64
	RegFreeBy  int64
	MSHRFreeBy int64
	// FUFreeBy names the divide µop whose completion freed the unpipelined
	// divider this divide waited for. None when a unit was free.
	FUFreeBy int64

	// T holds the cycle of each pipeline milestone.
	T [NumStages]int64
}

// Validate checks internal consistency of a record: monotone timestamps and
// well-formed references.
func (r *Record) Validate() error {
	order := [...]Stage{SFetch, SRename, SDispatch, SReady, SIssue, SComplete, SCommit}
	for i := 1; i < len(order); i++ {
		if r.T[order[i]] < r.T[order[i-1]] {
			return fmt.Errorf("trace: µop %d: %s (%d) precedes %s (%d)",
				r.Seq, order[i], r.T[order[i]], order[i-1], r.T[order[i-1]])
		}
	}
	for _, d := range [...]int64{r.SrcDep1, r.SrcDep2, r.AddrDep, r.ShareWith, r.IQFreeBy, r.RegFreeBy, r.MSHRFreeBy, r.FUFreeBy} {
		if d != None && (d < 0 || uint64(d) >= r.Seq) {
			return fmt.Errorf("trace: µop %d references non-earlier µop %d", r.Seq, d)
		}
	}
	return nil
}

// Trace is a complete dynamic trace plus whole-run outcomes.
type Trace struct {
	Records []Record
	// Cycles is the simulated cycle count of the traced region (commit time
	// of the last µop).
	Cycles int64
	// Mispredicts, ILineFetches etc. summarize the run for reporting.
	Mispredicts uint64
}

// MicroOps returns the number of traced µops.
func (t *Trace) MicroOps() int { return len(t.Records) }

// MacroOps returns the number of complete macro-ops in the trace.
func (t *Trace) MacroOps() int {
	n := 0
	for i := range t.Records {
		if t.Records[i].EoM {
			n++
		}
	}
	return n
}

// CPI returns cycles per µop for the traced region.
func (t *Trace) CPI() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	return float64(t.Cycles) / float64(len(t.Records))
}

// Validate checks every record and cross-record invariants (sequence
// numbering, in-order commit).
func (t *Trace) Validate() error {
	var lastCommit int64
	for i := range t.Records {
		r := &t.Records[i]
		if r.Seq != uint64(i) {
			return fmt.Errorf("trace: record %d has sequence %d", i, r.Seq)
		}
		if err := r.Validate(); err != nil {
			return err
		}
		if r.T[SCommit] < lastCommit {
			return fmt.Errorf("trace: µop %d commits at %d before predecessor at %d",
				r.Seq, r.T[SCommit], lastCommit)
		}
		lastCommit = r.T[SCommit]
	}
	return nil
}
