package trace

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns the SHA-256 digest, in lowercase hex, of the trace's
// canonical binary encoding (the Write format). Two traces share a digest
// exactly when Write would emit identical bytes, so the digest is a content
// address for any artifact derived purely from the trace — the exploration
// service keys its representative-stack and dependence-graph cache on it,
// and cmd/rptrace prints it so CLI runs can be correlated with server cache
// entries.
func Digest(t *Trace) string {
	h := sha256.New()
	// Write only fails when the underlying writer does, and a hash.Hash
	// never does.
	_ = Write(h, t)
	return hex.EncodeToString(h.Sum(nil))
}
