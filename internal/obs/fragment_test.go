package obs

import (
	"crypto/sha256"
	"testing"
	"time"
)

func testFingerprint(seed byte) []byte {
	fp := make([]byte, sha256.Size)
	for i := range fp {
		fp[i] = seed + byte(i)
	}
	return fp
}

func TestFragmentRoundTrip(t *testing.T) {
	fp := testFingerprint(7)
	frag := &Fragment{
		Process: "worker-a",
		Records: []Record{
			{ID: 1<<32 | 1, Parent: 99, Cat: "fleet", Name: "lease", Start: time.Millisecond, Dur: time.Millisecond},
			{ID: 1<<32 | 2, Parent: 99, Cat: "fleet", Name: "evaluate", Detail: "chunk 0",
				Start: 2 * time.Millisecond, Dur: 5 * time.Millisecond, ArgKey: "points", Arg: 3},
		},
		Sync:    ClockSync{T0: time.Millisecond, T1: 3 * time.Millisecond, Coord: 10 * time.Millisecond},
		HasSync: true,
	}
	raw, err := EncodeFragment(fp, frag)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeFragment(fp, raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Process != frag.Process || got.HasSync != frag.HasSync || got.Sync != frag.Sync {
		t.Errorf("decoded header %+v, want %+v", got, frag)
	}
	if len(got.Records) != len(frag.Records) {
		t.Fatalf("decoded %d records, want %d", len(got.Records), len(frag.Records))
	}
	for i := range frag.Records {
		if got.Records[i] != frag.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], frag.Records[i])
		}
	}
}

// Every way a fragment blob can be wrong must decode to an error — the
// coordinator's drop-with-counter path — never to silently wrong records.
func TestFragmentDecodeRejects(t *testing.T) {
	fp := testFingerprint(1)
	raw, err := EncodeFragment(fp, &Fragment{Process: "w", Records: []Record{{ID: 5, Name: "x"}}})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	if _, err := DecodeFragment(fp, raw[:fragOverhead-1]); err == nil {
		t.Error("truncated blob decoded")
	}
	bad := append([]byte("XXXXXX"), raw[len(fragMagic):]...)
	if _, err := DecodeFragment(fp, bad); err == nil {
		t.Error("wrong magic decoded")
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := DecodeFragment(fp, flipped); err == nil {
		t.Error("bit-flipped blob decoded")
	}
	if _, err := DecodeFragment(testFingerprint(2), raw); err == nil {
		t.Error("foreign-sweep blob decoded")
	}
	if _, err := DecodeFragment(fp[:10], raw); err == nil {
		t.Error("short fingerprint accepted")
	}
	if _, err := EncodeFragment(fp[:10], &Fragment{}); err == nil {
		t.Error("encode accepted a short fingerprint")
	}
}

// The skew model: Offset maps worker clocks onto the coordinator's as the
// midpoint of the lease round-trip, in both skew directions; RTT is the
// uncertainty window.
func TestClockSyncOffset(t *testing.T) {
	behind := ClockSync{T0: 10 * time.Millisecond, T1: 14 * time.Millisecond, Coord: 50 * time.Millisecond}
	if got := behind.Offset(); got != 38*time.Millisecond {
		t.Errorf("behind offset = %v, want 38ms", got)
	}
	// Worker clock AHEAD of the coordinator: the offset must come out
	// negative, shifting worker spans earlier on the merged timebase.
	ahead := ClockSync{T0: 100 * time.Millisecond, T1: 104 * time.Millisecond, Coord: 2 * time.Millisecond}
	if got := ahead.Offset(); got != -100*time.Millisecond {
		t.Errorf("ahead offset = %v, want -100ms", got)
	}
	if got := ahead.RTT(); got != 4*time.Millisecond {
		t.Errorf("RTT = %v, want 4ms", got)
	}
}
