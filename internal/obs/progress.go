package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress.go — a sweep progress meter driven by the tracer's span hooks:
// chunk spans advance the done count, resume spans count restored checkpoint
// chunks. No goroutine and no timer — an update is emitted from Observe when
// the reporting interval has elapsed, and Flush emits the final one. Wire
// it up with NewTracer(..., WithOnEnd(p.Observe)). The default sink prints
// the human one-line status; NewProgressFunc swaps in any other consumer
// (NDJSON on a CLI, SSE events on a server) of the same rate/ETA math.

// ProgressUpdate is one snapshot of sweep completion: the raw counts plus
// the derived rate and ETA, everything a renderer needs. Line renders the
// canonical human form.
type ProgressUpdate struct {
	// Done is how many of Total design points are complete (restored
	// checkpoint points included). Total is 0 when the point count is not
	// known up front (a guided search probes lazily).
	Done  int64
	Total int64
	// Rate is evaluated points per second; restored points took no sweep
	// time and are excluded from the numerator.
	Rate float64
	// ETA extrapolates the remaining points at Rate; meaningful only when
	// HasETA (some points remain and the rate is non-zero).
	ETA    time.Duration
	HasETA bool
	// ResumedChunks and ResumedPoints count work restored from a checkpoint
	// or from previously-published fleet blobs instead of evaluated.
	ResumedChunks int64
	ResumedPoints int64
	// Final marks the update emitted by Flush — the sweep is over.
	Final bool
}

// Percent is Done as a share of Total (0 when Total is unknown).
func (u ProgressUpdate) Percent() float64 {
	return 100 * float64(u.Done) / float64(max64(u.Total, 1))
}

// Line renders the canonical one-line status.
func (u ProgressUpdate) Line() string {
	eta := "?"
	if u.Total-u.Done <= 0 {
		eta = "0s"
	} else if u.HasETA {
		eta = u.ETA.Round(100 * time.Millisecond).String()
	}
	line := fmt.Sprintf("progress: %d/%d points (%.1f%%) %.0f pts/s eta %s",
		u.Done, u.Total, u.Percent(), u.Rate, eta)
	if u.ResumedChunks > 0 {
		line += fmt.Sprintf(" resumed %d chunks (%d pts)", u.ResumedChunks, u.ResumedPoints)
	}
	return line
}

// Progress accumulates sweep completion from span records and periodically
// emits a ProgressUpdate.
type Progress struct {
	w        io.Writer
	emit     func(ProgressUpdate)
	total    int64
	interval time.Duration
	now      func() time.Time // injectable for tests

	mu            sync.Mutex
	start         time.Time
	lastPrint     time.Time
	printedDone   int64 // done count at the last emitted update, -1 before any
	done          int64
	resumedChunks int64
	resumedPoints int64
}

// NewProgress returns a meter over a sweep of total design points that
// prints to w at most once per interval (non-positive: every two seconds).
func NewProgress(w io.Writer, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := newProgress(total, interval, nil)
	p.w = w
	return p
}

// NewProgressFunc returns a meter that hands each update to emit instead of
// printing: the same counting, pacing and rate/ETA math as NewProgress with
// the rendering swapped out. A zero interval defaults to two seconds; a
// negative one emits on every observation. A nil now uses the wall clock.
func NewProgressFunc(emit func(ProgressUpdate), total int, interval time.Duration, now func() time.Time) *Progress {
	if interval == 0 {
		interval = 2 * time.Second
	}
	p := newProgress(total, interval, now)
	p.emit = emit
	return p
}

func newProgress(total int, interval time.Duration, now func() time.Time) *Progress {
	if now == nil {
		now = time.Now
	}
	t := now()
	return &Progress{total: int64(total), interval: interval, now: now, start: t, lastPrint: t, printedDone: -1}
}

// Observe consumes one span record; pass it as the tracer's WithOnEnd hook.
// Chunk records advance the done count by their point Arg; resume records
// count restored checkpoint chunks and their points.
func (p *Progress) Observe(rec Record) {
	if rec.Cat != CatDSE {
		return
	}
	p.mu.Lock()
	switch rec.Name {
	case NameChunk:
		p.done += rec.Arg
	case NameResume:
		p.resumedChunks++
		p.resumedPoints += rec.Arg
		p.done += rec.Arg
	default:
		p.mu.Unlock()
		return
	}
	t := p.now()
	if (p.interval > 0 && t.Sub(p.lastPrint) < p.interval && p.done < p.total) || p.printedDone == p.done {
		p.mu.Unlock()
		return
	}
	p.lastPrint = t
	p.printedDone = p.done
	u := p.updateLocked(t, false)
	p.mu.Unlock()
	p.deliver(u)
}

// Flush emits the final update, unless Observe already emitted one at the
// current done count or no chunk was ever observed — a sweep that errors
// before its first chunk completes must not emit a spurious "0/N points"
// update.
func (p *Progress) Flush() {
	p.mu.Lock()
	if p.printedDone == p.done || (p.printedDone < 0 && p.done == 0) {
		p.mu.Unlock()
		return
	}
	p.printedDone = p.done
	u := p.updateLocked(p.now(), true)
	p.mu.Unlock()
	p.deliver(u)
}

// deliver hands one update to the configured sink.
func (p *Progress) deliver(u ProgressUpdate) {
	if p.emit != nil {
		p.emit(u)
		return
	}
	fmt.Fprintln(p.w, u.Line())
}

// updateLocked snapshots the derived counts. Called with mu held.
func (p *Progress) updateLocked(t time.Time, final bool) ProgressUpdate {
	elapsed := t.Sub(p.start)
	evaluated := p.done - p.resumedPoints // restored points took no sweep time
	rate := 0.0
	if elapsed > 0 {
		rate = float64(evaluated) / elapsed.Seconds()
	}
	u := ProgressUpdate{
		Done:          p.done,
		Total:         p.total,
		Rate:          rate,
		ResumedChunks: p.resumedChunks,
		ResumedPoints: p.resumedPoints,
		Final:         final,
	}
	if remaining := p.total - p.done; remaining > 0 && rate > 0 {
		u.ETA = time.Duration(float64(remaining) / rate * float64(time.Second))
		u.HasETA = true
	}
	return u
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
