package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress.go — a sweep progress meter driven by the tracer's span hooks:
// chunk spans advance the done count, resume spans count restored checkpoint
// chunks. No goroutine and no timer — a line is printed from Observe when
// the reporting interval has elapsed, and Flush prints the final line. Wire
// it up with NewTracer(..., WithOnEnd(p.Observe)).

// Progress accumulates sweep completion from span records and periodically
// writes a one-line status.
type Progress struct {
	w        io.Writer
	total    int64
	interval time.Duration
	now      func() time.Time // injectable for tests

	mu            sync.Mutex
	start         time.Time
	lastPrint     time.Time
	printedDone   int64 // done count at the last printed line, -1 before any
	done          int64
	resumedChunks int64
	resumedPoints int64
}

// NewProgress returns a meter over a sweep of total design points that
// prints to w at most once per interval (non-positive: every two seconds).
func NewProgress(w io.Writer, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	now := time.Now
	t := now()
	return &Progress{w: w, total: int64(total), interval: interval, now: now, start: t, lastPrint: t, printedDone: -1}
}

// Observe consumes one span record; pass it as the tracer's WithOnEnd hook.
// Chunk records advance the done count by their point Arg; resume records
// count restored checkpoint chunks and their points.
func (p *Progress) Observe(rec Record) {
	if rec.Cat != CatDSE {
		return
	}
	p.mu.Lock()
	switch rec.Name {
	case NameChunk:
		p.done += rec.Arg
	case NameResume:
		p.resumedChunks++
		p.resumedPoints += rec.Arg
		p.done += rec.Arg
	default:
		p.mu.Unlock()
		return
	}
	t := p.now()
	if (t.Sub(p.lastPrint) < p.interval && p.done < p.total) || p.printedDone == p.done {
		p.mu.Unlock()
		return
	}
	p.lastPrint = t
	p.printedDone = p.done
	line := p.lineLocked(t)
	p.mu.Unlock()
	fmt.Fprintln(p.w, line)
}

// Flush prints the final progress line, unless Observe already printed one
// at the current done count or no chunk was ever observed — a sweep that
// errors before its first chunk completes must not print a spurious
// "0/N points" line.
func (p *Progress) Flush() {
	p.mu.Lock()
	if p.printedDone == p.done || (p.printedDone < 0 && p.done == 0) {
		p.mu.Unlock()
		return
	}
	p.printedDone = p.done
	line := p.lineLocked(p.now())
	p.mu.Unlock()
	fmt.Fprintln(p.w, line)
}

// lineLocked renders the status line. Called with mu held.
func (p *Progress) lineLocked(t time.Time) string {
	elapsed := t.Sub(p.start)
	evaluated := p.done - p.resumedPoints // restored points took no sweep time
	rate := 0.0
	if elapsed > 0 {
		rate = float64(evaluated) / elapsed.Seconds()
	}
	eta := "?"
	if remaining := p.total - p.done; remaining <= 0 {
		eta = "0s"
	} else if rate > 0 {
		eta = time.Duration(float64(remaining) / rate * float64(time.Second)).Round(100 * time.Millisecond).String()
	}
	line := fmt.Sprintf("progress: %d/%d points (%.1f%%) %.0f pts/s eta %s",
		p.done, p.total, 100*float64(p.done)/float64(max64(p.total, 1)), rate, eta)
	if p.resumedChunks > 0 {
		line += fmt.Sprintf(" resumed %d chunks (%d pts)", p.resumedChunks, p.resumedPoints)
	}
	return line
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
