package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chrome.go — the Chrome trace-event exporter. The output is the JSON object
// form of the trace-event format ({"traceEvents": [...]}), using complete
// ("ph": "X") events, which both chrome://tracing and Perfetto load directly.
// Timestamps are microseconds with nanosecond precision kept as fractions,
// so sub-microsecond chunk spans survive the export.

// chromeEvent is one complete event in the trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func toMicros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace renders records (as returned by Tracer.Snapshot) as
// trace-event JSON. Events keep the snapshot's completion order; span IDs and
// parents ride along in args, so the output is deterministic for a
// deterministic run under an injected clock (see WithClock) and is pinned as
// a golden file in the dse tests.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	events := make([]chromeEvent, 0, len(recs))
	for _, r := range recs {
		args := map[string]any{"id": r.ID}
		if r.Parent != 0 {
			args["parent"] = r.Parent
		}
		if r.Detail != "" {
			args["detail"] = r.Detail
		}
		if r.ArgKey != "" {
			args[r.ArgKey] = r.Arg
		}
		events = append(events, chromeEvent{
			Name: r.Name,
			Cat:  r.Cat,
			Ph:   "X",
			TS:   toMicros(r.Start),
			Dur:  toMicros(r.Dur),
			PID:  1,
			TID:  r.TID,
			Args: args,
		})
	}
	raw, err := json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}
