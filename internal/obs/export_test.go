package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// An empty snapshot (disabled tracer, or a tracer that recorded nothing) must
// still export as well-formed, loadable output: Perfetto rejects a bare
// null/absent traceEvents array.
func TestExportEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("chrome export of empty snapshot: %v", err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.TraceEvents == nil || len(out.TraceEvents) != 0 {
		t.Errorf("empty export traceEvents = %v, want present-and-empty array", out.TraceEvents)
	}

	buf.Reset()
	if err := WriteFolded(&buf, nil); err != nil {
		t.Fatalf("folded export of empty snapshot: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("folded export of empty snapshot = %q, want no lines", buf.String())
	}

	var disabled *Tracer
	if got := disabled.Snapshot(); got != nil {
		t.Errorf("nil tracer snapshot = %v, want nil", got)
	}
}

// When the ring overwrites a parent, the orphaned child still exports: it is
// truncated to a root of its own name in the folded view and keeps its full
// duration, and Dropped reports exactly the overwritten count.
func TestExportRingOverflowTruncation(t *testing.T) {
	clock := fakeClock()
	tr := NewTracer(2, WithClock(clock))
	root := tr.Start("dse", "sweep")
	for i := 0; i < 3; i++ {
		ch := tr.StartChild(root.ID(), "dse", "chunk")
		ch.End()
	}
	root.End() // 4 records through a 2-slot ring: root + newest chunk survive

	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("snapshot length %d, want ring capacity 2", len(recs))
	}

	var buf bytes.Buffer
	if err := WriteFolded(&buf, recs); err != nil {
		t.Fatalf("folded export: %v", err)
	}
	got := buf.String()
	// The surviving chunk's parent is in the ring, so it nests; had the root
	// been overwritten too it would root at its own name. Either way every
	// line is one of the two known paths — no path may reference a dropped ID.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		path := strings.Fields(line)[0]
		if path != "dse:sweep" && path != "dse:sweep;dse:chunk" {
			t.Errorf("folded path %q references a dropped span", path)
		}
	}

	// The chrome exporter renders exactly the surviving records.
	buf.Reset()
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Errorf("chrome export has %d events, want 2", len(out.TraceEvents))
	}
}

// Zero-duration spans — common for cache hits under a coarse clock — must
// fold to explicit zero-valued lines, and a child longer than its parent
// (clock skew across lanes) must clamp the parent's self time at zero rather
// than emitting a negative count.
func TestExportFoldedZeroDuration(t *testing.T) {
	recs := []Record{
		{ID: 1, Cat: "cache", Name: "hit", Start: 0, Dur: 0},
		{ID: 2, Cat: "job", Name: "run", Start: 0, Dur: 1 * time.Millisecond},
		{ID: 3, Parent: 2, Cat: "dse", Name: "chunk", Start: 0, Dur: 2 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, recs); err != nil {
		t.Fatalf("folded export: %v", err)
	}
	want := "cache:hit 0\njob:run 0\njob:run;dse:chunk 2000\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%swant:\n%s", buf.String(), want)
	}
}
