package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// Span IDs were unique only per process before WithProcessID: two workers
// both counting 1, 2, 3 would collide in a merged timeline and silently
// misparent each other's spans. Namespaced tracers must never collide with
// each other or with the default (coordinator) namespace, while the default
// keeps plain 1, 2, 3 IDs for golden-pinned single-process exports.
func TestProcessIDNamespacesSpanIDs(t *testing.T) {
	plain := NewTracer(8, WithClock(fakeClock()))
	a := NewTracer(8, WithClock(fakeClock()), WithProcessID("worker-a"))
	b := NewTracer(8, WithClock(fakeClock()), WithProcessID("worker-b"))

	seen := make(map[uint64]string)
	for name, tr := range map[string]*Tracer{"coord": plain, "a": a, "b": b} {
		for i := 0; i < 3; i++ {
			sp := tr.Start("t", "op")
			id := sp.ID()
			sp.End()
			if prev, dup := seen[id]; dup {
				t.Fatalf("span ID %#x collides between %s and %s", id, prev, name)
			}
			seen[id] = name
		}
	}
	// The default namespace is the reserved coordinator one: plain counters.
	sp := plain.Start("t", "op")
	if got := sp.ID(); got != 4 {
		t.Errorf("default-namespace ID = %d, want the plain counter 4", got)
	}
	sp.End()
	// Namespaced IDs keep the process hash in the high half across spans.
	s1 := a.Start("t", "op")
	s2 := a.Start("t", "op")
	if s1.ID()>>32 == 0 || s1.ID()>>32 != s2.ID()>>32 {
		t.Errorf("namespaced IDs %#x, %#x: want one nonzero high half", s1.ID(), s2.ID())
	}
	s1.End()
	s2.End()
}

func rec(id uint64, name string, start, dur time.Duration) Record {
	return Record{ID: id, Name: name, Cat: "fleet", Start: start, Dur: dur}
}

// MergeTimeline must normalize each worker's records by its clock sync, in
// both skew directions, and re-base the merged set to start at zero.
func TestMergeTimelineSkewNormalization(t *testing.T) {
	local := []Record{rec(1, "sweep", 10*time.Millisecond, 100*time.Millisecond)}
	// Worker "behind": its clock reads 0 when the coordinator reads 40ms.
	behind := &Fragment{
		Process: "w-behind",
		Records: []Record{rec(1<<32 | 1, "evaluate", 5*time.Millisecond, 10*time.Millisecond)},
		Sync:    ClockSync{T0: 2 * time.Millisecond, T1: 2 * time.Millisecond, Coord: 42 * time.Millisecond},
		HasSync: true,
	}
	// Worker "ahead": its clock reads 500ms when the coordinator reads 20ms —
	// the worker-ahead edge case; its spans must shift earlier, not later.
	ahead := &Fragment{
		Process: "w-ahead",
		Records: []Record{rec(2<<32 | 1, "evaluate", 510*time.Millisecond, 10*time.Millisecond)},
		Sync:    ClockSync{T0: 500 * time.Millisecond, T1: 500 * time.Millisecond, Coord: 20 * time.Millisecond},
		HasSync: true,
	}
	tl := MergeTimeline("coord", local, []*Fragment{ahead, behind})
	if len(tl.Tracks) != 3 {
		t.Fatalf("merged %d tracks, want 3", len(tl.Tracks))
	}
	// Track order: merging process first, workers sorted by name.
	for i, want := range []string{"coord", "w-ahead", "w-behind"} {
		if tl.Tracks[i].Name != want {
			t.Fatalf("track %d = %q, want %q", i, tl.Tracks[i].Name, want)
		}
	}
	// On the coordinator timebase: local sweep at 10ms, behind's evaluate at
	// 5+40=45ms, ahead's evaluate at 510-480=30ms. Minimum is 10ms, so after
	// re-basing: coord 0ms, ahead 20ms, behind 35ms.
	if got := tl.Tracks[0].Records[0].Start; got != 0 {
		t.Errorf("coord span starts at %v, want 0 after re-basing", got)
	}
	if got := tl.Tracks[1].Records[0].Start; got != 20*time.Millisecond {
		t.Errorf("ahead span starts at %v, want 20ms", got)
	}
	if got := tl.Tracks[2].Records[0].Start; got != 35*time.Millisecond {
		t.Errorf("behind span starts at %v, want 35ms", got)
	}
	if got := len(tl.Flatten()); got != 3 {
		t.Errorf("Flatten returned %d records, want 3", got)
	}
}

// Skew far larger than any span's duration must still land the worker's track
// where the sync says, and a skew that maps worker spans before the
// coordinator's epoch re-bases the whole timeline instead of going negative.
func TestMergeTimelineSkewLargerThanChunk(t *testing.T) {
	local := []Record{rec(1, "sweep", 100*time.Millisecond, 20*time.Millisecond)}
	// Worker clock an hour ahead; its 5ms chunk would land at -59m59s+...
	// on the raw coordinator timebase.
	frag := &Fragment{
		Process: "w",
		Records: []Record{rec(1<<32 | 1, "evaluate", time.Hour, 5*time.Millisecond)},
		Sync:    ClockSync{T0: time.Hour, T1: time.Hour, Coord: 10 * time.Millisecond},
		HasSync: true,
	}
	tl := MergeTimeline("coord", local, []*Fragment{frag})
	// Worker span maps to coord time 10ms, before the local span's 100ms:
	// re-basing shifts the worker to 0 and the coordinator to 90ms.
	if got := tl.Tracks[1].Records[0].Start; got != 0 {
		t.Errorf("worker span starts at %v, want 0", got)
	}
	if got := tl.Tracks[0].Records[0].Start; got != 90*time.Millisecond {
		t.Errorf("coord span starts at %v, want 90ms", got)
	}
	for _, r := range tl.Flatten() {
		if r.Start < 0 {
			t.Errorf("record %q starts at %v: negative timestamps must never survive the merge", r.Name, r.Start)
		}
	}
}

// A process with several fragments merges into ONE track normalized by its
// most recent sync (largest T0) — the only sync guaranteed to reference the
// live coordinator's epoch after a coordinator restart. Fragments without
// any sync merge at offset zero.
func TestMergeTimelineLatestSyncWinsAndNoSync(t *testing.T) {
	old := &Fragment{
		Process: "w",
		Records: []Record{rec(1<<32 | 1, "evaluate", 10*time.Millisecond, time.Millisecond)},
		// Stale sync from before a coordinator restart: huge offset.
		Sync:    ClockSync{T0: 1 * time.Millisecond, T1: 1 * time.Millisecond, Coord: time.Hour},
		HasSync: true,
	}
	fresh := &Fragment{
		Process: "w",
		Records: []Record{rec(1<<32 | 2, "evaluate", 20*time.Millisecond, time.Millisecond)},
		Sync:    ClockSync{T0: 15 * time.Millisecond, T1: 15 * time.Millisecond, Coord: 18 * time.Millisecond},
		HasSync: true,
	}
	tl := MergeTimeline("coord", nil, []*Fragment{old, fresh})
	if len(tl.Tracks) != 2 {
		t.Fatalf("merged %d tracks, want 2 (coord + one per process)", len(tl.Tracks))
	}
	wt := tl.Tracks[1]
	if len(wt.Records) != 2 {
		t.Fatalf("worker track has %d records, want both fragments' spans", len(wt.Records))
	}
	// Fresh sync offset is +3ms; minimum start is then 13ms, re-based to 0.
	if got := wt.Records[0].Start; got != 0 {
		t.Errorf("first span starts at %v, want 0 (fresh sync, not the stale hour offset)", got)
	}
	if got := wt.Records[1].Start; got != 10*time.Millisecond {
		t.Errorf("second span starts at %v, want 10ms", got)
	}

	nosync := &Fragment{Process: "n", Records: []Record{rec(3<<32 | 1, "evaluate", 7*time.Millisecond, time.Millisecond)}}
	tl2 := MergeTimeline("coord", nil, []*Fragment{nosync, nil})
	if got := tl2.Tracks[1].Records[0].Start; got != 0 {
		t.Errorf("sync-less span starts at %v, want 0 (offset zero, then re-based)", got)
	}
}

// WriteChromeTimeline renders one trace process per track: a process_name
// metadata event naming it and its spans under that PID — the shape Perfetto
// shows as per-worker swim-lanes.
func TestWriteChromeTimeline(t *testing.T) {
	tl := &Timeline{Tracks: []ProcessTrack{
		{Name: "coord", Records: []Record{
			{ID: 1, Cat: "fleet", Name: "sweep", Detail: "abc", Start: 0, Dur: 10 * time.Millisecond, ArgKey: "points", Arg: 12},
		}},
		{Name: "worker-a", Records: []Record{
			{ID: 1<<32 | 1, Parent: 1, Cat: "fleet", Name: "evaluate", Start: time.Millisecond, Dur: 2 * time.Millisecond, TID: 1},
		}},
	}}
	var buf bytes.Buffer
	if err := WriteChromeTimeline(&buf, tl); err != nil {
		t.Fatalf("export: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("exported %d events, want 2 metadata + 2 spans", len(out.TraceEvents))
	}
	names := map[int]string{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name != "process_name" {
				t.Errorf("metadata event named %q, want process_name", ev.Name)
			}
			names[ev.PID] = fmt.Sprint(ev.Args["name"])
		}
	}
	if names[1] != "coord" || names[2] != "worker-a" {
		t.Errorf("process names = %v, want PID 1 coord / PID 2 worker-a", names)
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "sweep":
			if ev.PID != 1 || ev.Dur != 10000 || ev.Args["points"] != float64(12) || ev.Args["detail"] != "abc" {
				t.Errorf("sweep event %+v: wrong pid/dur/args", ev)
			}
		case "evaluate":
			if ev.PID != 2 || ev.TID != 1 || ev.TS != 1000 {
				t.Errorf("evaluate event %+v: want pid 2 tid 1 ts 1000", ev)
			}
			if ev.Args["parent"] != float64(1) {
				t.Errorf("evaluate parent arg = %v, want 1 (cross-process parent survives)", ev.Args["parent"])
			}
		default:
			t.Errorf("unexpected span %q", ev.Name)
		}
	}
}
