package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// folded.go — the collapsed-stack exporter. Each output line is
// "root;child;grandchild <microseconds>", the format flamegraph.pl,
// inferno and speedscope consume. The value per line is *self* time: a
// span's duration minus its recorded children's durations, so the flame
// widths add up instead of double-counting nested spans.

// WriteFolded renders records as folded stacks aggregated by path, sorted
// lexicographically for deterministic output. Spans whose parent was
// overwritten out of the ring are rooted at their own name — flight-recorder
// truncation degrades the stacks, never the totals.
func WriteFolded(w io.Writer, recs []Record) error {
	byID := make(map[uint64]*Record, len(recs))
	for i := range recs {
		byID[recs[i].ID] = &recs[i]
	}
	childDur := make(map[uint64]time.Duration, len(recs))
	for i := range recs {
		if p := recs[i].Parent; p != 0 {
			if _, ok := byID[p]; ok {
				childDur[p] += recs[i].Dur
			}
		}
	}
	agg := make(map[string]time.Duration, len(recs))
	var frames []string
	for i := range recs {
		r := &recs[i]
		frames = frames[:0]
		for cur := r; ; {
			frames = append(frames, cur.Cat+":"+cur.Name)
			parent, ok := byID[cur.Parent]
			if cur.Parent == 0 || !ok {
				break
			}
			cur = parent
		}
		// frames is leaf-first; folded stacks want root-first.
		for l, rr := 0, len(frames)-1; l < rr; l, rr = l+1, rr-1 {
			frames[l], frames[rr] = frames[rr], frames[l]
		}
		self := r.Dur - childDur[r.ID]
		if self < 0 {
			self = 0
		}
		agg[strings.Join(frames, ";")] += self
	}
	paths := make([]string, 0, len(agg))
	for p := range agg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := fmt.Fprintf(w, "%s %d\n", p, agg[p].Microseconds()); err != nil {
			return err
		}
	}
	return nil
}
