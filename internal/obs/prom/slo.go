package prom

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// slo.go — latency SLOs with multi-window burn rates, in the registry's
// hand-rolled spirit. Each class (rpserved labels them by engine) gets a
// latency threshold; every observation is an event, an observation that
// succeeded within the threshold is a good event, and the burn rate over a
// window is the bad fraction divided by the error budget (1 − objective):
// burn 1 spends the budget exactly at the objective's pace, burn 10 spends
// it ten times too fast. Rates are computed from a time-bucketed ring on an
// injectable clock — no goroutines, advanced lazily on observe and scrape —
// and crossing burn 1 on any window fires the OnBurn hook once per episode
// (edge-triggered, re-armed when the window recovers).

// Default SLO windows: a fast window that catches an acute burn within
// minutes and a slow one that catches a simmering one.
var defaultSLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// SLOOptions parameterizes NewSLO.
type SLOOptions struct {
	// Prefix is the metric-family name prefix, e.g. "rpstacks_slo" —
	// families land as <prefix>_target_info, <prefix>_good_total,
	// <prefix>_events_total and <prefix>_burn_rate.
	Prefix string
	// Objective is the success-ratio objective shared by every class
	// (default 0.99 — a 1% error budget).
	Objective float64
	// Windows are the burn-rate windows (default 5m and 1h), longest
	// bounding the ring.
	Windows []time.Duration
	// Bucket is the ring granularity (default 10s).
	Bucket time.Duration
	// Now is the window clock, injectable for tests (default time.Now).
	Now func() time.Time
	// OnBurn fires once per burn episode: when a window's rate first
	// exceeds 1. Nil disables.
	OnBurn func(class string, window time.Duration, rate float64)
}

// SLO tracks per-class latency objectives. Create with NewSLO, declare
// classes with SetTarget, feed every request through Observe.
type SLO struct {
	objective float64
	windows   []time.Duration
	bucket    time.Duration
	ringLen   int
	now       func() time.Time
	onBurn    func(string, time.Duration, float64)

	good   *CounterVec
	events *CounterVec
	info   *GaugeVec

	mu      sync.Mutex
	classes map[string]*sloClass
	order   []string
}

// sloClass is one class's threshold and bucket ring; guarded by SLO.mu.
type sloClass struct {
	threshold time.Duration
	ring      []sloBucket
	head      int
	headStart time.Time
	burning   map[time.Duration]bool
}

type sloBucket struct {
	good  uint64
	total uint64
}

// NewSLO builds an SLO tracker and registers its families on reg.
func NewSLO(reg *Registry, opts SLOOptions) *SLO {
	if opts.Prefix == "" {
		opts.Prefix = "slo"
	}
	if opts.Objective <= 0 || opts.Objective >= 1 {
		opts.Objective = 0.99
	}
	if len(opts.Windows) == 0 {
		opts.Windows = defaultSLOWindows
	}
	if opts.Bucket <= 0 {
		opts.Bucket = 10 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	longest := opts.Windows[0]
	for _, w := range opts.Windows {
		if w > longest {
			longest = w
		}
	}
	s := &SLO{
		objective: opts.Objective,
		windows:   opts.Windows,
		bucket:    opts.Bucket,
		ringLen:   int(longest/opts.Bucket) + 1,
		now:       opts.Now,
		onBurn:    opts.OnBurn,
		classes:   make(map[string]*sloClass),
		good: reg.CounterVec(opts.Prefix+"_good_total",
			"SLO events that succeeded within the class's latency threshold.", "class"),
		events: reg.CounterVec(opts.Prefix+"_events_total",
			"All SLO events, good or not.", "class"),
		info: reg.GaugeVec(opts.Prefix+"_target_info",
			"Configured latency objectives; the value is always 1.",
			"class", "threshold_ms", "objective"),
	}
	reg.Collect(opts.Prefix+"_burn_rate",
		"Error-budget burn rate per class and window: the windowed bad fraction over the error budget (1 exhausts the budget exactly at the objective's pace).",
		"gauge", s.collectBurn)
	return s
}

// SetTarget declares one class's latency threshold (idempotent; the last
// threshold wins) and pre-creates its counter rows so the exposition is
// complete from the first scrape.
func (s *SLO) SetTarget(class string, threshold time.Duration) {
	s.mu.Lock()
	c, ok := s.classes[class]
	if !ok {
		c = &sloClass{
			ring:      make([]sloBucket, s.ringLen),
			headStart: s.now().Truncate(s.bucket),
			burning:   make(map[time.Duration]bool),
		}
		s.classes[class] = c
		s.order = append(s.order, class)
	}
	c.threshold = threshold
	s.mu.Unlock()
	s.good.With(class)
	s.events.With(class)
	s.info.With(class,
		strconv.FormatInt(threshold.Milliseconds(), 10),
		strconv.FormatFloat(s.objective, 'g', -1, 64)).Set(1)
}

// Observe feeds one event: ok says whether the request itself succeeded,
// and a good event additionally finished within the class's threshold.
// Unknown classes (no SetTarget) are ignored. Returns whether the event
// counted as good.
func (s *SLO) Observe(class string, latency time.Duration, ok bool) bool {
	s.mu.Lock()
	c := s.classes[class]
	if c == nil {
		s.mu.Unlock()
		return false
	}
	now := s.now()
	s.advanceLocked(c, now)
	good := ok && latency <= c.threshold
	c.ring[c.head].total++
	if good {
		c.ring[c.head].good++
	}
	type burnHit struct {
		window time.Duration
		rate   float64
	}
	var hits []burnHit
	for _, w := range s.windows {
		rate := s.burnLocked(c, w)
		if rate > 1 && !c.burning[w] {
			c.burning[w] = true
			hits = append(hits, burnHit{w, rate})
		} else if rate <= 1 {
			c.burning[w] = false
		}
	}
	s.mu.Unlock()

	s.events.With(class).Inc()
	if good {
		s.good.With(class).Inc()
	}
	if s.onBurn != nil {
		for _, h := range hits {
			s.onBurn(class, h.window, h.rate)
		}
	}
	return good
}

// BurnRate reports one class and window's current burn rate (0 for unknown
// classes or empty windows).
func (s *SLO) BurnRate(class string, window time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.classes[class]
	if c == nil {
		return 0
	}
	s.advanceLocked(c, s.now())
	return s.burnLocked(c, window)
}

// collectBurn is the scrape-time pull of every class × window burn rate,
// in declaration order so the exposition is deterministic.
func (s *SLO) collectBurn(emit func(string, float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	for _, class := range s.order {
		c := s.classes[class]
		s.advanceLocked(c, now)
		for _, w := range s.windows {
			emit(fmt.Sprintf("{class=%q,window=%q}", class, fmtWindow(w)), s.burnLocked(c, w))
		}
	}
}

// advanceLocked rotates the ring forward to cover now, zeroing buckets the
// clock skipped. Called with mu held.
func (s *SLO) advanceLocked(c *sloClass, now time.Time) {
	steps := int(now.Sub(c.headStart) / s.bucket)
	if steps <= 0 {
		return
	}
	if steps >= len(c.ring) {
		for i := range c.ring {
			c.ring[i] = sloBucket{}
		}
		c.head = 0
		c.headStart = now.Truncate(s.bucket)
		return
	}
	for i := 0; i < steps; i++ {
		c.head = (c.head + 1) % len(c.ring)
		c.ring[c.head] = sloBucket{}
	}
	c.headStart = c.headStart.Add(time.Duration(steps) * s.bucket)
}

// burnLocked computes one window's burn rate from the ring. Called with mu
// held, after advanceLocked.
func (s *SLO) burnLocked(c *sloClass, window time.Duration) float64 {
	n := int(window / s.bucket)
	if n < 1 {
		n = 1
	}
	if n > len(c.ring) {
		n = len(c.ring)
	}
	var good, total uint64
	idx := c.head
	for i := 0; i < n; i++ {
		good += c.ring[idx].good
		total += c.ring[idx].total
		idx--
		if idx < 0 {
			idx = len(c.ring) - 1
		}
	}
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - s.objective)
}

// fmtWindow renders a window compactly for its label value: "5m", "1h",
// "90s" — not Duration.String()'s "5m0s".
func fmtWindow(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}
