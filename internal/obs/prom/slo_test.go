package prom

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// near absorbs float error from the (1 − objective) budget division.
func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// sloAt builds an SLO on an injected clock the test advances directly.
func sloAt(t *testing.T, opts SLOOptions) (*SLO, *Registry, *time.Time) {
	t.Helper()
	now := time.Unix(10_000, 0)
	opts.Now = func() time.Time { return now }
	if opts.Prefix == "" {
		opts.Prefix = "rpstacks_slo"
	}
	r := NewRegistry()
	return NewSLO(r, opts), r, &now
}

// TestSLOCountersAndTargetInfo: SetTarget exports the objective row, Observe
// splits events into good (ok and under threshold) and not.
func TestSLOCountersAndTargetInfo(t *testing.T) {
	s, r, _ := sloAt(t, SLOOptions{Objective: 0.9})
	s.SetTarget("graph", 500*time.Millisecond)

	if !s.Observe("graph", 100*time.Millisecond, true) {
		t.Error("fast success not counted good")
	}
	if s.Observe("graph", 2*time.Second, true) {
		t.Error("slow success counted good")
	}
	if s.Observe("graph", 100*time.Millisecond, false) {
		t.Error("fast failure counted good")
	}
	if s.Observe("no-such-class", time.Millisecond, true) {
		t.Error("unknown class counted good")
	}

	out := render(r)
	for _, want := range []string{
		`rpstacks_slo_target_info{class="graph",threshold_ms="500",objective="0.9"} 1`,
		`rpstacks_slo_good_total{class="graph"} 1`,
		`rpstacks_slo_events_total{class="graph"} 3`,
		`rpstacks_slo_burn_rate{class="graph",window="5m"}`,
		`rpstacks_slo_burn_rate{class="graph",window="1h"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSLOBurnRateMath pins the definition: burn = windowed bad fraction over
// the error budget. Objective 0.9 leaves a 10% budget, so a 50% bad window
// burns at 5.
func TestSLOBurnRateMath(t *testing.T) {
	s, _, _ := sloAt(t, SLOOptions{Objective: 0.9})
	s.SetTarget("graph", time.Second)

	if got := s.BurnRate("graph", 5*time.Minute); got != 0 {
		t.Errorf("empty window burns at %g, want 0", got)
	}
	for i := 0; i < 5; i++ {
		s.Observe("graph", time.Millisecond, true)
		s.Observe("graph", 10*time.Second, true) // over threshold: bad
	}
	if got := s.BurnRate("graph", 5*time.Minute); !near(got, 5) {
		t.Errorf("50%% bad on a 10%% budget burns at %g, want 5", got)
	}
	// Exactly at the objective's pace: 1 bad in 10 is burn 1.
	s2, _, _ := sloAt(t, SLOOptions{Objective: 0.9})
	s2.SetTarget("graph", time.Second)
	for i := 0; i < 9; i++ {
		s2.Observe("graph", time.Millisecond, true)
	}
	s2.Observe("graph", 10*time.Second, true)
	if got := s2.BurnRate("graph", 5*time.Minute); !near(got, 1) {
		t.Errorf("budget-pace burn = %g, want exactly 1", got)
	}
	if got := s2.BurnRate("no-such-class", 5*time.Minute); got != 0 {
		t.Errorf("unknown class burns at %g, want 0", got)
	}
}

// TestSLOWindowExpiry: bad events age out of the short window first — the
// multi-window property that distinguishes an acute burn from a simmering
// one — and a clock jump past the whole ring clears everything.
func TestSLOWindowExpiry(t *testing.T) {
	s, _, now := sloAt(t, SLOOptions{Objective: 0.9, Windows: []time.Duration{time.Minute, time.Hour}, Bucket: 10 * time.Second})
	s.SetTarget("graph", time.Second)

	s.Observe("graph", 10*time.Second, true) // bad
	if got := s.BurnRate("graph", time.Minute); !near(got, 10) {
		t.Fatalf("all-bad fast window burns at %g, want 10", got)
	}
	// Two minutes of good traffic: the bad event leaves the 1m window but
	// still taints the 1h window.
	for i := 0; i < 12; i++ {
		*now = now.Add(10 * time.Second)
		s.Observe("graph", time.Millisecond, true)
	}
	if got := s.BurnRate("graph", time.Minute); got != 0 {
		t.Errorf("fast window still burns at %g after the bad event aged out", got)
	}
	if got := s.BurnRate("graph", time.Hour); got == 0 {
		t.Error("slow window forgot the bad event within the hour")
	}
	// A jump past the longest window clears the ring entirely.
	*now = now.Add(2 * time.Hour)
	if got := s.BurnRate("graph", time.Hour); got != 0 {
		t.Errorf("slow window burns at %g after a 2h gap, want 0", got)
	}
}

// TestSLOOnBurnEdgeTriggered: the hook fires once when a window first
// crosses burn 1, stays quiet while it keeps burning, and re-arms after the
// window recovers.
func TestSLOOnBurnEdgeTriggered(t *testing.T) {
	type firing struct {
		class  string
		window time.Duration
		rate   float64
	}
	var fired []firing
	s, _, now := sloAt(t, SLOOptions{
		Objective: 0.9,
		Windows:   []time.Duration{time.Minute},
		Bucket:    10 * time.Second,
		OnBurn: func(class string, window time.Duration, rate float64) {
			fired = append(fired, firing{class, window, rate})
		},
	})
	s.SetTarget("graph", time.Second)

	s.Observe("graph", 10*time.Second, true) // burn 10: first crossing
	s.Observe("graph", 10*time.Second, true) // still burning: no refire
	if len(fired) != 1 {
		t.Fatalf("hook fired %d times during one episode, want 1", len(fired))
	}
	if f := fired[0]; f.class != "graph" || f.window != time.Minute || f.rate <= 1 {
		t.Errorf("firing %+v, want class=graph window=1m rate>1", f)
	}
	// Recovery: enough good traffic (and aging) drops the rate to ≤ 1 and
	// re-arms the edge.
	for i := 0; i < 12; i++ {
		*now = now.Add(10 * time.Second)
		s.Observe("graph", time.Millisecond, true)
	}
	if got := s.BurnRate("graph", time.Minute); got > 1 {
		t.Fatalf("window did not recover: burn %g", got)
	}
	s.Observe("graph", 10*time.Second, true) // a fresh episode
	if len(fired) != 2 {
		t.Errorf("hook fired %d times across two episodes, want 2", len(fired))
	}
}

// TestSLOSetTargetIdempotent: re-declaring a class keeps its ring and
// updates the threshold; the exposition carries the latest target row.
func TestSLOSetTargetIdempotent(t *testing.T) {
	s, r, _ := sloAt(t, SLOOptions{})
	s.SetTarget("graph", time.Second)
	s.Observe("graph", 2*time.Second, true) // bad under the 1s threshold
	s.SetTarget("graph", 5*time.Second)
	if !s.Observe("graph", 2*time.Second, true) {
		t.Error("2s latency bad under the updated 5s threshold")
	}
	out := render(r)
	if !strings.Contains(out, `rpstacks_slo_events_total{class="graph"} 2`) {
		t.Errorf("re-declared class lost its counters:\n%s", out)
	}
	if !strings.Contains(out, `threshold_ms="5000"`) {
		t.Errorf("exposition missing the updated threshold:\n%s", out)
	}
}

// TestSLOConcurrentObserve races observers against scrapes under -race.
func TestSLOConcurrentObserve(t *testing.T) {
	s, r, _ := sloAt(t, SLOOptions{})
	s.SetTarget("graph", time.Second)
	s.SetTarget("rpstacks", time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := "graph"
			if i%2 == 0 {
				class = "rpstacks"
			}
			for k := 0; k < 100; k++ {
				s.Observe(class, time.Duration(k)*time.Millisecond, k%3 != 0)
				if k%25 == 0 {
					render(r)
					s.BurnRate(class, 5*time.Minute)
				}
			}
		}(i)
	}
	wg.Wait()
	out := render(r)
	if !strings.Contains(out, `rpstacks_slo_events_total{class="graph"} 200`) {
		t.Errorf("lost events under concurrency:\n%s", out)
	}
}
