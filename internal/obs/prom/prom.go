// Package prom is the system's shared, hand-rolled Prometheus layer: typed
// counters, gauges and fixed-bucket histograms registered in a Registry that
// renders the text exposition format (version 0.0.4). It generalizes the
// metric types that grew up inside internal/serve so every subsystem —
// service, cache tiers, durable store, sweep engines — reports through one
// registry with validated names, without pulling in a client library.
//
// Two registration styles cover every consumer:
//   - owned metrics (Counter/Gauge/Histogram and their label Vec forms):
//     the subsystem holds the handle and updates it on its own hot path;
//   - pull families (Collect): subsystems that already keep their own
//     atomic counters (cache.Tiered, store.Store) render them at scrape
//     time through a callback, so no double accounting is introduced.
//
// Histograms support exemplar-style annotations: ObserveExemplar retains
// the labels of the largest observation seen and WriteText renders it as a
// comment line after the histogram — how the service attaches the job and
// trace identity of its slowest sweep to /metrics without leaving the text
// format.
package prom

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the accepted metric-name shape. The repo's convention layers a
// prefix on top: every metric this system exports is rpstacks_*, which the
// serve round-trip test asserts against the live /metrics endpoint.
var nameRE = regexp.MustCompile(`^[a-z]([a-z0-9_]*[a-z0-9])?$`)

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Counter is a monotonically non-decreasing float counter safe for
// concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative (negative deltas are dropped: a
// counter never goes down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(c.Value()))
}

// Gauge is a settable float gauge safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(g.Value()))
}

// Histogram is a fixed-bucket cumulative histogram safe for concurrent
// observation.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last bucket is +Inf
	sum    Counter
	total  atomic.Uint64

	exMu    sync.Mutex
	exValue float64
	exLabel string
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("prom: histogram bounds not strictly increasing at %g", bounds[i]))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveExemplar records one value and, when it is the largest seen so far,
// retains exemplar (a rendered label list such as `job_id="job-000003"`) as
// the histogram's exemplar comment — the trace identity of the slowest
// observation.
func (h *Histogram) ObserveExemplar(v float64, exemplar string) {
	h.Observe(v)
	h.exMu.Lock()
	if v >= h.exValue {
		h.exValue, h.exLabel = v, exemplar
	}
	h.exMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

func (h *Histogram) write(w io.Writer, name, labels string) {
	// The bucket label list needs le appended inside the braces.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, open, fmtFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, fmtFloat(h.sum.Value()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.total.Load())
	h.exMu.Lock()
	ex, exv := h.exLabel, h.exValue
	h.exMu.Unlock()
	if ex != "" {
		fmt.Fprintf(w, "# exemplar %s%s {%s} %s\n", name, labels, ex, fmtFloat(exv))
	}
}

// metric is anything a family row can render.
type metric interface {
	write(w io.Writer, name, labels string)
}

// family is one metric name: HELP/TYPE plus its rows (one per label set).
type family struct {
	name, help, typ string
	labelNames      []string
	buckets         []float64

	mu      sync.Mutex
	order   []string
	rows    map[string]metric
	collect func(emit func(labels string, v float64))
}

// row returns (creating on first use) the metric under the rendered label
// string.
func (f *family) row(labels string, make func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.rows[labels]; ok {
		return m
	}
	m := make()
	f.rows[labels] = m
	f.order = append(f.order, labels)
	return m
}

// renderLabels builds `{k1="v1",k2="v2"}` from the family's label names and
// the given values. Panics on arity mismatch — a programming error.
func (f *family) renderLabels(values []string) string {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("prom: metric %s wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range f.labelNames {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// CounterVec is a labeled Counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.row(v.f.renderLabels(values), func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a labeled Gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.row(v.f.renderLabels(values), func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a labeled Histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	buckets := v.f.buckets
	return v.f.row(v.f.renderLabels(values), func() metric { return newHistogram(buckets) }).(*Histogram)
}

// Registry holds metric families and renders them in registration order.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// register validates and installs one family. Invalid or duplicate names
// panic: both are wiring bugs, not runtime conditions.
func (r *Registry) register(name, help, typ string, labelNames []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("prom: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("prom: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("prom: duplicate metric name %q", name))
	}
	r.byName[name] = true
	f := &family{name: name, help: help, typ: typ, labelNames: labelNames, buckets: buckets, rows: make(map[string]metric)}
	r.fams = append(r.fams, f)
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return f.row("", func() metric { return &Counter{} }).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labelNames, nil)}
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return f.row("", func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labelNames, nil)}
}

// Histogram registers and returns an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, buckets)
	return f.row("", func() metric { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec registers a labeled histogram family; every row shares the
// bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, "histogram", labelNames, buckets)}
}

// Collect registers a pull-style family of the given type ("counter" or
// "gauge"): at render time, collect is called with an emitter taking a
// pre-rendered label string (`` or `{cache="artifacts"}`) and the sample
// value. Subsystems that already keep their own counters (cache tiers, the
// durable store) export through this without double accounting.
func (r *Registry) Collect(name, help, typ string, collect func(emit func(labels string, v float64))) {
	f := r.register(name, help, typ, nil, nil)
	f.collect = collect
}

// WriteText renders the full exposition in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			f.collect(func(labels string, v float64) {
				fmt.Fprintf(w, "%s%s %s\n", f.name, labels, fmtFloat(v))
			})
			continue
		}
		f.mu.Lock()
		order := make([]string, len(f.order))
		copy(order, f.order)
		f.mu.Unlock()
		for _, labels := range order {
			f.mu.Lock()
			m := f.rows[labels]
			f.mu.Unlock()
			m.write(w, f.name, labels)
		}
	}
}
