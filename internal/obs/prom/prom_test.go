package prom

import (
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rpstacks_jobs_total", "Jobs.")
	g := r.Gauge("rpstacks_queue_depth", "Depth.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // dropped: counters never decrease
	g.Set(4)
	g.Add(-1)

	out := render(r)
	for _, want := range []string{
		"# HELP rpstacks_jobs_total Jobs.\n",
		"# TYPE rpstacks_jobs_total counter\n",
		"rpstacks_jobs_total 3\n",
		"# TYPE rpstacks_queue_depth gauge\n",
		"rpstacks_queue_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecRowsRenderInInsertionOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rpstacks_cache_hits_total", "Hits.", "cache")
	v.With("workloads").Inc()
	v.With("artifacts").Add(2)
	v.With("workloads").Inc()

	out := render(r)
	a := strings.Index(out, `rpstacks_cache_hits_total{cache="workloads"} 2`)
	b := strings.Index(out, `rpstacks_cache_hits_total{cache="artifacts"} 2`)
	if a < 0 || b < 0 || a > b {
		t.Errorf("vec rows wrong or out of insertion order:\n%s", out)
	}
}

func TestHistogramBucketsAndExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rpstacks_sweep_duration_seconds", "Sweep wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.ObserveExemplar(5, `job_id="job-000007"`)
	h.Observe(0.5)

	out := render(r)
	for _, want := range []string{
		`rpstacks_sweep_duration_seconds_bucket{le="0.1"} 1`,
		`rpstacks_sweep_duration_seconds_bucket{le="1"} 3`,
		`rpstacks_sweep_duration_seconds_bucket{le="10"} 4`,
		`rpstacks_sweep_duration_seconds_bucket{le="+Inf"} 4`,
		"rpstacks_sweep_duration_seconds_sum 6.05",
		"rpstacks_sweep_duration_seconds_count 4",
		`# exemplar rpstacks_sweep_duration_seconds {job_id="job-000007"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecBucketLabelMerge(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("rpstacks_stage_seconds", "Stage time.", []float64{1}, "stage")
	v.With("setup").Observe(0.5)

	out := render(r)
	for _, want := range []string{
		`rpstacks_stage_seconds_bucket{stage="setup",le="1"} 1`,
		`rpstacks_stage_seconds_bucket{stage="setup",le="+Inf"} 1`,
		`rpstacks_stage_seconds_count{stage="setup"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCollectFamily(t *testing.T) {
	r := NewRegistry()
	hits := 7.0
	r.Collect("rpstacks_store_hits_total", "Store hits.", "counter", func(emit func(string, float64)) {
		emit("", hits)
	})
	out := render(r)
	if !strings.Contains(out, "rpstacks_store_hits_total 7\n") {
		t.Errorf("collect family missing:\n%s", out)
	}
	hits = 9
	if out = render(r); !strings.Contains(out, "rpstacks_store_hits_total 9\n") {
		t.Errorf("collect family not re-pulled:\n%s", out)
	}
}

func TestInvalidAndDuplicateNamesPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("rpstacks_ok_total", "ok")
	mustPanic("duplicate", func() { r.Counter("rpstacks_ok_total", "again") })
	mustPanic("uppercase", func() { r.Counter("Rpstacks_bad", "x") })
	mustPanic("leading digit", func() { r.Counter("9bad", "x") })
	mustPanic("trailing underscore", func() { r.Counter("bad_", "x") })
	mustPanic("bad label", func() { r.CounterVec("rpstacks_l_total", "x", "BadLabel") })
	mustPanic("label arity", func() {
		v := r.CounterVec("rpstacks_arity_total", "x", "a", "b")
		v.With("only-one")
	})
	mustPanic("unsorted buckets", func() { r.Histogram("rpstacks_h_seconds", "x", []float64{1, 1}) })
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rpstacks_c_total", "c")
	h := r.Histogram("rpstacks_h_seconds", "h", []float64{1, 10})
	v := r.CounterVec("rpstacks_v_total", "v", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 20))
				v.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter %v, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count %d, want 8000", got)
	}
}
