package journal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestNDJSONStream drives the rpexplore -progress-json renderer on an
// injected clock: every line decodes as a journal Event, progress frames
// carry the meter's rate and ETA, sequence numbers are monotonic, and Close
// appends the terminal done frame — the same grammar the SSE stream speaks.
func TestNDJSONStream(t *testing.T) {
	var buf bytes.Buffer
	clock := newTestClock()
	n := NewNDJSON(&buf, 100, -1, clock.Now)

	clock.Advance(10 * time.Second)
	n.Observe(chunkSpan(50))
	clock.Advance(10 * time.Second)
	n.Observe(chunkSpan(50))
	// Foreign categories are not progress.
	n.Observe(obs.Record{Cat: obs.CatJob, Name: obs.NameChunk, Arg: 7})
	n.Close("done")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d lines, want 3 (two progress + done):\n%s", len(lines), buf.String())
	}
	var evs []Event
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not event JSON: %v\n%s", i, err, line)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("line %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		evs = append(evs, ev)
	}

	first := evs[0]
	if first.Type != EventProgress || first.Done != 50 || first.Total != 100 {
		t.Errorf("first frame %+v, want progress 50/100", first)
	}
	// 50 points in 10s: 5 pts/s, 50 remaining, ETA 10s.
	if first.PointsPerSec != 5 || first.EtaMS != 10000 {
		t.Errorf("first frame rate=%g eta_ms=%d, want 5 pts/s and 10000ms", first.PointsPerSec, first.EtaMS)
	}
	if evs[1].Done != 100 || evs[1].Percent != 100 || evs[1].TMS != 20000 {
		t.Errorf("second frame %+v, want 100/100 at t_ms 20000", evs[1])
	}
	last := evs[2]
	if last.Type != EventDone || last.Status != "done" || last.TMS != 20000 {
		t.Errorf("terminal frame %+v, want done at t_ms 20000", last)
	}
}

// TestNDJSONPacing honors the meter's interval: with a one-minute interval
// only completion and the terminal frame land.
func TestNDJSONPacing(t *testing.T) {
	var buf bytes.Buffer
	clock := newTestClock()
	n := NewNDJSON(&buf, 100, time.Minute, clock.Now)
	clock.Advance(time.Second)
	for i := 0; i < 9; i++ {
		n.Observe(chunkSpan(10))
	}
	n.Observe(chunkSpan(10)) // completion emits regardless of pacing
	n.Close("done")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2 (completion + done):\n%s", len(lines), buf.String())
	}
}
