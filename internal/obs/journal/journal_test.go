package journal

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// memStore is an in-memory journal.Store for tests — the same Get/Put
// surface the durable artifact store exposes, without the disk.
type memStore struct {
	mu      sync.Mutex
	m       map[string][]byte
	failPut bool
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) Get(key string) ([]byte, time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.m[key]
	return raw, 0, ok
}

func (s *memStore) Put(key string, payload []byte, cost time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failPut {
		return errors.New("injected put failure")
	}
	s.m[key] = append([]byte(nil), payload...)
	return nil
}

// testClock is a settable clock for Options.Now.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func chunkSpan(points int64) obs.Record {
	return obs.Record{Cat: obs.CatDSE, Name: obs.NameChunk, Arg: points}
}

// drain reads a subscription until its channel closes.
func drain(t *testing.T, sub *Subscription) []Event {
	t.Helper()
	var evs []Event
	timeout := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		case <-timeout:
			t.Fatalf("subscription never closed; got %d events", len(evs))
		}
	}
}

// TestJournalRecordLifecycle walks one job through the full surface: spans
// accumulate stage timings, cache outcomes and fleet chunks on the record;
// fleet lease notifications count steals and expiries; JobFinished merges
// the terminal summary and stamps the distinct fleet worker count.
func TestJournalRecordLifecycle(t *testing.T) {
	clock := newTestClock()
	j := New(Options{ProgressInterval: -1, Now: clock.Now})

	j.JobQueued("job-1", Record{Engine: "rpstacks", Workload: "429.mcf", GridPoints: 12})
	clock.Advance(100 * time.Millisecond)
	j.JobRunning("job-1")
	j.ObserveSpan("job-1", obs.Record{Cat: obs.CatJob, Name: obs.NameQueueWait, Dur: 100 * time.Millisecond})
	j.ObserveSpan("job-1", obs.Record{Cat: obs.CatJob, Name: obs.NameSetup, Dur: 40 * time.Millisecond})
	j.ObserveSpan("job-1", obs.Record{Cat: obs.CatCache, Name: "mem-hit"})
	j.ObserveSpan("job-1", obs.Record{Cat: obs.CatCache, Name: "build"})
	clock.Advance(time.Second)
	j.ObserveSpan("job-1", chunkSpan(6))
	// A fleet chunk completion counts on the record and advances the meter.
	j.ObserveSpan("job-1", obs.Record{Cat: obs.CatFleet, Name: obs.NameChunk, Arg: 6})
	j.FleetEvent("job-1", FleetLease, 0, "w0")
	j.FleetEvent("job-1", FleetSteal, 1, "w1")
	j.FleetEvent("job-1", FleetExpire, 1, "w0")
	clock.Advance(time.Second)
	j.JobFinished("job-1", Finish{
		Status: "done", TraceDigest: "abc123", Workers: 2, SweepMS: 2000,
		SetupCached: true, AuditStatus: "ok",
		Search: &SearchStats{Mode: "greedy", Probes: 7, Converged: true},
	})

	rec, ok := j.Get("job-1")
	if !ok {
		t.Fatal("finished job has no record")
	}
	if rec.Status != "done" || rec.Engine != "rpstacks" || rec.Workload != "429.mcf" {
		t.Errorf("record identity wrong: %+v", rec)
	}
	if rec.QueueMS != 100 || rec.SetupMS != 40 {
		t.Errorf("stage timings queue=%g setup=%g, want 100/40", rec.QueueMS, rec.SetupMS)
	}
	if rec.CacheMemHits != 1 || rec.CacheBuilds != 1 || rec.CacheDiskHits != 0 {
		t.Errorf("cache counts %d/%d/%d, want 1 mem-hit, 1 build", rec.CacheMemHits, rec.CacheDiskHits, rec.CacheBuilds)
	}
	if rec.FleetChunks != 1 || rec.FleetSteals != 1 || rec.FleetExpiries != 1 {
		t.Errorf("fleet counts chunks=%d steals=%d expiries=%d, want 1/1/1", rec.FleetChunks, rec.FleetSteals, rec.FleetExpiries)
	}
	if rec.FleetWorkers != 2 {
		t.Errorf("fleet workers %d, want 2 distinct (w0, w1)", rec.FleetWorkers)
	}
	if rec.TraceDigest != "abc123" || !rec.SetupCached || rec.AuditStatus != "ok" || rec.Workers != 2 || rec.SweepMS != 2000 {
		t.Errorf("terminal summary not merged: %+v", rec)
	}
	if rec.Search == nil || rec.Search.Probes != 7 || !rec.Search.Converged {
		t.Errorf("search stats not merged: %+v", rec.Search)
	}
	if rec.Finished.Sub(rec.Submitted) != 2100*time.Millisecond {
		t.Errorf("finished-submitted = %v, want 2.1s on the injected clock", rec.Finished.Sub(rec.Submitted))
	}

	// The retained event log: queued, running, two progress (6 then 12 of
	// 12 — negative interval emits every chunk), three fleet, done; sequence
	// numbers strictly increasing from 1.
	types := make([]string, len(rec.Events))
	for i, ev := range rec.Events {
		types[i] = ev.Type
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Job != "job-1" {
			t.Errorf("event %d job %q, want job-1", i, ev.Job)
		}
	}
	want := []string{EventQueued, EventRunning, EventProgress, EventProgress, EventFleet, EventFleet, EventFleet, EventDone}
	if len(types) != len(want) {
		t.Fatalf("event types %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types %v, want %v", types, want)
		}
	}
	if p := rec.Events[3]; p.Done != 12 || p.Total != 12 || p.Percent != 100 {
		t.Errorf("final progress event %+v, want 12/12 at 100%%", p)
	}
	if f := rec.Events[4]; f.Fleet != FleetLease || f.Chunk == nil || *f.Chunk != 0 || f.Worker != "w0" {
		t.Errorf("lease event %+v, want lease of chunk 0 by w0 (chunk 0 must survive omitempty)", f)
	}
	if d := rec.Events[7]; d.Status != "done" {
		t.Errorf("terminal event %+v, want status done", d)
	}

	// List serves the record without its event log.
	recs := j.List(Query{})
	if len(recs) != 1 || recs[0].JobID != "job-1" || recs[0].Events != nil {
		t.Errorf("List = %+v, want one event-free record", recs)
	}
}

// TestJournalSubscribeLiveAndReplay covers the stream contract: a live
// subscriber sees every event then a close at the terminal one; a
// Last-Event-ID reconnect (after=N) replays only what was missed; the
// retained log serves finished jobs through an already-closed channel.
func TestJournalSubscribeLiveAndReplay(t *testing.T) {
	clock := newTestClock()
	j := New(Options{ProgressInterval: -1, Now: clock.Now})

	j.JobQueued("job-1", Record{Engine: "graph", GridPoints: 4})
	live, ok := j.Subscribe("job-1", 0)
	if !ok {
		t.Fatal("subscribe on a queued job failed")
	}
	j.JobRunning("job-1")
	j.ObserveSpan("job-1", chunkSpan(4))
	j.JobFinished("job-1", Finish{Status: "done"})

	evs := drain(t, live)
	if len(evs) != 4 || evs[0].Type != EventQueued || evs[3].Type != EventDone {
		t.Fatalf("live stream %+v, want queued/running/progress/done", evs)
	}

	// Reconnect from the middle: only seq > 2 replays.
	resumed, ok := j.Subscribe("job-1", 2)
	if !ok {
		t.Fatal("replay subscribe failed")
	}
	evs = drain(t, resumed)
	if len(evs) != 2 || evs[0].Seq != 3 || evs[1].Type != EventDone {
		t.Fatalf("replay after seq 2 = %+v, want seqs 3 and 4 ending in done", evs)
	}

	// After the terminal seq there is nothing left: an immediately-closed
	// empty stream, not an error.
	empty, ok := j.Subscribe("job-1", 4)
	if !ok {
		t.Fatal("post-terminal subscribe failed")
	}
	if evs := drain(t, empty); len(evs) != 0 {
		t.Fatalf("replay after the terminal seq = %+v, want nothing", evs)
	}

	if _, ok := j.Subscribe("no-such-job", 0); ok {
		t.Error("subscribe on an unknown job reported success")
	}
}

// TestJournalSlowReaderDrops proves a stalled subscriber never blocks the
// job: events beyond its buffer are dropped and counted.
func TestJournalSlowReaderDrops(t *testing.T) {
	j := New(Options{ProgressInterval: -1, SubscriberBuffer: 1})
	j.JobQueued("job-1", Record{GridPoints: 100})
	// The queued event is already retained, so the subscriber's buffer
	// (replay + 1) fills after one live event.
	sub, ok := j.Subscribe("job-1", 0)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer sub.Close()
	j.JobRunning("job-1")
	for i := 0; i < 5; i++ {
		j.ObserveSpan("job-1", chunkSpan(1))
	}
	st := j.Stats()
	if st.Dropped == 0 {
		t.Error("no drops counted on a stalled subscriber")
	}
	if st.Subscribers != 1 {
		t.Errorf("subscribers = %d, want 1", st.Subscribers)
	}
	// The job side never blocked: all five chunks landed on the meter.
	j.JobFinished("job-1", Finish{Status: "done"})
	rec, _ := j.Get("job-1")
	if rec.Status != "done" {
		t.Errorf("job status %q, want done despite the stalled subscriber", rec.Status)
	}
}

// TestJournalPersistence round-trips records through a store: a second
// journal over the same store — a restarted process — serves Get, List and
// event replay for jobs it never saw live.
func TestJournalPersistence(t *testing.T) {
	store := newMemStore()
	clock := newTestClock()
	j1 := New(Options{Store: store, ProgressInterval: -1, Now: clock.Now})

	for _, id := range []string{"job-1", "job-2"} {
		j1.JobQueued(id, Record{Engine: "rpstacks", GridPoints: 2})
		j1.JobRunning(id)
		j1.ObserveSpan(id, chunkSpan(2))
		clock.Advance(time.Second)
		j1.JobFinished(id, Finish{Status: "done"})
	}
	if st := j1.Stats(); st.Persisted != 2 {
		t.Fatalf("persisted index %d, want 2", st.Persisted)
	}

	// The restarted journal: same store, empty memory.
	j2 := New(Options{Store: store, ProgressInterval: -1, Now: clock.Now})
	rec, ok := j2.Get("job-2")
	if !ok || rec.Status != "done" || len(rec.Events) == 0 {
		t.Fatalf("restarted Get(job-2) = %+v ok=%v, want the full record with events", rec, ok)
	}
	recs := j2.List(Query{})
	if len(recs) != 2 {
		t.Fatalf("restarted List = %d records, want 2", len(recs))
	}
	// job-2 was submitted later: newest first.
	if recs[0].JobID != "job-2" || recs[1].JobID != "job-1" {
		t.Errorf("restarted List order %s, %s, want job-2 then job-1", recs[0].JobID, recs[1].JobID)
	}
	sub, ok := j2.Subscribe("job-1", 1)
	if !ok {
		t.Fatal("restarted subscribe failed")
	}
	evs := drain(t, sub)
	if len(evs) == 0 || evs[len(evs)-1].Type != EventDone {
		t.Fatalf("restarted replay %+v, want events ending in done", evs)
	}
	for _, ev := range evs {
		if ev.Seq <= 1 {
			t.Errorf("replay after seq 1 delivered seq %d", ev.Seq)
		}
	}

	// Filters work over persisted records too.
	if got := j2.List(Query{Engine: "graph"}); len(got) != 0 {
		t.Errorf("engine filter matched %d records, want 0", len(got))
	}
	if got := j2.List(Query{Status: "done", Limit: 1}); len(got) != 1 {
		t.Errorf("limited list = %d records, want 1", len(got))
	}
}

// TestJournalPersistFailure counts failed writes without losing the
// in-memory record.
func TestJournalPersistFailure(t *testing.T) {
	store := newMemStore()
	store.failPut = true
	j := New(Options{Store: store, ProgressInterval: -1})
	j.JobQueued("job-1", Record{GridPoints: 1})
	j.JobRunning("job-1")
	j.JobFinished("job-1", Finish{Status: "failed", Error: "boom"})
	if st := j.Stats(); st.PersistErrors == 0 {
		t.Error("failed Put not counted")
	}
	if rec, ok := j.Get("job-1"); !ok || rec.Error != "boom" {
		t.Errorf("record lost after persist failure: %+v ok=%v", rec, ok)
	}
}

// TestJournalEventCapacity trims the oldest retained events while
// preserving sequence numbers, so Last-Event-ID math still holds.
func TestJournalEventCapacity(t *testing.T) {
	j := New(Options{ProgressInterval: -1, EventCapacity: 4})
	j.JobQueued("job-1", Record{GridPoints: 100})
	j.JobRunning("job-1")
	for i := 0; i < 10; i++ {
		j.ObserveSpan("job-1", chunkSpan(1))
	}
	j.JobFinished("job-1", Finish{Status: "done"})
	rec, _ := j.Get("job-1")
	if len(rec.Events) != 4 {
		t.Fatalf("retained %d events, want capacity 4", len(rec.Events))
	}
	// 13 emits total (queued, running, 10 progress, done): the survivors are
	// seqs 10..13 and the log stays in order.
	for i, ev := range rec.Events {
		if want := uint64(10 + i); ev.Seq != want {
			t.Errorf("retained event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if rec.Events[3].Type != EventDone {
		t.Errorf("last retained event is %s, want done", rec.Events[3].Type)
	}
}

// TestJournalRetentionCapacity drops the oldest finished records once over
// capacity.
func TestJournalRetentionCapacity(t *testing.T) {
	j := New(Options{ProgressInterval: -1, Capacity: 2})
	for _, id := range []string{"a", "b", "c"} {
		j.JobQueued(id, Record{GridPoints: 1})
		j.JobRunning(id)
		j.JobFinished(id, Finish{Status: "done"})
	}
	if _, ok := j.Get("a"); ok {
		t.Error("oldest record survived past capacity without a store")
	}
	if _, ok := j.Get("c"); !ok {
		t.Error("newest record evicted")
	}
	if st := j.Stats(); st.Records != 2 {
		t.Errorf("records = %d, want 2", st.Records)
	}
}

// TestJournalDiscard forgets a load-shed job entirely.
func TestJournalDiscard(t *testing.T) {
	j := New(Options{})
	j.JobQueued("job-1", Record{GridPoints: 1})
	j.Discard("job-1")
	if _, ok := j.Get("job-1"); ok {
		t.Error("discarded job still has a record")
	}
}

// TestJournalNilIsDisabled: every method on a nil *Journal is a safe no-op —
// the property the serve differential test builds on.
func TestJournalNilIsDisabled(t *testing.T) {
	var j *Journal
	j.JobQueued("x", Record{})
	j.JobRunning("x")
	j.ObserveSpan("x", chunkSpan(1))
	j.FleetEvent("x", FleetLease, 0, "w")
	j.JobFinished("x", Finish{Status: "done"})
	j.Discard("x")
	if _, ok := j.Get("x"); ok {
		t.Error("nil journal returned a record")
	}
	if recs := j.List(Query{}); recs != nil {
		t.Errorf("nil journal listed %v", recs)
	}
	if _, ok := j.Subscribe("x", 0); ok {
		t.Error("nil journal accepted a subscription")
	}
	if st := j.Stats(); st != (Stats{}) {
		t.Errorf("nil journal stats %+v, want zero", st)
	}
}

// TestEventJSONShape pins the wire schema both SSE and NDJSON consumers
// parse: field names, omitempty behavior, and chunk 0 surviving.
func TestEventJSONShape(t *testing.T) {
	zero := 0
	raw, err := json.Marshal(Event{Seq: 3, Type: EventFleet, Job: "j", TMS: 1500, Fleet: FleetLease, Chunk: &zero, Worker: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":3,"type":"fleet","job":"j","t_ms":1500,"fleet":"lease","chunk":0,"worker":"w0"}`
	if string(raw) != want {
		t.Errorf("fleet event JSON\n got %s\nwant %s", raw, want)
	}
	raw, err = json.Marshal(Event{Seq: 1, Type: EventQueued, TMS: 0})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"seq":1,"type":"queued","t_ms":0}`
	if string(raw) != want {
		t.Errorf("queued event JSON\n got %s\nwant %s", raw, want)
	}
}
