package journal

import (
	"repro/internal/obs"
)

// events.go — the journal's event grammar: one flat JSON shape shared by
// every consumer of job progress. rpserved's GET /debug/jobs/{id}/events
// frames these as Server-Sent Events (the Seq is the SSE id, the Type the
// SSE event name, the JSON the data line) and rpexplore -progress-json
// prints them as NDJSON, so scripts parse one format no matter where the
// sweep ran.

// Event types, in lifecycle order. A job emits queued once, running once,
// any number of progress and fleet events, and exactly one done event — the
// terminal frame, whose Status field carries how the job ended.
const (
	EventQueued   = "queued"
	EventRunning  = "running"
	EventProgress = "progress"
	EventFleet    = "fleet"
	EventDone     = "done"
)

// Fleet event kinds carried in Event.Fleet.
const (
	FleetLease  = "lease"
	FleetSteal  = "steal"
	FleetExpire = "expire"
)

// Event is one frame of a job's live stream. Seq increases monotonically
// per job and never resets, so a client that reconnects with the last Seq
// it saw (the SSE Last-Event-ID) replays exactly what it missed. TMS is
// milliseconds since the job was submitted.
type Event struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	Job  string `json:"job,omitempty"`
	TMS  int64  `json:"t_ms"`

	// Progress payload (Type == progress): the obs.ProgressUpdate counts.
	// Total is 0 when the point count is unknown (guided searches).
	Done          int64   `json:"done,omitempty"`
	Total         int64   `json:"total,omitempty"`
	Percent       float64 `json:"percent,omitempty"`
	PointsPerSec  float64 `json:"points_per_sec,omitempty"`
	EtaMS         int64   `json:"eta_ms,omitempty"`
	ResumedPoints int64   `json:"resumed_points,omitempty"`

	// Fleet payload (Type == fleet): one lease-lifecycle notification.
	// Chunk is a pointer so chunk 0 survives omitempty.
	Fleet  string `json:"fleet,omitempty"`
	Chunk  *int   `json:"chunk,omitempty"`
	Worker string `json:"worker,omitempty"`

	// Terminal payload (Type == done): the job's final status (done,
	// failed, timeout, canceled) and error, if any.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// ProgressEvent renders one obs.ProgressUpdate in the stream schema. Seq,
// Job and TMS are left for the caller: the journal stamps them per job,
// rpexplore stamps its own sequence.
func ProgressEvent(u obs.ProgressUpdate) Event {
	ev := Event{
		Type:          EventProgress,
		Done:          u.Done,
		Total:         u.Total,
		Percent:       u.Percent(),
		PointsPerSec:  u.Rate,
		ResumedPoints: u.ResumedPoints,
	}
	if u.HasETA {
		ev.EtaMS = u.ETA.Milliseconds()
	}
	return ev
}
