package journal

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// NDJSON renders a sweep's progress meter as newline-delimited JSON events
// in the journal's stream schema — the same frames rpserved serves over SSE,
// so a script parses one format whether the sweep ran in-process (rpexplore
// -progress-json) or on the service. Wire Observe as the tracer's WithOnEnd
// hook and call Close at sweep end for the terminal event.
type NDJSON struct {
	prog *obs.Progress

	mu    sync.Mutex
	enc   *json.Encoder
	now   func() time.Time
	start time.Time
	seq   uint64
}

// NewNDJSON builds the meter over a sweep of total points, emitting to w at
// most once per interval (zero: every two seconds, matching NewProgress;
// negative: every chunk). A nil now uses the wall clock.
func NewNDJSON(w io.Writer, total int, interval time.Duration, now func() time.Time) *NDJSON {
	if now == nil {
		now = time.Now
	}
	n := &NDJSON{enc: json.NewEncoder(w), now: now, start: now()}
	n.prog = obs.NewProgressFunc(n.emit, total, interval, now)
	return n
}

// Observe consumes one span record; pass it as the tracer's WithOnEnd hook.
func (n *NDJSON) Observe(rec obs.Record) { n.prog.Observe(rec) }

// Close flushes the final progress update and emits the terminal done event
// with the given status.
func (n *NDJSON) Close(status string) {
	n.prog.Flush()
	n.mu.Lock()
	n.seq++
	_ = n.enc.Encode(Event{
		Seq:    n.seq,
		Type:   EventDone,
		TMS:    n.now().Sub(n.start).Milliseconds(),
		Status: status,
	})
	n.mu.Unlock()
}

// emit is the Progress sink: stamp sequence and relative time, write one
// JSON line.
func (n *NDJSON) emit(u obs.ProgressUpdate) {
	n.mu.Lock()
	n.seq++
	ev := ProgressEvent(u)
	ev.Seq = n.seq
	ev.TMS = n.now().Sub(n.start).Milliseconds()
	_ = n.enc.Encode(ev)
	n.mu.Unlock()
}
