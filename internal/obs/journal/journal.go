// Package journal keeps one wide-event flight record per exploration job —
// the retrospective answer to "what happened to job X": spec summary, stage
// timings fed from the job's span records, cache outcomes, fleet lease
// churn, search and audit verdicts, terminal status — plus the live answer
// to "how is it doing right now": a per-job event stream (queued → running →
// progress → fleet → done) with monotonic sequence numbers, bounded
// subscriber buffers and slow-reader drop accounting.
//
// Records persist through an optional store (rpserved passes its durable
// artifact store), so a restarted service still serves last week's flight
// records and replays their event logs. The store has no key enumeration,
// so the journal maintains its own index blob under a fixed key.
//
// A nil *Journal is valid and does nothing — the disabled form, mirroring
// the obs.Tracer convention — which is what makes the journal provably
// inert: the differential test runs the same sweep with and without one.
package journal

import (
	"encoding/json"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Store is the durable face the journal persists through — the subset of
// store.Store it needs. Nil keeps records in memory only.
type Store interface {
	Get(key string) ([]byte, time.Duration, bool)
	Put(key string, payload []byte, cost time.Duration) error
}

// Storage keys. Job IDs are sequential per process, so a restarted service
// eventually reuses them and overwrites older records — same convention as
// the audit reports, acceptable for debugging artifacts.
const indexKey = "journal|index"

func recordKey(jobID string) string { return "journal|job|" + jobID }

// SearchStats summarizes a guided-search job's probe loop on the record.
type SearchStats struct {
	Mode      string `json:"mode"`
	Probes    int    `json:"probes"`
	Rounds    int    `json:"rounds"`
	Converged bool   `json:"converged"`
	Feasible  bool   `json:"feasible"`
	Verified  bool   `json:"verified"`
}

// Record is one job's wide-event flight record. The submission fields are
// set by the caller at JobQueued; stage timings and cache/fleet counts
// accumulate from span records via ObserveSpan; the rest lands at
// JobFinished. Events is the bounded retained event log — what Last-Event-ID
// replay serves after the live stream (or the whole process) is gone.
type Record struct {
	JobID       string    `json:"job_id"`
	Status      string    `json:"status"`
	Engine      string    `json:"engine"`
	Workload    string    `json:"workload,omitempty"`
	TraceDigest string    `json:"trace_digest,omitempty"`
	GridPoints  int       `json:"grid_points"`
	BatchSize   int       `json:"batch_size,omitempty"`
	Workers     int       `json:"sweep_workers,omitempty"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started"`
	Finished    time.Time `json:"finished"`

	QueueMS    float64 `json:"queue_ms"`
	SetupMS    float64 `json:"setup_ms"`
	SweepMS    float64 `json:"sweep_ms"`
	AssembleMS float64 `json:"assemble_ms,omitempty"`

	SetupCached   bool `json:"setup_cached"`
	CacheMemHits  int  `json:"cache_mem_hits,omitempty"`
	CacheDiskHits int  `json:"cache_disk_hits,omitempty"`
	CacheBuilds   int  `json:"cache_builds,omitempty"`

	FleetChunks   int `json:"fleet_chunks,omitempty"`
	FleetSteals   int `json:"fleet_steals,omitempty"`
	FleetExpiries int `json:"fleet_expiries,omitempty"`
	FleetWorkers  int `json:"fleet_workers,omitempty"`

	Search      *SearchStats `json:"search,omitempty"`
	AuditStatus string       `json:"audit_status,omitempty"`
	Error       string       `json:"error,omitempty"`

	Events []Event `json:"events,omitempty"`
}

// Finish carries a job's terminal summary into JobFinished. Zero-valued
// fields leave whatever the record already accumulated.
type Finish struct {
	Status      string
	Error       string
	TraceDigest string
	GridPoints  int
	BatchSize   int
	Workers     int
	SweepMS     float64
	SetupCached bool
	AuditStatus string
	Search      *SearchStats
}

// Options parameterizes New.
type Options struct {
	// Store persists finished records; nil keeps them in memory only.
	Store Store
	// Capacity bounds in-memory finished records and the persisted index
	// (default 512).
	Capacity int
	// EventCapacity bounds each job's retained event log (default 256);
	// the oldest events of a very chatty job are dropped, sequence numbers
	// preserved.
	EventCapacity int
	// SubscriberBuffer is each live subscriber's channel depth (default
	// 64). A subscriber that falls further behind than this drops events —
	// counted, never blocking the job.
	SubscriberBuffer int
	// ProgressInterval paces progress events (0: 500ms; negative: every
	// chunk — tests want every observation).
	ProgressInterval time.Duration
	// Now is the journal clock, injectable for tests (nil: time.Now).
	Now func() time.Time
	// Logger receives persistence trouble. Nil discards.
	Logger *slog.Logger
}

// Journal is the per-process record keeper. Create with New; a nil *Journal
// is the disabled form (every method no-ops).
type Journal struct {
	store    Store
	capacity int
	eventCap int
	bufCap   int
	interval time.Duration
	now      func() time.Time
	logger   *slog.Logger

	dropped     atomic.Uint64 // events dropped on slow subscriber buffers
	persistErrs atomic.Uint64

	mu        sync.Mutex
	jobs      map[string]*jobState
	doneOrder []string // finished job IDs, oldest first (memory retention)
	index     []string // persisted job IDs, oldest first (mirrors indexKey)
}

// jobState is one live (or retained) job. st.mu guards everything below it;
// lock ordering is Journal.mu before st.mu, and Progress's own lock before
// st.mu (the emit hook locks st.mu, so st.mu must never be held across a
// Progress call).
type jobState struct {
	prog *obs.Progress

	mu     sync.Mutex
	rec    Record
	events []Event
	seq    uint64
	done   bool
	subs   map[chan Event]struct{}
}

// New builds a Journal and warm-loads the persisted index when a store is
// mounted.
func New(opts Options) *Journal {
	if opts.Capacity <= 0 {
		opts.Capacity = 512
	}
	if opts.EventCapacity <= 0 {
		opts.EventCapacity = 256
	}
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = 64
	}
	if opts.ProgressInterval == 0 {
		opts.ProgressInterval = 500 * time.Millisecond
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	j := &Journal{
		store:    opts.Store,
		capacity: opts.Capacity,
		eventCap: opts.EventCapacity,
		bufCap:   opts.SubscriberBuffer,
		interval: opts.ProgressInterval,
		now:      opts.Now,
		logger:   opts.Logger,
		jobs:     make(map[string]*jobState),
	}
	if j.store != nil {
		if raw, _, ok := j.store.Get(indexKey); ok {
			var ids []string
			if err := json.Unmarshal(raw, &ids); err == nil {
				j.index = ids
			}
		}
	}
	return j
}

// JobQueued opens a job's flight record and emits its queued event. The
// caller fills the submission-time fields of rec (engine, workload, grid
// size, submitted); everything else accumulates later.
func (j *Journal) JobQueued(id string, rec Record) {
	if j == nil {
		return
	}
	rec.JobID = id
	rec.Status = "queued"
	if rec.Submitted.IsZero() {
		rec.Submitted = j.now()
	}
	st := &jobState{rec: rec, subs: make(map[chan Event]struct{})}
	st.prog = obs.NewProgressFunc(func(u obs.ProgressUpdate) {
		st.mu.Lock()
		j.emitLocked(st, ProgressEvent(u))
		st.mu.Unlock()
	}, rec.GridPoints, j.interval, j.now)

	j.mu.Lock()
	j.jobs[id] = st
	j.mu.Unlock()

	st.mu.Lock()
	j.emitLocked(st, Event{Type: EventQueued})
	st.mu.Unlock()
}

// Discard forgets a job that never made it onto the queue (load-shed at
// submission); nothing is emitted or persisted.
func (j *Journal) Discard(id string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	delete(j.jobs, id)
	j.mu.Unlock()
}

// JobRunning marks the job claimed by a worker and emits its running event.
func (j *Journal) JobRunning(id string) {
	if j == nil {
		return
	}
	st := j.state(id)
	if st == nil {
		return
	}
	st.mu.Lock()
	st.rec.Status = "running"
	st.rec.Started = j.now()
	j.emitLocked(st, Event{Type: EventRunning})
	st.mu.Unlock()
}

// ObserveSpan feeds one completed span of the job's tracer into the record:
// chunk and resume spans drive the progress meter (fleet chunk completions
// included — the coordinator ends one CatFleet chunk span per accepted
// worker self-report), lifecycle spans land as stage timings, cache lookups
// as outcome counts. Wire it beside the metrics hook in the tracer's
// WithOnEnd.
func (j *Journal) ObserveSpan(id string, rec obs.Record) {
	if j == nil {
		return
	}
	st := j.state(id)
	if st == nil {
		return
	}
	switch {
	case rec.Cat == obs.CatDSE && (rec.Name == obs.NameChunk || rec.Name == obs.NameResume):
		st.prog.Observe(rec)
	case rec.Cat == obs.CatFleet && rec.Name == obs.NameChunk:
		st.mu.Lock()
		st.rec.FleetChunks++
		st.mu.Unlock()
		// Re-shape to the record kind the meter counts: a fleet chunk's
		// accepted completion is a chunk done, points in Arg either way.
		st.prog.Observe(obs.Record{Cat: obs.CatDSE, Name: obs.NameChunk, Arg: rec.Arg})
	case rec.Cat == obs.CatJob && rec.Name == obs.NameQueueWait:
		st.mu.Lock()
		st.rec.QueueMS = durMS(rec.Dur)
		st.mu.Unlock()
	case rec.Cat == obs.CatJob && rec.Name == obs.NameSetup:
		st.mu.Lock()
		st.rec.SetupMS += durMS(rec.Dur)
		st.mu.Unlock()
	case rec.Cat == obs.CatFleet && rec.Name == obs.NameAssemble:
		st.mu.Lock()
		st.rec.AssembleMS += durMS(rec.Dur)
		st.mu.Unlock()
	case rec.Cat == obs.CatCache:
		st.mu.Lock()
		switch rec.Name {
		case "mem-hit":
			st.rec.CacheMemHits++
		case "disk-hit":
			st.rec.CacheDiskHits++
		case "build":
			st.rec.CacheBuilds++
		}
		st.mu.Unlock()
	}
}

// FleetEvent records one lease-lifecycle notification (lease, steal,
// expire) from the coordinator against the job the sweep belongs to, and
// emits it on the live stream.
func (j *Journal) FleetEvent(id, kind string, chunk int, worker string) {
	if j == nil {
		return
	}
	st := j.state(id)
	if st == nil {
		return
	}
	st.mu.Lock()
	switch kind {
	case FleetSteal:
		st.rec.FleetSteals++
	case FleetExpire:
		st.rec.FleetExpiries++
	}
	c := chunk
	j.emitLocked(st, Event{Type: EventFleet, Fleet: kind, Chunk: &c, Worker: worker})
	st.mu.Unlock()
}

// JobFinished closes the record: final progress flush, terminal event,
// subscriber shutdown, persistence, memory retention. Safe to call once per
// job.
func (j *Journal) JobFinished(id string, fin Finish) {
	if j == nil {
		return
	}
	st := j.state(id)
	if st == nil {
		return
	}
	// The flush emits through the progress hook, which locks st.mu — so it
	// must run before we take the lock ourselves.
	st.prog.Flush()

	st.mu.Lock()
	r := &st.rec
	r.Status = fin.Status
	r.Error = fin.Error
	r.Finished = j.now()
	if fin.TraceDigest != "" {
		r.TraceDigest = fin.TraceDigest
	}
	if fin.GridPoints > 0 {
		r.GridPoints = fin.GridPoints
	}
	if fin.BatchSize > 0 {
		r.BatchSize = fin.BatchSize
	}
	if fin.Workers > 0 {
		r.Workers = fin.Workers
	}
	if fin.SweepMS > 0 {
		r.SweepMS = fin.SweepMS
	}
	if fin.SetupCached {
		r.SetupCached = true
	}
	if fin.AuditStatus != "" {
		r.AuditStatus = fin.AuditStatus
	}
	if fin.Search != nil {
		r.Search = fin.Search
	}
	workers := make(map[string]bool)
	for _, ev := range st.events {
		if ev.Type == EventFleet && ev.Worker != "" {
			workers[ev.Worker] = true
		}
	}
	if len(workers) > 0 {
		r.FleetWorkers = len(workers)
	}
	j.emitLocked(st, Event{Type: EventDone, Status: fin.Status, Error: fin.Error})
	st.done = true
	for ch := range st.subs {
		close(ch)
	}
	st.subs = make(map[chan Event]struct{})
	persisted := *r
	persisted.Events = append([]Event(nil), st.events...)
	st.mu.Unlock()

	j.persist(persisted)

	j.mu.Lock()
	j.doneOrder = append(j.doneOrder, id)
	for len(j.doneOrder) > j.capacity {
		delete(j.jobs, j.doneOrder[0])
		j.doneOrder = j.doneOrder[1:]
	}
	j.mu.Unlock()
}

// persist writes the finished record and the updated index through the
// store. Best-effort: a failed write keeps the record in memory for its
// retained lifetime.
func (j *Journal) persist(rec Record) {
	if j.store == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err == nil {
		err = j.store.Put(recordKey(rec.JobID), payload, 0)
	}
	if err != nil {
		j.persistErrs.Add(1)
		j.logger.Warn("journal record not persisted",
			slog.String("job_id", rec.JobID), slog.String("error", err.Error()))
		return
	}
	j.mu.Lock()
	ids := j.index
	found := false
	for _, id := range ids {
		if id == rec.JobID {
			found = true
			break
		}
	}
	if !found {
		ids = append(ids, rec.JobID)
		if len(ids) > j.capacity {
			ids = append([]string(nil), ids[len(ids)-j.capacity:]...)
		}
		j.index = ids
	}
	snapshot := append([]string(nil), j.index...)
	j.mu.Unlock()
	if raw, err := json.Marshal(snapshot); err == nil {
		if err := j.store.Put(indexKey, raw, 0); err != nil {
			j.persistErrs.Add(1)
			j.logger.Warn("journal index not persisted", slog.String("error", err.Error()))
		}
	}
}

func (j *Journal) state(id string) *jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.jobs[id]
}

// Get returns one job's record, event log included: from memory while the
// job is live or retained, falling back to the store — which is how a
// record outlives a service restart.
func (j *Journal) Get(id string) (Record, bool) {
	if j == nil {
		return Record{}, false
	}
	if st := j.state(id); st != nil {
		st.mu.Lock()
		rec := st.rec
		rec.Events = append([]Event(nil), st.events...)
		st.mu.Unlock()
		return rec, true
	}
	return j.load(id)
}

// load reads one persisted record from the store.
func (j *Journal) load(id string) (Record, bool) {
	if j.store == nil {
		return Record{}, false
	}
	raw, _, ok := j.store.Get(recordKey(id))
	if !ok {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Query filters List. Zero fields match everything.
type Query struct {
	// Status and Engine filter exactly when non-empty.
	Status string
	Engine string
	// Since keeps records submitted at or after it.
	Since time.Time
	// Limit bounds the response (0: 100).
	Limit int
}

// List returns matching records sorted newest-submitted first, bounded by
// the query's limit. Event logs are omitted (GET the record by ID for
// those). Live jobs and persisted restarts both appear.
func (j *Journal) List(q Query) []Record {
	if j == nil {
		return nil
	}
	if q.Limit <= 0 {
		q.Limit = 100
	}
	seen := make(map[string]bool)
	var recs []Record
	j.mu.Lock()
	states := make(map[string]*jobState, len(j.jobs))
	for id, st := range j.jobs {
		states[id] = st
	}
	persisted := append([]string(nil), j.index...)
	j.mu.Unlock()
	for id, st := range states {
		st.mu.Lock()
		rec := st.rec
		st.mu.Unlock()
		rec.Events = nil
		recs = append(recs, rec)
		seen[id] = true
	}
	for _, id := range persisted {
		if seen[id] {
			continue
		}
		if rec, ok := j.load(id); ok {
			rec.Events = nil
			recs = append(recs, rec)
		}
	}
	out := recs[:0]
	for _, rec := range recs {
		if q.Status != "" && rec.Status != q.Status {
			continue
		}
		if q.Engine != "" && rec.Engine != q.Engine {
			continue
		}
		if !q.Since.IsZero() && rec.Submitted.Before(q.Since) {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Submitted.Equal(out[b].Submitted) {
			return out[a].Submitted.After(out[b].Submitted)
		}
		return out[a].JobID > out[b].JobID
	})
	if len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// Subscription is one live (or replayed) event stream. Read C until it
// closes — the terminal event is always the last delivery of a finished
// job — and Close when done (idempotent; a finished stream needs no Close).
type Subscription struct {
	C  <-chan Event
	j  *Journal
	st *jobState
	ch chan Event
}

// Close detaches the subscriber. Safe after the journal already closed the
// channel at job completion.
func (s *Subscription) Close() {
	if s == nil || s.st == nil {
		return
	}
	s.st.mu.Lock()
	if _, ok := s.st.subs[s.ch]; ok {
		delete(s.st.subs, s.ch)
		close(s.ch)
	}
	s.st.mu.Unlock()
}

// Subscribe opens a job's event stream from just after sequence number
// after (0 replays everything retained): the retained log is replayed
// first, then live events follow until the terminal one closes the
// channel. A finished job — in memory or only in the store — yields the
// replay and an already-closed channel. Events beyond the subscriber's
// buffer are dropped and counted, never blocking the job.
func (j *Journal) Subscribe(id string, after uint64) (*Subscription, bool) {
	if j == nil {
		return nil, false
	}
	if st := j.state(id); st != nil {
		st.mu.Lock()
		defer st.mu.Unlock()
		var replay []Event
		for _, ev := range st.events {
			if ev.Seq > after {
				replay = append(replay, ev)
			}
		}
		if st.done {
			ch := make(chan Event, len(replay))
			for _, ev := range replay {
				ch <- ev
			}
			close(ch)
			return &Subscription{C: ch}, true
		}
		ch := make(chan Event, len(replay)+j.bufCap)
		for _, ev := range replay {
			ch <- ev
		}
		st.subs[ch] = struct{}{}
		return &Subscription{C: ch, j: j, st: st, ch: ch}, true
	}
	rec, ok := j.load(id)
	if !ok {
		return nil, false
	}
	var replay []Event
	for _, ev := range rec.Events {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	ch := make(chan Event, len(replay))
	for _, ev := range replay {
		ch <- ev
	}
	close(ch)
	return &Subscription{C: ch}, true
}

// emitLocked stamps and delivers one event: append to the bounded retained
// log, fan out to subscribers (dropping, not blocking, on a full buffer).
// Called with st.mu held.
func (j *Journal) emitLocked(st *jobState, ev Event) {
	st.seq++
	ev.Seq = st.seq
	ev.Job = st.rec.JobID
	ev.TMS = j.now().Sub(st.rec.Submitted).Milliseconds()
	st.events = append(st.events, ev)
	if len(st.events) > j.eventCap {
		st.events = append([]Event(nil), st.events[len(st.events)-j.eventCap:]...)
	}
	for ch := range st.subs {
		select {
		case ch <- ev:
		default:
			j.dropped.Add(1)
		}
	}
}

// Stats is the journal's own observability surface.
type Stats struct {
	// Records is the in-memory record count (live + retained finished).
	Records int
	// Persisted is the durable index length.
	Persisted int
	// Subscribers counts attached live streams.
	Subscribers int
	// Dropped counts events lost to full subscriber buffers.
	Dropped uint64
	// PersistErrors counts failed store writes.
	PersistErrors uint64
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	s := Stats{Records: len(j.jobs), Persisted: len(j.index)}
	states := make([]*jobState, 0, len(j.jobs))
	for _, st := range j.jobs {
		states = append(states, st)
	}
	j.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		s.Subscribers += len(st.subs)
		st.mu.Unlock()
	}
	s.Dropped = j.dropped.Load()
	s.PersistErrors = j.persistErrs.Load()
	return s
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
