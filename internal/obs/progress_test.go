package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// progressAt builds a meter with a settable injected clock, so tests control
// exactly when the reporting interval elapses.
func progressAt(buf *bytes.Buffer, total int, interval time.Duration) (*Progress, *time.Time) {
	p := NewProgress(buf, total, interval)
	base := time.Unix(0, 0)
	now := base
	p.now = func() time.Time { return now }
	p.start, p.lastPrint = base, base
	return p, &now
}

// A sweep that errors before its first chunk completes must not print a
// spurious "0/N points" line from the deferred Flush.
func TestProgressFlushWithoutObservations(t *testing.T) {
	var buf bytes.Buffer
	p, _ := progressAt(&buf, 100, time.Hour)
	p.Flush()
	if buf.Len() != 0 {
		t.Errorf("flush with no observations printed %q, want nothing", buf.String())
	}
	// Foreign-category records do not count as progress either.
	p.Observe(Record{Cat: CatJob, Name: NameChunk, Arg: 5})
	p.Flush()
	if buf.Len() != 0 {
		t.Errorf("flush after only foreign records printed %q, want nothing", buf.String())
	}
}

// A resumed sweep whose live chunks never reach a print still flushes a final
// line carrying the resume summary, and restored points are excluded from
// the evaluation rate.
func TestProgressFlushAfterResume(t *testing.T) {
	var buf bytes.Buffer
	p, now := progressAt(&buf, 100, time.Hour)
	p.Observe(Record{Cat: CatDSE, Name: NameResume, Arg: 30})
	p.Observe(Record{Cat: CatDSE, Name: NameResume, Arg: 30})
	*now = now.Add(10 * time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 20})
	if buf.Len() != 0 {
		t.Fatalf("premature output %q", buf.String())
	}
	p.Flush()
	line := buf.String()
	if !strings.Contains(line, "80/100 points") || !strings.Contains(line, "resumed 2 chunks (60 pts)") {
		t.Errorf("flush line %q: want 80/100 points and resumed 2 chunks (60 pts)", line)
	}
	// 20 evaluated points over 10 seconds: restored points take no credit.
	if !strings.Contains(line, "2 pts/s") {
		t.Errorf("flush line %q: want 2 pts/s from evaluated points only", line)
	}
	// A second Flush at the same done count stays silent.
	buf.Reset()
	p.Flush()
	if buf.Len() != 0 {
		t.Errorf("duplicate flush printed %q", buf.String())
	}
}

// NewProgressFunc delivers the same counting and rate/ETA math as the
// printing form through an arbitrary sink: a negative interval emits on
// every observation, updates carry derived rate and ETA, and Flush marks its
// update Final exactly once.
func TestProgressFuncEmitsUpdates(t *testing.T) {
	var got []ProgressUpdate
	base := time.Unix(0, 0)
	now := base
	p := NewProgressFunc(func(u ProgressUpdate) { got = append(got, u) },
		100, -1, func() time.Time { return now })

	now = now.Add(5 * time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 10})
	now = now.Add(5 * time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 40})
	if len(got) != 2 {
		t.Fatalf("negative interval emitted %d updates, want one per observation (2)", len(got))
	}
	if got[0].Done != 10 || got[0].Total != 100 || got[0].Rate != 2 {
		t.Errorf("first update %+v: want Done=10 Total=100 Rate=2", got[0])
	}
	// 50 points in 10s: 5 pts/s, 50 remaining, ETA 10s.
	u := got[1]
	if u.Done != 50 || u.Rate != 5 || !u.HasETA || u.ETA != 10*time.Second {
		t.Errorf("second update %+v: want Done=50 Rate=5 ETA=10s", u)
	}
	if u.Final {
		t.Error("mid-sweep update marked Final")
	}
	if u.Percent() != 50 {
		t.Errorf("Percent() = %g, want 50", u.Percent())
	}

	// Flush at a new done count emits exactly one Final update; a second
	// Flush stays silent.
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 0}) // unchanged count: no emit
	now = now.Add(10 * time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 50})
	p.Flush()
	p.Flush()
	if len(got) != 3 {
		t.Fatalf("got %d updates, want 3 (two paced, one at 100, none for the flushes)", len(got))
	}
	last := got[len(got)-1]
	if last.Done != 100 {
		t.Errorf("final update Done = %d, want 100", last.Done)
	}
	// The 100/100 observation already emitted; Flush had nothing new. The
	// emitted-at-completion update is not Final (it came from Observe).
	if last.Final {
		t.Error("Observe-emitted completion update marked Final")
	}

	// A fresh meter whose last emit precedes Flush: the flush update is Final.
	got = nil
	p2 := NewProgressFunc(func(u ProgressUpdate) { got = append(got, u) },
		100, time.Hour, func() time.Time { return now })
	p2.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 30})
	p2.Flush()
	if len(got) != 1 || !got[0].Final || got[0].Done != 30 {
		t.Fatalf("flush updates %+v: want exactly one Final update at Done=30", got)
	}
}

// Observe prints only once the reporting interval has elapsed, and never
// repeats a line for an unchanged done count.
func TestProgressIntervalPacing(t *testing.T) {
	var buf bytes.Buffer
	p, now := progressAt(&buf, 100, 10*time.Second)

	*now = now.Add(time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 10})
	if buf.Len() != 0 {
		t.Fatalf("printed before the interval elapsed: %q", buf.String())
	}
	*now = now.Add(10 * time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 10})
	if !strings.Contains(buf.String(), "20/100 points") {
		t.Fatalf("line %q: want 20/100 points after the interval", buf.String())
	}
	// An empty chunk after the print leaves done unchanged: no repeat even
	// though another interval has elapsed.
	buf.Reset()
	*now = now.Add(time.Minute)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 0})
	if buf.Len() != 0 {
		t.Errorf("repeated line for unchanged done count: %q", buf.String())
	}
	// Flush is a no-op at a printed count but prints fresh progress.
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 5})
	p.Flush()
	if !strings.Contains(buf.String(), "25/100 points") {
		t.Errorf("flush line %q: want 25/100 points", buf.String())
	}
}
