package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// progressAt builds a meter with a settable injected clock, so tests control
// exactly when the reporting interval elapses.
func progressAt(buf *bytes.Buffer, total int, interval time.Duration) (*Progress, *time.Time) {
	p := NewProgress(buf, total, interval)
	base := time.Unix(0, 0)
	now := base
	p.now = func() time.Time { return now }
	p.start, p.lastPrint = base, base
	return p, &now
}

// A sweep that errors before its first chunk completes must not print a
// spurious "0/N points" line from the deferred Flush.
func TestProgressFlushWithoutObservations(t *testing.T) {
	var buf bytes.Buffer
	p, _ := progressAt(&buf, 100, time.Hour)
	p.Flush()
	if buf.Len() != 0 {
		t.Errorf("flush with no observations printed %q, want nothing", buf.String())
	}
	// Foreign-category records do not count as progress either.
	p.Observe(Record{Cat: CatJob, Name: NameChunk, Arg: 5})
	p.Flush()
	if buf.Len() != 0 {
		t.Errorf("flush after only foreign records printed %q, want nothing", buf.String())
	}
}

// A resumed sweep whose live chunks never reach a print still flushes a final
// line carrying the resume summary, and restored points are excluded from
// the evaluation rate.
func TestProgressFlushAfterResume(t *testing.T) {
	var buf bytes.Buffer
	p, now := progressAt(&buf, 100, time.Hour)
	p.Observe(Record{Cat: CatDSE, Name: NameResume, Arg: 30})
	p.Observe(Record{Cat: CatDSE, Name: NameResume, Arg: 30})
	*now = now.Add(10 * time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 20})
	if buf.Len() != 0 {
		t.Fatalf("premature output %q", buf.String())
	}
	p.Flush()
	line := buf.String()
	if !strings.Contains(line, "80/100 points") || !strings.Contains(line, "resumed 2 chunks (60 pts)") {
		t.Errorf("flush line %q: want 80/100 points and resumed 2 chunks (60 pts)", line)
	}
	// 20 evaluated points over 10 seconds: restored points take no credit.
	if !strings.Contains(line, "2 pts/s") {
		t.Errorf("flush line %q: want 2 pts/s from evaluated points only", line)
	}
	// A second Flush at the same done count stays silent.
	buf.Reset()
	p.Flush()
	if buf.Len() != 0 {
		t.Errorf("duplicate flush printed %q", buf.String())
	}
}

// Observe prints only once the reporting interval has elapsed, and never
// repeats a line for an unchanged done count.
func TestProgressIntervalPacing(t *testing.T) {
	var buf bytes.Buffer
	p, now := progressAt(&buf, 100, 10*time.Second)

	*now = now.Add(time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 10})
	if buf.Len() != 0 {
		t.Fatalf("printed before the interval elapsed: %q", buf.String())
	}
	*now = now.Add(10 * time.Second)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 10})
	if !strings.Contains(buf.String(), "20/100 points") {
		t.Fatalf("line %q: want 20/100 points after the interval", buf.String())
	}
	// An empty chunk after the print leaves done unchanged: no repeat even
	// though another interval has elapsed.
	buf.Reset()
	*now = now.Add(time.Minute)
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 0})
	if buf.Len() != 0 {
		t.Errorf("repeated line for unchanged done count: %q", buf.String())
	}
	// Flush is a no-op at a printed count but prints fresh progress.
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 5})
	p.Flush()
	if !strings.Contains(buf.String(), "25/100 points") {
		t.Errorf("flush line %q: want 25/100 points", buf.String())
	}
}
