package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"
)

// fragment.go — the cross-process span transport. A fleet worker cannot hand
// its span records to the coordinator in memory, so it serializes them as a
// *fragment*: a proof-carrying blob published into the shared store root
// alongside the chunk result blobs, bound to the same sweep identity
// fingerprint and framed with a trailing checksum. The coordinator's
// assembly phase decodes every fragment it finds, drops damaged or foreign
// ones with a counter — a lost fragment degrades the timeline, never the
// sweep — and merges the survivors into one multi-process timeline
// (MergeTimeline).

// ClockSync is one measured clock-correspondence between a worker tracer and
// the coordinator tracer, captured NTP-style around a lease round-trip: T0
// and T1 are the worker clock immediately before and after the lease POST,
// Coord is the coordinator clock stamped into the response. The coordinator
// produced its stamp somewhere inside [T0, T1], so the midpoint estimates
// the offset with error bounded by half the round-trip.
type ClockSync struct {
	T0    time.Duration `json:"t0"`
	T1    time.Duration `json:"t1"`
	Coord time.Duration `json:"coord"`
}

// Offset is the estimated coordinator-minus-worker clock difference: adding
// it to a worker-clock timestamp maps it onto the coordinator's timebase.
func (s ClockSync) Offset() time.Duration { return s.Coord - (s.T0+s.T1)/2 }

// RTT is the sync's lease round-trip time — the uncertainty window of its
// Offset.
func (s ClockSync) RTT() time.Duration { return s.T1 - s.T0 }

// Fragment is one process's contribution to a merged timeline: its span
// records on its own tracer clock, plus the clock sync that maps them onto
// the coordinator's.
type Fragment struct {
	// Process identifies the emitting process (the fleet worker ID); it
	// names the fragment's track in the merged timeline.
	Process string `json:"process"`
	// Records are the process's completed spans, on its own tracer clock.
	Records []Record `json:"records"`
	// Sync maps this process's clock onto the coordinator's; HasSync is
	// false when no lease round-trip was captured (the records then merge
	// un-normalized, offset zero).
	Sync    ClockSync `json:"sync"`
	HasSync bool      `json:"has_sync"`
}

// Fragment blob framing: magic, sweep fingerprint, payload length, JSON
// payload, trailing SHA-256 over everything before it. The shape mirrors the
// chunk result blobs (dse.EncodeChunk): identity first, checksum last, so a
// reader rejects damage and foreign sweeps before trusting a byte of
// payload.
const fragMagic = "RPFRG1"

const fragOverhead = len(fragMagic) + sha256.Size + 8 + sha256.Size

// EncodeFragment renders frag as a proof-carrying blob bound to the sweep
// identity fingerprint (a full SHA-256, as the dse.SweepFingerprint* helpers
// return).
func EncodeFragment(fingerprint []byte, frag *Fragment) ([]byte, error) {
	if len(fingerprint) != sha256.Size {
		return nil, fmt.Errorf("obs: fragment fingerprint must be %d bytes, got %d", sha256.Size, len(fingerprint))
	}
	payload, err := json.Marshal(frag)
	if err != nil {
		return nil, fmt.Errorf("obs: encoding fragment payload: %w", err)
	}
	buf := make([]byte, 0, fragOverhead+len(payload))
	buf = append(buf, fragMagic...)
	buf = append(buf, fingerprint...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...), nil
}

// DecodeFragment parses a fragment blob and verifies it: intact framing, a
// matching trailing checksum, and the given sweep fingerprint. Any failure is
// an error the caller turns into a dropped-fragment counter — never a failed
// sweep.
func DecodeFragment(fingerprint, raw []byte) (*Fragment, error) {
	if len(fingerprint) != sha256.Size {
		return nil, fmt.Errorf("obs: fragment fingerprint must be %d bytes, got %d", sha256.Size, len(fingerprint))
	}
	if len(raw) < fragOverhead {
		return nil, fmt.Errorf("obs: fragment blob truncated at %d bytes", len(raw))
	}
	if string(raw[:len(fragMagic)]) != fragMagic {
		return nil, fmt.Errorf("obs: fragment blob has wrong magic")
	}
	body, tail := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, fmt.Errorf("obs: fragment blob checksum mismatch")
	}
	fp := raw[len(fragMagic) : len(fragMagic)+sha256.Size]
	if !bytes.Equal(fp, fingerprint) {
		return nil, fmt.Errorf("obs: fragment belongs to a different sweep")
	}
	n := binary.BigEndian.Uint64(raw[len(fragMagic)+sha256.Size:])
	payload := body[len(fragMagic)+sha256.Size+8:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("obs: fragment payload is %d bytes, header says %d", len(payload), n)
	}
	var frag Fragment
	if err := json.Unmarshal(payload, &frag); err != nil {
		return nil, fmt.Errorf("obs: decoding fragment payload: %w", err)
	}
	return &frag, nil
}
