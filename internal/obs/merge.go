package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// merge.go — the cross-process timeline merge. A fleet sweep's spans live in
// several flight recorders: the coordinator's (lease state machine, chunk
// grants, assembly) and one per worker (lease, evaluate, publish, plus the
// engine's nested sweep/chunk spans). MergeTimeline folds them into one
// Timeline of per-process tracks on a single timebase:
//
//   - every worker's records are shifted by that worker's estimated clock
//     offset (ClockSync.Offset of its most recent sync — the one with the
//     largest worker-clock T0, which is the only sync guaranteed to
//     reference the *current* coordinator epoch after a coordinator
//     restart);
//   - the whole merged record set is then re-based so the earliest span
//     starts at zero — fragments recorded before a coordinator restart may
//     map to negative coordinator-clock times, and the trace-event format
//     wants non-negative timestamps;
//   - span IDs are assumed process-namespaced (WithProcessID), so records
//     keep their IDs and parents verbatim and cross-process parenting
//     (worker spans under the coordinator's chunk span) survives the merge.
//
// WriteChromeTimeline renders a Timeline with one Chrome trace-event
// *process* per track, named via process_name metadata events — the Perfetto
// view of "where did this fleet sweep's wall-clock go, per worker".

// ProcessTrack is one process's records inside a merged Timeline, already on
// the merged timebase.
type ProcessTrack struct {
	Name    string
	Records []Record
}

// Timeline is a set of per-process span tracks on one shared timebase. The
// first track is the merging process (the coordinator); worker tracks follow
// sorted by name.
type Timeline struct {
	Tracks []ProcessTrack
}

// Flatten returns every track's records as one slice — the shape the folded
// exporter and record-scanning consumers want. Process-namespaced IDs keep
// parent links unambiguous in the flat form.
func (tl *Timeline) Flatten() []Record {
	var out []Record
	for _, tr := range tl.Tracks {
		out = append(out, tr.Records...)
	}
	return out
}

// MergeTimeline builds one timeline from the merging process's own records
// (its track is named coordName) and any number of worker fragments.
// Fragments of the same process are combined into one track, normalized by
// the process's latest-T0 clock sync; fragments without a sync merge with
// offset zero. The result is re-based to start at zero.
func MergeTimeline(coordName string, local []Record, frags []*Fragment) *Timeline {
	// Group fragments per process and pick each process's newest sync: T0 is
	// monotonic per worker, so the largest T0 is the most recent lease
	// round-trip — after a coordinator restart the only sync whose Coord
	// stamp refers to the live coordinator's clock.
	type procState struct {
		recs    []Record
		sync    ClockSync
		hasSync bool
	}
	procs := make(map[string]*procState)
	var names []string
	for _, f := range frags {
		if f == nil {
			continue
		}
		ps := procs[f.Process]
		if ps == nil {
			ps = &procState{}
			procs[f.Process] = ps
			names = append(names, f.Process)
		}
		ps.recs = append(ps.recs, f.Records...)
		if f.HasSync && (!ps.hasSync || f.Sync.T0 > ps.sync.T0) {
			ps.sync, ps.hasSync = f.Sync, true
		}
	}
	sort.Strings(names)

	tl := &Timeline{}
	tl.Tracks = append(tl.Tracks, ProcessTrack{
		Name:    coordName,
		Records: append([]Record(nil), local...),
	})
	for _, name := range names {
		ps := procs[name]
		recs := append([]Record(nil), ps.recs...)
		if ps.hasSync {
			off := ps.sync.Offset()
			for i := range recs {
				recs[i].Start += off
			}
		}
		tl.Tracks = append(tl.Tracks, ProcessTrack{Name: name, Records: recs})
	}

	// Re-base the merged set so the earliest span starts at zero. Skew
	// normalization can push worker spans before the coordinator's epoch
	// (a worker whose sync predates a coordinator restart), and exporters
	// want non-negative timestamps.
	base := time.Duration(0)
	first := true
	for _, tr := range tl.Tracks {
		for i := range tr.Records {
			if first || tr.Records[i].Start < base {
				base, first = tr.Records[i].Start, false
			}
		}
	}
	if base != 0 {
		for _, tr := range tl.Tracks {
			for i := range tr.Records {
				tr.Records[i].Start -= base
			}
		}
	}
	return tl
}

// WriteChromeTimeline renders a merged timeline as Chrome trace-event JSON
// with one trace process per track: track k becomes PID k+1, named by a
// process_name metadata event, and its spans keep their TID lanes within the
// process. The single-process exporter (WriteChromeTrace) stays as-is for
// local views; this is the fleet-merged form.
func WriteChromeTimeline(w io.Writer, tl *Timeline) error {
	events := make([]chromeEvent, 0, len(tl.Tracks))
	for k, trk := range tl.Tracks {
		pid := k + 1
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]any{"name": trk.Name},
		})
		for _, r := range trk.Records {
			args := map[string]any{"id": r.ID}
			if r.Parent != 0 {
				args["parent"] = r.Parent
			}
			if r.Detail != "" {
				args["detail"] = r.Detail
			}
			if r.ArgKey != "" {
				args[r.ArgKey] = r.Arg
			}
			events = append(events, chromeEvent{
				Name: r.Name,
				Cat:  r.Cat,
				Ph:   "X",
				TS:   toMicros(r.Start),
				Dur:  toMicros(r.Dur),
				PID:  pid,
				TID:  r.TID,
				Args: args,
			})
		}
	}
	raw, err := json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}
