package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a monotonic clock ticking one millisecond per call.
func fakeClock() func() time.Duration {
	var n int64
	return func() time.Duration {
		n++
		return time.Duration(n) * time.Millisecond
	}
}

func TestSpanRecording(t *testing.T) {
	tr := NewTracer(8, WithClock(fakeClock()))
	root := tr.Start("dse", "sweep")
	root.SetDetail("graph")
	root.SetArg("points", 12)
	child := tr.StartChild(root.ID(), "dse", "chunk")
	child.SetTID(3)
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(recs))
	}
	// Completion order: child first.
	c, r := recs[0], recs[1]
	if c.Name != "chunk" || c.Parent != r.ID || c.TID != 3 {
		t.Errorf("child record %+v: want name=chunk parent=%d tid=3", c, r.ID)
	}
	if r.Name != "sweep" || r.Detail != "graph" || r.ArgKey != "points" || r.Arg != 12 {
		t.Errorf("root record %+v: want sweep/graph/points=12", r)
	}
	// Fake clock: root start=1ms, child start=2ms end=3ms, root end=4ms.
	if c.Start != 2*time.Millisecond || c.Dur != time.Millisecond {
		t.Errorf("child timing %v+%v, want 2ms+1ms", c.Start, c.Dur)
	}
	if r.Start != time.Millisecond || r.Dur != 3*time.Millisecond {
		t.Errorf("root timing %v+%v, want 1ms+3ms", r.Start, r.Dur)
	}
	if got := tr.Dropped(); got != 0 {
		t.Errorf("dropped %d, want 0", got)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4, WithClock(fakeClock()))
	for i := 0; i < 10; i++ {
		sp := tr.Start("t", "op")
		sp.SetArg("i", int64(i))
		sp.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot holds %d records, want capacity 4", len(recs))
	}
	for k, rec := range recs {
		if want := int64(6 + k); rec.Arg != want {
			t.Errorf("record %d has arg %d, want %d (oldest-first tail)", k, rec.Arg, want)
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("dropped %d, want 6", got)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("x", "y")
	sp.SetTID(1)
	sp.SetArg("k", 2)
	sp.SetDetail("d")
	sp.Rename("z")
	if d := sp.End(); d != 0 {
		t.Errorf("inert span End returned %v", d)
	}
	if recs := tr.Snapshot(); recs != nil {
		t.Errorf("nil tracer snapshot: %v", recs)
	}

	if n := testing.AllocsPerRun(200, func() {
		s := tr.StartChild(0, "dse", "chunk")
		s.SetTID(0)
		s.SetArg("points", 1)
		s.End()
	}); n != 0 {
		t.Errorf("disabled tracer span cycle allocates %.1f per run, want 0", n)
	}
}

func TestEnabledTracerSpanCycleAllocFree(t *testing.T) {
	tr := NewTracer(64)
	if n := testing.AllocsPerRun(200, func() {
		s := tr.Start("dse", "chunk")
		s.SetTID(0)
		s.SetArg("points", 8)
		s.End()
	}); n != 0 {
		t.Errorf("enabled tracer span cycle allocates %.1f per run, want 0 (ring is pre-allocated)", n)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := NewTracer(8, WithClock(fakeClock()))
	sp := tr.Start("t", "op")
	sp.End()
	sp.End()
	if recs := tr.Snapshot(); len(recs) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(recs))
	}
}

func TestOnEndHook(t *testing.T) {
	var seen []Record
	tr := NewTracer(8, WithClock(fakeClock()), WithOnEnd(func(r Record) { seen = append(seen, r) }))
	sp := tr.Start("dse", "chunk")
	sp.SetArg(ArgPoints, 7)
	sp.End()
	if len(seen) != 1 || seen[0].Arg != 7 {
		t.Fatalf("onEnd saw %+v, want one chunk record with arg 7", seen)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewTracer(8, WithClock(fakeClock()))
	root := tr.Start("dse", "sweep")
	ch := tr.StartChild(root.ID(), "dse", "chunk")
	ch.SetTID(2)
	ch.SetArg("points", 5)
	ch.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(parsed.TraceEvents))
	}
	chunk := parsed.TraceEvents[0]
	if chunk.Name != "chunk" || chunk.Ph != "X" || chunk.TID != 2 {
		t.Errorf("chunk event %+v: want name=chunk ph=X tid=2", chunk)
	}
	if chunk.TS != 2000 || chunk.Dur != 1000 {
		t.Errorf("chunk event ts=%g dur=%g, want 2000/1000 µs", chunk.TS, chunk.Dur)
	}
	if got, ok := chunk.Args["points"].(float64); !ok || got != 5 {
		t.Errorf("chunk args %v: want points=5", chunk.Args)
	}
}

func TestWriteFoldedSelfTime(t *testing.T) {
	tr := NewTracer(8, WithClock(fakeClock()))
	root := tr.Start("dse", "sweep") // start=1
	c1 := tr.StartChild(root.ID(), "dse", "chunk")
	c1.End() // 2..3: dur 1ms
	c2 := tr.StartChild(root.ID(), "dse", "chunk")
	c2.End()   // 4..5: dur 1ms
	root.End() // 1..6: dur 5ms, self 3ms

	var buf bytes.Buffer
	if err := WriteFolded(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "dse:sweep 3000\ndse:sweep;dse:chunk 2000\n"
	if got != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", got, want)
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, 100, time.Hour) // interval never elapses: only completion prints
	base := time.Unix(0, 0)
	tick := 0
	p.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Second) }
	p.start, p.lastPrint = base, base

	p.Observe(Record{Cat: CatDSE, Name: NameResume, Arg: 20})
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 30})
	p.Observe(Record{Cat: "other", Name: NameChunk, Arg: 999}) // foreign cat ignored
	if buf.Len() != 0 {
		t.Fatalf("premature progress output: %q", buf.String())
	}
	p.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 50}) // reaches total: prints
	line := buf.String()
	if !strings.Contains(line, "100/100 points") || !strings.Contains(line, "resumed 1 chunks (20 pts)") {
		t.Errorf("completion line %q: want 100/100 and resumed 1 chunks (20 pts)", line)
	}
	// Flush after the completion print is a no-op: the final line was
	// already written at this done count.
	buf.Reset()
	p.Flush()
	if buf.Len() != 0 {
		t.Errorf("duplicate flush line %q", buf.String())
	}

	// A meter that never reached a print still flushes its final state.
	var buf2 bytes.Buffer
	q := NewProgress(&buf2, 100, time.Hour)
	q.now = p.now
	q.start, q.lastPrint = base, base
	q.Observe(Record{Cat: CatDSE, Name: NameChunk, Arg: 40})
	if buf2.Len() != 0 {
		t.Fatalf("premature progress output: %q", buf2.String())
	}
	q.Flush()
	if !strings.Contains(buf2.String(), "40/100 points") {
		t.Errorf("flush line %q: want 40/100 points", buf2.String())
	}
}
