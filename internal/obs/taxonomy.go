package obs

// taxonomy.go — the span vocabulary shared by the instrumented layers. Cats
// name subsystems, the constants below name the operations whose records
// other components match on (the progress meter counts chunk and resume
// spans; the service derives stage histograms from queue-wait, setup and
// chunk spans). Free-form names are fine for everything else.

const (
	// CatDSE covers the sweep engines: one sweep root per exploration,
	// one chunk span per claimed work unit, one resume span per restored
	// checkpoint chunk.
	CatDSE = "dse"
	// CatJob covers the rpserved job lifecycle: job root, queue-wait,
	// setup and the nested sweep.
	CatJob = "job"
	// CatCache covers serve/cache.Tiered lookups: mem-hit, disk-hit,
	// build, singleflight-wait, plus the builder's disk-read/decode/
	// compute/publish children.
	CatCache = "cache"
	// CatStore covers internal/store: read, verify, evict.
	CatStore = "store"
	// CatCPU covers internal/cpu simulation phases: warmup, prepare,
	// simulate.
	CatCPU = "cpu"
	// CatAudit covers internal/audit: one audit root per audited sweep,
	// one truth span per ground-truth re-derivation.
	CatAudit = "audit"
	// CatFleet covers internal/fleet: one lease span per granted lease, one
	// evaluate and one publish span per chunk a worker runs, one assemble
	// span per coordinator report.
	CatFleet = "fleet"
)

const (
	// NameSweep is the root span of one engine sweep; Detail carries the
	// engine name, Arg the design-point count.
	NameSweep = "sweep"
	// NameChunk is one claimed work unit; TID carries the worker index,
	// Arg the chunk's point count.
	NameChunk = "chunk"
	// NameResume is one checkpoint chunk restored instead of evaluated;
	// Arg carries its point count.
	NameResume = "resume"
	// NameSearch is the root span of one guided search; Detail carries
	// "engine/mode", Arg the probe count.
	NameSearch = "search"
	// NameRound is one search probe round; Arg carries the round's probed
	// point count. The round's engine work appears as nested chunk spans.
	NameRound = "round"
	// NameQueueWait is the time a job spent queued before a worker
	// claimed it.
	NameQueueWait = "queue-wait"
	// NameSetup is a job's combined workload + artifact setup phase.
	NameSetup = "setup"
	// NameAudit is the root span of one accuracy audit; Detail carries the
	// audited engine, Arg the sampled point count.
	NameAudit = "audit"
	// NameTruth is one ground-truth re-derivation (oracle run); TID
	// carries the audit worker index.
	NameTruth = "truth"
	// NameLease is one granted fleet lease; Detail carries the sweep id,
	// Arg the chunk's point count.
	NameLease = "lease"
	// NameEvaluate is one fleet chunk evaluated on a worker; TID carries
	// nothing (workers are processes), Arg the chunk's point count.
	NameEvaluate = "evaluate"
	// NamePublish is one fleet chunk result blob published into the shared
	// store plus its completion call; Arg carries the blob size in bytes.
	NamePublish = "publish"
	// NameAssemble is the coordinator reading every published chunk blob
	// back and building the final Report; Arg carries the chunk count.
	NameAssemble = "assemble"
	// ArgPoints is the ArgKey of chunk/resume/sweep point counts.
	ArgPoints = "points"
)
