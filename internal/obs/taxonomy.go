package obs

// taxonomy.go — the span vocabulary shared by the instrumented layers. Cats
// name subsystems, the constants below name the operations whose records
// other components match on (the progress meter counts chunk and resume
// spans; the service derives stage histograms from queue-wait, setup and
// chunk spans). Free-form names are fine for everything else.

const (
	// CatDSE covers the sweep engines: one sweep root per exploration,
	// one chunk span per claimed work unit, one resume span per restored
	// checkpoint chunk.
	CatDSE = "dse"
	// CatJob covers the rpserved job lifecycle: job root, queue-wait,
	// setup and the nested sweep.
	CatJob = "job"
	// CatCache covers serve/cache.Tiered lookups: mem-hit, disk-hit,
	// build, singleflight-wait, plus the builder's disk-read/decode/
	// compute/publish children.
	CatCache = "cache"
	// CatStore covers internal/store: read, verify, evict.
	CatStore = "store"
	// CatCPU covers internal/cpu simulation phases: warmup, prepare,
	// simulate.
	CatCPU = "cpu"
	// CatAudit covers internal/audit: one audit root per audited sweep,
	// one truth span per ground-truth re-derivation.
	CatAudit = "audit"
)

const (
	// NameSweep is the root span of one engine sweep; Detail carries the
	// engine name, Arg the design-point count.
	NameSweep = "sweep"
	// NameChunk is one claimed work unit; TID carries the worker index,
	// Arg the chunk's point count.
	NameChunk = "chunk"
	// NameResume is one checkpoint chunk restored instead of evaluated;
	// Arg carries its point count.
	NameResume = "resume"
	// NameQueueWait is the time a job spent queued before a worker
	// claimed it.
	NameQueueWait = "queue-wait"
	// NameSetup is a job's combined workload + artifact setup phase.
	NameSetup = "setup"
	// NameAudit is the root span of one accuracy audit; Detail carries the
	// audited engine, Arg the sampled point count.
	NameAudit = "audit"
	// NameTruth is one ground-truth re-derivation (oracle run); TID
	// carries the audit worker index.
	NameTruth = "truth"
	// ArgPoints is the ArgKey of chunk/resume/sweep point counts.
	ArgPoints = "points"
)
