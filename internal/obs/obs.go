// Package obs is the system's own stall-event lens: a zero-dependency
// observability layer of hierarchical spans recorded into a bounded
// flight-recorder ring. The paper's whole pitch is explaining where a
// processor's cycles go; obs explains where *this system's* wall-clock goes —
// sweep → chunk → stage nesting across the dse engines, the rpserved job
// lifecycle, the cache/store tiers and the simulator phases — without pulling
// in any tracing dependency.
//
// Design constraints, in order:
//   - a disabled tracer (a nil *Tracer) must cost nothing on hot paths: no
//     allocations, no atomic traffic, no branches beyond one nil check;
//   - an enabled tracer must stay cheap at chunk granularity: span start/end
//     is a clock read plus one copy into a pre-allocated ring slot, and the
//     ring never grows — old records are overwritten, which is exactly the
//     flight-recorder semantics a long-running service wants;
//   - recording must be deterministic under test: the clock is injectable
//     (WithClock), so exporter output can be pinned as golden files.
//
// Exporters live beside the tracer: WriteChromeTrace renders the Chrome
// trace-event JSON that Perfetto and chrome://tracing load, WriteFolded
// renders the collapsed-stack format flamegraph tooling consumes.
package obs

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one completed span as stored in the ring: who (TID), what
// (Cat/Name/Detail), when (Start/Dur on the tracer's monotonic clock), and
// one optional numeric payload (ArgKey/Arg — e.g. points in a chunk, bytes
// read from the store).
type Record struct {
	ID     uint64 // unique per tracer, 1-based
	Parent uint64 // ID of the enclosing span; 0 for roots
	Cat    string // subsystem: "dse", "job", "cache", "store", "cpu"
	Name   string // operation within the subsystem
	Detail string // free-form label: engine name, cache key, job id
	TID    int    // worker / lane attribution (sweep worker index)
	Start  time.Duration
	Dur    time.Duration
	ArgKey string
	Arg    int64
}

// Tracer records spans into a bounded ring. The zero *value* is not usable —
// construct with NewTracer — but a nil *Tracer* is the canonical disabled
// tracer: every method on it is a cheap no-op, which is what keeps
// uninstrumented sweeps allocation-free.
type Tracer struct {
	clock func() time.Duration
	onEnd func(Record)
	ids   atomic.Uint64
	// idBase is OR-ed into every span ID: zero by default (IDs are 1, 2,
	// 3, ...), a process-identity hash shifted into the high 32 bits under
	// WithProcessID — what keeps IDs from colliding when span records of
	// several processes are merged into one timeline.
	idBase uint64

	mu    sync.Mutex
	ring  []Record
	total uint64 // records ever recorded; ring holds the last len(ring)
}

// Option configures NewTracer.
type Option func(*Tracer)

// WithClock replaces the tracer's monotonic clock. The function must be
// non-decreasing; tests inject a counter so exporter output is wall-clock
// free and golden-stable.
func WithClock(clock func() time.Duration) Option {
	return func(t *Tracer) { t.clock = clock }
}

// WithOnEnd registers a hook invoked synchronously with every completed
// span's Record, outside the ring lock. Progress meters and span-derived
// metrics histograms hang off this hook.
func WithOnEnd(fn func(Record)) Option {
	return func(t *Tracer) { t.onEnd = fn }
}

// WithProcessID namespaces the tracer's span IDs by a process identity (a
// fleet worker ID, a hostname-pid pair): a 32-bit hash of id occupies the
// high half of every span ID, the low half stays the per-tracer counter.
// Tracers of distinct processes then never emit colliding IDs, so span
// records from many processes merge into one timeline without misparenting.
// The default (no option) keeps the high half zero — plain 1, 2, 3, ... IDs
// — which is also a namespace of its own: the merge convention reserves it
// for the process that assembles the timeline.
func WithProcessID(id string) Option {
	return func(t *Tracer) {
		h := fnv.New64a()
		_, _ = h.Write([]byte(id))
		base := h.Sum64() & 0xFFFFFFFF
		if base == 0 {
			base = 1 // never the reserved coordinator namespace
		}
		t.idBase = base << 32
	}
}

// DefaultCapacity is the ring size NewTracer uses for non-positive
// capacities: enough for thousands of chunk spans, small enough to hold one
// per job in a busy service.
const DefaultCapacity = 4096

// NewTracer returns a tracer whose ring holds the most recent capacity
// records (DefaultCapacity if non-positive). The default clock is monotonic
// time since construction.
func NewTracer(capacity int, opts ...Option) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{ring: make([]Record, capacity)}
	epoch := time.Now()
	t.clock = func() time.Duration { return time.Since(epoch) }
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now reads the tracer's monotonic clock — the timebase every recorded
// Start/Dur is expressed in. Cross-process clock synchronization samples it
// around protocol round-trips. Nil-safe: a disabled tracer reads zero.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Span is an in-flight operation. It is a plain value — start one with
// Tracer.Start/StartChild, decorate it with the Set* methods, finish it with
// End. The zero Span (and any span from a nil tracer) is inert: all methods
// are no-ops, so call sites need no nil checks of their own.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	cat    string
	name   string
	detail string
	tid    int
	start  time.Duration
	argKey string
	arg    int64
}

// Start opens a root span.
func (t *Tracer) Start(cat, name string) Span { return t.StartChild(0, cat, name) }

// StartChild opens a span nested under the span with ID parent (0 for a
// root). On a nil tracer it returns the inert zero Span.
func (t *Tracer) StartChild(parent uint64, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		t:      t,
		id:     t.idBase | t.ids.Add(1),
		parent: parent,
		cat:    cat,
		name:   name,
		start:  t.clock(),
	}
}

// ID returns the span's ID (0 for an inert span), for parenting children
// across API boundaries.
func (s *Span) ID() uint64 { return s.id }

// SetTID attributes the span to a worker lane (a sweep worker index); the
// Chrome exporter maps it to the trace's thread dimension.
func (s *Span) SetTID(tid int) {
	if s.t != nil {
		s.tid = tid
	}
}

// SetDetail attaches a free-form label (engine name, cache key, job id).
func (s *Span) SetDetail(d string) {
	if s.t != nil {
		s.detail = d
	}
}

// SetArg attaches the span's one numeric payload.
func (s *Span) SetArg(key string, v int64) {
	if s.t != nil {
		s.argKey, s.arg = key, v
	}
}

// Rename replaces the span's name before End — used where the right name is
// only known at completion (a cache lookup that turns out to be a mem hit, a
// store read that turns out to be corrupt).
func (s *Span) Rename(name string) {
	if s.t != nil {
		s.name = name
	}
}

// End completes the span, records it and returns its duration. A second End
// (or End on an inert span) is a no-op returning zero.
func (s *Span) End() time.Duration {
	t := s.t
	if t == nil {
		return 0
	}
	s.t = nil
	d := t.clock() - s.start
	rec := Record{
		ID:     s.id,
		Parent: s.parent,
		Cat:    s.cat,
		Name:   s.name,
		Detail: s.detail,
		TID:    s.tid,
		Start:  s.start,
		Dur:    d,
		ArgKey: s.argKey,
		Arg:    s.arg,
	}
	t.mu.Lock()
	t.ring[t.total%uint64(len(t.ring))] = rec
	t.total++
	t.mu.Unlock()
	if t.onEnd != nil {
		t.onEnd(rec)
	}
	return d
}

// Snapshot returns the recorded spans oldest-first (completion order), at
// most the ring capacity. Nil-safe: a disabled tracer has no records.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	capacity := uint64(len(t.ring))
	if n > capacity {
		out := make([]Record, 0, capacity)
		for i := n - capacity; i < n; i++ {
			out = append(out, t.ring[i%capacity])
		}
		return out
	}
	out := make([]Record, n)
	copy(out, t.ring[:n])
	return out
}

// Dropped returns how many records the ring has overwritten — the price of
// bounded flight recording.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, capacity := t.total, uint64(len(t.ring)); n > capacity {
		return n - capacity
	}
	return 0
}
