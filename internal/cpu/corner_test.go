package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Corner-case timing tests: tiny crafted traces whose cycle-exact behaviour
// can be derived by hand from the Table II latencies, pinned to exact cycle
// counts. The simulator is deterministic, so any change to these numbers is
// a real timing-model change and should be reviewed as one.
//
// Shared arithmetic for the crafted loads (baseline config unless a case
// overrides it):
//
//   - Cold first instruction fetch: ITLB miss (20) + MemI (133) = 153, so
//     the first fetch group enters the fetch buffer at cycle 153, renames
//     at 158 (front-end depth behind the buffer), dispatches at 159 and
//     issues from 162.
//   - A data load missing to memory completes MemD (133) cycles after
//     issue and commits the cycle after; the trace's cycle count is the
//     last commit cycle.
//   - Loads are warmed through another line of the same page (0x50FC0), so
//     every crafted load is a DTLB hit and pure cache-miss timing remains.

// cornerCase is one pinned scenario.
type cornerCase struct {
	name       string
	tune       func(*config.Config)
	program    func() []isa.MicroOp
	warmData   []uint64
	warmCode   []uint64
	wantCycles int64
	check      func(t *testing.T, tr *trace.Trace)
}

// missLoads builds n independent loads to n distinct cold lines of one page.
func missLoads(n int) []isa.MicroOp {
	c := &craft{}
	for i := 0; i < n; i++ {
		c.add(isa.MicroOp{Class: isa.Load, Dest: 3 + i, Src1: isa.RegNone, Src2: isa.RegNone,
			Addr: uint64(0x50000 + i*64)})
	}
	return c.uops
}

// coldLineALUs builds n independent ALU µops, each on its own cold code line.
func coldLineALUs(n int) []isa.MicroOp {
	c := &craft{}
	for i := 0; i < n; i++ {
		u := isa.MicroOp{Class: isa.IntAlu, Dest: 3, Src1: isa.RegNone, Src2: isa.RegNone}
		u.PC = uint64(0x400000 + i*64)
		c.add(u)
	}
	return c.uops
}

func issueCycles(tr *trace.Trace) []int64 {
	out := make([]int64, len(tr.Records))
	for i := range tr.Records {
		out[i] = tr.Records[i].T[trace.SIssue]
	}
	return out
}

func TestCornerCaseTiming(t *testing.T) {
	samePage := []uint64{0x50FC0}
	cases := []cornerCase{
		{
			// Three independent memory-missing loads, eight MSHRs: all three
			// fills overlap. Issues at 162/162/163 (two load units), the
			// third completes at 163+133 = 296, commits 297; total 297.
			name:       "mshr-overlap",
			program:    func() []isa.MicroOp { return missLoads(3) },
			warmData:   samePage,
			wantCycles: 297,
			check: func(t *testing.T, tr *trace.Trace) {
				want := []int64{162, 162, 163}
				for i, w := range want {
					if got := tr.Records[i].T[trace.SIssue]; got != w {
						t.Errorf("load %d issued at %d, want %d (issues %v)", i, got, w, issueCycles(tr))
					}
					if by := tr.Records[i].MSHRFreeBy; by != trace.None {
						t.Errorf("load %d records MSHR provider %d with free slots", i, by)
					}
				}
			},
		},
		{
			// The same three loads with a single MSHR: fills serialize. Load 1
			// issues only when load 0's fill expires at 162+133 = 295 and
			// completes at 428; load 2 issues at 428 and completes at 561,
			// commits 562. The last commit slips from 296 to 561 — two
			// fill serializations — so the total is 297 + (561-296) = 562.
			name:       "mshr-saturation",
			tune:       func(c *config.Config) { c.Structure.MSHRs = 1 },
			program:    func() []isa.MicroOp { return missLoads(3) },
			warmData:   samePage,
			wantCycles: 562,
			check: func(t *testing.T, tr *trace.Trace) {
				wantIssue := []int64{162, 295, 428}
				for i, w := range wantIssue {
					if got := tr.Records[i].T[trace.SIssue]; got != w {
						t.Errorf("load %d issued at %d, want %d (issues %v)", i, got, w, issueCycles(tr))
					}
				}
				// The blocked loads must record the MSHR-dependency edge on
				// the fill that freed their slot.
				if by := tr.Records[1].MSHRFreeBy; by != 0 {
					t.Errorf("load 1 MSHRFreeBy = %d, want 0", by)
				}
				if by := tr.Records[2].MSHRFreeBy; by != 1 {
					t.Errorf("load 2 MSHRFreeBy = %d, want 1", by)
				}
			},
		},
		{
			// Five missing loads, roomy LSQ: loads 0-3 issue in two pairs on
			// the two load units (162/162/163/163), load 4 fetches a cycle
			// later, issues at 164 and commits at 298.
			name:       "lsq-roomy",
			program:    func() []isa.MicroOp { return missLoads(5) },
			warmData:   samePage,
			wantCycles: 298,
		},
		{
			// The same five loads with a two-entry LSQ: dispatch gates in
			// pairs. Loads 0-1 hold both slots until they commit at 296, so
			// loads 2-3 dispatch at 297 (issue 300, complete 433, commit
			// 434), and load 4 dispatches at 435 (issue 438, complete 571,
			// commit 572). Each LSQ generation costs a full memory round
			// trip: 298 + 137 + 137 = 572.
			name:       "lsq-full",
			tune:       func(c *config.Config) { c.Structure.LSQSize = 2 },
			program:    func() []isa.MicroOp { return missLoads(5) },
			warmData:   samePage,
			wantCycles: 572,
			check: func(t *testing.T, tr *trace.Trace) {
				wantDispatch := []int64{159, 159, 297, 297, 435}
				for i, w := range wantDispatch {
					if got := tr.Records[i].T[trace.SDispatch]; got != w {
						t.Errorf("load %d dispatched at %d, want %d", i, got, w)
					}
				}
			},
		},
		{
			// Six one-cycle ALU µops, each on its own cold code line: after
			// the first line's ITLB+MemI fetch (153), every further line is
			// its own MemI miss, so the fetch buffer drains and the back end
			// sits idle 133 cycles per line. Fetch leaders at 0, 153, 286,
			// 419, 552, 685; the last line arrives at 818, renames at 823
			// and commits at 827: 153 + 5×133 + a 9-cycle pipeline tail.
			name:       "fetch-buffer-empty",
			program:    func() []isa.MicroOp { return coldLineALUs(6) },
			wantCycles: 827,
			check: func(t *testing.T, tr *trace.Trace) {
				wantFetch := []int64{0, 153, 286, 419, 552, 685}
				for i, w := range wantFetch {
					if got := tr.Records[i].T[trace.SFetch]; got != w {
						t.Errorf("µop %d fetched at %d, want %d", i, got, w)
					}
					if !tr.Records[i].NewFetchLine {
						t.Errorf("µop %d is not a fetch-line leader", i)
					}
				}
			},
		},
		{
			// The same six µops with every code line warmed: the front end
			// streams 4-wide from cycle 0 and the whole trace retires in 10
			// cycles — the contrast that isolates the fetch bubbles above.
			name:       "fetch-buffer-warm",
			program:    func() []isa.MicroOp { return coldLineALUs(6) },
			warmCode:   []uint64{0x400000, 0x400040, 0x400080, 0x4000C0, 0x400100, 0x400140},
			wantCycles: 10,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.Baseline()
			if tc.tune != nil {
				tc.tune(cfg)
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.warmData != nil {
				s.WarmData(tc.warmData)
			}
			if tc.warmCode != nil {
				s.WarmCode(tc.warmCode)
			}
			tr, err := s.Run(tc.program())
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Cycles != tc.wantCycles {
				t.Errorf("cycles = %d, want %d (issues %v)", tr.Cycles, tc.wantCycles, issueCycles(tr))
			}
			if tc.check != nil {
				tc.check(t, tr)
			}
		})
	}
}
