// Package cpu implements the cycle-level out-of-order superscalar timing
// simulator that stands in for MARSSx86. It is trace-driven: the committed
// µop stream comes from the workload generator, and the simulator models the
// timing of fetching, renaming, dispatching, issuing, executing and
// committing that stream against the configured structure and latencies,
// while emitting the dynamic trace (timings, penalty events, resource-free
// edges) the dependence-graph builder consumes.
//
// The timing rules are chosen to line up with the dependence-graph model of
// Table I so that the graph can reproduce simulated cycles closely; dynamic
// effects the graph cannot see — issue-width arbitration, functional-unit
// structural hazards, MSHR and LSQ occupancy — remain, and are exactly the
// residual error the paper's Figure 10 quantifies.
package cpu

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stacks"
	"repro/internal/trace"
)

// Stats summarizes one simulation run beyond the trace itself.
type Stats struct {
	Cycles      int64
	MicroOps    int
	Mispredicts uint64
	IServed     [mem.NumLevels]uint64
	DServed     [mem.NumLevels]uint64
	ITLBMisses  uint64
	DTLBMisses  uint64
}

// CPI returns cycles per µop.
func (s *Stats) CPI() float64 {
	if s.MicroOps == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.MicroOps)
}

// Sim is one simulator instance. A Sim is single-use: build with New, call
// Run once, then read Stats.
type Sim struct {
	cfg  *config.Config
	hier *mem.Hierarchy
	pred branch.Predictor
	btb  *branch.BTB

	// tracer records the simulation phases (warmup, prepare, simulate) as
	// spans under traceParent; nil records nothing. Set with SetTracer.
	tracer      *obs.Tracer
	traceParent uint64

	recs []trace.Record

	// Per-µop scheduling state, parallel to recs.
	bufEnter []int64 // cycle the µop entered the fetch buffer (-1 before)
	addrDone []int64 // mem ops: address pipeline (AGU+DTLB) completion (-1 unknown)
	issued   []bool

	// Precomputed program-order helpers.
	prevStore []int64 // latest store seq preceding each µop (None if none)
	storeSeqs []int   // indices of store µops in order
	macroEnd  []int   // for SoM µops: index of the macro's EoM µop

	// Front-end state.
	nextFetch   int
	accessLine  uint64
	accessReady int64
	haveLine    bool
	fbOccupancy int
	blockedOn   int64 // seq of mispredicted branch blocking fetch, None if free

	// In-order stage pointers.
	nextRename   int
	nextDispatch int
	nextCommit   int

	// Back-end state.
	iq          []int // indices of dispatched, un-issued µops in age order
	lsqUsed     int
	freeRegs    int
	regFreeList []regToken
	// divFree[unit] is the first cycle each unpipelined divider is free;
	// divLast[unit] is the divide µop occupying it.
	intDivFree []int64
	fpDivFree  []int64
	intDivLast []int64
	fpDivLast  []int64
	divBlocked []bool

	// Store-order tracking: storePtr is the count of issued stores in
	// program-order prefix terms.
	storeIssued []bool
	storePrefix int // all storeSeqs[:storePrefix] are issued

	// MSHR-tracked in-flight data line fills.
	fills map[uint64]fill
	// mshrBlocked marks loads that waited for an MSHR slot; lastExpired is
	// the most recently completed fill, the likely provider of the slot.
	mshrBlocked     []bool
	lastExpiredSeq  int64
	lastExpiredDone int64

	// Stall bookkeeping for resource-provider trace edges.
	issuedLastCycle []int
	issuedThisCycle []int
	iqStalled       bool
	regStalled      bool

	stats Stats
}

type regToken struct {
	freedBy int64 // µop whose commit freed the register, None for initial pool
}

type fill struct {
	complete int64
	seq      uint64
	level    mem.Level
}

// New builds a simulator for the design point. The configuration is
// validated; an invalid configuration is a programming error.
func New(cfg *config.Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg}
	st := &cfg.Structure
	s.hier = mem.NewHierarchy(mem.HierarchyGeometry{
		LineSize: st.LineSize,
		L1ISets:  st.L1ISets, L1IWays: st.L1IWays,
		L1DSets: st.L1DSets, L1DWays: st.L1DWays,
		L2Sets: st.L2Sets, L2Ways: st.L2Ways,
		ITLBEntries: st.ITLBSize, DTLBEntries: st.DTLBSize,
		PageSize: st.PageSize,
	})
	var err error
	s.pred, err = branch.New(st.Predictor, st.PredictorBits)
	if err != nil {
		return nil, err
	}
	s.btb = branch.NewBTB(st.BTBEntries)
	return s, nil
}

// SetTracer attaches an observability tracer: the warmup, prepare and
// simulate phases record spans under parent. A nil tracer (the default)
// records nothing and costs nothing.
func (s *Sim) SetTracer(tr *obs.Tracer, parent uint64) {
	s.tracer, s.traceParent = tr, parent
}

func (s *Sim) lat(e stacks.Event) int64 { return int64(s.cfg.Lat[e]) }

func (s *Sim) levelLatI(l mem.Level) int64 {
	switch l {
	case mem.LvlL1:
		return s.lat(stacks.L1I)
	case mem.LvlL2:
		return s.lat(stacks.L2I)
	default:
		return s.lat(stacks.MemI)
	}
}

func (s *Sim) levelLatD(l mem.Level) int64 {
	switch l {
	case mem.LvlL1:
		return s.lat(stacks.L1D)
	case mem.LvlL2:
		return s.lat(stacks.L2D)
	default:
		return s.lat(stacks.MemD)
	}
}

func (s *Sim) execLat(c isa.OpClass) int64 {
	switch c {
	case isa.IntAlu, isa.Branch:
		return s.lat(stacks.IntAlu)
	case isa.IntMul:
		return s.lat(stacks.IntMul)
	case isa.IntDiv:
		return s.lat(stacks.IntDiv)
	case isa.FpAdd:
		return s.lat(stacks.FpAdd)
	case isa.FpMul:
		return s.lat(stacks.FpMul)
	case isa.FpDiv:
		return s.lat(stacks.FpDiv)
	case isa.Store:
		return s.lat(stacks.Store)
	default:
		panic(fmt.Sprintf("cpu: no fixed execute latency for %s", c))
	}
}

// prepare resolves architectural register dataflow into producer sequence
// numbers, fills the program-order helper tables and initializes state.
func (s *Sim) prepare(uops []isa.MicroOp) error {
	n := len(uops)
	s.recs = make([]trace.Record, n)
	s.bufEnter = make([]int64, n)
	s.addrDone = make([]int64, n)
	s.issued = make([]bool, n)
	s.prevStore = make([]int64, n)
	s.macroEnd = make([]int, n)
	s.fills = make(map[uint64]fill)
	s.blockedOn = trace.None

	var lastWriter [isa.NumRegs]int64
	for i := range lastWriter {
		lastWriter[i] = trace.None
	}
	lastStore := trace.None

	for i := range uops {
		u := &uops[i]
		if err := u.Validate(); err != nil {
			return err
		}
		r := &s.recs[i]
		r.Seq = uint64(i)
		r.MacroSeq = u.MacroSeq
		r.SoM, r.EoM = u.SoM, u.EoM
		r.Class = u.Class
		r.PC, r.Addr = u.PC, u.Addr
		r.SrcDep1, r.SrcDep2, r.AddrDep = trace.None, trace.None, trace.None
		r.ShareWith, r.IQFreeBy, r.RegFreeBy = trace.None, trace.None, trace.None
		r.MSHRFreeBy, r.FUFreeBy = trace.None, trace.None

		dep := func(reg int) int64 {
			if reg == isa.RegNone {
				return trace.None
			}
			return lastWriter[reg]
		}
		switch u.Class {
		case isa.Load:
			r.AddrDep = dep(u.Src1)
		case isa.Store:
			r.SrcDep1 = dep(u.Src1)
			r.AddrDep = dep(u.Src2)
		default:
			r.SrcDep1 = dep(u.Src1)
			r.SrcDep2 = dep(u.Src2)
		}
		s.prevStore[i] = lastStore
		if u.Class == isa.Store {
			lastStore = int64(i)
			s.storeSeqs = append(s.storeSeqs, i)
		}
		if u.Dest != isa.RegNone {
			lastWriter[u.Dest] = int64(i)
		}
		s.bufEnter[i] = -1
		s.addrDone[i] = -1
	}
	s.storeIssued = make([]bool, len(s.storeSeqs))
	s.mshrBlocked = make([]bool, n)
	s.lastExpiredSeq = trace.None

	// Macro boundaries: for each SoM µop, the index of its EoM µop.
	end := n - 1
	for i := n - 1; i >= 0; i-- {
		if s.recs[i].EoM {
			end = i
		}
		s.macroEnd[i] = end
	}

	st := &s.cfg.Structure
	s.freeRegs = st.PhysRegs - isa.NumRegs
	if s.freeRegs < 0 {
		return fmt.Errorf("cpu: %d physical registers cannot back %d architectural",
			st.PhysRegs, isa.NumRegs)
	}
	s.intDivFree = make([]int64, st.LongALUUnits)
	s.fpDivFree = make([]int64, st.FPUnits)
	s.intDivLast = make([]int64, st.LongALUUnits)
	s.fpDivLast = make([]int64, st.FPUnits)
	for i := range s.intDivLast {
		s.intDivLast[i] = trace.None
	}
	for i := range s.fpDivLast {
		s.fpDivLast[i] = trace.None
	}
	s.divBlocked = make([]bool, n)
	return nil
}

// Run simulates the µop stream to completion and returns the dynamic trace.
func (s *Sim) Run(uops []isa.MicroOp) (*trace.Trace, error) {
	if len(uops) == 0 {
		return &trace.Trace{}, nil
	}
	prep := s.tracer.StartChild(s.traceParent, obs.CatCPU, "prepare")
	prep.SetArg("uops", int64(len(uops)))
	err := s.prepare(uops)
	prep.End()
	if err != nil {
		return nil, err
	}
	sim := s.tracer.StartChild(s.traceParent, obs.CatCPU, "simulate")
	defer sim.End()
	n := len(uops)
	// Generous deadlock guard: no µop should take more than this many
	// cycles on average even in pathological memory-bound configurations.
	maxCycles := int64(n)*1024 + 1<<20
	var c int64
	for s.nextCommit < n {
		s.dispatch(c)
		s.fetch(c, uops)
		s.rename(c)
		s.issue(c)
		s.commit(c)
		s.issuedLastCycle, s.issuedThisCycle = s.issuedThisCycle, s.issuedLastCycle[:0]
		c++
		if c > maxCycles {
			return nil, fmt.Errorf("cpu: no forward progress after %d cycles (committed %d/%d µops)",
				c, s.nextCommit, n)
		}
	}
	sim.SetArg("cycles", c)
	s.stats.Cycles = s.recs[n-1].T[trace.SCommit]
	s.stats.MicroOps = n
	s.stats.IServed = s.hier.IServed
	s.stats.DServed = s.hier.DServed
	s.stats.ITLBMisses = s.hier.ITLBs.Misses
	s.stats.DTLBMisses = s.hier.DTLBs.Misses
	t := &trace.Trace{Records: s.recs, Cycles: s.stats.Cycles, Mispredicts: s.stats.Mispredicts}
	return t, nil
}

// Stats returns the run summary; valid after Run.
func (s *Sim) Stats() Stats { return s.stats }

// WarmUp functionally streams µops through the caches, TLBs, branch
// predictor and BTB without timing them, so that a subsequent Run measures
// steady-state behaviour instead of compulsory misses (the functional
// warming of SMARTS-style sampling). Counters are reset afterwards.
func (s *Sim) WarmUp(uops []isa.MicroOp) {
	sp := s.tracer.StartChild(s.traceParent, obs.CatCPU, "warmup")
	sp.SetArg("uops", int64(len(uops)))
	defer sp.End()
	st := &s.cfg.Structure
	lineMask := ^uint64(st.LineSize - 1)
	var lastLine uint64 = ^uint64(0)
	for i := range uops {
		u := &uops[i]
		if line := u.PC & lineMask; line != lastLine {
			s.hier.TranslateI(u.PC)
			s.hier.AccessI(u.PC)
			lastLine = line
		}
		if u.Class.IsMem() {
			s.hier.TranslateD(u.Addr)
			s.hier.AccessD(u.Addr)
		}
		if u.Class == isa.Branch {
			s.predictBranch(u)
		}
	}
	s.resetWarmCounters()
}

// WarmCode touches every line of the static code image so that compulsory
// instruction misses on rarely-taken blocks do not pollute the measured
// region (real workloads executed their code long before the sampled
// region).
func (s *Sim) WarmCode(pcs []uint64) {
	for _, pc := range pcs {
		s.hier.TranslateI(pc)
		s.hier.AccessI(pc)
	}
	s.resetWarmCounters()
}

// WarmData touches the given data-line addresses, pre-loading resident
// working sets the measured region would have re-touched long before.
func (s *Sim) WarmData(addrs []uint64) {
	for _, a := range addrs {
		s.hier.TranslateD(a)
		s.hier.AccessD(a)
	}
	s.resetWarmCounters()
}

func (s *Sim) resetWarmCounters() {
	s.hier.IServed = [mem.NumLevels]uint64{}
	s.hier.DServed = [mem.NumLevels]uint64{}
	s.hier.L1I.Hits, s.hier.L1I.Misses = 0, 0
	s.hier.L1D.Hits, s.hier.L1D.Misses = 0, 0
	s.hier.L2.Hits, s.hier.L2.Misses = 0, 0
	s.hier.ITLBs.Hits, s.hier.ITLBs.Misses = 0, 0
	s.hier.DTLBs.Hits, s.hier.DTLBs.Misses = 0, 0
	s.btb.Hits, s.btb.Misses = 0, 0
}

func (s *Sim) lineOf(pc uint64) uint64 {
	return pc &^ uint64(s.cfg.Structure.LineSize-1)
}

// fetch models the front end: per-line ITLB and instruction-cache accesses,
// fetch-buffer entry at fetch-width per cycle, branch prediction at fetch
// and the redirect stall after a mispredicted branch.
func (s *Sim) fetch(c int64, uops []isa.MicroOp) {
	st := &s.cfg.Structure
	if s.blockedOn != trace.None {
		b := &s.recs[s.blockedOn]
		if !s.issued[s.blockedOn] {
			return // branch not even issued; resolution time unknown
		}
		resume := b.T[trace.SComplete] + s.lat(stacks.Branch)
		if c < resume {
			return
		}
		s.blockedOn = trace.None
	}
	slots := 0
	for slots < st.FetchWidth && s.nextFetch < len(uops) && s.fbOccupancy < st.FetchBufSize {
		i := s.nextFetch
		u := &uops[i]
		line := s.lineOf(u.PC)
		if !s.haveLine || line != s.accessLine {
			// Start the line access. The leader's fetch timestamp is the
			// access start; ITLB and cache penalties delay line arrival.
			r := &s.recs[i]
			r.T[trace.SFetch] = c
			r.NewFetchLine = true
			pen := int64(0)
			if !s.hier.TranslateI(u.PC) {
				r.ITLBMiss = true
				pen += s.lat(stacks.ITLB)
			}
			lvl := s.hier.AccessI(u.PC)
			r.FetchLevel = lvl
			// L1 hits are pipelined and hidden in the front-end depth
			// (Table I: the I$ access edge is 0 on a hit); only misses
			// stall the fetch stream.
			if lvl != mem.LvlL1 {
				pen += s.levelLatI(lvl)
			}
			s.accessLine = line
			s.accessReady = c + pen
			s.haveLine = true
			if s.accessReady > c {
				return // line arrives in a later cycle
			}
		}
		if c < s.accessReady {
			return
		}
		// The µop enters the fetch buffer this cycle.
		if !s.recs[i].NewFetchLine {
			s.recs[i].T[trace.SFetch] = c
		}
		s.bufEnter[i] = c
		s.fbOccupancy++
		s.nextFetch++
		slots++
		if u.Class == isa.Branch {
			if s.predictBranch(u) {
				s.recs[i].Mispredicted = true
				s.stats.Mispredicts++
				s.blockedOn = int64(i)
				return
			}
		}
	}
}

// predictBranch consults the direction predictor and BTB, trains them with
// the actual outcome, and reports whether the front end mispredicted.
func (s *Sim) predictBranch(u *isa.MicroOp) bool {
	dir := s.pred.Predict(u.PC)
	s.pred.Update(u.PC, u.Taken)
	mis := dir != u.Taken
	if u.Taken {
		tgt, ok := s.btb.Lookup(u.PC)
		if !ok || tgt != u.Target {
			mis = true
		}
		s.btb.Update(u.PC, u.Target)
	}
	return mis
}

// rename allocates ROB entries and physical registers in order, at rename
// width per cycle. The decode depth between fetch-buffer entry and rename is
// FrontendDepth plus the (pipelined) L1 instruction-cache hit latency, so
// the L1I latency knob shapes the refill cost after redirects without
// throttling steady-state fetch throughput.
func (s *Sim) rename(c int64) {
	st := &s.cfg.Structure
	for slots := 0; slots < st.RenameWidth; slots++ {
		i := s.nextRename
		if i >= s.nextFetch || s.bufEnter[i] < 0 {
			return
		}
		if c < s.bufEnter[i]+int64(st.FrontendDepth)+s.lat(stacks.L1I) {
			return
		}
		// Finite reorder buffer: the µop ROBSize earlier must have
		// committed in a previous cycle.
		if rob := i - st.ROBSize; rob >= 0 {
			if s.nextCommit <= rob || s.recs[rob].T[trace.SCommit] >= c {
				return
			}
		}
		r := &s.recs[i]
		if destOf(r.Class, r) {
			if s.freeRegs == 0 {
				s.regStalled = true
				return
			}
			s.freeRegs--
			var tok regToken
			tok.freedBy = trace.None
			if len(s.regFreeList) > 0 {
				tok = s.regFreeList[0]
				s.regFreeList = s.regFreeList[1:]
			}
			// Record the provider only when the µop actually waited for the
			// register: the edge exists to explain a stall.
			if s.regStalled {
				r.RegFreeBy = tok.freedBy
				s.regStalled = false
			}
		}
		r.T[trace.SRename] = c
		s.fbOccupancy--
		s.nextRename++
	}
}

// destOf reports whether the µop allocates a new physical register. The
// record does not carry the architectural destination, so this mirrors the
// trace-construction rule: loads and compute µops produce values; stores and
// branches do not.
func destOf(c isa.OpClass, _ *trace.Record) bool {
	return c != isa.Store && c != isa.Branch
}

// dispatch moves renamed µops into the issue queue (and LSQ for memory
// ops) in order, at dispatch width per cycle, one cycle after rename.
func (s *Sim) dispatch(c int64) {
	st := &s.cfg.Structure
	for slots := 0; slots < st.DispatchWidth; slots++ {
		i := s.nextDispatch
		if i >= s.nextRename {
			return
		}
		r := &s.recs[i]
		if c < r.T[trace.SRename]+1 {
			return
		}
		if len(s.iq) >= st.IssueQSize {
			s.iqStalled = true
			return
		}
		if r.Class.IsMem() && s.lsqUsed >= st.LSQSize {
			return
		}
		if s.iqStalled {
			// The µop waited on a full issue queue; record which issue
			// freed its slot, preferring instructions that waited on an
			// optimizable long-latency producer (paper Section IV-C,
			// "modeling the issue dynamics").
			r.IQFreeBy = s.pickIQFreer()
			s.iqStalled = false
		}
		r.T[trace.SDispatch] = c
		s.iq = append(s.iq, i)
		if r.Class.IsMem() {
			s.lsqUsed++
		}
		s.nextDispatch++
	}
}

// pickIQFreer chooses, among the µops issued last cycle, the one whose
// issue should carry the issue-dependency edge: prefer µops that consumed
// the result of an optimizable long-latency instruction (loads, FP and long
// integer ops), so that latency changes to those producers move the whole
// dispatch chain, as the paper's graph perturbation intends.
func (s *Sim) pickIQFreer() int64 {
	best := trace.None
	bestRank := -1
	for _, j := range s.issuedLastCycle {
		rank := 0
		r := &s.recs[j]
		for _, d := range [...]int64{r.SrcDep1, r.SrcDep2, r.AddrDep} {
			if d == trace.None {
				continue
			}
			switch s.recs[d].Class {
			case isa.Load:
				rank = 3
			case isa.FpDiv, isa.IntDiv:
				if rank < 2 {
					rank = 2
				}
			case isa.FpAdd, isa.FpMul, isa.IntMul:
				if rank < 1 {
					rank = 1
				}
			}
		}
		if rank > bestRank {
			bestRank = rank
			best = int64(j)
		}
	}
	return best
}

// ready reports whether the µop's operands are available at cycle c, and
// computes the memory address pipeline lazily.
func (s *Sim) ready(i int, c int64) bool {
	r := &s.recs[i]
	depDone := func(d int64) bool {
		return d == trace.None || (s.issued[d] && s.recs[d].T[trace.SComplete] <= c)
	}
	if r.Class.IsMem() {
		if s.addrDone[i] < 0 {
			if !depDone(r.AddrDep) {
				return false
			}
			start := r.T[trace.SDispatch] + 1
			if r.AddrDep != trace.None {
				if p := s.recs[r.AddrDep].T[trace.SComplete]; p > start {
					start = p
				}
			}
			pen := int64(0)
			if !s.hier.TranslateD(r.Addr) {
				r.DTLBMiss = true
				pen = s.lat(stacks.DTLB)
			}
			s.addrDone[i] = start + s.lat(stacks.Agu) + pen
		}
		// Stores issue on address readiness alone: the data value merges at
		// retirement, which in-order commit already sequences after the
		// producer. Loads likewise only need their address.
		return s.addrDone[i] <= c
	}
	if !depDone(r.SrcDep1) || !depDone(r.SrcDep2) {
		return false
	}
	// Non-memory readiness also requires the dispatch-to-ready cycle.
	return c >= r.T[trace.SDispatch]+1
}

// readyCycleValue records the ready timestamp for the trace once known.
func (s *Sim) readyTimestamp(i int, c int64) int64 {
	r := &s.recs[i]
	t := r.T[trace.SDispatch] + 1
	if r.Class.IsMem() {
		if s.addrDone[i] > t {
			t = s.addrDone[i]
		}
		return t
	}
	for _, d := range [...]int64{r.SrcDep1, r.SrcDep2} {
		if d != trace.None {
			if p := s.recs[d].T[trace.SComplete]; p > t {
				t = p
			}
		}
	}
	return t
}

// issue selects ready µops from the issue queue in age order, bounded by
// issue width and functional-unit availability, and computes their
// completion times (running the data-cache access for memory ops).
func (s *Sim) issue(c int64) {
	st := &s.cfg.Structure
	width := st.IssueWidth
	var fuUsed [isa.NumFUClasses]int
	fuLimit := [isa.NumFUClasses]int{
		isa.FULoad:    st.LoadUnits,
		isa.FUStore:   st.StoreUnits,
		isa.FUFP:      st.FPUnits,
		isa.FUBaseALU: st.BaseALUUnits,
		isa.FULongALU: st.LongALUUnits,
	}
	issuedCount := 0
	kept := s.iq[:0]
	for _, i := range s.iq {
		if issuedCount >= width {
			kept = append(kept, i)
			continue
		}
		r := &s.recs[i]
		fu := r.Class.FU()
		if fuUsed[fu] >= fuLimit[fu] || !s.ready(i, c) {
			kept = append(kept, i)
			continue
		}
		if r.Class == isa.Load && !s.loadMayIssue(i, c) {
			kept = append(kept, i)
			continue
		}
		// Unpipelined dividers occupy a unit for their full latency.
		if r.Class == isa.IntDiv || r.Class == isa.FpDiv {
			pool, last := s.intDivFree, s.intDivLast
			if r.Class == isa.FpDiv {
				pool, last = s.fpDivFree, s.fpDivLast
			}
			unit := -1
			for u := range pool {
				if pool[u] <= c {
					unit = u
					break
				}
			}
			if unit < 0 {
				s.divBlocked[i] = true
				kept = append(kept, i)
				continue
			}
			// Record the divider occupancy edge when this divide had to
			// wait for the unit's previous occupant to finish.
			if s.divBlocked[i] && last[unit] != trace.None && last[unit] < int64(i) {
				r.FUFreeBy = last[unit]
			}
			pool[unit] = c + s.execLat(r.Class)
			last[unit] = int64(i)
		}
		if r.Class == isa.Load && s.mshrBlocked[i] &&
			s.lastExpiredSeq != trace.None && s.lastExpiredSeq < int64(i) {
			r.MSHRFreeBy = s.lastExpiredSeq
		}
		r.T[trace.SReady] = s.readyTimestamp(i, c)
		r.T[trace.SIssue] = c
		r.T[trace.SComplete] = s.complete(i, c)
		s.issued[i] = true
		s.issuedThisCycle = append(s.issuedThisCycle, i)
		fuUsed[fu]++
		issuedCount++
		if r.Class == isa.Store {
			s.markStoreIssued(i)
		}
	}
	s.iq = kept
}

// loadMayIssue enforces the address-dependency constraint (every load
// executes no earlier than all preceding stores) and MSHR availability.
func (s *Sim) loadMayIssue(i int, c int64) bool {
	if ps := s.prevStore[i]; ps != trace.None {
		if s.storePrefix < len(s.storeSeqs) && int64(s.storeSeqs[s.storePrefix]) <= ps {
			return false
		}
	}
	// MSHR check: a load that will miss needs a fill slot, but the outcome
	// is unknown until access; conservatively require a free slot. Expired
	// fills are reaped during the scan.
	active := 0
	for line, f := range s.fills {
		if f.complete > c {
			active++
		} else {
			// Tie-break equal completion times by µop sequence so the
			// recorded provider does not depend on map iteration order —
			// the trace must be bit-identical across runs.
			if f.complete > s.lastExpiredDone ||
				(f.complete == s.lastExpiredDone && int64(f.seq) > s.lastExpiredSeq) {
				s.lastExpiredDone = f.complete
				s.lastExpiredSeq = int64(f.seq)
			}
			delete(s.fills, line)
		}
	}
	if active >= s.cfg.Structure.MSHRs {
		s.mshrBlocked[i] = true
		return false
	}
	return true
}

func (s *Sim) markStoreIssued(i int) {
	lo, hi := 0, len(s.storeSeqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.storeSeqs[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.storeIssued[lo] = true
	for s.storePrefix < len(s.storeIssued) && s.storeIssued[s.storePrefix] {
		s.storePrefix++
	}
}

// complete computes the completion cycle of a µop issuing at cycle c,
// performing the data-cache access for memory ops.
func (s *Sim) complete(i int, c int64) int64 {
	r := &s.recs[i]
	switch r.Class {
	case isa.Load:
		line := r.Addr &^ uint64(s.cfg.Structure.LineSize-1)
		if f, ok := s.fills[line]; ok && f.complete > c {
			// The line is already being fetched: merge into the fill.
			own := c + s.lat(stacks.L1D)
			if f.seq < r.Seq {
				// Forward merge: the dependence graph sees this as a
				// cache-line-sharing edge from the earlier load.
				r.DataLevel = mem.LvlL1
				r.ShareWith = int64(f.seq)
			} else {
				// A later load in program order started the fill first;
				// the graph cannot hold a backward edge, so this load is
				// accounted as its own access at the fill's level.
				r.DataLevel = f.level
			}
			if f.complete > own {
				return f.complete
			}
			return own
		}
		lvl := s.hier.AccessD(r.Addr)
		r.DataLevel = lvl
		done := c + s.levelLatD(lvl)
		if lvl != mem.LvlL1 {
			s.fills[line] = fill{complete: done, seq: r.Seq, level: lvl}
		}
		return done
	case isa.Store:
		lvl := s.hier.AccessD(r.Addr)
		r.DataLevel = lvl
		// The store buffer absorbs the write; latency is the buffer write.
		return c + s.execLat(isa.Store)
	default:
		return c + s.execLat(r.Class)
	}
}

// commit retires µops in order at commit width per cycle, one cycle after
// completion, with whole-macro-op atomicity: a macro-op's first µop cannot
// retire until every µop of the macro has completed.
func (s *Sim) commit(c int64) {
	st := &s.cfg.Structure
	for slots := 0; slots < st.CommitWidth; slots++ {
		i := s.nextCommit
		if i >= s.nextDispatch {
			return
		}
		r := &s.recs[i]
		if !s.issued[i] || r.T[trace.SComplete] >= c {
			return
		}
		if r.SoM {
			for j := i; j <= s.macroEnd[i]; j++ {
				if !s.issued[j] || s.recs[j].T[trace.SComplete] >= c {
					return
				}
			}
		}
		r.T[trace.SCommit] = c
		if destOf(r.Class, r) {
			s.freeRegs++
			s.regFreeList = append(s.regFreeList, regToken{freedBy: int64(i)})
		}
		if r.Class.IsMem() {
			s.lsqUsed--
		}
		s.nextCommit++
	}
}
