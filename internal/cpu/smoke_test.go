package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestSmokeAllProfiles runs every workload profile briefly through the
// simulator and checks trace well-formedness and a sane CPI range.
func TestSmokeAllProfiles(t *testing.T) {
	for _, p := range workload.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			uops := workload.Stream(p, 42, 20000)
			s, err := New(config.Baseline())
			if err != nil {
				t.Fatal(err)
			}
			tr, err := s.Run(uops)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			cpi := tr.CPI()
			if cpi < 0.25 || cpi > 200 {
				t.Fatalf("implausible CPI %.3f", cpi)
			}
			t.Logf("CPI=%.3f mispredicts=%d", cpi, tr.Mispredicts)
		})
	}
}
