package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// craft builds single-µop macros from (class, dest, src1, src2, addr)
// tuples, numbering them sequentially.
type craft struct {
	uops []isa.MicroOp
}

func (c *craft) add(u isa.MicroOp) *craft {
	u.Seq = uint64(len(c.uops))
	u.MacroSeq = u.Seq
	u.SoM, u.EoM = true, true
	if u.PC == 0 {
		// A single hot line: one cold instruction fetch at the start, then
		// the front end streams at full width, keeping timing assertions
		// about the back end clean.
		u.PC = 0x400000
	}
	c.uops = append(c.uops, u)
	return c
}

func run(t *testing.T, cfg *config.Config, uops []isa.MicroOp) *trace.Trace {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSerialChainThroughput checks that a fully serial 1-cycle ALU chain
// retires one µop per cycle once the pipeline fills.
func TestSerialChainThroughput(t *testing.T) {
	c := &craft{}
	const n = 300
	for i := 0; i < n; i++ {
		c.add(isa.MicroOp{Class: isa.IntAlu, Dest: 3, Src1: 3, Src2: isa.RegNone})
	}
	tr := run(t, config.Baseline(), c.uops)
	// One cold instruction line plus pipeline fill on top of n cycles.
	if tr.Cycles < n || tr.Cycles > n+220 {
		t.Fatalf("serial chain of %d took %d cycles", n, tr.Cycles)
	}
}

// TestIndependentALUWidth checks that independent µops sustain the 4-wide
// pipeline.
func TestIndependentALUWidth(t *testing.T) {
	c := &craft{}
	const n = 400
	for i := 0; i < n; i++ {
		c.add(isa.MicroOp{Class: isa.IntAlu, Dest: 2 + i%8, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	tr := run(t, config.Baseline(), c.uops)
	if tr.Cycles > n/4+220 {
		t.Fatalf("independent µops took %d cycles; the 4-wide core should need ~%d", tr.Cycles, n/4)
	}
}

// TestFULatencies checks that the execute stage charges the configured
// per-class latency (a serial FpDiv chain costs ~24 cycles per link).
func TestFULatencies(t *testing.T) {
	c := &craft{}
	const n = 50
	for i := 0; i < n; i++ {
		c.add(isa.MicroOp{Class: isa.FpDiv, Dest: isa.NumIntRegs, Src1: isa.NumIntRegs, Src2: isa.RegNone})
	}
	cfg := config.Baseline()
	tr := run(t, cfg, c.uops)
	want := int64(n * 24)
	if tr.Cycles < want || tr.Cycles > want+250 {
		t.Fatalf("FpDiv chain took %d cycles, want ~%d", tr.Cycles, want)
	}
}

// TestMispredictPenalty compares an all-mispredicted branch stream against
// an ALU stream of the same length: every branch must cost at least the
// redirect penalty.
func TestMispredictPenalty(t *testing.T) {
	cfg := config.Baseline()
	cfg.Structure.Predictor = "taken" // never-taken branches always mispredict

	mk := func(class isa.OpClass) []isa.MicroOp {
		c := &craft{}
		for i := 0; i < 40; i++ {
			u := isa.MicroOp{Class: class, Dest: 3, Src1: 3, Src2: isa.RegNone}
			if class == isa.Branch {
				u.Dest = isa.RegNone
				u.Taken = false
			}
			c.add(u)
		}
		return c.uops
	}
	alu := run(t, cfg, mk(isa.IntAlu))
	br := run(t, cfg, mk(isa.Branch))
	if br.Mispredicts != 40 {
		t.Fatalf("mispredicts = %d, want 40", br.Mispredicts)
	}
	minExtra := int64(40 * 8) // 40 redirects at the Branch penalty
	if br.Cycles-alu.Cycles < minExtra {
		t.Fatalf("branch stream only %d cycles over ALU stream, want >= %d",
			br.Cycles-alu.Cycles, minExtra)
	}
}

// TestMacroOpCommitAtomicity checks that the first µop of a macro-op does
// not retire before the whole macro-op completes.
func TestMacroOpCommitAtomicity(t *testing.T) {
	c := &craft{}
	// Macro 0: a quick ALU (SoM) fused with a slow divide (EoM).
	c.add(isa.MicroOp{Class: isa.IntAlu, Dest: 3, Src1: isa.RegNone, Src2: isa.RegNone})
	c.uops[0].EoM = false
	u := isa.MicroOp{Class: isa.IntDiv, Dest: 4, Src1: isa.RegNone, Src2: isa.RegNone,
		Seq: 1, MacroSeq: 0, EoM: true, PC: 0x400010}
	c.uops = append(c.uops, u)
	tr := run(t, config.Baseline(), c.uops)
	som, eom := &tr.Records[0], &tr.Records[1]
	if som.T[trace.SCommit] <= eom.T[trace.SComplete] {
		t.Fatalf("SoM committed at %d before EoM completed at %d",
			som.T[trace.SCommit], eom.T[trace.SComplete])
	}
}

// TestLoadWaitsForEarlierStore checks the conservative memory-ordering
// constraint: a load issues no earlier than every preceding store.
func TestLoadWaitsForEarlierStore(t *testing.T) {
	c := &craft{}
	// A slow divide produces the store's address register, delaying it.
	c.add(isa.MicroOp{Class: isa.IntDiv, Dest: 5, Src1: isa.RegNone, Src2: isa.RegNone})
	c.add(isa.MicroOp{Class: isa.Store, Dest: isa.RegNone, Src1: 3, Src2: 5, Addr: 0x10000})
	c.add(isa.MicroOp{Class: isa.Load, Dest: 6, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x20000})
	tr := run(t, config.Baseline(), c.uops)
	st, ld := &tr.Records[1], &tr.Records[2]
	if ld.T[trace.SIssue] < st.T[trace.SIssue] {
		t.Fatalf("load issued at %d before store at %d", ld.T[trace.SIssue], st.T[trace.SIssue])
	}
}

// TestMSHRLineSharing checks that a second load to an in-flight line merges
// into the fill instead of paying the full miss again.
func TestMSHRLineSharing(t *testing.T) {
	c := &craft{}
	c.add(isa.MicroOp{Class: isa.Load, Dest: 3, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x50000})
	c.add(isa.MicroOp{Class: isa.Load, Dest: 4, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x50008})
	s, err := New(config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the page translation through another line of the same page so
	// both loads are DTLB hits and issue in age order.
	s.WarmData([]uint64{0x50FC0})
	tr, err := s.Run(c.uops)
	if err != nil {
		t.Fatal(err)
	}
	first, second := &tr.Records[0], &tr.Records[1]
	if second.ShareWith != 0 {
		t.Fatalf("second load ShareWith = %d, want 0", second.ShareWith)
	}
	if second.T[trace.SComplete] > first.T[trace.SComplete]+8 {
		t.Fatalf("merged load completed at %d, fill at %d",
			second.T[trace.SComplete], first.T[trace.SComplete])
	}
}

// TestROBStall checks that a tiny reorder buffer throttles a long-latency
// shadow: shrinking the ROB must cost cycles on a miss-heavy stream.
func TestROBStall(t *testing.T) {
	mk := func() []isa.MicroOp {
		c := &craft{}
		for i := 0; i < 60; i++ {
			// Strided far-apart loads: every one misses to memory.
			c.add(isa.MicroOp{Class: isa.Load, Dest: 3, Src1: isa.RegNone, Src2: isa.RegNone,
				Addr: uint64(0x100000 + i*4096)})
			for j := 0; j < 4; j++ {
				c.add(isa.MicroOp{Class: isa.IntAlu, Dest: 4, Src1: isa.RegNone, Src2: isa.RegNone})
			}
		}
		return c.uops
	}
	big := config.Baseline()
	small := config.Baseline()
	small.Structure.ROBSize = 8
	trBig := run(t, big, mk())
	trSmall := run(t, small, mk())
	if trSmall.Cycles <= trBig.Cycles {
		t.Fatalf("ROB 8 (%d cycles) not slower than ROB 128 (%d cycles)",
			trSmall.Cycles, trBig.Cycles)
	}
}

// TestIssueQueueStallRecordsProvider checks that dispatch blocked on a full
// issue queue records the issue-dependency edge.
func TestIssueQueueStallRecordsProvider(t *testing.T) {
	cfg := config.Baseline()
	cfg.Structure.IssueQSize = 4
	c := &craft{}
	// A long serial divide chain clogs the tiny issue queue.
	for i := 0; i < 30; i++ {
		c.add(isa.MicroOp{Class: isa.IntDiv, Dest: 5, Src1: 5, Src2: isa.RegNone})
	}
	tr := run(t, cfg, c.uops)
	found := false
	for i := range tr.Records {
		if tr.Records[i].IQFreeBy != trace.None {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no µop recorded an issue-queue provider despite a clogged queue")
	}
}

// TestDeterminism checks bit-identical traces across runs.
func TestDeterminism(t *testing.T) {
	prof, _ := workload.ByName("437.leslie3d")
	uops := workload.Stream(prof, 9, 10000)
	cfg := config.Baseline()
	a := run(t, cfg, uops)
	b := run(t, cfg, uops)
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestWarmupReducesColdMisses checks that functional warming removes
// compulsory misses from the measured region.
func TestWarmupReducesColdMisses(t *testing.T) {
	prof, _ := workload.ByName("416.gamess")
	gen := workload.NewGenerator(prof, 3)
	warm := gen.Take(30000)
	uops := gen.Take(10000)
	for !uops[0].SoM {
		warm = append(warm, uops[0])
		uops = uops[1:]
	}
	cfg := config.Baseline()

	cold, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trCold, err := cold.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot.WarmCode(gen.CodeLines())
	hot.WarmData(gen.DataLines())
	hot.WarmUp(warm)
	trHot, err := hot.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	if trHot.Cycles >= trCold.Cycles {
		t.Fatalf("warmed run (%d cycles) not faster than cold run (%d)", trHot.Cycles, trCold.Cycles)
	}
}

// TestPhysRegStall checks that exhausting physical registers gates rename.
func TestPhysRegStall(t *testing.T) {
	cfg := config.Baseline()
	cfg.Structure.PhysRegs = isa.NumRegs + 4 // only four rename registers
	c := &craft{}
	// One memory miss at the head keeps commits back while independents
	// want registers.
	c.add(isa.MicroOp{Class: isa.Load, Dest: 3, Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x90000})
	for i := 0; i < 40; i++ {
		c.add(isa.MicroOp{Class: isa.IntAlu, Dest: 4 + i%6, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	tr := run(t, cfg, c.uops)
	found := false
	for i := range tr.Records {
		if tr.Records[i].RegFreeBy != trace.None {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no µop recorded a register provider despite a tiny register file")
	}
}

// TestRunEmptyAndInvalid covers the error paths.
func TestRunEmptyAndInvalid(t *testing.T) {
	s, err := New(config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(nil)
	if err != nil || tr.MicroOps() != 0 {
		t.Fatal("empty run must succeed trivially")
	}
	bad := config.Baseline()
	bad.Structure.ROBSize = -1
	if _, err := New(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	s2, _ := New(config.Baseline())
	broken := []isa.MicroOp{{Class: isa.Load, Dest: 2, Src1: 0, Src2: isa.RegNone}} // no address
	if _, err := s2.Run(broken); err == nil {
		t.Fatal("invalid µop accepted")
	}
}
