// Package config defines the microarchitecture model under exploration: the
// structure domain (sizes, widths, policies — fixed during one RpStacks run)
// and the latency domain (per-event cycle costs — the space a single RpStacks
// analysis covers). Baseline reproduces Table II of the paper.
package config

import (
	"encoding/json"
	"fmt"

	"repro/internal/stacks"
)

// Structure holds the structure-domain parameters of the core. Changing any
// of these requires a fresh simulation and a fresh set of RpStacks; the paper
// calls this the structure category (Section IV-D).
type Structure struct {
	// Window and queue sizes.
	ROBSize      int `json:"robSize"`      // reorder buffer entries
	IssueQSize   int `json:"issueQSize"`   // issue queue entries
	LSQSize      int `json:"lsqSize"`      // load/store queue entries
	FetchBufSize int `json:"fetchBufSize"` // fetch buffer entries between fetch and rename
	PhysRegs     int `json:"physRegs"`     // physical registers beyond the architectural set

	// Pipeline widths (µops per cycle).
	FetchWidth    int `json:"fetchWidth"`
	RenameWidth   int `json:"renameWidth"`
	DispatchWidth int `json:"dispatchWidth"`
	IssueWidth    int `json:"issueWidth"`
	CommitWidth   int `json:"commitWidth"`

	// Front-end pipeline depth in cycles between I-cache access completion
	// and rename (decode stages); contributes Base cycles.
	FrontendDepth int `json:"frontendDepth"`

	// Functional unit counts per class.
	LoadUnits    int `json:"loadUnits"`
	StoreUnits   int `json:"storeUnits"`
	FPUnits      int `json:"fpUnits"`
	BaseALUUnits int `json:"baseALUUnits"`
	LongALUUnits int `json:"longALUUnits"` // integer multiply/divide

	// Memory hierarchy geometry. Latencies live in the latency domain.
	LineSize   int `json:"lineSize"`
	L1ISets    int `json:"l1iSets"`
	L1IWays    int `json:"l1iWays"`
	L1DSets    int `json:"l1dSets"`
	L1DWays    int `json:"l1dWays"`
	L2Sets     int `json:"l2Sets"`
	L2Ways     int `json:"l2Ways"`
	ITLBSize   int `json:"itlbSize"`
	DTLBSize   int `json:"dtlbSize"`
	PageSize   int `json:"pageSize"`
	MSHRs      int `json:"mshrs"`      // outstanding line fills per data cache
	StoreBufSz int `json:"storeBufSz"` // committed-store write buffer entries

	// Branch predictor selection: "bimodal", "gshare" or "tournament",
	// with table size in entries (power of two).
	Predictor     string `json:"predictor"`
	PredictorBits int    `json:"predictorBits"` // log2 of table entries
	BTBEntries    int    `json:"btbEntries"`
}

// Config is a complete design point: one structure plus one latency
// assignment.
type Config struct {
	Structure Structure        `json:"structure"`
	Lat       stacks.Latencies `json:"latencies"`
}

// Baseline returns the paper's target microarchitecture (Table II):
// 128-entry ROB, 36-entry issue queue, 64-entry LSQ, 4-wide pipeline,
// LD(2) ST(2) FP(2) BaseALU(4) LongALU(2) functional units, 48KB 4-way L1s,
// 4MB 8-way L2, 133-cycle memory, and the Table II functional-unit
// latencies.
func Baseline() *Config {
	var lat stacks.Latencies
	lat[stacks.Base] = 1
	lat[stacks.L1I] = 2
	lat[stacks.L2I] = 12
	lat[stacks.MemI] = 133
	lat[stacks.ITLB] = 20
	lat[stacks.L1D] = 4
	lat[stacks.L2D] = 12
	lat[stacks.MemD] = 133
	lat[stacks.DTLB] = 20
	lat[stacks.Agu] = 2 // the LD unit of Table II
	lat[stacks.Store] = 1
	lat[stacks.Branch] = 8
	lat[stacks.IntAlu] = 1
	lat[stacks.IntMul] = 4
	lat[stacks.IntDiv] = 32
	lat[stacks.FpAdd] = 6
	lat[stacks.FpMul] = 6
	lat[stacks.FpDiv] = 24

	return &Config{
		Structure: Structure{
			ROBSize:      128,
			IssueQSize:   36,
			LSQSize:      64,
			FetchBufSize: 16,
			PhysRegs:     160,

			FetchWidth:    4,
			RenameWidth:   4,
			DispatchWidth: 4,
			IssueWidth:    4,
			CommitWidth:   4,
			FrontendDepth: 3,

			LoadUnits:    2,
			StoreUnits:   2,
			FPUnits:      2,
			BaseALUUnits: 4,
			LongALUUnits: 2,

			LineSize: 64,
			// 48KB 4-way: 192 sets of 64B lines.
			L1ISets: 192, L1IWays: 4,
			L1DSets: 192, L1DWays: 4,
			// 4MB 8-way: 8192 sets of 64B lines.
			L2Sets: 8192, L2Ways: 8,
			ITLBSize: 64, DTLBSize: 64,
			PageSize:   4096,
			MSHRs:      8,
			StoreBufSz: 8,

			Predictor:     "gshare",
			PredictorBits: 12,
			BTBEntries:    1024,
		},
		Lat: lat,
	}
}

// Validate checks the design point for internal consistency.
func (c *Config) Validate() error {
	s := &c.Structure
	pos := []struct {
		name string
		v    int
	}{
		{"robSize", s.ROBSize}, {"issueQSize", s.IssueQSize},
		{"lsqSize", s.LSQSize}, {"fetchBufSize", s.FetchBufSize},
		{"physRegs", s.PhysRegs},
		{"fetchWidth", s.FetchWidth}, {"renameWidth", s.RenameWidth},
		{"dispatchWidth", s.DispatchWidth}, {"issueWidth", s.IssueWidth},
		{"commitWidth", s.CommitWidth}, {"frontendDepth", s.FrontendDepth},
		{"loadUnits", s.LoadUnits}, {"storeUnits", s.StoreUnits},
		{"fpUnits", s.FPUnits}, {"baseALUUnits", s.BaseALUUnits},
		{"longALUUnits", s.LongALUUnits},
		{"lineSize", s.LineSize},
		{"l1iSets", s.L1ISets}, {"l1iWays", s.L1IWays},
		{"l1dSets", s.L1DSets}, {"l1dWays", s.L1DWays},
		{"l2Sets", s.L2Sets}, {"l2Ways", s.L2Ways},
		{"itlbSize", s.ITLBSize}, {"dtlbSize", s.DTLBSize},
		{"pageSize", s.PageSize}, {"mshrs", s.MSHRs},
		{"storeBufSz", s.StoreBufSz},
		{"predictorBits", s.PredictorBits}, {"btbEntries", s.BTBEntries},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("config: %s must be positive, got %d", p.name, p.v)
		}
	}
	if s.LineSize&(s.LineSize-1) != 0 {
		return fmt.Errorf("config: lineSize must be a power of two, got %d", s.LineSize)
	}
	if s.PageSize&(s.PageSize-1) != 0 {
		return fmt.Errorf("config: pageSize must be a power of two, got %d", s.PageSize)
	}
	switch s.Predictor {
	case "bimodal", "gshare", "tournament", "taken":
	default:
		return fmt.Errorf("config: unknown predictor %q", s.Predictor)
	}
	if s.ROBSize < s.CommitWidth {
		return fmt.Errorf("config: robSize (%d) smaller than commitWidth (%d)", s.ROBSize, s.CommitWidth)
	}
	return c.Lat.Validate()
}

// Clone returns a deep copy of the design point.
func (c *Config) Clone() *Config {
	out := *c
	return &out
}

// WithLatency returns a copy of the design point with one event latency
// replaced: the elementary move in the latency domain.
func (c *Config) WithLatency(e stacks.Event, cycles float64) *Config {
	out := c.Clone()
	out.Lat[e] = cycles
	return out
}

// JSON renders the design point as indented JSON.
func (c *Config) JSON() ([]byte, error) { return json.MarshalIndent(c, "", "  ") }

// FromJSON parses a design point from JSON.
func (c *Config) FromJSON(data []byte) error { return json.Unmarshal(data, c) }
