package config

import (
	"strings"
	"testing"

	"repro/internal/stacks"
)

// TestBaselineMatchesTableII pins the paper's target microarchitecture.
func TestBaselineMatchesTableII(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	s := c.Structure
	if s.ROBSize != 128 || s.IssueQSize != 36 || s.LSQSize != 64 {
		t.Fatalf("window sizes %d/%d/%d != 128/36/64", s.ROBSize, s.IssueQSize, s.LSQSize)
	}
	for _, w := range []int{s.FetchWidth, s.RenameWidth, s.DispatchWidth, s.IssueWidth, s.CommitWidth} {
		if w != 4 {
			t.Fatalf("pipeline width %d != 4", w)
		}
	}
	if s.LoadUnits != 2 || s.StoreUnits != 2 || s.FPUnits != 2 || s.BaseALUUnits != 4 || s.LongALUUnits != 2 {
		t.Fatal("functional unit counts differ from Table II")
	}
	// 48KB 4-way L1s over 64B lines; 4MB 8-way L2.
	if s.L1ISets*s.L1IWays*s.LineSize != 48<<10 {
		t.Fatalf("L1I capacity %d", s.L1ISets*s.L1IWays*s.LineSize)
	}
	if s.L2Sets*s.L2Ways*s.LineSize != 4<<20 {
		t.Fatalf("L2 capacity %d", s.L2Sets*s.L2Ways*s.LineSize)
	}
	lat := c.Lat
	want := map[stacks.Event]float64{
		stacks.L1I: 2, stacks.L1D: 4, stacks.L2D: 12, stacks.MemD: 133,
		stacks.Agu: 2, stacks.IntMul: 4, stacks.IntDiv: 32,
		stacks.FpAdd: 6, stacks.FpMul: 6, stacks.FpDiv: 24,
	}
	for e, v := range want {
		if lat[e] != v {
			t.Errorf("%s latency = %g, want %g", e, lat[e], v)
		}
	}
}

func TestValidateRejectsBadStructures(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Structure.ROBSize = 0 },
		func(c *Config) { c.Structure.ROBSize = 2 }, // below commit width
		func(c *Config) { c.Structure.LineSize = 48 },
		func(c *Config) { c.Structure.PageSize = 1000 },
		func(c *Config) { c.Structure.Predictor = "oracle" },
		func(c *Config) { c.Lat[stacks.Base] = 2 },
		func(c *Config) { c.Structure.MSHRs = -1 },
	}
	for i, mutate := range cases {
		c := Baseline()
		mutate(c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCloneAndWithLatencyAreCopies(t *testing.T) {
	c := Baseline()
	d := c.WithLatency(stacks.L1D, 1)
	if c.Lat[stacks.L1D] != 4 || d.Lat[stacks.L1D] != 1 {
		t.Fatal("WithLatency must not mutate the receiver")
	}
	e := c.Clone()
	e.Structure.ROBSize = 7
	if c.Structure.ROBSize == 7 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Baseline()
	data, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"robSize\": 128") {
		t.Fatalf("marshalled config missing fields:\n%s", data)
	}
	var d Config
	if err := d.FromJSON(data); err != nil {
		t.Fatal(err)
	}
	if d != *c {
		t.Fatal("round trip changed the config")
	}
}
