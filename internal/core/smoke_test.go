package core

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/stacks"
	"repro/internal/stats"
	"repro/internal/workload"
)

// randomLatencies perturbs the baseline latency assignment.
func randomLatencies(rng *rand.Rand, base stacks.Latencies) stacks.Latencies {
	l := base
	for e := stacks.Event(1); e < stacks.NumEvents; e++ {
		f := 0.25 + rng.Float64()*1.5
		l = l.Scale(e, f)
	}
	return l
}

// TestLosslessReductionMatchesGraph verifies the central exactness property:
// with similarity merging disabled, dominance elimination alone preserves
// every potentially-critical path, so the RpStacks prediction equals the
// full graph-reconstruction longest path for ANY latency assignment.
func TestLosslessReductionMatchesGraph(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("456.hmmer")
	// Path counts grow exponentially without merging — the very problem
	// RpStacks' reduction exists to solve — so the exactness check uses a
	// small window.
	uops := workload.Stream(prof, 3, 60)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.DisableMerge = true
	opts.MaxStacks = 0
	opts.SegmentLength = len(tr.Records)
	a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		l := randomLatencies(rng, cfg.Lat)
		want := g.LongestPath(&l)
		got := a.Predict(&l)
		if int64(got+0.5) != want {
			t.Fatalf("trial %d: lossless prediction %.1f != graph longest path %d", trial, got, want)
		}
	}
	t.Logf("representative stacks kept: %d", a.NumStacks())
}

// TestDefaultReductionCloseToGraph checks that the paper's default
// parameters stay close to the exact graph reconstruction across random
// latency points while keeping far fewer stacks.
func TestDefaultReductionCloseToGraph(t *testing.T) {
	cfg := config.Baseline()
	for _, name := range []string{"416.gamess", "437.leslie3d", "429.mcf"} {
		prof, _ := workload.ByName(name)
		uops := workload.Stream(prof, 5, 6000)
		s, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := s.Run(uops)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		var worst float64
		for trial := 0; trial < 15; trial++ {
			l := randomLatencies(rng, cfg.Lat)
			want := float64(g.LongestPath(&l))
			got := a.Predict(&l)
			if e := stats.AbsPctErr(got, want); e > worst {
				worst = e
			}
		}
		t.Logf("%s: stacks=%d worst-err=%.2f%%", name, a.NumStacks(), worst)
		if worst > 20 {
			t.Fatalf("%s: prediction drifts %.2f%% from graph reconstruction", name, worst)
		}
	}
}
