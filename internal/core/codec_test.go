package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// TestAnalysisCodecRoundTrip builds a real analysis over a simulated
// workload, writes it, reads it back, and checks the decoded analysis is
// structurally identical and — the property the durable tier depends on —
// predicts bit-identical cycle counts for arbitrary latency assignments.
func TestAnalysisCodecRoundTrip(t *testing.T) {
	cfg := config.Baseline()
	prof, ok := workload.ByName("416.gamess")
	if !ok {
		t.Fatal("unknown workload")
	}
	uops := workload.Stream(prof, 11, 12000)
	sim, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteAnalysis(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnalysis(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.MicroOps != a.MicroOps || got.Baseline != a.Baseline {
		t.Fatalf("scalars differ: %d/%v vs %d/%v", got.MicroOps, got.Baseline, a.MicroOps, a.Baseline)
	}
	if len(got.Segments) != len(a.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(got.Segments), len(a.Segments))
	}
	for i := range a.Segments {
		w, g := &a.Segments[i], &got.Segments[i]
		if w.Lo != g.Lo || w.Hi != g.Hi || len(w.Stacks) != len(g.Stacks) {
			t.Fatalf("segment %d shape differs", i)
		}
		for j := range w.Stacks {
			if w.Stacks[j] != g.Stacks[j] {
				t.Fatalf("segment %d stack %d differs", i, j)
			}
		}
	}

	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 50; k++ {
		l := cfg.Lat
		for e := stacks.Event(1); e < stacks.NumEvents; e++ {
			l = l.Scale(e, 0.25+rng.Float64()*1.5)
		}
		if w, g := a.Predict(&l), got.Predict(&l); w != g {
			t.Fatalf("assignment %d: predictions diverge after round trip: %g vs %g", k, w, g)
		}
	}

	// The encoding itself is canonical: re-encoding the decoded analysis
	// reproduces the bytes (content-addressing and checkpoint fingerprints
	// rely on this).
	var buf2 bytes.Buffer
	if err := WriteAnalysis(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("analysis encoding is not canonical")
	}
}

// TestAnalysisCodecRejectsDamage truncates and corrupts an encoded
// analysis at many offsets: the decoder must error every time, never panic.
func TestAnalysisCodecRejectsDamage(t *testing.T) {
	a := &Analysis{
		Baseline: stacks.Latencies{1: 2, 2: 4},
		MicroOps: 100,
		Opts:     DefaultOptions(),
		Segments: []Segment{{Lo: 0, Hi: 100, Stacks: []stacks.Stack{
			{Counts: [stacks.NumEvents]float64{0: 50, 3: 2.5}},
			{Counts: [stacks.NumEvents]float64{1: 7}},
		}}},
	}
	var buf bytes.Buffer
	if err := WriteAnalysis(&buf, a); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut += 3 {
		if _, err := ReadAnalysis(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := ReadAnalysis(bytes.NewReader(append(bytes.Clone(raw), 0x7))); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := bytes.Clone(raw)
	bad[0] = 'X'
	if _, err := ReadAnalysis(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}
