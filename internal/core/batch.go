package core

import (
	"fmt"

	"repro/internal/stacks"
)

// BatchPredictor re-weights the representative stacks of an Analysis for K
// design points per pass, the RpStacks counterpart of
// depgraph.BatchEvaluator: where Predict walks segments × stacks × events
// once per design point, a BatchPredictor walks them once per batch,
// updating K total lanes per stack.
//
// The K latency columns are transposed up front into an event-major
// struct-of-arrays matrix (lats[e*K+lane]), so the per-stack inner loop
// streams contiguous lanes: for each event the stack holds, one multiply-add
// across the K lanes. Summation order per lane is exactly Predict's —
// events in taxonomy order within a stack, segment winners by strict
// greater-than with the first maximum kept, winners summed in segment order
// — and events a stack does not hold contribute nothing. For the
// non-negative latencies of the design space (Latencies.Validate rejects
// negative values) a zero-count term adds an exact +0.0 in Predict too, so
// batch predictions are bit-identical float64s to the scalar path, not
// merely close.
//
// A BatchPredictor allocates O(events·K) once; every batch after that is
// allocation-free. It only reads the Analysis, so any number of predictors
// may share one Analysis concurrently, but a single BatchPredictor is not
// goroutine-safe.
type BatchPredictor struct {
	a    *Analysis
	k    int
	lats []float64 // event-major latency columns: lats[e*k+lane]
	tot  []float64 // per-stack totals, one lane each
	best []float64 // per-segment winning totals, one lane each
}

// NewBatchPredictor returns a K-lane prediction scratch bound to a. Lane
// counts below one are raised to one.
func (a *Analysis) NewBatchPredictor(k int) *BatchPredictor {
	if k < 1 {
		k = 1
	}
	return &BatchPredictor{
		a:    a,
		k:    k,
		lats: make([]float64, int(stacks.NumEvents)*k),
		tot:  make([]float64, k),
		best: make([]float64, k),
	}
}

// Width returns the lane count K the predictor was built for: the maximum
// number of design points one Predict call may evaluate.
func (p *BatchPredictor) Width() int { return p.k }

// Predict evaluates up to Width design points in one pass over the analysis
// and writes the predicted cycle count of point i into out[i]. Each out[i]
// equals Analysis.Predict(&points[i]) bit for bit — for any batch size
// including ragged final batches shorter than Width. A batch longer than
// Width panics: the caller owns batch slicing.
func (p *BatchPredictor) Predict(points []stacks.Latencies, out []float64) {
	m := len(points)
	if m == 0 {
		return
	}
	if m > p.k {
		panic(fmt.Sprintf("core: batch of %d points exceeds predictor width %d", m, p.k))
	}
	if len(out) < m {
		panic(fmt.Sprintf("core: output buffer holds %d of %d batch results", len(out), m))
	}
	k := p.k
	// Transpose the latency columns so the stack loop below streams lanes
	// contiguously per event.
	for e := 0; e < int(stacks.NumEvents); e++ {
		row := p.lats[e*k : e*k+m]
		for lane := range row {
			row[lane] = points[lane][e]
		}
	}
	out = out[:m]
	for lane := range out {
		out[lane] = 0
	}
	tot, best := p.tot[:m], p.best[:m]
	for si := range p.a.Segments {
		seg := &p.a.Segments[si]
		for sj := range seg.Stacks {
			st := &seg.Stacks[sj]
			for lane := range tot {
				tot[lane] = 0
			}
			for e := 0; e < int(stacks.NumEvents); e++ {
				c := st.Counts[e]
				if c == 0 {
					continue
				}
				row := p.lats[e*k : e*k+m]
				for lane := range tot {
					tot[lane] += c * row[lane]
				}
			}
			if sj == 0 {
				copy(best, tot)
				continue
			}
			for lane := range best {
				if tot[lane] > best[lane] {
					best[lane] = tot[lane]
				}
			}
		}
		for lane := range out {
			out[lane] += best[lane]
		}
	}
}

// PredictBatch evaluates every design point of the batch in one pass over
// the analysis and returns the predicted cycle counts in point order, each
// bit-identical to Predict on the same point. It is the allocating
// convenience form of BatchPredictor.Predict; sweeps should reuse a
// NewBatchPredictor per worker instead.
func (a *Analysis) PredictBatch(points []stacks.Latencies) []float64 {
	out := make([]float64, len(points))
	if len(points) > 0 {
		a.NewBatchPredictor(len(points)).Predict(points, out)
	}
	return out
}
