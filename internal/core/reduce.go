package core

import (
	"sort"

	"repro/internal/depgraph"
	"repro/internal/stacks"
)

// generate traverses the dependence graph in topological order, carrying at
// every node the stall-event stacks of the distinctive paths reaching it
// (Section IV-D). Arriving candidates are reduced at each node: dominated
// paths are eliminated (lossless), similar paths merge into the
// larger-penalty one, and paths with a unique event kind are preserved
// (Section IV-E). The sink's surviving stacks are the segment's RpStacks.
func generate(g *depgraph.Graph, base *stacks.Latencies, opts *Options) []stacks.Stack {
	sets := make([][]stacks.Stack, g.NumNodes())
	var cand []stacks.Stack
	for _, n := range g.EvalOrder() {
		in := g.In(n)
		if len(in) == 0 {
			sets[n] = []stacks.Stack{{}}
			continue
		}
		cand = cand[:0]
		for _, e := range in {
			for _, s := range sets[e.From] {
				cand = append(cand, addWeight(s, &e.W))
			}
		}
		if len(cand) == 1 {
			sets[n] = []stacks.Stack{cand[0]}
			continue
		}
		sets[n] = reduceSet(append([]stacks.Stack(nil), cand...), base, opts)
	}
	return sets[g.Sink()]
}

// addWeight returns s plus the edge's event counts.
func addWeight(s stacks.Stack, w *depgraph.Weight) stacks.Stack {
	for _, p := range w {
		if p.N != 0 {
			s.Counts[p.Ev] += float64(p.N)
		}
	}
	return s
}

// reduceSet applies the paper's three reduction rules in place and returns
// the surviving stacks, longest (at the baseline assignment) first.
func reduceSet(set []stacks.Stack, base *stacks.Latencies, opts *Options) []stacks.Stack {
	set = dominanceFilter(set)
	if opts.DisableMerge || len(set) == 1 {
		return set
	}

	// Order by baseline total, descending, so merging always keeps the more
	// performance-critical path.
	sort.Slice(set, func(i, j int) bool {
		return set[i].Total(base) > set[j].Total(base)
	})

	unique := uniqueFlags(set, opts.PreserveUnique)

	alive := make([]bool, len(set))
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < len(set); i++ {
		if !alive[i] {
			continue
		}
		for j := i + 1; j < len(set); j++ {
			if !alive[j] || unique[j] {
				continue
			}
			if stacks.Similarity(&set[i], &set[j], base) >= opts.CosineThreshold {
				alive[j] = false
			}
		}
	}
	out := set[:0]
	for i, s := range set {
		if alive[i] {
			out = append(out, s)
		}
	}

	// Hard cap: force-merge beyond the limit, absorbing each non-unique
	// path into its most similar longer survivor — an adaptive similarity
	// threshold rather than an arbitrary drop. Dropping by size instead
	// would discard exactly the short-at-baseline paths that become
	// critical when latencies shrink.
	if opts.MaxStacks > 0 && len(out) > opts.MaxStacks {
		unique = uniqueFlags(out, opts.PreserveUnique)
		type victim struct {
			idx int
			sim float64
		}
		// For every non-unique stack, its best similarity to any
		// longer-total stack (out is sorted descending).
		var vics []victim
		for j := 1; j < len(out); j++ {
			if unique[j] {
				continue
			}
			best := -1.0
			for i := 0; i < j; i++ {
				if s := stacks.Similarity(&out[i], &out[j], base); s > best {
					best = s
				}
			}
			vics = append(vics, victim{j, best})
		}
		sort.Slice(vics, func(a, b int) bool { return vics[a].sim > vics[b].sim })
		excess := len(out) - opts.MaxStacks
		drop := make(map[int]bool, excess)
		for _, v := range vics {
			if excess == 0 {
				break
			}
			drop[v.idx] = true
			excess--
		}
		kept := out[:0]
		for i, s := range out {
			if !drop[i] {
				kept = append(kept, s)
			}
		}
		out = kept
	}
	return out
}

// dominanceFilter removes every stack that is componentwise dominated by
// another (it can never be the longest under any non-negative latency
// assignment). Exact duplicates keep one copy.
func dominanceFilter(set []stacks.Stack) []stacks.Stack {
	alive := make([]bool, len(set))
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < len(set); i++ {
		if !alive[i] {
			continue
		}
		for j := i + 1; j < len(set); j++ {
			if !alive[j] {
				continue
			}
			if set[i].Dominates(&set[j]) {
				alive[j] = false
			} else if set[j].Dominates(&set[i]) {
				alive[i] = false
				break
			}
		}
	}
	out := set[:0]
	for i, s := range set {
		if alive[i] {
			out = append(out, s)
		}
	}
	return out
}

// uniqueFlags marks stacks holding a nonzero event count that no other stack
// in the set holds. When preservation is disabled, no stack is unique.
func uniqueFlags(set []stacks.Stack, preserve bool) []bool {
	flags := make([]bool, len(set))
	if !preserve {
		return flags
	}
	var holders [stacks.NumEvents]int
	for i := range holders {
		holders[i] = -1 // -1: none, -2: several
	}
	for i := range set {
		for e := range set[i].Counts {
			if set[i].Counts[e] == 0 {
				continue
			}
			switch holders[e] {
			case -1:
				holders[e] = i
			default:
				holders[e] = -2
			}
		}
	}
	for _, h := range holders {
		if h >= 0 {
			flags[h] = true
		}
	}
	return flags
}
