package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestParallelAnalysisDeterministic: analyzing with a worker pool yields
// exactly the sequential result, segment for segment and stack for stack.
func TestParallelAnalysisDeterministic(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("450.soplex")
	tr := simTrace(t, cfg, workload.Stream(prof, 13, 12000))

	seq := DefaultOptions()
	seq.SegmentLength = 1500
	par := seq
	par.Parallelism = 4

	a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(tr, &cfg.Structure, &cfg.Lat, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		sa, sb := a.Segments[i], b.Segments[i]
		if sa.Lo != sb.Lo || sa.Hi != sb.Hi || len(sa.Stacks) != len(sb.Stacks) {
			t.Fatalf("segment %d differs structurally", i)
		}
		for j := range sa.Stacks {
			if sa.Stacks[j] != sb.Stacks[j] {
				t.Fatalf("segment %d stack %d differs", i, j)
			}
		}
	}
	if a.Predict(&cfg.Lat) != b.Predict(&cfg.Lat) {
		t.Fatal("predictions differ")
	}
}
