package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/stacks"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func simTrace(t *testing.T, cfg *config.Config, uops []isa.MicroOp) *trace.Trace {
	t.Helper()
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{SegmentLength: 0, CosineThreshold: 0.7},
		{SegmentLength: 100, CosineThreshold: -0.1},
		{SegmentLength: 100, CosineThreshold: 1.5},
		{SegmentLength: 100, CosineThreshold: 0.7, MaxStacks: -1},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	def := DefaultOptions()
	if err := def.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if def.SegmentLength != 5000 || def.CosineThreshold != 0.7 || !def.PreserveUnique {
		t.Fatal("defaults differ from the paper's chosen parameters")
	}
}

// TestSegmentationStructure checks segment boundaries: contiguous, SoM-
// aligned, covering the whole trace.
func TestSegmentationStructure(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("453.povray")
	tr := simTrace(t, cfg, workload.Stream(prof, 3, 12000))
	opts := DefaultOptions()
	opts.SegmentLength = 2500
	a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments) < 4 {
		t.Fatalf("expected several segments, got %d", len(a.Segments))
	}
	prev := 0
	for i, s := range a.Segments {
		if s.Lo != prev {
			t.Fatalf("segment %d starts at %d, want %d", i, s.Lo, prev)
		}
		if !tr.Records[s.Lo].SoM {
			t.Fatalf("segment %d not SoM-aligned", i)
		}
		if len(s.Stacks) == 0 {
			t.Fatalf("segment %d has no stacks", i)
		}
		prev = s.Hi
	}
	if prev != len(tr.Records) {
		t.Fatalf("segments cover %d of %d records", prev, len(tr.Records))
	}
}

// TestSegmentationCloseToFullGraph: summed segment predictions track the
// unsegmented longest path within a few percent (segmentation cuts paths
// and adds boundary traversals — Section III-C).
func TestSegmentationCloseToFullGraph(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("416.gamess")
	tr := simTrace(t, cfg, workload.Stream(prof, 3, 10000))
	g, err := depgraph.Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	for _, segLen := range []int{1000, 5000} {
		opts := DefaultOptions()
		opts.SegmentLength = segLen
		a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, opts)
		if err != nil {
			t.Fatal(err)
		}
		full := float64(g.LongestPath(&cfg.Lat))
		seg := a.Predict(&cfg.Lat)
		if e := stats.AbsPctErr(seg, full); e > 8 {
			t.Errorf("segLen %d: segmented prediction off by %.2f%%", segLen, e)
		}
	}
}

// TestReduceSetUniquenessMechanism tests the reduction rule directly: a
// small similar-looking path carrying an event kind no other path holds is
// exempt from merging when preservation is on, and merged away when off.
func TestReduceSetUniquenessMechanism(t *testing.T) {
	base := config.Baseline().Lat
	mk := func(alu, l1d, div float64) stacks.Stack {
		var s stacks.Stack
		s.Counts[stacks.IntAlu] = alu
		s.Counts[stacks.L1D] = l1d
		s.Counts[stacks.FpDiv] = div
		return s
	}
	// Three paths: a big winner, a similar smaller one (mergeable), and a
	// similar small one that uniquely carries FpDiv.
	set := func() []stacks.Stack {
		return []stacks.Stack{mk(1000, 100, 0), mk(900, 95, 0), mk(850, 90, 3)}
	}

	on := DefaultOptions()
	out := reduceSet(set(), &base, &on)
	foundDiv := false
	for i := range out {
		if out[i].Counts[stacks.FpDiv] > 0 {
			foundDiv = true
		}
	}
	if !foundDiv {
		t.Fatal("uniqueness preservation lost the only FpDiv-bearing path")
	}
	if len(out) != 2 {
		t.Fatalf("expected the similar non-unique path to merge: kept %d", len(out))
	}

	off := on
	off.PreserveUnique = false
	out = reduceSet(set(), &base, &off)
	for i := range out {
		if out[i].Counts[stacks.FpDiv] > 0 {
			t.Fatal("without preservation the similar FpDiv path must merge away")
		}
	}
}

// TestUniquenessKeepsEventVisible checks end to end that with preservation
// on, a rare long-latency event class stays visible in the sink stacks,
// while aggressive merging without preservation erases it.
func TestUniquenessKeepsEventVisible(t *testing.T) {
	cfg := config.Baseline()
	var uops []isa.MicroOp
	seq := uint64(0)
	add := func(u isa.MicroOp) {
		u.Seq, u.MacroSeq = seq, seq
		u.SoM, u.EoM = true, true
		u.PC = 0x400000
		seq++
		uops = append(uops, u)
	}
	for i := 0; i < 3000; i++ {
		if i%100 == 50 {
			add(isa.MicroOp{Class: isa.FpDiv, Dest: isa.NumIntRegs, Src1: isa.NumIntRegs, Src2: isa.RegNone})
			continue
		}
		add(isa.MicroOp{Class: isa.IntAlu, Dest: 3, Src1: 3, Src2: isa.RegNone})
	}
	tr := simTrace(t, cfg, uops)

	visible := func(a *Analysis) bool {
		for _, seg := range a.Segments {
			for i := range seg.Stacks {
				if seg.Stacks[i].Counts[stacks.FpDiv] > 0 {
					return true
				}
			}
		}
		return false
	}
	on := DefaultOptions()
	aOn, err := Analyze(tr, &cfg.Structure, &cfg.Lat, on)
	if err != nil {
		t.Fatal(err)
	}
	if !visible(aOn) {
		t.Error("uniqueness on: FpDiv disappeared from every representative stack")
	}
	off := DefaultOptions()
	off.PreserveUnique = false
	off.CosineThreshold = 0.2
	aOff, err := Analyze(tr, &cfg.Structure, &cfg.Lat, off)
	if err != nil {
		t.Fatal(err)
	}
	if visible(aOff) {
		t.Log("note: FpDiv survived even without preservation (merging was not aggressive enough to erase it)")
	}
}

// TestReductionKeepsFewStacks confirms the core premise: the surviving
// representative set is small.
func TestReductionKeepsFewStacks(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("433.milc")
	tr := simTrace(t, cfg, workload.Stream(prof, 4, 10000))
	a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	perSeg := float64(a.NumStacks()) / float64(len(a.Segments))
	if perSeg > 40 {
		t.Fatalf("%.1f stacks per segment survive; reduction is not reducing", perSeg)
	}
}

// TestRepresentativeTotalEqualsPredict ties the reporting stack to the
// prediction.
func TestRepresentativeTotalEqualsPredict(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("470.lbm")
	tr := simTrace(t, cfg, workload.Stream(prof, 4, 6000))
	a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []stacks.Latencies{cfg.Lat, cfg.Lat.With(stacks.MemD, 66)} {
		l := l
		rep := a.Representative(&l)
		if d := rep.Total(&l) - a.Predict(&l); d > 1e-6 || d < -1e-6 {
			t.Fatalf("Representative total differs from Predict by %g", d)
		}
	}
}

// TestAnalyzeRangeErrors covers window validation.
func TestAnalyzeRangeErrors(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("456.hmmer")
	tr := simTrace(t, cfg, workload.Stream(prof, 4, 500))
	if _, err := AnalyzeRange(tr, &cfg.Structure, &cfg.Lat, DefaultOptions(), -1, 10); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := AnalyzeRange(tr, &cfg.Structure, &cfg.Lat, DefaultOptions(), 10, 5); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := Analyze(&trace.Trace{}, &cfg.Structure, &cfg.Lat, DefaultOptions()); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := DefaultOptions()
	bad.SegmentLength = -1
	if _, err := Analyze(tr, &cfg.Structure, &cfg.Lat, bad); err == nil {
		t.Fatal("invalid options accepted")
	}
}
