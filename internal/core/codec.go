package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/stacks"
)

// codec.go — the durable form of an Analysis. The analysis is the paper's
// amortizable artifact: one expensive simulate+analyze pass produces it,
// then every design-point query is a cheap re-weighting. Persisting it (via
// internal/store) makes that amortization survive process restarts, so the
// codec is versioned, self-describing about its event-space width, and
// strict on decode: truncated or inconsistent bytes return errors, never a
// half-built analysis.
//
// Stacks are stored sparsely (non-zero event counts only) because a
// representative stack touches a handful of the event kinds.

const (
	analysisMagic   = "RPANL"
	analysisVersion = 1

	// maxAnalysisSegments bounds the segment count a decoder accepts; a
	// trace would need billions of µops to exceed it honestly.
	maxAnalysisSegments = 1 << 24
	// maxSegmentStacks bounds the per-segment representative set; analysis
	// options cap it far lower in practice.
	maxSegmentStacks = 1 << 16
)

// WriteAnalysis serializes the analysis in the canonical binary form.
func WriteAnalysis(w io.Writer, a *Analysis) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(analysisMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putF := func(v float64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, err := bw.Write(b[:])
		return err
	}
	putB := func(v bool) error {
		b := byte(0)
		if v {
			b = 1
		}
		return bw.WriteByte(b)
	}
	if err := putU(analysisVersion); err != nil {
		return err
	}
	// The event-space width is part of the format: an analysis written
	// against a different stacks.NumEvents must not decode.
	if err := putU(uint64(stacks.NumEvents)); err != nil {
		return err
	}
	for e := stacks.Event(0); e < stacks.NumEvents; e++ {
		if err := putF(a.Baseline[e]); err != nil {
			return err
		}
	}
	if err := putU(uint64(a.MicroOps)); err != nil {
		return err
	}
	o := &a.Opts
	if err := putU(uint64(o.SegmentLength)); err != nil {
		return err
	}
	if err := putF(o.CosineThreshold); err != nil {
		return err
	}
	if err := putB(o.PreserveUnique); err != nil {
		return err
	}
	if err := putU(uint64(o.MaxStacks)); err != nil {
		return err
	}
	if err := putB(o.DisableMerge); err != nil {
		return err
	}
	// Opts.Parallelism is an execution parameter, not analysis content; it
	// is deliberately not persisted and decodes as zero.

	if err := putU(uint64(len(a.Segments))); err != nil {
		return err
	}
	for i := range a.Segments {
		seg := &a.Segments[i]
		if err := putU(uint64(seg.Lo)); err != nil {
			return err
		}
		if err := putU(uint64(seg.Hi)); err != nil {
			return err
		}
		if err := putU(uint64(len(seg.Stacks))); err != nil {
			return err
		}
		for j := range seg.Stacks {
			st := &seg.Stacks[j]
			nz := 0
			for e := range st.Counts {
				if st.Counts[e] != 0 {
					nz++
				}
			}
			if err := putU(uint64(nz)); err != nil {
				return err
			}
			for e := range st.Counts {
				if st.Counts[e] == 0 {
					continue
				}
				if err := putU(uint64(e)); err != nil {
					return err
				}
				if err := putF(st.Counts[e]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadAnalysis deserializes an analysis written by WriteAnalysis. Errors
// are returned for truncation, version or event-space mismatch, and any
// structurally impossible field; the decoder never panics and grows its
// buffers incrementally rather than trusting untrusted counts.
func ReadAnalysis(r io.Reader) (*Analysis, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(analysisMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("core: reading analysis header: %w", err)
	}
	if string(head) != analysisMagic {
		return nil, fmt.Errorf("core: bad analysis magic %q", head)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getF := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	getB := func() (bool, error) {
		b, err := br.ReadByte()
		if err != nil {
			return false, err
		}
		if b > 1 {
			return false, fmt.Errorf("core: invalid boolean byte %d", b)
		}
		return b == 1, nil
	}

	ver, err := getU()
	if err != nil {
		return nil, fmt.Errorf("core: reading analysis version: %w", err)
	}
	if ver != analysisVersion {
		return nil, fmt.Errorf("core: unsupported analysis version %d", ver)
	}
	width, err := getU()
	if err != nil {
		return nil, err
	}
	if width != uint64(stacks.NumEvents) {
		return nil, fmt.Errorf("core: analysis written for %d event kinds, this build has %d",
			width, stacks.NumEvents)
	}
	a := &Analysis{}
	for e := stacks.Event(0); e < stacks.NumEvents; e++ {
		if a.Baseline[e], err = getF(); err != nil {
			return nil, fmt.Errorf("core: reading baseline: %w", err)
		}
	}
	mo, err := getU()
	if err != nil {
		return nil, err
	}
	if mo > 1<<40 {
		return nil, fmt.Errorf("core: µop count %d exceeds limit", mo)
	}
	a.MicroOps = int(mo)
	segLen, err := getU()
	if err != nil {
		return nil, err
	}
	a.Opts.SegmentLength = int(segLen)
	if a.Opts.CosineThreshold, err = getF(); err != nil {
		return nil, err
	}
	if a.Opts.PreserveUnique, err = getB(); err != nil {
		return nil, err
	}
	maxStacks, err := getU()
	if err != nil {
		return nil, err
	}
	a.Opts.MaxStacks = int(maxStacks)
	if a.Opts.DisableMerge, err = getB(); err != nil {
		return nil, err
	}
	if err := a.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: decoded options invalid: %w", err)
	}

	nseg, err := getU()
	if err != nil {
		return nil, err
	}
	if nseg > maxAnalysisSegments {
		return nil, fmt.Errorf("core: segment count %d exceeds limit", nseg)
	}
	capHint := nseg
	if capHint > 1<<12 {
		capHint = 1 << 12
	}
	a.Segments = make([]Segment, 0, capHint)
	for i := uint64(0); i < nseg; i++ {
		var seg Segment
		lo, err := getU()
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
		hi, err := getU()
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
		if lo >= hi || hi > 1<<40 {
			return nil, fmt.Errorf("core: segment %d: invalid window [%d, %d)", i, lo, hi)
		}
		seg.Lo, seg.Hi = int(lo), int(hi)
		ns, err := getU()
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
		if ns == 0 || ns > maxSegmentStacks {
			return nil, fmt.Errorf("core: segment %d: stack count %d out of range", i, ns)
		}
		stCap := ns
		if stCap > 1<<8 {
			stCap = 1 << 8
		}
		seg.Stacks = make([]stacks.Stack, 0, stCap)
		for j := uint64(0); j < ns; j++ {
			var st stacks.Stack
			nz, err := getU()
			if err != nil {
				return nil, fmt.Errorf("core: segment %d stack %d: %w", i, j, err)
			}
			if nz > uint64(stacks.NumEvents) {
				return nil, fmt.Errorf("core: segment %d stack %d: %d non-zero events", i, j, nz)
			}
			for k := uint64(0); k < nz; k++ {
				ev, err := getU()
				if err != nil {
					return nil, fmt.Errorf("core: segment %d stack %d: %w", i, j, err)
				}
				if ev >= uint64(stacks.NumEvents) {
					return nil, fmt.Errorf("core: segment %d stack %d: event %d out of range", i, j, ev)
				}
				if st.Counts[ev], err = getF(); err != nil {
					return nil, fmt.Errorf("core: segment %d stack %d: %w", i, j, err)
				}
			}
			seg.Stacks = append(seg.Stacks, st)
		}
		a.Segments = append(a.Segments, seg)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: trailing bytes after analysis")
	}
	return a, nil
}
