// Package core implements RpStacks, the paper's primary contribution: from a
// single simulation's dependence graph it extracts a small set of
// representative stall-event stacks — the penalty decompositions of the
// distinctive performance-critical execution paths — and predicts the cycle
// count of any latency configuration of the same structure by re-weighting
// those stacks and taking, per segment, the longest (Sections III and IV of
// the paper).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/depgraph"
	"repro/internal/stacks"
	"repro/internal/trace"
)

// Options controls RpStacks generation. The defaults are the parameters the
// paper selects in its sensitivity study (Section V-D): segment length 5000,
// cosine threshold 0.7, uniqueness preservation on.
type Options struct {
	// SegmentLength is the dependence-graph segmentation granularity in
	// µops; boundaries snap forward to macro-op starts.
	SegmentLength int
	// CosineThreshold is the modified-cosine similarity above which two
	// paths merge (the larger-penalty path survives).
	CosineThreshold float64
	// PreserveUnique exempts paths holding an event kind no other surviving
	// path holds from merging and capping.
	PreserveUnique bool
	// MaxStacks caps the per-node path set; smallest non-unique paths are
	// dropped beyond it. Zero means no cap.
	MaxStacks int
	// DisableMerge turns off similarity merging and capping, leaving only
	// the lossless dominance elimination. Predictions are then exactly the
	// graph-reconstruction longest path for every configuration — used by
	// tests and ablations; exponential in the worst case.
	DisableMerge bool
	// Parallelism is the number of segments analyzed concurrently
	// (segmentation makes the per-segment work independent, Section
	// III-C). Zero or one means sequential. Results are deterministic
	// regardless of the worker count.
	Parallelism int
}

// DefaultOptions returns the paper's chosen execution parameters.
func DefaultOptions() Options {
	return Options{
		SegmentLength:   5000,
		CosineThreshold: 0.7,
		PreserveUnique:  true,
		MaxStacks:       64,
	}
}

// Validate checks the options.
func (o *Options) Validate() error {
	if o.SegmentLength <= 0 {
		return fmt.Errorf("core: segment length must be positive, got %d", o.SegmentLength)
	}
	if o.CosineThreshold < 0 || o.CosineThreshold > 1 {
		return fmt.Errorf("core: cosine threshold %g outside [0, 1]", o.CosineThreshold)
	}
	if o.MaxStacks < 0 {
		return fmt.Errorf("core: negative stack cap %d", o.MaxStacks)
	}
	return nil
}

// Segment holds the representative stall-event stacks of one graph segment.
type Segment struct {
	Lo, Hi int // µop window of the underlying trace
	Stacks []stacks.Stack
}

// MaxStack returns the longest stack of the segment under the latency
// assignment and its length.
func (s *Segment) MaxStack(l *stacks.Latencies) (stacks.Stack, float64) {
	best := 0
	bestTotal := s.Stacks[0].Total(l)
	for i := 1; i < len(s.Stacks); i++ {
		if t := s.Stacks[i].Total(l); t > bestTotal {
			best, bestTotal = i, t
		}
	}
	return s.Stacks[best], bestTotal
}

// Analysis is the output of one RpStacks run: per-segment representative
// stacks, re-weightable for any latency configuration without touching the
// simulator or the graph again.
type Analysis struct {
	Segments []Segment
	Baseline stacks.Latencies
	MicroOps int
	Opts     Options
}

// Analyze runs the full RpStacks pipeline on a dynamic trace: segmentation,
// per-segment dependence-graph construction, multi-path traversal with
// reduction, and representative stack extraction. The baseline latency
// assignment is the one the trace was simulated under; it anchors the
// similarity metric.
func Analyze(tr *trace.Trace, st *config.Structure, baseline *stacks.Latencies, opts Options) (*Analysis, error) {
	return AnalyzeRange(tr, st, baseline, opts, 0, len(tr.Records))
}

// AnalyzeRange runs the RpStacks pipeline over the µop window [from, to) of
// the trace — the per-SimPoint entry point for sampled analysis. The window
// must start at a macro-op boundary.
func AnalyzeRange(tr *trace.Trace, st *config.Structure, baseline *stacks.Latencies, opts Options, from, to int) (*Analysis, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if from < 0 || to > len(tr.Records) || from >= to {
		return nil, fmt.Errorf("core: invalid window [%d, %d) of %d records", from, to, len(tr.Records))
	}
	a := &Analysis{Baseline: *baseline, MicroOps: to - from, Opts: opts}
	n := to

	// Lay out segment windows first: boundaries snap forward to the next
	// macro-op start so commit atomicity never references across segments.
	type window struct{ lo, hi int }
	var wins []window
	for lo := from; lo < n; {
		hi := lo + opts.SegmentLength
		if hi > n {
			hi = n
		}
		for hi < n && !tr.Records[hi].SoM {
			hi++
		}
		wins = append(wins, window{lo, hi})
		lo = hi
	}
	a.Segments = make([]Segment, len(wins))

	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(wins) {
		workers = len(wins)
	}
	analyzeOne := func(i int) error {
		g, err := depgraph.Build(tr, st, wins[i].lo, wins[i].hi)
		if err != nil {
			return err
		}
		a.Segments[i] = Segment{Lo: wins[i].lo, Hi: wins[i].hi, Stacks: generate(g, baseline, &opts)}
		return nil
	}
	if workers == 1 {
		for i := range wins {
			if err := analyzeOne(i); err != nil {
				return nil, err
			}
		}
		return a, nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		mu   sync.Mutex
		errs error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(wins) {
					return
				}
				if err := analyzeOne(i); err != nil {
					mu.Lock()
					if errs == nil {
						errs = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if errs != nil {
		return nil, errs
	}
	return a, nil
}

// AnalyzeGraph runs RpStacks generation over a single prebuilt graph,
// without segmentation. It is the building block Analyze uses and is exposed
// for tests and tools that study one window.
func AnalyzeGraph(g *depgraph.Graph, baseline *stacks.Latencies, opts Options) []stacks.Stack {
	return generate(g, baseline, &opts)
}

// Predict estimates the cycle count of the traced region under a latency
// assignment: per segment, the longest representative stack wins; segment
// winners add up (the paper's segment-stack summation). The cost is
// O(segments · stacks · events), independent of trace length and simulator.
//
// Predict only reads the analysis, so any number of goroutines may call it
// concurrently on a shared Analysis — parallel design-space sweeps
// (dse.ExploreRpStacksOpts) rely on this. Dense sweeps should prefer
// PredictBatch / BatchPredictor, which re-weight the stacks for K design
// points per pass with bit-identical results.
func (a *Analysis) Predict(l *stacks.Latencies) float64 {
	var total float64
	for i := range a.Segments {
		_, t := a.Segments[i].MaxStack(l)
		total += t
	}
	return total
}

// PredictCPI returns the predicted cycles per µop under a latency
// assignment.
func (a *Analysis) PredictCPI(l *stacks.Latencies) float64 {
	if a.MicroOps == 0 {
		return 0
	}
	return a.Predict(l) / float64(a.MicroOps)
}

// Representative returns the whole-trace stall-event stack under a latency
// assignment: the sum of each segment's winning stack. Its Total equals
// Predict, and its per-event decomposition is the CPI-stack the paper plots
// (Figures 5, 6 and 12).
func (a *Analysis) Representative(l *stacks.Latencies) stacks.Stack {
	var sum stacks.Stack
	for i := range a.Segments {
		s, _ := a.Segments[i].MaxStack(l)
		sum.AddStack(&s)
	}
	return sum
}

// NumStacks returns the total representative stack count across segments —
// the footprint that makes per-configuration prediction cheap.
func (a *Analysis) NumStacks() int {
	n := 0
	for i := range a.Segments {
		n += len(a.Segments[i].Stacks)
	}
	return n
}
