package core

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// batchSubstrate simulates a workload, runs the RpStacks pipeline, and
// randomizes a list of latency design points around the baseline.
func batchSubstrate(t *testing.T, name string, seed int64, n, npts int) (*Analysis, []stacks.Latencies) {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	uops := workload.Stream(prof, seed, n)
	sim, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(tr, &cfg.Structure, &cfg.Lat, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	knobs := []stacks.Event{stacks.L1D, stacks.L2D, stacks.MemD, stacks.Branch, stacks.IntMul, stacks.FpAdd, stacks.FpMul}
	pts := make([]stacks.Latencies, npts)
	for i := range pts {
		pts[i] = cfg.Lat
		for _, e := range knobs {
			// Non-integral latencies stress the float64 dot products whose
			// summation order the batch path must reproduce exactly.
			pts[i][e] *= 0.5 + 3*rng.Float64()
		}
	}
	return a, pts
}

// TestBatchPredictorMatchesScalar is the batch-vs-scalar differential for the
// RpStacks engine: for every lane width — one, odd widths that force ragged
// final batches, the autotuner's candidates, and the whole list in one batch
// — BatchPredictor.Predict must reproduce Analysis.Predict with exact float64
// equality (same event order within a stack, same strict-greater winner per
// segment, same segment-order summation), not approximate closeness. Run it
// under -race: predictors share one Analysis.
func TestBatchPredictorMatchesScalar(t *testing.T) {
	a, pts := batchSubstrate(t, "416.gamess", 11, 12000, 100)
	want := make([]float64, len(pts))
	for i := range pts {
		want[i] = a.Predict(&pts[i])
	}
	for _, k := range []int{1, 2, 3, 7, 8, 64, len(pts)} {
		bp := a.NewBatchPredictor(k)
		if bp.Width() != k {
			t.Fatalf("k=%d: Width() = %d", k, bp.Width())
		}
		out := make([]float64, k)
		for lo := 0; lo < len(pts); lo += k {
			hi := lo + k
			if hi > len(pts) {
				hi = len(pts) // ragged final batch
			}
			bp.Predict(pts[lo:hi], out[:hi-lo])
			for i := lo; i < hi; i++ {
				if out[i-lo] != want[i] {
					t.Fatalf("k=%d point %d: batch %v != scalar %v", k, i, out[i-lo], want[i])
				}
			}
		}
	}
}

// TestPredictBatchConvenience checks the allocating one-shot form: a batch
// wider than the point list, the whole list at once, and the empty batch.
func TestPredictBatchConvenience(t *testing.T) {
	a, pts := batchSubstrate(t, "429.mcf", 5, 6000, 7)
	got := a.PredictBatch(pts)
	if len(got) != len(pts) {
		t.Fatalf("PredictBatch returned %d results for %d points", len(got), len(pts))
	}
	for i := range pts {
		if want := a.Predict(&pts[i]); got[i] != want {
			t.Fatalf("point %d: batch %v != scalar %v", i, got[i], want)
		}
	}
	if out := a.PredictBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
	// An oversized predictor evaluating a short batch, then a shorter reuse.
	bp := a.NewBatchPredictor(64)
	out := make([]float64, 64)
	bp.Predict(pts, out[:len(pts)])
	for i := range pts {
		if want := a.Predict(&pts[i]); out[i] != want {
			t.Fatalf("wide predictor, point %d: batch %v != scalar %v", i, out[i], want)
		}
	}
	bp.Predict(pts[5:], out[:2])
	for i, p := 0, 5; p < len(pts); i, p = i+1, p+1 {
		if want := a.Predict(&pts[p]); out[i] != want {
			t.Fatalf("reused predictor, point %d: batch %v != scalar %v", p, out[i], want)
		}
	}
}

// TestBatchPredictorPanics pins the contract violations Predict rejects.
func TestBatchPredictorPanics(t *testing.T) {
	a, pts := batchSubstrate(t, "456.hmmer", 3, 3000, 4)
	bp := a.NewBatchPredictor(2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	out := make([]float64, 4)
	mustPanic("batch wider than K", func() { bp.Predict(pts, out) })
	mustPanic("short output buffer", func() { bp.Predict(pts[:2], out[:1]) })
	if w := a.NewBatchPredictor(-3).Width(); w != 1 {
		t.Errorf("negative lane count resolves to width %d, want 1", w)
	}
}

// TestBatchPredictorAllocFree pins the sweep-engine budget on the RpStacks
// side: once a BatchPredictor exists, re-predicting batches allocates
// nothing.
func TestBatchPredictorAllocFree(t *testing.T) {
	a, pts := batchSubstrate(t, "456.hmmer", 9, 3000, 8)
	bp := a.NewBatchPredictor(len(pts))
	out := make([]float64, len(pts))
	bp.Predict(pts, out) // warm up
	var sink float64
	if n := testing.AllocsPerRun(50, func() {
		bp.Predict(pts, out)
		sink += out[0]
	}); n != 0 {
		t.Errorf("Predict allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		bp.Predict(pts[:3], out[:3])
		sink += out[2]
	}); n != 0 {
		t.Errorf("ragged Predict allocates %.1f per run, want 0", n)
	}
	_ = sink
}
