package store

import (
	"bytes"
	"testing"
	"time"
)

// FuzzStoreManifest drives the manifest decoder with arbitrary bytes. The
// decoder guards the store's trust boundary with the filesystem: a torn
// write, bit rot or a hostile edit must come back as an error — never a
// panic, never an entry set that does not round-trip, and never an
// allocation proportional to a length field the checksum has not vouched
// for.
func FuzzStoreManifest(f *testing.F) {
	// A healthy two-entry manifest.
	var sum [32]byte
	for i := range sum {
		sum[i] = byte(i)
	}
	f.Add(encodeManifest([]entryMeta{
		{Key: "sha256digest|fp", Sum: sum, Size: 4096, Cost: 3 * time.Second, LastUse: 9},
		{Key: "w/416.gamess|seed=42", Sum: sum, Size: 1, Cost: time.Millisecond, LastUse: 2},
	}))
	f.Add(encodeManifest(nil)) // empty store
	f.Add([]byte("RPSTOR"))    // header only, no checksum
	f.Add([]byte("XXSTOR\x01\x00"))
	// Huge declared entry count with no data behind it.
	f.Add(append([]byte("RPSTOR\x01"), 0xff, 0xff, 0xff, 0xff, 0x7f))
	// Valid magic+version, one entry with an oversized key length.
	f.Add(append([]byte("RPSTOR\x01\x01"), 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, raw []byte) {
		entries, err := decodeManifest(raw)
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		// Accepted input must round-trip through the canonical encoding.
		re := encodeManifest(entries)
		back, err := decodeManifest(re)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip changed entry count: %d != %d", len(back), len(entries))
		}
		for i := range entries {
			if back[i] != entries[i] {
				t.Fatalf("entry %d changed across round trip", i)
			}
		}
		if !bytes.Equal(encodeManifest(back), re) {
			t.Fatal("encoding is not canonical")
		}
	})
}
