package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// reopen closes nothing (the store holds no descriptors between calls) and
// opens a fresh Store over the same directory, as a restarted process would.
func reopen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestPutGetRoundTrip checks the basic contract: published bytes come back
// verbatim with their recorded cost, and the hit is counted as saved setup.
func TestPutGetRoundTrip(t *testing.T) {
	s := reopen(t, t.TempDir(), Options{})
	payload := []byte("the artifact bytes")
	if err := s.Put("k1", payload, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got, cost, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the published payload", got, ok)
	}
	if cost != 250*time.Millisecond {
		t.Fatalf("cost = %v, want 250ms", cost)
	}
	st := s.Stats()
	if st.Hits != 1 || st.SavedSetup != 250*time.Millisecond {
		t.Fatalf("stats = %+v; want one hit saving 250ms", st)
	}
	if _, _, ok := s.Get("absent"); ok {
		t.Fatal("absent key reported a hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestRestartDurability is the acceptance core: entries published by one
// Store instance are hits in a fresh instance over the same directory, with
// identical bytes and the original build cost intact, so a restarted
// service re-pays zero setup.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	first := reopen(t, dir, Options{})
	payloads := map[string][]byte{}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("digest-%02d|fp", i)
		payloads[key] = bytes.Repeat([]byte{byte(i)}, 100+i)
		if err := first.Put(key, payloads[key], time.Duration(i+1)*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	second := reopen(t, dir, Options{})
	if second.Len() != len(payloads) {
		t.Fatalf("reopened store has %d entries, want %d", second.Len(), len(payloads))
	}
	for key, want := range payloads {
		got, cost, ok := second.Get(key)
		if !ok {
			t.Fatalf("key %q lost across restart", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %q: payload differs across restart", key)
		}
		if cost <= 0 {
			t.Fatalf("key %q: build cost %v not preserved", key, cost)
		}
	}
	st := second.Stats()
	if st.Hits != uint64(len(payloads)) || st.Corruptions != 0 {
		t.Fatalf("reopened stats = %+v; want %d clean hits", st, len(payloads))
	}
	if st.SavedSetup < 1*time.Second {
		t.Fatalf("saved setup %v across restart; want the recorded costs", st.SavedSetup)
	}
}

// TestCorruptPayloadIsAMiss flips bytes in a published object and checks
// the entry is never served: the read is a miss, the corruption counter
// moves, the entry is dropped, and a re-publish heals it.
func TestCorruptPayloadIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	if err := s.Put("k", []byte("precious"), time.Second); err != nil {
		t.Fatal(err)
	}
	obj := s.objectPath("k")
	if err := os.WriteFile(obj, []byte("precioux"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("corrupted payload served as a hit")
	}
	if st := s.Stats(); st.Corruptions != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v; want the corrupt entry dropped and counted", st)
	}
	// The slot is rebuildable.
	if err := s.Put("k", []byte("precious"), time.Second); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := s.Get("k"); !ok || string(got) != "precious" {
		t.Fatalf("rebuilt entry Get = %q, %v", got, ok)
	}
}

// TestCorruptionSurvivesRestart corrupts an object while the store is
// closed; the reopened store must detect it on read (same size) or at open
// (size change), and never serve the bad bytes.
func TestCorruptionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	if err := s.Put("same-size", []byte("aaaa"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("truncated", []byte("bbbbbbbb"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath("same-size"), []byte("aaab"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath("truncated"), []byte("bb"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir, Options{})
	if _, _, ok := r.Get("same-size"); ok {
		t.Fatal("same-size corruption served after restart")
	}
	if _, _, ok := r.Get("truncated"); ok {
		t.Fatal("truncated object served after restart")
	}
	if st := r.Stats(); st.Corruptions == 0 {
		t.Fatalf("stats = %+v; corruption went uncounted", st)
	}
}

// TestCorruptManifestDegradesToEmpty overwrites the manifest with garbage:
// the store must open empty (counting the corruption) rather than fail or
// trust the bytes, and must sweep the now-orphaned objects.
func TestCorruptManifestDegradesToEmpty(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	if err := s.Put("k", []byte("payload"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.manifestPath(), []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := reopen(t, dir, Options{})
	if r.Len() != 0 {
		t.Fatalf("store built from garbage manifest has %d entries", r.Len())
	}
	if st := r.Stats(); st.Corruptions != 1 {
		t.Fatalf("stats = %+v; want the manifest corruption counted", st)
	}
	des, err := os.ReadDir(filepath.Join(dir, objectsSub))
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("%d orphaned objects not swept", len(des))
	}
}

// TestCapacityGC publishes past MaxBytes and checks LRU eviction: the
// least-recently-used entries go first, the byte budget holds, and the
// evicted keys read as misses while survivors stay intact.
func TestCapacityGC(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{MaxBytes: 250})
	pay := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 100) }
	for i := 0; i < 2; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), pay(i), time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 is the LRU victim when k2 arrives.
	if _, _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing before GC")
	}
	if err := s.Put("k2", pay(2), time.Second); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes > 250 {
		t.Fatalf("stats = %+v; want one eviction within the byte budget", st)
	}
	if _, _, ok := s.Get("k1"); ok {
		t.Fatal("LRU entry k1 survived GC")
	}
	for _, k := range []string{"k0", "k2"} {
		if got, _, ok := s.Get(k); !ok || !bytes.Equal(got, pay(int(k[1]-'0'))) {
			t.Fatalf("survivor %s damaged by GC", k)
		}
	}
	// The bound also holds across a restart (Open re-runs GC).
	r := reopen(t, dir, Options{MaxBytes: 100})
	if st := r.Stats(); st.Bytes > 100 || st.Entries != 1 {
		t.Fatalf("reopened under a tighter bound: %+v", st)
	}
}

// TestOversizedEntryOvershootsOnce checks the no-thrash rule: a payload
// larger than MaxBytes is kept (the newest entry is never evicted) while
// everything else is evicted.
func TestOversizedEntryOvershootsOnce(t *testing.T) {
	s := reopen(t, t.TempDir(), Options{MaxBytes: 50})
	if err := s.Put("small", []byte("xy"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("huge", bytes.Repeat([]byte{1}, 200), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("huge"); !ok {
		t.Fatal("oversized entry evicted itself")
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("stats = %+v; want only the oversized entry", st)
	}
}

// TestStaleTempsSweptOnOpen plants leftover temp files (a crashed
// publication) and checks Open removes them.
func TestStaleTempsSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	reopen(t, dir, Options{})
	stale := filepath.Join(dir, tmpSub, "obj-stale")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopen(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}

// TestReplaceKey republishes a key and checks the new bytes win and the
// byte accounting does not double-count.
func TestReplaceKey(t *testing.T) {
	s := reopen(t, t.TempDir(), Options{})
	if err := s.Put("k", []byte("old-old-old"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("new"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	got, cost, ok := s.Get("k")
	if !ok || string(got) != "new" || cost != 2*time.Second {
		t.Fatalf("Get = %q, %v, %v; want the replacement", got, cost, ok)
	}
	if st := s.Stats(); st.Bytes != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 3 bytes in 1 entry", st)
	}
}

// TestDeleteCountsCorruption checks the tier-above escape hatch: Delete
// drops the entry and counts it as a corruption (its only caller is the
// decode-failure path).
func TestDeleteCountsCorruption(t *testing.T) {
	s := reopen(t, t.TempDir(), Options{})
	if err := s.Put("k", []byte("stale codec"), time.Second); err != nil {
		t.Fatal(err)
	}
	s.Delete("k")
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("deleted key still serves")
	}
	if st := s.Stats(); st.Corruptions != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v; want the delete counted as corruption", st)
	}
	s.Delete("k") // deleting an absent key is a no-op
}

// TestPutRejectsBadKeys covers the key validation paths.
func TestPutRejectsBadKeys(t *testing.T) {
	s := reopen(t, t.TempDir(), Options{})
	if err := s.Put("", []byte("x"), 0); err == nil {
		t.Fatal("empty key accepted")
	}
	long := string(bytes.Repeat([]byte{'k'}, maxKeyLen+1))
	if err := s.Put(long, []byte("x"), 0); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// TestConcurrentPutGet hammers the store from many goroutines under -race:
// every published payload must read back intact, and the final state must
// reopen cleanly.
func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{MaxBytes: 1 << 20})
	const workers, keys = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("k%d", (w+i)%keys)
				want := bytes.Repeat([]byte{byte((w + i) % keys)}, 64)
				if i%3 == 0 {
					if err := s.Put(k, want, time.Millisecond); err != nil {
						t.Errorf("Put(%s): %v", k, err)
						return
					}
				} else if got, _, ok := s.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("Get(%s) returned foreign bytes", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	r := reopen(t, dir, Options{})
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		if got, _, ok := r.Get(k); ok && !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("reopened %s holds foreign bytes", k)
		}
	}
}

// TestManifestRoundTrip pins the codec contract the fuzz target explores:
// encode→decode is the identity, and the encoding is canonical.
func TestManifestRoundTrip(t *testing.T) {
	entries := []entryMeta{
		{Key: "a", Size: 1, Cost: time.Second, LastUse: 7},
		{Key: "b|fingerprint", Size: 1 << 30, Cost: time.Hour, LastUse: 1},
	}
	for i := range entries {
		for j := range entries[i].Sum {
			entries[i].Sum[j] = byte(i*31 + j)
		}
	}
	raw := encodeManifest(entries)
	got, err := decodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
	if !bytes.Equal(encodeManifest(got), raw) {
		t.Fatal("re-encoding is not canonical")
	}
	// Flipping any byte must be caught by the self-checksum.
	for _, i := range []int{0, len(raw) / 2, len(raw) - 1} {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x40
		if _, err := decodeManifest(bad); err == nil {
			t.Fatalf("byte %d flipped yet manifest decoded", i)
		}
	}
	if _, err := decodeManifest(raw[:len(raw)-5]); err == nil {
		t.Fatal("truncated manifest decoded")
	}
}

// TestPutDuplicateIdempotent: re-publishing a key with byte-identical
// payload is a cheap in-memory no-op — no object rewrite, no manifest
// rewrite, and (beyond hashing the payload) no allocation. This is what
// makes concurrent artifact publication and fleet double-completion cheap.
func TestPutDuplicateIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir, Options{})
	payload := bytes.Repeat([]byte("p"), 8192)
	if err := s.Put("dup-key", payload, time.Second); err != nil {
		t.Fatal(err)
	}
	objBefore, err := os.Stat(s.objectPath("dup-key"))
	if err != nil {
		t.Fatal(err)
	}
	manBefore, err := os.Stat(s.manifestPath())
	if err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Put("dup-key", payload, time.Second); err != nil {
			t.Fatal(err)
		}
	})
	// The fast path is a hash, a lock and a map probe; allow a stray alloc
	// for run-to-run noise but reject anything resembling an encode+write.
	if allocs > 1 {
		t.Errorf("duplicate Put allocates %.0f objects per run, want <= 1", allocs)
	}

	objAfter, err := os.Stat(s.objectPath("dup-key"))
	if err != nil {
		t.Fatal(err)
	}
	manAfter, err := os.Stat(s.manifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if !objAfter.ModTime().Equal(objBefore.ModTime()) {
		t.Error("duplicate Put rewrote the object file")
	}
	if !manAfter.ModTime().Equal(manBefore.ModTime()) {
		t.Error("duplicate Put rewrote the manifest")
	}

	// A changed payload under the same key still replaces.
	if err := s.Put("dup-key", []byte("different"), time.Second); err != nil {
		t.Fatal(err)
	}
	got, _, ok := s.Get("dup-key")
	if !ok || string(got) != "different" {
		t.Fatalf("Get after replace = %q, %v", got, ok)
	}
	// And the duplicate fast-path survives a restart (the manifest persists
	// the payload digest).
	s2 := reopen(t, dir, Options{})
	objBefore2, err := os.Stat(s2.objectPath("dup-key"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put("dup-key", []byte("different"), time.Second); err != nil {
		t.Fatal(err)
	}
	objAfter2, err := os.Stat(s2.objectPath("dup-key"))
	if err != nil {
		t.Fatal(err)
	}
	if !objAfter2.ModTime().Equal(objBefore2.ModTime()) {
		t.Error("restarted duplicate Put rewrote the object file")
	}
}
