package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// shared_test.go — the fleet's cross-process blob root: round-trip,
// idempotent duplicate publication (no rewrite, no allocation storm),
// replacement, and corruption quarantine.

func openShared(t *testing.T, dir string) *Shared {
	t.Helper()
	s, err := OpenShared(dir)
	if err != nil {
		t.Fatalf("OpenShared(%s): %v", dir, err)
	}
	return s
}

func TestSharedRoundTrip(t *testing.T) {
	s := openShared(t, t.TempDir())
	payload := []byte("chunk result bytes")
	dup, err := s.Put("fleet|abc|chunk-000001", payload)
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Fatal("first Put reported dup")
	}
	got, ok := s.Get("fleet|abc|chunk-000001")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the published payload", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent key reported a hit")
	}
	if st := s.Stats(); st.Puts != 1 || st.Duplicates != 0 {
		t.Fatalf("stats = %+v, want exactly one real put", st)
	}
}

// TestSharedDuplicatePutIsNoOp is the work-stealing double-publication path:
// the second identical Put must not rewrite the object file (mtime and inode
// content untouched) and must report dup.
func TestSharedDuplicatePutIsNoOp(t *testing.T) {
	s := openShared(t, t.TempDir())
	payload := bytes.Repeat([]byte("x"), 4096)
	if _, err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("k")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := s.Put("k", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Fatal("identical re-Put did not report dup")
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatalf("duplicate Put rewrote the object: mtime %v -> %v", before.ModTime(), after.ModTime())
	}
	if st := s.Stats(); st.Puts != 1 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want one put and one duplicate", st)
	}
	// A cross-process duplicate publisher keeps its own counters but the
	// file outcome is the same: untouched.
	other := openShared(t, s.dir)
	if dup, err := other.Put("k", payload); err != nil || !dup {
		t.Fatalf("second process Put = dup %v, %v; want a dedup", dup, err)
	}
	final, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !final.ModTime().Equal(before.ModTime()) {
		t.Fatal("cross-process duplicate Put rewrote the object")
	}
}

func TestSharedReplaceDifferentPayload(t *testing.T) {
	s := openShared(t, t.TempDir())
	if _, err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	dup, err := s.Put("k", []byte("newer bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Fatal("different payload reported dup")
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "newer bytes" {
		t.Fatalf("Get = %q, %v after replace", got, ok)
	}
}

func TestSharedCorruptionIsQuarantined(t *testing.T) {
	s := openShared(t, t.TempDir())
	if _, err := s.Put("k", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt payload reported a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt object not removed: %v", err)
	}
	if st := s.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", st.Corruptions)
	}
	// Truncation below the header is the same corruption path.
	if _, err := s.Put("k2", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(s.objectPath("k2"), 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k2"); ok {
		t.Fatal("truncated payload reported a hit")
	}
}

func TestSharedDelete(t *testing.T) {
	s := openShared(t, t.TempDir())
	if _, err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key reported a hit")
	}
	s.Delete("k") // deleting a missing key is quiet
}

func TestSharedSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	openShared(t, dir)
	stale := filepath.Join(dir, tmpSub, "obj-stale")
	if err := os.WriteFile(stale, []byte("crashed publication"), 0o644); err != nil {
		t.Fatal(err)
	}
	openShared(t, dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp survived reopen")
	}
}

func TestSharedKeyValidation(t *testing.T) {
	s := openShared(t, t.TempDir())
	if _, err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	long := string(bytes.Repeat([]byte("k"), maxKeyLen+1))
	if _, err := s.Put(long, []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// TestSharedObjectLayout pins the on-disk format: 32-byte payload digest
// header, then the payload, at objects/hex(sha256(key)) — the addressing
// Store uses, so the two layouts stay mutually intelligible.
func TestSharedObjectLayout(t *testing.T) {
	s := openShared(t, t.TempDir())
	payload := []byte("layout check")
	if _, err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	keySum := sha256.Sum256([]byte("k"))
	path := filepath.Join(s.dir, objectsSub, hex.EncodeToString(keySum[:]))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("object not at the addressed path: %v", err)
	}
	paySum := sha256.Sum256(payload)
	if !bytes.Equal(raw[:sha256.Size], paySum[:]) || !bytes.Equal(raw[sha256.Size:], payload) {
		t.Fatal("object layout is not digest||payload")
	}
}
