package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// shared.go — the fleet's cross-process blob root. Store (store.go) is
// documented single-process: its manifest is rewritten on every mutation, so
// two processes over one directory would tear each other's index. The fleet
// needs the opposite shape — one directory written by a coordinator and any
// number of worker processes on the same host — so Shared keeps no manifest
// and no cross-entry state at all: every object is one self-verifying file
// (a 32-byte SHA-256 of the payload, then the payload) published by atomic
// temp-write + sync + rename. Concurrent publishers of the same key with the
// same payload converge on identical bytes; readers verify every payload and
// drop what fails. Give Shared its own directory (conventionally a `fleet/`
// subdirectory next to a Store root): pointing it at a Store's directory
// would let Store's orphan sweep delete Shared's objects.

// Shared is a manifest-free, cross-process content-verified blob root.
// Construct with OpenShared.
type Shared struct {
	dir string

	puts, dupes, corruptions atomic.Uint64
}

// OpenShared initializes (or reopens) the shared root at dir. Stale
// temporaries from crashed publications are swept; published objects are
// never touched, because another live process may own them.
func OpenShared(dir string) (*Shared, error) {
	for _, sub := range []string{objectsSub, tmpSub} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: creating shared %s: %w", sub, err)
		}
	}
	s := &Shared{dir: dir}
	// Unlike Store's startup, temporaries are only swept best-effort: a
	// concurrent publisher's in-flight temp file may vanish under it, which
	// its rename reports; callers retry. Single-host fleets restart their
	// coordinator far more often than they race it, so the trade is fine.
	if tmps, err := os.ReadDir(filepath.Join(dir, tmpSub)); err == nil {
		for _, de := range tmps {
			_ = os.Remove(filepath.Join(dir, tmpSub, de.Name()))
		}
	}
	return s, nil
}

// objectPath addresses one key's payload file: objects/<sha256(key)>, the
// same addressing discipline as Store.
func (s *Shared) objectPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, objectsSub, hex.EncodeToString(sum[:]))
}

// Put publishes payload under key, atomically and idempotently. When the key
// is already published with the same payload digest and size, Put is a cheap
// no-op that never rewrites the file — the work-stealing double-completion
// path, where two workers publish identical bytes — and reports dup=true.
// A different payload under the same key is replaced.
func (s *Shared) Put(key string, payload []byte) (dup bool, err error) {
	if key == "" {
		return false, fmt.Errorf("store: empty key")
	}
	if len(key) > maxKeyLen {
		return false, fmt.Errorf("store: key length %d exceeds %d", len(key), maxKeyLen)
	}
	sum := sha256.Sum256(payload)
	path := s.objectPath(key)
	if f, oerr := os.Open(path); oerr == nil {
		var have [sha256.Size]byte
		_, rerr := io.ReadFull(f, have[:])
		fi, serr := f.Stat()
		_ = f.Close()
		if rerr == nil && serr == nil && have == sum &&
			fi.Size() == int64(sha256.Size+len(payload)) {
			s.dupes.Add(1)
			return true, nil
		}
	}

	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpSub), "obj-*")
	if err != nil {
		return false, fmt.Errorf("store: creating shared temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err = tmp.Write(sum[:]); err == nil {
		if _, err = tmp.Write(payload); err == nil {
			err = tmp.Sync()
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return false, fmt.Errorf("store: writing shared object: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return false, fmt.Errorf("store: publishing shared object: %w", err)
	}
	s.puts.Add(1)
	return false, nil
}

// Get returns the verified payload published under key. A missing key is a
// plain miss; a truncated or checksum-mismatching file is corruption — the
// file is removed so the next publisher rebuilds it — also reported as a
// miss.
func (s *Shared) Get(key string) ([]byte, bool) {
	path := s.objectPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(raw) >= sha256.Size {
		payload := raw[sha256.Size:]
		if sha256.Sum256(payload) == [sha256.Size]byte(raw[:sha256.Size]) {
			return payload, true
		}
	}
	s.corruptions.Add(1)
	_ = os.Remove(path)
	return nil, false
}

// Delete removes key if present. Used by the coordinator after a sweep's
// report is assembled: the chunk blobs were only ever its resume state.
func (s *Shared) Delete(key string) {
	_ = os.Remove(s.objectPath(key))
}

// SharedStats is a point-in-time snapshot of one process's counters; other
// processes over the same directory keep their own.
type SharedStats struct {
	Puts        uint64 // objects actually written
	Duplicates  uint64 // Put calls satisfied without a rewrite
	Corruptions uint64 // payloads dropped on verification failure
}

// Stats snapshots the counters.
func (s *Shared) Stats() SharedStats {
	return SharedStats{
		Puts:        s.puts.Load(),
		Duplicates:  s.dupes.Load(),
		Corruptions: s.corruptions.Load(),
	}
}
