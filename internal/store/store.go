// Package store provides the durable tier of the exploration service's
// artifact cache: an on-disk, content-addressed blob store that survives
// process restarts, so the expensive simulate/analyze setup the paper
// amortizes across design-point queries is also amortized across service
// lifetimes. A killed or restarted rpserved reopens its store directory and
// immediately serves cache hits for every trace it has ever analyzed.
//
// Guarantees:
//   - publication is atomic: payloads are written to a temporary file,
//     synced, and renamed into place, then the manifest is rewritten the
//     same way — a crash at any instant leaves either the old or the new
//     state, never a torn entry;
//   - corruption is detected, never served: every payload carries a SHA-256
//     checksum verified on read, and a mismatching or unreadable entry is
//     dropped and reported as a miss so the caller rebuilds it;
//   - capacity is bounded: beyond MaxBytes the least-recently-used entries
//     are evicted (files deleted, manifest rewritten);
//   - the store is safe for concurrent use by one process. Cross-process
//     sharing of one directory is not supported.
//
// The store holds opaque bytes. Concurrency deduplication (single-flight)
// and typed encode/decode live one layer up, in serve/cache.Tiered.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options parameterizes Open.
type Options struct {
	// MaxBytes bounds the total payload bytes kept on disk; beyond it the
	// least-recently-used entries are evicted. Non-positive means unbounded.
	MaxBytes int64
	// Logger receives structured warnings for the events an operator should
	// see — corrupt entries dropped, manifest damage, evictions. Nil
	// discards.
	Logger *slog.Logger
	// Tracer, when non-nil, records store activity as spans: read and
	// verify per Get, evict per garbage-collected entry. Nil records
	// nothing.
	Tracer *obs.Tracer
}

// Store is an on-disk content-addressed blob store. Construct with Open.
type Store struct {
	dir      string
	maxBytes int64
	logger   *slog.Logger
	tracer   *obs.Tracer

	mu      sync.Mutex
	entries map[string]*entryMeta
	bytes   int64
	tick    uint64

	hits, misses, corruptions, evictions atomic.Uint64
	savedNS                              atomic.Int64
}

// Open loads (or initializes) the store rooted at dir. An existing manifest
// is read and verified: if it is missing, truncated or corrupt the store
// starts empty, and entries whose object files have vanished or changed
// size are dropped. Orphaned object files (present on disk, absent from the
// index) are removed, so a crash between payload publication and manifest
// rewrite cannot leak disk space.
func Open(dir string, opts Options) (*Store, error) {
	for _, sub := range []string{objectsSub, tmpSub} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", sub, err)
		}
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Store{dir: dir, maxBytes: opts.MaxBytes, logger: logger, tracer: opts.Tracer,
		entries: make(map[string]*entryMeta)}

	if raw, err := os.ReadFile(s.manifestPath()); err == nil {
		metas, derr := decodeManifest(raw)
		if derr != nil {
			// A torn or rotted manifest degrades to an empty index; the
			// objects it described are swept as orphans below.
			s.corruptions.Add(1)
			s.logger.Warn("store: manifest corrupt, starting with an empty index",
				slog.String("dir", dir), slog.String("error", derr.Error()))
		} else {
			for i := range metas {
				e := metas[i]
				fi, serr := os.Stat(s.objectPath(e.Key))
				if serr != nil || fi.Size() != e.Size {
					// The object vanished or was truncated behind our back;
					// drop the entry rather than fail reads later.
					if serr == nil {
						s.corruptions.Add(1)
						s.logger.Warn("store: dropping entry with truncated object",
							slog.String("key", e.Key),
							slog.Int64("manifest_size", e.Size),
							slog.Int64("object_size", fi.Size()))
					}
					continue
				}
				if e.LastUse > s.tick {
					s.tick = e.LastUse
				}
				ec := e
				s.entries[e.Key] = &ec
				s.bytes += e.Size
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}

	s.sweepOrphans()
	// Stale temporaries from a crashed publication are plain garbage.
	if tmps, err := os.ReadDir(filepath.Join(dir, tmpSub)); err == nil {
		for _, de := range tmps {
			_ = os.Remove(filepath.Join(dir, tmpSub, de.Name()))
		}
	}
	s.mu.Lock()
	s.gcLocked()
	s.mu.Unlock()
	return s, nil
}

const (
	objectsSub   = "objects"
	tmpSub       = "tmp"
	manifestName = "MANIFEST"
)

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestName) }

// objectPath addresses the payload file of one key: objects/<sha256(key)>.
// Hashing the key keeps arbitrary key strings out of the filesystem
// namespace.
func (s *Store) objectPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, objectsSub, hex.EncodeToString(sum[:]))
}

// sweepOrphans removes object files the index does not reference.
func (s *Store) sweepOrphans() {
	known := make(map[string]bool, len(s.entries))
	for key := range s.entries {
		known[filepath.Base(s.objectPath(key))] = true
	}
	des, err := os.ReadDir(filepath.Join(s.dir, objectsSub))
	if err != nil {
		return
	}
	for _, de := range des {
		if !known[de.Name()] {
			_ = os.Remove(filepath.Join(s.dir, objectsSub, de.Name()))
		}
	}
}

// Get returns the payload published under key, its recorded build cost and
// true on a hit. A missing key is a miss; an unreadable or
// checksum-mismatching payload is corruption — the entry is dropped, the
// corruption counter bumped, and the call reports a miss so the caller
// rebuilds and republishes. Every hit adds the entry's recorded build cost
// to the saved-setup counter: that cost is exactly what the caller did not
// re-pay.
func (s *Store) Get(key string) ([]byte, time.Duration, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, 0, false
	}
	s.tick++
	e.LastUse = s.tick
	path, wantSum, cost := s.objectPath(key), e.Sum, e.Cost
	s.mu.Unlock()

	rd := s.tracer.Start(obs.CatStore, "read")
	rd.SetDetail(key)
	raw, err := os.ReadFile(path)
	rd.SetArg("bytes", int64(len(raw)))
	rd.End()
	if err == nil {
		vf := s.tracer.Start(obs.CatStore, "verify")
		vf.SetDetail(key)
		sum := sha256.Sum256(raw)
		match := sum == wantSum
		vf.End()
		if match {
			s.hits.Add(1)
			s.savedNS.Add(int64(cost))
			return raw, cost, true
		}
	}
	// Unreadable or rotted: drop the entry so the next Put can rebuild it.
	// The caller only sees a miss, so the warning is the one place the
	// damage is visible.
	s.corruptions.Add(1)
	s.logger.Warn("store: dropping corrupt entry, reporting miss",
		slog.String("key", key), slog.Bool("unreadable", err != nil))
	s.mu.Lock()
	s.dropLocked(key)
	s.flushLocked()
	s.mu.Unlock()
	return nil, 0, false
}

// Put publishes payload under key with its build cost, atomically:
// write-to-temp, sync, rename, then manifest rewrite (same discipline).
// Re-publishing an existing key replaces it — unless the payload is
// byte-identical to what the index already records (same digest and size),
// in which case Put is a cheap idempotent no-op: the entry's recency is
// bumped in memory, but neither the object file nor the manifest is
// rewritten. That is the duplicate-publication path a fleet's work-stealing
// double completion takes. Put never leaves a partially visible entry; on
// error the store's prior state is intact.
func (s *Store) Put(key string, payload []byte, cost time.Duration) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d exceeds %d", len(key), maxKeyLen)
	}
	sum := sha256.Sum256(payload)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok && e.Sum == sum && e.Size == int64(len(payload)) {
		s.tick++
		e.LastUse = s.tick
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpSub), "obj-*")
	if err != nil {
		return fmt.Errorf("store: creating temp object: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(payload); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: writing object: %w", err)
	}
	if err := os.Rename(tmpName, s.objectPath(key)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: publishing object: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.Size
	}
	s.tick++
	s.entries[key] = &entryMeta{
		Key:     key,
		Sum:     sum,
		Size:    int64(len(payload)),
		Cost:    cost,
		LastUse: s.tick,
	}
	s.bytes += int64(len(payload))
	s.gcLocked()
	return s.flushLocked()
}

// Delete removes key if present. Used by the tier above when a payload
// decodes to garbage despite a clean checksum (a codec version change):
// the entry is treated as corrupt and rebuilt.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	if _, ok := s.entries[key]; ok {
		s.corruptions.Add(1)
		s.dropLocked(key)
		_ = s.flushLocked()
	}
	s.mu.Unlock()
}

// dropLocked removes an entry and its object file. Called with mu held.
func (s *Store) dropLocked(key string) {
	if e, ok := s.entries[key]; ok {
		s.bytes -= e.Size
		delete(s.entries, key)
		_ = os.Remove(s.objectPath(key))
	}
}

// gcLocked evicts least-recently-used entries until the store fits
// MaxBytes. The newest entry is never evicted: one oversized artifact may
// transiently overshoot the bound rather than thrash (publish, evict,
// rebuild, publish...). Called with mu held.
func (s *Store) gcLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && len(s.entries) > 1 {
		var victim *entryMeta
		for _, e := range s.entries {
			if e.LastUse == s.tick {
				continue // the entry just published or touched
			}
			if victim == nil || e.LastUse < victim.LastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		key, size := victim.Key, victim.Size
		ev := s.tracer.Start(obs.CatStore, "evict")
		ev.SetDetail(key)
		ev.SetArg("bytes", size)
		s.dropLocked(key)
		ev.End()
		s.evictions.Add(1)
		s.logger.Warn("store: evicted least-recently-used entry",
			slog.String("key", key),
			slog.Int64("bytes", size),
			slog.Int64("store_bytes", s.bytes),
			slog.Int64("max_bytes", s.maxBytes))
	}
}

// flushLocked rewrites the manifest atomically. Called with mu held.
func (s *Store) flushLocked() error {
	metas := make([]entryMeta, 0, len(s.entries))
	for _, e := range s.entries {
		metas = append(metas, *e)
	}
	// Canonical order keeps the manifest bytes deterministic for a given
	// state, which the fuzz round-trip relies on.
	sort.Slice(metas, func(i, j int) bool { return metas[i].Key < metas[j].Key })
	raw := encodeManifest(metas)

	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpSub), "manifest-*")
	if err != nil {
		return fmt.Errorf("store: creating temp manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := os.Rename(tmpName, s.manifestPath()); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: publishing manifest: %w", err)
	}
	return nil
}

// Len returns the number of published entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats is a point-in-time snapshot of the store's state and counters.
type Stats struct {
	Entries     int
	Bytes       int64
	Hits        uint64
	Misses      uint64
	Corruptions uint64
	Evictions   uint64
	// SavedSetup accumulates the recorded build cost of every hit: the
	// setup time this process avoided re-paying thanks to the durable tier
	// (including work done by previous processes over the same directory).
	SavedSetup time.Duration
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Stats{
		Entries:     entries,
		Bytes:       bytes,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corruptions: s.corruptions.Load(),
		Evictions:   s.evictions.Load(),
		SavedSetup:  time.Duration(s.savedNS.Load()),
	}
}
