package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// manifest.go — the store's index codec. The manifest is the single source
// of truth for what the store believes it holds: one record per published
// object (key, payload checksum, size, recorded build cost, recency tick).
// It is versioned, length-prefixed and self-checksummed, so a torn write or
// bit rot is detected on open and degrades to an empty (rebuildable) index
// instead of serving wrong artifacts. The decoder must survive arbitrary
// bytes: it returns errors, never panics, and never allocates proportionally
// to untrusted length fields (FuzzStoreManifest enforces this).

const (
	manifestMagic   = "RPSTOR"
	manifestVersion = 1

	// maxKeyLen bounds one entry's key; store keys are digest+fingerprint
	// strings, far below this.
	maxKeyLen = 4096
	// maxManifestEntries bounds the entry count a decoder will accept.
	maxManifestEntries = 1 << 22
)

// entryMeta is one manifest record: the durable metadata of one published
// object. Payload bytes live in the object file named by the entry key's
// address; Sum is the SHA-256 of those bytes and is re-verified on every
// read.
type entryMeta struct {
	Key     string
	Sum     [sha256.Size]byte
	Size    int64
	Cost    time.Duration // build cost a future hit avoids re-paying
	LastUse uint64        // recency tick for LRU eviction, as of the last flush
}

// encodeManifest renders the entries in the canonical binary form:
// header, count, records, then a SHA-256 of everything before it.
func encodeManifest(entries []entryMeta) []byte {
	var body bytes.Buffer
	body.WriteString(manifestMagic)
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		body.Write(scratch[:n])
	}
	putU(manifestVersion)
	putU(uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		putU(uint64(len(e.Key)))
		body.WriteString(e.Key)
		body.Write(e.Sum[:])
		putU(uint64(e.Size))
		putU(uint64(e.Cost))
		putU(e.LastUse)
	}
	sum := sha256.Sum256(body.Bytes())
	body.Write(sum[:])
	return body.Bytes()
}

// decodeManifest parses a manifest produced by encodeManifest. Any
// truncation, bad magic, unsupported version, oversized field or checksum
// mismatch is an error; the caller treats an undecodable manifest as an
// empty store, not as data.
func decodeManifest(raw []byte) ([]entryMeta, error) {
	if len(raw) < len(manifestMagic)+sha256.Size {
		return nil, fmt.Errorf("store: manifest too short (%d bytes)", len(raw))
	}
	body, tail := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, fmt.Errorf("store: manifest checksum mismatch")
	}
	br := bufio.NewReader(bytes.NewReader(body))
	head := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: reading manifest header: %w", err)
	}
	if string(head) != manifestMagic {
		return nil, fmt.Errorf("store: bad manifest magic %q", head)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest version: %w", err)
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading entry count: %w", err)
	}
	if count > maxManifestEntries {
		return nil, fmt.Errorf("store: entry count %d exceeds limit", count)
	}
	// The count is already proven honest by the whole-file checksum, but the
	// capacity hint is still clamped so a decoder variant without the
	// checksum (or a future partial reader) cannot be made to over-allocate.
	capHint := count
	if capHint > 1<<12 {
		capHint = 1 << 12
	}
	entries := make([]entryMeta, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var e entryMeta
		klen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: entry %d: reading key length: %w", i, err)
		}
		if klen > maxKeyLen {
			return nil, fmt.Errorf("store: entry %d: key length %d exceeds limit", i, klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, fmt.Errorf("store: entry %d: reading key: %w", i, err)
		}
		e.Key = string(key)
		if _, err := io.ReadFull(br, e.Sum[:]); err != nil {
			return nil, fmt.Errorf("store: entry %d: reading checksum: %w", i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: entry %d: reading size: %w", i, err)
		}
		if size > 1<<62 {
			return nil, fmt.Errorf("store: entry %d: size %d exceeds limit", i, size)
		}
		e.Size = int64(size)
		cost, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: entry %d: reading cost: %w", i, err)
		}
		if cost > 1<<62 {
			return nil, fmt.Errorf("store: entry %d: cost %d exceeds limit", i, cost)
		}
		e.Cost = time.Duration(cost)
		if e.LastUse, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("store: entry %d: reading recency: %w", i, err)
		}
		entries = append(entries, e)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("store: trailing bytes after %d entries", count)
	}
	return entries, nil
}
