package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/dse"
	"repro/internal/trace"
	"repro/internal/workload"
)

// engineNames are the sweep engines a job may request, in render order.
var engineNames = []string{"rpstacks", "graph", "sim"}

// Limits bounds what one job request may ask of the service, and carries
// the defaults applied to omitted fields. Every bound is enforced by
// ParseJobRequest before a job touches the queue, mirroring the
// capped-allocation stance of trace.Read: malformed or absurd requests are
// rejected with an error, never absorbed as unbounded work or memory.
type Limits struct {
	// MaxBodyBytes bounds the request body (the trace upload dominates).
	MaxBodyBytes int64
	// MaxGridPoints bounds the full-factorial design-space size.
	MaxGridPoints int
	// MaxAxes bounds the number of latency axes.
	MaxAxes int
	// MaxAxisValues bounds the candidate values on one axis.
	MaxAxisValues int
	// MaxMicroOps bounds the measured µops of a named-workload simulation.
	MaxMicroOps int
	// MaxTraceBytes bounds the decoded size of an uploaded trace.
	MaxTraceBytes int
	// MaxTop bounds how many ranked results one job may return.
	MaxTop int
	// MaxTimeout and DefaultTimeout bound and default the per-job deadline.
	MaxTimeout     time.Duration
	DefaultTimeout time.Duration
	// MaxParallelism bounds the per-job sweep worker count; DefaultParallelism
	// is used when the request leaves it zero.
	MaxParallelism     int
	DefaultParallelism int
	// MaxBatchSize bounds an explicit batch_size: the lane count of the
	// batched evaluator scratch every sweep worker allocates. Zero in a
	// request autotunes within the engines' own memory caps, so only explicit
	// widths need a ceiling.
	MaxBatchSize int
	// DefaultTop and DefaultMicroOps fill omitted request fields.
	DefaultTop      int
	DefaultMicroOps int
	// MaxAuditPoints caps how many design points one job's shadow audit may
	// re-simulate, whatever audit_fraction asks for — ground truth costs a
	// full simulation per point, so the fraction alone is not a bound.
	MaxAuditPoints int
}

// DefaultLimits returns the service defaults.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes:       8 << 20,
		MaxGridPoints:      1 << 20,
		MaxAxes:            8,
		MaxAxisValues:      64,
		MaxMicroOps:        200_000,
		MaxTraceBytes:      64 << 20,
		MaxTop:             1000,
		MaxTimeout:         10 * time.Minute,
		DefaultTimeout:     2 * time.Minute,
		MaxParallelism:     256,
		DefaultParallelism: 0, // Server.New fills this from its Config
		MaxBatchSize:       1024,
		DefaultTop:         10,
		DefaultMicroOps:    20_000,
		MaxAuditPoints:     64,
	}
}

// JobRequest is the submission body of POST /jobs. Exactly one of Workload
// and TraceB64 names the subject: a built-in synthetic workload to simulate,
// or an uploaded RPTRC trace (base64 of the cmd/rptrace binary format).
// Axes use the same textual form as cmd/rpexplore's -axis flag.
type JobRequest struct {
	Workload    string   `json:"workload,omitempty"`
	TraceB64    string   `json:"trace_b64,omitempty"`
	Axes        []string `json:"axes"`
	Engine      string   `json:"engine,omitempty"`      // rpstacks (default), graph or sim
	TargetCPI   float64  `json:"target_cpi,omitempty"`  // 0: rank everything
	Top         int      `json:"top,omitempty"`         // ranked results to return
	MicroOps    int      `json:"micro_ops,omitempty"`   // workload jobs: measured µops
	Seed        int64    `json:"seed,omitempty"`        // workload jobs: generator seed
	Parallelism int      `json:"parallelism,omitempty"` // sweep workers
	BatchSize   int      `json:"batch_size,omitempty"`  // design points per model pass (0: autotuned, 1: scalar; rpstacks/graph only)
	TimeoutMS   int64    `json:"timeout_ms,omitempty"`  // per-job deadline

	// AuditFraction enables the shadow accuracy audit: the share of the
	// design grid whose ground truth is re-simulated and scored against the
	// sweep's predictions (0: off, 1: every point, subject to
	// Limits.MaxAuditPoints). Named-workload rpstacks/graph jobs only.
	AuditFraction float64 `json:"audit_fraction,omitempty"`
	// AuditSeed varies the deterministic point sample.
	AuditSeed uint64 `json:"audit_seed,omitempty"`
	// AuditDriftPct overrides the per-point error threshold (percent)
	// beyond which the job's audit status flips to drift (0: the default).
	AuditDriftPct float64 `json:"audit_drift_pct,omitempty"`

	// Search switches the job from an exhaustive sweep to a guided search,
	// in the compact textual form shared with cmd/rpexplore's -search flag:
	// "halving", "pareto;rounds=40", "target;cpi=0.55;cost=L1D:2,...". A
	// search job probes design points lazily, so its grid may exceed
	// MaxGridPoints — the axes are still bounded per-axis, and every
	// returned optimum is verified online against an audit oracle (making
	// audit_fraction redundant and rejected). A target-mode search with no
	// cpi key borrows target_cpi.
	Search string `json:"search,omitempty"`
}

// JobSpec is the validated, executable form of a JobRequest.
type JobSpec struct {
	Workload    string
	Trace       *trace.Trace // non-nil for uploaded-trace jobs
	TraceDigest string       // content address; filled at parse time for uploads
	Space       dse.Space
	GridSize    int
	Engine      string
	TargetCPI   float64
	Top         int
	MicroOps    int
	Seed        int64
	Parallelism int
	BatchSize   int
	Timeout     time.Duration

	AuditFraction float64
	AuditSeed     uint64
	AuditDriftPct float64

	// Search is non-nil for guided-search jobs; GridSize is then the
	// (possibly MaxInt-saturated) size of the grid an exhaustive sweep
	// would have cost, not a materialization bound.
	Search *dse.SearchSpec
}

// ParseJobRequest decodes and validates one job submission against the
// limits. Unknown fields, missing subjects, duplicate or malformed axes,
// grids beyond MaxGridPoints (checked without ever materializing them) and
// oversized or corrupt trace uploads are all rejected with an error —
// every error here maps to HTTP 400.
func ParseJobRequest(body []byte, lim Limits) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decoding job request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after job request")
	}
	return req.validate(lim)
}

func (req *JobRequest) validate(lim Limits) (*JobSpec, error) {
	spec := &JobSpec{
		Workload:  req.Workload,
		TargetCPI: req.TargetCPI,
		Seed:      req.Seed,
	}

	// Subject: exactly one of workload / trace upload.
	switch {
	case req.Workload == "" && req.TraceB64 == "":
		return nil, fmt.Errorf("serve: job needs a workload name or a trace_b64 upload")
	case req.Workload != "" && req.TraceB64 != "":
		return nil, fmt.Errorf("serve: workload and trace_b64 are mutually exclusive")
	case req.Workload != "":
		if _, ok := workload.ByName(req.Workload); !ok {
			return nil, fmt.Errorf("serve: unknown workload %q", req.Workload)
		}
	}

	// Engine.
	spec.Engine = req.Engine
	if spec.Engine == "" {
		spec.Engine = "rpstacks"
	}
	switch spec.Engine {
	case "rpstacks", "graph":
	case "sim":
		if req.TraceB64 != "" {
			return nil, fmt.Errorf("serve: the sim engine re-simulates and needs a named workload, not a trace upload")
		}
	default:
		return nil, fmt.Errorf("serve: unknown engine %q (want rpstacks, graph or sim)", req.Engine)
	}

	// Axes and grid size, via the same parser as cmd/rpexplore's -axis.
	if len(req.Axes) == 0 {
		return nil, fmt.Errorf("serve: job needs at least one axis")
	}
	if len(req.Axes) > lim.MaxAxes {
		return nil, fmt.Errorf("serve: %d axes exceed the limit of %d", len(req.Axes), lim.MaxAxes)
	}
	for _, raw := range req.Axes {
		ax, err := dse.ParseAxisSpec(raw)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if len(ax.Values) > lim.MaxAxisValues {
			return nil, fmt.Errorf("serve: axis %s has %d values, limit %d", ax.Event, len(ax.Values), lim.MaxAxisValues)
		}
		spec.Space.Axes = append(spec.Space.Axes, ax)
	}
	if err := spec.Space.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if req.Search != "" {
		ss, err := dse.ParseSearchSpec(req.Search)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if ss.Mode == dse.SearchTarget && ss.TargetCPI == 0 {
			ss.TargetCPI = req.TargetCPI // borrow the sweep-style budget field
		}
		if err := ss.Validate(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if ss.Mode == dse.SearchTarget && ss.TargetCPI == 0 {
			return nil, fmt.Errorf("serve: a target search needs a cpi budget (search key cpi, or target_cpi)")
		}
		if ss.Mode != dse.SearchTarget && req.TargetCPI > 0 {
			return nil, fmt.Errorf("serve: target_cpi with a %s search is meaningless; use mode %s", ss.Mode, dse.SearchTarget)
		}
		// A search probes lazily, so the grid may exceed MaxGridPoints —
		// the plan itself still bounds the index space and validates the
		// cost model against the axes.
		if _, err := dse.NewSearchPlan(&spec.Space, ss); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		spec.Search = ss
		spec.GridSize, _ = spec.Space.SizeSaturating()
	} else {
		size, ok := spec.Space.SizeWithin(lim.MaxGridPoints)
		if !ok {
			return nil, fmt.Errorf("serve: design grid exceeds the %d-point limit (a search mode lifts it)", lim.MaxGridPoints)
		}
		spec.GridSize = size
	}

	// Scalars with defaults and caps.
	switch {
	case req.Top < 0:
		return nil, fmt.Errorf("serve: negative top %d", req.Top)
	case req.Top == 0:
		spec.Top = lim.DefaultTop
	case req.Top > lim.MaxTop:
		return nil, fmt.Errorf("serve: top %d exceeds the limit of %d", req.Top, lim.MaxTop)
	default:
		spec.Top = req.Top
	}
	switch {
	case req.TimeoutMS < 0:
		return nil, fmt.Errorf("serve: negative timeout_ms %d", req.TimeoutMS)
	case req.TimeoutMS == 0:
		spec.Timeout = lim.DefaultTimeout
	case time.Duration(req.TimeoutMS)*time.Millisecond > lim.MaxTimeout:
		return nil, fmt.Errorf("serve: timeout_ms %d exceeds the limit of %v", req.TimeoutMS, lim.MaxTimeout)
	default:
		spec.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	switch {
	case req.Parallelism < 0:
		return nil, fmt.Errorf("serve: negative parallelism %d", req.Parallelism)
	case req.Parallelism > lim.MaxParallelism:
		return nil, fmt.Errorf("serve: parallelism %d exceeds the limit of %d", req.Parallelism, lim.MaxParallelism)
	default:
		spec.Parallelism = req.Parallelism // 0 resolves to the server default at run time
	}
	switch {
	case req.BatchSize < 0:
		return nil, fmt.Errorf("serve: negative batch_size %d", req.BatchSize)
	case req.BatchSize > lim.MaxBatchSize:
		return nil, fmt.Errorf("serve: batch_size %d exceeds the limit of %d", req.BatchSize, lim.MaxBatchSize)
	case req.BatchSize > 0 && spec.Engine == "sim":
		return nil, fmt.Errorf("serve: the sim engine has no batched form; batch_size applies to rpstacks and graph jobs")
	default:
		spec.BatchSize = req.BatchSize // 0 autotunes in the sweep engine
	}
	if math.IsNaN(req.TargetCPI) || math.IsInf(req.TargetCPI, 0) || req.TargetCPI < 0 {
		return nil, fmt.Errorf("serve: target_cpi %g is not a finite non-negative value", req.TargetCPI)
	}

	// Shadow audit: ground truth is a re-simulation of the named workload,
	// so trace uploads cannot be audited; auditing the sim engine would
	// re-simulate what was already simulated.
	switch {
	case math.IsNaN(req.AuditFraction) || math.IsInf(req.AuditFraction, 0) ||
		req.AuditFraction < 0 || req.AuditFraction > 1:
		return nil, fmt.Errorf("serve: audit_fraction %g outside [0, 1]", req.AuditFraction)
	case req.AuditFraction > 0 && req.Search != "":
		return nil, fmt.Errorf("serve: search optima are verified online by an audit oracle; audit_fraction applies to exhaustive sweeps")
	case req.AuditFraction > 0 && req.Workload == "":
		return nil, fmt.Errorf("serve: the audit re-simulates ground truth and needs a named workload, not a trace upload")
	case req.AuditFraction > 0 && spec.Engine == "sim":
		return nil, fmt.Errorf("serve: the sim engine is already ground truth; audit applies to rpstacks and graph jobs")
	case req.AuditFraction == 0 && (req.AuditSeed != 0 || req.AuditDriftPct != 0):
		return nil, fmt.Errorf("serve: audit_seed and audit_drift_pct need audit_fraction > 0")
	case math.IsNaN(req.AuditDriftPct) || math.IsInf(req.AuditDriftPct, 0) || req.AuditDriftPct < 0:
		return nil, fmt.Errorf("serve: audit_drift_pct %g is not a finite non-negative value", req.AuditDriftPct)
	}
	spec.AuditFraction = req.AuditFraction
	spec.AuditSeed = req.AuditSeed
	spec.AuditDriftPct = req.AuditDriftPct

	// Subject-specific fields.
	if req.Workload != "" {
		switch {
		case req.MicroOps < 0:
			return nil, fmt.Errorf("serve: negative micro_ops %d", req.MicroOps)
		case req.MicroOps == 0:
			spec.MicroOps = lim.DefaultMicroOps
		case req.MicroOps > lim.MaxMicroOps:
			return nil, fmt.Errorf("serve: micro_ops %d exceeds the limit of %d", req.MicroOps, lim.MaxMicroOps)
		default:
			spec.MicroOps = req.MicroOps
		}
	} else {
		if req.MicroOps != 0 || req.Seed != 0 {
			return nil, fmt.Errorf("serve: micro_ops and seed only apply to named workloads")
		}
		if declen := base64.StdEncoding.DecodedLen(len(req.TraceB64)); declen > lim.MaxTraceBytes {
			return nil, fmt.Errorf("serve: trace upload of ~%d bytes exceeds the %d-byte limit", declen, lim.MaxTraceBytes)
		}
		raw, err := base64.StdEncoding.DecodeString(req.TraceB64)
		if err != nil {
			return nil, fmt.Errorf("serve: trace_b64: %w", err)
		}
		tr, err := trace.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("serve: trace upload: %w", err)
		}
		if len(tr.Records) == 0 {
			return nil, fmt.Errorf("serve: trace upload has no records")
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("serve: trace upload: %w", err)
		}
		spec.Trace = tr
		spec.TraceDigest = trace.Digest(tr)
	}
	return spec, nil
}
