package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/fleet"
	"repro/internal/isa"
	"repro/internal/stacks"
)

// fleet.go — the coordinator face of the sweep fleet. With Config.FleetStore
// set, the server mounts the /fleet/v1/ lease protocol and routes eligible
// sweeps through rpworker processes instead of its own goroutines; the
// assembled Report flows into ranking, auditing and metrics exactly like a
// local sweep's.
//
// Eligibility is identity-driven: a worker rebuilds the engine inputs from
// (workload, seed, µops) under the *baseline* machine and *default* analysis
// options, so only a server running that same setup may delegate — and
// uploaded traces, which have no regeneration recipe, always run locally.
// The sweep fingerprint then proves the match bit-for-bit on every worker.

// fleetDefaultsMatch reports whether this server's machine setup is the one
// fleet workers deterministically rebuild: the baseline configuration and
// the default RpStacks analysis options.
func fleetDefaultsMatch(cfg *config.Config, opts core.Options) bool {
	cj, err1 := json.Marshal(cfg)
	bj, err2 := json.Marshal(config.Baseline())
	return err1 == nil && err2 == nil && string(cj) == string(bj) &&
		opts == core.DefaultOptions()
}

// fleetSweep runs the job's sweep through the fleet coordinator: compute the
// sweep identity fingerprint from the engine inputs already in hand, hand
// the recipe (not the data) to the coordinator, and block until the workers'
// published chunks assemble into the Report.
// explicit marks point lists that are not the space's enumeration (a guided
// search's probe round); the coordinator then ships them to workers.
func (s *Server) fleetSweep(ctx context.Context, job *Job, points []stacks.Latencies,
	art *setupArtifacts, uops []isa.MicroOp, setupWall time.Duration, explicit bool) (*dse.Report, error) {
	spec := job.Spec
	var fp []byte
	var err error
	switch spec.Engine {
	case "graph":
		fp, err = dse.SweepFingerprintGraph(art.graph, points)
	case "rpstacks":
		fp, err = dse.SweepFingerprintRpStacks(art.analysis, points)
	case "sim":
		fp, err = dse.SweepFingerprintSim(s.cfg.BaseConfig, uops, points)
	default:
		err = fmt.Errorf("serve: unknown engine %q", spec.Engine)
	}
	if err != nil {
		return nil, err
	}
	sweepID := hex.EncodeToString(fp)
	s.trackFleetSweep(sweepID, job.ID)
	defer s.untrackFleetSweep(sweepID, job.ID)
	rep, err := s.fleet.Run(ctx, fleet.Sweep{
		Spec: fleet.SweepSpec{
			Workload:  spec.Workload,
			Seed:      spec.Seed,
			MicroOps:  spec.MicroOps,
			Engine:    spec.Engine,
			Axes:      fleet.FormatAxes(spec.Space.Axes),
			BatchSize: spec.BatchSize,
		},
		Points:      points,
		Fingerprint: fp,
		ChunkSize:   s.cfg.FleetChunkSize,
		Explicit:    explicit,
		Setup:       setupWall,
		Tracer:      job.tracer,
		TraceParent: job.root.ID(),
	})
	if err != nil {
		return nil, err
	}
	// Pull the worker trace fragments the coordinator retained for this sweep
	// onto the job: GET /debug/trace then serves the merged fleet timeline. A
	// search job accumulates one batch per probe round (each round is its own
	// sweep fingerprint).
	job.addFleetFragments(s.fleet.TraceFragments(hex.EncodeToString(fp)))
	return rep, nil
}

// trackFleetSweep maps an active sweep's ID onto the job that delegated it,
// so coordinator lease events route into the job's journal stream. Two jobs
// attaching to one identical sweep (same fingerprint) is legal: the last
// registration wins, which keeps the events on a live job.
func (s *Server) trackFleetSweep(sweepID, jobID string) {
	s.fleetJobsMu.Lock()
	s.fleetJobs[sweepID] = jobID
	s.fleetJobsMu.Unlock()
}

// untrackFleetSweep drops the mapping, unless a later registration of the
// same sweep (an attached duplicate job) took it over.
func (s *Server) untrackFleetSweep(sweepID, jobID string) {
	s.fleetJobsMu.Lock()
	if s.fleetJobs[sweepID] == jobID {
		delete(s.fleetJobs, sweepID)
	}
	s.fleetJobsMu.Unlock()
}

// fleetJob resolves a sweep ID to its delegating job ("" when untracked).
func (s *Server) fleetJob(sweepID string) string {
	s.fleetJobsMu.Lock()
	defer s.fleetJobsMu.Unlock()
	return s.fleetJobs[sweepID]
}
