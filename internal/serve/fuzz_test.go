package serve

import (
	"testing"
)

// FuzzParseJobRequest throws arbitrary bytes at the job-request decoder. The
// decoder guards the service's front door, so the invariants are strict: no
// panic on any input, and every accepted spec honors the limits — the grid
// size stays under the cap without the grid ever being materialized (unless
// a search mode lifts it, which must then come with a valid SearchSpec),
// exactly one subject is set, and every scalar landed inside its bound.
func FuzzParseJobRequest(f *testing.F) {
	seeds := []string{
		`{"workload":"429.mcf","axes":["L2D=8,12,16","MemD=150,200"]}`,
		`{"workload":"429.mcf","axes":["L2D=8"],"engine":"sim","top":3,"micro_ops":500,"seed":9}`,
		`{"trace_b64":"UlBUUkM=","axes":["Branch=10,14"],"engine":"graph"}`,
		`{"workload":"429.mcf","axes":["L2D=8","L2D=12"]}`,
		`{"axes":["L2D=1e308,2e308"]}`,
		`{"workload":"429.mcf","axes":["L2D=-1"],"target_cpi":1.5,"timeout_ms":100}`,
		`{"workload":"429.mcf","axes":["L2D=8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8,8"],"parallelism":4}`,
		`[1,2,3]`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lim := DefaultLimits()
		spec, err := ParseJobRequest(data, lim)
		if err != nil {
			return
		}
		if (spec.Workload == "") == (spec.Trace == nil) {
			t.Fatalf("accepted spec without exactly one subject: %+v", spec)
		}
		if spec.GridSize < 1 {
			t.Fatalf("grid size %d is not positive", spec.GridSize)
		}
		if spec.Search == nil {
			if spec.GridSize > lim.MaxGridPoints {
				t.Fatalf("exhaustive grid size %d over the cap %d", spec.GridSize, lim.MaxGridPoints)
			}
		} else {
			if err := spec.Search.Validate(); err != nil {
				t.Fatalf("accepted invalid search spec: %v", err)
			}
		}
		if err := spec.Space.Validate(); err != nil {
			t.Fatalf("accepted invalid space: %v", err)
		}
		if spec.Top < 1 || spec.Top > lim.MaxTop {
			t.Fatalf("top %d outside [1, %d]", spec.Top, lim.MaxTop)
		}
		if spec.Timeout <= 0 || spec.Timeout > lim.MaxTimeout {
			t.Fatalf("timeout %v outside (0, %v]", spec.Timeout, lim.MaxTimeout)
		}
		if spec.Parallelism < 0 || spec.Parallelism > lim.MaxParallelism {
			t.Fatalf("parallelism %d outside [0, %d]", spec.Parallelism, lim.MaxParallelism)
		}
		if spec.Workload != "" {
			if spec.MicroOps < 1 || spec.MicroOps > lim.MaxMicroOps {
				t.Fatalf("micro_ops %d outside [1, %d]", spec.MicroOps, lim.MaxMicroOps)
			}
		} else {
			if len(spec.TraceDigest) != 64 {
				t.Fatalf("upload accepted without a digest: %q", spec.TraceDigest)
			}
			if len(spec.Trace.Records) == 0 {
				t.Fatal("upload accepted with no records")
			}
		}
	})
}
