package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
)

// obs_test.go — the observability acceptance layer: a round-trip of the
// Prometheus exposition through a test-side parser, and the per-job flight
// recorder endpoint.

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var labelRE = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// parseExposition parses Prometheus text format back into samples, plus the
// family → type declarations.
func parseExposition(t *testing.T, exp string) ([]promSample, map[string]string) {
	t.Helper()
	var samples []promSample
	types := make(map[string]string)
	for _, line := range strings.Split(exp, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		id, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("line %q: bad value: %v", line, err)
		}
		s := promSample{labels: make(map[string]string), value: v}
		if b := strings.IndexByte(id, '{'); b >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Fatalf("line %q: unterminated label set", line)
			}
			s.name = id[:b]
			for _, m := range labelRE.FindAllStringSubmatch(id[b+1:len(id)-1], -1) {
				s.labels[m[1]] = m[2]
			}
		} else {
			s.name = id
		}
		samples = append(samples, s)
	}
	return samples, types
}

// labelKey renders a sample's labels minus `le`, as a histogram series key.
func labelKey(s promSample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		b.WriteString("|" + k + "=" + s.labels[k])
	}
	return b.String()
}

// TestMetricsRoundTrip scrapes /metrics after real traffic and re-parses the
// exposition: every sample name must match ^rpstacks_[a-z0-9_]+$ (the
// rpserved_* names are gone), every family must carry a TYPE declaration,
// and every histogram's buckets must be cumulative-monotone with the +Inf
// bucket equal to its _count.
func TestMetricsRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, SweepParallelism: 2, Store: st})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, v.ID)
	// An invalid submission exercises the 400 counter too.
	if _, code := submitJob(t, ts.URL, `{"workload":"no-such"}`); code != http.StatusBadRequest {
		t.Fatalf("invalid submit status %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	samples, types := parseExposition(t, exp)
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}

	nameRE := regexp.MustCompile(`^rpstacks_[a-z0-9_]+$`)
	buckets := make(map[string][]promSample)
	counts := make(map[string]float64)
	for _, s := range samples {
		if !nameRE.MatchString(s.name) {
			t.Errorf("metric name %q does not match ^rpstacks_[a-z0-9_]+$", s.name)
		}
		base := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(s.name, suffix); fam != s.name && types[fam] == "histogram" {
				base = fam
			}
		}
		if types[base] == "" {
			t.Errorf("sample %s has no # TYPE declaration", s.name)
		}
		if strings.HasSuffix(s.name, "_bucket") {
			buckets[labelKey(s)] = append(buckets[labelKey(s)], s)
		}
		if strings.HasSuffix(s.name, "_count") {
			counts[labelKey(s)] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for series, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return parseLE(t, bs[i]) < parseLE(t, bs[j]) })
		prev := -1.0
		for _, b := range bs {
			if b.value < prev {
				t.Errorf("%s: bucket le=%q count %g < previous %g (not cumulative)", series, b.labels["le"], b.value, prev)
			}
			prev = b.value
		}
		last := bs[len(bs)-1]
		if le := parseLE(t, last); !math.IsInf(le, 1) {
			t.Errorf("%s: last bucket le=%q, want +Inf", series, last.labels["le"])
		}
		countKey := strings.Replace(series, "_bucket", "_count", 1)
		if c, ok := counts[countKey]; !ok || c != last.value {
			t.Errorf("%s: +Inf bucket %g != _count %g", series, last.value, c)
		}
	}

	// The store collectors must be present when a store is configured.
	if v := metricValue(t, exp, "rpstacks_store_entries"); v < 1 {
		t.Errorf("store entries = %g, want >= 1 after a job published artifacts", v)
	}
	if v := metricValue(t, exp, "rpstacks_requests_invalid_total"); v != 1 {
		t.Errorf("invalid requests = %g, want 1", v)
	}
	// The span-derived stage histogram saw the job's lifecycle.
	for _, stage := range stageNames {
		key := `rpstacks_stage_duration_seconds_count{stage="` + stage + `"}`
		if v := metricValue(t, exp, key); v < 1 {
			t.Errorf("stage %s observed %g times, want >= 1", stage, v)
		}
	}
	// The sweep histogram carries the exemplar comment with the job identity.
	if !strings.Contains(exp, `# exemplar rpstacks_sweep_duration_seconds{engine="rpstacks"} {job_id=`) {
		t.Error("exposition missing the slow-sweep exemplar comment")
	}

	// The build-info gauge renders exactly once, value 1, with every label
	// populated (unstamped fields fall back to "unknown", never "").
	infos := 0
	for _, smp := range samples {
		if smp.name != "rpstacks_build_info" {
			continue
		}
		infos++
		if smp.value != 1 {
			t.Errorf("rpstacks_build_info value %g, want 1", smp.value)
		}
		for _, lbl := range []string{"go_version", "version", "revision", "vcs_time"} {
			if smp.labels[lbl] == "" {
				t.Errorf("rpstacks_build_info label %s is empty", lbl)
			}
		}
	}
	if infos != 1 {
		t.Errorf("rpstacks_build_info rendered %d times, want exactly 1", infos)
	}

	// The audit families render from the first scrape — all-zero here, since
	// the job was not audited — with every class and outcome row pre-created.
	for _, class := range []string{"icache", "dcache", "branch", "resource"} {
		key := `rpstacks_audit_divergence_pct_count{class="` + class + `"}`
		if v := metricValue(t, exp, key); v != 0 {
			t.Errorf("unaudited run has %s = %g, want 0", key, v)
		}
	}
	for _, sample := range []string{
		`rpstacks_audit_points_total{outcome="audited"}`,
		`rpstacks_audit_points_total{outcome="skipped_budget"}`,
		"rpstacks_audit_drift_total",
		"rpstacks_audit_error_pct_count",
	} {
		if v := metricValue(t, exp, sample); v != 0 {
			t.Errorf("unaudited run has %s = %g, want 0", sample, v)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func parseLE(t *testing.T, s promSample) float64 {
	t.Helper()
	le := s.labels["le"]
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bucket %v: bad le: %v", s, err)
	}
	return v
}

// TestDebugTraceEndpoint checks the per-job flight recorder: the Chrome
// export must parse and contain the lifecycle spans (job root, queue-wait,
// setup, sweep, chunks, cache lookups), and the folded format must render.
func TestDebugTraceEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, SweepParallelism: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, v.ID)

	resp, err := http.Get(ts.URL + "/debug/trace?job=" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, raw)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Dur  float64
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(raw), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := make(map[string]int)
	for _, ev := range parsed.TraceEvents {
		seen[ev.Cat+":"+ev.Name]++
	}
	for _, want := range []string{"job:job", "job:queue-wait", "job:setup", "dse:sweep", "dse:chunk", "cache:build"} {
		if seen[want] == 0 {
			t.Errorf("trace lacks %s span (saw %v)", want, seen)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/trace?job=" + v.ID + "&format=folded")
	if err != nil {
		t.Fatal(err)
	}
	folded := readAll(t, resp)
	if !strings.Contains(folded, "job:job;dse:sweep") {
		t.Errorf("folded trace lacks nested sweep path:\n%s", folded)
	}

	resp, err = http.Get(ts.URL + "/debug/trace?job=nope")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status %d, want 404", resp.StatusCode)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
