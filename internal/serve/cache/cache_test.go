package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleFlight hammers one key from many goroutines and requires the
// build to run exactly once, with every caller seeing the same value — the
// property the serving acceptance test leans on ("setup cost paid at most
// once" across 8 concurrent jobs).
func TestSingleFlight(t *testing.T) {
	c := New[int](8)
	var builds atomic.Int32
	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	vals := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", func() (int, time.Duration, error) {
				builds.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the contention window
				return 42, 100 * time.Millisecond, nil
			})
			vals[i], errs[i] = v, err
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for i := range vals {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("caller %d: got (%d, %v)", i, vals[i], errs[i])
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, callers-1)
	}

	// A later request hits the completed entry and banks its setup cost.
	saved := st.SavedSetup
	if _, hit, err := c.GetOrCompute("k", func() (int, time.Duration, error) {
		t.Fatal("build re-ran for a cached key")
		return 0, 0, nil
	}); err != nil || !hit {
		t.Fatalf("completed entry not served as a hit (hit=%v err=%v)", hit, err)
	}
	if got := c.Stats().SavedSetup; got < saved+100*time.Millisecond {
		t.Fatalf("saved setup %v did not grow by the entry cost", got)
	}
}

// TestFailedBuildsNotCached checks error semantics: the failing build's
// error reaches the caller, the key stays uncached, and a retry rebuilds.
func TestFailedBuildsNotCached(t *testing.T) {
	c := New[string](4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (string, time.Duration, error) {
		return "", 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Failures != 1 || st.Entries != 0 {
		t.Fatalf("after failure: %+v, want 1 failure and 0 entries", st)
	}
	v, hit, err := c.GetOrCompute("k", func() (string, time.Duration, error) {
		return "ok", 0, nil
	})
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry: got (%q, hit=%v, %v)", v, hit, err)
	}
}

// TestLRUEviction fills the table past capacity and checks the
// least-recently-used entry goes first.
func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	put := func(k string, v int) {
		if _, _, err := c.GetOrCompute(k, func() (int, time.Duration, error) { return v, 0, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get := func(k string) (int, bool) {
		v, hit, err := c.GetOrCompute(k, func() (int, time.Duration, error) { return -1, 0, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}
	put("a", 1)
	put("b", 2)
	get("a") // freshen a: b becomes the LRU entry
	put("c", 3)
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after overflow: %+v, want 1 eviction and 2 entries", st)
	}
	if v, hit := get("a"); !hit || v != 1 {
		t.Fatalf("a evicted or rebuilt: (%d, hit=%v)", v, hit)
	}
	if _, hit := get("b"); hit {
		t.Fatal("b survived eviction despite being LRU")
	}
}

// TestConcurrentDistinctKeys checks the table under a racy mixed load of
// many keys with a small capacity: every result must match its key's value
// (no cross-key bleed), exercised under -race.
func TestConcurrentDistinctKeys(t *testing.T) {
	c := New[int](4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % 10
				v, _, err := c.GetOrCompute(fmt.Sprintf("k%d", k), func() (int, time.Duration, error) {
					return k * 7, time.Millisecond, nil
				})
				if err != nil || v != k*7 {
					t.Errorf("key k%d: got (%d, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 5 {
		t.Fatalf("capacity 4 exceeded steadily: %d entries", n)
	}
}
