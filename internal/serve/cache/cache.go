// Package cache provides the content-addressed artifact cache behind the
// rpserved exploration service: a bounded, concurrency-deduplicating
// memoization table keyed by content digests (see trace.Digest). The paper's
// amortization argument — pay the simulate/analyze setup once, then answer
// thousands of design-point queries for nearly free — is made literal across
// requests here: the first job for a trace builds the representative-stack
// set and dependence graph, every later job for the same content reuses
// them and only re-weights stacks.
//
// Semantics:
//   - a value is computed at most once per key, even under concurrent
//     requests: later callers block on the first builder (single-flight);
//   - failed builds are never cached, so a transient error does not poison
//     the key;
//   - beyond the configured capacity the least-recently-used completed
//     entry is evicted (in-flight builds are never evicted);
//   - the table keeps the counters /metrics exports: hits, misses,
//     failures, evictions, and the cumulative setup time hits avoided.
package cache

import (
	"sync"
	"sync/atomic"
	"time"
)

// entry is one memoized value. ready is closed when the build finishes;
// val, cost and err are immutable afterwards.
type entry[V any] struct {
	ready   chan struct{}
	val     V
	cost    time.Duration
	err     error
	done    bool          // guarded by Cache.mu; true once the build result is recorded
	lastUse atomic.Uint64 // recency tick for LRU eviction
}

// Cache is a bounded single-flight memoization table. The zero value is not
// usable; construct with New.
type Cache[V any] struct {
	capacity int

	mu      sync.Mutex
	entries map[string]*entry[V]

	tick                              atomic.Uint64
	hits, misses, failures, evictions atomic.Uint64
	savedNS                           atomic.Int64
}

// New returns a cache holding at most capacity completed entries; a
// non-positive capacity means unbounded.
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{capacity: capacity, entries: make(map[string]*entry[V])}
}

// GetOrCompute returns the value cached under key, building it with build
// on the first request. Concurrent callers for the same key share one build:
// exactly one runs build, the rest block until it finishes. build returns
// the value plus the setup cost to record for the entry — the duration
// added to the saved-setup counter every time a later request hits it.
//
// The second return reports whether the call was served from a completed
// cache entry (true) or paid for the build itself, by running it or by
// waiting on the builder (false). Build errors are returned to every caller
// sharing the flight and leave the key uncached.
func (c *Cache[V]) GetOrCompute(key string, build func() (V, time.Duration, error)) (V, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		hit := e.done
		e.lastUse.Store(c.tick.Add(1))
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			var zero V
			return zero, false, e.err
		}
		c.hits.Add(1)
		if hit {
			// Only a completed entry truly saves the setup time; a caller
			// that joined an in-flight build waited the build out.
			c.savedNS.Add(int64(e.cost))
		}
		return e.val, hit, nil
	}
	e := &entry[V]{ready: make(chan struct{})}
	e.lastUse.Store(c.tick.Add(1))
	c.entries[key] = e
	c.misses.Add(1)
	c.mu.Unlock()

	e.val, e.cost, e.err = build()
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		c.failures.Add(1)
		delete(c.entries, key)
	} else {
		e.done = true
		c.evict()
	}
	c.mu.Unlock()
	if e.err != nil {
		var zero V
		return zero, false, e.err
	}
	return e.val, false, nil
}

// evict removes least-recently-used completed entries until the table fits
// its capacity. Called with mu held.
func (c *Cache[V]) evict() {
	for c.capacity > 0 && len(c.entries) > c.capacity {
		var victim string
		oldest := ^uint64(0)
		for k, e := range c.entries {
			if e.done && e.lastUse.Load() < oldest {
				oldest = e.lastUse.Load()
				victim = k
			}
		}
		if victim == "" {
			return // everything else is in flight; allow transient overshoot
		}
		delete(c.entries, victim)
		c.evictions.Add(1)
	}
}

// Len returns the number of entries currently in the table, including
// in-flight builds.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries    int
	Hits       uint64
	Misses     uint64
	Failures   uint64
	Evictions  uint64
	SavedSetup time.Duration
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Entries:    c.Len(),
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Failures:   c.failures.Load(),
		Evictions:  c.evictions.Load(),
		SavedSetup: time.Duration(c.savedNS.Load()),
	}
}
