package cache

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// tiered.go — the two-tier composition the service runs in production:
// the in-memory single-flight table in front (fast, bounded, per-process)
// and a durable byte store behind it (survives restarts). A key is looked
// up memory-first; on a memory miss the flight's builder consults the disk
// tier before paying the real build, and publishes what it built so the
// next process finds it. Single-flight semantics are inherited from Cache:
// disk reads, decodes and builds all happen at most once per key under
// concurrency.

// BlobStore is the durable tier: an opaque byte store keyed like the cache.
// internal/store.Store implements it. Get reports the payload, the build
// cost recorded at publication and whether the key was present; Delete
// removes an entry whose payload decoded to garbage (codec drift), so it is
// rebuilt rather than consulted forever.
type BlobStore interface {
	Get(key string) ([]byte, time.Duration, bool)
	Put(key string, payload []byte, cost time.Duration) error
	Delete(key string)
}

// Codec converts one cached value type to and from its durable byte form.
// Codecs are supplied per call, not per cache, so Decode may close over
// request context (e.g. rebuilding a dependence graph from the trace it
// just decoded).
type Codec[V any] struct {
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// Tier says which tier satisfied a request.
type Tier int

const (
	// TierBuilt: the value was built (or the caller waited on the builder).
	TierBuilt Tier = iota
	// TierMem: served from a completed in-memory entry.
	TierMem
	// TierDisk: rebuilt-free from the durable store (this process had not
	// seen the key, a previous one had).
	TierDisk
)

// Tiered is a Cache backed by an optional BlobStore. With a nil store it
// degrades to exactly the memory cache's behaviour.
type Tiered[V any] struct {
	mem  *Cache[V]
	disk BlobStore

	diskHits      atomic.Uint64
	decodeErrors  atomic.Uint64
	encodeErrors  atomic.Uint64
	publishErrors atomic.Uint64
}

// NewTiered builds a two-tier cache: an in-memory single-flight table
// holding up to capacity completed entries, backed by disk (nil for
// memory-only).
func NewTiered[V any](capacity int, disk BlobStore) *Tiered[V] {
	return &Tiered[V]{mem: New[V](capacity), disk: disk}
}

// GetOrCompute returns the value for key, trying memory, then disk, then
// build, and reports which tier satisfied the call. The disk consultation
// and the build share the memory tier's single flight, so concurrent
// requests for one key perform one disk read and at most one build between
// them (joiners report TierBuilt: they waited the flight out). A disk
// payload that fails to decode is deleted and counted, and the build runs
// as if the key were absent; a build result that fails to encode or
// publish is still returned to the caller — durability is best-effort,
// correctness is not.
func (t *Tiered[V]) GetOrCompute(key string, codec Codec[V], build func() (V, time.Duration, error)) (V, Tier, error) {
	return t.GetOrComputeTraced(nil, 0, key, codec, build)
}

// GetOrComputeTraced is GetOrCompute recording its outcome as spans under
// parent: one lookup span renamed at completion to how the call was served
// (mem-hit, disk-hit, build or singleflight-wait), with disk-read, decode,
// compute and publish children when the flight's builder runs. A nil tracer
// records nothing.
func (t *Tiered[V]) GetOrComputeTraced(otr *obs.Tracer, parent uint64, key string, codec Codec[V], build func() (V, time.Duration, error)) (V, Tier, error) {
	lookup := otr.StartChild(parent, obs.CatCache, "lookup")
	lookup.SetDetail(key)
	tier := TierBuilt
	ran := false
	v, memHit, err := t.mem.GetOrCompute(key, func() (V, time.Duration, error) {
		// tier and ran are written by at most one caller: the single flight's
		// builder. Joiners never enter this closure, so their lookup resolves
		// to singleflight-wait below.
		ran = true
		if t.disk != nil {
			rd := otr.StartChild(lookup.ID(), obs.CatCache, "disk-read")
			blob, cost, ok := t.disk.Get(key)
			rd.SetArg("bytes", int64(len(blob)))
			rd.End()
			if ok {
				dec := otr.StartChild(lookup.ID(), obs.CatCache, "decode")
				dv, derr := codec.Decode(blob)
				dec.End()
				if derr == nil {
					t.diskHits.Add(1)
					tier = TierDisk
					return dv, cost, nil
				}
				t.decodeErrors.Add(1)
				t.disk.Delete(key)
			}
		}
		cp := otr.StartChild(lookup.ID(), obs.CatCache, "compute")
		v, cost, berr := build()
		cp.End()
		if berr == nil && t.disk != nil {
			pub := otr.StartChild(lookup.ID(), obs.CatCache, "publish")
			if blob, eerr := codec.Encode(v); eerr == nil {
				pub.SetArg("bytes", int64(len(blob)))
				if perr := t.disk.Put(key, blob, cost); perr != nil {
					t.publishErrors.Add(1)
				}
			} else {
				t.encodeErrors.Add(1)
			}
			pub.End()
		}
		return v, cost, berr
	})
	if memHit {
		tier = TierMem
	}
	switch {
	case memHit:
		lookup.Rename("mem-hit")
	case tier == TierDisk:
		lookup.Rename("disk-hit")
	case ran:
		lookup.Rename("build")
	default:
		lookup.Rename("singleflight-wait")
	}
	lookup.End()
	return v, tier, err
}

// Cached reports whether a tier means the caller skipped the build.
func (tr Tier) Cached() bool { return tr == TierMem || tr == TierDisk }

// TieredStats extends the memory tier's counters with the disk
// interaction counters (the store keeps its own hit/miss/corruption
// counters; these cover the codec boundary between the tiers).
type TieredStats struct {
	Memory        Stats
	DiskHits      uint64
	DecodeErrors  uint64
	EncodeErrors  uint64
	PublishErrors uint64
}

// Stats snapshots both tiers' counters.
func (t *Tiered[V]) Stats() TieredStats {
	return TieredStats{
		Memory:        t.mem.Stats(),
		DiskHits:      t.diskHits.Load(),
		DecodeErrors:  t.decodeErrors.Load(),
		EncodeErrors:  t.encodeErrors.Load(),
		PublishErrors: t.publishErrors.Load(),
	}
}

// Len returns the number of in-memory entries, including in-flight builds.
func (t *Tiered[V]) Len() int { return t.mem.Len() }
