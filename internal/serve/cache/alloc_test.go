package cache

import (
	"testing"
	"time"
)

// Allocation budgets for the request hot path. Every artifact request the
// service serves from memory goes through these two calls, so their per-hit
// allocation cost is a direct term in request latency and GC pressure. The
// budgets are pinned tight: a Cache hit allocates nothing, and a Tiered
// memory hit pays at most the one flight closure it constructs.

// snapshotGets reads the double's Get counter under its lock.
func (m *memBlob) snapshotGets() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gets
}

// TestCacheHitAllocFree pins the single-tier hit path at zero allocations.
func TestCacheHitAllocFree(t *testing.T) {
	c := New[int](4)
	build := func() (int, time.Duration, error) { return 7, time.Millisecond, nil }
	if _, _, err := c.GetOrCompute("k", build); err != nil {
		t.Fatal(err)
	}
	var sink int
	n := testing.AllocsPerRun(200, func() {
		v, hit, err := c.GetOrCompute("k", build)
		if err != nil || !hit {
			t.Fatal("expected a clean hit")
		}
		sink += v
	})
	if n != 0 {
		t.Errorf("memory hit allocates %.1f per call, want 0", n)
	}
	_ = sink
}

// TestTieredMemHitAllocBudget pins the two-tier memory-hit path. The tiered
// wrapper builds one closure per call to thread the codec through the
// flight; beyond that the hit must stay allocation-free, disk untouched.
func TestTieredMemHitAllocBudget(t *testing.T) {
	disk := newMemBlob()
	tc := NewTiered[int](4, disk)
	codec := Codec[int]{
		Encode: func(v int) ([]byte, error) { return []byte{byte(v)}, nil },
		Decode: func(b []byte) (int, error) { return int(b[0]), nil },
	}
	build := func() (int, time.Duration, error) { return 9, time.Millisecond, nil }
	if _, _, err := tc.GetOrCompute("k", codec, build); err != nil {
		t.Fatal(err)
	}
	diskGets := disk.snapshotGets()

	var sink int
	n := testing.AllocsPerRun(200, func() {
		v, tier, err := tc.GetOrCompute("k", codec, build)
		if err != nil || tier != TierMem {
			t.Fatalf("expected a memory hit, got tier %v err %v", tier, err)
		}
		sink += v
	})
	// One closure for the flight body (it captures the codec, the build and
	// the tier slot); anything more is a regression on the hot path.
	if n > 2 {
		t.Errorf("tiered memory hit allocates %.1f per call, want <= 2", n)
	}
	if disk.snapshotGets() != diskGets {
		t.Error("memory hit consulted the disk tier")
	}
	_ = sink
}
