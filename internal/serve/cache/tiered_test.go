package cache

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// memBlob is an in-memory BlobStore double with fault injection.
type memBlob struct {
	mu      sync.Mutex
	data    map[string][]byte
	costs   map[string]time.Duration
	puts    int
	gets    int
	deletes int
	putErr  error
}

func newMemBlob() *memBlob {
	return &memBlob{data: make(map[string][]byte), costs: make(map[string]time.Duration)}
}

func (m *memBlob) Get(key string) ([]byte, time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	b, ok := m.data[key]
	return b, m.costs[key], ok
}

func (m *memBlob) Put(key string, payload []byte, cost time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if m.putErr != nil {
		return m.putErr
	}
	m.data[key] = payload
	m.costs[key] = cost
	return nil
}

func (m *memBlob) Delete(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deletes++
	delete(m.data, key)
	delete(m.costs, key)
}

// intCodec round-trips ints through decimal strings.
var intCodec = Codec[int]{
	Encode: func(v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil },
	Decode: func(b []byte) (int, error) { return strconv.Atoi(string(b)) },
}

// TestTieredFallsThroughTiers walks one key through the three tiers:
// build (publishing to disk), memory hit, and — after simulating a restart
// by constructing a fresh Tiered over the same blob store — a disk hit
// with the original build cost counted as saved.
func TestTieredFallsThroughTiers(t *testing.T) {
	disk := newMemBlob()
	tc := NewTiered[int](4, disk)
	builds := 0
	build := func() (int, time.Duration, error) { builds++; return 42, time.Second, nil }

	v, tier, err := tc.GetOrCompute("k", intCodec, build)
	if err != nil || v != 42 || tier != TierBuilt {
		t.Fatalf("first call = %d, %v, %v; want built 42", v, tier, err)
	}
	if disk.puts != 1 {
		t.Fatalf("build published %d times, want 1", disk.puts)
	}
	v, tier, err = tc.GetOrCompute("k", intCodec, build)
	if err != nil || v != 42 || tier != TierMem {
		t.Fatalf("second call = %d, %v, %v; want memory hit", v, tier, err)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}

	restarted := NewTiered[int](4, disk)
	v, tier, err = restarted.GetOrCompute("k", intCodec, build)
	if err != nil || v != 42 || tier != TierDisk {
		t.Fatalf("post-restart call = %d, %v, %v; want disk hit", v, tier, err)
	}
	if builds != 1 {
		t.Fatalf("restart re-built: %d builds", builds)
	}
	if !tier.Cached() {
		t.Fatal("disk tier not reported as cached")
	}
	// A disk hit lands in memory: the next read never touches the store.
	gets := disk.gets
	if _, tier, _ = restarted.GetOrCompute("k", intCodec, build); tier != TierMem {
		t.Fatalf("after disk hit: tier %v, want memory", tier)
	}
	if disk.gets != gets {
		t.Fatal("memory hit consulted the disk tier")
	}
}

// TestTieredDecodeFailureRebuilds plants an undecodable disk payload: the
// entry must be deleted, counted, and the build must run and re-publish.
func TestTieredDecodeFailureRebuilds(t *testing.T) {
	disk := newMemBlob()
	disk.data["k"] = []byte("not a number")
	tc := NewTiered[int](4, disk)
	v, tier, err := tc.GetOrCompute("k", intCodec, func() (int, time.Duration, error) {
		return 7, time.Second, nil
	})
	if err != nil || v != 7 || tier != TierBuilt {
		t.Fatalf("call = %d, %v, %v; want rebuilt 7", v, tier, err)
	}
	st := tc.Stats()
	if st.DecodeErrors != 1 || disk.deletes != 1 {
		t.Fatalf("decode failure not handled: stats %+v, %d deletes", st, disk.deletes)
	}
	if string(disk.data["k"]) != "7" {
		t.Fatalf("rebuilt value not republished: %q", disk.data["k"])
	}
}

// TestTieredPublishFailureStillServes checks durability is best-effort: a
// failing Put is counted but the built value is returned and cached in
// memory.
func TestTieredPublishFailureStillServes(t *testing.T) {
	disk := newMemBlob()
	disk.putErr = errors.New("disk full")
	tc := NewTiered[int](4, disk)
	v, tier, err := tc.GetOrCompute("k", intCodec, func() (int, time.Duration, error) {
		return 9, time.Second, nil
	})
	if err != nil || v != 9 || tier != TierBuilt {
		t.Fatalf("call = %d, %v, %v", v, tier, err)
	}
	if st := tc.Stats(); st.PublishErrors != 1 {
		t.Fatalf("publish error not counted: %+v", st)
	}
	if _, tier, _ := tc.GetOrCompute("k", intCodec, nil); tier != TierMem {
		t.Fatalf("value not in memory after failed publish: %v", tier)
	}
}

// TestTieredEncodeFailureStillServes checks an unencodable value is served
// and counted, not published.
func TestTieredEncodeFailureStillServes(t *testing.T) {
	disk := newMemBlob()
	tc := NewTiered[int](4, disk)
	badCodec := Codec[int]{
		Encode: func(int) ([]byte, error) { return nil, errors.New("unencodable") },
		Decode: intCodec.Decode,
	}
	v, tier, err := tc.GetOrCompute("k", badCodec, func() (int, time.Duration, error) {
		return 5, time.Second, nil
	})
	if err != nil || v != 5 || tier != TierBuilt {
		t.Fatalf("call = %d, %v, %v", v, tier, err)
	}
	if st := tc.Stats(); st.EncodeErrors != 1 || disk.puts != 0 {
		t.Fatalf("encode failure not counted or value published anyway: %+v, %d puts", tc.Stats(), disk.puts)
	}
}

// TestTieredNilDiskDegrades checks a nil store behaves exactly like the
// memory cache.
func TestTieredNilDiskDegrades(t *testing.T) {
	tc := NewTiered[int](2, nil)
	for i := 0; i < 2; i++ {
		v, tier, err := tc.GetOrCompute("k", intCodec, func() (int, time.Duration, error) {
			return 1, 0, nil
		})
		want := TierBuilt
		if i == 1 {
			want = TierMem
		}
		if err != nil || v != 1 || tier != want {
			t.Fatalf("call %d = %d, %v, %v", i, v, tier, err)
		}
	}
}

// TestTieredBuildErrorNotPersisted checks failed builds poison nothing:
// no disk write, no memory entry, and the error reaches every caller.
func TestTieredBuildErrorNotPersisted(t *testing.T) {
	disk := newMemBlob()
	tc := NewTiered[int](4, disk)
	boom := errors.New("boom")
	if _, _, err := tc.GetOrCompute("k", intCodec, func() (int, time.Duration, error) {
		return 0, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if disk.puts != 0 || tc.Len() != 0 {
		t.Fatalf("failed build left state: %d puts, %d entries", disk.puts, tc.Len())
	}
}

// TestTieredSingleFlightSharesDiskRead checks concurrency deduplication
// spans the disk tier: many concurrent callers for one cold key perform
// one disk Get and zero builds when the store has the value.
func TestTieredSingleFlightSharesDiskRead(t *testing.T) {
	disk := newMemBlob()
	disk.data["k"] = []byte("33")
	disk.costs["k"] = time.Second
	tc := NewTiered[int](4, disk)
	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	vals := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = tc.GetOrCompute("k", intCodec, func() (int, time.Duration, error) {
				return 0, 0, fmt.Errorf("build must not run")
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil || vals[i] != 33 {
			t.Fatalf("caller %d: %d, %v", i, vals[i], errs[i])
		}
	}
	if disk.gets != 1 {
		t.Fatalf("disk consulted %d times under single flight, want 1", disk.gets)
	}
}
