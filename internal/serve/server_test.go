package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dse"
	"repro/internal/workload"
)

// The acceptance workload: small enough to simulate in well under a second,
// structured enough that design points actually differ.
const (
	testWorkload = "429.mcf"
	testMicroOps = 4000
)

var testAxes = []string{"L2D=8,12,16,20", "MemD=150,200,280"} // 12-point grid

func testBody(extra string) string {
	return fmt.Sprintf(`{"workload":%q,"axes":["L2D=8,12,16,20","MemD=150,200,280"],`+
		`"engine":"rpstacks","top":12,"micro_ops":%d,"timeout_ms":120000%s}`,
		testWorkload, testMicroOps, extra)
}

// submitJob POSTs a job body and returns the decoded view plus the status
// code.
func submitJob(t *testing.T, base, body string) (jobView, int) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return v, resp.StatusCode
}

// pollJob polls GET /jobs/{id} until the job reaches a terminal status.
func pollJob(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
		switch v.Status {
		case JobDone, JobFailed, JobTimeout, JobCanceled:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobView{}
}

// referencePoints replicates the server's setup pipeline directly — same
// warmup, same simulation, same analysis — then sweeps and ranks the grid
// independently of the server code, producing the point list every job
// response must match exactly.
func referencePoints(t *testing.T) []PointResult {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName(testWorkload)
	if !ok {
		t.Fatalf("unknown workload %s", testWorkload)
	}
	gen := workload.NewGenerator(prof, 0)
	warm := 3 * testMicroOps
	stream := gen.Take(warm + testMicroOps)
	cut := warm
	for cut < len(stream) && !stream[cut].SoM {
		cut++
	}
	sim, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.WarmCode(gen.CodeLines())
	sim.WarmData(gen.DataLines())
	sim.WarmUp(stream[:cut])
	tr, err := sim.Run(stream[cut:])
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var space dse.Space
	for _, raw := range testAxes {
		ax, err := dse.ParseAxisSpec(raw)
		if err != nil {
			t.Fatal(err)
		}
		space.Axes = append(space.Axes, ax)
	}
	rep := dse.ExploreRpStacks(a, space.Enumerate(cfg.Lat))

	// Independent ranking: ascending cycles, point index breaking ties.
	idx := make([]int, len(rep.Results))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if rep.Results[a].Cycles != rep.Results[b].Cycles {
			return rep.Results[a].Cycles < rep.Results[b].Cycles
		}
		return a < b
	})
	uops := float64(len(tr.Records))
	pts := make([]PointResult, len(idx))
	for k, i := range idx {
		lat := map[string]float64{}
		for _, ax := range space.Axes {
			lat[ax.Event.String()] = rep.Results[i].Lat[ax.Event]
		}
		pts[k] = PointResult{Latencies: lat, Cycles: rep.Results[i].Cycles, CPI: rep.Results[i].Cycles / uops}
	}
	return pts
}

// metricValue extracts one sample from a Prometheus text exposition.
func metricValue(t *testing.T, exposition, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %s value %q: %v", sample, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric sample %s not found in exposition", sample)
	return 0
}

// TestServerAcceptance is the subsystem's integration test: eight concurrent
// jobs over the same workload against an httptest server, every result
// matching a direct dse sweep point-for-point, the setup cost paid exactly
// once (one cache miss, the rest hits, visible in /metrics), and shutdown
// draining cleanly.
func TestServerAcceptance(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 32, SweepParallelism: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const jobs = 8
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, code := submitJob(t, ts.URL, testBody(""))
			if code != http.StatusAccepted {
				t.Errorf("job %d: submit status %d, want 202", i, code)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want := referencePoints(t)
	for i, id := range ids {
		v := pollJob(t, ts.URL, id)
		if v.Status != JobDone {
			t.Fatalf("job %d (%s): status %s (error %q), want done", i, id, v.Status, v.Error)
		}
		if v.Result == nil {
			t.Fatalf("job %d: done without a result", i)
		}
		if v.Result.GridPoints != len(want) {
			t.Fatalf("job %d: swept %d points, want %d", i, v.Result.GridPoints, len(want))
		}
		if len(v.Result.Points) != len(want) {
			t.Fatalf("job %d: returned %d points, want %d", i, len(v.Result.Points), len(want))
		}
		for k, got := range v.Result.Points {
			if got.Cycles != want[k].Cycles {
				t.Fatalf("job %d point %d: cycles %g, want %g", i, k, got.Cycles, want[k].Cycles)
			}
			for ev, lat := range want[k].Latencies {
				if got.Latencies[ev] != lat {
					t.Fatalf("job %d point %d: %s latency %g, want %g", i, k, ev, got.Latencies[ev], lat)
				}
			}
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	for _, cacheName := range []string{"workloads", "artifacts"} {
		misses := metricValue(t, exp, fmt.Sprintf("rpstacks_cache_misses_total{cache=%q}", cacheName))
		hits := metricValue(t, exp, fmt.Sprintf("rpstacks_cache_hits_total{cache=%q}", cacheName))
		if misses != 1 {
			t.Errorf("%s cache misses = %g, want exactly 1 (setup paid once)", cacheName, misses)
		}
		if hits != jobs-1 {
			t.Errorf("%s cache hits = %g, want %d", cacheName, hits, jobs-1)
		}
	}
	if v := metricValue(t, exp, "rpstacks_jobs_submitted_total"); v != jobs {
		t.Errorf("jobs submitted = %g, want %d", v, jobs)
	}
	if v := metricValue(t, exp, `rpstacks_jobs_total{status="done"}`); v != jobs {
		t.Errorf("jobs done = %g, want %d", v, jobs)
	}
	if v := metricValue(t, exp, `rpstacks_sweep_duration_seconds_count{engine="rpstacks"}`); v != jobs {
		t.Errorf("rpstacks sweeps observed = %g, want %d", v, jobs)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJobTimeoutDoesNotWedgeWorker submits a job whose deadline is far below
// its setup cost: it must come back with the timeout status, and the same
// worker must then complete a follow-up job normally.
func TestJobTimeoutDoesNotWedgeWorker(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	tight := fmt.Sprintf(`{"workload":%q,"axes":["L2D=8,12,16,20","MemD=150,200,280"],`+
		`"engine":"rpstacks","micro_ops":%d,"seed":7,"timeout_ms":1}`, testWorkload, testMicroOps)
	v, code := submitJob(t, ts.URL, tight)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if got := pollJob(t, ts.URL, v.ID); got.Status != JobTimeout {
		t.Fatalf("status %s (error %q), want timeout", got.Status, got.Error)
	}

	// The worker survives: the next job (same workload, so it reuses the
	// setup the timed-out job's cache build completed) finishes normally.
	v2, code := submitJob(t, ts.URL, testBody(`,"seed":7`))
	if code != http.StatusAccepted {
		t.Fatalf("second submit status %d, want 202", code)
	}
	if got := pollJob(t, ts.URL, v2.ID); got.Status != JobDone {
		t.Fatalf("follow-up status %s (error %q), want done", got.Status, got.Error)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestQueueShedsLoad fills the single worker and the depth-1 queue
// deterministically via the beforeJob hook, then requires the next submit to
// be shed with 429 and a Retry-After header.
func TestQueueShedsLoad(t *testing.T) {
	entered := make(chan string, 4)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.beforeJob = func(j *Job) {
		entered <- j.ID
		<-release
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, code := submitJob(t, ts.URL, testBody("")); code != http.StatusAccepted {
		t.Fatalf("job 1: status %d, want 202", code)
	}
	<-entered // the worker is now held mid-job; the queue is empty
	if _, code := submitJob(t, ts.URL, testBody("")); code != http.StatusAccepted {
		t.Fatalf("job 2: status %d, want 202", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(testBody("")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	close(release)
	<-entered // second job starts once the first finishes
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownDrains submits a burst of jobs and immediately shuts down:
// Shutdown must wait for every accepted job to finish (none lost, none
// abandoned) and later submissions must be refused with 503.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const jobs = 4
	ids := make([]string, jobs)
	for i := range ids {
		v, code := submitJob(t, ts.URL, testBody(""))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d, want 202", i, code)
		}
		ids[i] = v.ID
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, id := range ids {
		job, ok := s.lookup(id)
		if !ok {
			t.Fatalf("job %d evicted during drain", i)
		}
		if st := job.Status(); st != JobDone {
			t.Fatalf("job %d: status %s after drain, want done", i, st)
		}
	}
	if _, code := submitJob(t, ts.URL, testBody("")); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: status %d, want 503", code)
	}
}

// TestForcedShutdownCancels expires the Shutdown deadline while a job runs:
// Shutdown must still return (with the context error) and the abandoned job
// must finish as canceled rather than hang.
func TestForcedShutdownCancels(t *testing.T) {
	started := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 2})
	var once sync.Once
	s.beforeJob = func(*Job) { once.Do(func() { close(started) }) }
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("forced shutdown returned %v, want context.Canceled", err)
	}
	job, ok := s.lookup(v.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if st := job.Status(); st != JobCanceled {
		t.Fatalf("status %s after forced shutdown, want canceled", st)
	}
}

// TestSubmitRejectsInvalid checks the 400 path and its metric.
func TestSubmitRejectsInvalid(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{
		"{not json",
		`{"workload":"429.mcf"}`,                        // no axes
		`{"workload":"nope","axes":["L2D=8"]}`,          // unknown workload
		`{"workload":"429.mcf","axes":["L2D=8"],"x":1}`, // unknown field
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	if v := metricValue(t, exp, "rpstacks_requests_invalid_total"); v != 4 {
		t.Errorf("invalid requests = %g, want 4", v)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
