package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
)

// JobStatus is the lifecycle state of a submitted job.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobTimeout  JobStatus = "timeout"  // the per-job deadline expired mid-run
	JobCanceled JobStatus = "canceled" // a forced shutdown abandoned the run
)

// Job is one accepted exploration request moving through the queue.
type Job struct {
	ID        string
	Spec      *JobSpec
	Submitted time.Time

	// tracer is the job's flight recorder: a bounded span ring covering the
	// job's whole lifecycle (queue wait, setup, sweep chunks, cache and
	// store activity), exported by GET /debug/trace?job=<id>.
	tracer *obs.Tracer
	// root is the job's top-level span; queued covers the time between
	// submission and a worker claiming the job.
	root   obs.Span
	queued obs.Span

	mu       sync.Mutex
	status   JobStatus
	started  time.Time
	finished time.Time
	result   *JobResult
	err      error
	// audit is the shadow-audit outcome of an audited job; auditStatus
	// summarizes it ("ok" or "drift") for the job view and is empty when
	// the job did not request an audit.
	audit       *audit.Report
	auditStatus string
	// fleetFrags are the worker trace fragments of a fleet-delegated job,
	// collected from the coordinator after each fleet sweep (a search job
	// accumulates one batch per probe round). Non-empty fleetFrags switch
	// GET /debug/trace to the merged multi-process timeline.
	fleetFrags []*obs.Fragment
}

// Trace snapshots the job's flight recorder, oldest span first (nil when the
// job was accepted without tracing).
func (j *Job) Trace() []obs.Record { return j.tracer.Snapshot() }

// addFleetFragments appends worker trace fragments from one fleet sweep;
// search jobs call this once per probe round.
func (j *Job) addFleetFragments(frags []*obs.Fragment) {
	if len(frags) == 0 {
		return
	}
	j.mu.Lock()
	j.fleetFrags = append(j.fleetFrags, frags...)
	j.mu.Unlock()
}

// FleetFragments returns the job's collected worker trace fragments (nil for
// locally-run jobs).
func (j *Job) FleetFragments() []*obs.Fragment {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*obs.Fragment(nil), j.fleetFrags...)
}

// PointResult is one ranked design point: the explored axis latencies and
// the predicted cost.
type PointResult struct {
	Latencies map[string]float64 `json:"latencies"`
	Cycles    float64            `json:"cycles"`
	CPI       float64            `json:"cpi"`
	// Cost is the point's hardware-cost model value; search jobs only.
	Cost float64 `json:"cost,omitempty"`
	// VerifyErrPct is the online audit-oracle verification error of a
	// search-returned optimum, percent of the oracle's cycle count.
	VerifyErrPct float64 `json:"verify_err_pct,omitempty"`
}

// SearchSummary is the guided-search telemetry of a search job's result:
// how the lazy probe loop covered the (possibly non-materializable) grid
// and how its returned optima verified against the audit oracle.
type SearchSummary struct {
	Mode            string  `json:"mode"`
	GridPoints      int     `json:"grid_points"`
	Probes          int     `json:"probes"`
	ResumedProbes   int     `json:"resumed_probes,omitempty"`
	Rounds          int     `json:"rounds"`
	PeakBoxes       int     `json:"peak_boxes"`
	Converged       bool    `json:"converged"`
	Feasible        bool    `json:"feasible"`
	FrontierSize    int     `json:"frontier_size,omitempty"`
	Verified        bool    `json:"verified"`
	VerifyMaxErrPct float64 `json:"verify_max_err_pct"`
}

// JobResult is the outcome of one finished exploration.
type JobResult struct {
	Engine      string        `json:"engine"`
	TraceDigest string        `json:"trace_digest"`
	GridPoints  int           `json:"grid_points"`
	MicroOps    int           `json:"micro_ops"`
	Meeting     int           `json:"meeting_target,omitempty"` // points under the CPI target
	SetupMS     float64       `json:"setup_ms"`
	SetupCached bool          `json:"setup_cached"` // every setup phase was a cache hit
	SweepMS     float64       `json:"sweep_ms"`
	Workers     int           `json:"sweep_workers"`
	Points      []PointResult `json:"points"`
	// Search summarizes the probe loop of a guided-search job; nil for
	// exhaustive sweeps. Points then holds the verified optimum (halving,
	// target) or the full Pareto frontier, cheapest-fastest first.
	Search *SearchSummary `json:"search,omitempty"`
}

func (j *Job) setStatus(st JobStatus) {
	j.mu.Lock()
	j.status = st
	if st == JobRunning {
		j.started = time.Now()
	}
	j.mu.Unlock()
}

// complete records the terminal state, classifying context errors into the
// timeout and canceled statuses, and returns the status it settled on.
func (j *Job) complete(res *JobResult, err error) JobStatus {
	st := JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		st = JobTimeout
	case errors.Is(err, context.Canceled):
		st = JobCanceled
	default:
		st = JobFailed
	}
	j.mu.Lock()
	j.status = st
	j.finished = time.Now()
	j.result = res
	j.err = err
	j.mu.Unlock()
	return st
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// setAudit records the job's shadow-audit outcome; the audit status the view
// exposes flips to the report's ("drift" once any audited point exceeded the
// threshold).
func (j *Job) setAudit(rep *audit.Report) {
	j.mu.Lock()
	j.audit = rep
	j.auditStatus = rep.Status
	j.mu.Unlock()
}

// Audit returns the job's audit report, nil when the job was not audited
// (or has not finished its audit yet).
func (j *Job) Audit() *audit.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.audit
}

// AuditStatus returns the audit summary ("ok" or "drift"), empty when the
// job was not audited.
func (j *Job) AuditStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.auditStatus
}

// jobView is the JSON shape of a job in API responses.
type jobView struct {
	ID        string    `json:"id"`
	Status    JobStatus `json:"status"`
	Workload  string    `json:"workload,omitempty"`
	Engine    string    `json:"engine"`
	GridSize  int       `json:"grid_points"`
	Submitted time.Time `json:"submitted"`
	RunMS     float64   `json:"run_ms,omitempty"`
	Error     string    `json:"error,omitempty"`
	// AuditStatus is "ok" or "drift" for audited jobs; the full report is
	// served by GET /debug/audit?job=<id>.
	AuditStatus string     `json:"audit_status,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

// view snapshots the job for an API response; withResult includes the full
// ranked point list (GET /jobs/{id}) instead of just the summary row.
func (j *Job) view(withResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:        j.ID,
		Status:    j.status,
		Workload:  j.Spec.Workload,
		Engine:    j.Spec.Engine,
		GridSize:  j.Spec.GridSize,
		Submitted: j.Submitted,
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		v.RunMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	v.AuditStatus = j.auditStatus
	if withResult {
		v.Result = j.result
	}
	return v
}
