package serve

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs/journal"
	"repro/internal/serve/cache"
)

// journal.go — the HTTP face of the job journal and the aggregate debug
// snapshot. GET /debug/jobs lists flight records (filter by status/engine/
// since, newest first, bounded), GET /debug/jobs/{id} serves one record with
// its retained event log, GET /debug/jobs/{id}/events streams the live
// lifecycle as Server-Sent Events (resumable via Last-Event-ID), and
// GET /debug/status is the one-page operational snapshot.

// handleDebugJobs lists journal records. Query parameters: status, engine,
// since (RFC 3339), limit.
func (s *Server) handleDebugJobs(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		errJSON(w, http.StatusNotFound, "job journal is disabled")
		return
	}
	q := journal.Query{
		Status: r.URL.Query().Get("status"),
		Engine: r.URL.Query().Get("engine"),
	}
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			errJSON(w, http.StatusBadRequest, "bad since %q: %v (want RFC 3339)", v, err)
			return
		}
		q.Since = t
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			errJSON(w, http.StatusBadRequest, "bad limit %q (want a positive integer)", v)
			return
		}
		q.Limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.journal.List(q)})
}

// handleDebugJob serves one flight record, retained event log included —
// from memory while the job lives, from the durable store after a restart.
func (s *Server) handleDebugJob(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		errJSON(w, http.StatusNotFound, "job journal is disabled")
		return
	}
	id := r.PathValue("id")
	rec, ok := s.journal.Get(id)
	if !ok {
		errJSON(w, http.StatusNotFound, "no journal record for job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleDebugJobEvents streams a job's lifecycle as Server-Sent Events:
// queued → running → progress → fleet → done, each frame carrying the
// journal's Event JSON as its data line and the monotonic sequence number as
// its SSE id. A reconnecting client sends Last-Event-ID (or ?after=N) and
// replays exactly what it missed — from the retained log, or from the
// persisted record after a restart. The stream ends after the terminal
// event, or when the client disconnects.
func (s *Server) handleDebugJobEvents(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		errJSON(w, http.StatusNotFound, "job journal is disabled")
		return
	}
	id := r.PathValue("id")
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			errJSON(w, http.StatusBadRequest, "bad Last-Event-ID %q", v)
			return
		}
		after = n
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			errJSON(w, http.StatusBadRequest, "bad after %q", v)
			return
		}
		after = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		errJSON(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	sub, ok := s.journal.Subscribe(id, after)
	if !ok {
		errJSON(w, http.StatusNotFound, "no journal record for job %q", id)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// debugStatus is the aggregate snapshot GET /debug/status serves.
type debugStatus struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	JobsRunning   int     `json:"jobs_running"`
	JobsSubmitted float64 `json:"jobs_submitted_total"`
	JobsRejected  float64 `json:"jobs_rejected_total"`

	CacheHitRates map[string]float64 `json:"cache_hit_rates"`

	StoreEntries int   `json:"store_entries,omitempty"`
	StoreBytes   int64 `json:"store_bytes,omitempty"`

	Fleet *fleetStatus `json:"fleet,omitempty"`

	AuditDrift float64 `json:"audit_drift_total"`

	Journal *journal.Stats `json:"journal,omitempty"`

	SLOBurn map[string]float64 `json:"slo_burn_rates,omitempty"`
}

type fleetStatus struct {
	WorkersLive  int      `json:"workers_live"`
	Workers      []string `json:"workers"`
	ActiveSweeps int      `json:"active_sweeps"`
	Leases       int      `json:"leases"`
}

// snapshotStatus gathers the debug snapshot from every subsystem's own
// stats surface — nothing here double-accounts a metric family.
func (s *Server) snapshotStatus() debugStatus {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	ds := debugStatus{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		JobsRunning:   int(s.metrics.inflight.Value()),
		JobsSubmitted: s.metrics.submitted.Value(),
		JobsRejected:  s.metrics.rejected.Value(),
		AuditDrift:    s.metrics.auditDrift.Value(),
		CacheHitRates: map[string]float64{
			"artifacts": hitRate(s.artifacts.Stats()),
			"workloads": hitRate(s.workloads.Stats()),
		},
	}
	if s.store != nil {
		st := s.store.Stats()
		ds.StoreEntries = st.Entries
		ds.StoreBytes = st.Bytes
	}
	if s.fleet != nil {
		fs := s.fleet.Status()
		ds.Fleet = &fleetStatus{
			WorkersLive:  len(fs.Workers),
			Workers:      fs.Workers,
			ActiveSweeps: fs.ActiveSweeps,
			Leases:       fs.Leases,
		}
	}
	if s.journal != nil {
		js := s.journal.Stats()
		ds.Journal = &js
	}
	if s.metrics.slo != nil {
		ds.SLOBurn = make(map[string]float64, len(s.cfg.SLOTargets))
		for engine := range s.cfg.SLOTargets {
			ds.SLOBurn[engine] = s.metrics.slo.BurnRate(engine, 5*time.Minute)
		}
	}
	return ds
}

// hitRate is memory hits over lookups (tier hits count as hits too: a
// disk-served lookup avoided the build either way).
func hitRate(st cache.TieredStats) float64 {
	hits := float64(st.Memory.Hits + st.DiskHits)
	total := float64(st.Memory.Hits + st.Memory.Misses)
	if total == 0 {
		return 0
	}
	return hits / total
}

// handleDebugStatus serves the aggregate snapshot: JSON by default, a small
// human page with ?format=html.
func (s *Server) handleDebugStatus(w http.ResponseWriter, r *http.Request) {
	ds := s.snapshotStatus()
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, ds)
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		writeStatusHTML(w, ds)
	default:
		errJSON(w, http.StatusBadRequest, "unknown status format %q (want json or html)", r.URL.Query().Get("format"))
	}
}

// writeStatusHTML renders the snapshot as one key-value table per section —
// deliberately dependency-free and unstyled beyond legibility.
func writeStatusHTML(w http.ResponseWriter, ds debugStatus) {
	row := func(k string, v any) {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(k), html.EscapeString(fmt.Sprint(v)))
	}
	section := func(title string) {
		fmt.Fprintf(w, "<h2>%s</h2>\n<table border=\"1\" cellpadding=\"4\">\n", html.EscapeString(title))
	}
	end := func() { fmt.Fprint(w, "</table>\n") }

	fmt.Fprint(w, "<!DOCTYPE html>\n<html><head><title>rpserved status</title></head><body>\n")
	fmt.Fprintf(w, "<h1>rpserved: %s</h1>\n", html.EscapeString(ds.Status))

	section("Jobs")
	row("uptime", fmt.Sprintf("%.0fs", ds.UptimeSeconds))
	row("queue depth", fmt.Sprintf("%d / %d", ds.QueueDepth, ds.QueueCapacity))
	row("running", ds.JobsRunning)
	row("submitted", ds.JobsSubmitted)
	row("rejected", ds.JobsRejected)
	row("audit drift points", ds.AuditDrift)
	end()

	section("Caches")
	names := make([]string, 0, len(ds.CacheHitRates))
	for name := range ds.CacheHitRates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row(name+" hit rate", fmt.Sprintf("%.1f%%", 100*ds.CacheHitRates[name]))
	}
	if ds.StoreEntries > 0 || ds.StoreBytes > 0 {
		row("store entries", ds.StoreEntries)
		row("store bytes", ds.StoreBytes)
	}
	end()

	if ds.Fleet != nil {
		section("Fleet")
		row("workers live", ds.Fleet.WorkersLive)
		for _, wk := range ds.Fleet.Workers {
			row("worker", wk)
		}
		row("active sweeps", ds.Fleet.ActiveSweeps)
		row("leases", ds.Fleet.Leases)
		end()
	}

	if ds.Journal != nil {
		section("Journal")
		row("records in memory", ds.Journal.Records)
		row("records persisted", ds.Journal.Persisted)
		row("live subscribers", ds.Journal.Subscribers)
		row("events dropped", ds.Journal.Dropped)
		row("persist errors", ds.Journal.PersistErrors)
		end()
	}

	if len(ds.SLOBurn) > 0 {
		section("SLO burn (5m)")
		engines := make([]string, 0, len(ds.SLOBurn))
		for engine := range ds.SLOBurn {
			engines = append(engines, engine)
		}
		sort.Strings(engines)
		for _, engine := range engines {
			row(engine, fmt.Sprintf("%.2f", ds.SLOBurn[engine]))
		}
		end()
	}

	fmt.Fprint(w, "</body></html>\n")
}
