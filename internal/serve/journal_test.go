package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/journal"
	"repro/internal/store"
)

// journal_test.go — the serve-layer acceptance tests for the job journal:
// flight records over HTTP, the SSE lifecycle stream (live, resumed, and
// replayed after a restart), the journal-on/off differential, the slow-job
// warning, /debug/status, and the SLO metric families.

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	id    uint64
	event string
	data  journal.Event
}

// readFrame parses the next SSE frame off the stream; ok is false at EOF.
func readFrame(t *testing.T, br *bufio.Reader) (sseFrame, bool) {
	t.Helper()
	var f sseFrame
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if seen {
				t.Fatalf("stream ended mid-frame: %v", err)
			}
			return f, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, true
			}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			f.id = n
			seen = true
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
			seen = true
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.data); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			seen = true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

// streamSSE opens a job's event stream (resuming after lastEventID when
// non-empty) and reads it to completion.
func streamSSE(t *testing.T, base, id, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/debug/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var frames []sseFrame
	br := bufio.NewReader(resp.Body)
	for {
		f, ok := readFrame(t, br)
		if !ok {
			return frames
		}
		frames = append(frames, f)
	}
}

// checkLifecycle asserts the canonical frame grammar: queued first, running
// next, monotonically increasing ids, and a terminal done frame last.
func checkLifecycle(t *testing.T, frames []sseFrame, wantStatus string) {
	t.Helper()
	if len(frames) < 3 {
		t.Fatalf("stream of %d frames, want at least queued/running/done", len(frames))
	}
	if frames[0].event != "queued" || frames[1].event != "running" {
		t.Errorf("stream opens %s, %s, want queued, running", frames[0].event, frames[1].event)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].id <= frames[i-1].id {
			t.Errorf("frame %d id %d not after %d", i, frames[i].id, frames[i-1].id)
		}
	}
	last := frames[len(frames)-1]
	if last.event != "done" || last.data.Status != wantStatus {
		t.Errorf("terminal frame event=%s status=%s, want done/%s", last.event, last.data.Status, wantStatus)
	}
}

// getRecord fetches one flight record, waiting out the small window between
// the job's status flip and the journal's terminal write.
func getRecord(t *testing.T, base, id string) journal.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var rec journal.Record
		code := resp.StatusCode
		body := readAll(t, resp)
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &rec); err != nil {
				t.Fatalf("record not JSON: %v\n%s", err, body)
			}
			if rec.Status != "queued" && rec.Status != "running" {
				return rec
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no finished record for %s (last status %d: %s)", id, code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalFlightRecord runs one job and audits its wide-event record and
// the list endpoint's filters.
func TestJournalFlightRecord(t *testing.T) {
	s := New(Config{Workers: 2, SweepParallelism: 2, JournalProgressInterval: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if done := pollJob(t, ts.URL, v.ID); done.Status != JobDone {
		t.Fatalf("job status %s", done.Status)
	}

	rec := getRecord(t, ts.URL, v.ID)
	if rec.Status != "done" || rec.Engine != "rpstacks" || rec.Workload != testWorkload {
		t.Errorf("record identity %+v", rec)
	}
	if rec.GridPoints != 12 || rec.TraceDigest == "" || rec.SweepMS <= 0 {
		t.Errorf("record sweep summary: grid=%d digest=%q sweep_ms=%g", rec.GridPoints, rec.TraceDigest, rec.SweepMS)
	}
	if rec.Workers <= 0 {
		t.Errorf("record workers = %d, want positive", rec.Workers)
	}
	if rec.CacheBuilds == 0 {
		t.Error("cold-start job recorded no cache builds")
	}
	if rec.Finished.Before(rec.Started) || rec.Started.Before(rec.Submitted) {
		t.Errorf("timestamps out of order: %v / %v / %v", rec.Submitted, rec.Started, rec.Finished)
	}
	if len(rec.Events) == 0 || rec.Events[len(rec.Events)-1].Type != "done" {
		t.Fatalf("retained events do not end in done: %+v", rec.Events)
	}
	var lastProgress journal.Event
	for _, ev := range rec.Events {
		if ev.Type == "progress" {
			lastProgress = ev
		}
	}
	if lastProgress.Done != 12 || lastProgress.Total != 12 {
		t.Errorf("final progress event %+v, want 12/12", lastProgress)
	}

	// The list endpoint and its filters.
	list := func(query string) []journal.Record {
		resp, err := http.Get(ts.URL + "/debug/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q status %d", query, resp.StatusCode)
		}
		var out struct {
			Jobs []journal.Record `json:"jobs"`
		}
		if err := json.Unmarshal([]byte(readAll(t, resp)), &out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs
	}
	if got := list(""); len(got) != 1 || got[0].JobID != v.ID || got[0].Events != nil {
		t.Errorf("list = %+v, want one event-free record for %s", got, v.ID)
	}
	if got := list("?status=done&engine=rpstacks"); len(got) != 1 {
		t.Errorf("matching filter returned %d records", len(got))
	}
	if got := list("?engine=graph"); len(got) != 0 {
		t.Errorf("engine filter returned %d records, want 0", len(got))
	}
	if got := list("?since=" + time.Now().Add(time.Hour).UTC().Format(time.RFC3339)); len(got) != 0 {
		t.Errorf("future since returned %d records, want 0", len(got))
	}
	for _, bad := range []string{"?since=yesterday", "?limit=0", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/debug/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("list %q status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown record status %d, want 404", resp.StatusCode)
	}
}

// TestJournalSSELiveStream attaches the SSE client while the job is still
// held in the queue, so the queued frame is delivered live and the rest of
// the lifecycle streams as it happens.
func TestJournalSSELiveStream(t *testing.T) {
	s := New(Config{Workers: 2, SweepParallelism: 2, JournalProgressInterval: -1})
	gate := make(chan struct{})
	s.beforeJob = func(*Job) { <-gate }
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	resp, err := http.Get(ts.URL + "/debug/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, ok := readFrame(t, br)
	if !ok || first.event != "queued" {
		t.Fatalf("first live frame %+v ok=%v, want queued", first, ok)
	}
	// The client is attached; let the job run and stream to completion.
	close(gate)
	frames := []sseFrame{first}
	for {
		f, ok := readFrame(t, br)
		if !ok {
			break
		}
		frames = append(frames, f)
	}
	checkLifecycle(t, frames, "done")
	var progress int
	for _, f := range frames {
		if f.event == "progress" {
			progress++
			if f.data.Total != 12 {
				t.Errorf("progress frame total %d, want 12", f.data.Total)
			}
		}
	}
	if progress == 0 {
		t.Error("live stream carried no progress frames")
	}
}

// TestJournalSSEResume replays a finished job's stream, then reconnects with
// Last-Event-ID and gets exactly the suffix.
func TestJournalSSEResume(t *testing.T) {
	s := New(Config{Workers: 2, SweepParallelism: 2, JournalProgressInterval: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, v.ID)
	getRecord(t, ts.URL, v.ID)

	full := streamSSE(t, ts.URL, v.ID, "")
	checkLifecycle(t, full, "done")

	// Reconnect as a client that saw the first two frames.
	resume := streamSSE(t, ts.URL, v.ID, strconv.FormatUint(full[1].id, 10))
	if len(resume) != len(full)-2 {
		t.Fatalf("resume replayed %d frames, want %d", len(resume), len(full)-2)
	}
	for i, f := range resume {
		if f.id != full[i+2].id || f.event != full[i+2].event {
			t.Errorf("resume frame %d = (%d, %s), want (%d, %s)", i, f.id, f.event, full[i+2].id, full[i+2].event)
		}
	}
	// ?after= is the header's query-param twin, and it wins when both are
	// present.
	req, err := http.NewRequest("GET", ts.URL+"/debug/jobs/"+v.ID+"/events?after="+strconv.FormatUint(full[len(full)-1].id, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); strings.Contains(body, "data: ") {
		t.Errorf("replay after the terminal id delivered frames:\n%s", body)
	}

	// Malformed resume positions are rejected.
	req, _ = http.NewRequest("GET", ts.URL+"/debug/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/jobs/no-such-job/events")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stream status %d, want 404", resp.StatusCode)
	}
}

// TestJournalSSEClientDisconnect: a client that walks away mid-stream
// detaches its subscription without disturbing the job.
func TestJournalSSEClientDisconnect(t *testing.T) {
	s := New(Config{Workers: 1, SweepParallelism: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A job the journal knows but no worker will ever finish: the stream
	// stays open until the client hangs up.
	s.journal.JobQueued("ghost", journal.Record{Engine: "rpstacks", GridPoints: 4})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/debug/jobs/ghost/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if f, ok := readFrame(t, br); !ok || f.event != "queued" {
		t.Fatalf("first frame %+v ok=%v, want queued", f, ok)
	}
	if subs := s.journal.Stats().Subscribers; subs != 1 {
		t.Fatalf("subscribers = %d with a client attached, want 1", subs)
	}
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.journal.Stats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not detached after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalSurvivesServerRestart: a second service lifetime over the same
// store directory serves the first lifetime's flight record and replays its
// event log, without ever having seen the job.
func TestJournalSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 2, SweepParallelism: 2, Store: st1, JournalProgressInterval: -1})
	ts1 := httptest.NewServer(s1)
	v, code := submitJob(t, ts1.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts1.URL, v.ID)
	first := getRecord(t, ts1.URL, v.ID)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 2, SweepParallelism: 2, Store: st2})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	second := getRecord(t, ts2.URL, v.ID)
	if second.Status != "done" || second.TraceDigest != first.TraceDigest || second.JobID != v.ID {
		t.Errorf("restarted record %+v, want the first lifetime's (%+v)", second, first)
	}
	if len(second.Events) != len(first.Events) {
		t.Errorf("restarted record retained %d events, want %d", len(second.Events), len(first.Events))
	}
	resp, err := http.Get(ts2.URL + "/debug/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); !strings.Contains(body, v.ID) {
		t.Errorf("restarted list omits %s:\n%s", v.ID, body)
	}
	frames := streamSSE(t, ts2.URL, v.ID, "")
	checkLifecycle(t, frames, "done")
	// Last-Event-ID resume works from the persisted log too.
	resume := streamSSE(t, ts2.URL, v.ID, strconv.FormatUint(frames[0].id, 10))
	if len(resume) != len(frames)-1 {
		t.Errorf("persisted resume replayed %d frames, want %d", len(resume), len(frames)-1)
	}
}

// TestJournalDifferential: the journal must be observationally inert — the
// same job's ranked sweep result is bit-identical with the journal on and
// off, and the disabled form 404s its endpoints.
func TestJournalDifferential(t *testing.T) {
	run := func(journalCap int) (*Server, *httptest.Server, *JobResult) {
		s := New(Config{Workers: 2, SweepParallelism: 2, JournalCapacity: journalCap})
		ts := httptest.NewServer(s)
		v, code := submitJob(t, ts.URL, testBody(""))
		if code != http.StatusAccepted {
			t.Fatalf("submit status %d", code)
		}
		done := pollJob(t, ts.URL, v.ID)
		if done.Status != JobDone {
			t.Fatalf("job status %s", done.Status)
		}
		return s, ts, done.Result
	}

	sOn, tsOn, on := run(0)
	defer tsOn.Close()
	sOff, tsOff, off := run(-1)
	defer tsOff.Close()

	if sOn.journal == nil {
		t.Fatal("default config left the journal disabled")
	}
	if sOff.journal != nil {
		t.Fatal("negative capacity did not disable the journal")
	}
	if got, want := pointsJSON(t, on), pointsJSON(t, off); got != want {
		t.Fatalf("journal changed the sweep result:\non:  %s\noff: %s", got, want)
	}
	for _, path := range []string{"/debug/jobs", "/debug/jobs/x", "/debug/jobs/x/events"} {
		resp, err := http.Get(tsOff.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
			t.Errorf("disabled journal: GET %s status %d, want 404", path, resp.StatusCode)
		}
	}
	// /debug/status stays up either way, just without a journal section.
	resp, err := http.Get(tsOff.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || strings.Contains(body, `"journal"`) {
		t.Errorf("disabled-journal status: %d\n%s", resp.StatusCode, body)
	}
}

// syncBuf is a goroutine-safe log sink.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowJobWarning: on an injected clock every job takes "too long", and
// the one structured warning carries the journal's per-stage breakdown.
func TestSlowJobWarning(t *testing.T) {
	var (
		mu  sync.Mutex
		now = time.Unix(50_000, 0)
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(100 * time.Millisecond)
		return now
	}
	var logs syncBuf
	s := New(Config{
		Workers:          2,
		SweepParallelism: 2,
		SlowJobThreshold: time.Millisecond,
		Clock:            clock,
		Logger:           slog.New(slog.NewTextHandler(&logs, nil)),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, v.ID)

	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(logs.String(), "slow job") {
		if time.Now().After(deadline) {
			t.Fatalf("no slow-job warning logged:\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	out := logs.String()
	for _, want := range []string{
		`msg="slow job: wall-clock exceeded threshold"`,
		"job_id=" + v.ID,
		"engine=rpstacks",
		"trace_digest=",
		"queue_ms=",
		"setup_ms=",
		"sweep_ms=",
		"threshold=1ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-job warning missing %q:\n%s", want, out)
		}
	}
}

// TestDebugStatus: the aggregate snapshot reflects a served job in JSON and
// HTML, and rejects unknown formats.
func TestDebugStatus(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:          2,
		SweepParallelism: 2,
		Store:            st,
		SLOTargets:       map[string]time.Duration{"rpstacks": time.Hour},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	pollJob(t, ts.URL, v.ID)
	getRecord(t, ts.URL, v.ID)

	// The record's terminal write precedes its persistence; wait for the
	// index to land before asserting on the snapshot.
	var ds map[string]any
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/debug/status")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(readAll(t, resp)), &ds); err != nil {
			t.Fatalf("status not JSON: %v", err)
		}
		if jn, ok := ds["journal"].(map[string]any); ok {
			if n, _ := jn["Persisted"].(float64); n >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal record never persisted: %v", ds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ds["status"] != "ok" {
		t.Errorf("status = %v, want ok", ds["status"])
	}
	if n, _ := ds["jobs_submitted_total"].(float64); n < 1 {
		t.Errorf("jobs_submitted_total = %v, want >= 1", ds["jobs_submitted_total"])
	}
	if _, ok := ds["cache_hit_rates"].(map[string]any)["artifacts"]; !ok {
		t.Errorf("cache_hit_rates missing artifacts: %v", ds["cache_hit_rates"])
	}
	if n, _ := ds["store_entries"].(float64); n < 1 {
		t.Errorf("store_entries = %v, want >= 1", ds["store_entries"])
	}
	jn, ok := ds["journal"].(map[string]any)
	if !ok {
		t.Fatalf("status has no journal section: %v", ds)
	}
	if n, _ := jn["Persisted"].(float64); n < 1 {
		t.Errorf("journal persisted = %v, want >= 1", jn["Persisted"])
	}
	burns, ok := ds["slo_burn_rates"].(map[string]any)
	if !ok {
		t.Fatalf("status has no slo_burn_rates: %v", ds)
	}
	if _, ok := burns["rpstacks"]; !ok {
		t.Errorf("slo_burn_rates missing rpstacks: %v", burns)
	}

	resp, err := http.Get(ts.URL + "/debug/status?format=html")
	if err != nil {
		t.Fatal(err)
	}
	html := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("html format content type %q", ct)
	}
	for _, want := range []string{"<h1>rpserved: ok</h1>", "Journal", "SLO burn"} {
		if !strings.Contains(html, want) {
			t.Errorf("html status missing %q:\n%s", want, html)
		}
	}
	resp, err = http.Get(ts.URL + "/debug/status?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status %d, want 400", resp.StatusCode)
	}
}

// TestSLOAndUptimeExposition: the SLO families and the process-start gauge
// land on /metrics after a served job, and /healthz reports uptime.
func TestSLOAndUptimeExposition(t *testing.T) {
	s := New(Config{
		Workers:          2,
		SweepParallelism: 2,
		SLOTargets:       map[string]time.Duration{"rpstacks": time.Hour, "graph": 500 * time.Millisecond},
		SLOObjective:     0.9,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if done := pollJob(t, ts.URL, v.ID); done.Status != JobDone {
		t.Fatalf("job status %s", done.Status)
	}
	// The SLO observation lands just after the status flip; wait it out via
	// the journal's terminal write, which precedes it.
	getRecord(t, ts.URL, v.ID)

	deadline := time.Now().Add(5 * time.Second)
	var exp string
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		exp = readAll(t, resp)
		if strings.Contains(exp, `rpstacks_slo_events_total{class="rpstacks"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SLO event never counted:\n%s", exp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metricValue(t, exp, `rpstacks_slo_good_total{class="rpstacks"}`); got != 1 {
		t.Errorf("good events = %g, want 1 (a done job under a 1h threshold)", got)
	}
	// The undeclared-traffic class still exposes its zero rows.
	if got := metricValue(t, exp, `rpstacks_slo_events_total{class="graph"}`); got != 0 {
		t.Errorf("graph events = %g, want 0", got)
	}
	for _, want := range []string{
		`rpstacks_slo_target_info{class="graph",threshold_ms="500",objective="0.9"} 1`,
		`rpstacks_slo_burn_rate{class="rpstacks",window="5m"} 0`,
		`rpstacks_slo_burn_rate{class="rpstacks",window="1h"} 0`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := metricValue(t, exp, "rpstacks_process_start_time_seconds"); got <= 0 {
		t.Errorf("process start gauge = %g, want a Unix timestamp", got)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(readAll(t, resp)), &health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["uptime_seconds"].(float64); !ok {
		t.Errorf("healthz missing uptime_seconds: %v", health)
	}
}

// TestJournalSSEFleetJob: a fleet-delegated sweep streams too — chunk
// completions from worker self-reports become progress frames, lease grants
// become fleet frames, and the flight record counts the fleet's churn.
func TestJournalSSEFleetJob(t *testing.T) {
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:                 2,
		QueueDepth:              8,
		SweepParallelism:        2,
		FleetStore:              shared,
		FleetLeaseTTL:           time.Minute,
		FleetChunkSize:          3, // 12-point grid -> 4 chunks
		JournalProgressInterval: -1,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	startServeWorkers(t, ts.URL, shared, 2)

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if done := pollJob(t, ts.URL, v.ID); done.Status != JobDone {
		t.Fatalf("status %s", done.Status)
	}

	rec := getRecord(t, ts.URL, v.ID)
	if rec.FleetChunks != 4 {
		t.Errorf("fleet chunks = %d, want 4", rec.FleetChunks)
	}
	if rec.FleetWorkers < 1 {
		t.Errorf("fleet workers = %d, want >= 1", rec.FleetWorkers)
	}

	frames := streamSSE(t, ts.URL, v.ID, "")
	checkLifecycle(t, frames, "done")
	var leases int
	var lastProgress journal.Event
	for _, f := range frames {
		switch f.event {
		case "fleet":
			if f.data.Chunk == nil || f.data.Worker == "" {
				t.Errorf("fleet frame without chunk/worker: %+v", f.data)
			}
			if f.data.Fleet == "lease" || f.data.Fleet == "steal" {
				leases++
			}
		case "progress":
			lastProgress = f.data
		}
	}
	// Every chunk is granted at least once; re-grants (steals, or a lease
	// beaten to publication) can add frames under load, so a lower bound.
	if leases < 4 {
		t.Errorf("lease frames = %d, want >= 4 grants", leases)
	}
	if lastProgress.Done != 12 || lastProgress.Total != 12 {
		t.Errorf("final fleet progress %+v, want 12/12", lastProgress)
	}
	// The snapshot sees the fleet too.
	resp, err := http.Get(ts.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	var ds map[string]any
	if err := json.Unmarshal([]byte(readAll(t, resp)), &ds); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds["fleet"].(map[string]any); !ok {
		t.Errorf("status has no fleet section: %v", ds)
	}
}
