package serve

import (
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"repro/internal/audit"
	"repro/internal/dse"
	"repro/internal/obs"
	"repro/internal/obs/prom"
	"repro/internal/serve/cache"
)

// metrics.go — the service's observability surface, built on the shared
// obs/prom registry. Counters the request path owns are updated in place;
// queue, cache and store state is pulled at scrape time from its owners so
// nothing is double-accounted. All metric names carry the rpstacks_ prefix
// (renamed from the pre-registry rpserved_ names — a breaking change for
// scrapers, noted in DESIGN.md §8).

// sweepBuckets are the per-engine sweep-latency histogram bounds in
// seconds. RpStacks sweeps land in the sub-millisecond buckets, graph
// reconstruction in the middle, and per-point re-simulation at the top —
// the spread is the paper's Figure 2b as an operational signal.
var sweepBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// stageBuckets cover the job lifecycle stages, which range from microsecond
// queue waits to multi-second cold setups.
var stageBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}

// jobStatuses are the terminal states the jobs_total counter is labelled
// with, in render order.
var jobStatuses = []JobStatus{JobDone, JobFailed, JobTimeout, JobCanceled}

// stageNames are the span-derived lifecycle stages exported as a histogram,
// in render order.
var stageNames = []string{"queue-wait", "setup", "chunk-evaluate"}

// auditErrBuckets are the per-point audit CPI-error histogram bounds in
// percent: the paper's headline accuracy lands around 1%, so the low buckets
// resolve healthy operation and the high ones resolve drift.
var auditErrBuckets = []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 25, 100}

// auditOutcomes are the audit point-counter labels, in render order.
var auditOutcomes = []string{"audited", "skipped_budget"}

// searchModes are the guided-search mode labels, in render order.
var searchModes = []string{dse.SearchHalving, dse.SearchPareto, dse.SearchTarget}

// frontierBuckets bound the Pareto-frontier size histogram: a frontier is
// at most min(distinct cycle values, distinct cost values), small in
// practice even over huge grids.
var frontierBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// metrics holds the service's owned metric handles plus the registry that
// renders everything.
type metrics struct {
	reg       *prom.Registry
	submitted *prom.Counter
	rejected  *prom.Counter
	invalid   *prom.Counter
	inflight  *prom.Gauge
	finished  *prom.CounterVec
	sweeps    *prom.HistogramVec
	stages    *prom.HistogramVec

	auditErrors     *prom.Histogram
	auditDivergence *prom.HistogramVec
	auditPoints     *prom.CounterVec
	auditDrift      *prom.Counter

	searchProbes   *prom.CounterVec
	searchResumed  *prom.CounterVec
	searchRounds   *prom.CounterVec
	searchFrontier *prom.Histogram

	// slo is the latency-objective layer; nil unless Config.SLOTargets set
	// any. New wires it after newMetrics because it needs the server clock.
	slo *prom.SLO
}

func newMetrics() *metrics {
	reg := prom.NewRegistry()
	m := &metrics{
		reg:       reg,
		submitted: reg.Counter("rpstacks_jobs_submitted_total", "Jobs accepted onto the queue."),
		rejected:  reg.Counter("rpstacks_jobs_rejected_total", "Jobs shed with 429 because the queue was full."),
		invalid:   reg.Counter("rpstacks_requests_invalid_total", "Submissions rejected with 400."),
		finished:  reg.CounterVec("rpstacks_jobs_total", "Finished jobs by terminal status.", "status"),
		inflight:  reg.Gauge("rpstacks_jobs_inflight", "Jobs currently running on a worker."),
		sweeps: reg.HistogramVec("rpstacks_sweep_duration_seconds",
			"Per-engine design-space sweep wall-clock.", sweepBuckets, "engine"),
		stages: reg.HistogramVec("rpstacks_stage_duration_seconds",
			"Span-derived job lifecycle stage durations.", stageBuckets, "stage"),
		auditErrors: reg.Histogram("rpstacks_audit_error_pct",
			"Per-point shadow-audit CPI error, percent of ground truth.", auditErrBuckets),
		auditDivergence: reg.HistogramVec("rpstacks_audit_divergence_pct",
			"Per-point stall-stack divergence by penalty class, percent of ground-truth cycles.",
			auditErrBuckets, "class"),
		auditPoints: reg.CounterVec("rpstacks_audit_points_total",
			"Sampled audit points by outcome.", "outcome"),
		auditDrift: reg.Counter("rpstacks_audit_drift_total",
			"Audited points whose prediction error exceeded the drift threshold."),
		searchProbes: reg.CounterVec("rpstacks_search_probes_total",
			"Design points evaluated by guided searches, by mode.", "mode"),
		searchResumed: reg.CounterVec("rpstacks_search_resumed_probes_total",
			"Search probes restored from probe logs instead of re-evaluated, by mode.", "mode"),
		searchRounds: reg.CounterVec("rpstacks_search_rounds_total",
			"Probe rounds run by guided searches, by mode.", "mode"),
		searchFrontier: reg.Histogram("rpstacks_search_frontier_size",
			"Pareto-frontier sizes returned by pareto searches.", frontierBuckets),
	}
	// Pre-create every labelled row so the exposition is complete and its
	// order deterministic from the first scrape.
	for _, st := range jobStatuses {
		m.finished.With(string(st))
	}
	for _, engine := range engineNames {
		m.sweeps.With(engine)
	}
	for _, stage := range stageNames {
		m.stages.With(stage)
	}
	for _, class := range audit.ClassNames() {
		m.auditDivergence.With(class)
	}
	for _, outcome := range auditOutcomes {
		m.auditPoints.With(outcome)
	}
	for _, mode := range searchModes {
		m.searchProbes.With(mode)
		m.searchResumed.With(mode)
		m.searchRounds.With(mode)
	}
	registerBuildInfo(reg)
	return m
}

// registerBuildInfo exports the binary's identity as the conventional
// constant-1 info gauge, so dashboards can join error rates to the exact
// build that produced them. Fields the build left unstamped (no VCS in the
// test sandbox, a devel toolchain) render as "unknown" rather than vanishing.
func registerBuildInfo(reg *prom.Registry) {
	goVersion, version, revision, vcsTime := "unknown", "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				revision = kv.Value
			case "vcs.time":
				vcsTime = kv.Value
			}
		}
	}
	reg.GaugeVec("rpstacks_build_info",
		"Build metadata of the serving binary; the value is always 1.",
		"go_version", "version", "revision", "vcs_time").
		With(goVersion, version, revision, vcsTime).Set(1)
}

// observeAuditPoint feeds one audited point into the accuracy families; it
// is the audit run's OnPoint hook. The exemplar carries the point's latency
// configuration plus the job and trace identity, so the worst observation
// names the design point that produced it.
func (m *metrics) observeAuditPoint(p audit.PointAudit, jobID, digest string) {
	m.auditErrors.ObserveExemplar(p.ErrorPct,
		fmt.Sprintf("job_id=%q,trace_digest=%q,config=%q", jobID, digest, p.Config()))
	for class, pct := range p.Divergence {
		m.auditDivergence.With(class).Observe(pct)
	}
	if p.Drift {
		m.auditDrift.Inc()
	}
	m.auditPoints.With("audited").Inc()
}

// observeSearch feeds one finished guided search into the search families.
func (m *metrics) observeSearch(res *dse.SearchResult) {
	m.searchProbes.With(res.Mode).Add(float64(res.Probes))
	m.searchResumed.With(res.Mode).Add(float64(res.ResumedProbes))
	m.searchRounds.With(res.Mode).Add(float64(res.Rounds))
	if res.Mode == dse.SearchPareto {
		m.searchFrontier.Observe(float64(len(res.Frontier)))
	}
}

func (m *metrics) jobFinished(st JobStatus) {
	m.finished.With(string(st)).Inc()
}

// observeSweep records one sweep's wall-clock; exemplar carries the job and
// trace identity that the slowest observation surfaces on /metrics.
func (m *metrics) observeSweep(engine string, wall time.Duration, exemplar string) {
	m.sweeps.With(engine).ObserveExemplar(wall.Seconds(), exemplar)
}

// observeSpan derives stage histograms from completed spans; it is every
// per-job tracer's WithOnEnd hook, so queue waits, setup phases and sweep
// chunks feed /metrics without separate bookkeeping at the call sites.
func (m *metrics) observeSpan(rec obs.Record) {
	switch {
	case rec.Cat == obs.CatJob && rec.Name == obs.NameQueueWait:
		m.stages.With("queue-wait").Observe(rec.Dur.Seconds())
	case rec.Cat == obs.CatJob && rec.Name == obs.NameSetup:
		m.stages.With("setup").Observe(rec.Dur.Seconds())
	case rec.Cat == obs.CatDSE && rec.Name == obs.NameChunk:
		m.stages.With("chunk-evaluate").Observe(rec.Dur.Seconds())
	}
}

// registerCollectors installs the pull-style families over state owned
// elsewhere: queue occupancy, both cache tiers and (when configured) the
// durable store. Called once from New, after those owners exist.
func (s *Server) registerCollectors() {
	reg := s.metrics.reg
	reg.Collect("rpstacks_queue_depth", "Jobs waiting on the queue.", "gauge",
		func(emit func(string, float64)) { emit("", float64(len(s.queue))) })
	reg.Collect("rpstacks_queue_capacity", "Bound of the job queue.", "gauge",
		func(emit func(string, float64)) { emit("", float64(cap(s.queue))) })

	caches := func(visit func(name string, st cache.TieredStats)) {
		visit("artifacts", s.artifacts.Stats())
		visit("workloads", s.workloads.Stats())
	}
	label := func(name string) string { return fmt.Sprintf("{cache=%q}", name) }
	reg.Collect("rpstacks_cache_hits_total", "In-memory cache hits.", "counter",
		func(emit func(string, float64)) {
			caches(func(n string, st cache.TieredStats) { emit(label(n), float64(st.Memory.Hits)) })
		})
	reg.Collect("rpstacks_cache_misses_total", "In-memory cache misses.", "counter",
		func(emit func(string, float64)) {
			caches(func(n string, st cache.TieredStats) { emit(label(n), float64(st.Memory.Misses)) })
		})
	reg.Collect("rpstacks_cache_evictions_total", "In-memory cache evictions.", "counter",
		func(emit func(string, float64)) {
			caches(func(n string, st cache.TieredStats) { emit(label(n), float64(st.Memory.Evictions)) })
		})
	reg.Collect("rpstacks_cache_entries", "Completed in-memory cache entries.", "gauge",
		func(emit func(string, float64)) {
			caches(func(n string, st cache.TieredStats) { emit(label(n), float64(st.Memory.Entries)) })
		})
	reg.Collect("rpstacks_cache_disk_hits_total", "Lookups served from the durable tier.", "counter",
		func(emit func(string, float64)) {
			caches(func(n string, st cache.TieredStats) { emit(label(n), float64(st.DiskHits)) })
		})
	reg.Collect("rpstacks_cache_codec_errors_total", "Codec failures at the durable-tier boundary.", "counter",
		func(emit func(string, float64)) {
			caches(func(n string, st cache.TieredStats) {
				emit(fmt.Sprintf("{cache=%q,kind=\"decode\"}", n), float64(st.DecodeErrors))
				emit(fmt.Sprintf("{cache=%q,kind=\"encode\"}", n), float64(st.EncodeErrors))
				emit(fmt.Sprintf("{cache=%q,kind=\"publish\"}", n), float64(st.PublishErrors))
			})
		})
	reg.Collect("rpstacks_setup_saved_seconds_total", "Setup time cache hits avoided re-paying.", "counter",
		func(emit func(string, float64)) {
			var saved time.Duration
			caches(func(_ string, st cache.TieredStats) { saved += st.Memory.SavedSetup })
			emit("", saved.Seconds())
		})

	if s.store == nil {
		return
	}
	storeGauges := []struct {
		name, help, typ string
		get             func() float64
	}{
		{"rpstacks_store_hits_total", "Durable-store reads served with a verified payload.", "counter",
			func() float64 { return float64(s.store.Stats().Hits) }},
		{"rpstacks_store_misses_total", "Durable-store reads for absent keys.", "counter",
			func() float64 { return float64(s.store.Stats().Misses) }},
		{"rpstacks_store_corruptions_total", "Entries dropped for checksum, size or manifest damage.", "counter",
			func() float64 { return float64(s.store.Stats().Corruptions) }},
		{"rpstacks_store_evictions_total", "Entries evicted by the capacity GC.", "counter",
			func() float64 { return float64(s.store.Stats().Evictions) }},
		{"rpstacks_store_entries", "Entries currently published on disk.", "gauge",
			func() float64 { return float64(s.store.Stats().Entries) }},
		{"rpstacks_store_bytes", "Payload bytes currently published on disk.", "gauge",
			func() float64 { return float64(s.store.Stats().Bytes) }},
		{"rpstacks_store_setup_saved_seconds_total", "Build cost durable hits avoided re-paying, across restarts.", "counter",
			func() float64 { return s.store.Stats().SavedSetup.Seconds() }},
	}
	for _, g := range storeGauges {
		get := g.get
		reg.Collect(g.name, g.help, g.typ, func(emit func(string, float64)) { emit("", get()) })
	}
}

// writeMetrics renders the full exposition.
func (s *Server) writeMetrics(w io.Writer) {
	s.metrics.reg.WriteText(w)
}
