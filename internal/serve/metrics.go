package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/serve/cache"
)

// metrics.go — the service's hand-rolled observability layer. Counters and
// histograms are plain atomics rendered in the Prometheus text exposition
// format (version 0.0.4) by writeMetrics; no client library is pulled in.

// sweepBuckets are the per-engine sweep-latency histogram bounds in
// seconds. RpStacks sweeps land in the sub-millisecond buckets, graph
// reconstruction in the middle, and per-point re-simulation at the top —
// the spread is the paper's Figure 2b as an operational signal.
var sweepBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// histogram is a fixed-bucket cumulative histogram safe for concurrent
// observation.
type histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sumNS  atomic.Int64
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.total.Add(1)
}

// jobStatuses are the terminal states the jobs_total counter is labelled
// with, in render order.
var jobStatuses = []JobStatus{JobDone, JobFailed, JobTimeout, JobCanceled}

// metrics holds every service-level counter. Queue depth and cache counters
// live with their owners and are pulled in at render time.
type metrics struct {
	submitted atomic.Uint64 // jobs accepted onto the queue
	rejected  atomic.Uint64 // jobs shed with 429 (queue full)
	invalid   atomic.Uint64 // requests rejected with 400
	inflight  atomic.Int64  // jobs currently running on a worker
	finished  map[JobStatus]*atomic.Uint64
	sweeps    map[string]*histogram // per-engine sweep wall-clock
}

func newMetrics() *metrics {
	m := &metrics{
		finished: make(map[JobStatus]*atomic.Uint64),
		sweeps:   make(map[string]*histogram),
	}
	for _, st := range jobStatuses {
		m.finished[st] = new(atomic.Uint64)
	}
	for _, engine := range engineNames {
		m.sweeps[engine] = newHistogram(sweepBuckets)
	}
	return m
}

func (m *metrics) jobFinished(st JobStatus) {
	if c, ok := m.finished[st]; ok {
		c.Add(1)
	}
}

func (m *metrics) observeSweep(engine string, wall time.Duration) {
	if h, ok := m.sweeps[engine]; ok {
		h.observe(wall)
	}
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeMetrics renders the full exposition: job counters, queue state,
// cache counters (hit/miss/eviction and setup time saved) and the
// per-engine sweep latency histograms.
func (s *Server) writeMetrics(w io.Writer) {
	m := s.metrics
	line := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	line("# HELP rpserved_jobs_submitted_total Jobs accepted onto the queue.")
	line("# TYPE rpserved_jobs_submitted_total counter")
	line("rpserved_jobs_submitted_total %d", m.submitted.Load())
	line("# HELP rpserved_jobs_rejected_total Jobs shed with 429 because the queue was full.")
	line("# TYPE rpserved_jobs_rejected_total counter")
	line("rpserved_jobs_rejected_total %d", m.rejected.Load())
	line("# HELP rpserved_requests_invalid_total Submissions rejected with 400.")
	line("# TYPE rpserved_requests_invalid_total counter")
	line("rpserved_requests_invalid_total %d", m.invalid.Load())

	line("# HELP rpserved_jobs_total Finished jobs by terminal status.")
	line("# TYPE rpserved_jobs_total counter")
	for _, st := range jobStatuses {
		line("rpserved_jobs_total{status=%q} %d", string(st), m.finished[st].Load())
	}

	line("# HELP rpserved_jobs_inflight Jobs currently running on a worker.")
	line("# TYPE rpserved_jobs_inflight gauge")
	line("rpserved_jobs_inflight %d", m.inflight.Load())
	line("# HELP rpserved_queue_depth Jobs waiting on the queue.")
	line("# TYPE rpserved_queue_depth gauge")
	line("rpserved_queue_depth %d", len(s.queue))
	line("# HELP rpserved_queue_capacity Bound of the job queue.")
	line("# TYPE rpserved_queue_capacity gauge")
	line("rpserved_queue_capacity %d", cap(s.queue))

	var totalSaved time.Duration
	for _, c := range []struct {
		name string
		st   cache.TieredStats
	}{
		{"artifacts", s.artifacts.Stats()},
		{"workloads", s.workloads.Stats()},
	} {
		st := c.st.Memory
		line("rpserved_cache_hits_total{cache=%q} %d", c.name, st.Hits)
		line("rpserved_cache_misses_total{cache=%q} %d", c.name, st.Misses)
		line("rpserved_cache_evictions_total{cache=%q} %d", c.name, st.Evictions)
		line("rpserved_cache_entries{cache=%q} %d", c.name, st.Entries)
		line("rpserved_cache_disk_hits_total{cache=%q} %d", c.name, c.st.DiskHits)
		line("rpserved_cache_codec_errors_total{cache=%q,kind=\"decode\"} %d", c.name, c.st.DecodeErrors)
		line("rpserved_cache_codec_errors_total{cache=%q,kind=\"encode\"} %d", c.name, c.st.EncodeErrors)
		line("rpserved_cache_codec_errors_total{cache=%q,kind=\"publish\"} %d", c.name, c.st.PublishErrors)
		totalSaved += st.SavedSetup
	}
	line("# HELP rpserved_setup_saved_seconds_total Setup time cache hits avoided re-paying.")
	line("# TYPE rpserved_setup_saved_seconds_total counter")
	line("rpserved_setup_saved_seconds_total %s", fmtFloat(totalSaved.Seconds()))

	if s.store != nil {
		st := s.store.Stats()
		line("# HELP rpserved_store_hits_total Durable-store reads served with a verified payload.")
		line("# TYPE rpserved_store_hits_total counter")
		line("rpserved_store_hits_total %d", st.Hits)
		line("# HELP rpserved_store_misses_total Durable-store reads for absent keys.")
		line("# TYPE rpserved_store_misses_total counter")
		line("rpserved_store_misses_total %d", st.Misses)
		line("# HELP rpserved_store_corruptions_total Entries dropped for checksum, size or manifest damage.")
		line("# TYPE rpserved_store_corruptions_total counter")
		line("rpserved_store_corruptions_total %d", st.Corruptions)
		line("# HELP rpserved_store_evictions_total Entries evicted by the capacity GC.")
		line("# TYPE rpserved_store_evictions_total counter")
		line("rpserved_store_evictions_total %d", st.Evictions)
		line("# HELP rpserved_store_entries Entries currently published on disk.")
		line("# TYPE rpserved_store_entries gauge")
		line("rpserved_store_entries %d", st.Entries)
		line("# HELP rpserved_store_bytes Payload bytes currently published on disk.")
		line("# TYPE rpserved_store_bytes gauge")
		line("rpserved_store_bytes %d", st.Bytes)
		line("# HELP rpserved_store_setup_saved_seconds_total Build cost durable hits avoided re-paying, across restarts.")
		line("# TYPE rpserved_store_setup_saved_seconds_total counter")
		line("rpserved_store_setup_saved_seconds_total %s", fmtFloat(st.SavedSetup.Seconds()))
	}

	line("# HELP rpserved_sweep_duration_seconds Per-engine design-space sweep wall-clock.")
	line("# TYPE rpserved_sweep_duration_seconds histogram")
	for _, engine := range engineNames {
		h := m.sweeps[engine]
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			line("rpserved_sweep_duration_seconds_bucket{engine=%q,le=%q} %d", engine, fmtFloat(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		line("rpserved_sweep_duration_seconds_bucket{engine=%q,le=\"+Inf\"} %d", engine, cum)
		line("rpserved_sweep_duration_seconds_sum{engine=%q} %s", engine, fmtFloat(time.Duration(h.sumNS.Load()).Seconds()))
		line("rpserved_sweep_duration_seconds_count{engine=%q} %d", engine, h.total.Load())
	}
}
