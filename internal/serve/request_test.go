package serve

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tinyTraceB64 simulates a few hundred µops and returns the base64 RPTRC
// encoding plus the trace's digest, for the upload-path cases.
func tinyTraceB64(t *testing.T) (string, string) {
	t.Helper()
	prof, ok := workload.ByName("429.mcf")
	if !ok {
		t.Fatal("workload missing")
	}
	uops := workload.Stream(prof, 1, 400)
	sim, err := cpu.New(config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), trace.Digest(tr)
}

func TestParseJobRequestRejections(t *testing.T) {
	traceB64, _ := tinyTraceB64(t)
	cases := []struct {
		name string
		body string
		lim  func(*Limits)
		want string // substring of the error
	}{
		{name: "not json", body: `{nope`, want: "decoding"},
		{name: "trailing data", body: `{"workload":"429.mcf","axes":["L2D=8"]} extra`, want: "trailing"},
		{name: "unknown field", body: `{"workload":"429.mcf","axes":["L2D=8"],"bogus":1}`, want: "bogus"},
		{name: "no subject", body: `{"axes":["L2D=8"]}`, want: "workload name or a trace_b64"},
		{name: "both subjects", body: fmt.Sprintf(`{"workload":"429.mcf","trace_b64":%q,"axes":["L2D=8"]}`, traceB64), want: "mutually exclusive"},
		{name: "unknown workload", body: `{"workload":"999.nope","axes":["L2D=8"]}`, want: "unknown workload"},
		{name: "unknown engine", body: `{"workload":"429.mcf","axes":["L2D=8"],"engine":"oracle"}`, want: "unknown engine"},
		{name: "sim with upload", body: fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8"],"engine":"sim"}`, traceB64), want: "named workload"},
		{name: "no axes", body: `{"workload":"429.mcf","axes":[]}`, want: "at least one axis"},
		{name: "malformed axis", body: `{"workload":"429.mcf","axes":["L2D"]}`, want: "axis"},
		{name: "unknown axis event", body: `{"workload":"429.mcf","axes":["Warp=8"]}`, want: "unknown event"},
		{name: "duplicate axes", body: `{"workload":"429.mcf","axes":["L2D=8","L2D=12"]}`, want: "duplicate axis"},
		{name: "too many axes", body: `{"workload":"429.mcf","axes":["L2D=8","MemD=8","L1D=8"]}`,
			lim: func(l *Limits) { l.MaxAxes = 2 }, want: "axes exceed"},
		{name: "too many axis values", body: `{"workload":"429.mcf","axes":["L2D=1,2,3,4,5"]}`,
			lim: func(l *Limits) { l.MaxAxisValues = 4 }, want: "values, limit"},
		{name: "grid too big", body: `{"workload":"429.mcf","axes":["L2D=1,2,3,4","MemD=1,2,3"]}`,
			lim: func(l *Limits) { l.MaxGridPoints = 10 }, want: "grid exceeds"},
		{name: "negative top", body: `{"workload":"429.mcf","axes":["L2D=8"],"top":-1}`, want: "negative top"},
		{name: "top over cap", body: `{"workload":"429.mcf","axes":["L2D=8"],"top":5000}`, want: "top 5000 exceeds"},
		{name: "negative timeout", body: `{"workload":"429.mcf","axes":["L2D=8"],"timeout_ms":-5}`, want: "negative timeout"},
		{name: "timeout over cap", body: `{"workload":"429.mcf","axes":["L2D=8"],"timeout_ms":86400000}`, want: "exceeds the limit"},
		{name: "negative parallelism", body: `{"workload":"429.mcf","axes":["L2D=8"],"parallelism":-2}`, want: "negative parallelism"},
		{name: "parallelism over cap", body: `{"workload":"429.mcf","axes":["L2D=8"],"parallelism":9999}`, want: "parallelism 9999 exceeds"},
		{name: "negative batch_size", body: `{"workload":"429.mcf","axes":["L2D=8"],"batch_size":-4}`, want: "negative batch_size"},
		{name: "batch_size over cap", body: `{"workload":"429.mcf","axes":["L2D=8"],"batch_size":4096}`, want: "batch_size 4096 exceeds"},
		{name: "batch_size on sim", body: `{"workload":"429.mcf","axes":["L2D=8"],"engine":"sim","batch_size":8}`, want: "no batched form"},
		{name: "negative target cpi", body: `{"workload":"429.mcf","axes":["L2D=8"],"target_cpi":-0.5}`, want: "target_cpi"},
		{name: "negative micro_ops", body: `{"workload":"429.mcf","axes":["L2D=8"],"micro_ops":-1}`, want: "negative micro_ops"},
		{name: "micro_ops over cap", body: `{"workload":"429.mcf","axes":["L2D=8"],"micro_ops":1000000}`, want: "micro_ops 1000000 exceeds"},
		{name: "micro_ops on upload", body: fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8"],"micro_ops":5}`, traceB64), want: "only apply to named workloads"},
		{name: "seed on upload", body: fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8"],"seed":5}`, traceB64), want: "only apply to named workloads"},
		{name: "bad base64", body: `{"trace_b64":"@@not base64@@","axes":["L2D=8"]}`, want: "trace_b64"},
		{name: "oversized upload", body: fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8"]}`, traceB64),
			lim: func(l *Limits) { l.MaxTraceBytes = 64 }, want: "exceeds the 64-byte limit"},
		{name: "corrupt trace", body: fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8"]}`,
			base64.StdEncoding.EncodeToString([]byte("not an rptrc stream at all"))), want: "trace upload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lim := DefaultLimits()
			if tc.lim != nil {
				tc.lim(&lim)
			}
			spec, err := ParseJobRequest([]byte(tc.body), lim)
			if err == nil {
				t.Fatalf("accepted invalid request: %+v", spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseJobRequestDefaults(t *testing.T) {
	lim := DefaultLimits()
	spec, err := ParseJobRequest([]byte(`{"workload":"429.mcf","axes":["L2D=8,12","MemD=150,200,280"]}`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Engine != "rpstacks" {
		t.Errorf("default engine %q, want rpstacks", spec.Engine)
	}
	if spec.Top != lim.DefaultTop {
		t.Errorf("default top %d, want %d", spec.Top, lim.DefaultTop)
	}
	if spec.Timeout != lim.DefaultTimeout {
		t.Errorf("default timeout %v, want %v", spec.Timeout, lim.DefaultTimeout)
	}
	if spec.MicroOps != lim.DefaultMicroOps {
		t.Errorf("default micro_ops %d, want %d", spec.MicroOps, lim.DefaultMicroOps)
	}
	if spec.GridSize != 6 {
		t.Errorf("grid size %d, want 6", spec.GridSize)
	}
	if spec.Parallelism != 0 {
		t.Errorf("parallelism %d, want 0 (server default)", spec.Parallelism)
	}
	if spec.BatchSize != 0 {
		t.Errorf("batch_size %d, want 0 (autotuned in the sweep engine)", spec.BatchSize)
	}
	batched, err := ParseJobRequest([]byte(`{"workload":"429.mcf","axes":["L2D=8,12"],"engine":"graph","batch_size":32}`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if batched.BatchSize != 32 {
		t.Errorf("batch_size %d, want 32", batched.BatchSize)
	}
}

func TestParseJobRequestUpload(t *testing.T) {
	traceB64, digest := tinyTraceB64(t)
	body := fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8,12"],"engine":"graph","timeout_ms":500}`, traceB64)
	spec, err := ParseJobRequest([]byte(body), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Trace == nil || len(spec.Trace.Records) == 0 {
		t.Fatal("upload did not decode into a trace")
	}
	if spec.TraceDigest != digest {
		t.Errorf("digest %s, want %s", spec.TraceDigest, digest)
	}
	if spec.Timeout != 500*time.Millisecond {
		t.Errorf("timeout %v, want 500ms", spec.Timeout)
	}
}
