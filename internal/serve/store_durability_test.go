package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// runOneJob brings up a Server over the given durable store, runs one
// acceptance job through HTTP, shuts everything down, and returns the
// result. Each call is one complete service lifetime.
func runOneJob(t *testing.T, durable *store.Store) *JobResult {
	t.Helper()
	s := New(Config{Workers: 2, SweepParallelism: 2, Store: durable})
	ts := httptest.NewServer(s)
	defer ts.Close()
	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	v = pollJob(t, ts.URL, v.ID)
	if v.Status != JobDone {
		t.Fatalf("job status %s (error %q), want done", v.Status, v.Error)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	return v.Result
}

// pointsJSON canonicalizes a result's ranked points for byte comparison.
func pointsJSON(t *testing.T, res *JobResult) string {
	t.Helper()
	b, err := json.Marshal(res.Points)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStoreSurvivesRestart is the durable tier's end-to-end acceptance
// test: one service lifetime populates the store, a second lifetime over
// the same directory serves the same job without re-paying any setup —
// SetupCached is reported, the store counts the hits and the saved cost,
// and the ranked sweep result is byte-identical to the first run's.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := runOneJob(t, st1)
	if first.SetupCached {
		t.Fatal("first lifetime reported cached setup on an empty store")
	}
	if got := st1.Len(); got != 4 {
		t.Fatalf("store holds %d entries after first lifetime, want 4 (trace + analysis + journal record + journal index)", got)
	}

	// A fresh process over the same directory: nothing in memory, everything
	// on disk.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	second := runOneJob(t, st2)
	if !second.SetupCached {
		t.Fatal("second lifetime re-paid setup despite a warm store")
	}
	if got, want := pointsJSON(t, second), pointsJSON(t, first); got != want {
		t.Fatalf("sweep results differ across restart:\nfirst:  %s\nsecond: %s", want, got)
	}
	if second.TraceDigest != first.TraceDigest {
		t.Fatalf("trace digest changed across restart: %s vs %s", second.TraceDigest, first.TraceDigest)
	}
	stats := st2.Stats()
	if stats.Hits < 2 {
		t.Fatalf("store hits = %d, want at least 2 (trace + analysis)", stats.Hits)
	}
	if stats.SavedSetup <= 0 {
		t.Fatal("store recorded no setup savings across the restart")
	}

	// The ranked points must also match a from-scratch reference sweep, so
	// "identical" cannot mean "identically wrong".
	want := referencePoints(t)
	if len(second.Points) != len(want) {
		t.Fatalf("second run returned %d points, want %d", len(second.Points), len(want))
	}
	for k := range want {
		if second.Points[k].Cycles != want[k].Cycles {
			t.Fatalf("point %d: cycles %g, want %g", k, second.Points[k].Cycles, want[k].Cycles)
		}
	}
}

// TestStoreCorruptionRebuildsThroughService flips bits in every published
// object between service lifetimes: the next lifetime must detect the
// damage (counted as corruptions), silently rebuild, and still produce the
// reference result — corruption costs time, never correctness.
func TestStoreCorruptionRebuildsThroughService(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := runOneJob(t, st1)

	// Size-preserving damage: survives Open's size check, so it must be
	// caught by the read-time checksum.
	objects, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objects) == 0 {
		t.Fatal("no objects published")
	}
	for _, de := range objects {
		p := filepath.Join(dir, "objects", de.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	second := runOneJob(t, st2)
	if second.SetupCached {
		t.Fatal("corrupted store still reported cached setup")
	}
	if got, want := pointsJSON(t, second), pointsJSON(t, first); got != want {
		t.Fatalf("rebuild after corruption changed the result:\nfirst:  %s\nsecond: %s", want, got)
	}
	if stats := st2.Stats(); stats.Corruptions == 0 {
		t.Fatalf("corruption went uncounted: %+v", stats)
	}
	// The rebuilt artifacts were republished: a third lifetime hits again.
	st3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	third := runOneJob(t, st3)
	if !third.SetupCached {
		t.Fatal("store not repopulated after corruption rebuild")
	}
}
