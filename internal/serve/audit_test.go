package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/store"
)

// getJSON fetches a URL and decodes its JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestReadyzTransitions drives the readiness probe through its three states:
// ready on an idle server, shedding (503) while the queue is full, ready
// again once the queue drains, and draining (503) after shutdown — while
// /healthz stays 200 throughout.
func TestReadyzTransitions(t *testing.T) {
	entered := make(chan string, 4)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.beforeJob = func(j *Job) {
		entered <- j.ID
		<-release
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	var rd struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK || rd.Status != "ready" {
		t.Fatalf("idle readyz: %d %q, want 200 ready", code, rd.Status)
	}

	// Hold the single worker mid-job and park a second job on the depth-1
	// queue: the server is now shedding submissions.
	if _, code := submitJob(t, ts.URL, testBody("")); code != http.StatusAccepted {
		t.Fatalf("job 1 status %d, want 202", code)
	}
	<-entered
	if _, code := submitJob(t, ts.URL, testBody("")); code != http.StatusAccepted {
		t.Fatalf("job 2 status %d, want 202", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusServiceUnavailable || rd.Status != "shedding" {
		t.Fatalf("full-queue readyz: %d %q, want 503 shedding", code, rd.Status)
	}
	// Liveness is unaffected by load.
	var hz struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz while shedding: %d, want 200", code)
	}

	close(release)
	<-entered // job 2 claimed: the queue has drained
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK || rd.Status != "ready" {
		t.Fatalf("drained readyz: %d %q, want 200 ready", code, rd.Status)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusServiceUnavailable || rd.Status != "draining" {
		t.Fatalf("post-shutdown readyz: %d %q, want 503 draining", code, rd.Status)
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("post-shutdown healthz: %d, want 200 (liveness outlives readiness)", code)
	}
}

// TestAuditedJobEndToEnd is the tentpole's service acceptance test: an
// audited job produces the same ranked predictions as an unaudited one, its
// audit report is served by /debug/audit, the audit metric families move,
// and — because a durable store is mounted — the report survives a service
// restart.
func TestAuditedJobEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, SweepParallelism: 2, Store: st})
	ts := httptest.NewServer(s)

	plain, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("unaudited submit status %d", code)
	}
	audited, code := submitJob(t, ts.URL, testBody(`,"audit_fraction":1,"audit_seed":11,"audit_drift_pct":100`))
	if code != http.StatusAccepted {
		t.Fatalf("audited submit status %d", code)
	}

	pv := pollJob(t, ts.URL, plain.ID)
	av := pollJob(t, ts.URL, audited.ID)
	if pv.Status != JobDone || av.Status != JobDone {
		t.Fatalf("statuses %s/%s (errors %q/%q), want done", pv.Status, av.Status, pv.Error, av.Error)
	}
	if pv.AuditStatus != "" {
		t.Errorf("unaudited job carries audit_status %q", pv.AuditStatus)
	}
	if av.AuditStatus != "ok" {
		t.Errorf("audited job audit_status %q, want ok (threshold 100%%)", av.AuditStatus)
	}
	// The shadow audit must not perturb the predictions: both jobs return
	// identical ranked points.
	if got, want := pointsJSON(t, av.Result), pointsJSON(t, pv.Result); got != want {
		t.Fatalf("audited job's points differ from unaudited:\naudited:   %s\nunaudited: %s", got, want)
	}

	var rep audit.Report
	if code := getJSON(t, ts.URL+"/debug/audit?job="+audited.ID, &rep); code != http.StatusOK {
		t.Fatalf("/debug/audit status %d, want 200", code)
	}
	grid := av.Result.GridPoints
	if rep.GridPoints != grid || rep.Sampled != grid || rep.Audited != grid || rep.Skipped != 0 {
		t.Fatalf("report grid/sampled/audited/skipped = %d/%d/%d/%d, want %d/%d/%d/0",
			rep.GridPoints, rep.Sampled, rep.Audited, rep.Skipped, grid, grid, grid)
	}
	if rep.Status != "ok" || rep.Method != "rpstacks" || rep.Seed != 11 {
		t.Errorf("report status %q method %q seed %d, want ok rpstacks 11", rep.Status, rep.Method, rep.Seed)
	}
	if rep.Fingerprint == "" || len(rep.Indices) != grid || len(rep.Worst) == 0 {
		t.Errorf("report missing fingerprint/indices/worst: %q %d %d",
			rep.Fingerprint, len(rep.Indices), len(rep.Worst))
	}
	// RpStacks predictions against re-simulated ground truth carry a real,
	// small residual — nonzero but nowhere near the 100% drift threshold.
	if rep.MaxErrorPct <= 0 || rep.MaxErrorPct >= 50 {
		t.Errorf("max error %g%%, want small nonzero model residual", rep.MaxErrorPct)
	}

	// The unaudited job answers 404 with a hint.
	if code := getJSON(t, ts.URL+"/debug/audit?job="+plain.ID, nil); code != http.StatusNotFound {
		t.Errorf("/debug/audit for unaudited job: %d, want 404", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	if v := metricValue(t, exp, `rpstacks_audit_points_total{outcome="audited"}`); v != float64(grid) {
		t.Errorf("audited points counter = %g, want %d", v, grid)
	}
	if v := metricValue(t, exp, "rpstacks_audit_error_pct_count"); v != float64(grid) {
		t.Errorf("error histogram count = %g, want %d", v, grid)
	}
	if v := metricValue(t, exp, "rpstacks_audit_drift_total"); v != 0 {
		t.Errorf("drift counter = %g, want 0 under a 100%% threshold", v)
	}
	for _, class := range audit.ClassNames() {
		key := fmt.Sprintf("rpstacks_audit_divergence_pct_count{class=%q}", class)
		if v := metricValue(t, exp, key); v != float64(grid) {
			t.Errorf("%s = %g, want %d", key, v, grid)
		}
	}
	if !strings.Contains(exp, `# exemplar rpstacks_audit_error_pct {job_id=`) {
		t.Error("exposition missing the worst-point audit exemplar")
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()

	// A fresh service lifetime over the same store directory: the job table
	// is empty, but the persisted report still serves.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Store: st2})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var rep2 audit.Report
	if code := getJSON(t, ts2.URL+"/debug/audit?job="+audited.ID, &rep2); code != http.StatusOK {
		t.Fatalf("restarted /debug/audit status %d, want 200", code)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(rep2)
	if string(a) != string(b) {
		t.Fatalf("audit report changed across restart:\nbefore: %s\nafter:  %s", a, b)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAuditDriftFlagsJob submits a job with a near-zero drift threshold: the
// genuine model residual of RpStacks against re-simulation exceeds it, so
// the audit must flag drift — on the job view, in the report and on the
// drift counter — while the job itself still succeeds.
func TestAuditDriftFlagsJob(t *testing.T) {
	s := New(Config{Workers: 1, SweepParallelism: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, code := submitJob(t, ts.URL, testBody(`,"audit_fraction":1,"audit_drift_pct":1e-9`))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v = pollJob(t, ts.URL, v.ID)
	if v.Status != JobDone {
		t.Fatalf("status %s (error %q), want done — drift must not fail the job", v.Status, v.Error)
	}
	if v.AuditStatus != "drift" {
		t.Fatalf("audit_status %q, want drift", v.AuditStatus)
	}

	var rep audit.Report
	if code := getJSON(t, ts.URL+"/debug/audit?job="+v.ID, &rep); code != http.StatusOK {
		t.Fatalf("/debug/audit status %d", code)
	}
	if rep.Status != "drift" || rep.Drifted == 0 {
		t.Fatalf("report status %q drifted %d, want drift and > 0", rep.Status, rep.Drifted)
	}
	if len(rep.Worst) == 0 || rep.Worst[0].WorstClass == "" {
		t.Error("drifting report does not name a responsible class")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	if got := metricValue(t, exp, "rpstacks_audit_drift_total"); got != float64(rep.Drifted) {
		t.Errorf("drift counter = %g, want %d", got, rep.Drifted)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAuditRequestValidation covers the audit-specific 400 paths.
func TestAuditRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{
		testBody(`,"audit_fraction":1.5`),                    // out of range
		testBody(`,"audit_fraction":-0.1`),                   // out of range
		testBody(`,"audit_seed":3`),                          // seed without fraction
		testBody(`,"audit_drift_pct":5`),                     // threshold without fraction
		testBody(`,"audit_fraction":1,"audit_drift_pct":-1`), // negative threshold
		// The sim engine is its own ground truth.
		strings.Replace(testBody(`,"audit_fraction":0.5`), `"engine":"rpstacks"`, `"engine":"sim"`, 1),
	} {
		if _, code := submitJob(t, ts.URL, body); code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, code)
		}
	}
	// A graph-engine audit is legal.
	body := strings.Replace(testBody(`,"audit_fraction":0.25`), `"engine":"rpstacks"`, `"engine":"graph"`, 1)
	v, code := submitJob(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("graph audit submit status %d, want 202", code)
	}
	if got := pollJob(t, ts.URL, v.ID); got.Status != JobDone || got.AuditStatus != "ok" {
		t.Fatalf("graph audit job: status %s audit %q (error %q)", got.Status, got.AuditStatus, got.Error)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
