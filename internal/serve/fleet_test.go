package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/stacks"
	"repro/internal/store"
)

// startServeWorkers runs n in-process fleet workers against the server's
// /fleet/v1/ mount and stops them when the test ends.
func startServeWorkers(t *testing.T, url string, shared *store.Shared, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		w := fleet.NewWorker(fleet.WorkerConfig{
			CoordinatorURL: url,
			Shared:         shared,
			Concurrency:    2,
			ID:             fmt.Sprintf("serve-w%d", i),
			PollInterval:   2 * time.Millisecond,
		})
		go func() {
			if err := w.Run(ctx); err != nil && err != context.Canceled {
				t.Errorf("worker: %v", err)
			}
		}()
	}
}

// TestServerFleetDelegation is the serve-layer fleet integration test: a
// server started with a fleet store delegates its sweep to two rpworker-style
// workers, and the job response is point-for-point identical to the local
// reference sweep. The rpstacks_fleet_* families must land on /metrics, and
// an uploaded-trace job — which has no regeneration recipe — must still
// complete through the local path without touching the fleet.
func TestServerFleetDelegation(t *testing.T) {
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:          2,
		QueueDepth:       8,
		SweepParallelism: 2,
		FleetStore:       shared,
		FleetLeaseTTL:    time.Minute,
		FleetChunkSize:   3, // 12-point grid -> 4 chunks
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	startServeWorkers(t, ts.URL, shared, 2)

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	done := pollJob(t, ts.URL, v.ID)
	if done.Status != JobDone {
		t.Fatalf("status %s (error %q), want done", done.Status, done.Error)
	}
	if done.Result == nil {
		t.Fatal("done without a result")
	}
	want := referencePoints(t)
	if len(done.Result.Points) != len(want) {
		t.Fatalf("returned %d points, want %d", len(done.Result.Points), len(want))
	}
	for k, got := range done.Result.Points {
		if got.Cycles != want[k].Cycles {
			t.Fatalf("point %d: cycles %g, want %g", k, got.Cycles, want[k].Cycles)
		}
		for ev, lat := range want[k].Latencies {
			if got.Latencies[ev] != lat {
				t.Fatalf("point %d: %s latency %g, want %g", k, ev, got.Latencies[ev], lat)
			}
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	if v := metricValue(t, exp, `rpstacks_fleet_chunks_completed_total{result="first"}`); v != 4 {
		t.Errorf("fleet first completions = %g, want 4", v)
	}
	if v := metricValue(t, exp, "rpstacks_fleet_leases_expired_total"); v != 0 {
		t.Errorf("fleet lease expiries = %g, want 0", v)
	}
	if v := metricValue(t, exp, `rpstacks_sweep_duration_seconds_count{engine="rpstacks"}`); v != 1 {
		t.Errorf("sweeps observed = %g, want 1 (fleet sweeps feed the same histogram)", v)
	}

	// An uploaded trace has no (workload, seed, µops) recipe a worker could
	// rebuild, so it must run locally — and leave the fleet counters alone.
	traceB64, _ := tinyTraceB64(t)
	upload := fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8,12,16,20","MemD=150,200,280"],`+
		`"engine":"rpstacks","top":12,"timeout_ms":120000}`, traceB64)
	uv, code := submitJob(t, ts.URL, upload)
	if code != http.StatusAccepted {
		t.Fatalf("upload submit status %d, want 202", code)
	}
	udone := pollJob(t, ts.URL, uv.ID)
	if udone.Status != JobDone {
		t.Fatalf("upload status %s (error %q), want done", udone.Status, udone.Error)
	}
	if udone.Result == nil || len(udone.Result.Points) == 0 {
		t.Fatal("upload job done without ranked points")
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp = readAll(t, resp)
	if v := metricValue(t, exp, `rpstacks_fleet_chunks_completed_total{result="first"}`); v != 4 {
		t.Errorf("fleet first completions after upload job = %g, want still 4", v)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerFleetIneligibleConfig proves the eligibility gate: a server whose
// machine setup differs from the baseline the workers rebuild must not
// delegate — the sweep runs locally and still answers correctly, with no
// workers attached at all.
func TestServerFleetIneligibleConfig(t *testing.T) {
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline()
	cfg.Lat[stacks.L2D] += 2 // not the setup workers deterministically rebuild
	s := New(Config{
		Workers:       1,
		QueueDepth:    4,
		BaseConfig:    cfg,
		FleetStore:    shared,
		FleetLeaseTTL: time.Minute,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// No workers started: if the server tried to delegate, the job would hang
	// until its deadline instead of finishing.
	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	done := pollJob(t, ts.URL, v.ID)
	if done.Status != JobDone {
		t.Fatalf("status %s (error %q), want done", done.Status, done.Error)
	}
	if done.Result == nil || len(done.Result.Points) == 0 {
		t.Fatal("job done without ranked points")
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
