package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/stacks"
	"repro/internal/store"
)

// startServeWorkers runs n in-process fleet workers against the server's
// /fleet/v1/ mount and stops them when the test ends. The workers are
// returned so tests can scrape their own /metrics handlers.
func startServeWorkers(t *testing.T, url string, shared *store.Shared, n int) []*fleet.Worker {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ws := make([]*fleet.Worker, n)
	for i := 0; i < n; i++ {
		w := fleet.NewWorker(fleet.WorkerConfig{
			CoordinatorURL: url,
			Shared:         shared,
			Concurrency:    2,
			ID:             fmt.Sprintf("serve-w%d", i),
			PollInterval:   2 * time.Millisecond,
		})
		ws[i] = w
		go func() {
			if err := w.Run(ctx); err != nil && err != context.Canceled {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return ws
}

// metricSum adds every sample of one family across its label sets — chunk
// attribution between workers is racy, but the fleet-wide total is not.
func metricSum(exposition, name string) float64 {
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := strings.TrimPrefix(line, name)
		if i := strings.Index(rest, "} "); i >= 0 {
			rest = rest[i+2:]
		} else if !strings.HasPrefix(rest, " ") {
			continue // a longer family name sharing the prefix
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(rest), "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

// TestServerFleetDelegation is the serve-layer fleet integration test: a
// server started with a fleet store delegates its sweep to two rpworker-style
// workers, and the job response is point-for-point identical to the local
// reference sweep. The rpstacks_fleet_* families must land on /metrics, and
// an uploaded-trace job — which has no regeneration recipe — must still
// complete through the local path without touching the fleet.
func TestServerFleetDelegation(t *testing.T) {
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:          2,
		QueueDepth:       8,
		SweepParallelism: 2,
		FleetStore:       shared,
		FleetLeaseTTL:    time.Minute,
		FleetChunkSize:   3, // 12-point grid -> 4 chunks
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	workers := startServeWorkers(t, ts.URL, shared, 2)

	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	done := pollJob(t, ts.URL, v.ID)
	if done.Status != JobDone {
		t.Fatalf("status %s (error %q), want done", done.Status, done.Error)
	}
	if done.Result == nil {
		t.Fatal("done without a result")
	}
	want := referencePoints(t)
	if len(done.Result.Points) != len(want) {
		t.Fatalf("returned %d points, want %d", len(done.Result.Points), len(want))
	}
	for k, got := range done.Result.Points {
		if got.Cycles != want[k].Cycles {
			t.Fatalf("point %d: cycles %g, want %g", k, got.Cycles, want[k].Cycles)
		}
		for ev, lat := range want[k].Latencies {
			if got.Latencies[ev] != lat {
				t.Fatalf("point %d: %s latency %g, want %g", k, ev, got.Latencies[ev], lat)
			}
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	if v := metricValue(t, exp, `rpstacks_fleet_chunks_completed_total{result="first"}`); v != 4 {
		t.Errorf("fleet first completions = %g, want 4", v)
	}
	if v := metricValue(t, exp, "rpstacks_fleet_leases_expired_total"); v != 0 {
		t.Errorf("fleet lease expiries = %g, want 0", v)
	}
	if v := metricValue(t, exp, `rpstacks_sweep_duration_seconds_count{engine="rpstacks"}`); v != 1 {
		t.Errorf("sweeps observed = %g, want 1 (fleet sweeps feed the same histogram)", v)
	}
	// Federation: the per-worker summaries workers self-report on complete.
	// These are throughput counters — a stolen chunk both workers evaluate
	// counts twice — so the fleet-wide totals are at least the sweep's size.
	if got := metricSum(exp, "rpstacks_fleet_worker_chunks_total"); got < 4 {
		t.Errorf("federated worker chunk total = %g, want >= 4", got)
	}
	if got := metricSum(exp, "rpstacks_fleet_worker_points_total"); got < 12 {
		t.Errorf("federated worker point total = %g, want >= 12", got)
	}

	// The delegated job's /debug/trace is the merged multi-process timeline:
	// the server's own track plus one per worker that completed a chunk.
	resp, err = http.Get(ts.URL + "/debug/trace?job=" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	traceBody := readAll(t, resp)
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(traceBody), &trace); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[fmt.Sprint(ev.Args["name"])] = true
		}
	}
	if !procs["rpserved"] {
		t.Errorf("merged trace lacks the rpserved track: %v", procs)
	}
	workerTracks := 0
	for n := range procs {
		if strings.HasPrefix(n, "serve-w") {
			workerTracks++
		}
	}
	if workerTracks == 0 {
		t.Errorf("merged trace has no worker tracks: %v", procs)
	}

	// Each worker exposes its own /metrics on the health handler; together
	// they account for at least every chunk and point of the sweep (stolen
	// chunks may be evaluated — and counted — twice).
	var wChunks, wPoints float64
	for _, w := range workers {
		wts := httptest.NewServer(w.Handler())
		wresp, err := http.Get(wts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		wexp := readAll(t, wresp)
		wts.Close()
		if !strings.Contains(wexp, "# TYPE rpstacks_worker_chunks_total counter") {
			t.Errorf("worker exposition lacks rpstacks_worker_chunks_total TYPE line")
		}
		wChunks += metricSum(wexp, "rpstacks_worker_chunks_total")
		wPoints += metricSum(wexp, "rpstacks_worker_points_total")
	}
	if wChunks < 4 || wPoints < 12 {
		t.Errorf("worker-side totals = %g chunks / %g points, want >= 4 / >= 12", wChunks, wPoints)
	}

	// An uploaded trace has no (workload, seed, µops) recipe a worker could
	// rebuild, so it must run locally — and leave the fleet counters alone.
	traceB64, _ := tinyTraceB64(t)
	upload := fmt.Sprintf(`{"trace_b64":%q,"axes":["L2D=8,12,16,20","MemD=150,200,280"],`+
		`"engine":"rpstacks","top":12,"timeout_ms":120000}`, traceB64)
	uv, code := submitJob(t, ts.URL, upload)
	if code != http.StatusAccepted {
		t.Fatalf("upload submit status %d, want 202", code)
	}
	udone := pollJob(t, ts.URL, uv.ID)
	if udone.Status != JobDone {
		t.Fatalf("upload status %s (error %q), want done", udone.Status, udone.Error)
	}
	if udone.Result == nil || len(udone.Result.Points) == 0 {
		t.Fatal("upload job done without ranked points")
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp = readAll(t, resp)
	if v := metricValue(t, exp, `rpstacks_fleet_chunks_completed_total{result="first"}`); v != 4 {
		t.Errorf("fleet first completions after upload job = %g, want still 4", v)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerFleetIneligibleConfig proves the eligibility gate: a server whose
// machine setup differs from the baseline the workers rebuild must not
// delegate — the sweep runs locally and still answers correctly, with no
// workers attached at all.
func TestServerFleetIneligibleConfig(t *testing.T) {
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline()
	cfg.Lat[stacks.L2D] += 2 // not the setup workers deterministically rebuild
	s := New(Config{
		Workers:       1,
		QueueDepth:    4,
		BaseConfig:    cfg,
		FleetStore:    shared,
		FleetLeaseTTL: time.Minute,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// No workers started: if the server tried to delegate, the job would hang
	// until its deadline instead of finishing.
	v, code := submitJob(t, ts.URL, testBody(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	done := pollJob(t, ts.URL, v.ID)
	if done.Status != JobDone {
		t.Fatalf("status %s (error %q), want done", done.Status, done.Error)
	}
	if done.Result == nil || len(done.Result.Points) == 0 {
		t.Fatal("job done without ranked points")
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
