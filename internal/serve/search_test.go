package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dse"
	"repro/internal/stacks"
	"repro/internal/store"
	"repro/internal/workload"
)

// search_test.go — the service face of guided search: request validation
// (search lifts the grid cap, replaces the shadow audit, borrows
// target_cpi), end-to-end jobs whose answers must equal an independent
// exhaustive reference, fleet-served probe rounds, and the
// rpstacks_search_* metric families.

// searchSetup replicates the server's named-workload pipeline for
// testWorkload: the same warmup, simulation and default analysis, returning
// the engine inputs an independent reference search needs.
func searchSetup(t *testing.T) (*config.Config, *core.Analysis, int) {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName(testWorkload)
	if !ok {
		t.Fatalf("unknown workload %s", testWorkload)
	}
	gen := workload.NewGenerator(prof, 0)
	warm := 3 * testMicroOps
	stream := gen.Take(warm + testMicroOps)
	cut := warm
	for cut < len(stream) && !stream[cut].SoM {
		cut++
	}
	sim, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.WarmCode(gen.CodeLines())
	sim.WarmData(gen.DataLines())
	sim.WarmUp(stream[:cut])
	tr, err := sim.Run(stream[cut:])
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(tr, &cfg.Structure, &cfg.Lat, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cfg, a, len(tr.Records)
}

// searchReference computes the exhaustive answer for one search spec over
// the testAxes grid, independent of every serve and search code path: a
// plain materialized rpstacks sweep folded by SearchPlan.Exhaustive.
func searchReference(t *testing.T, cfg *config.Config, a *core.Analysis, microOps int, spec *dse.SearchSpec) (*dse.SearchResult, []float64) {
	t.Helper()
	var space dse.Space
	for _, raw := range testAxes {
		ax, err := dse.ParseAxisSpec(raw)
		if err != nil {
			t.Fatal(err)
		}
		space.Axes = append(space.Axes, ax)
	}
	plan, err := dse.NewSearchPlan(&space, spec)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := plan.Enumerate(cfg.Lat)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dse.ExploreRpStacksOpts(a, pts, dse.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := make([]float64, len(rep.Results))
	for i, r := range rep.Results {
		cycles[i] = r.Cycles
	}
	ref, err := plan.Exhaustive(cycles, microOps)
	if err != nil {
		t.Fatal(err)
	}
	return ref, cycles
}

func mustEvent(t *testing.T, name string) stacks.Event {
	t.Helper()
	ev, err := stacks.ParseEvent(name)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func searchBody(search, extra string) string {
	return testBody(fmt.Sprintf(`,"search":%q%s`, search, extra))
}

// matchSearchJob asserts a done search job's result equals the exhaustive
// reference: the verified optimum (or the full frontier) point for point.
func matchSearchJob(t *testing.T, label string, v jobView, ref *dse.SearchResult) {
	t.Helper()
	if v.Status != JobDone {
		t.Fatalf("%s: status %s (error %q), want done", label, v.Status, v.Error)
	}
	res := v.Result
	if res == nil || res.Search == nil {
		t.Fatalf("%s: done without a search summary", label)
	}
	if !res.Search.Converged {
		t.Fatalf("%s: search did not converge", label)
	}
	if !res.Search.Verified {
		t.Fatalf("%s: search optima were not oracle-verified", label)
	}
	if res.Search.Mode != ref.Mode {
		t.Fatalf("%s: mode %s, want %s", label, res.Search.Mode, ref.Mode)
	}
	if uint64(res.Search.GridPoints) != ref.GridPoints {
		t.Fatalf("%s: grid %d, want %d", label, res.Search.GridPoints, ref.GridPoints)
	}
	if res.Search.Probes > res.Search.GridPoints {
		t.Fatalf("%s: %d probes exceed the grid", label, res.Search.Probes)
	}
	var want []dse.SearchPoint
	if ref.Best != nil {
		want = append(want, *ref.Best)
	}
	want = append(want, ref.Frontier...)
	if len(res.Points) != len(want) {
		t.Fatalf("%s: returned %d points, want %d", label, len(res.Points), len(want))
	}
	for k, got := range res.Points {
		if got.Cycles != want[k].Cycles || got.Cost != want[k].Cost {
			t.Fatalf("%s point %d: (cycles %g, cost %g), want (%g, %g)",
				label, k, got.Cycles, got.Cost, want[k].Cycles, want[k].Cost)
		}
	}
}

// TestSearchJobEndToEnd runs all three guided-search modes as jobs against
// a live server and matches each answer against the independent exhaustive
// reference, then checks the searches landed on /metrics.
func TestSearchJobEndToEnd(t *testing.T) {
	cfg, a, microOps := searchSetup(t)
	s := New(Config{Workers: 2, QueueDepth: 8, SweepParallelism: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A rounding-safe target budget: midway between two distinct exhaustive
	// cycle counts.
	_, cycles := searchReference(t, cfg, a, microOps, &dse.SearchSpec{Mode: dse.SearchHalving})
	uniq := append([]float64(nil), cycles...)
	sort.Float64s(uniq)
	budget := uniq[len(uniq)-1] + 1
	for i := 1; i < len(uniq); i++ {
		if uniq[i] != uniq[i-1] {
			budget = (uniq[i] + uniq[i-1]) / 2
			break
		}
	}
	specs := []*dse.SearchSpec{
		{Mode: dse.SearchHalving},
		{Mode: dse.SearchPareto, Cost: []dse.CostWeight{{Event: mustEvent(t, "L2D"), Weight: 2}}},
		{Mode: dse.SearchTarget, TargetCPI: budget / float64(microOps)},
	}
	for _, spec := range specs {
		ref, _ := searchReference(t, cfg, a, microOps, spec)
		v, code := submitJob(t, ts.URL, searchBody(spec.String(), ""))
		if code != http.StatusAccepted {
			t.Fatalf("%s: submit status %d, want 202", spec, code)
		}
		matchSearchJob(t, spec.String(), pollJob(t, ts.URL, v.ID), ref)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	for _, mode := range searchModes {
		if v := metricValue(t, exp, fmt.Sprintf("rpstacks_search_probes_total{mode=%q}", mode)); v < 2 {
			t.Errorf("search probes for %s = %g, want at least the root box's corners", mode, v)
		}
		if v := metricValue(t, exp, fmt.Sprintf("rpstacks_search_rounds_total{mode=%q}", mode)); v < 1 {
			t.Errorf("search rounds for %s = %g, want at least 1", mode, v)
		}
	}
	if v := metricValue(t, exp, "rpstacks_search_frontier_size_count"); v != 1 {
		t.Errorf("frontier sizes observed = %g, want 1", v)
	}
}

// TestSearchJobHugeGrid proves the tentpole's service claim: a design space
// far beyond MaxGridPoints is rejected as an exhaustive sweep but accepted
// and solved by a search job, probing a tiny fraction of the grid.
func TestSearchJobHugeGrid(t *testing.T) {
	axes := `"axes":["L1D=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16",` +
		`"L2D=6,8,10,12,14,16,18,20,22,24,26,28,30,32,34,36",` +
		`"MemD=100,110,120,130,140,150,160,170,180,190,200,210,220,230,240,250",` +
		`"FpAdd=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16",` +
		`"FpMul=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16",` +
		`"IntAlu=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16"]`
	body := func(extra string) string {
		return fmt.Sprintf(`{"workload":%q,%s,"engine":"rpstacks","micro_ops":%d,"timeout_ms":120000%s}`,
			testWorkload, axes, testMicroOps, extra)
	}
	s := New(Config{Workers: 1, QueueDepth: 4, SweepParallelism: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, code := submitJob(t, ts.URL, body("")); code != http.StatusBadRequest {
		t.Fatalf("16.7M-point exhaustive sweep accepted with status %d, want 400", code)
	}
	v, code := submitJob(t, ts.URL, body(`,"search":"halving"`))
	if code != http.StatusAccepted {
		t.Fatalf("search over the same grid: status %d, want 202", code)
	}
	done := pollJob(t, ts.URL, v.ID)
	if done.Status != JobDone {
		t.Fatalf("status %s (error %q), want done", done.Status, done.Error)
	}
	sum := done.Result.Search
	if sum == nil || !sum.Converged || !sum.Verified {
		t.Fatalf("huge-grid search summary %+v", sum)
	}
	if sum.GridPoints != 1<<24 {
		t.Fatalf("grid %d, want 2^24", sum.GridPoints)
	}
	if sum.Probes > 4096 {
		t.Fatalf("probed %d points of 2^24; the lazy search is supposed to be sublinear", sum.Probes)
	}
	if len(done.Result.Points) != 1 {
		t.Fatalf("returned %d points, want the single optimum", len(done.Result.Points))
	}
}

// TestSearchJobFleetServed routes a search job's probe rounds through the
// sweep fleet: every round becomes one distributed chunk-leased sweep, and
// the final answer must equal the local exhaustive reference exactly.
func TestSearchJobFleetServed(t *testing.T) {
	shared, err := store.OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:          1,
		QueueDepth:       4,
		SweepParallelism: 2,
		FleetStore:       shared,
		FleetLeaseTTL:    time.Minute,
		FleetChunkSize:   2,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	startServeWorkers(t, ts.URL, shared, 2)

	cfg, a, microOps := searchSetup(t)
	spec := &dse.SearchSpec{Mode: dse.SearchPareto}
	ref, _ := searchReference(t, cfg, a, microOps, spec)
	v, code := submitJob(t, ts.URL, searchBody(spec.String(), ""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	matchSearchJob(t, "fleet-served "+spec.String(), pollJob(t, ts.URL, v.ID), ref)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp := readAll(t, resp)
	if v := metricValue(t, exp, `rpstacks_fleet_chunks_completed_total{result="first"}`); v < 1 {
		t.Errorf("fleet completions = %g; search rounds were not fleet-served", v)
	}
}

// TestParseJobRequestSearch pins the search-specific validation surface.
func TestParseJobRequestSearch(t *testing.T) {
	lim := DefaultLimits()
	body := func(fields string) []byte {
		return []byte(fmt.Sprintf(`{"workload":"429.mcf","axes":["L1D=1,2","L2D=6,12"]%s}`, fields))
	}
	rejects := []struct{ fields, frag string }{
		{`,"search":"gradient"`, "unknown search mode"},
		{`,"search":"halving","audit_fraction":0.5`, "verified online"},
		{`,"search":"target"`, "needs a cpi budget"},
		{`,"search":"halving","target_cpi":0.5`, "meaningless"},
		{`,"search":"halving;cost=MemD:2"`, "does not match any axis"},
	}
	for _, c := range rejects {
		_, err := ParseJobRequest(body(c.fields), lim)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseJobRequest(%s) = %v, want error containing %q", c.fields, err, c.frag)
		}
	}

	spec, err := ParseJobRequest(body(`,"search":"target","target_cpi":0.8`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Search == nil || spec.Search.TargetCPI != 0.8 {
		t.Fatalf("target search did not borrow target_cpi: %+v", spec.Search)
	}

	// 8 axes × 64 values: 2^48 points, accepted only with a search mode.
	vals := make([]string, 64)
	for i := range vals {
		vals[i] = fmt.Sprint(i + 1)
	}
	events := []string{"L1D", "L2D", "MemD", "FpAdd", "FpMul", "IntAlu", "IntMul", "Branch"}
	quoted := make([]string, len(events))
	for i, e := range events {
		quoted[i] = fmt.Sprintf("%q", e+"="+strings.Join(vals, ","))
	}
	huge := func(fields string) []byte {
		return []byte(fmt.Sprintf(`{"workload":"429.mcf","axes":[%s]%s}`, strings.Join(quoted, ","), fields))
	}
	if _, err := ParseJobRequest(huge(""), lim); err == nil || !strings.Contains(err.Error(), "search mode") {
		t.Errorf("2^48-point sweep: %v, want a rejection pointing at search modes", err)
	}
	spec, err = ParseJobRequest(huge(`,"search":"pareto"`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Search == nil || spec.GridSize != 1<<48 {
		t.Fatalf("2^48-point search: GridSize %d, search %+v", spec.GridSize, spec.Search)
	}
	_ = math.MaxInt
	_ = json.Valid
}
