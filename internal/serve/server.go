// Package serve implements rpserved, the long-running design-space
// exploration service: HTTP job submission over the dse sweep engines with
// the one-time setup — simulate, analyze, build the dependence graph —
// amortized across requests through a content-addressed artifact cache.
//
// The paper's pitch is that one simulation answers thousands of design-point
// queries; a batch CLI still re-pays the simulation every invocation. The
// service pays it once per trace content: artifacts are keyed by
// trace.Digest (SHA-256 of the canonical trace encoding) plus the analysis
// options and machine fingerprint, so any number of jobs over the same
// workload — concurrent or sequential — share one setup and then only
// re-weight representative stacks per design point.
//
// Robustness is part of the subsystem: the job queue is bounded and sheds
// load with 429 + Retry-After instead of accepting unbounded work, every
// job runs under its own deadline threaded into the sweep loop as a
// context (dse.ExploreOptions.Context), and Shutdown drains in-flight and
// queued jobs before returning. /metrics exports the counters in Prometheus
// text format.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/depgraph"
	"repro/internal/dse"
	"repro/internal/fleet"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prom"
	"repro/internal/serve/cache"
	"repro/internal/stacks"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// QueueDepth bounds the number of accepted-but-not-running jobs;
	// submissions beyond it are shed with 429.
	QueueDepth int
	// Workers is the number of concurrent job executors.
	Workers int
	// SweepParallelism is the per-job sweep worker count used when a job
	// does not request its own.
	SweepParallelism int
	// CacheEntries bounds each artifact cache (workload simulations and
	// per-digest analysis/graph pairs).
	CacheEntries int
	// RetainedJobs bounds the finished-job records kept for polling.
	RetainedJobs int
	// Limits bounds individual requests; zero means DefaultLimits.
	Limits Limits
	// BaseConfig is the machine under exploration (nil: config.Baseline).
	BaseConfig *config.Config
	// AnalysisOpts are the RpStacks execution parameters (zero:
	// core.DefaultOptions).
	AnalysisOpts core.Options
	// Store, when non-nil, is the durable artifact tier: traces and analyses
	// are published to it and restarts of the service warm-start from it.
	// The caller owns opening (store.Open) and thereby chooses directory and
	// capacity bound. Nil runs memory-only, exactly the pre-store behavior.
	Store *store.Store
	// Logger receives the service's structured logs (job lifecycle, load
	// shedding, store trouble), each carrying job_id / trace_digest
	// attributes where one applies. Nil discards.
	Logger *slog.Logger
	// TraceCapacity bounds each job's flight-recorder ring (span records
	// kept per job, oldest overwritten). Zero picks a default; negative
	// disables per-job tracing entirely.
	TraceCapacity int
	// FleetStore, when non-nil, turns the server into a fleet coordinator:
	// it mounts the /fleet/v1/ chunk-lease protocol and delegates eligible
	// sweeps (regenerable workload jobs under the baseline setup) to
	// rpworker processes publishing into this shared blob root. Workers must
	// open the same directory. Nil keeps every sweep in-process.
	FleetStore *store.Shared
	// FleetLeaseTTL is the fleet lease heartbeat TTL (zero: 10s).
	FleetLeaseTTL time.Duration
	// FleetChunkSize is the points-per-lease granularity (zero: ~32 chunks
	// per sweep).
	FleetChunkSize int
	// JournalCapacity bounds the job journal's retained flight records
	// (zero: 512; negative disables the journal and its /debug/jobs
	// endpoints entirely).
	JournalCapacity int
	// JournalProgressInterval paces the journal's live progress events
	// (zero: 500ms; negative: one event per chunk — tests want every
	// observation).
	JournalProgressInterval time.Duration
	// SlowJobThreshold, when positive, logs one structured warning with the
	// per-stage breakdown for any job whose wall-clock exceeds it.
	SlowJobThreshold time.Duration
	// SLOTargets maps engine name to its latency objective; a finished job
	// is a good SLO event when it succeeded within its engine's threshold.
	// Empty disables the SLO layer.
	SLOTargets map[string]time.Duration
	// SLOObjective is the success-ratio objective shared by every target
	// (zero: 0.99).
	SLOObjective float64
	// Clock is the server's wall clock, injectable for tests (nil:
	// time.Now). It drives job timestamps, the journal, slow-job detection
	// and the SLO windows; span durations keep the tracer's own clock.
	Clock func() time.Time
}

// defaultTraceCapacity is the per-job flight-recorder ring size: enough for
// the lifecycle spans plus hundreds of sweep chunks, small enough that the
// retained-job bound keeps total trace memory modest.
const defaultTraceCapacity = 512

// Server is the exploration service. Create with New, expose as an
// http.Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	logger *slog.Logger

	metrics   *metrics
	store     *store.Store
	workloads *cache.Tiered[*workloadArtifacts]
	artifacts *cache.Tiered[*setupArtifacts]

	// fleet is the sweep coordinator when Config.FleetStore is set;
	// fleetEligible gates delegation to servers whose machine setup is the
	// one workers rebuild (baseline config, default analysis options) — a
	// mismatched setup would make every worker refuse the sweep, so such
	// servers keep sweeping locally.
	fleet         *fleet.Coordinator
	fleetEligible bool
	// fleetJobs maps an active fleet sweep ID (the hex fingerprint) to the
	// job that delegated it, so coordinator lease events land on the right
	// journal stream.
	fleetJobsMu sync.Mutex
	fleetJobs   map[string]string

	// journal is the per-job flight recorder of record — nil when disabled.
	journal *journal.Journal
	// now is Config.Clock (or time.Now); start anchors uptime reporting.
	now   func() time.Time
	start time.Time

	queue    chan *Job
	wg       sync.WaitGroup
	seq      atomic.Uint64
	draining atomic.Bool
	// submitMu serializes submissions against queue closure: Shutdown takes
	// the write side before closing the channel, so no send can race it.
	submitMu  sync.RWMutex
	closeOnce sync.Once

	// jobCtx is the parent of every job deadline; cancelled only when a
	// Shutdown deadline forces in-flight sweeps to abandon their chunks.
	jobCtx    context.Context
	jobCancel context.CancelFunc

	jobsMu    sync.Mutex
	jobs      map[string]*Job
	doneOrder []string

	// setupPrint fingerprints the machine structure, baseline latencies and
	// analysis options into every artifact cache key, so artifacts are
	// shared only between jobs that would build identical ones.
	setupPrint string
	// cfgPrint fingerprints the machine configuration alone. Workload traces
	// depend on the machine but not the analysis options, so they are keyed
	// by this narrower print — two processes differing only in analysis
	// options still share simulated traces through the durable tier.
	cfgPrint string

	// beforeJob, when non-nil, runs on the worker goroutine before each
	// job. Tests use it to hold workers busy deterministically.
	beforeJob func(*Job)
}

// workloadArtifacts is one simulated named workload: the trace, the measured
// µop stream (for the sim engine) and the trace's content digest.
type workloadArtifacts struct {
	tr     *trace.Trace
	uops   []isa.MicroOp
	digest string
}

// setupArtifacts are the content-addressed prediction engines of one trace.
type setupArtifacts struct {
	analysis *core.Analysis
	graph    *depgraph.Graph
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SweepParallelism <= 0 {
		cfg.SweepParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 32
	}
	if cfg.RetainedJobs <= 0 {
		cfg.RetainedJobs = 1024
	}
	if cfg.Limits == (Limits{}) {
		cfg.Limits = DefaultLimits()
	}
	if cfg.BaseConfig == nil {
		cfg.BaseConfig = config.Baseline()
	}
	if cfg.AnalysisOpts == (core.Options{}) {
		cfg.AnalysisOpts = core.DefaultOptions()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = defaultTraceCapacity
	}

	// A nil *store.Store must stay a nil interface, or the tiers would call
	// methods on it.
	var blob cache.BlobStore
	if cfg.Store != nil {
		blob = cfg.Store
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Server{
		cfg:       cfg,
		logger:    cfg.Logger,
		metrics:   newMetrics(),
		store:     cfg.Store,
		workloads: cache.NewTiered[*workloadArtifacts](cfg.CacheEntries, blob),
		artifacts: cache.NewTiered[*setupArtifacts](cfg.CacheEntries, blob),
		queue:     make(chan *Job, cfg.QueueDepth),
		jobs:      make(map[string]*Job),
		fleetJobs: make(map[string]string),
		now:       cfg.Clock,
		start:     time.Now(),
	}
	s.jobCtx, s.jobCancel = context.WithCancel(context.Background())
	s.metrics.reg.Gauge("rpstacks_process_start_time_seconds",
		"Unix time this process started.").Set(float64(s.start.UnixNano()) / 1e9)

	if cfg.JournalCapacity >= 0 {
		// Same nil-interface caveat as the cache tiers: a nil *store.Store
		// must stay a nil journal.Store.
		var jstore journal.Store
		if cfg.Store != nil {
			jstore = cfg.Store
		}
		s.journal = journal.New(journal.Options{
			Store:            jstore,
			Capacity:         cfg.JournalCapacity,
			ProgressInterval: cfg.JournalProgressInterval,
			Now:              s.now,
			Logger:           cfg.Logger,
		})
	}
	if len(cfg.SLOTargets) > 0 {
		s.metrics.slo = prom.NewSLO(s.metrics.reg, prom.SLOOptions{
			Prefix:    "rpstacks_slo",
			Objective: cfg.SLOObjective,
			Now:       s.now,
			OnBurn: func(class string, window time.Duration, rate float64) {
				s.logger.Warn("slo burn: error budget burning faster than the objective allows",
					slog.String("engine", class),
					slog.Duration("window", window),
					slog.Float64("burn_rate", rate))
			},
		})
		engines := make([]string, 0, len(cfg.SLOTargets))
		for engine := range cfg.SLOTargets {
			engines = append(engines, engine)
		}
		sort.Strings(engines)
		for _, engine := range engines {
			s.metrics.slo.SetTarget(engine, cfg.SLOTargets[engine])
		}
	}

	cfgJSON, _ := json.Marshal(cfg.BaseConfig)
	print := sha256.Sum256(fmt.Appendf(cfgJSON, "|%+v", cfg.AnalysisOpts))
	s.setupPrint = fmt.Sprintf("%x", print[:8])
	cfgOnly := sha256.Sum256(cfgJSON)
	s.cfgPrint = fmt.Sprintf("%x", cfgOnly[:8])

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	s.mux.HandleFunc("GET /debug/audit", s.handleAudit)
	s.mux.HandleFunc("GET /debug/jobs", s.handleDebugJobs)
	s.mux.HandleFunc("GET /debug/jobs/{id}", s.handleDebugJob)
	s.mux.HandleFunc("GET /debug/jobs/{id}/events", s.handleDebugJobEvents)
	s.mux.HandleFunc("GET /debug/status", s.handleDebugStatus)
	s.registerCollectors()

	if cfg.FleetStore != nil {
		s.fleet = fleet.NewCoordinator(fleet.CoordinatorConfig{
			Shared:   cfg.FleetStore,
			LeaseTTL: cfg.FleetLeaseTTL,
			Logger:   cfg.Logger,
			Registry: s.metrics.reg,
			OnChunkEvent: func(sweepID string, chunk int, worker, kind string) {
				if id := s.fleetJob(sweepID); id != "" {
					s.journal.FleetEvent(id, kind, chunk, worker)
				}
			},
		})
		// The coordinator's mux matches full /fleet/v1/... paths, so it
		// mounts without a strip.
		s.mux.Handle("/fleet/", s.fleet)
		s.fleetEligible = fleetDefaultsMatch(cfg.BaseConfig, cfg.AnalysisOpts)
		if !s.fleetEligible {
			cfg.Logger.Warn("serve: fleet coordinator mounted but sweeps stay local: " +
				"non-baseline machine setup cannot be rebuilt by workers")
		}
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// ServeHTTP exposes the service as an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops accepting jobs, drains everything already accepted —
// queued and in-flight — and waits for the workers to exit. If ctx expires
// first, running sweeps are cancelled (their jobs finish as canceled) and
// Shutdown still waits for the workers before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.submitMu.Lock()
		s.draining.Store(true)
		close(s.queue)
		s.submitMu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.jobCancel()
		<-done
		return ctx.Err()
	}
}

// worker executes jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job under its deadline and records the terminal
// status. A sweep that exceeds the deadline returns promptly with the
// context error (checked at every chunk boundary), so a timed-out job never
// wedges its worker.
func (s *Server) runJob(job *Job) {
	if hook := s.beforeJob; hook != nil {
		hook(job)
	}
	job.queued.End()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	job.setStatus(JobRunning)
	s.journal.JobRunning(job.ID)

	ctx, cancel := context.WithTimeout(s.jobCtx, job.Spec.Timeout)
	start := s.now()
	res, err := s.execute(ctx, job)
	cancel()

	st := job.complete(res, err)
	job.root.End()
	s.metrics.jobFinished(st)
	elapsed := s.now().Sub(start)
	s.journal.JobFinished(job.ID, finishRecord(job, st, res, err))
	if s.metrics.slo != nil {
		s.metrics.slo.Observe(job.Spec.Engine, elapsed, st == JobDone)
	}
	if thr := s.cfg.SlowJobThreshold; thr > 0 && elapsed > thr {
		s.slowJobWarn(job, st, elapsed)
	}
	s.retire(job)

	attrs := []any{
		slog.String("job_id", job.ID),
		slog.String("status", string(st)),
		slog.String("engine", job.Spec.Engine),
		slog.Duration("elapsed", elapsed),
	}
	if res != nil {
		attrs = append(attrs, slog.String("trace_digest", res.TraceDigest))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
		s.logger.Warn("job finished", attrs...)
		return
	}
	s.logger.Info("job finished", attrs...)
}

// finishRecord shapes a job's terminal state into the journal's Finish.
func finishRecord(job *Job, st JobStatus, res *JobResult, err error) journal.Finish {
	fin := journal.Finish{
		Status:      string(st),
		AuditStatus: job.AuditStatus(),
	}
	if err != nil {
		fin.Error = err.Error()
	}
	if res != nil {
		fin.TraceDigest = res.TraceDigest
		fin.GridPoints = res.GridPoints
		fin.BatchSize = job.Spec.BatchSize
		fin.Workers = res.Workers
		fin.SweepMS = res.SweepMS
		fin.SetupCached = res.SetupCached
		if res.Search != nil {
			fin.Search = &journal.SearchStats{
				Mode:      res.Search.Mode,
				Probes:    res.Search.Probes,
				Rounds:    res.Search.Rounds,
				Converged: res.Search.Converged,
				Feasible:  res.Search.Feasible,
				Verified:  res.Search.Verified,
			}
		}
	}
	return fin
}

// slowJobWarn logs the one structured slow-job warning, with the stage
// breakdown the journal accumulated. Called after JobFinished so the sweep
// timing has landed on the record.
func (s *Server) slowJobWarn(job *Job, st JobStatus, elapsed time.Duration) {
	attrs := []any{
		slog.String("job_id", job.ID),
		slog.String("status", string(st)),
		slog.String("engine", job.Spec.Engine),
		slog.Duration("elapsed", elapsed),
		slog.Duration("threshold", s.cfg.SlowJobThreshold),
	}
	if rec, ok := s.journal.Get(job.ID); ok {
		attrs = append(attrs,
			slog.String("trace_digest", rec.TraceDigest),
			slog.Float64("queue_ms", rec.QueueMS),
			slog.Float64("setup_ms", rec.SetupMS),
			slog.Float64("sweep_ms", rec.SweepMS),
			slog.Float64("assemble_ms", rec.AssembleMS))
	}
	s.logger.Warn("slow job: wall-clock exceeded threshold", attrs...)
}

// execute runs the three phases of a job — obtain the trace, obtain the
// prediction engine, sweep the grid — with the first two memoized in the
// content-addressed caches, the context checked between phases, and every
// phase recorded into the job's flight recorder.
func (s *Server) execute(ctx context.Context, job *Job) (*JobResult, error) {
	spec := job.Spec
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	setupStart := time.Now()
	setup := job.tracer.StartChild(job.root.ID(), obs.CatJob, obs.NameSetup)

	// Phase 1: the trace (simulate the named workload, or use the upload).
	tr, uops, digest := spec.Trace, []isa.MicroOp(nil), spec.TraceDigest
	cached := true
	if spec.Trace == nil {
		wa, tier, err := s.workloads.GetOrComputeTraced(job.tracer, setup.ID(),
			s.workloadDiskKey(spec), s.workloadCodec(spec),
			func() (*workloadArtifacts, time.Duration, error) {
				return s.buildWorkload(spec, job.tracer, setup.ID())
			})
		if err != nil {
			setup.End()
			return nil, err
		}
		tr, uops, digest = wa.tr, wa.uops, wa.digest
		cached = cached && tier.Cached()
	}
	if err := ctx.Err(); err != nil {
		setup.End()
		return nil, err
	}

	// Phase 2: the prediction engine, content-addressed by trace digest.
	var art *setupArtifacts
	if spec.Engine != "sim" {
		var tier cache.Tier
		var err error
		art, tier, err = s.artifacts.GetOrComputeTraced(job.tracer, setup.ID(),
			digest+"|"+s.setupPrint, s.setupCodec(tr),
			func() (*setupArtifacts, time.Duration, error) {
				return s.buildArtifacts(tr)
			})
		if err != nil {
			setup.End()
			return nil, err
		}
		cached = cached && tier.Cached()
	}
	setup.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	setupWall := time.Since(setupStart)

	// Phase 3: the sweep, cancellable at chunk granularity. The sweep root
	// span is created by the dse driver itself, nested under the job.
	par := spec.Parallelism
	if par == 0 {
		par = s.cfg.SweepParallelism
	}
	if spec.Search != nil {
		// Guided search: probes the space lazily — never materialize the
		// grid, which may be far beyond MaxGridPoints for search jobs.
		return s.executeSearch(ctx, job, tr, uops, art, digest, setupWall, cached, par)
	}
	points := spec.Space.Enumerate(s.cfg.BaseConfig.Lat)
	opts := dse.ExploreOptions{
		Parallelism: par,
		BatchSize:   spec.BatchSize,
		Context:     ctx,
		Setup:       setupWall,
		Tracer:      job.tracer,
		TraceParent: job.root.ID(),
		// Audited jobs need the sweep fingerprint: it seeds the auditor's
		// deterministic point sample.
		NeedFingerprint: spec.AuditFraction > 0,
	}
	var rep *dse.Report
	var err error
	if s.fleet != nil && s.fleetEligible && spec.Trace == nil {
		// Distributed sweep: workers regenerate the engine inputs from the
		// job recipe; uploaded traces have no recipe and stay local.
		rep, err = s.fleetSweep(ctx, job, points, art, uops, setupWall, false)
	} else {
		switch spec.Engine {
		case "rpstacks":
			rep, err = dse.ExploreRpStacksOpts(art.analysis, points, opts)
		case "graph":
			rep, err = dse.ExploreGraphOpts(art.graph, points, opts)
		case "sim":
			rep, err = dse.ExploreSimOpts(s.cfg.BaseConfig, uops, points, opts)
		default:
			err = fmt.Errorf("serve: unknown engine %q", spec.Engine)
		}
	}
	if err != nil {
		return nil, err
	}
	s.metrics.observeSweep(spec.Engine, rep.Wall,
		fmt.Sprintf("job_id=%q,trace_digest=%q", job.ID, digest))

	// Phase 4 (audited jobs only): the shadow accuracy audit. It reads the
	// sweep report, re-simulates a fingerprint-sampled subset of points
	// under the remaining job deadline, and never changes the job's
	// predictions — a drifting audit flips the audit status, not the result.
	if spec.AuditFraction > 0 {
		if err := s.auditSweep(ctx, job, rep, art, digest, par); err != nil {
			return nil, err
		}
	}
	return rankResults(spec, tr, digest, rep, setupWall, cached), nil
}

// executeSearch runs phase 3 of a guided-search job: the lazy probe loop
// through the job's engine (or, when eligible, the sweep fleet — each probe
// round becomes one distributed sweep over the round's points), online
// verification of every returned optimum through an audit oracle, and the
// rendering of the SearchResult into the job's result shape.
func (s *Server) executeSearch(ctx context.Context, job *Job, tr *trace.Trace, uops []isa.MicroOp,
	art *setupArtifacts, digest string, setupWall time.Duration, cached bool, par int) (*JobResult, error) {
	spec := job.Spec
	opts := dse.SearchOptions{
		ExploreOptions: dse.ExploreOptions{
			Parallelism: par,
			BatchSize:   spec.BatchSize,
			Context:     ctx,
			Setup:       setupWall,
			Tracer:      job.tracer,
			TraceParent: job.root.ID(),
		},
		MicroOps: len(tr.Records),
	}
	// Online verification: a named workload re-simulates ground truth at
	// each returned optimum — the same oracle recipe the shadow audit
	// uses. An uploaded trace has no regeneration recipe, so the graph
	// oracle re-derives the dependence-graph longest path instead (exact
	// for graph-engine searches, a model cross-check for rpstacks).
	if spec.Workload != "" {
		gen, stream, cut, err := measuredRegion(spec)
		if err != nil {
			return nil, err
		}
		oracle := &audit.SimOracle{
			Cfg:       s.cfg.BaseConfig,
			CodeLines: gen.CodeLines(),
			DataLines: gen.DataLines(),
			Warm:      stream[:cut],
			UOps:      stream[cut:],
		}
		opts.Verify = func(l stacks.Latencies) (float64, error) {
			c, _, err := oracle.Truth(ctx, l)
			return c, err
		}
	} else {
		oracle := &audit.GraphOracle{Graph: art.graph}
		opts.Verify = func(l stacks.Latencies) (float64, error) {
			c, _, err := oracle.Truth(ctx, l)
			return c, err
		}
	}
	if s.fleet != nil && s.fleetEligible && spec.Trace == nil {
		opts.RoundEval = func(rctx context.Context, pts []stacks.Latencies) ([]float64, error) {
			rep, err := s.fleetSweep(rctx, job, pts, art, uops, 0, true)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(rep.Results))
			for i, r := range rep.Results {
				out[i] = r.Cycles
			}
			return out, nil
		}
	}
	var res *dse.SearchResult
	var err error
	base := s.cfg.BaseConfig.Lat
	switch spec.Engine {
	case "rpstacks":
		res, err = dse.SearchRpStacks(art.analysis, base, &spec.Space, spec.Search, opts)
	case "graph":
		res, err = dse.SearchGraph(art.graph, base, &spec.Space, spec.Search, opts)
	case "sim":
		res, err = dse.SearchSim(s.cfg.BaseConfig, uops, &spec.Space, spec.Search, opts)
	default:
		err = fmt.Errorf("serve: unknown engine %q", spec.Engine)
	}
	if err != nil {
		return nil, err
	}
	s.metrics.observeSweep(spec.Engine, res.Wall,
		fmt.Sprintf("job_id=%q,trace_digest=%q", job.ID, digest))
	s.metrics.observeSearch(res)
	return searchResults(spec, tr, digest, res, setupWall, cached, par), nil
}

// searchResults renders a finished guided search as the job result: the
// verified optimum (halving, target) or the cycles-ascending Pareto
// frontier as the point list, plus the probe-loop summary.
func searchResults(spec *JobSpec, tr *trace.Trace, digest string, res *dse.SearchResult,
	setup time.Duration, cached bool, par int) *JobResult {
	uopsN := float64(len(tr.Records))
	var sps []dse.SearchPoint
	if res.Best != nil {
		sps = append(sps, *res.Best)
	}
	sps = append(sps, res.Frontier...)
	pts := make([]PointResult, len(sps))
	for k, p := range sps {
		lat := make(map[string]float64, len(spec.Space.Axes))
		for _, ax := range spec.Space.Axes {
			lat[ax.Event.String()] = p.Lat[ax.Event]
		}
		pts[k] = PointResult{
			Latencies:    lat,
			Cycles:       p.Cycles,
			CPI:          p.Cycles / uopsN,
			Cost:         p.Cost,
			VerifyErrPct: p.VerifyErrPct,
		}
	}
	meeting := 0
	if res.Mode == dse.SearchTarget && res.Feasible {
		meeting = 1
	}
	return &JobResult{
		Engine:      spec.Engine,
		TraceDigest: digest,
		GridPoints:  int(res.GridPoints),
		MicroOps:    len(tr.Records),
		Meeting:     meeting,
		SetupMS:     float64(setup) / float64(time.Millisecond),
		SetupCached: cached,
		SweepMS:     float64(res.Wall) / float64(time.Millisecond),
		Workers:     par,
		Points:      pts,
		Search: &SearchSummary{
			Mode:            res.Mode,
			GridPoints:      int(res.GridPoints),
			Probes:          res.Probes,
			ResumedProbes:   res.ResumedProbes,
			Rounds:          res.Rounds,
			PeakBoxes:       res.PeakBoxes,
			Converged:       res.Converged,
			Feasible:        res.Feasible,
			FrontierSize:    len(res.Frontier),
			Verified:        res.Verified,
			VerifyMaxErrPct: res.VerifyMaxErrPct,
		},
	}
}

// auditSweep runs the shadow audit of a finished sweep and publishes its
// report: onto the job (audit status + /debug/audit), into the durable store
// when one is mounted (so the report survives restarts), and into the audit
// metric families point by point.
func (s *Server) auditSweep(ctx context.Context, job *Job, rep *dse.Report, art *setupArtifacts, digest string, par int) error {
	spec := job.Spec
	// The oracle replays the exact ground-truth recipe of the sweep's
	// baseline trace: regenerate the deterministic µop stream (cheap), warm,
	// and re-simulate at each audited point.
	gen, stream, cut, err := measuredRegion(spec)
	if err != nil {
		return err
	}
	oracle := &audit.SimOracle{
		Cfg:       s.cfg.BaseConfig,
		CodeLines: gen.CodeLines(),
		DataLines: gen.DataLines(),
		Warm:      stream[:cut],
		UOps:      stream[cut:],
	}
	var decompose func(*stacks.Latencies) stacks.Stack
	switch spec.Engine {
	case "rpstacks":
		decompose = audit.RpStacksDecompose(art.analysis)
	case "graph":
		decompose = audit.GraphDecompose(art.graph)
	}
	arep, err := audit.Run(rep, oracle, decompose, audit.Options{
		Fraction:    spec.AuditFraction,
		Seed:        spec.AuditSeed,
		MaxPoints:   s.cfg.Limits.MaxAuditPoints,
		Parallelism: par,
		DriftPct:    spec.AuditDriftPct,
		Logger:      s.logger,
		JobID:       job.ID,
		Context:     ctx,
		Tracer:      job.tracer,
		TraceParent: job.root.ID(),
		OnPoint: func(p audit.PointAudit) {
			s.metrics.observeAuditPoint(p, job.ID, digest)
		},
	})
	if err != nil {
		return fmt.Errorf("serve: auditing sweep: %w", err)
	}
	s.metrics.auditPoints.With("skipped_budget").Add(float64(arep.Skipped))
	job.setAudit(arep)
	if arep.Status != "ok" {
		s.logger.Warn("audit drift: job predictions exceeded the error threshold",
			slog.String("job_id", job.ID),
			slog.String("trace_digest", digest),
			slog.Float64("max_error_pct", arep.MaxErrorPct),
			slog.Int("drifted", arep.Drifted))
	}
	if s.store != nil {
		payload, err := json.Marshal(arep)
		if err != nil {
			return fmt.Errorf("serve: encoding audit report: %w", err)
		}
		if err := s.store.Put(auditKey(job.ID), payload, 0); err != nil {
			// Persistence is best-effort: the report still serves from
			// memory for the job's retained lifetime.
			s.logger.Warn("audit report not persisted",
				slog.String("job_id", job.ID), slog.String("error", err.Error()))
		}
	}
	return nil
}

// auditKey is the durable-store key of one job's audit report. Job IDs are
// sequential per process, so a restarted service eventually reuses them and
// overwrites the older report — acceptable for a debugging artifact.
func auditKey(jobID string) string { return "audit|" + jobID }

// workloadKey identifies one named-workload simulation; the analysis layer
// above it is keyed by content digest instead.
func workloadKey(spec *JobSpec) string {
	return fmt.Sprintf("%s|seed=%d|n=%d", spec.Workload, spec.Seed, spec.MicroOps)
}

// workloadDiskKey is the workload key as published to the durable tier.
// Unlike the per-process memory table, the store outlives configuration
// changes, so the machine fingerprint is part of the key: a trace simulated
// under one machine must never satisfy a request under another.
func (s *Server) workloadDiskKey(spec *JobSpec) string {
	return "w|" + s.cfgPrint + "|" + workloadKey(spec)
}

// measuredRegion regenerates a named workload's deterministic µop stream
// and the warmup cut: 3x the measured length of functional warmup, snapped
// forward to a macro-op boundary. Generation is cheap and bit-reproducible
// from (profile, seed), which is what lets the durable tier persist only
// the simulated trace.
func measuredRegion(spec *JobSpec) (*workload.Generator, []isa.MicroOp, int, error) {
	prof, ok := workload.ByName(spec.Workload)
	if !ok {
		return nil, nil, 0, fmt.Errorf("serve: unknown workload %q", spec.Workload)
	}
	gen := workload.NewGenerator(prof, spec.Seed)
	warm := 3 * spec.MicroOps
	stream := gen.Take(warm + spec.MicroOps)
	cut := warm
	for cut < len(stream) && !stream[cut].SoM {
		cut++
	}
	return gen, stream, cut, nil
}

// buildWorkload simulates the named workload once: functional warmup, then
// the traced region. The returned cost is what later cache hits avoid
// re-paying.
func (s *Server) buildWorkload(spec *JobSpec, otr *obs.Tracer, parent uint64) (*workloadArtifacts, time.Duration, error) {
	start := time.Now()
	gen, stream, cut, err := measuredRegion(spec)
	if err != nil {
		return nil, 0, err
	}
	sim, err := cpu.New(s.cfg.BaseConfig)
	if err != nil {
		return nil, 0, err
	}
	sim.SetTracer(otr, parent)
	sim.WarmCode(gen.CodeLines())
	sim.WarmData(gen.DataLines())
	sim.WarmUp(stream[:cut])
	tr, err := sim.Run(stream[cut:])
	if err != nil {
		return nil, 0, fmt.Errorf("serve: simulating %s: %w", spec.Workload, err)
	}
	wa := &workloadArtifacts{tr: tr, uops: stream[cut:], digest: trace.Digest(tr)}
	return wa, time.Since(start), nil
}

// workloadCodec persists a simulated workload as its canonical trace
// encoding. The µop stream is not stored: it regenerates bit-identically
// from (profile, seed), so decode replays the cheap generation and pays
// none of the simulation. The digest is recomputed from the decoded trace,
// making a served artifact content-verified end to end.
func (s *Server) workloadCodec(spec *JobSpec) cache.Codec[*workloadArtifacts] {
	return cache.Codec[*workloadArtifacts]{
		Encode: func(wa *workloadArtifacts) ([]byte, error) {
			var buf bytes.Buffer
			if err := trace.Write(&buf, wa.tr); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Decode: func(raw []byte) (*workloadArtifacts, error) {
			tr, err := trace.Read(bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			_, stream, cut, err := measuredRegion(spec)
			if err != nil {
				return nil, err
			}
			uops := stream[cut:]
			if len(tr.Records) != len(uops) {
				return nil, fmt.Errorf("serve: stored trace has %d records, workload generates %d µops",
					len(tr.Records), len(uops))
			}
			return &workloadArtifacts{tr: tr, uops: uops, digest: trace.Digest(tr)}, nil
		},
	}
}

// setupCodec persists the prediction engine as the analysis codec alone.
// The dependence graph references trace records and is O(n) to rebuild, so
// decode reconstructs it from the trace already in hand (phase 1) rather
// than storing a second, larger artifact.
func (s *Server) setupCodec(tr *trace.Trace) cache.Codec[*setupArtifacts] {
	return cache.Codec[*setupArtifacts]{
		Encode: func(art *setupArtifacts) ([]byte, error) {
			var buf bytes.Buffer
			if err := core.WriteAnalysis(&buf, art.analysis); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Decode: func(raw []byte) (*setupArtifacts, error) {
			analysis, err := core.ReadAnalysis(bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			g, err := depgraph.Build(tr, &s.cfg.BaseConfig.Structure, 0, len(tr.Records))
			if err != nil {
				return nil, err
			}
			return &setupArtifacts{analysis: analysis, graph: g}, nil
		},
	}
}

// buildArtifacts runs the expensive one-time analysis of a trace: the
// RpStacks representative-stack extraction and the whole-trace dependence
// graph, both reusable for any latency configuration of the structure.
func (s *Server) buildArtifacts(tr *trace.Trace) (*setupArtifacts, time.Duration, error) {
	start := time.Now()
	analysis, err := core.Analyze(tr, &s.cfg.BaseConfig.Structure, &s.cfg.BaseConfig.Lat, s.cfg.AnalysisOpts)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: analyzing trace: %w", err)
	}
	g, err := depgraph.Build(tr, &s.cfg.BaseConfig.Structure, 0, len(tr.Records))
	if err != nil {
		return nil, 0, fmt.Errorf("serve: building graph: %w", err)
	}
	return &setupArtifacts{analysis: analysis, graph: g}, time.Since(start), nil
}

// rankResults orders a sweep's results deterministically — ascending
// cycles, original point index breaking ties — filters by the CPI target
// when one is set, and truncates to the requested top count.
func rankResults(spec *JobSpec, tr *trace.Trace, digest string, rep *dse.Report, setup time.Duration, cached bool) *JobResult {
	results := rep.Results
	uopsN := float64(len(tr.Records))
	idx := make([]int, len(results))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if results[a].Cycles != results[b].Cycles {
			return results[a].Cycles < results[b].Cycles
		}
		return a < b
	})
	meeting := 0
	selected := idx
	if spec.TargetCPI > 0 {
		budget := spec.TargetCPI * uopsN
		keep := selected[:0:0]
		for _, i := range idx {
			if results[i].Cycles <= budget {
				keep = append(keep, i)
			}
		}
		meeting = len(keep)
		selected = keep
	}
	if len(selected) > spec.Top {
		selected = selected[:spec.Top]
	}
	pts := make([]PointResult, len(selected))
	for k, i := range selected {
		lat := make(map[string]float64, len(spec.Space.Axes))
		for _, ax := range spec.Space.Axes {
			lat[ax.Event.String()] = results[i].Lat[ax.Event]
		}
		pts[k] = PointResult{Latencies: lat, Cycles: results[i].Cycles, CPI: results[i].Cycles / uopsN}
	}
	return &JobResult{
		Engine:      spec.Engine,
		TraceDigest: digest,
		GridPoints:  len(results),
		MicroOps:    len(tr.Records),
		Meeting:     meeting,
		SetupMS:     float64(setup) / float64(time.Millisecond),
		SetupCached: cached,
		SweepMS:     float64(rep.Wall) / float64(time.Millisecond),
		Workers:     len(rep.Workers),
		Points:      pts,
	}
}

// --- job registry --------------------------------------------------------

func (s *Server) register(job *Job) {
	s.jobsMu.Lock()
	s.jobs[job.ID] = job
	s.jobsMu.Unlock()
}

func (s *Server) unregister(id string) {
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
}

// retire enforces the finished-job retention bound.
func (s *Server) retire(job *Job) {
	s.jobsMu.Lock()
	s.doneOrder = append(s.doneOrder, job.ID)
	for len(s.doneOrder) > s.cfg.RetainedJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.jobsMu.Unlock()
}

func (s *Server) lookup(id string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// --- HTTP handlers -------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func errJSON(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes))
	if err != nil {
		s.metrics.invalid.Inc()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			errJSON(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		errJSON(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	spec, err := ParseJobRequest(body, s.cfg.Limits)
	if err != nil {
		s.metrics.invalid.Inc()
		errJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq.Add(1)),
		Spec:      spec,
		Submitted: s.now(),
		status:    JobQueued,
	}
	if s.cfg.TraceCapacity > 0 {
		jobID := job.ID
		job.tracer = obs.NewTracer(s.cfg.TraceCapacity, obs.WithOnEnd(func(rec obs.Record) {
			s.metrics.observeSpan(rec)
			s.journal.ObserveSpan(jobID, rec)
		}))
	}
	job.root = job.tracer.Start(obs.CatJob, "job")
	job.root.SetDetail(job.ID)
	job.queued = job.tracer.StartChild(job.root.ID(), obs.CatJob, obs.NameQueueWait)

	s.submitMu.RLock()
	if s.draining.Load() {
		s.submitMu.RUnlock()
		errJSON(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.register(job)
	s.journal.JobQueued(job.ID, journal.Record{
		Engine:      spec.Engine,
		Workload:    spec.Workload,
		TraceDigest: spec.TraceDigest,
		GridPoints:  spec.GridSize,
		BatchSize:   spec.BatchSize,
		Submitted:   job.Submitted,
	})
	select {
	case s.queue <- job:
		s.submitMu.RUnlock()
		s.metrics.submitted.Inc()
		s.logger.Info("job accepted",
			slog.String("job_id", job.ID),
			slog.String("engine", spec.Engine),
			slog.Int("grid_points", spec.GridSize))
		w.Header().Set("Location", "/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.view(false))
	default:
		s.submitMu.RUnlock()
		s.unregister(job.ID)
		s.journal.Discard(job.ID)
		s.metrics.rejected.Inc()
		s.logger.Warn("job rejected: queue full",
			slog.String("job_id", job.ID),
			slog.Int("queue_capacity", cap(s.queue)))
		w.Header().Set("Retry-After", "1")
		errJSON(w, http.StatusTooManyRequests, "job queue is full (depth %d); retry later", cap(s.queue))
	}
}

// handleTrace serves a job's flight recorder: Chrome trace-event JSON by
// default (Perfetto / chrome://tracing loadable), collapsed flamegraph
// stacks with ?format=folded. A fleet-delegated job whose worker trace
// fragments were collected serves the *merged* multi-process timeline —
// the server's own track plus one skew-normalized track per worker — in
// both formats; locally-run jobs serve the single-process view as always.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	job, ok := s.lookup(id)
	if !ok {
		errJSON(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	recs := job.Trace()
	if recs == nil {
		errJSON(w, http.StatusNotFound, "job %s has no trace (tracing disabled)", id)
		return
	}
	frags := job.FleetFragments()
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		if len(frags) > 0 {
			_ = obs.WriteChromeTimeline(w, obs.MergeTimeline("rpserved", recs, frags))
		} else {
			_ = obs.WriteChromeTrace(w, recs)
		}
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(frags) > 0 {
			recs = obs.MergeTimeline("rpserved", recs, frags).Flatten()
		}
		_ = obs.WriteFolded(w, recs)
	default:
		errJSON(w, http.StatusBadRequest, "unknown trace format %q (want chrome or folded)", r.URL.Query().Get("format"))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		errJSON(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.view(true))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.jobsMu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.jobsMu.Unlock()
	sort.Strings(ids)
	views := make([]jobView, 0, len(ids))
	for _, id := range ids {
		if job, ok := s.lookup(id); ok {
			views = append(views, job.view(false))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"queue_depth":    len(s.queue),
		"workers":        s.cfg.Workers,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReady is the load-balancer readiness probe, distinct from /healthz
// (which always answers 200 while the process lives): a draining server and
// a server whose queue is full — the state in which submissions are being
// shed with 429 — both answer 503 so traffic is routed elsewhere first.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case len(s.queue) == cap(s.queue):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":      "shedding",
			"queue_depth": len(s.queue),
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "ready",
			"queue_depth": len(s.queue),
		})
	}
}

// handleAudit serves a job's shadow-audit report: from the live job when it
// is still retained, falling back to the durable store — which is how the
// report outlives a service restart.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	if job, ok := s.lookup(id); ok {
		if arep := job.Audit(); arep != nil {
			writeJSON(w, http.StatusOK, arep)
			return
		}
		if job.Spec.AuditFraction > 0 && job.Status() != JobDone {
			errJSON(w, http.StatusNotFound, "job %s has no audit report yet", id)
			return
		}
		errJSON(w, http.StatusNotFound, "job %s was not audited (submit with audit_fraction > 0)", id)
		return
	}
	if s.store != nil {
		if raw, _, ok := s.store.Get(auditKey(id)); ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(raw)
			return
		}
	}
	errJSON(w, http.StatusNotFound, "no audit report for job %q", id)
}
