package depgraph

import (
	"bufio"
	"encoding/binary"
	"io"
)

// WriteFingerprint streams a canonical byte rendering of the graph's
// structure — window, evaluation order, and every edge with its event
// weights — into w. Two graphs produce the same bytes iff Build produced
// the same structure, so hashing this stream identifies the graph for
// checkpoint binding (dse.ExploreOptions.Checkpoint) without serializing
// the graph itself.
func (g *Graph) WriteFingerprint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := put(uint64(g.Lo)); err != nil {
		return err
	}
	if err := put(uint64(g.Hi)); err != nil {
		return err
	}
	for _, id := range g.evalOrder {
		if err := put(uint64(id)); err != nil {
			return err
		}
		for _, e := range g.In(id) {
			if err := put(uint64(e.From)); err != nil {
				return err
			}
			for _, p := range e.W {
				if err := put(uint64(p.Ev)); err != nil {
					return err
				}
				if err := put(uint64(p.N)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
