package depgraph

import (
	"fmt"

	"repro/internal/stacks"
)

// BatchEvaluator evaluates K design points per pass over the graph, the
// memory-bound-optimal form of the Fields-style reconstruction sweep: where
// Evaluator re-walks the whole CSR layout (edges, nodeStart, evalOrder) once
// per design point, BatchEvaluator walks it once per batch and updates K
// distance lanes at every node visit, amortizing the dominant cost — graph
// memory traffic — across the batch.
//
// Distances live in a struct-of-arrays layout, node-major: the K lanes of
// node n occupy dist[n*K : (n+1)*K], so the per-edge inner loop is a
// contiguous stream of int64 adds and compares. Per-edge latency math is
// hoisted out of that loop entirely: edges share few distinct Weight values,
// so construction assigns every edge a weight-class index, and each batch
// precomputes one Weight.Cycles row per class (classes × K int64s). The
// per-lane cycle count of an edge is therefore the exact Weight.Cycles value
// the scalar Evaluator computes — same float64 accumulation, same int64
// truncation — which is why batch results are bit-identical to per-point
// evaluation for every lane count, not merely close.
//
// A BatchEvaluator allocates O(nodes·K + edges) once; every batch after that
// is allocation-free. The distance buffer is the memory price of batching
// (nodes × K × 8 bytes), so callers with large graphs should size K
// accordingly. Like Evaluator, a BatchEvaluator only reads its Graph — any
// number may run concurrently over the same Graph — but a single
// BatchEvaluator is not goroutine-safe.
type BatchEvaluator struct {
	g       *Graph
	k       int
	dist    []int64  // node-major distance lanes: dist[int(n)*k+lane]
	wid     []int32  // per-edge weight-class index, parallel to g.edges (shared, read-only)
	classes []Weight // distinct edge weights of the graph (shared, read-only)
	wcyc    []int64  // per-batch class cycles: wcyc[class*k+lane]
}

// NewBatchEvaluator returns a K-lane evaluation scratch bound to g. Lane
// counts below one are raised to one (a one-lane batch evaluator is the
// scalar evaluator with extra steps; it exists so callers need not
// special-case K). The weight-class table is computed once per graph and
// shared, so additional evaluators — one per sweep worker — cost only their
// own distance lanes.
func (g *Graph) NewBatchEvaluator(k int) *BatchEvaluator {
	if k < 1 {
		k = 1
	}
	wid, classes := g.weightClasses()
	return &BatchEvaluator{
		g:       g,
		k:       k,
		dist:    make([]int64, g.NumNodes()*k),
		wid:     wid,
		classes: classes,
		wcyc:    make([]int64, len(classes)*k),
	}
}

// Width returns the lane count K the evaluator was built for: the maximum
// number of design points one LongestPaths call may evaluate.
func (b *BatchEvaluator) Width() int { return b.k }

// WeightClasses returns the number of distinct edge weights of the graph —
// the size of the per-batch precompute, exposed for tests and sizing
// diagnostics.
func (b *BatchEvaluator) WeightClasses() int { return len(b.classes) }

// LongestPaths evaluates up to Width design points in one pass over the
// graph and writes the longest-path length of point i into out[i]. Each
// out[i] is exactly Evaluator.LongestPath(&points[i]) — bit-identical, for
// any batch size including ragged final batches shorter than Width. A batch
// longer than Width panics: the caller owns batch slicing.
func (b *BatchEvaluator) LongestPaths(points []stacks.Latencies, out []int64) {
	m := len(points)
	if m == 0 {
		return
	}
	if m > b.k {
		panic(fmt.Sprintf("depgraph: batch of %d points exceeds evaluator width %d", m, b.k))
	}
	if len(out) < m {
		panic(fmt.Sprintf("depgraph: output buffer holds %d of %d batch results", len(out), m))
	}
	k := b.k
	// Per-batch precompute: one exact Weight.Cycles row per distinct edge
	// weight. Everything after this line is flat int64 arithmetic.
	for c := range b.classes {
		w := &b.classes[c]
		row := b.wcyc[c*k : c*k+m]
		for lane := range row {
			row[lane] = w.Cycles(&points[lane])
		}
	}
	g, dist := b.g, b.dist
	edges, wid, wcyc := g.edges, b.wid, b.wcyc
	for _, n := range g.evalOrder {
		s, cnt := g.nodeStart[n], g.nodeCnt[n]
		drow := dist[int(n)*k : int(n)*k+m]
		for lane := range drow {
			drow[lane] = 0
		}
		for ei := s; ei < s+cnt; ei++ {
			frow := dist[int(edges[ei].From)*k:]
			wrow := wcyc[int(wid[ei])*k:]
			frow, wrow = frow[:m], wrow[:m]
			for lane := range drow {
				if d := frow[lane] + wrow[lane]; d > drow[lane] {
					drow[lane] = d
				}
			}
		}
	}
	sink := int(g.Sink()) * k
	copy(out[:m], dist[sink:sink+m])
}
