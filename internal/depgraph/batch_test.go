package depgraph

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// batchSubstrate simulates a workload and builds its dependence graph plus a
// list of randomized latency design points around the baseline.
func batchSubstrate(t *testing.T, name string, seed int64, n, npts int) (*Graph, []stacks.Latencies) {
	t.Helper()
	cfg := config.Baseline()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	uops := workload.Stream(prof, seed, n)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	knobs := []stacks.Event{stacks.L1D, stacks.L2D, stacks.MemD, stacks.Branch, stacks.IntMul, stacks.FpAdd, stacks.FpMul}
	pts := make([]stacks.Latencies, npts)
	for i := range pts {
		pts[i] = cfg.Lat
		for _, e := range knobs {
			// Non-integral scales exercise the float64 accumulation and int64
			// truncation inside Weight.Cycles, where bit-identity could break.
			pts[i][e] *= 0.5 + 3*rng.Float64()
		}
	}
	return g, pts
}

// TestBatchEvaluatorMatchesScalar is the batch-vs-scalar differential for the
// graph engine: for every lane width — one, odd widths that force ragged
// final batches, the autotuner's candidates, and the degenerate
// whole-list-in-one-batch width — LongestPaths must reproduce
// Evaluator.LongestPath bit for bit on every design point. Run it under
// -race: the scalar and batch evaluators share one Graph.
func TestBatchEvaluatorMatchesScalar(t *testing.T) {
	g, pts := batchSubstrate(t, "429.mcf", 11, 6000, 100)
	ev := g.NewEvaluator()
	want := make([]int64, len(pts))
	for i := range pts {
		want[i] = ev.LongestPath(&pts[i])
	}
	for _, k := range []int{1, 2, 3, 7, 8, 64, len(pts)} {
		be := g.NewBatchEvaluator(k)
		if be.Width() != k {
			t.Fatalf("k=%d: Width() = %d", k, be.Width())
		}
		if be.WeightClasses() < 1 || be.WeightClasses() > len(g.edges) {
			t.Fatalf("k=%d: %d weight classes for %d edges", k, be.WeightClasses(), len(g.edges))
		}
		out := make([]int64, k)
		for lo := 0; lo < len(pts); lo += k {
			hi := lo + k
			if hi > len(pts) {
				hi = len(pts) // ragged final batch
			}
			be.LongestPaths(pts[lo:hi], out[:hi-lo])
			for i := lo; i < hi; i++ {
				if out[i-lo] != want[i] {
					t.Fatalf("k=%d point %d: batch %d != scalar %d", k, i, out[i-lo], want[i])
				}
			}
		}
	}
}

// TestBatchEvaluatorWiderThanPoints covers width exceeding the point count:
// a partial batch through an oversized evaluator must still match the scalar
// path exactly, and reuse at a different batch size must not leak state
// between calls.
func TestBatchEvaluatorWiderThanPoints(t *testing.T) {
	g, pts := batchSubstrate(t, "456.hmmer", 3, 2000, 5)
	ev := g.NewEvaluator()
	be := g.NewBatchEvaluator(128)
	out := make([]int64, 128)
	be.LongestPaths(pts, out[:len(pts)])
	for i := range pts {
		if want := ev.LongestPath(&pts[i]); out[i] != want {
			t.Fatalf("point %d: batch %d != scalar %d", i, out[i], want)
		}
	}
	// A smaller follow-up batch, reversed, through the same scratch.
	be.LongestPaths(pts[3:], out[:2])
	for i, p := 0, 3; p < len(pts); i, p = i+1, p+1 {
		if want := ev.LongestPath(&pts[p]); out[i] != want {
			t.Fatalf("reused scratch, point %d: batch %d != scalar %d", p, out[i], want)
		}
	}
	// Empty batches are no-ops.
	be.LongestPaths(nil, nil)
}

// TestBatchEvaluatorPanics pins the contract violations LongestPaths rejects:
// more points than lanes, and an output buffer shorter than the batch.
func TestBatchEvaluatorPanics(t *testing.T) {
	g, pts := batchSubstrate(t, "456.hmmer", 7, 800, 4)
	be := g.NewBatchEvaluator(2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	out := make([]int64, 4)
	mustPanic("batch wider than K", func() { be.LongestPaths(pts, out) })
	mustPanic("short output buffer", func() { be.LongestPaths(pts[:2], out[:1]) })
}

// TestBatchEvaluatorMinWidth checks lane counts below one are raised to a
// one-lane evaluator rather than producing a zero-width scratch.
func TestBatchEvaluatorMinWidth(t *testing.T) {
	g, pts := batchSubstrate(t, "456.hmmer", 5, 500, 1)
	be := g.NewBatchEvaluator(0)
	if be.Width() != 1 {
		t.Fatalf("Width() = %d, want 1", be.Width())
	}
	var out [1]int64
	be.LongestPaths(pts, out[:])
	if want := g.NewEvaluator().LongestPath(&pts[0]); out[0] != want {
		t.Fatalf("one-lane batch %d != scalar %d", out[0], want)
	}
}
