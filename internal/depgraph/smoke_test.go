package depgraph

import (
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestGraphTracksSimulator checks that the Table I graph model reproduces
// the simulated cycle count of the traced configuration within a few
// percent, across all workload profiles (the paper's Figure 10 premise).
func TestGraphTracksSimulator(t *testing.T) {
	cfg := config.Baseline()
	for _, p := range workload.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			uops := workload.Stream(p, 7, 15000)
			s, err := cpu.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := s.Run(uops)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
			if err != nil {
				t.Fatal(err)
			}
			got := g.LongestPath(&cfg.Lat)
			errPct := stats.AbsPctErr(float64(got), float64(tr.Cycles))
			t.Logf("sim=%d graph=%d err=%.2f%%", tr.Cycles, got, errPct)
			if errPct > 10 {
				t.Fatalf("graph model error %.2f%% too large (sim=%d graph=%d)", errPct, tr.Cycles, got)
			}
			// The critical-path stack must account exactly for the
			// longest-path length.
			total, st := g.CriticalPath(&cfg.Lat)
			if total != got {
				t.Fatalf("CriticalPath length %d != LongestPath %d", total, got)
			}
			if stTotal := st.Total(&cfg.Lat); int64(stTotal) != total {
				t.Fatalf("critical stack total %.0f != path length %d", stTotal, total)
			}
		})
	}
}
