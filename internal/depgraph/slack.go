package depgraph

import (
	"repro/internal/stacks"
)

// Slack analysis and interaction costs, after Fields et al. ([10] and [12]
// in the paper) — the critical-path toolkit RpStacks builds on. Slack tells
// an architect how much a µop's execution may be delayed without lengthening
// the critical path; interaction cost tells whether two event classes
// overlap (parallel penalties, icost < 0), are independent (icost = 0) or
// serialize (icost > 0).

// SlackReport holds per-µop completion slack in cycles.
type SlackReport struct {
	// Slack[i] is how many cycles µop i's completion (P node) can slip
	// before the end-to-end critical path grows.
	Slack []int64
	// Critical counts µops with zero completion slack.
	Critical int
}

// Slacks computes the completion slack of every µop in the window under a
// latency assignment, via forward (earliest) and backward (latest) passes
// over the DAG.
func (g *Graph) Slacks(l *stacks.Latencies) *SlackReport {
	n := g.NumNodes()
	earliest := make([]int64, n)
	for _, id := range g.evalOrder {
		best := int64(0)
		for _, e := range g.In(id) {
			if d := earliest[e.From] + e.W.Cycles(l); d > best {
				best = d
			}
		}
		earliest[id] = best
	}
	total := earliest[g.Sink()]

	// Backward pass: latest[u] = min over out-edges (latest[v] - w). Nodes
	// with no out-edges float to the sink time.
	latest := make([]int64, n)
	for i := range latest {
		latest[i] = total
	}
	order := g.evalOrder
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		lv := latest[v]
		for _, e := range g.In(v) {
			if cand := lv - e.W.Cycles(l); cand < latest[e.From] {
				latest[e.From] = cand
			}
		}
	}

	rep := &SlackReport{Slack: make([]int64, g.NumMicroOps())}
	for i := g.Lo; i < g.Hi; i++ {
		p := g.Node(i, NP)
		s := latest[p] - earliest[p]
		if s < 0 {
			s = 0
		}
		rep.Slack[i-g.Lo] = s
		if s == 0 {
			rep.Critical++
		}
	}
	return rep
}

// InteractionCost measures how two event kinds interact on the critical path
// (Fields et al.'s icost): with cost(X) = LP(base) - LP(X zeroed),
//
//	icost(A,B) = cost(A ∪ B) - cost(A) - cost(B).
//
// Positive values mean the events' penalties overlap in parallel: removing
// either alone buys little because the other still covers the cycles, so
// both must be optimized together — the paper's Figure 1a situation. Zero
// means independent; negative means serial interaction (removing one also
// removes part of the other's cost, e.g. a miss and the resource stall it
// causes). "Zeroed" sets the event's latency to zero except Base, whose
// floor is one cycle.
func (g *Graph) InteractionCost(l *stacks.Latencies, a, b stacks.Event) int64 {
	zero := func(ev stacks.Event, in stacks.Latencies) stacks.Latencies {
		out := in
		if ev == stacks.Base {
			out[ev] = 1
		} else {
			out[ev] = 0
		}
		return out
	}
	base := g.LongestPath(l)
	la := zero(a, *l)
	lb := zero(b, *l)
	lab := zero(b, la)
	costA := base - g.LongestPath(&la)
	costB := base - g.LongestPath(&lb)
	costAB := base - g.LongestPath(&lab)
	return costAB - costA - costB
}
