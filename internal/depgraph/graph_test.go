package depgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/stacks"
	"repro/internal/trace"
	"repro/internal/workload"
)

func simTrace(t *testing.T, cfg *config.Config, uops []isa.MicroOp) *trace.Trace {
	t.Helper()
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func hasEdge(g *Graph, to NodeID, fromIdx int, fromStage Stage) bool {
	for _, e := range g.In(to) {
		if e.From == g.Node(fromIdx, fromStage) {
			return true
		}
	}
	return false
}

func edgeWeight(g *Graph, to NodeID, fromIdx int, fromStage Stage) (Weight, bool) {
	for _, e := range g.In(to) {
		if e.From == g.Node(fromIdx, fromStage) {
			return e.W, true
		}
	}
	return Weight{}, false
}

// TestTableIConstraints builds a graph from a small simulated trace and
// verifies the presence and event attribution of each constraint family of
// Table I.
func TestTableIConstraints(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("437.leslie3d")
	uops := workload.Stream(prof, 5, 3000)
	tr := simTrace(t, cfg, uops)
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	st := &cfg.Structure

	checked := map[string]bool{}
	for i := 32; i < len(tr.Records); i++ {
		r := &tr.Records[i]
		// In-order fetch: F_i <- I$_{i-1}.
		if !hasEdge(g, g.Node(i, NF), i-1, NIC) {
			t.Fatalf("µop %d missing in-order fetch edge", i)
		}
		// Finite fetch bandwidth: F_i <- I$_{i-fbw}.
		if !hasEdge(g, g.Node(i, NF), i-st.FetchWidth, NIC) {
			t.Fatalf("µop %d missing fetch bandwidth edge", i)
		}
		// Finite fetch buffer: F_i <- N_{i-fbs}.
		if !hasEdge(g, g.Node(i, NF), i-st.FetchBufSize, NN) {
			t.Fatalf("µop %d missing fetch buffer edge", i)
		}
		// Control dependency after a mispredicted branch.
		if tr.Records[i-1].Mispredicted {
			w, ok := edgeWeight(g, g.Node(i, NF), i-1, NP)
			if !ok || w[0].Ev != stacks.Branch {
				t.Fatalf("µop %d missing branch redirect edge", i)
			}
			checked["mispredict"] = true
		}
		// In-order rename + rename bandwidth + finite ROB.
		if !hasEdge(g, g.Node(i, NN), i-1, NN) ||
			!hasEdge(g, g.Node(i, NN), i-st.RenameWidth, NN) {
			t.Fatalf("µop %d missing rename edges", i)
		}
		if i >= st.ROBSize && !hasEdge(g, g.Node(i, NN), i-st.ROBSize, NC) {
			t.Fatalf("µop %d missing reorder-buffer edge", i)
		}
		// Dispatch after rename, in order, width-limited.
		if !hasEdge(g, g.Node(i, ND), i, NN) ||
			!hasEdge(g, g.Node(i, ND), i-1, ND) ||
			!hasEdge(g, g.Node(i, ND), i-st.DispatchWidth, ND) {
			t.Fatalf("µop %d missing dispatch edges", i)
		}
		// Issue dependency.
		if r.IQFreeBy != trace.None {
			if !hasEdge(g, g.Node(i, ND), int(r.IQFreeBy), NE) {
				t.Fatalf("µop %d missing issue-dependency edge", i)
			}
			checked["iq"] = true
		}
		// Data dependencies.
		if !r.Class.IsMem() && r.SrcDep1 != trace.None {
			if !hasEdge(g, g.Node(i, NR), int(r.SrcDep1), NP) {
				t.Fatalf("µop %d missing data dependency edge", i)
			}
			checked["data"] = true
		}
		if r.Class.IsMem() {
			// Address pipeline folded into D->R with Agu attribution.
			w, ok := edgeWeight(g, g.Node(i, NR), i, ND)
			if !ok {
				t.Fatalf("mem µop %d missing ready edge", i)
			}
			found := false
			for _, p := range w {
				if p.N > 0 && p.Ev == stacks.Agu {
					found = true
				}
			}
			if !found {
				t.Fatalf("mem µop %d ready edge lacks Agu attribution", i)
			}
			if r.AddrDep != trace.None && !hasEdge(g, g.Node(i, NR), int(r.AddrDep), NP) {
				t.Fatalf("mem µop %d missing address dependency edge", i)
			}
			checked["mem"] = true
		}
		// Execute after ready.
		if !hasEdge(g, g.Node(i, NE), i, NR) {
			t.Fatalf("µop %d missing execute edge", i)
		}
		// Cache line sharing.
		if r.ShareWith != trace.None {
			if !hasEdge(g, g.Node(i, NP), int(r.ShareWith), NP) {
				t.Fatalf("µop %d missing line sharing edge", i)
			}
			checked["share"] = true
		}
		// Commit: completion, in order, width.
		if !hasEdge(g, g.Node(i, NC), i, NP) ||
			!hasEdge(g, g.Node(i, NC), i-1, NC) ||
			!hasEdge(g, g.Node(i, NC), i-st.CommitWidth, NC) {
			t.Fatalf("µop %d missing commit edges", i)
		}
		// µop dependency: SoM commit waits for the macro's later µops.
		if r.SoM && !r.EoM {
			if !hasEdge(g, g.Node(i, NC), i+1, NP) {
				t.Fatalf("SoM µop %d missing macro-atomicity edge", i)
			}
			checked["macro"] = true
		}
	}
	for _, k := range []string{"mispredict", "data", "mem", "macro"} {
		if !checked[k] {
			t.Errorf("constraint family %q never exercised by the trace", k)
		}
	}
}

// TestHiddenPenalty reproduces Figure 1a: optimizing the exposed bottleneck
// reveals the penalty hidden beneath it, so the gain is smaller than the
// optimized amount.
func TestHiddenPenalty(t *testing.T) {
	cfg := config.Baseline()
	// A memory-missing load chain overlapping an FpDiv chain (120 cycles
	// per iteration vs 133+ for the loads).
	var uops []isa.MicroOp
	seq := uint64(0)
	add := func(u isa.MicroOp) {
		u.Seq = seq
		u.MacroSeq = seq
		u.SoM, u.EoM = true, true
		u.PC = 0x400000
		seq++
		uops = append(uops, u)
	}
	addr := uint64(0x4000_0000)
	for i := 0; i < 40; i++ {
		add(isa.MicroOp{Class: isa.Load, Dest: 2, Src1: 2, Src2: isa.RegNone, Addr: addr})
		addr += 1 << 16
		for j := 0; j < 5; j++ {
			add(isa.MicroOp{Class: isa.FpDiv, Dest: isa.NumIntRegs, Src1: isa.NumIntRegs, Src2: isa.RegNone})
		}
	}
	tr := simTrace(t, cfg, uops)
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	base := g.LongestPath(&cfg.Lat)
	// Optimize the exposed memory bottleneck to one cycle.
	opt := cfg.Lat.With(stacks.MemD, 1)
	after := g.LongestPath(&opt)
	// The FP chain (~40*120 cycles) now binds: the saving must be far less
	// than the naive 132-cycles-per-load estimate.
	naive := base - int64(40*132)
	if after <= naive {
		t.Fatalf("no hidden penalty: base=%d after=%d naive=%d", base, after, naive)
	}
	if after < int64(40*5*24) {
		t.Fatalf("optimized path %d shorter than the FP chain itself", after)
	}
}

// TestLatencyMonotonicity: raising any single event latency can never
// shorten the critical path.
func TestLatencyMonotonicity(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("450.soplex")
	uops := workload.Stream(prof, 8, 2000)
	tr := simTrace(t, cfg, uops)
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		e := stacks.Event(1 + rng.Intn(int(stacks.NumEvents)-1))
		l1 := cfg.Lat
		l2 := l1.With(e, l1[e]+float64(1+rng.Intn(50)))
		return g.LongestPath(&l2) >= g.LongestPath(&l1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowErrors checks Build's input validation.
func TestWindowErrors(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("456.hmmer")
	uops := workload.Stream(prof, 2, 500)
	tr := simTrace(t, cfg, uops)
	if _, err := Build(tr, &cfg.Structure, -1, 10); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := Build(tr, &cfg.Structure, 10, 5); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := Build(tr, &cfg.Structure, 0, len(tr.Records)+1); err == nil {
		t.Fatal("overlong window accepted")
	}
	// A window starting mid-macro-op must be rejected.
	mid := 1
	for mid < len(tr.Records) && tr.Records[mid].SoM {
		mid++
	}
	if mid < len(tr.Records) {
		if _, err := Build(tr, &cfg.Structure, mid, len(tr.Records)); err == nil {
			t.Fatal("mid-macro window accepted")
		}
	}
}

// TestNodeRoundTrip checks the NodeID encoding.
func TestNodeRoundTrip(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("456.hmmer")
	uops := workload.Stream(prof, 2, 200)
	tr := simTrace(t, cfg, uops)
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tr.Records); i += 17 {
		for s := Stage(0); s < NumStages; s++ {
			gi, gs := g.MicroOpOf(g.Node(i, s))
			if gi != i || gs != s {
				t.Fatalf("round trip (%d,%s) -> (%d,%s)", i, s, gi, gs)
			}
		}
	}
	if g.NumNodes() != len(tr.Records)*int(NumStages) {
		t.Fatal("node count wrong")
	}
}

// TestSegmentWindowMatchesFull: a window build on [k, n) is a valid graph
// whose longest path is no longer than the full graph's.
func TestSegmentWindowMatchesFull(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("444.namd")
	uops := workload.Stream(prof, 6, 2000)
	tr := simTrace(t, cfg, uops)
	full, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	k := 800
	for !tr.Records[k].SoM {
		k++
	}
	win, err := Build(tr, &cfg.Structure, k, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	if win.LongestPath(&cfg.Lat) > full.LongestPath(&cfg.Lat) {
		t.Fatal("suffix window longer than the full graph")
	}
}

// TestWeightAccumulation checks the multi-event edge weight helper.
func TestWeightAccumulation(t *testing.T) {
	var w Weight
	w.add(stacks.Base, 2)
	w.add(stacks.Agu, 1)
	w.add(stacks.Base, 1)
	l := config.Baseline().Lat
	if got := w.Cycles(&l); got != 3+2 {
		t.Fatalf("weight cycles = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("four distinct events must panic")
		}
	}()
	w.add(stacks.DTLB, 1)
	w.add(stacks.L1D, 1)
}
