package depgraph

import (
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// TestEvaluatorAllocFree pins the property the sweep engines depend on: once
// an Evaluator exists, re-evaluating the graph under new latency assignments
// allocates nothing — a parallel sweep costs O(workers) buffers, not
// O(design points). A regression here silently multiplies sweep cost by the
// point count.
func TestEvaluatorAllocFree(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("429.mcf")
	uops := workload.Stream(prof, 11, 8000)
	s, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(uops)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	ev := g.NewEvaluator()
	// A few distinct design points, as a sweep would evaluate.
	lats := make([]stacks.Latencies, 4)
	for i := range lats {
		lats[i] = cfg.Lat
		lats[i][stacks.L2D] = float64(6 + 3*i)
		lats[i][stacks.MemD] = float64(66 + 20*i)
	}

	// Warm once so one-time buffers (CriticalPath's parent array) exist.
	ev.LongestPath(&cfg.Lat)
	ev.CriticalPath(&cfg.Lat)

	var sink int64
	if n := testing.AllocsPerRun(50, func() {
		for i := range lats {
			sink += ev.LongestPath(&lats[i])
		}
	}); n != 0 {
		t.Errorf("LongestPath allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		sink += ev.Dists(&cfg.Lat)[g.Sink()]
	}); n != 0 {
		t.Errorf("Dists allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		c, _ := ev.CriticalPath(&cfg.Lat)
		sink += c
	}); n != 0 {
		t.Errorf("CriticalPath allocates %.1f per run after warmup, want 0", n)
	}

	// The batched form carries the same budget: construction owns every
	// buffer (distance lanes, weight-class table, per-batch cycle rows), so
	// re-evaluating batches — full or ragged — allocates nothing.
	be := g.NewBatchEvaluator(len(lats))
	out := make([]int64, len(lats))
	be.LongestPaths(lats, out) // warm up
	if n := testing.AllocsPerRun(50, func() {
		be.LongestPaths(lats, out)
		sink += out[0]
	}); n != 0 {
		t.Errorf("LongestPaths allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		be.LongestPaths(lats[:3], out[:3])
		sink += out[2]
	}); n != 0 {
		t.Errorf("ragged LongestPaths allocates %.1f per run, want 0", n)
	}
	_ = sink
}
