// Package depgraph builds the dependence-graph model of Table I from a
// dynamic trace and evaluates it: each µop contributes a column of pipeline
// nodes, each edge carries an (event, count) weight vector, and the longest
// path from the first fetch to the last commit reproduces the simulated
// cycle count for the traced latency configuration — and predicts it for any
// other latency configuration, which is the Fields-style graph
// reconstruction comparator of the paper.
//
// The ITLB, I-cache, AR1, AR2, DTLB and RC stages of the paper's 10-node
// model are folded into edge weights of their neighbouring nodes (they form
// linear chains), leaving eight explicit nodes per µop; the constraint set
// is otherwise the paper's, including the new (+) rows of Table I. One
// documented deviation: stores issue on address readiness alone (data merges
// at retirement), matching the simulator, so Table I's data-dependency row
// applies to register consumers and store addresses but not store data.
package depgraph

import (
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stacks"
	"repro/internal/trace"
)

// Stage enumerates the explicit per-µop nodes.
type Stage uint8

const (
	NF  Stage = iota // fetch start (line access request)
	NIC              // instruction line available (ITLB folded in)
	NN               // renamed, ROB entry allocated
	ND               // issue-queue entry allocated
	NR               // operands ready (address pipeline folded in for mem ops)
	NE               // execution begins
	NP               // execution complete
	NC               // committed (ready-to-commit folded in)

	NumStages // not a valid stage
)

var stageNames = [NumStages]string{"F", "I$", "N", "D", "R", "E", "P", "C"}

// String returns the node-stage label used in the paper's figures.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// NodeID addresses one node: µop index (relative to the graph's window)
// times NumStages plus the stage.
type NodeID int32

// EvPair is one component of an edge weight: count occurrences of an event.
type EvPair struct {
	Ev stacks.Event
	N  uint8
}

// Weight is the event decomposition of an edge; unused slots have N == 0.
// Under a latency assignment the edge costs Σ N·lat(Ev).
type Weight [3]EvPair

// Cycles evaluates the weight under a latency assignment.
func (w *Weight) Cycles(l *stacks.Latencies) int64 {
	var c float64
	for _, p := range w {
		if p.N != 0 {
			c += float64(p.N) * l[p.Ev]
		}
	}
	return int64(c)
}

// add accumulates n occurrences of ev into the weight.
func (w *Weight) add(ev stacks.Event, n uint8) {
	if n == 0 {
		return
	}
	for i := range w {
		if w[i].N != 0 && w[i].Ev == ev {
			w[i].N += n
			return
		}
	}
	for i := range w {
		if w[i].N == 0 {
			w[i] = EvPair{ev, n}
			return
		}
	}
	panic("depgraph: edge weight exceeds three distinct events")
}

// Edge is one in-edge of a node.
type Edge struct {
	From NodeID
	W    Weight
}

// Graph is the dependence graph of one trace window. In-edges are stored in
// compressed form: the in-edges of node n occupy edges[nodeStart[n] : nodeStart[n]+nodeCnt[n]].
// evalOrder lists all nodes in a topological order (commit nodes of a
// macro-op follow the whole macro-op, because the paper's µop-dependency
// constraint makes a macro's first commit wait on every µop of the macro).
type Graph struct {
	Lo, Hi    int // µop window [Lo, Hi) of the underlying trace
	recs      []trace.Record
	edges     []Edge
	nodeStart []int32
	nodeCnt   []int32
	evalOrder []NodeID

	// Weight-class table, computed lazily by weightClasses for batched
	// evaluation: wid[i] indexes edges[i].W within wclasses. A property of
	// the edge set, shared by every BatchEvaluator over this graph.
	wonce    sync.Once
	wid      []int32
	wclasses []Weight
}

// weightClasses deduplicates the edge weights once per graph: edges share few
// distinct Weight values (pipeline width, cache levels and port counts bound
// them), so batched evaluators precompute per-batch latency rows per class
// instead of per edge. Safe for concurrent callers; the graph stays
// logically read-only.
func (g *Graph) weightClasses() ([]int32, []Weight) {
	g.wonce.Do(func() {
		g.wid = make([]int32, len(g.edges))
		seen := make(map[Weight]int32, 64)
		for i := range g.edges {
			w := g.edges[i].W
			id, ok := seen[w]
			if !ok {
				id = int32(len(g.wclasses))
				g.wclasses = append(g.wclasses, w)
				seen[w] = id
			}
			g.wid[i] = id
		}
	})
	return g.wid, g.wclasses
}

// NumMicroOps returns the window length.
func (g *Graph) NumMicroOps() int { return g.Hi - g.Lo }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.NumMicroOps() * int(NumStages) }

// Node returns the NodeID for the µop at trace index i (Lo ≤ i < Hi).
func (g *Graph) Node(i int, s Stage) NodeID {
	return NodeID((i-g.Lo)*int(NumStages) + int(s))
}

// MicroOpOf is the inverse of Node.
func (g *Graph) MicroOpOf(n NodeID) (traceIdx int, s Stage) {
	return g.Lo + int(n)/int(NumStages), Stage(int(n) % int(NumStages))
}

// In returns the in-edges of node n.
func (g *Graph) In(n NodeID) []Edge {
	s := g.nodeStart[n]
	return g.edges[s : s+g.nodeCnt[n]]
}

// EvalOrder returns the nodes in dependency-respecting order.
func (g *Graph) EvalOrder() []NodeID { return g.evalOrder }

// Sink returns the final node (commit of the last µop).
func (g *Graph) Sink() NodeID { return g.Node(g.Hi-1, NC) }

// storeWindow bounds how many preceding stores receive an explicit
// address-dependency edge to each load; older stores are ordered through
// transitive structural edges in practice.
const storeWindow = 6

// Build constructs the dependence graph for the trace window [lo, hi). The
// window should start at a macro-op boundary (SoM); Build returns an error
// otherwise, because commit atomicity would reference µops outside the
// window.
func Build(tr *trace.Trace, st *config.Structure, lo, hi int) (*Graph, error) {
	if lo < 0 || hi > len(tr.Records) || lo >= hi {
		return nil, fmt.Errorf("depgraph: invalid window [%d, %d) of %d records", lo, hi, len(tr.Records))
	}
	if !tr.Records[lo].SoM {
		return nil, fmt.Errorf("depgraph: window must start at a macro-op boundary (µop %d)", lo)
	}
	g := &Graph{Lo: lo, Hi: hi, recs: tr.Records}
	n := g.NumNodes()
	g.nodeStart = make([]int32, n)
	g.nodeCnt = make([]int32, n)
	g.evalOrder = make([]NodeID, 0, n)
	g.edges = make([]Edge, 0, n*2)

	// Edge emission happens per target node, in evaluation order, so the
	// compressed representation is filled in a single pass.
	var pendingC []int // µops of the current macro awaiting commit nodes
	var recentStores []int

	beginNode := func(id NodeID) {
		g.nodeStart[id] = int32(len(g.edges))
		g.evalOrder = append(g.evalOrder, id)
	}
	endNode := func(id NodeID) {
		g.nodeCnt[id] = int32(len(g.edges)) - g.nodeStart[id]
	}
	addEdge := func(from NodeID, w Weight) {
		g.edges = append(g.edges, Edge{From: from, W: w})
	}
	// inWindow guards cross-µop references: edges from µops before the
	// window are dropped (the segmentation cut of Section III-C).
	inWindow := func(i int64) bool { return i >= int64(lo) }

	base := func(n uint8) Weight {
		var w Weight
		w.add(stacks.Base, n)
		return w
	}

	flushCommits := func() {
		if len(pendingC) == 0 {
			return
		}
		last := pendingC[len(pendingC)-1]
		for _, i := range pendingC {
			r := &g.recs[i]
			id := g.Node(i, NC)
			beginNode(id)
			// Commit one cycle after completion.
			addEdge(g.Node(i, NP), base(1))
			// In-order commit.
			if i-1 >= lo {
				addEdge(g.Node(i-1, NC), base(0))
			}
			// Finite commit width.
			if j := i - st.CommitWidth; j >= lo {
				addEdge(g.Node(j, NC), base(1))
			}
			// µop dependency: the macro's first commit waits for every µop
			// of the macro to complete.
			if r.SoM {
				for j := i + 1; j <= last; j++ {
					addEdge(g.Node(j, NP), base(1))
				}
			}
			endNode(id)
		}
		pendingC = pendingC[:0]
	}

	for i := lo; i < hi; i++ {
		r := &g.recs[i]

		// --- F: fetch start -------------------------------------------
		id := g.Node(i, NF)
		beginNode(id)
		if i-1 >= lo {
			// In-order fetch.
			addEdge(g.Node(i-1, NIC), base(0))
			// Control dependency: redirect after a mispredicted branch.
			if g.recs[i-1].Mispredicted {
				var w Weight
				w.add(stacks.Branch, 1)
				addEdge(g.Node(i-1, NP), w)
			}
		}
		// Finite fetch bandwidth.
		if j := i - st.FetchWidth; j >= lo {
			addEdge(g.Node(j, NIC), base(1))
		}
		// Finite fetch buffer.
		if j := i - st.FetchBufSize; j >= lo {
			addEdge(g.Node(j, NN), base(1))
		}
		endNode(id)

		// --- I$: line available (ITLB access folded in) ----------------
		id = g.Node(i, NIC)
		beginNode(id)
		var w Weight
		if r.NewFetchLine {
			if r.ITLBMiss {
				w.add(stacks.ITLB, 1)
			}
			switch r.FetchLevel {
			case mem.LvlL2:
				w.add(stacks.L2I, 1)
			case mem.LvlMem:
				w.add(stacks.MemI, 1)
			}
			// L1 hits are pipelined: weight 0 (Table I).
		}
		addEdge(g.Node(i, NF), w)
		endNode(id)

		// --- N: rename -------------------------------------------------
		id = g.Node(i, NN)
		beginNode(id)
		// Decode depth plus the pipelined L1I hit latency.
		w = base(uint8(st.FrontendDepth))
		w.add(stacks.L1I, 1)
		addEdge(g.Node(i, NIC), w)
		if i-1 >= lo {
			addEdge(g.Node(i-1, NN), base(0)) // in-order rename
		}
		if j := i - st.RenameWidth; j >= lo {
			addEdge(g.Node(j, NN), base(1)) // finite rename bandwidth
		}
		if j := i - st.ROBSize; j >= lo {
			addEdge(g.Node(j, NC), base(1)) // finite reorder buffer
		}
		if r.RegFreeBy != trace.None && inWindow(r.RegFreeBy) {
			addEdge(g.Node(int(r.RegFreeBy), NC), base(1)) // finite physical registers
		}
		endNode(id)

		// --- D: dispatch -------------------------------------------------
		id = g.Node(i, ND)
		beginNode(id)
		addEdge(g.Node(i, NN), base(1)) // dispatch after rename
		if i-1 >= lo {
			addEdge(g.Node(i-1, ND), base(0)) // in-order dispatch
		}
		if j := i - st.DispatchWidth; j >= lo {
			addEdge(g.Node(j, ND), base(1)) // finite dispatch width
		}
		if r.IQFreeBy != trace.None && inWindow(r.IQFreeBy) {
			addEdge(g.Node(int(r.IQFreeBy), NE), base(1)) // issue dependency
		}
		endNode(id)

		// --- R: ready (address pipeline folded in for memory ops) -------
		id = g.Node(i, NR)
		beginNode(id)
		if r.Class.IsMem() {
			// Ready after dispatch, address calculation, DTLB access.
			w = base(1)
			w.add(stacks.Agu, 1)
			if r.DTLBMiss {
				w.add(stacks.DTLB, 1)
			}
			addEdge(g.Node(i, ND), w)
			if r.AddrDep != trace.None && inWindow(r.AddrDep) {
				// Data dependency for address calculation.
				var aw Weight
				aw.add(stacks.Agu, 1)
				if r.DTLBMiss {
					aw.add(stacks.DTLB, 1)
				}
				addEdge(g.Node(int(r.AddrDep), NP), aw)
			}
		} else {
			addEdge(g.Node(i, ND), base(1)) // ready after dispatch
			for _, d := range [...]int64{r.SrcDep1, r.SrcDep2} {
				if d != trace.None && inWindow(d) {
					addEdge(g.Node(int(d), NP), base(0)) // data dependency
				}
			}
		}
		endNode(id)

		// --- E: execute ---------------------------------------------------
		id = g.Node(i, NE)
		beginNode(id)
		addEdge(g.Node(i, NR), base(0)) // execute after ready
		if r.Class == isa.Load {
			// Address dependency: a load executes no earlier than
			// preceding stores.
			for _, js := range recentStores {
				addEdge(g.Node(js, NE), base(0))
			}
			// Finite MSHRs: the load waited for an outstanding fill to
			// complete before it could allocate a miss slot.
			if r.MSHRFreeBy != trace.None && inWindow(r.MSHRFreeBy) {
				addEdge(g.Node(int(r.MSHRFreeBy), NP), base(0))
			}
		}
		// Unpipelined divider occupancy: this divide waited for the unit's
		// previous occupant to complete.
		if (r.Class == isa.IntDiv || r.Class == isa.FpDiv) &&
			r.FUFreeBy != trace.None && inWindow(r.FUFreeBy) {
			addEdge(g.Node(int(r.FUFreeBy), NP), base(0))
		}
		endNode(id)
		if r.Class == isa.Store {
			recentStores = append(recentStores, i)
			if len(recentStores) > storeWindow {
				recentStores = recentStores[1:]
			}
		}

		// --- P: complete ----------------------------------------------------
		id = g.Node(i, NP)
		beginNode(id)
		w = Weight{}
		switch r.Class {
		case isa.Load:
			switch r.DataLevel {
			case mem.LvlL1:
				w.add(stacks.L1D, 1)
			case mem.LvlL2:
				w.add(stacks.L2D, 1)
			default:
				w.add(stacks.MemD, 1)
			}
		case isa.Store:
			w.add(stacks.Store, 1)
		default:
			w.add(r.Class.ExecEvent(), 1)
		}
		addEdge(g.Node(i, NE), w)
		if r.ShareWith != trace.None && inWindow(r.ShareWith) {
			// Cache line sharing: the load completes no earlier than the
			// fill it merged into.
			addEdge(g.Node(int(r.ShareWith), NP), base(0))
		}
		endNode(id)

		pendingC = append(pendingC, i)
		if r.EoM || i == hi-1 {
			flushCommits()
		}
	}
	flushCommits()
	return g, nil
}
