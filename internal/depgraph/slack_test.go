package depgraph

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stacks"
	"repro/internal/workload"
)

// TestSlackBasics: slacks are non-negative, some µops are critical, and the
// µops of a serial chain carry (near-)zero completion slack while work in a
// long miss's shadow carries large slack.
func TestSlackBasics(t *testing.T) {
	cfg := config.Baseline()
	var uops []isa.MicroOp
	seq := uint64(0)
	add := func(u isa.MicroOp) {
		u.Seq, u.MacroSeq = seq, seq
		u.SoM, u.EoM = true, true
		u.PC = 0x400000
		seq++
		uops = append(uops, u)
	}
	// A memory-missing pointer chase (critical) with cheap independent ALU
	// work in its shadow.
	addr := uint64(0x4000_0000)
	for i := 0; i < 20; i++ {
		add(isa.MicroOp{Class: isa.Load, Dest: 2, Src1: 2, Src2: isa.RegNone, Addr: addr})
		addr += 1 << 16
		add(isa.MicroOp{Class: isa.IntAlu, Dest: 5, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	tr := simTrace(t, cfg, uops)
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Slacks(&cfg.Lat)
	if rep.Critical == 0 {
		t.Fatal("some µops must be critical")
	}
	var loadSlack, aluSlack int64
	var nl, na int64
	for i := range tr.Records {
		if rep.Slack[i] < 0 {
			t.Fatalf("negative slack at µop %d", i)
		}
		// Skip the warm-up prefix of the window.
		if i < 8 || i >= len(tr.Records)-8 {
			continue
		}
		if tr.Records[i].Class == isa.Load {
			loadSlack += rep.Slack[i]
			nl++
		} else {
			aluSlack += rep.Slack[i]
			na++
		}
	}
	if nl == 0 || na == 0 {
		t.Fatal("test workload malformed")
	}
	if loadSlack/nl >= aluSlack/na {
		t.Fatalf("chase loads (mean slack %d) should be tighter than shadow ALUs (%d)",
			loadSlack/nl, aluSlack/na)
	}
}

// TestSlackConsistentWithCriticalPath: the sink-reaching critical path
// length is unchanged, and zero-slack µops must include the critical path's
// µops.
func TestSlackConsistentWithCriticalPath(t *testing.T) {
	cfg := config.Baseline()
	prof, _ := workload.ByName("444.namd")
	uops := workload.Stream(prof, 12, 1500)
	tr := simTrace(t, cfg, uops)
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Slacks(&cfg.Lat)
	if rep.Critical < 1 || rep.Critical > len(tr.Records) {
		t.Fatalf("critical count %d out of range", rep.Critical)
	}
	// Slack never exceeds the end-to-end path length.
	total := g.LongestPath(&cfg.Lat)
	for i, s := range rep.Slack {
		if s > total {
			t.Fatalf("µop %d slack %d exceeds total %d", i, s, total)
		}
	}
}

// TestInteractionCostSigns: overlapped penalties yield negative interaction
// cost; unrelated events yield (near-)zero.
func TestInteractionCostSigns(t *testing.T) {
	cfg := config.Baseline()
	// Parallel chains: memory chase ∥ FP divides (the Figure 1a shape).
	var uops []isa.MicroOp
	seq := uint64(0)
	add := func(u isa.MicroOp) {
		u.Seq, u.MacroSeq = seq, seq
		u.SoM, u.EoM = true, true
		u.PC = 0x400000
		seq++
		uops = append(uops, u)
	}
	addr := uint64(0x4000_0000)
	for i := 0; i < 30; i++ {
		add(isa.MicroOp{Class: isa.Load, Dest: 2, Src1: 2, Src2: isa.RegNone, Addr: addr})
		addr += 1 << 16
		for j := 0; j < 5; j++ {
			add(isa.MicroOp{Class: isa.FpDiv, Dest: isa.NumIntRegs, Src1: isa.NumIntRegs, Src2: isa.RegNone})
		}
	}
	tr := simTrace(t, cfg, uops)
	g, err := Build(tr, &cfg.Structure, 0, len(tr.Records))
	if err != nil {
		t.Fatal(err)
	}
	// MemD and FpDiv overlap in parallel: optimizing both together buys
	// much more than the sum of optimizing each alone => icost positive.
	if ic := g.InteractionCost(&cfg.Lat, stacks.MemD, stacks.FpDiv); ic <= 0 {
		t.Fatalf("parallel chains must have positive interaction cost, got %d", ic)
	}
	// Two events absent from the trace interact not at all.
	if ic := g.InteractionCost(&cfg.Lat, stacks.IntMul, stacks.ITLB); ic != 0 {
		t.Fatalf("absent events interaction cost %d, want 0", ic)
	}
}
